#!/usr/bin/env bash
# Repo gate: formatting, lints, and the tier-1 verify from ROADMAP.md.
# Run locally before pushing; CI (.github/workflows/ci.yml) runs the same.
set -euo pipefail
cd "$(dirname "$0")/.."

export RUSTFLAGS="-D warnings"

echo "== cargo fmt --check"
cargo fmt --all --check

echo "== cargo clippy (deny warnings, both obs modes)"
cargo clippy --workspace --all-targets -- -D warnings
cargo clippy --workspace --all-targets --features obs -- -D warnings

echo "== tier-1 verify: cargo build --release && cargo test -q"
cargo build --release
cargo test -q

echo "== test suite again with the obs counter layer compiled in"
cargo test -q --features obs

echo "== criterion benches compile"
cargo bench --no-run

echo "== trace-replay identity smoke (svereplay --smoke)"
cargo run -p ookami-bench --bin svereplay --release -- --smoke

echo "== counter-layer smoke (ookamistat --smoke, obs on) + schema check"
cargo run -p ookami-bench --features obs --bin ookamistat --release -- --smoke
cargo run -p ookami-bench --bin report --release -- --validate BENCH_obs.json

echo "== all checks passed"
