#!/usr/bin/env bash
# Repo gate: formatting, lints, and the tier-1 verify from ROADMAP.md.
# Run locally before pushing; CI (.github/workflows/ci.yml) runs the same.
set -euo pipefail
cd "$(dirname "$0")/.."

export RUSTFLAGS="-D warnings"

echo "== cargo fmt --check"
cargo fmt --all --check

echo "== cargo clippy (deny warnings, both obs modes)"
cargo clippy --workspace --all-targets -- -D warnings
cargo clippy --workspace --all-targets --features obs -- -D warnings

echo "== tier-1 verify: cargo build --release && cargo test -q"
cargo build --release
cargo test -q

echo "== test suite again with the obs counter layer compiled in"
cargo test -q --features obs

echo "== per-crate test suites, both obs modes (timeline/schedule proptests live here)"
cargo test -q --workspace
cargo test -q --workspace --features obs

echo "== criterion benches compile"
cargo bench --no-run

# Snapshot the committed baselines BEFORE any probe smoke overwrites them:
# benchdiff compares what the branch committed against what it produces.
baseline_dir="$(mktemp -d)"
trap 'rm -rf "$baseline_dir"' EXIT
cp BENCH_*.json "$baseline_dir"/

echo "== trace-replay + compiled-trace identity smoke (svereplay --smoke, both obs modes)"
# The probe drives interpreter, replayer, and the compiled native path and
# asserts bit/instruction identity in both builds; with obs it additionally
# asserts exact counter identity across all three executors. Each run also
# rewrites target/COMPILE_REPORT.json (pass-pipeline stats per variant).
cargo run -p ookami-bench --bin svereplay --release -- --smoke
cargo run -p ookami-bench --features obs --bin svereplay --release -- --smoke

echo "== sharded cache-sim identity smoke (cachesim --smoke, both obs modes)"
# Serial CacheSim vs ShardedCacheSim (serial dispatch and pool-parallel at
# several thread counts) must agree exactly on both machine geometries.
cargo run -p ookami-bench --bin cachesim --release -- --smoke
cargo run -p ookami-bench --features obs --bin cachesim --release -- --smoke

echo "== irregular-memory family smoke (spmv --smoke, both obs modes)"
# CRS/SELL-C-σ/STREAM/stencil executors must stay bit-identical to their
# fused scalar references, and the ECM model must keep attributing the
# CRS family bandwidth_bound on the A64FX descriptor.
cargo run -p ookami-bench --bin spmv --release -- --smoke
cargo run -p ookami-bench --features obs --bin spmv --release -- --smoke

echo "== counter-layer smoke (ookamistat --smoke, obs on) + trace + schema check"
cargo run -p ookami-bench --features obs --bin ookamistat --release -- --smoke --trace target/trace.json
cargo run -p ookami-bench --bin report --release -- --validate BENCH_obs.json

echo "== span-tree profiler smoke (ookamiprof --smoke, both obs modes)"
# With obs the probe asserts histogram counts, span-tree counts, and the
# 13 deterministic counters agree across interpreter/replayer/compiled,
# and exports the collapsed flamegraph stacks; without obs it must still
# produce a schema-valid report from the no-op telemetry layer.
cargo run -p ookami-bench --bin ookamiprof --release -- --smoke
cargo run -p ookami-bench --features obs --bin ookamiprof --release -- --smoke
cargo run -p ookami-bench --bin report --release -- --validate BENCH_prof.json
test -s target/PROFILE.collapsed

echo "== live HTTP endpoint selfcheck (ookamiserve --selfcheck, both obs modes)"
# Binds an ephemeral port, runs a bounded workload, and validates every
# endpoint (/metrics /profile /trace /samples /bench/<name>) with the
# in-repo Prometheus/Json/collapsed-stack parsers over real HTTP.
cargo run -p ookami-bench --bin ookamiserve --release -- --selfcheck --smoke
cargo run -p ookami-bench --features obs --bin ookamiserve --release -- --selfcheck --smoke

echo "== bench-trajectory gate (benchdiff vs committed baselines)"
cargo run -p ookami-bench --features obs --bin benchdiff --release -- \
  --baseline "$baseline_dir" --current . --out target/BENCHDIFF.json
# Self-test: an injected synthetic regression must trip the gate (exit 1)
# and --explain must rank the counter deltas that caused it.
inject_out="$(mktemp)"
if cargo run -p ookami-bench --features obs --bin benchdiff --release -- \
  --baseline "$baseline_dir" --current . --out target/BENCHDIFF.inject.json \
  --inject-regression --explain >"$inject_out" 2>&1; then
  echo "benchdiff failed to flag an injected regression" >&2
  rm -f "$inject_out"
  exit 1
fi
if ! grep -q "top counter deltas vs baseline" "$inject_out"; then
  echo "benchdiff --explain produced no counter-delta ranking" >&2
  cat "$inject_out" >&2
  rm -f "$inject_out"
  exit 1
fi
rm -f "$inject_out"
# Leave the working tree as committed: the probe smokes overwrote the
# full-mode baselines with their small-problem numbers.
cp "$baseline_dir"/BENCH_*.json .

echo "== static verifier + mutation corpus (ookamicheck, both obs modes)"
cargo run -p ookami-bench --bin ookamicheck --release -- \
  --mutations --json target/OOKAMICHECK.json
cargo run -p ookami-bench --features obs --bin ookamicheck --release -- \
  --mutations --json target/OOKAMICHECK.obs.json
cargo run -p ookami-bench --bin report --release -- \
  --validate target/OOKAMICHECK.json target/OOKAMICHECK.obs.json

echo "== translation validator (ookamicheck --tv, both obs modes)"
# Proves every family trace pass-by-pass through the compiler pipeline
# (abstract-domain equivalence, bounds re-proof, counter recipes) and
# runs the 24-seed mutation self-test; the report schema is validated
# like every other artifact.
cargo run -p ookami-bench --bin ookamicheck --release -- \
  --tv --json target/OOKAMICHECK.tv.json
cargo run -p ookami-bench --features obs --bin ookamicheck --release -- \
  --tv --json target/OOKAMICHECK.tv.obs.json
cargo run -p ookami-bench --bin report --release -- \
  --validate target/OOKAMICHECK.tv.json target/OOKAMICHECK.tv.obs.json
# Self-test: a trail with a tampered stage and a bumped static counter
# must both be flagged (exit 1).
if cargo run -p ookami-bench --bin ookamicheck --release -- \
  --inject-tv >/dev/null 2>&1; then
  echo "ookamicheck failed to flag the injected TV defects" >&2
  exit 1
fi

echo "== race detector over real pool kernels (obs timeline) + inject self-test"
# Under obs the binary replays recorded timeline events from the shipped
# kernels and requires zero races; without obs it prints a SKIPPED notice.
cargo run -p ookami-bench --features obs --bin ookamicheck --release
# Self-test: the injected unordered-write stream must be flagged (exit 1).
if cargo run -p ookami-bench --features obs --bin ookamicheck --release -- \
  --inject-race >/dev/null 2>&1; then
  echo "ookamicheck failed to flag the injected race" >&2
  exit 1
fi
# Same for the telemetry-actor stream: two unordered sampler-slot writes.
if cargo run -p ookami-bench --features obs --bin ookamicheck --release -- \
  --inject-sampler-race >/dev/null 2>&1; then
  echo "ookamicheck failed to flag the injected sampler race" >&2
  exit 1
fi

echo "== miri (strict provenance) over the pool runtime, if available"
if cargo miri --version >/dev/null 2>&1; then
  # SendPtr keeps provenance through the pool (no usize round-trips), so
  # the runtime and pool suites must pass under strict provenance.
  MIRIFLAGS="-Zmiri-strict-provenance" cargo miri test -p ookami-core runtime:: pool::
else
  echo "   SKIPPED: cargo miri not installed (rustup component add miri)"
fi

echo "== all checks passed"
