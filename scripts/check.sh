#!/usr/bin/env bash
# Repo gate: formatting, lints, and the tier-1 verify from ROADMAP.md.
# Run locally before pushing; CI (.github/workflows/ci.yml) runs the same.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all --check

echo "== cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "== tier-1 verify: cargo build --release && cargo test -q"
cargo build --release
cargo test -q

echo "== criterion benches compile"
cargo bench --no-run

echo "== trace-replay identity smoke (svereplay --smoke)"
cargo run -p ookami-bench --bin svereplay --release -- --smoke

echo "== all checks passed"
