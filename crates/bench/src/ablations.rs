//! Ablation studies: turn the model's mechanisms off one at a time and
//! watch the paper's results appear/disappear. Each ablation isolates one
//! design choice DESIGN.md calls out:
//!
//! 1. **ROB window** — Section IV's "15 FP instructions issue in ~16
//!    cycles" comes from the ROB-limited ILP bound; sweeping the ROB shows
//!    the exp kernel moving from window-bound to port-bound.
//! 2. **Blocking FSQRT** — replace A64FX's 134-cycle blocking square root
//!    with a Skylake-style pipelined unit and the Fig. 2 sqrt cliff
//!    vanishes.
//! 3. **Gather pairing window** — sweep the coalescing window (none / 64 /
//!    128 / 256 bytes) and watch the short-gather speedup track it.
//! 4. **Page placement** — the Fig. 4 SP anomaly as a bandwidth curve
//!    under first-touch / CMG-0 / interleave.
//! 5. **Estrin vs Horner** — the §IV polynomial-form gap as a function of
//!    FMA latency (it's a latency phenomenon, not an op-count one).

use ookami_core::measure::Table;
use ookami_core::MathFunc;
use ookami_mem::gather::analyze_array;
use ookami_mem::placement::{effective_bandwidth_gbs, Placement};
use ookami_toolchain::mathlib::math_cycles_per_element;
use ookami_toolchain::Compiler;
use ookami_uarch::{CostEntry, CostTable, Machine, OpClass, Width};

/// A cost table delegating to another with selected entries overridden.
pub struct OverrideTable<'a> {
    pub inner: &'a (dyn CostTable + Sync),
    pub rob: Option<f64>,
    pub fsqrt_v512: Option<CostEntry>,
    pub fp_latency: Option<f64>,
}

impl<'a> OverrideTable<'a> {
    pub fn over(inner: &'a (dyn CostTable + Sync)) -> Self {
        OverrideTable {
            inner,
            rob: None,
            fsqrt_v512: None,
            fp_latency: None,
        }
    }
}

impl CostTable for OverrideTable<'_> {
    fn cost(&self, op: OpClass, w: Width) -> CostEntry {
        let mut e = self.inner.cost(op, w);
        if let (OpClass::FSqrt, Width::V512, Some(o)) = (op, w, self.fsqrt_v512) {
            e = o;
        }
        if let Some(lat) = self.fp_latency {
            if matches!(op, OpClass::Fma | OpClass::FAdd | OpClass::FMul) {
                e.latency = lat;
            }
        }
        e
    }

    fn issue_width(&self) -> f64 {
        self.inner.issue_width()
    }

    fn rob_size(&self) -> f64 {
        self.rob.unwrap_or_else(|| self.inner.rob_size())
    }

    fn num_ports(&self) -> usize {
        self.inner.num_ports()
    }

    fn port_names(&self) -> &'static [&'static str] {
        self.inner.port_names()
    }
}

/// Record the §IV exp kernel once and analyze it under a custom table.
fn exp_kernel() -> ookami_uarch::KernelLoop {
    use ookami_sve::record_kernel;
    use ookami_vecmath::exp::{exp_fexpa, PolyForm};
    record_kernel(8, 8.0, |ctx| {
        let pg = ctx.ptrue();
        let data = vec![0.5f64; 8];
        let mut out = vec![0.0f64; 8];
        let x = ctx.ld1d(&pg, &data, 0);
        let y = exp_fexpa(ctx, &pg, &x, PolyForm::Estrin, false);
        ctx.st1d(&pg, &y, &mut out, 0);
        let p = ctx.whilelt(0, 16);
        ctx.ptest(&p);
        ctx.loop_overhead(2);
        vec![]
    })
    .kernel
}

/// Ablation 1: exp cycles/element vs ROB size on A64FX.
pub fn rob_sweep(machine: &Machine) -> Vec<(f64, f64, &'static str)> {
    let k = exp_kernel();
    [32.0, 64.0, 128.0, 256.0, 512.0, 1e9]
        .iter()
        .map(|&rob| {
            let mut t = OverrideTable::over(machine.table);
            t.rob = Some(rob);
            let est = k.analyze(&t);
            (rob, est.cycles_per_element(), est.binding_bound())
        })
        .collect()
}

/// Ablation 2: the GNU sqrt loop with blocking vs pipelined FSQRT.
pub fn fsqrt_counterfactual(machine: &Machine) -> (f64, f64) {
    let blocking = math_cycles_per_element(MathFunc::Sqrt, Compiler::Gnu, machine);
    // Pipelined like Skylake's: lat 31, rthroughput 19.
    // Re-analyze the same kernel with the override applied by hand.
    use ookami_sve::record_kernel;
    use ookami_vecmath::sqrt::{sqrt, SqrtStyle};
    let rec = record_kernel(8, 8.0, |ctx| {
        let pg = ctx.ptrue();
        let data = vec![1.5f64; 8];
        let mut out = vec![0.0f64; 8];
        let x = ctx.ld1d(&pg, &data, 0);
        let y = sqrt(ctx, &pg, &x, SqrtStyle::Fsqrt);
        ctx.st1d(&pg, &y, &mut out, 0);
        let p = ctx.whilelt(0, 16);
        ctx.ptest(&p);
        ctx.loop_overhead(4);
        vec![]
    });
    let mut t = OverrideTable::over(machine.table);
    t.fsqrt_v512 = Some(CostEntry {
        latency: 31.0,
        rthroughput: 19.0,
        ports: machine.table.cost(OpClass::FSqrt, Width::V512).ports,
        uops: 1,
        blocking: false,
    });
    let pipelined = rec.kernel.analyze(&t).cycles_per_element();
    (blocking, pipelined)
}

/// Ablation 3: short-gather speedup vs pairing-window size.
pub fn pairing_window_sweep(machine: &Machine) -> Vec<(Option<usize>, f64)> {
    use rand::seq::SliceRandom;
    use rand::SeedableRng;
    let mut rng = rand::rngs::SmallRng::seed_from_u64(5);
    let n = 8192;
    let mut full: Vec<usize> = (0..n).collect();
    full.shuffle(&mut rng);
    let mut short: Vec<usize> = (0..n).collect();
    for w in short.chunks_mut(16) {
        w.shuffle(&mut rng);
    }
    [None, Some(64), Some(128), Some(256)]
        .iter()
        .map(|&window| {
            let mut g = machine.gather;
            g.pair_window_bytes = window;
            let f = analyze_array(&full, 8, machine.mem.line_bytes, &g, machine.vector_width);
            let s = analyze_array(&short, 8, machine.mem.line_bytes, &g, machine.vector_width);
            (
                window,
                f.gather_cycles_per_vector(&g) / s.gather_cycles_per_vector(&g),
            )
        })
        .collect()
}

/// Ablation 4: effective bandwidth (GB/s) per placement policy and thread
/// count — the raw curve behind the Fig. 4 SP anomaly.
pub fn placement_sweep(machine: &Machine) -> Vec<(Placement, Vec<(usize, f64)>)> {
    [
        Placement::FirstTouch,
        Placement::Domain0,
        Placement::Interleave,
    ]
    .iter()
    .map(|&p| {
        let pts = [1usize, 6, 12, 24, 36, 48]
            .iter()
            .map(|&t| (t, effective_bandwidth_gbs(&machine.numa, p, t)))
            .collect();
        (p, pts)
    })
    .collect()
}

/// Ablation 5: Estrin-vs-Horner gap (cycles/element delta) vs FMA latency.
pub fn poly_form_vs_latency(machine: &Machine) -> Vec<(f64, f64, f64)> {
    use ookami_sve::record_kernel;
    use ookami_vecmath::exp::{exp_fexpa, PolyForm};
    let kernel_for = |form: PolyForm| {
        record_kernel(8, 8.0, |ctx| {
            let pg = ctx.ptrue();
            let data = vec![0.5f64; 8];
            let mut out = vec![0.0f64; 8];
            let x = ctx.ld1d(&pg, &data, 0);
            let y = exp_fexpa(ctx, &pg, &x, form, false);
            ctx.st1d(&pg, &y, &mut out, 0);
            ctx.loop_overhead(2);
            vec![]
        })
        .kernel
    };
    let kh = kernel_for(PolyForm::Horner);
    let ke = kernel_for(PolyForm::Estrin);
    [4.0, 6.0, 9.0, 12.0]
        .iter()
        .map(|&lat| {
            let mut t = OverrideTable::over(machine.table);
            t.fp_latency = Some(lat);
            (
                lat,
                kh.analyze(&t).cycles_per_element(),
                ke.analyze(&t).cycles_per_element(),
            )
        })
        .collect()
}

/// Render all ablations as text.
pub fn render_all(machine: &Machine) -> String {
    let mut out = String::new();

    let mut t = Table::new(
        "Ablation 1 — §IV exp kernel vs ROB size (A64FX ships 128)",
        &["rob", "cycles/elem", "binding bound"],
    );
    for (rob, cpe, bound) in rob_sweep(machine) {
        let label = if rob >= 1e8 {
            "inf".to_string()
        } else {
            format!("{rob:.0}")
        };
        t.row(&[label, format!("{cpe:.2}"), bound.to_string()]);
    }
    out.push_str(&t.render());
    out.push('\n');

    let (blocking, pipelined) = fsqrt_counterfactual(machine);
    let mut t = Table::new(
        "Ablation 2 — GNU sqrt loop with A64FX's blocking FSQRT vs a pipelined one",
        &["fsqrt unit", "cycles/elem"],
    );
    t.row(&[
        "blocking 134c (real A64FX)".into(),
        format!("{blocking:.2}"),
    ]);
    t.row(&[
        "pipelined 31c/19c (SKX-like)".into(),
        format!("{pipelined:.2}"),
    ]);
    out.push_str(&t.render());
    out.push('\n');

    let mut t = Table::new(
        "Ablation 3 — short-gather speedup vs pairing-window size (hardware: 128 B)",
        &["window", "full/short speedup"],
    );
    for (w, sp) in pairing_window_sweep(machine) {
        t.row(&[
            w.map_or_else(|| "none".into(), |b| format!("{b} B")),
            format!("{sp:.2}"),
        ]);
    }
    out.push_str(&t.render());
    out.push('\n');

    let mut t = Table::new(
        "Ablation 4 — effective bandwidth (GB/s) by placement policy (Fig. 4's mechanism)",
        &["threads", "first-touch", "CMG0", "interleave"],
    );
    let sweeps = placement_sweep(machine);
    for i in 0..sweeps[0].1.len() {
        t.row(&[
            sweeps[0].1[i].0.to_string(),
            format!("{:.0}", sweeps[0].1[i].1),
            format!("{:.0}", sweeps[1].1[i].1),
            format!("{:.0}", sweeps[2].1[i].1),
        ]);
    }
    out.push_str(&t.render());
    out.push('\n');

    let mut t = Table::new(
        "Ablation 5 — Estrin vs Horner (§IV) as FMA latency grows",
        &["fma latency", "horner c/e", "estrin c/e"],
    );
    for (lat, h, e) in poly_form_vs_latency(machine) {
        t.row(&[format!("{lat:.0}"), format!("{h:.2}"), format!("{e:.2}")]);
    }
    out.push_str(&t.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ookami_uarch::machines;

    #[test]
    fn rob_sweep_monotone_and_transitions() {
        let sweep = rob_sweep(machines::a64fx());
        // cycles/element never increase as the ROB grows…
        for w in sweep.windows(2) {
            assert!(w[1].1 <= w[0].1 + 1e-9, "{sweep:?}");
        }
        // …small ROBs are window-bound; an infinite ROB is not.
        assert_eq!(sweep.first().unwrap().2, "window");
        assert_ne!(sweep.last().unwrap().2, "window");
        // shipping config (128) sits near the paper's ~2 c/e
        let at128 = sweep.iter().find(|(r, _, _)| *r == 128.0).unwrap().1;
        assert!(at128 > 1.5 && at128 < 3.0, "{at128}");
    }

    #[test]
    fn pipelined_fsqrt_removes_the_cliff() {
        let (blocking, pipelined) = fsqrt_counterfactual(machines::a64fx());
        assert!(blocking > 15.0, "{blocking}");
        assert!(pipelined < blocking / 4.0, "{blocking} -> {pipelined}");
    }

    #[test]
    fn pairing_window_drives_short_gather() {
        let sweep = pairing_window_sweep(machines::a64fx());
        let none = sweep[0].1;
        let w128 = sweep.iter().find(|(w, _)| *w == Some(128)).unwrap().1;
        assert!(
            (none - 1.0).abs() < 0.05,
            "no window => no speedup, got {none}"
        );
        assert!(w128 > 1.7, "128-B window speedup {w128}");
        // Wider windows pair at least as often.
        let w256 = sweep.iter().find(|(w, _)| *w == Some(256)).unwrap().1;
        assert!(w256 >= w128 - 0.05);
    }

    #[test]
    fn placement_sweep_shows_fig4_anomaly() {
        let sweeps = placement_sweep(machines::a64fx());
        let ft48 = sweeps[0].1.last().unwrap().1;
        let d048 = sweeps[1].1.last().unwrap().1;
        assert!(ft48 / d048 > 4.0, "ft {ft48} vs cmg0 {d048}");
        // identical at 1 thread
        assert!((sweeps[0].1[0].1 - sweeps[1].1[0].1).abs() < 1e-9);
    }

    #[test]
    fn estrin_gap_grows_with_latency() {
        let sweep = poly_form_vs_latency(machines::a64fx());
        let gaps: Vec<f64> = sweep.iter().map(|(_, h, e)| h - e).collect();
        assert!(gaps.last().unwrap() > gaps.first().unwrap(), "{gaps:?}");
        // Estrin never slower.
        assert!(sweep.iter().all(|&(_, h, e)| e <= h + 1e-9));
    }

    #[test]
    fn render_is_complete() {
        let s = render_all(machines::a64fx());
        for needle in ["Ablation 1", "Ablation 5", "blocking 134c", "CMG0"] {
            assert!(s.contains(needle), "missing {needle}");
        }
    }
}
