//! Representative model-kernel traces for the NPB, LULESH and HPCC
//! workload families, recorded through the SVE trace builder so the
//! `ookamicheck` static verifier covers every family the paper measures.
//!
//! The big ports (CG's full solver, the Sedov hydro step, blocked DGEMM)
//! run through the native `par_*` runtime, not the emulator — so each
//! family contributes the *vector inner loop* that dominates its profile,
//! written exactly as the Section III–VII analyses model it: CG's
//! gather + FMA sparse row product, LULESH's EOS polynomial with a
//! predicated pressure clamp, and HPCC's STREAM triad / DGEMM rank-1 FMA
//! chain.

use ookami_spmv::stream::StreamKernel;
use ookami_spmv::{Crs, GatherHints, SellCSigma, Stencil};
use ookami_sve::{Trace, TraceBuilder};

/// NPB CG: one sparse row-times-vector step — gather `x[col[j]]`, FMA
/// into the carried row accumulator (the gather-bound loop behind the
/// paper's CG scaling discussion).
pub fn cg_matvec_trace(vl: usize) -> Trace {
    // A stand-in for the solver's `x` vector: the verifier only needs the
    // real table length the gather is bound to.
    let x_table: Vec<f64> = (0..256).map(|i| 1.0 / (1.0 + i as f64)).collect();
    let mut b = TraceBuilder::new(vl);
    let pg = b.loop_pred();
    let col = b.input_i64();
    let a = b.input_f64();
    b.begin_body();
    let ctx = b.ctx();
    let acc0 = ctx.dup_f64(0.0);
    let xg = ctx.ld1d_gather(&pg, &x_table, &col, 8);
    let acc1 = ctx.fmla(&pg, &acc0, &a, &xg);
    b.carry(&acc0, &acc1);
    b.finish(&[&acc1])
}

/// LULESH: the EOS inner loop — a Horner pressure polynomial
/// `p = (c2·e + c1)·e + c0` with the hydro's floor clamp
/// `p = max(p, pmin)` done as compare + select (the predicated pattern
/// `CalcPressureForElems` vectorizes to).
pub fn lulesh_eos_trace(vl: usize) -> Trace {
    let mut b = TraceBuilder::new(vl);
    let pg = b.loop_pred();
    let e = b.input_f64();
    b.begin_body();
    let ctx = b.ctx();
    let c0 = ctx.dup_f64(1.0e-9);
    let c1 = ctx.dup_f64(2.0 / 3.0);
    let c2 = ctx.dup_f64(1.0e-4);
    let pmin = ctx.dup_f64(0.0);
    let t = ctx.fmla(&pg, &c1, &c2, &e);
    let p = ctx.fmla(&pg, &c0, &t, &e);
    let ok = ctx.fcmgt(&pg, &p, &pmin);
    let clamped = ctx.sel(&ok, &p, &pmin);
    b.finish(&[&clamped])
}

/// HPCC STREAM triad: `a[i] = b[i] + s·c[i]` — one FMA per element, the
/// bandwidth-bound kernel anchoring the Fig. 8 STREAM columns.
pub fn hpcc_triad_trace(vl: usize) -> Trace {
    let mut b = TraceBuilder::new(vl);
    let pg = b.loop_pred();
    let bv = b.input_f64();
    let cv = b.input_f64();
    b.begin_body();
    let ctx = b.ctx();
    let s = ctx.dup_f64(3.0);
    let a = ctx.fmla(&pg, &bv, &s, &cv);
    b.finish(&[&a])
}

/// HPCC DGEMM microkernel: a rank-1 update `acc += a·b` carried across
/// the k loop — the FMA chain the Fig. 8/9 DGEMM peak fractions rest on.
pub fn hpcc_dgemm_trace(vl: usize) -> Trace {
    let mut b = TraceBuilder::new(vl);
    let pg = b.loop_pred();
    let a = b.input_f64();
    let bb = b.input_f64();
    b.begin_body();
    let ctx = b.ctx();
    let acc0 = ctx.dup_f64(0.0);
    let acc1 = ctx.fmla(&pg, &acc0, &a, &bb);
    b.carry(&acc0, &acc1);
    b.finish(&[&acc1])
}

// ---------------------------------------------------------------------------
// Irregular-memory families (ookami-spmv): fixed small fixtures so the
// static verifier covers the exact trace shapes the `spmv` probe runs at
// scale. The fixture matrix is ragged on purpose — predicated tails and
// SELL padding are the parts worth verifying.
// ---------------------------------------------------------------------------

/// The deterministic `(matrix, x)` pair behind every SpMV family trace
/// (also the mutation-self-test base in `ookamicheck`).
pub fn spmv_fixture() -> (Crs, Vec<f64>) {
    let m = Crs::ragged(24, 32, 6, 1);
    let x = (0..m.n_cols).map(|i| 1.0 / (1.0 + i as f64)).collect();
    (m, x)
}

/// CRS SpMV inner kernel: activity-predicated triple gather
/// (value, column, `x[col]`) + carried FMA.
pub fn spmv_crs_trace(vl: usize) -> Trace {
    let (m, x) = spmv_fixture();
    ookami_spmv::crs_trace(&m, &x, vl, GatherHints::uniform(vl as u32))
}

/// SELL-C-σ SpMV inner kernel: streamed slabs, single `x` gather,
/// carried FMA (C = `vl`, σ covers the fixture).
pub fn spmv_sell_trace(vl: usize) -> Trace {
    let (m, x) = spmv_fixture();
    let s = SellCSigma::from_crs(&m, vl, m.n_rows);
    ookami_spmv::sell_trace(&s, &x, GatherHints::uniform(vl as u32))
}

/// STREAM copy (`ORR` move alias — bit-faithful).
pub fn stream_copy_trace(vl: usize) -> Trace {
    ookami_spmv::stream_trace(StreamKernel::Copy, vl)
}

/// STREAM scale (`b = s·c`).
pub fn stream_scale_trace(vl: usize) -> Trace {
    ookami_spmv::stream_trace(StreamKernel::Scale, vl)
}

/// STREAM add (`c = a + b`).
pub fn stream_add_trace(vl: usize) -> Trace {
    ookami_spmv::stream_trace(StreamKernel::Add, vl)
}

/// STREAM triad (`a = b + s·c`).
pub fn stream_triad_trace(vl: usize) -> Trace {
    ookami_spmv::stream_trace(StreamKernel::Triad, vl)
}

/// The 4-point (2-D) Wilson-Dslash-flavored periodic stencil.
pub fn stencil4_trace(vl: usize) -> Trace {
    let st = Stencil::d2(8, 8, 0.5, -0.125);
    st.trace(&st.field(), vl, vl as u32)
}

/// The 7-point (3-D) stencil variant.
pub fn stencil7_trace(vl: usize) -> Trace {
    let st = Stencil::d3(4, 4, 4, 0.5, -0.125);
    st.trace(&st.field(), vl, vl as u32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn family_traces_record_and_replay() {
        // Each family trace must at least be a well-formed recording; the
        // triad one is checked numerically end-to-end.
        assert!(cg_matvec_trace(8).body_len() >= 2);
        assert!(lulesh_eos_trace(8).body_len() >= 4);
        assert!(hpcc_dgemm_trace(8).body_len() >= 1);
        let t = hpcc_triad_trace(8);
        let b: Vec<f64> = (0..32).map(f64::from).collect();
        let c: Vec<f64> = (0..32).map(|i| 0.5 * f64::from(i)).collect();
        let out = t.map2(&b, &c);
        for i in 0..32 {
            assert_eq!(out[i], b[i] + 3.0 * c[i]);
        }
    }

    #[test]
    fn irregular_family_traces_record() {
        assert!(spmv_crs_trace(8).body_len() >= 6);
        assert!(spmv_sell_trace(8).body_len() >= 3);
        assert!(stream_copy_trace(8).body_len() >= 1);
        assert!(stream_scale_trace(8).body_len() >= 1);
        assert!(stream_add_trace(8).body_len() >= 1);
        assert!(stream_triad_trace(8).body_len() >= 1);
        // 4 (resp. 6) neighbor gathers + center + index math + combine.
        assert!(stencil4_trace(8).body_len() >= 4 * 3 + 2 + 3);
        assert!(stencil7_trace(8).body_len() >= 6 * 3 + 2 + 3);
    }

    #[test]
    fn spmv_family_traces_replay_the_fixture_bitwise() {
        let (m, x) = spmv_fixture();
        let want = m.spmv_ref(&x);
        let tc = spmv_crs_trace(8);
        let yc = ookami_spmv::run_crs_replay(&tc, &m);
        let s = SellCSigma::from_crs(&m, 8, m.n_rows);
        let ts = spmv_sell_trace(8);
        let ys = ookami_spmv::run_sell_replay(&ts, &s);
        for r in 0..m.n_rows {
            assert_eq!(want[r].to_bits(), yc[r].to_bits(), "crs row {r}");
            assert_eq!(want[r].to_bits(), ys[r].to_bits(), "sell row {r}");
        }
    }
}
