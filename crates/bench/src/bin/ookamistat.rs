//! `ookamistat` — the repo's `perf stat`: run a representative slice of
//! every workload family with the obs counter layer on, and report event
//! counts next to wall time. Run with:
//!
//! ```text
//! cargo run -p ookami-bench --features obs --bin ookamistat --release [--smoke]
//! ```
//!
//! Writes `BENCH_obs.json` (shared `ookami-bench-v1` schema, self-validated
//! before the write) and prints the Prometheus text exposition of the
//! session registry. Without `--features obs` the slice still runs — the
//! counter columns are just zero and the report says `obs_enabled: false`,
//! which is itself worth a smoke test (the no-op path must not crash).

use ookami_core::obs::{self, Counter, Json};
use ookami_core::timeline;
use ookami_hpcc::{dgemm_blocked, Fft};
use ookami_loops::{emulated, LoopSuite};
use ookami_lulesh::Hydro;
use ookami_npb::{cg, ep, Class};
use ookami_uarch::machines;
use ookami_vecmath::{exp_trace, ExpVariant};
use std::time::Instant;

/// One timed slice: returns wall seconds; counters accumulate globally.
fn timed(name: &str, f: impl FnOnce()) -> f64 {
    let _span = obs::region(name);
    let t0 = Instant::now();
    f();
    t0.elapsed().as_secs_f64()
}

fn usage() -> ! {
    println!(
        "ookamistat — run a slice of every workload family with the obs counters on\n\
         \n\
         usage: ookamistat [--smoke] [--trace <path>] [--serve <addr>] [--help]\n\
         \n\
         options:\n\
           --smoke         small problem sizes (CI); default is the full slice\n\
           --trace <path>  record a timeline and write a Chrome trace-event JSON\n\
                           file to <path> (open in chrome://tracing or Perfetto);\n\
                           requires --features obs for a non-empty trace\n\
           --serve <addr>  serve live /metrics /profile /trace /samples on <addr>\n\
                           for the duration of the run (port 0 = ephemeral)\n\
           --help          this text\n\
         \n\
         outputs: BENCH_obs.json (ookami-bench-v1 schema) and, with --trace,\n\
         the Chrome trace; exit is nonzero on any counter sanity failure."
    );
    std::process::exit(0)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut trace_path: Option<String> = None;
    let mut serve_addr: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--trace" => {
                if let Some(p) = it.next() {
                    trace_path = Some(p.clone());
                } else {
                    eprintln!("error: --trace needs a path argument");
                    std::process::exit(2);
                }
            }
            "--serve" => {
                if let Some(a) = it.next() {
                    serve_addr = Some(a.clone());
                } else {
                    eprintln!("error: --serve needs a host:port argument");
                    std::process::exit(2);
                }
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("error: unknown argument `{other}` (try --help)");
                std::process::exit(2);
            }
        }
    }
    let scale = if smoke { 1 } else { 4 };
    if !obs::enabled() {
        eprintln!(
            "note: built without the `obs` feature — counters read zero; \
             rebuild with --features obs for real counts"
        );
    }
    // Bind before the workload so a watcher can follow the run live; the
    // handle's Drop stops the server when main returns.
    let _server = serve_addr.as_deref().map(|addr| {
        let handle = ookami_core::telemetry::serve::spawn(addr).unwrap_or_else(|e| {
            eprintln!("error: cannot bind --serve {addr}: {e}");
            std::process::exit(2);
        });
        println!("serving live telemetry on http://{}/", handle.addr());
        handle
    });
    obs::reset();
    if trace_path.is_some() || serve_addr.is_some() {
        timeline::start(timeline::DEFAULT_CAPACITY);
    }
    let mut report = obs::BenchReport::new("ookamistat", if smoke { "smoke" } else { "full" });

    // --- Section III loops through the SVE emulator ---
    let vl = 8;
    let n_loop = 2048 * scale;
    let m = machines::a64fx();
    let t_loops = timed("loops", || {
        let mut s = LoopSuite::new(n_loop, 7);
        emulated::run_simple_sve(&mut s, vl);
        emulated::run_predicate_sve(&mut s, vl);
        emulated::run_gather_sve(&mut s, vl, false, m);
        emulated::run_scatter_sve(&mut s, vl, false);
    });
    report.metric("loops_seconds", t_loops);
    report.metric("loops_elements", n_loop as f64);

    // --- Section IV math: the FEXPA exp over a sweep (trace replay) ---
    let n_exp = 10_000 * scale;
    let xs: Vec<f64> = (0..n_exp)
        .map(|i| -700.0 + 1400.0 * i as f64 / n_exp as f64)
        .collect();
    let t_exp = timed("vecmath_exp", || {
        let t = exp_trace(vl, ExpVariant::FexpaEstrinCorrected);
        std::hint::black_box(t.map(&xs));
    });
    report.metric("exp_seconds", t_exp);
    report.metric("exp_elements", n_exp as f64);

    // --- Section V NPB: EP and CG (class S, pool-parallel) ---
    let t_npb = timed("npb", || {
        std::hint::black_box(ep::run(Class::S, 4));
        std::hint::black_box(cg::run(Class::S, 4));
    });
    report.metric("npb_seconds", t_npb);

    // --- Section VI LULESH: a few Sedov cycles, threaded ---
    let t_lulesh = timed("lulesh", || {
        let mut h = Hydro::sedov(8, 3.948746e7);
        h.run_mt(1.0, 4 * scale, 4);
    });
    report.metric("lulesh_seconds", t_lulesh);

    // --- Section VII HPCC: blocked DGEMM + Stockham FFT ---
    let nd = 96 * scale.min(2);
    let a: Vec<f64> = (0..nd * nd).map(|i| (i % 13) as f64 * 0.25).collect();
    let b: Vec<f64> = (0..nd * nd).map(|i| (i % 7) as f64 - 3.0).collect();
    let nf = 4096 * scale;
    let sig: Vec<(f64, f64)> = (0..nf)
        .map(|i| ((i as f64 * 0.37).sin(), (i as f64 * 0.11).cos()))
        .collect();
    let t_hpcc = timed("hpcc", || {
        let mut c = vec![0.0; nd * nd];
        dgemm_blocked(nd, nd, nd, 1.0, &a, &b, 0.0, &mut c);
        std::hint::black_box(&c);
        let fft = Fft::new(nf);
        std::hint::black_box(fft.forward(&sig));
        // STREAM is the family's pool-parallel member: its fork/chunk/
        // barrier counters give `report --derive` an hpcc row to place.
        let mut s = ookami_hpcc::stream::Stream::new(1 << 14 << scale.min(2));
        s.copy(4);
        s.scale(3.0, 4);
        s.add(4);
        s.triad(3.0, 4);
        std::hint::black_box(&s);
    });
    report.metric("hpcc_seconds", t_hpcc);

    // --- trace export (before rendering, so the trace ends at the last
    //     workload event rather than mid-report) ---
    if let Some(path) = &trace_path {
        timeline::stop();
        let doc = timeline::export_chrome_trace();
        // The exporter promises Json-parseable output; hold it to that
        // before the file lands on disk.
        let parsed = Json::parse(&doc).expect("exported Chrome trace must be valid JSON");
        if obs::enabled() {
            let Some(Json::Arr(events)) = parsed.get("traceEvents") else {
                panic!("trace missing traceEvents array")
            };
            // ≥ 1 span per workload family: every family slice above ran
            // under obs::region, so each name must open at least once.
            for family in ["loops", "vecmath_exp", "npb", "lulesh", "hpcc"] {
                let opened = events.iter().any(|e| {
                    matches!(e.get("ph"), Some(Json::Str(p)) if p == "B")
                        && matches!(e.get("name"), Some(Json::Str(n)) if n == family)
                });
                assert!(opened, "trace lacks a span for workload family `{family}`");
            }
            let stats = timeline::stats();
            println!(
                "trace: {} thread(s), {} event(s) retained, {} dropped",
                stats.threads, stats.events_retained, stats.events_dropped
            );
        }
        std::fs::write(path, &doc).expect("write Chrome trace");
        println!("wrote {path} (Chrome trace-event JSON; load in Perfetto)");
    }

    // --- render ---
    let snap = obs::snapshot();
    report.attach_obs(&snap);

    println!("ookamistat ({} mode)", if smoke { "smoke" } else { "full" });
    println!("{:>24}  {:>9}", "slice", "seconds");
    for (name, secs) in [
        ("loops", t_loops),
        ("vecmath_exp", t_exp),
        ("npb", t_npb),
        ("lulesh", t_lulesh),
        ("hpcc", t_hpcc),
    ] {
        println!("{name:>24}  {secs:>9.4}");
    }
    println!();
    if obs::enabled() {
        println!("{:>24}  {:>14}", "counter", "events");
        for (name, v) in snap.nonzero() {
            println!("{name:>24}  {v:>14}");
        }
        // Sanity anchors: the gather/scatter loops move one element per
        // index, and the FEXPA exp issues one FEXPA per vector.
        assert_eq!(
            snap.get(Counter::GatherElems),
            n_loop as u64,
            "gather element count off"
        );
        assert_eq!(
            snap.get(Counter::ScatterElems),
            n_loop as u64,
            "scatter element count off"
        );
        assert!(
            snap.get(Counter::FexpaIssues) >= n_exp.div_ceil(vl) as u64,
            "FEXPA issue count off"
        );
        println!();
    }
    println!("--- prometheus ---");
    // The telemetry exposition is a superset of obs::prometheus(): the
    // same counter gauges plus the region/chunk/barrier histograms.
    print!("{}", ookami_core::telemetry::prometheus());

    report
        .write("BENCH_obs.json")
        .expect("write BENCH_obs.json");
    // Belt and braces: re-read and validate what actually landed on disk.
    let disk = std::fs::read_to_string("BENCH_obs.json").expect("read back BENCH_obs.json");
    obs::validate_bench_json(&disk).expect("BENCH_obs.json fails schema validation");
    println!("wrote BENCH_obs.json (schema ookami-bench-v1, validated)");
}
