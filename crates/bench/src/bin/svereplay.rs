//! Trace-replay probe: record-once/replay-many vs the per-op interpreter.
//!
//! Runs the exp accuracy sweep (the hot caller the trace engine was built
//! for) through both executors, verifies the results are **bit-identical**
//! and that the trace lowers to the **same instruction stream** the
//! interpreter records (modulo register naming), then measures
//! elements/second and writes `BENCH_sve.json`. Run with:
//!
//! ```text
//! cargo run -p ookami-bench --bin svereplay --release [--smoke]
//! ```
//!
//! `--smoke` (CI mode) shrinks the sweep and skips the ≥5× speedup gate —
//! shared runners are too noisy for a hard perf assertion — but still
//! enforces both identity checks. The full run fails (exit 1) unless
//! replay is at least 5× the interpreter's elements/second.

use ookami_core::obs;
use ookami_sve::SveCtx;
use ookami_uarch::{Instr, OpClass, Reg, Width};
use ookami_vecmath::exp::{
    exp_fexpa, exp_poly13, exp_slice_interp, exp_trace, ExpVariant, Poly13Style, PolyForm,
};
use ookami_vecmath::ulp::sample_range;
use std::collections::HashMap;
use std::time::Instant;

const VARIANTS: [ExpVariant; 5] = [
    ExpVariant::FexpaHorner,
    ExpVariant::FexpaEstrin,
    ExpVariant::FexpaEstrinCorrected,
    ExpVariant::Poly13,
    ExpVariant::Poly13Sleef,
];

/// The same dispatch `ookami_vecmath::exp` uses internally, rebuilt from
/// the public kernels so the probe can drive the interpreter's recorder.
fn exp_kernel(
    ctx: &mut SveCtx,
    pg: &ookami_sve::Pred,
    x: &ookami_sve::VVal,
    v: ExpVariant,
) -> ookami_sve::VVal {
    match v {
        ExpVariant::FexpaHorner => exp_fexpa(ctx, pg, x, PolyForm::Horner, false),
        ExpVariant::FexpaEstrin => exp_fexpa(ctx, pg, x, PolyForm::Estrin, false),
        ExpVariant::FexpaEstrinCorrected => exp_fexpa(ctx, pg, x, PolyForm::Estrin, true),
        ExpVariant::Poly13 => exp_poly13(ctx, pg, x, Poly13Style::Plain),
        ExpVariant::Poly13Sleef => exp_poly13(ctx, pg, x, Poly13Style::Sleef),
    }
}

/// Canonical register renaming (first appearance order) so interpreter and
/// trace streams compare structurally.
type CanonInstr = (OpClass, Width, Option<u32>, Vec<u32>, Option<u32>);

fn canon(instrs: &[Instr]) -> Vec<CanonInstr> {
    let mut names: HashMap<Reg, u32> = HashMap::new();
    let rename = |r: Reg, names: &mut HashMap<Reg, u32>| -> u32 {
        let next = names.len() as u32;
        *names.entry(r).or_insert(next)
    };
    instrs
        .iter()
        .map(|i| {
            let srcs = i.srcs.iter().map(|&r| rename(r, &mut names)).collect();
            let dst = i.dst.map(|r| rename(r, &mut names));
            (i.op, i.width, dst, srcs, i.uops_hint)
        })
        .collect()
}

fn best_of<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    obs::reset();
    let obs_before = obs::snapshot();
    let vl = 8usize;
    let n = if smoke { 4_001 } else { 40_001 };
    let reps = if smoke { 2 } else { 5 };
    let xs = sample_range(-700.0, 700.0, n);
    let headline = ExpVariant::FexpaEstrinCorrected;

    // --- correctness gates: every variant, both executors, same bits ---
    let mut bit_identical = true;
    let mut instrs_identical = true;
    for v in VARIANTS {
        let want = exp_slice_interp(vl, &xs, v);
        let t = exp_trace(vl, v);
        let got = t.map(&xs);
        let par = t.par_map(4, &xs);
        let same = want.len() == got.len()
            && want
                .iter()
                .zip(&got)
                .all(|(a, b)| a.to_bits() == b.to_bits())
            && want
                .iter()
                .zip(&par)
                .all(|(a, b)| a.to_bits() == b.to_bits());
        if !same {
            bit_identical = false;
            eprintln!("FAIL: {v:?} replay is not bit-identical to the interpreter");
        }

        let mut ctx = SveCtx::new(vl);
        let pg = ctx.ptrue();
        let x = ctx.input_f64(&vec![0.5; vl]);
        ctx.start_recording();
        let _ = exp_kernel(&mut ctx, &pg, &x, v);
        let want_stream = canon(&ctx.take_recording());
        let got_stream = canon(&t.to_instrs());
        if want_stream != got_stream {
            instrs_identical = false;
            eprintln!("FAIL: {v:?} trace lowers to a different instruction stream");
        }
    }

    // --- throughput: headline variant ---
    let interp_s = best_of(reps, || {
        std::hint::black_box(exp_slice_interp(vl, &xs, headline));
    });
    let t = exp_trace(vl, headline);
    let replay_s = best_of(reps * 4, || {
        std::hint::black_box(t.map(&xs));
    });
    let par_s = best_of(reps * 4, || {
        std::hint::black_box(t.par_map(4, &xs));
    });
    let record_s = best_of(reps, || {
        std::hint::black_box(exp_trace(vl, headline));
    });

    let interp_eps = n as f64 / interp_s;
    let replay_eps = n as f64 / replay_s;
    let par_eps = n as f64 / par_s;
    let speedup = replay_eps / interp_eps;

    println!("svereplay: exp sweep, {n} elements, vl={vl}, {headline:?}");
    println!("  interpreter : {interp_eps:>12.0} elems/s");
    println!(
        "  trace replay: {:>12.0} elems/s  ({speedup:.1}x, record cost {:.1} µs)",
        replay_eps,
        record_s * 1e6
    );
    println!("  replay par4 : {par_eps:>12.0} elems/s");
    println!(
        "  bit-identical: {bit_identical}   instruction streams identical: {instrs_identical}"
    );

    let mut report = obs::BenchReport::new("svereplay", if smoke { "smoke" } else { "full" });
    report
        .metric("vl", vl as f64)
        .metric("elements", n as f64)
        .metric("interp_elems_per_sec", interp_eps)
        .metric("replay_elems_per_sec", replay_eps)
        .metric("replay_par4_elems_per_sec", par_eps)
        .metric("record_cost_us", record_s * 1e6)
        .metric("speedup", speedup)
        .flag("variant", format!("{headline:?}"))
        .flag("bit_identical", bit_identical)
        .flag("instr_streams_identical", instrs_identical)
        .attach_obs(&obs::snapshot().since(&obs_before));
    report
        .write("BENCH_sve.json")
        .expect("write BENCH_sve.json");
    println!("wrote BENCH_sve.json");

    if !bit_identical || !instrs_identical {
        std::process::exit(1);
    }
    if !smoke && speedup < 5.0 {
        eprintln!("FAIL: replay speedup {speedup:.2}x < 5x over the per-op interpreter");
        std::process::exit(1);
    }
    if smoke {
        println!("OK (smoke): identity checks passed; speedup {speedup:.1}x (not gated)");
    } else {
        println!("OK: replay is {speedup:.1}x the interpreter (>= 5x)");
    }
}
