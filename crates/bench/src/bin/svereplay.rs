//! Trace-replay probe: record-once/replay-many vs the per-op interpreter,
//! plus the AOT trace compiler (`ookami_sve::compile`) vs the replayer.
//!
//! Runs the exp accuracy sweep (the hot caller the trace engine was built
//! for) through all three executors, verifies the results are
//! **bit-identical**, the obs counters **exactly equal**, and that the
//! trace lowers to the **same instruction stream** the interpreter records
//! (modulo register naming), then measures elements/second and writes
//! `BENCH_sve.json` plus a per-variant pass-pipeline summary to
//! `target/COMPILE_REPORT.json`. Run with:
//!
//! ```text
//! cargo run -p ookami-bench --bin svereplay --release [--smoke]
//! ```
//!
//! `--smoke` (CI mode) shrinks the sweep and skips the speedup gates —
//! shared runners are too noisy for hard perf assertions — but still
//! enforces every identity check. The full run fails (exit 1) unless
//! replay is at least 5× the interpreter, and (with obs compiled in, the
//! configuration the committed baseline records) the compiled path is at
//! least 5× replay.
//!
//! The probe also sweeps both parallel executors over 1/2/4/8 threads and
//! publishes `replay_par_speedup` / `compiled_par_speedup` (4 threads vs
//! the engine's own serial path) together with `host_cores`, so
//! `benchdiff` can gate parallel scaling wherever the host actually has
//! the cores; on boxes with fewer than 4 cores the pool runs regions
//! inline and the par floors are skipped rather than faked.

use ookami_core::{auto_threads, obs};
use ookami_sve::SveCtx;
use ookami_uarch::{Instr, OpClass, Reg, Width};
use ookami_vecmath::exp::{
    exp_fexpa, exp_poly13, exp_slice_interp, exp_trace, ExpVariant, Poly13Style, PolyForm,
};
use ookami_vecmath::ulp::sample_range;
use std::collections::HashMap;
use std::time::Instant;

/// Thread counts swept by the parallel throughput section. 4 is the
/// headline (one A64FX CMG's worth of meaningful scaling on commodity
/// hosts); 8 probes oversubscription.
const SWEEP_THREADS: [usize; 4] = [1, 2, 4, 8];

const VARIANTS: [ExpVariant; 5] = [
    ExpVariant::FexpaHorner,
    ExpVariant::FexpaEstrin,
    ExpVariant::FexpaEstrinCorrected,
    ExpVariant::Poly13,
    ExpVariant::Poly13Sleef,
];

/// The same dispatch `ookami_vecmath::exp` uses internally, rebuilt from
/// the public kernels so the probe can drive the interpreter's recorder.
fn exp_kernel(
    ctx: &mut SveCtx,
    pg: &ookami_sve::Pred,
    x: &ookami_sve::VVal,
    v: ExpVariant,
) -> ookami_sve::VVal {
    match v {
        ExpVariant::FexpaHorner => exp_fexpa(ctx, pg, x, PolyForm::Horner, false),
        ExpVariant::FexpaEstrin => exp_fexpa(ctx, pg, x, PolyForm::Estrin, false),
        ExpVariant::FexpaEstrinCorrected => exp_fexpa(ctx, pg, x, PolyForm::Estrin, true),
        ExpVariant::Poly13 => exp_poly13(ctx, pg, x, Poly13Style::Plain),
        ExpVariant::Poly13Sleef => exp_poly13(ctx, pg, x, Poly13Style::Sleef),
    }
}

/// Canonical register renaming (first appearance order) so interpreter and
/// trace streams compare structurally.
type CanonInstr = (OpClass, Width, Option<u32>, Vec<u32>, Option<u32>);

fn canon(instrs: &[Instr]) -> Vec<CanonInstr> {
    let mut names: HashMap<Reg, u32> = HashMap::new();
    let rename = |r: Reg, names: &mut HashMap<Reg, u32>| -> u32 {
        let next = names.len() as u32;
        *names.entry(r).or_insert(next)
    };
    instrs
        .iter()
        .map(|i| {
            let srcs = i.srcs.iter().map(|&r| rename(r, &mut names)).collect();
            let dst = i.dst.map(|r| rename(r, &mut names));
            (i.op, i.width, dst, srcs, i.uops_hint)
        })
        .collect()
}

fn best_of<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

/// The counters that must be exactly equal across the three executors
/// (byte counters are compared separately: the interpreter's harness
/// stages padded tail lanes, so only replay-vs-compiled agree on bytes).
const IDENTITY_COUNTERS: [&str; 13] = [
    "sve_instrs",
    "sve_lanes_active",
    "port_fla",
    "port_flb",
    "port_pr",
    "port_exa",
    "port_exb",
    "port_eaga",
    "port_eagb",
    "port_br",
    "gather_elems",
    "scatter_elems",
    "fexpa_issues",
];

/// Per-thread obs deltas of `f`, projected onto [`IDENTITY_COUNTERS`]
/// (first array) and the byte counters (second).
fn counter_delta(f: impl FnOnce()) -> ([u64; 13], [u64; 2]) {
    let before = obs::thread_snapshot();
    f();
    let d = obs::thread_snapshot().since(&before);
    let mut out = [0u64; 13];
    for (slot, name) in out.iter_mut().zip(IDENTITY_COUNTERS.iter()) {
        *slot = d.get(obs::Counter::from_name(name).expect("known counter"));
    }
    let bytes = [
        d.get(obs::Counter::BytesLoaded),
        d.get(obs::Counter::BytesStored),
    ];
    (out, bytes)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    obs::reset();
    let obs_before = obs::snapshot();
    let vl = 8usize;
    let n = if smoke { 4_001 } else { 40_001 };
    let reps = if smoke { 2 } else { 5 };
    let xs = sample_range(-700.0, 700.0, n);
    let headline = ExpVariant::FexpaEstrinCorrected;

    // --- correctness gates: every variant, all three executors, same
    // bits, same counters ---
    let mut bit_identical = true;
    let mut instrs_identical = true;
    let mut counters_identical = true;
    let mut compile_reports = Vec::new();
    for v in VARIANTS {
        let want = exp_slice_interp(vl, &xs, v);
        let t = exp_trace(vl, v);
        let ct = t.compile();
        let same_as = |got: &[f64], what: &str| {
            let same = want.len() == got.len()
                && want
                    .iter()
                    .zip(got)
                    .all(|(a, b)| a.to_bits() == b.to_bits());
            if !same {
                eprintln!("FAIL: {v:?} {what} is not bit-identical to the interpreter");
            }
            same
        };
        bit_identical &= same_as(&t.replay_map(&xs), "replay");
        bit_identical &= same_as(&t.replay_par_map(4, &xs), "parallel replay");
        bit_identical &= same_as(&ct.map(&xs), "compiled execution");
        bit_identical &= same_as(&ct.par_map(4, &xs), "parallel compiled execution");
        if !ct.is_native() {
            eprintln!("FAIL: {v:?} was rejected by the native-compilation gate");
            bit_identical = false;
        }
        compile_reports.push((format!("{v:?}"), ct.report()));

        // Counter identity across the three executors (vacuous without
        // obs): the kernel's retired-op totals must not depend on the
        // execution strategy.
        if obs::enabled() {
            let (ci, _) = counter_delta(|| {
                std::hint::black_box(exp_slice_interp(vl, &xs, v));
            });
            let (cr, br) = counter_delta(|| {
                std::hint::black_box(t.replay_map(&xs));
            });
            let (cc, bc) = counter_delta(|| {
                std::hint::black_box(ct.map(&xs));
            });
            for (k, name) in IDENTITY_COUNTERS.iter().enumerate() {
                if !(ci[k] == cr[k] && cr[k] == cc[k]) {
                    counters_identical = false;
                    eprintln!(
                        "FAIL: {v:?} counter {name}: interp {} / replay {} / compiled {}",
                        ci[k], cr[k], cc[k]
                    );
                }
            }
            if br != bc {
                counters_identical = false;
                eprintln!("FAIL: {v:?} byte counters: replay {br:?} vs compiled {bc:?}");
            }
        }

        let mut ctx = SveCtx::new(vl);
        let pg = ctx.ptrue();
        let x = ctx.input_f64(&vec![0.5; vl]);
        ctx.start_recording();
        let _ = exp_kernel(&mut ctx, &pg, &x, v);
        let want_stream = canon(&ctx.take_recording());
        let got_stream = canon(&t.to_instrs());
        if want_stream != got_stream {
            instrs_identical = false;
            eprintln!("FAIL: {v:?} trace lowers to a different instruction stream");
        }
    }

    // --- throughput: headline variant ---
    let interp_s = best_of(reps, || {
        std::hint::black_box(exp_slice_interp(vl, &xs, headline));
    });
    let t = exp_trace(vl, headline);
    let replay_s = best_of(reps * 4, || {
        std::hint::black_box(t.replay_map(&xs));
    });
    let record_s = best_of(reps, || {
        std::hint::black_box(exp_trace(vl, headline));
    });
    let ct = t.compile();
    let compiled_s = best_of(reps * 4, || {
        std::hint::black_box(ct.map(&xs));
    });
    // Thread-scaling sweep: each entry is (threads, best-of seconds).
    let replay_sweep: Vec<(usize, f64)> = SWEEP_THREADS
        .iter()
        .map(|&th| {
            let s = best_of(reps * 4, || {
                std::hint::black_box(t.replay_par_map(th, &xs));
            });
            (th, s)
        })
        .collect();
    let compiled_sweep: Vec<(usize, f64)> = SWEEP_THREADS
        .iter()
        .map(|&th| {
            let s = best_of(reps * 4, || {
                std::hint::black_box(ct.par_map(th, &xs));
            });
            (th, s)
        })
        .collect();
    let sweep_at = |sweep: &[(usize, f64)], th: usize| {
        sweep
            .iter()
            .find(|&&(t, _)| t == th)
            .map(|&(_, s)| s)
            .expect("thread count is in the sweep")
    };
    let par_s = sweep_at(&replay_sweep, 4);
    let compiled_par_s = sweep_at(&compiled_sweep, 4);
    // `Trace::compile` clones the trace, so every call re-runs the full
    // pass pipeline + kernel emission: the one-time cost a caller pays
    // before amortizing it over replays.
    let compile_s = best_of(reps, || {
        std::hint::black_box(t.compile());
    });

    let interp_eps = n as f64 / interp_s;
    let replay_eps = n as f64 / replay_s;
    let par_eps = n as f64 / par_s;
    let compiled_eps = n as f64 / compiled_s;
    let compiled_par_eps = n as f64 / compiled_par_s;
    let speedup = replay_eps / interp_eps;
    let compiled_speedup = compiled_eps / replay_eps;
    // Parallel scaling vs each engine's own serial path at the headline
    // thread count (4). On a host with < 4 cores the pool clamps worker
    // count and these ratios hover near 1.0 — which is why both the probe
    // gate below and benchdiff's floors key off `host_cores`.
    let host_cores = auto_threads();
    let replay_par_speedup = replay_s / par_s;
    let compiled_par_speedup = compiled_s / compiled_par_s;

    println!("svereplay: exp sweep, {n} elements, vl={vl}, {headline:?}");
    println!("  interpreter : {interp_eps:>12.0} elems/s");
    println!(
        "  trace replay: {:>12.0} elems/s  ({speedup:.1}x, record cost {:.1} µs)",
        replay_eps,
        record_s * 1e6
    );
    println!("  replay par4 : {par_eps:>12.0} elems/s  ({replay_par_speedup:.2}x serial replay)");
    println!(
        "  compiled    : {:>12.0} elems/s  ({compiled_speedup:.1}x replay, compile cost {:.1} µs)",
        compiled_eps,
        compile_s * 1e6
    );
    println!(
        "  compiled par4: {compiled_par_eps:>11.0} elems/s  ({compiled_par_speedup:.2}x serial compiled)"
    );
    println!("  scaling ({host_cores} host core(s)):");
    for &(th, s) in &replay_sweep {
        println!("    replay   x{th}: {:>12.0} elems/s", n as f64 / s);
    }
    for &(th, s) in &compiled_sweep {
        println!("    compiled x{th}: {:>12.0} elems/s", n as f64 / s);
    }
    println!(
        "  bit-identical: {bit_identical}   counters identical: {counters_identical}   \
         instruction streams identical: {instrs_identical}"
    );

    let mut report = obs::BenchReport::new("svereplay", if smoke { "smoke" } else { "full" });
    report
        .metric("vl", vl as f64)
        .metric("elements", n as f64)
        .metric("interp_elems_per_sec", interp_eps)
        .metric("replay_elems_per_sec", replay_eps)
        .metric("replay_par4_elems_per_sec", par_eps)
        .metric("compiled_elems_per_sec", compiled_eps)
        .metric("compiled_par4_elems_per_sec", compiled_par_eps)
        .metric("record_cost_us", record_s * 1e6)
        .metric("compile_cost_us", compile_s * 1e6)
        .metric("speedup", speedup)
        .metric("compiled_speedup", compiled_speedup)
        .metric("host_cores", host_cores as f64)
        .metric("replay_par_speedup", replay_par_speedup)
        .metric("compiled_par_speedup", compiled_par_speedup)
        .flag("variant", format!("{headline:?}"))
        .flag("bit_identical", bit_identical)
        .flag("counters_identical", counters_identical)
        .flag("instr_streams_identical", instrs_identical)
        .attach_obs(&obs::snapshot().since(&obs_before));
    // Full sweep points (the par4 entries above are the headline pair and
    // already covered; the rest chart the scaling curve).
    for &(th, s) in replay_sweep.iter().filter(|&&(th, _)| th != 4) {
        report.metric(&format!("replay_par{th}_elems_per_sec"), n as f64 / s);
    }
    for &(th, s) in compiled_sweep.iter().filter(|&&(th, _)| th != 4) {
        report.metric(&format!("compiled_par{th}_elems_per_sec"), n as f64 / s);
    }
    report
        .write("BENCH_sve.json")
        .expect("write BENCH_sve.json");
    println!("wrote BENCH_sve.json");

    // Per-variant pass-pipeline summary (uploaded as a CI artifact).
    let entries: Vec<String> = compile_reports
        .iter()
        .map(|(name, r)| {
            format!(
                "{{\"variant\": \"{name}\", \"native\": {}, \"body_ops\": {}, \
                 \"opt_ops\": {}, \"kernels\": {}, \"fused\": {}, \"folded\": {}, \
                 \"pred_simplified\": {}, \"dead_removed\": {}}}",
                r.native,
                r.body_ops,
                r.opt_ops,
                r.kernels,
                r.fused,
                r.folded,
                r.pred_simplified,
                r.dead_removed
            )
        })
        .collect();
    let doc = format!(
        "{{\n\"schema\": \"compile-report-v1\",\n\"traces\": [\n{}\n]\n}}\n",
        entries.join(",\n")
    );
    obs::Json::parse(&doc).expect("compile report must be valid JSON");
    let _ = std::fs::create_dir_all("target");
    std::fs::write("target/COMPILE_REPORT.json", &doc).expect("write compile report");
    println!("wrote target/COMPILE_REPORT.json");

    if !bit_identical || !instrs_identical || !counters_identical {
        std::process::exit(1);
    }
    if !smoke && speedup < 5.0 {
        eprintln!("FAIL: replay speedup {speedup:.2}x < 5x over the per-op interpreter");
        std::process::exit(1);
    }
    // The compiled floor is calibrated against the obs-on accounting the
    // committed baseline records; without obs the replayer's fast paths
    // close part of the gap and the ratio is not comparable.
    if !smoke && obs::enabled() && compiled_speedup < 5.0 {
        eprintln!("FAIL: compiled speedup {compiled_speedup:.2}x < 5x over the replayer");
        std::process::exit(1);
    }
    // Parallel-scaling floors are capability-gated: with < 4 host cores
    // the pool runs regions inline (or with too few workers) and a 3x bar
    // would fail for reasons that have nothing to do with the code.
    if !smoke && obs::enabled() && host_cores >= 4 {
        if replay_par_speedup < 3.0 {
            eprintln!(
                "FAIL: replay par4 speedup {replay_par_speedup:.2}x < 3x on a \
                 {host_cores}-core host"
            );
            std::process::exit(1);
        }
        if compiled_par_speedup < 3.0 {
            eprintln!(
                "FAIL: compiled par4 speedup {compiled_par_speedup:.2}x < 3x on a \
                 {host_cores}-core host"
            );
            std::process::exit(1);
        }
    }
    if smoke {
        println!(
            "OK (smoke): identity checks passed; replay {speedup:.1}x, \
             compiled {compiled_speedup:.1}x (not gated)"
        );
    } else {
        println!(
            "OK: replay is {speedup:.1}x the interpreter (>= 5x); compiled is \
             {compiled_speedup:.1}x replay"
        );
    }
}
