//! Trace-replay probe: record-once/replay-many vs the per-op interpreter,
//! plus the AOT trace compiler (`ookami_sve::compile`) vs the replayer.
//!
//! Runs the exp accuracy sweep (the hot caller the trace engine was built
//! for) through all three executors, verifies the results are
//! **bit-identical**, the obs counters **exactly equal**, and that the
//! trace lowers to the **same instruction stream** the interpreter records
//! (modulo register naming), then measures elements/second and writes
//! `BENCH_sve.json` plus a per-variant pass-pipeline summary to
//! `target/COMPILE_REPORT.json`. Run with:
//!
//! ```text
//! cargo run -p ookami-bench --bin svereplay --release [--smoke]
//! ```
//!
//! `--smoke` (CI mode) shrinks the sweep and skips the speedup gates —
//! shared runners are too noisy for hard perf assertions — but still
//! enforces every identity check. The full run fails (exit 1) unless
//! replay is at least 5× the interpreter, and (with obs compiled in, the
//! configuration the committed baseline records) the compiled path is at
//! least 5× replay.

use ookami_core::obs;
use ookami_sve::SveCtx;
use ookami_uarch::{Instr, OpClass, Reg, Width};
use ookami_vecmath::exp::{
    exp_fexpa, exp_poly13, exp_slice_interp, exp_trace, ExpVariant, Poly13Style, PolyForm,
};
use ookami_vecmath::ulp::sample_range;
use std::collections::HashMap;
use std::time::Instant;

const VARIANTS: [ExpVariant; 5] = [
    ExpVariant::FexpaHorner,
    ExpVariant::FexpaEstrin,
    ExpVariant::FexpaEstrinCorrected,
    ExpVariant::Poly13,
    ExpVariant::Poly13Sleef,
];

/// The same dispatch `ookami_vecmath::exp` uses internally, rebuilt from
/// the public kernels so the probe can drive the interpreter's recorder.
fn exp_kernel(
    ctx: &mut SveCtx,
    pg: &ookami_sve::Pred,
    x: &ookami_sve::VVal,
    v: ExpVariant,
) -> ookami_sve::VVal {
    match v {
        ExpVariant::FexpaHorner => exp_fexpa(ctx, pg, x, PolyForm::Horner, false),
        ExpVariant::FexpaEstrin => exp_fexpa(ctx, pg, x, PolyForm::Estrin, false),
        ExpVariant::FexpaEstrinCorrected => exp_fexpa(ctx, pg, x, PolyForm::Estrin, true),
        ExpVariant::Poly13 => exp_poly13(ctx, pg, x, Poly13Style::Plain),
        ExpVariant::Poly13Sleef => exp_poly13(ctx, pg, x, Poly13Style::Sleef),
    }
}

/// Canonical register renaming (first appearance order) so interpreter and
/// trace streams compare structurally.
type CanonInstr = (OpClass, Width, Option<u32>, Vec<u32>, Option<u32>);

fn canon(instrs: &[Instr]) -> Vec<CanonInstr> {
    let mut names: HashMap<Reg, u32> = HashMap::new();
    let rename = |r: Reg, names: &mut HashMap<Reg, u32>| -> u32 {
        let next = names.len() as u32;
        *names.entry(r).or_insert(next)
    };
    instrs
        .iter()
        .map(|i| {
            let srcs = i.srcs.iter().map(|&r| rename(r, &mut names)).collect();
            let dst = i.dst.map(|r| rename(r, &mut names));
            (i.op, i.width, dst, srcs, i.uops_hint)
        })
        .collect()
}

fn best_of<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

/// The counters that must be exactly equal across the three executors
/// (byte counters are compared separately: the interpreter's harness
/// stages padded tail lanes, so only replay-vs-compiled agree on bytes).
const IDENTITY_COUNTERS: [&str; 13] = [
    "sve_instrs",
    "sve_lanes_active",
    "port_fla",
    "port_flb",
    "port_pr",
    "port_exa",
    "port_exb",
    "port_eaga",
    "port_eagb",
    "port_br",
    "gather_elems",
    "scatter_elems",
    "fexpa_issues",
];

/// Per-thread obs deltas of `f`, projected onto [`IDENTITY_COUNTERS`]
/// (first array) and the byte counters (second).
fn counter_delta(f: impl FnOnce()) -> ([u64; 13], [u64; 2]) {
    let before = obs::thread_snapshot();
    f();
    let d = obs::thread_snapshot().since(&before);
    let mut out = [0u64; 13];
    for (slot, name) in out.iter_mut().zip(IDENTITY_COUNTERS.iter()) {
        *slot = d.get(obs::Counter::from_name(name).expect("known counter"));
    }
    let bytes = [
        d.get(obs::Counter::BytesLoaded),
        d.get(obs::Counter::BytesStored),
    ];
    (out, bytes)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    obs::reset();
    let obs_before = obs::snapshot();
    let vl = 8usize;
    let n = if smoke { 4_001 } else { 40_001 };
    let reps = if smoke { 2 } else { 5 };
    let xs = sample_range(-700.0, 700.0, n);
    let headline = ExpVariant::FexpaEstrinCorrected;

    // --- correctness gates: every variant, all three executors, same
    // bits, same counters ---
    let mut bit_identical = true;
    let mut instrs_identical = true;
    let mut counters_identical = true;
    let mut compile_reports = Vec::new();
    for v in VARIANTS {
        let want = exp_slice_interp(vl, &xs, v);
        let t = exp_trace(vl, v);
        let ct = t.compile();
        let same_as = |got: &[f64], what: &str| {
            let same = want.len() == got.len()
                && want
                    .iter()
                    .zip(got)
                    .all(|(a, b)| a.to_bits() == b.to_bits());
            if !same {
                eprintln!("FAIL: {v:?} {what} is not bit-identical to the interpreter");
            }
            same
        };
        bit_identical &= same_as(&t.replay_map(&xs), "replay");
        bit_identical &= same_as(&t.replay_par_map(4, &xs), "parallel replay");
        bit_identical &= same_as(&ct.map(&xs), "compiled execution");
        bit_identical &= same_as(&ct.par_map(4, &xs), "parallel compiled execution");
        if !ct.is_native() {
            eprintln!("FAIL: {v:?} was rejected by the native-compilation gate");
            bit_identical = false;
        }
        compile_reports.push((format!("{v:?}"), ct.report()));

        // Counter identity across the three executors (vacuous without
        // obs): the kernel's retired-op totals must not depend on the
        // execution strategy.
        if obs::enabled() {
            let (ci, _) = counter_delta(|| {
                std::hint::black_box(exp_slice_interp(vl, &xs, v));
            });
            let (cr, br) = counter_delta(|| {
                std::hint::black_box(t.replay_map(&xs));
            });
            let (cc, bc) = counter_delta(|| {
                std::hint::black_box(ct.map(&xs));
            });
            for (k, name) in IDENTITY_COUNTERS.iter().enumerate() {
                if !(ci[k] == cr[k] && cr[k] == cc[k]) {
                    counters_identical = false;
                    eprintln!(
                        "FAIL: {v:?} counter {name}: interp {} / replay {} / compiled {}",
                        ci[k], cr[k], cc[k]
                    );
                }
            }
            if br != bc {
                counters_identical = false;
                eprintln!("FAIL: {v:?} byte counters: replay {br:?} vs compiled {bc:?}");
            }
        }

        let mut ctx = SveCtx::new(vl);
        let pg = ctx.ptrue();
        let x = ctx.input_f64(&vec![0.5; vl]);
        ctx.start_recording();
        let _ = exp_kernel(&mut ctx, &pg, &x, v);
        let want_stream = canon(&ctx.take_recording());
        let got_stream = canon(&t.to_instrs());
        if want_stream != got_stream {
            instrs_identical = false;
            eprintln!("FAIL: {v:?} trace lowers to a different instruction stream");
        }
    }

    // --- throughput: headline variant ---
    let interp_s = best_of(reps, || {
        std::hint::black_box(exp_slice_interp(vl, &xs, headline));
    });
    let t = exp_trace(vl, headline);
    let replay_s = best_of(reps * 4, || {
        std::hint::black_box(t.replay_map(&xs));
    });
    let par_s = best_of(reps * 4, || {
        std::hint::black_box(t.replay_par_map(4, &xs));
    });
    let record_s = best_of(reps, || {
        std::hint::black_box(exp_trace(vl, headline));
    });
    let ct = t.compile();
    let compiled_s = best_of(reps * 4, || {
        std::hint::black_box(ct.map(&xs));
    });
    let compiled_par_s = best_of(reps * 4, || {
        std::hint::black_box(ct.par_map(4, &xs));
    });
    // `Trace::compile` clones the trace, so every call re-runs the full
    // pass pipeline + kernel emission: the one-time cost a caller pays
    // before amortizing it over replays.
    let compile_s = best_of(reps, || {
        std::hint::black_box(t.compile());
    });

    let interp_eps = n as f64 / interp_s;
    let replay_eps = n as f64 / replay_s;
    let par_eps = n as f64 / par_s;
    let compiled_eps = n as f64 / compiled_s;
    let compiled_par_eps = n as f64 / compiled_par_s;
    let speedup = replay_eps / interp_eps;
    let compiled_speedup = compiled_eps / replay_eps;

    println!("svereplay: exp sweep, {n} elements, vl={vl}, {headline:?}");
    println!("  interpreter : {interp_eps:>12.0} elems/s");
    println!(
        "  trace replay: {:>12.0} elems/s  ({speedup:.1}x, record cost {:.1} µs)",
        replay_eps,
        record_s * 1e6
    );
    println!("  replay par4 : {par_eps:>12.0} elems/s");
    println!(
        "  compiled    : {:>12.0} elems/s  ({compiled_speedup:.1}x replay, compile cost {:.1} µs)",
        compiled_eps,
        compile_s * 1e6
    );
    println!("  compiled par4: {compiled_par_eps:>11.0} elems/s");
    println!(
        "  bit-identical: {bit_identical}   counters identical: {counters_identical}   \
         instruction streams identical: {instrs_identical}"
    );

    let mut report = obs::BenchReport::new("svereplay", if smoke { "smoke" } else { "full" });
    report
        .metric("vl", vl as f64)
        .metric("elements", n as f64)
        .metric("interp_elems_per_sec", interp_eps)
        .metric("replay_elems_per_sec", replay_eps)
        .metric("replay_par4_elems_per_sec", par_eps)
        .metric("compiled_elems_per_sec", compiled_eps)
        .metric("compiled_par4_elems_per_sec", compiled_par_eps)
        .metric("record_cost_us", record_s * 1e6)
        .metric("compile_cost_us", compile_s * 1e6)
        .metric("speedup", speedup)
        .metric("compiled_speedup", compiled_speedup)
        .flag("variant", format!("{headline:?}"))
        .flag("bit_identical", bit_identical)
        .flag("counters_identical", counters_identical)
        .flag("instr_streams_identical", instrs_identical)
        .attach_obs(&obs::snapshot().since(&obs_before));
    report
        .write("BENCH_sve.json")
        .expect("write BENCH_sve.json");
    println!("wrote BENCH_sve.json");

    // Per-variant pass-pipeline summary (uploaded as a CI artifact).
    let entries: Vec<String> = compile_reports
        .iter()
        .map(|(name, r)| {
            format!(
                "{{\"variant\": \"{name}\", \"native\": {}, \"body_ops\": {}, \
                 \"opt_ops\": {}, \"kernels\": {}, \"fused\": {}, \"folded\": {}, \
                 \"pred_simplified\": {}, \"dead_removed\": {}}}",
                r.native,
                r.body_ops,
                r.opt_ops,
                r.kernels,
                r.fused,
                r.folded,
                r.pred_simplified,
                r.dead_removed
            )
        })
        .collect();
    let doc = format!(
        "{{\n\"schema\": \"compile-report-v1\",\n\"traces\": [\n{}\n]\n}}\n",
        entries.join(",\n")
    );
    obs::Json::parse(&doc).expect("compile report must be valid JSON");
    let _ = std::fs::create_dir_all("target");
    std::fs::write("target/COMPILE_REPORT.json", &doc).expect("write compile report");
    println!("wrote target/COMPILE_REPORT.json");

    if !bit_identical || !instrs_identical || !counters_identical {
        std::process::exit(1);
    }
    if !smoke && speedup < 5.0 {
        eprintln!("FAIL: replay speedup {speedup:.2}x < 5x over the per-op interpreter");
        std::process::exit(1);
    }
    // The compiled floor is calibrated against the obs-on accounting the
    // committed baseline records; without obs the replayer's fast paths
    // close part of the gap and the ratio is not comparable.
    if !smoke && obs::enabled() && compiled_speedup < 5.0 {
        eprintln!("FAIL: compiled speedup {compiled_speedup:.2}x < 5x over the replayer");
        std::process::exit(1);
    }
    if smoke {
        println!(
            "OK (smoke): identity checks passed; replay {speedup:.1}x, \
             compiled {compiled_speedup:.1}x (not gated)"
        );
    } else {
        println!(
            "OK: replay is {speedup:.1}x the interpreter (>= 5x); compiled is \
             {compiled_speedup:.1}x replay"
        );
    }
}
