//! Profiler probe: drives the exp kernel through all three executors
//! (interpreter, trace replayer, compiled closures) under `obs::region`
//! spans with the timeline recording, then checks the live-telemetry
//! layer end to end:
//!
//! * region-latency **histogram counts** and **span-tree counts** must be
//!   bit-identical across the three executors (each ran exactly `reps`
//!   times, and the telemetry layer must not invent or lose a closing);
//! * the 13 deterministic identity counters must be exactly equal across
//!   executors (the svereplay invariant, re-checked through the profiler
//!   path);
//! * the **profiling overhead ratio** — the same compiled workload run
//!   bare vs under a region with the timeline recording — is published as
//!   `prof_overhead_ratio` and ceiling-gated by `benchdiff` (full mode,
//!   obs build), so the observability layer can never silently become the
//!   workload.
//!
//! Writes `BENCH_prof.json` (p50/p99 region latencies per executor) and
//! the collapsed-stack flamegraph export to `target/PROFILE.collapsed`
//! (inferno / speedscope load it directly). Run with:
//!
//! ```text
//! cargo run -p ookami-bench --features obs --bin ookamiprof --release [--smoke]
//! ```
//!
//! `--serve <addr>` embeds the live telemetry endpoint for the duration
//! of the run (`/metrics`, `/profile`, `/trace`, `/samples`).

use ookami_core::telemetry::{self, spantree, HistKind};
use ookami_core::{obs, timeline};
use ookami_vecmath::exp::{exp_slice_interp, exp_trace, ExpVariant};
use ookami_vecmath::ulp::sample_range;
use std::time::Instant;

/// The executor-strategy-neutral counters that must be exactly equal
/// across interpreter, replayer and compiled execution (the svereplay
/// invariant; byte counters differ on interpreter tail staging).
const IDENTITY_COUNTERS: [&str; 13] = [
    "sve_instrs",
    "sve_lanes_active",
    "port_fla",
    "port_flb",
    "port_pr",
    "port_exa",
    "port_exb",
    "port_eaga",
    "port_eagb",
    "port_br",
    "gather_elems",
    "scatter_elems",
    "fexpa_issues",
];

fn usage() -> ! {
    eprintln!(
        "ookamiprof: span-tree profiler probe with live-telemetry identity gates\n\
         usage: ookamiprof [--smoke] [--serve <addr>] [--out <path>] [--collapsed <path>]\n\
           --smoke            CI-sized run (no perf floors apply in smoke mode)\n\
           --serve <addr>     serve /metrics /profile /trace /samples during the run\n\
           --out <path>       report path (default BENCH_prof.json)\n\
           --collapsed <path> flamegraph export (default target/PROFILE.collapsed)"
    );
    std::process::exit(2);
}

fn delta_13(f: impl FnOnce()) -> [u64; 13] {
    let before = obs::thread_snapshot();
    f();
    let d = obs::thread_snapshot().since(&before);
    let mut out = [0u64; 13];
    for (slot, name) in out.iter_mut().zip(IDENTITY_COUNTERS.iter()) {
        *slot = d.get(obs::Counter::from_name(name).expect("known counter"));
    }
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut serve_addr: Option<String> = None;
    let mut out_path = "BENCH_prof.json".to_string();
    let mut collapsed_path = "target/PROFILE.collapsed".to_string();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--serve" => match it.next() {
                Some(addr) => serve_addr = Some(addr.clone()),
                None => usage(),
            },
            "--out" => match it.next() {
                Some(p) => out_path.clone_from(p),
                None => usage(),
            },
            "--collapsed" => match it.next() {
                Some(p) => collapsed_path.clone_from(p),
                None => usage(),
            },
            "--help" | "-h" => usage(),
            other => {
                eprintln!("error: unknown argument `{other}` (try --help)");
                std::process::exit(2);
            }
        }
    }
    if !obs::enabled() {
        eprintln!(
            "note: built without the `obs` feature — histograms and spans are \
             no-ops; identity gates are skipped"
        );
    }
    let server = serve_addr.as_deref().map(|addr| {
        let handle = telemetry::serve::spawn(addr).unwrap_or_else(|e| {
            eprintln!("error: cannot bind --serve {addr}: {e}");
            std::process::exit(2);
        });
        println!("serving live telemetry on http://{}/", handle.addr());
        handle
    });
    let sampler = telemetry::Sampler::start(std::time::Duration::from_millis(100), 64);

    obs::reset();
    let vl = 8usize;
    let n = if smoke { 2_001 } else { 20_001 };
    let reps: u32 = if smoke { 4 } else { 8 };
    let variant = ExpVariant::FexpaEstrinCorrected;
    let xs = sample_range(-700.0, 700.0, n);
    let t = exp_trace(vl, variant);
    let ct = t.compile();

    let mut report = obs::BenchReport::new("ookamiprof", if smoke { "smoke" } else { "full" });
    report.metric("n", n as f64).metric("reps", f64::from(reps));
    report.metric("host_cores", ookami_core::auto_threads() as f64);

    // --- Profiling overhead: same compiled workload, bare vs profiled ---
    timeline::stop();
    std::hint::black_box(ct.map(&xs)); // warm up caches and allocators
    let orep = reps * 2;
    let t0 = Instant::now();
    for _ in 0..orep {
        std::hint::black_box(ct.map(&xs));
    }
    let bare_s = t0.elapsed().as_secs_f64();
    timeline::start(timeline::DEFAULT_CAPACITY);
    let t0 = Instant::now();
    for _ in 0..orep {
        let _span = obs::region("prof_overhead");
        std::hint::black_box(ct.map(&xs));
    }
    let prof_s = t0.elapsed().as_secs_f64();
    let overhead_ratio = prof_s / bare_s.max(1e-12);
    report
        .metric("bare_run_s", bare_s)
        .metric("prof_run_s", prof_s)
        .metric("prof_overhead_ratio", overhead_ratio);
    println!(
        "overhead: bare {bare_s:.6}s profiled {prof_s:.6}s ratio {overhead_ratio:.3} \
         ({orep} reps of n={n})"
    );

    // --- Three executors under nested regions, timeline recording ---
    let d_interp;
    let d_replay;
    let d_compiled;
    {
        let _root = obs::region("ookamiprof");
        d_interp = delta_13(|| {
            for _ in 0..reps {
                let _span = obs::region("exec_interp");
                std::hint::black_box(exp_slice_interp(vl, &xs, variant));
            }
        });
        d_replay = delta_13(|| {
            for _ in 0..reps {
                let _span = obs::region("exec_replay");
                std::hint::black_box(t.replay_map(&xs));
            }
        });
        d_compiled = delta_13(|| {
            for _ in 0..reps {
                let _span = obs::region("exec_compiled");
                std::hint::black_box(ct.map(&xs));
            }
        });
    }
    sampler.force_sample();
    timeline::stop();

    // --- Telemetry identity gates (obs builds only; no-ops otherwise) ---
    let mut failures = 0u32;
    let execs = ["exec_interp", "exec_replay", "exec_compiled"];
    let short = ["interp", "replay", "compiled"];
    if obs::enabled() {
        let hists = telemetry::snapshots();
        let tree = spantree::profile();
        let mut hist_ok = true;
        let mut tree_ok = true;
        for (exec, tag) in execs.iter().zip(short.iter()) {
            let path = format!("ookamiprof/{exec}");
            let Some(h) = hists.get(&(HistKind::RegionLatencyNs, path.clone())) else {
                eprintln!("FAIL: no region-latency histogram for {path}");
                hist_ok = false;
                continue;
            };
            if h.count() != u64::from(reps) {
                eprintln!("FAIL: histogram count for {path}: {} != {reps}", h.count());
                hist_ok = false;
            }
            report
                .metric(&format!("{tag}_p50_ns"), h.quantile(0.5) as f64)
                .metric(&format!("{tag}_p99_ns"), h.quantile(0.99) as f64);
            println!(
                "{path}: count {} p50 {}ns p90 {}ns p99 {}ns max {}ns",
                h.count(),
                h.quantile(0.5),
                h.quantile(0.9),
                h.quantile(0.99),
                h.max()
            );
            match tree.node(&path) {
                Some(node) if node.count == u64::from(reps) => {}
                other => {
                    eprintln!(
                        "FAIL: span-tree count for {path}: {:?} != {reps}",
                        other.map(|n| n.count)
                    );
                    tree_ok = false;
                }
            }
        }
        let counters_ok = d_interp == d_replay && d_replay == d_compiled;
        if !counters_ok {
            eprintln!(
                "FAIL: identity counters differ across executors:\n  interp   {d_interp:?}\n  \
                 replay   {d_replay:?}\n  compiled {d_compiled:?}"
            );
        }
        for (name, ok) in [
            ("hist_counts_identical", hist_ok),
            ("spantree_counts_identical", tree_ok),
            ("counters_identical", counters_ok),
        ] {
            report.flag(name, ok);
            if !ok {
                failures += 1;
            }
        }
        report.flag("gate", failures == 0);

        // --- Exports: rendered table + collapsed flamegraph stacks ---
        print!("{}", tree.render_table());
        let collapsed = tree.collapsed();
        spantree::parse_collapsed(&collapsed).expect("own collapsed export round-trips");
        if let Some(dir) = std::path::Path::new(&collapsed_path).parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        std::fs::write(&collapsed_path, &collapsed).expect("write collapsed stacks");
        println!(
            "wrote {collapsed_path} ({} stacks)",
            collapsed.lines().count()
        );
    } else {
        for name in [
            "hist_counts_identical",
            "spantree_counts_identical",
            "counters_identical",
        ] {
            report.flag(name, "skipped");
        }
        report.flag("gate", true);
    }

    telemetry::validate_prometheus(&telemetry::prometheus())
        .expect("own Prometheus exposition validates");
    report.attach_obs(&obs::snapshot());
    report.write(&out_path).expect("write report");
    println!("wrote {out_path}");
    drop(sampler);
    drop(server);
    if failures > 0 {
        eprintln!("ookamiprof: {failures} identity gate(s) failed");
        std::process::exit(1);
    }
}
