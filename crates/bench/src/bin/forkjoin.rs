//! Fork/barrier overhead probe: persistent pool vs spawn-per-region.
//!
//! Measures the cost of one empty parallel region at several team sizes
//! for (a) the persistent worker pool and (b) the seed runtime's
//! spawn-per-region strategy, prints the per-region costs and their
//! ratio, then least-squares-fits the pool samples into the
//! `BarrierCost` constants the OpenMP runtime model consumes
//! (`OmpModel::calibrated`). Run with:
//!
//! ```text
//! cargo run -p ookami-bench --bin forkjoin --release [reps]
//! ```

use ookami_core::obs;
use ookami_core::pool::{measure_pool_fork_join, measure_spawn_fork_join, Pool};
use ookami_mem::scaling::BarrierCost;

fn main() {
    let reps: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2_000);
    let teams = [2usize, 4, 8, 16];
    obs::reset();
    let obs_before = obs::snapshot();
    let mut report = obs::BenchReport::new("forkjoin", "full");
    report.metric("reps", reps as f64);

    println!("fork/join cost per empty region ({reps} reps per point)");
    println!(
        "{:>7}  {:>12}  {:>12}  {:>8}",
        "team", "pool µs", "spawn µs", "ratio"
    );
    let mut samples: Vec<(usize, f64)> = Vec::new();
    let mut ratio_at_8 = 0.0;
    for team in teams {
        let pool = Pool::new(team - 1);
        let pool_s = measure_pool_fork_join(&pool, team, reps);
        let spawn_s = measure_spawn_fork_join(team, reps.min(500));
        let ratio = spawn_s / pool_s;
        if team == 8 {
            ratio_at_8 = ratio;
        }
        samples.push((team, pool_s));
        report.metric(&format!("pool_us_team{team}"), pool_s * 1e6);
        report.metric(&format!("spawn_us_team{team}"), spawn_s * 1e6);
        println!(
            "{:>7}  {:>12.3}  {:>12.3}  {:>7.1}x",
            team,
            pool_s * 1e6,
            spawn_s * 1e6,
            ratio
        );
    }

    let fit = BarrierCost::from_samples(&samples);
    println!();
    println!(
        "fitted BarrierCost: base_us = {:.3}, per_thread_us = {:.4}",
        fit.base_us, fit.per_thread_us
    );
    println!("(feed these into OmpModel::calibrated to replace the per-compiler guesses)");
    println!();
    report
        .metric("barrier_base_us", fit.base_us)
        .metric("barrier_per_thread_us", fit.per_thread_us)
        .metric("ratio_at_8", ratio_at_8)
        .flag("gate", ratio_at_8 >= 5.0)
        .attach_obs(&obs::snapshot().since(&obs_before));
    report
        .write("BENCH_forkjoin.json")
        .expect("write BENCH_forkjoin.json");
    println!("wrote BENCH_forkjoin.json");
    if ratio_at_8 >= 5.0 {
        println!("OK: pool fork/join is {ratio_at_8:.1}x cheaper than spawn at 8 threads (>= 5x)");
    } else {
        println!("WARN: pool advantage at 8 threads is only {ratio_at_8:.1}x (expected >= 5x)");
        std::process::exit(1);
    }
}
