//! Print the math-library accuracy study (the paper's deferred topic).

fn main() {
    print!("{}", ookami_bench::accuracy::render());
}
