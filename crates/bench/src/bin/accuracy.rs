//! Print the math-library accuracy study (the paper's deferred topic) and
//! write it as `BENCH_accuracy.json` in the shared `ookami-bench-v1`
//! schema (max/mean ulp per implementation, plus the obs counters the
//! emulated sweeps produced when built with `--features obs`).

use ookami_core::obs;

fn main() {
    obs::reset();
    let obs_before = obs::snapshot();
    let rows = ookami_bench::accuracy::accuracy_study();
    print!("{}", ookami_bench::accuracy::render_rows(&rows));

    let mut report = obs::BenchReport::new("accuracy", "full");
    for r in &rows {
        let key = format!("{} {}", r.function, r.implementation);
        report.metric(&format!("max_ulp {key}"), r.acc.max_ulp as f64);
        report.metric(&format!("mean_ulp {key}"), r.acc.mean_ulp);
    }
    report
        .metric("implementations", rows.len() as f64)
        .attach_obs(&obs::snapshot().since(&obs_before));
    report
        .write("BENCH_accuracy.json")
        .expect("write BENCH_accuracy.json");
    println!("wrote BENCH_accuracy.json");
}
