//! Regenerate the paper's figures: `figures <id>|all [--csv]`.
//!
//! Also writes `BENCH_figures.json` (shared `ookami-bench-v1` schema):
//! the row count per regenerated figure, with the obs counters/spans the
//! regeneration produced when built with `--features obs`.

use ookami_core::obs;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let csv = args.iter().any(|a| a == "--csv");
    let which = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "all".to_string());
    obs::reset();
    let obs_before = obs::snapshot();
    print!("{}", ookami_bench::run_figures(&which, csv));

    let mut report = obs::BenchReport::new("figures", &which);
    let names: Vec<&str> = if which == "all" {
        ookami_bench::ALL_FIGURES.to_vec()
    } else {
        vec![which.as_str()]
    };
    for n in names {
        if let Some((_, rows)) = ookami_bench::figure(n) {
            report.metric(&format!("{n}_rows"), rows.len() as f64);
        }
    }
    report
        .flag("csv", csv)
        .attach_obs(&obs::snapshot().since(&obs_before));
    report
        .write("BENCH_figures.json")
        .expect("write BENCH_figures.json");
    eprintln!("wrote BENCH_figures.json");
}
