//! Regenerate the paper's figures: `figures <id>|all [--csv]`.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let csv = args.iter().any(|a| a == "--csv");
    let which = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "all".to_string());
    print!("{}", ookami_bench::run_figures(&which, csv));
}
