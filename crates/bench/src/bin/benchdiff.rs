//! `benchdiff` — the bench-trajectory regression gate: compare the current
//! `BENCH_*.json` probe outputs against committed baselines and exit
//! nonzero when a gated result regressed.
//!
//! ```text
//! benchdiff --baseline <dir> --current <dir> [--tol 0.5] [--out BENCHDIFF.json]
//! ```
//!
//! Both sides are schema-validated (`ookami-bench-v1`) before any
//! comparison — a malformed file is a usage error (exit 2), never a silent
//! pass. Three gate classes, from strongest to weakest:
//!
//! 1. **Flag gates** (always on): a baseline flag of `"true"` for
//!    `bit_identical`, `instr_streams_identical` or `gate` must still be
//!    `"true"` — these encode correctness invariants, not measurements.
//!    Flags starting with `ecm_` are pinned to the baseline's exact value:
//!    they carry the ECM model's bound attributions (`bandwidth_bound` vs
//!    `core_bound`), which are deterministic claims about the machine
//!    model, so any flip is a model change.
//! 2. **Absolute floors** (full-mode current files only): `speedup ≥ 5`
//!    (trace replay vs interpreter) and `ratio_at_8 ≥ 5` (pool vs
//!    spawn-per-region) — the repo's standing perf acceptance bars — plus
//!    the lower irregular-family bars `spmv_replay_speedup ≥ 1.2` and
//!    `stream_replay_speedup ≥ 0.4`; when
//!    the current run also has obs, `compiled_speedup ≥ 5` (compiled
//!    closures vs the accounting-carrying replayer). Smoke runs shrink
//!    the problem until fixed costs dominate, which is exactly why the
//!    probes themselves only enforce these bars in full mode.
//!    Parallel-scaling floors (`replay_par_speedup` / `compiled_par_speedup`
//!    ≥ 3, `cachesim_par_speedup` ≥ 2) are additionally
//!    **capability-gated** on the current file's `host_cores` metric: a
//!    probe run on a box with fewer than 4 cores records ratios near 1.0
//!    by construction (the pool clamps its worker count), so the floors
//!    only apply where the host can actually scale.
//! 3. **Matched-mode gates** (only when `mode` and `obs_enabled` agree, so
//!    smoke CI runs are never judged against full-mode baselines):
//!    `max_ulp*` metrics may not increase (accuracy is deterministic), the
//!    deterministic model counters (SVE/port/byte/FLOP events) must be
//!    *exactly* equal — any drift is a real behavioral change, not noise —
//!    and time-like metrics are pooled into a noise-aware verdict: the
//!    relative deltas of all time metrics in a file feed
//!    [`ookami_core::Stats`], and only a *systematic* slowdown (mean delta
//!    above `--tol` and above one standard deviation of the deltas) fails,
//!    so one noisy metric on a loaded CI box cannot trip the gate.
//!
//! `--inject-regression` degrades the current set in memory (times ×10,
//! rates ÷10, correctness flags flipped) to prove the gate trips; CI runs
//! it as a self-test.
//! Exit codes: 0 pass, 1 regression, 2 usage/schema error.

use ookami_core::obs::{self, Json};
use ookami_core::Stats;
use std::collections::BTreeMap;

/// Counters whose values are deterministic functions of the executed
/// kernels (execution-strategy- and timing-independent), gated for exact
/// equality when modes match. Scheduling/timing counters (barrier waits,
/// guided chunk splits, forked-vs-inline region counts) are excluded: they
/// legitimately vary with machine load and core count.
const EXACT_COUNTERS: [&str; 16] = [
    "port_fla",
    "port_flb",
    "port_pr",
    "port_exa",
    "port_exb",
    "port_eaga",
    "port_eagb",
    "port_br",
    "sve_instrs",
    "sve_lanes_active",
    "bytes_loaded",
    "bytes_stored",
    "gather_elems",
    "scatter_elems",
    "fexpa_issues",
    "model_flops",
];

/// Flags that encode correctness invariants: baseline `"true"` must hold.
const GATED_FLAGS: [&str; 3] = ["bit_identical", "instr_streams_identical", "gate"];

/// Flag prefix for pinned attributions: any flag starting with this must
/// equal the baseline's value exactly (the ECM model's bound verdicts —
/// e.g. `ecm_crs_bound = "bandwidth_bound"` — are deterministic claims
/// about the machine model, so a flip is a model change, never noise).
const PINNED_FLAG_PREFIX: &str = "ecm_";

/// `(metric, floor)` pairs gated whenever the current file is a full run.
/// The replay-over-interpreter floors for the irregular-memory families
/// are deliberately lower than the dense-loop `speedup` bar: SpMV replay
/// rebinds three gather streams per block, and STREAM's one-op body is
/// the replayer's worst case — with obs on, per-block counter accounting
/// outweighs the single fused op and the interpreter wins (~0.5x), so
/// that floor is a catastrophic-slowdown guard only.
const ABSOLUTE_FLOORS: [(&str, f64); 4] = [
    ("speedup", 5.0),
    ("ratio_at_8", 5.0),
    ("spmv_replay_speedup", 1.2),
    ("stream_replay_speedup", 0.4),
];

/// `(metric, floor)` pairs additionally gated on full runs **with obs**:
/// the compiled-vs-replay bar is defined against the replayer carrying its
/// per-block accounting — without obs both sides shed different amounts of
/// bookkeeping and the ratio measures something else (the `svereplay`
/// probe enforces the same split).
const ABSOLUTE_FLOORS_OBS: [(&str, f64); 1] = [("compiled_speedup", 5.0)];

/// `(metric, ceiling)` pairs gated on full runs **with obs**, tripping
/// when the value rises *above* the bar: `prof_overhead_ratio` is the
/// `ookamiprof` probe's profiled-vs-bare wall-time ratio for the same
/// compiled workload, so a blowout means the region/timeline/histogram
/// path stopped being cheap — the observability layer became the
/// workload. The bar is deliberately loose (5×) because the probe's
/// per-rep work shrinks in smoke mode; only full runs are gated.
const ABSOLUTE_CEILINGS_OBS: [(&str, f64); 1] = [("prof_overhead_ratio", 5.0)];

/// How many counter deltas `--explain` prints per regressed file.
const EXPLAIN_TOP_N: usize = 5;

/// `(metric, floor, needs_obs)` triples gated on full runs whose
/// **current** file reports `host_cores ≥ PAR_FLOOR_MIN_CORES`: parallel
/// speedups are only meaningful where the pool has real workers. The two
/// trace-engine floors carry the same obs caveat as `compiled_speedup`
/// (the bars are calibrated against the accounting-carrying serial
/// paths); the cache-sim floor is obs-independent (the simulator does no
/// per-lane accounting).
const PAR_FLOORS: [(&str, f64, bool); 3] = [
    ("replay_par_speedup", 3.0, true),
    ("compiled_par_speedup", 3.0, true),
    ("cachesim_par_speedup", 2.0, false),
];

/// Minimum `host_cores` for the parallel floors to apply.
const PAR_FLOOR_MIN_CORES: f64 = 4.0;

fn usage(code: i32) -> ! {
    println!(
        "benchdiff — compare current BENCH_*.json files against committed baselines\n\
         \n\
         usage: benchdiff --baseline <dir> --current <dir> [options]\n\
         \n\
         options:\n\
           --tol <x>            systematic-slowdown tolerance for time metrics\n\
                                when modes match (relative, default 0.5)\n\
           --out <path>         write the machine-readable verdict JSON here\n\
                                (default BENCHDIFF.json)\n\
           --inject-regression  degrade the current set in memory (times x10,\n\
                                rates /10, overhead x10, counters x2, flags\n\
                                flipped) — self-test that the gate trips\n\
           --explain            when a file regresses, print its top counter\n\
                                deltas vs baseline (largest relative change\n\
                                first) to point at the behavioral cause\n\
           --help               this text\n\
         \n\
         exit: 0 pass · 1 regression · 2 usage or schema error"
    );
    std::process::exit(code)
}

fn num_metrics(doc: &Json) -> BTreeMap<String, f64> {
    let mut out = BTreeMap::new();
    if let Some(Json::Obj(m)) = doc.get("metrics") {
        for (k, v) in m {
            if let Json::Num(n) = v {
                out.insert(k.clone(), *n);
            }
        }
    }
    out
}

fn str_flags(doc: &Json) -> BTreeMap<String, String> {
    let mut out = BTreeMap::new();
    if let Some(Json::Obj(m)) = doc.get("flags") {
        for (k, v) in m {
            match v {
                Json::Str(s) => {
                    out.insert(k.clone(), s.clone());
                }
                Json::Bool(b) => {
                    out.insert(k.clone(), b.to_string());
                }
                _ => {}
            }
        }
    }
    out
}

fn counters(doc: &Json) -> BTreeMap<String, u64> {
    let mut out = BTreeMap::new();
    if let Some(Json::Obj(m)) = doc.get("counters") {
        for (k, v) in m {
            if let Json::Num(n) = v {
                if *n >= 0.0 {
                    out.insert(k.clone(), *n as u64);
                }
            }
        }
    }
    out
}

fn str_field<'a>(doc: &'a Json, key: &str) -> &'a str {
    match doc.get(key) {
        Some(Json::Str(s)) => s.as_str(),
        _ => "",
    }
}

fn is_time_metric(name: &str) -> bool {
    name.ends_with("_seconds") || name.ends_with("_us") || name.ends_with("_ns")
}

fn is_rate_metric(name: &str) -> bool {
    name.contains("per_sec")
}

/// Degrade a current-side document in memory: every time metric ×10,
/// every rate and headline-ratio metric ÷10, the profiling-overhead
/// ceiling metric ×10, every deterministic model counter ×2, and every
/// gated correctness flag flipped to false. The flag flip is what keeps
/// the self-test meaningful even for a mode-mismatched pair (smoke
/// current vs full baseline), where the metric gates are skipped by
/// design; the counter doubling gives `--explain` real deltas to rank.
fn inject_regression(doc: &mut Json) {
    if let Json::Obj(root) = doc {
        if let Some(Json::Obj(metrics)) = root.get_mut("metrics") {
            for (k, v) in metrics.iter_mut() {
                if let Json::Num(n) = v {
                    if is_time_metric(k) || k == "prof_overhead_ratio" {
                        *n *= 10.0;
                    } else if is_rate_metric(k)
                        || k == "speedup"
                        || k == "ratio_at_8"
                        || k.ends_with("_par_speedup")
                        || k.ends_with("_replay_speedup")
                    {
                        *n /= 10.0;
                    }
                }
            }
        }
        if let Some(Json::Obj(cs)) = root.get_mut("counters") {
            for (k, v) in cs.iter_mut() {
                if EXACT_COUNTERS.contains(&k.as_str()) {
                    if let Json::Num(n) = v {
                        *n *= 2.0;
                    }
                }
            }
        }
        if let Some(Json::Obj(flags)) = root.get_mut("flags") {
            for (k, v) in flags.iter_mut() {
                if GATED_FLAGS.contains(&k.as_str()) {
                    *v = Json::Bool(false);
                }
            }
        }
    }
}

/// Rank every counter that differs between the two documents by relative
/// change (`|cur − base| / max(base, 1)`), largest first, and render the
/// top [`EXPLAIN_TOP_N`] as one line each. This is `--explain`'s payload:
/// when a gate trips, the biggest counter movers usually name the
/// subsystem whose behavior changed (a port counter → issue modeling, a
/// byte counter → memory traffic, `timeline_dropped_events` → the ring
/// overflowed and the trace is partial).
fn rank_counter_deltas(base: &Json, cur: &Json) -> Vec<String> {
    let bc = counters(base);
    let cc = counters(cur);
    let mut rows: Vec<(f64, String)> = Vec::new();
    for key in bc.keys().chain(cc.keys()) {
        let b = bc.get(key).copied().unwrap_or(0);
        let c = cc.get(key).copied().unwrap_or(0);
        if b == c {
            continue;
        }
        #[allow(clippy::cast_precision_loss)]
        let rel = (c as f64 - b as f64) / (b.max(1) as f64);
        let line = format!("{key}: {b} → {c} ({:+.1}%)", rel * 100.0);
        rows.push((rel.abs(), line));
    }
    // chain() visits shared keys twice; identical lines dedup here.
    rows.sort_by(|a, b| b.0.total_cmp(&a.0).then_with(|| a.1.cmp(&b.1)));
    rows.dedup_by(|a, b| a.1 == b.1);
    rows.truncate(EXPLAIN_TOP_N);
    rows.into_iter().map(|(_, line)| line).collect()
}

struct FileVerdict {
    name: String,
    regressions: Vec<String>,
    notes: Vec<String>,
    /// Top counter deltas vs baseline; filled only when `regressions` is
    /// non-empty (an all-green file needs no explaining).
    explain: Vec<String>,
    compared: bool,
}

fn diff_file(name: &str, base: &Json, cur: &Json, tol: f64) -> FileVerdict {
    let mut v = diff_gates(name, base, cur, tol);
    if !v.regressions.is_empty() {
        v.explain = rank_counter_deltas(base, cur);
    }
    v
}

fn diff_gates(name: &str, base: &Json, cur: &Json, tol: f64) -> FileVerdict {
    let mut v = FileVerdict {
        name: name.to_string(),
        regressions: Vec::new(),
        notes: Vec::new(),
        explain: Vec::new(),
        compared: true,
    };
    let bm = num_metrics(base);
    let cm = num_metrics(cur);
    let bf = str_flags(base);
    let cf = str_flags(cur);

    // 1. flag gates — correctness invariants hold in every mode.
    for gf in GATED_FLAGS {
        if bf.get(gf).map(String::as_str) == Some("true") {
            let now = cf.get(gf).map_or("<missing>", String::as_str);
            if now != "true" {
                v.regressions
                    .push(format!("flag `{gf}`: baseline true, current {now}"));
            }
        }
    }

    // 1b. pinned attribution flags — must match the baseline exactly.
    for (k, bval) in &bf {
        if k.starts_with(PINNED_FLAG_PREFIX) {
            let now = cf.get(k).map_or("<missing>", String::as_str);
            if now != bval {
                v.regressions.push(format!(
                    "flag `{k}`: baseline \"{bval}\", current \"{now}\" (attribution flip)"
                ));
            }
        }
    }

    // 2. absolute floors — standing perf bars; only full runs are sized
    // to meet them (smoke problems are fixed-cost-dominated by design).
    if str_field(cur, "mode") == "full" {
        let obs_floors = if matches!(cur.get("obs_enabled"), Some(Json::Bool(true))) {
            &ABSOLUTE_FLOORS_OBS[..]
        } else {
            &[]
        };
        for &(metric, floor) in ABSOLUTE_FLOORS.iter().chain(obs_floors) {
            if let Some(&val) = cm.get(metric) {
                if val < floor {
                    v.regressions.push(format!(
                        "metric `{metric}`: {val:.3} below floor {floor:.1}"
                    ));
                }
            }
        }
        // Ceilings: overhead ratios may not blow out. Same obs caveat as
        // the obs floors — without obs the profiled side sheds the very
        // instrumentation the ratio is supposed to price.
        if matches!(cur.get("obs_enabled"), Some(Json::Bool(true))) {
            for &(metric, ceiling) in &ABSOLUTE_CEILINGS_OBS {
                if let Some(&val) = cm.get(metric) {
                    if val > ceiling {
                        v.regressions.push(format!(
                            "metric `{metric}`: {val:.3} above ceiling {ceiling:.1} \
                             (profiling overhead blowout)"
                        ));
                    }
                }
            }
        }
        // Parallel floors: only where the current run's host can scale.
        let cores = cm.get("host_cores").copied().unwrap_or(0.0);
        let obs_on_cur = matches!(cur.get("obs_enabled"), Some(Json::Bool(true)));
        if cores >= PAR_FLOOR_MIN_CORES {
            for &(metric, floor, needs_obs) in &PAR_FLOORS {
                if needs_obs && !obs_on_cur {
                    continue;
                }
                if let Some(&val) = cm.get(metric) {
                    if val < floor {
                        v.regressions.push(format!(
                            "metric `{metric}`: {val:.3} below parallel floor {floor:.1} \
                             ({cores:.0}-core host)"
                        ));
                    }
                }
            }
        } else if PAR_FLOORS.iter().any(|&(m, _, _)| cm.contains_key(m)) {
            v.notes.push(format!(
                "parallel floors skipped: host_cores {cores:.0} < {PAR_FLOOR_MIN_CORES:.0}"
            ));
        }
    }

    // 3. matched-mode gates.
    let modes_match = str_field(base, "mode") == str_field(cur, "mode")
        && base.get("obs_enabled") == cur.get("obs_enabled");
    if !modes_match {
        v.notes.push(format!(
            "modes differ ({} vs {}): matched-mode gates skipped",
            str_field(base, "mode"),
            str_field(cur, "mode")
        ));
        return v;
    }

    // 3a. accuracy may not regress: max ulp is deterministic.
    for (k, bval) in &bm {
        if k.starts_with("max_ulp") {
            if let Some(&cval) = cm.get(k) {
                if cval > *bval {
                    v.regressions
                        .push(format!("`{k}`: {bval} → {cval} ulp (accuracy regressed)"));
                }
            }
        }
    }

    // 3b. deterministic model counters must be exactly equal.
    let obs_on = matches!(base.get("obs_enabled"), Some(Json::Bool(true)));
    if obs_on {
        let bc = counters(base);
        let cc = counters(cur);
        for key in EXACT_COUNTERS {
            match (bc.get(key), cc.get(key)) {
                (Some(b), Some(c)) if b != c => {
                    v.regressions
                        .push(format!("counter `{key}`: {b} → {c} (model drift)"));
                }
                (Some(b), None) if *b != 0 => {
                    v.regressions
                        .push(format!("counter `{key}`: {b} → missing (model drift)"));
                }
                _ => {}
            }
        }
    }

    // 3c. pooled noise-aware time gate: only a systematic slowdown fails.
    let mut deltas = Stats::new();
    for (k, bval) in &bm {
        let Some(&cval) = cm.get(k) else { continue };
        if *bval <= 0.0 {
            continue;
        }
        if is_time_metric(k) {
            deltas.push((cval - bval) / bval);
        } else if is_rate_metric(k) {
            // A rate drop is a slowdown of the same sign convention.
            deltas.push((bval - cval) / bval);
        }
    }
    if !deltas.is_empty() {
        let mean = deltas.mean();
        let sd = deltas.stddev();
        if mean > tol && mean > sd {
            v.regressions.push(format!(
                "time metrics systematically slower: mean +{:.0}% over {} metric(s) \
                 (σ {:.0}%, tol {:.0}%)",
                mean * 100.0,
                deltas.len(),
                sd * 100.0,
                tol * 100.0
            ));
        } else {
            v.notes.push(format!(
                "time drift mean {:+.0}% σ {:.0}% over {} metric(s): within noise",
                mean * 100.0,
                sd * 100.0,
                deltas.len()
            ));
        }
    }
    v
}

fn load_validated(path: &std::path::Path) -> Result<Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    obs::validate_bench_json(&text)
        .map_err(|e| format!("{}: schema violation: {e}", path.display()))?;
    Ok(Json::parse(&text).expect("validated JSON reparses"))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut baseline_dir: Option<String> = None;
    let mut current_dir: Option<String> = None;
    let mut tol = 0.5f64;
    let mut out_path = "BENCHDIFF.json".to_string();
    let mut inject = false;
    let mut explain = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--baseline" => baseline_dir = it.next().cloned(),
            "--current" => current_dir = it.next().cloned(),
            "--tol" => {
                tol = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("error: --tol needs a number");
                    std::process::exit(2);
                });
            }
            "--out" => {
                out_path = it.next().cloned().unwrap_or_else(|| {
                    eprintln!("error: --out needs a path");
                    std::process::exit(2);
                });
            }
            "--inject-regression" => inject = true,
            "--explain" => explain = true,
            "--help" | "-h" => usage(0),
            other => {
                eprintln!("error: unknown argument `{other}` (try --help)");
                std::process::exit(2);
            }
        }
    }
    let (Some(baseline_dir), Some(current_dir)) = (baseline_dir, current_dir) else {
        eprintln!("error: --baseline and --current are required (try --help)");
        std::process::exit(2);
    };

    // Pair by filename over the baseline set: the committed baselines
    // define what is gated; extra current files are ignored.
    let mut names: Vec<String> = match std::fs::read_dir(&baseline_dir) {
        Ok(rd) => rd
            .filter_map(std::result::Result::ok)
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|n| {
                n.starts_with("BENCH_")
                    && std::path::Path::new(n)
                        .extension()
                        .is_some_and(|e| e.eq_ignore_ascii_case("json"))
            })
            .collect(),
        Err(e) => {
            eprintln!("error: cannot read baseline dir {baseline_dir}: {e}");
            std::process::exit(2);
        }
    };
    names.sort();
    if names.is_empty() {
        eprintln!("error: no BENCH_*.json baselines in {baseline_dir}");
        std::process::exit(2);
    }

    let mut verdicts: Vec<FileVerdict> = Vec::new();
    for name in &names {
        let bpath = std::path::Path::new(&baseline_dir).join(name);
        let cpath = std::path::Path::new(&current_dir).join(name);
        let base = match load_validated(&bpath) {
            Ok(j) => j,
            Err(e) => {
                eprintln!("error: baseline {e}");
                std::process::exit(2);
            }
        };
        if !cpath.exists() {
            verdicts.push(FileVerdict {
                name: name.clone(),
                regressions: Vec::new(),
                notes: vec!["no current file: not regenerated, skipped".to_string()],
                explain: Vec::new(),
                compared: false,
            });
            continue;
        }
        let mut cur = match load_validated(&cpath) {
            Ok(j) => j,
            Err(e) => {
                eprintln!("error: current {e}");
                std::process::exit(2);
            }
        };
        if inject {
            inject_regression(&mut cur);
        }
        verdicts.push(diff_file(name, &base, &cur, tol));
    }

    let total_regressions: usize = verdicts.iter().map(|v| v.regressions.len()).sum();
    let compared = verdicts.iter().filter(|v| v.compared).count();
    let pass = total_regressions == 0;

    println!(
        "benchdiff: {} baseline(s), {} compared{}",
        names.len(),
        compared,
        if inject { " [injected regression]" } else { "" }
    );
    for v in &verdicts {
        let status = if !v.compared {
            "SKIP"
        } else if v.regressions.is_empty() {
            "OK"
        } else {
            "FAIL"
        };
        println!("{status:>5}  {}", v.name);
        for r in &v.regressions {
            println!("       regression: {r}");
        }
        if explain && !v.explain.is_empty() {
            println!("       top counter deltas vs baseline:");
            for line in &v.explain {
                println!("         {line}");
            }
        }
        for n in &v.notes {
            println!("       note: {n}");
        }
    }
    println!("verdict: {}", if pass { "PASS" } else { "REGRESSION" });

    // Machine-readable verdict in the shared schema (probe "benchdiff").
    let mut report = obs::BenchReport::new("benchdiff", "gate");
    report.metric("baselines", names.len() as f64);
    report.metric("compared", compared as f64);
    report.metric("regressions", total_regressions as f64);
    report.metric("tol", tol);
    report.flag("verdict", if pass { "pass" } else { "regression" });
    report.flag("injected", inject);
    for v in &verdicts {
        report.flag(
            &format!("file:{}", v.name),
            if !v.compared {
                "skip".to_string()
            } else if v.regressions.is_empty() {
                "ok".to_string()
            } else {
                format!("fail:{}", v.regressions.len())
            },
        );
    }
    if let Err(e) = report.write(&out_path) {
        eprintln!("error: write {out_path}: {e}");
        std::process::exit(2);
    }
    println!("wrote {out_path}");

    std::process::exit(i32::from(!pass));
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimal current-side document with the given mode/obs/metrics (the
    /// floor gates only inspect these fields).
    fn doc(mode: &str, obs_on: bool, metrics: &[(&str, f64)]) -> Json {
        let ms: Vec<String> = metrics
            .iter()
            .map(|(k, v)| format!("\"{k}\": {v}"))
            .collect();
        Json::parse(&format!(
            "{{\"schema\": \"ookami-bench-v1\", \"probe\": \"t\", \"mode\": \"{mode}\", \
             \"obs_enabled\": {obs_on}, \"metrics\": {{{}}}, \"flags\": {{}}}}",
            ms.join(", ")
        ))
        .expect("test doc parses")
    }

    fn regressions(base: &Json, cur: &Json) -> Vec<String> {
        diff_file("BENCH_t.json", base, cur, 0.5).regressions
    }

    #[test]
    fn par_floor_trips_on_a_capable_host() {
        let base = doc("full", true, &[]);
        let cur = doc(
            "full",
            true,
            &[
                ("host_cores", 8.0),
                ("replay_par_speedup", 1.2),
                ("compiled_par_speedup", 3.4),
            ],
        );
        let r = regressions(&base, &cur);
        assert_eq!(r.len(), 1, "{r:?}");
        assert!(r[0].contains("replay_par_speedup"), "{r:?}");
    }

    #[test]
    fn par_floor_skipped_below_min_cores() {
        let base = doc("full", true, &[]);
        let cur = doc(
            "full",
            true,
            &[("host_cores", 1.0), ("replay_par_speedup", 1.0)],
        );
        let v = diff_file("BENCH_t.json", &base, &cur, 0.5);
        assert!(v.regressions.is_empty(), "{:?}", v.regressions);
        assert!(
            v.notes
                .iter()
                .any(|n| n.contains("parallel floors skipped")),
            "{:?}",
            v.notes
        );
    }

    #[test]
    fn par_floor_skipped_when_host_cores_missing() {
        let base = doc("full", true, &[]);
        let cur = doc("full", true, &[("compiled_par_speedup", 0.5)]);
        assert!(regressions(&base, &cur).is_empty());
    }

    #[test]
    fn trace_engine_par_floors_need_obs_but_cachesim_does_not() {
        let base = doc("full", false, &[]);
        let cur = doc(
            "full",
            false,
            &[
                ("host_cores", 8.0),
                ("replay_par_speedup", 1.0),
                ("cachesim_par_speedup", 1.0),
            ],
        );
        let r = regressions(&base, &cur);
        assert_eq!(r.len(), 1, "{r:?}");
        assert!(r[0].contains("cachesim_par_speedup"), "{r:?}");
    }

    #[test]
    fn par_floor_ignored_in_smoke_mode() {
        let base = doc("smoke", true, &[]);
        let cur = doc(
            "smoke",
            true,
            &[("host_cores", 8.0), ("replay_par_speedup", 1.0)],
        );
        assert!(regressions(&base, &cur).is_empty());
    }

    /// Like `doc` but with string flags.
    fn doc_flags(mode: &str, flags: &[(&str, &str)]) -> Json {
        let fs: Vec<String> = flags
            .iter()
            .map(|(k, v)| format!("\"{k}\": \"{v}\""))
            .collect();
        Json::parse(&format!(
            "{{\"schema\": \"ookami-bench-v1\", \"probe\": \"t\", \"mode\": \"{mode}\", \
             \"obs_enabled\": false, \"metrics\": {{}}, \"flags\": {{{}}}}}",
            fs.join(", ")
        ))
        .expect("test doc parses")
    }

    #[test]
    fn pinned_ecm_flag_flip_is_a_regression() {
        let base = doc_flags("full", &[("ecm_crs_bound", "bandwidth_bound")]);
        let ok = doc_flags("full", &[("ecm_crs_bound", "bandwidth_bound")]);
        assert!(regressions(&base, &ok).is_empty());
        let flipped = doc_flags("full", &[("ecm_crs_bound", "core_bound")]);
        let r = regressions(&base, &flipped);
        assert_eq!(r.len(), 1, "{r:?}");
        assert!(r[0].contains("attribution flip"), "{r:?}");
        // Missing counts as a flip too — the claim must keep being made.
        let gone = doc_flags("full", &[]);
        assert_eq!(regressions(&base, &gone).len(), 1);
    }

    #[test]
    fn replay_floor_trips_in_full_mode_only() {
        let base = doc("full", false, &[]);
        let cur = doc(
            "full",
            false,
            &[("spmv_replay_speedup", 1.0), ("stream_replay_speedup", 1.0)],
        );
        let r = regressions(&base, &cur);
        assert_eq!(r.len(), 1, "{r:?}");
        assert!(r[0].contains("spmv_replay_speedup"), "{r:?}");
        let smoke_base = doc("smoke", false, &[]);
        let smoke = doc("smoke", false, &[("spmv_replay_speedup", 1.0)]);
        assert!(regressions(&smoke_base, &smoke).is_empty());
    }

    #[test]
    fn inject_regression_degrades_replay_speedups() {
        let mut cur = doc("full", false, &[("spmv_replay_speedup", 3.0)]);
        inject_regression(&mut cur);
        let m = num_metrics(&cur);
        assert!((m["spmv_replay_speedup"] - 0.3).abs() < 1e-12, "{m:?}");
        let base = doc("full", false, &[]);
        let r = regressions(&base, &cur);
        assert!(
            r.iter().any(|r| r.contains("spmv_replay_speedup")),
            "injected replay regression must trip the floor: {r:?}"
        );
    }

    /// Like `doc` but with a counters object and a tripping flag so the
    /// verdict has something to explain.
    fn doc_counters(obs_on: bool, gate_ok: bool, counters: &[(&str, u64)]) -> Json {
        let cs: Vec<String> = counters
            .iter()
            .map(|(k, v)| format!("\"{k}\": {v}"))
            .collect();
        Json::parse(&format!(
            "{{\"schema\": \"ookami-bench-v1\", \"probe\": \"t\", \"mode\": \"full\", \
             \"obs_enabled\": {obs_on}, \"metrics\": {{}}, \
             \"flags\": {{\"gate\": {gate_ok}}}, \"counters\": {{{}}}}}",
            cs.join(", ")
        ))
        .expect("test doc parses")
    }

    #[test]
    fn prof_overhead_ceiling_trips_on_full_obs_runs_only() {
        let base = doc("full", true, &[]);
        let hot = doc("full", true, &[("prof_overhead_ratio", 6.0)]);
        let r = regressions(&base, &hot);
        assert_eq!(r.len(), 1, "{r:?}");
        assert!(r[0].contains("above ceiling"), "{r:?}");
        let fine = doc("full", true, &[("prof_overhead_ratio", 1.4)]);
        assert!(regressions(&base, &fine).is_empty());
        // Without obs the ratio measures something else: not gated.
        let no_obs = doc("full", false, &[("prof_overhead_ratio", 6.0)]);
        assert!(regressions(&doc("full", false, &[]), &no_obs).is_empty());
        // Smoke problems are fixed-cost-dominated: not gated.
        let smoke = doc("smoke", true, &[("prof_overhead_ratio", 6.0)]);
        assert!(regressions(&doc("smoke", true, &[]), &smoke).is_empty());
    }

    #[test]
    fn explain_ranks_counter_deltas_by_relative_change() {
        let base = doc_counters(
            true,
            true,
            &[
                ("sve_instrs", 1000),
                ("port_fla", 100),
                ("bytes_loaded", 4000),
                ("gather_elems", 10),
                ("fexpa_issues", 50),
                ("port_br", 7),
                ("scatter_elems", 10),
            ],
        );
        // gate flips false (a regression) and six counters move; only the
        // top five largest relative movers may be reported.
        let cur = doc_counters(
            true,
            false,
            &[
                ("sve_instrs", 1100),   // +10%
                ("port_fla", 300),      // +200%  <- biggest
                ("bytes_loaded", 2000), // -50%
                ("gather_elems", 18),   // +80%
                ("fexpa_issues", 75),   // +50%
                ("port_br", 0),         // -100%
                ("scatter_elems", 10),  // unchanged: never listed
            ],
        );
        let v = diff_file("BENCH_t.json", &base, &cur, 0.5);
        assert!(!v.regressions.is_empty(), "gate flip must regress");
        assert_eq!(v.explain.len(), EXPLAIN_TOP_N, "{:?}", v.explain);
        assert!(v.explain[0].starts_with("port_fla:"), "{:?}", v.explain);
        assert!(v.explain[0].contains("+200.0%"), "{:?}", v.explain);
        assert!(v.explain[1].starts_with("port_br:"), "{:?}", v.explain);
        // The +10% mover is rank six of six: cut by the top-5 truncation.
        assert!(
            !v.explain.iter().any(|l| l.starts_with("sve_instrs")),
            "{:?}",
            v.explain
        );
        assert!(
            !v.explain.iter().any(|l| l.starts_with("scatter_elems")),
            "{:?}",
            v.explain
        );
    }

    #[test]
    fn explain_is_empty_for_a_clean_file() {
        let base = doc_counters(true, true, &[("sve_instrs", 1000)]);
        let cur = doc_counters(true, true, &[("sve_instrs", 2000)]);
        // Counter drift alone is a regression only via EXACT_COUNTERS in
        // matched-mode — which it is here, so check a truly clean pair.
        let clean = diff_file("BENCH_t.json", &base, &base.clone(), 0.5);
        assert!(clean.regressions.is_empty());
        assert!(clean.explain.is_empty());
        // And when the drift does regress, the explanation names it.
        let v = diff_file("BENCH_t.json", &base, &cur, 0.5);
        assert!(!v.regressions.is_empty());
        assert!(v.explain[0].starts_with("sve_instrs:"), "{:?}", v.explain);
    }

    #[test]
    fn inject_regression_doubles_counters_and_blows_the_overhead_ceiling() {
        let mut cur = Json::parse(
            "{\"schema\": \"ookami-bench-v1\", \"probe\": \"t\", \"mode\": \"full\", \
             \"obs_enabled\": true, \
             \"metrics\": {\"prof_overhead_ratio\": 1.2, \"host_cores\": 8}, \
             \"flags\": {\"gate\": true}, \
             \"counters\": {\"sve_instrs\": 500, \"forked_regions\": 9}}",
        )
        .expect("test doc parses");
        let base = cur.clone();
        inject_regression(&mut cur);
        let m = num_metrics(&cur);
        assert!((m["prof_overhead_ratio"] - 12.0).abs() < 1e-9, "{m:?}");
        let c = counters(&cur);
        assert_eq!(c["sve_instrs"], 1000, "exact counters double");
        assert_eq!(c["forked_regions"], 9, "non-gated counters untouched");
        let v = diff_file("BENCH_t.json", &base, &cur, 0.5);
        assert!(
            v.regressions.iter().any(|r| r.contains("above ceiling")),
            "{:?}",
            v.regressions
        );
        assert!(
            v.explain.iter().any(|l| l.starts_with("sve_instrs:")),
            "--explain must rank the doubled counter: {:?}",
            v.explain
        );
    }

    #[test]
    fn inject_regression_degrades_par_speedups() {
        let mut cur = doc(
            "full",
            true,
            &[("host_cores", 8.0), ("replay_par_speedup", 4.0)],
        );
        inject_regression(&mut cur);
        let m = num_metrics(&cur);
        assert!((m["replay_par_speedup"] - 0.4).abs() < 1e-12, "{m:?}");
        // host_cores is a capability, not a measurement: untouched.
        assert!((m["host_cores"] - 8.0).abs() < 1e-12, "{m:?}");
        let base = doc("full", true, &[]);
        let r = regressions(&base, &cur);
        assert!(
            r.iter().any(|r| r.contains("replay_par_speedup")),
            "injected par regression must trip the floor: {r:?}"
        );
    }
}
