//! Resident live-telemetry server: runs a continuous exp workload under
//! `obs::region` spans with the timeline and a sampling session active,
//! while serving the current state over HTTP:
//!
//! * `GET /metrics`  — Prometheus text exposition (counters + histograms)
//! * `GET /profile`  — collapsed flamegraph stacks (`?format=json` for the
//!   aggregated span tree)
//! * `GET /trace`    — Chrome `chrome://tracing` / Perfetto JSON
//! * `GET /samples`  — the sampler ring (periodic counter snapshots)
//! * `GET /bench/<name>` — committed `BENCH_<name>.json` baselines
//!
//! ```text
//! cargo run -p ookami-bench --features obs --bin ookamiserve -- --addr 127.0.0.1:9178
//! ```
//!
//! `--selfcheck` is the CI entry point: it binds an ephemeral port, runs a
//! bounded workload, fetches every endpoint through the in-repo HTTP
//! client and validates each document with the in-repo parsers
//! ([`ookami_core::telemetry::validate_prometheus`], [`Json::parse`],
//! [`spantree::parse_collapsed`], [`obs::validate_bench_json`]), exiting
//! nonzero on the first malformed response. It runs in both obs modes —
//! without `obs` the documents are empty-but-well-formed, which is
//! exactly the contract the no-op build promises.

use ookami_core::obs::{self, Json};
use ookami_core::telemetry::{self, serve, spantree};
use ookami_core::timeline;
use ookami_vecmath::exp::{exp_trace, ExpVariant};
use ookami_vecmath::ulp::sample_range;
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "ookamiserve: resident /metrics /profile /trace /samples endpoint over a live run\n\
         usage: ookamiserve [--addr <host:port>] [--iterations <n>] [--smoke] [--selfcheck]\n\
                            [--bench-dir <path>]\n\
           --addr <host:port>  bind address (default 127.0.0.1:9178; port 0 = ephemeral)\n\
           --iterations <n>    stop after n workload iterations (default: run forever)\n\
           --smoke             small workload slices, short sampler period\n\
           --selfcheck         bind an ephemeral port, fetch and validate every endpoint,\n\
                               then exit 0/1 (CI mode; implies a bounded run)\n\
           --bench-dir <path>  directory holding BENCH_*.json for /bench/<name>"
    );
    std::process::exit(2);
}

/// One workload iteration: the compiled exp kernel over a fresh slice,
/// bracketed by nested regions so /profile has a tree worth looking at.
fn work_iteration(n: usize, iter: usize) {
    let _root = obs::region("ookamiserve");
    let vl = 8usize;
    let xs = {
        let _span = obs::region("gen_inputs");
        sample_range(-700.0, 700.0, n)
    };
    let t = exp_trace(vl, ExpVariant::FexpaEstrinCorrected);
    let ct = t.compile();
    {
        let _span = obs::region("exec_compiled");
        std::hint::black_box(ct.map(&xs));
    }
    if iter.is_multiple_of(4) {
        let _span = obs::region("exec_replay");
        std::hint::black_box(t.replay_map(&xs));
    }
}

fn fetch_ok(addr: std::net::SocketAddr, path: &str) -> Result<String, String> {
    let (status, body) = serve::http_get(addr, path).map_err(|e| format!("GET {path}: {e}"))?;
    if status != 200 {
        return Err(format!("GET {path}: status {status}"));
    }
    Ok(body)
}

/// Fetch every endpoint and validate each document with the matching
/// in-repo parser. Returns the list of failures (empty = all good).
fn selfcheck_endpoints(addr: std::net::SocketAddr) -> Vec<String> {
    let mut errs = Vec::new();
    let mut check = |what: &str, r: Result<(), String>| {
        if let Err(e) = r {
            errs.push(format!("{what}: {e}"));
        } else {
            println!("selfcheck: {what} ok");
        }
    };
    check(
        "/metrics",
        fetch_ok(addr, "/metrics").and_then(|b| telemetry::validate_prometheus(&b)),
    );
    check(
        "/profile",
        fetch_ok(addr, "/profile").and_then(|b| spantree::parse_collapsed(&b).map(|_| ())),
    );
    check(
        "/profile?format=json",
        fetch_ok(addr, "/profile?format=json").and_then(|b| {
            let v = Json::parse(&b)?;
            match v.get("roots") {
                Some(Json::Arr(_)) => Ok(()),
                _ => Err("missing roots array".to_string()),
            }
        }),
    );
    check(
        "/trace",
        fetch_ok(addr, "/trace").and_then(|b| {
            let v = Json::parse(&b)?;
            match v.get("traceEvents") {
                Some(Json::Arr(_)) => Ok(()),
                _ => Err("missing traceEvents array".to_string()),
            }
        }),
    );
    check(
        "/samples",
        fetch_ok(addr, "/samples").and_then(|b| {
            let v = Json::parse(&b)?;
            match v.get("schema") {
                Some(Json::Str(s)) if s == "ookami-samples-v1" => Ok(()),
                _ => Err("missing ookami-samples-v1 schema tag".to_string()),
            }
        }),
    );
    // /bench/<name>: validate any committed baseline that exists; a 404
    // for a never-committed name must stay a 404.
    if let Ok((status, body)) = serve::http_get(addr, "/bench/sve") {
        if status == 200 {
            check("/bench/sve", obs::validate_bench_json(&body));
        } else {
            println!("selfcheck: /bench/sve absent (status {status}) — skipped");
        }
    }
    match serve::http_get(addr, "/bench/no_such_probe") {
        Ok((404, _)) => println!("selfcheck: /bench/no_such_probe 404 ok"),
        Ok((s, _)) => errs.push(format!("/bench/no_such_probe: expected 404, got {s}")),
        Err(e) => errs.push(format!("/bench/no_such_probe: {e}")),
    }
    errs
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut addr = "127.0.0.1:9178".to_string();
    let mut iterations: Option<usize> = None;
    let mut smoke = false;
    let mut selfcheck = false;
    let mut bench_dir: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => match it.next() {
                Some(v) => addr.clone_from(v),
                None => usage(),
            },
            "--iterations" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => iterations = Some(v),
                None => usage(),
            },
            "--bench-dir" => match it.next() {
                Some(v) => bench_dir = Some(v.clone()),
                None => usage(),
            },
            "--smoke" => smoke = true,
            "--selfcheck" => selfcheck = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("error: unknown argument `{other}` (try --help)");
                std::process::exit(2);
            }
        }
    }
    if selfcheck {
        addr = "127.0.0.1:0".to_string();
        iterations.get_or_insert(if smoke { 3 } else { 8 });
    }
    if !obs::enabled() {
        eprintln!(
            "note: built without the `obs` feature — endpoints serve \
             empty-but-well-formed documents"
        );
    }

    let mut server = match bench_dir {
        Some(dir) => serve::spawn_in(&addr, dir.into()),
        None => serve::spawn(&addr),
    }
    .unwrap_or_else(|e| {
        eprintln!("error: cannot bind {addr}: {e}");
        std::process::exit(2);
    });
    println!("serving live telemetry on http://{}/", server.addr());

    obs::reset();
    timeline::start(timeline::DEFAULT_CAPACITY);
    let period = Duration::from_millis(if smoke { 50 } else { 250 });
    let sampler = telemetry::Sampler::start(period, 256);

    let n = if smoke { 2_001 } else { 50_001 };
    let mut iter = 0usize;
    loop {
        work_iteration(n, iter);
        iter += 1;
        if let Some(limit) = iterations {
            if iter >= limit {
                break;
            }
        } else {
            // Resident mode: pace the workload so the host stays usable
            // while the endpoints are watched.
            std::thread::sleep(Duration::from_millis(if smoke { 10 } else { 100 }));
        }
    }
    sampler.force_sample();
    println!("workload done: {iter} iterations of n={n}");

    let mut failed = false;
    if selfcheck {
        let errs = selfcheck_endpoints(server.addr());
        for e in &errs {
            eprintln!("selfcheck FAIL: {e}");
        }
        failed = !errs.is_empty();
        println!(
            "selfcheck: {}",
            if failed {
                "FAILED"
            } else {
                "all endpoints validate"
            }
        );
    }

    timeline::stop();
    drop(sampler);
    server.shutdown();
    if failed {
        std::process::exit(1);
    }
}
