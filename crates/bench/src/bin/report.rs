//! Generate the complete reproduction report (every figure, table,
//! ablation and the accuracy study) as markdown-ish text on stdout:
//!
//! `cargo run --release -p ookami-bench --bin report > REPORT.txt`
//!
//! With `--validate <file>...` it instead checks each `BENCH_*.json`
//! against the shared `ookami-bench-v1` schema and exits nonzero on the
//! first violation — the CI hook that keeps every probe's output loadable
//! by the same tooling.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--validate") {
        let files = &args[1..];
        if files.is_empty() {
            eprintln!("usage: report --validate BENCH_*.json");
            std::process::exit(2);
        }
        for f in files {
            let text = match std::fs::read_to_string(f) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("FAIL {f}: {e}");
                    std::process::exit(1);
                }
            };
            match ookami_core::obs::validate_bench_json(&text) {
                Ok(()) => println!("OK {f}"),
                Err(e) => {
                    eprintln!("FAIL {f}: {e}");
                    std::process::exit(1);
                }
            }
        }
        return;
    }

    println!("# ookami — full reproduction report\n");
    println!("Regenerated from the models and emulator; see EXPERIMENTS.md for the");
    println!("paper-vs-produced ledger and DESIGN.md for the substitutions.\n");

    println!("## Tables\n");
    print!("{}", ookami_bench::run_tables("all"));

    println!("## Figures\n");
    print!("{}", ookami_bench::run_figures("all", false));

    println!("## Ablations\n");
    print!(
        "{}",
        ookami_bench::ablations::render_all(ookami_uarch::machines::a64fx())
    );

    println!("\n## Accuracy study\n");
    print!("{}", ookami_bench::accuracy::render());
}
