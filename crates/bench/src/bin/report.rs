//! Generate the complete reproduction report (every figure, table,
//! ablation and the accuracy study) as markdown-ish text on stdout:
//!
//! `cargo run --release -p ookami-bench --bin report > REPORT.txt`

fn main() {
    println!("# ookami — full reproduction report\n");
    println!("Regenerated from the models and emulator; see EXPERIMENTS.md for the");
    println!("paper-vs-produced ledger and DESIGN.md for the substitutions.\n");

    println!("## Tables\n");
    print!("{}", ookami_bench::run_tables("all"));

    println!("## Figures\n");
    print!("{}", ookami_bench::run_figures("all", false));

    println!("## Ablations\n");
    print!(
        "{}",
        ookami_bench::ablations::render_all(ookami_uarch::machines::a64fx())
    );

    println!("\n## Accuracy study\n");
    print!("{}", ookami_bench::accuracy::render());
}
