//! Generate the complete reproduction report (every figure, table,
//! ablation and the accuracy study) as markdown-ish text on stdout:
//!
//! `cargo run --release -p ookami-bench --bin report > REPORT.txt`
//!
//! With `--validate <file>...` it instead checks each report file and
//! exits nonzero on the first violation — the CI hook that keeps every
//! probe's output loadable by the same tooling. Files are dispatched on
//! their `schema` tag: `BENCH_*.json` (`ookami-bench-v1`) and the
//! `ookamicheck` analyzer report (`ookamicheck-v1`) are both accepted.
//!
//! With `--derive <file> [--threads N]` it prints the roofline /
//! bottleneck table `obs::derive` computes from the file's counter
//! snapshots (per span and in total) against the A64FX machine model.

/// Shape-check an `ookamicheck-v1` document (written by the
/// `ookamicheck` bin): per-program diagnostic counts plus the race
/// summary, everything CI consumes from the uploaded artifact.
fn validate_ookamicheck_json(text: &str) -> Result<(), String> {
    use ookami_core::obs::Json;
    let v = Json::parse(text)?;
    let Json::Obj(obj) = &v else {
        return Err("top level must be an object".to_string());
    };
    let Some(Json::Arr(programs)) = obj.get("programs") else {
        return Err("`programs` must be an array".to_string());
    };
    for (i, p) in programs.iter().enumerate() {
        let Json::Obj(m) = p else {
            return Err(format!("`programs[{i}]` must be an object"));
        };
        match m.get("program") {
            Some(Json::Str(s)) if !s.is_empty() => {}
            _ => {
                return Err(format!(
                    "`programs[{i}].program` must be a non-empty string"
                ))
            }
        }
        for key in ["instructions", "errors", "warnings"] {
            match m.get(key) {
                Some(Json::Num(n)) if *n >= 0.0 => {}
                _ => {
                    return Err(format!(
                        "`programs[{i}].{key}` must be a non-negative number"
                    ))
                }
            }
        }
        if !matches!(m.get("diagnostics"), Some(Json::Arr(_))) {
            return Err(format!("`programs[{i}].diagnostics` must be an array"));
        }
    }
    let Some(Json::Obj(race)) = obj.get("race") else {
        return Err("`race` must be an object".to_string());
    };
    for key in ["events", "races"] {
        if !matches!(race.get(key), Some(Json::Num(_))) {
            return Err(format!("`race.{key}` must be a number"));
        }
    }
    if !matches!(obj.get("failures"), Some(Json::Num(_))) {
        return Err("`failures` must be a number".to_string());
    }
    Ok(())
}

/// Shape-check an `ookamicheck-tv-v1` document (written by `ookamicheck
/// --tv`): per-trace translation-validation outcomes plus the mutation
/// self-test tallies.
fn validate_ookamicheck_tv_json(text: &str) -> Result<(), String> {
    use ookami_core::obs::Json;
    let v = Json::parse(text)?;
    let Json::Obj(obj) = &v else {
        return Err("top level must be an object".to_string());
    };
    let Some(Json::Arr(traces)) = obj.get("traces") else {
        return Err("`traces` must be an array".to_string());
    };
    for (i, t) in traces.iter().enumerate() {
        let Json::Obj(m) = t else {
            return Err(format!("`traces[{i}]` must be an object"));
        };
        match m.get("trace") {
            Some(Json::Str(s)) if !s.is_empty() => {}
            _ => return Err(format!("`traces[{i}].trace` must be a non-empty string")),
        }
        match m.get("errors") {
            Some(Json::Num(n)) if *n >= 0.0 => {}
            _ => {
                return Err(format!(
                    "`traces[{i}].errors` must be a non-negative number"
                ))
            }
        }
        if !matches!(m.get("counters_checked"), Some(Json::Bool(_))) {
            return Err(format!("`traces[{i}].counters_checked` must be a bool"));
        }
    }
    let Some(Json::Arr(challenge)) = obj.get("challenge") else {
        return Err("`challenge` must be an array".to_string());
    };
    for (i, c) in challenge.iter().enumerate() {
        let Json::Obj(m) = c else {
            return Err(format!("`challenge[{i}]` must be an object"));
        };
        match m.get("base") {
            Some(Json::Str(s)) if !s.is_empty() => {}
            _ => return Err(format!("`challenge[{i}].base` must be a non-empty string")),
        }
        for key in ["rejected", "divergent"] {
            match m.get(key) {
                Some(Json::Num(n)) if *n >= 0.0 => {}
                _ => {
                    return Err(format!(
                        "`challenge[{i}].{key}` must be a non-negative number"
                    ))
                }
            }
        }
    }
    if !matches!(obj.get("failures"), Some(Json::Num(_))) {
        return Err("`failures` must be a number".to_string());
    }
    Ok(())
}

/// Dispatch on the document's `schema` tag so one `--validate` invocation
/// covers every report kind the repo writes.
fn validate_any(text: &str) -> Result<(), String> {
    use ookami_core::obs::Json;
    let tag = match Json::parse(text)? {
        Json::Obj(m) => match m.get("schema") {
            Some(Json::Str(s)) => s.clone(),
            other => return Err(format!("`schema` must be a string, got {other:?}")),
        },
        _ => return Err("top level must be an object".to_string()),
    };
    match tag.as_str() {
        "ookamicheck-v1" => validate_ookamicheck_json(text),
        "ookamicheck-tv-v1" => validate_ookamicheck_tv_json(text),
        _ => ookami_core::obs::validate_bench_json(text),
    }
}

fn usage(code: i32) -> ! {
    println!(
        "report — regenerate the full reproduction report, or inspect BENCH files\n\
         \n\
         usage:\n\
           report                         full report on stdout\n\
           report --validate <file>...    schema-check report files\n\
                                          (BENCH_*.json, OOKAMICHECK*.json)\n\
           report --derive <file> [--threads N]\n\
                                          roofline/bottleneck table from a\n\
                                          BENCH_*.json with counters (default\n\
                                          threads: 4, matching the probes)\n\
           report --help                  this text"
    );
    std::process::exit(code)
}

fn run_derive(args: &[String]) -> ! {
    let mut file: Option<&String> = None;
    let mut threads = 4usize;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--threads" => {
                threads = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("error: --threads needs a positive integer");
                    std::process::exit(2);
                });
            }
            _ if file.is_none() => file = Some(a),
            other => {
                eprintln!("error: unexpected argument `{other}`");
                std::process::exit(2);
            }
        }
    }
    let Some(file) = file else {
        eprintln!("usage: report --derive <BENCH_*.json> [--threads N]");
        std::process::exit(2);
    };
    let text = std::fs::read_to_string(file).unwrap_or_else(|e| {
        eprintln!("FAIL {file}: {e}");
        std::process::exit(2);
    });
    if let Err(e) = ookami_core::obs::validate_bench_json(&text) {
        eprintln!("FAIL {file}: not a valid ookami-bench-v1 document: {e}");
        std::process::exit(2);
    }
    let doc = ookami_core::obs::Json::parse(&text).expect("validated JSON reparses");
    let m = ookami_uarch::machines::a64fx();
    match ookami_core::obs::derive::derive_bench_doc(&doc, m, threads) {
        Ok(rows) if rows.is_empty() => {
            println!(
                "{file}: no counter snapshots to derive from (was the probe built \
                 with --features obs?)"
            );
            std::process::exit(0);
        }
        Ok(rows) => {
            print!(
                "{}",
                ookami_core::obs::derive::render_table(&rows, m, threads)
            );
            std::process::exit(0);
        }
        Err(e) => {
            eprintln!("FAIL {file}: {e}");
            std::process::exit(2);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        usage(0);
    }
    if args.first().map(String::as_str) == Some("--derive") {
        run_derive(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("--validate") {
        let files = &args[1..];
        if files.is_empty() {
            eprintln!("usage: report --validate BENCH_*.json");
            std::process::exit(2);
        }
        for f in files {
            let text = match std::fs::read_to_string(f) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("FAIL {f}: {e}");
                    std::process::exit(1);
                }
            };
            match validate_any(&text) {
                Ok(()) => println!("OK {f}"),
                Err(e) => {
                    eprintln!("FAIL {f}: {e}");
                    std::process::exit(1);
                }
            }
        }
        return;
    }

    println!("# ookami — full reproduction report\n");
    println!("Regenerated from the models and emulator; see EXPERIMENTS.md for the");
    println!("paper-vs-produced ledger and DESIGN.md for the substitutions.\n");

    println!("## Tables\n");
    print!("{}", ookami_bench::run_tables("all"));

    println!("## Figures\n");
    print!("{}", ookami_bench::run_figures("all", false));

    println!("## Ablations\n");
    print!(
        "{}",
        ookami_bench::ablations::render_all(ookami_uarch::machines::a64fx())
    );

    println!("\n## Accuracy study\n");
    print!("{}", ookami_bench::accuracy::render());
}
