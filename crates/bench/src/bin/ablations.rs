//! Print the ablation studies (mechanism on/off experiments).

fn main() {
    print!(
        "{}",
        ookami_bench::ablations::render_all(ookami_uarch::machines::a64fx())
    );
}
