//! Irregular-memory probe: SpMV (CRS vs SELL-C-σ), STREAM and the
//! lattice stencil through the SVE trace engine, plus the ECM model
//! table from `obs::derive`.
//!
//! Gates (exit 1 on failure):
//!
//! 1. **Bit identity** (always enforced): every executor — interpreter,
//!    replayer, parallel replay, compiled STREAM — must reproduce the
//!    fused scalar reference *bitwise*, and SELL-C-σ must equal CRS
//!    bitwise (it permutes row order, never per-row summation order).
//! 2. **ECM attribution** (always enforced): on the A64FX descriptor the
//!    cold random-column CRS family must come out `bandwidth_bound` —
//!    its cache-line transfer time, not its core execution time, sets
//!    the single-core runtime. That is the headline claim the SELL-C-σ
//!    format rests on.
//! 3. **Replay-over-interpreter floors** (full mode only): replaying the
//!    recorded trace must beat re-interpreting the kernel per block.
//!
//! Writes `BENCH_spmv.json` (schema `ookami-bench-v1`). Run with:
//!
//! ```text
//! cargo run -p ookami-bench --release --bin spmv [--smoke]
//! ```

use ookami_bench::ecm::{ecm_families, ecm_hints, ecm_spmv_fixture, ecm_table_rows, ECM_STREAM_N};
use ookami_core::obs::derive::render_ecm_table;
use ookami_core::{auto_threads, obs};
use ookami_spmv::{
    run_crs_interp, run_crs_replay, run_crs_replay_par, run_sell_replay, run_stream, stream_ref,
    stream_trace, SellCSigma, Stencil, StreamExec, StreamKernel,
};
use std::time::Instant;

fn best_of<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

fn bits_eq(name: &str, want: &[f64], got: &[f64]) -> bool {
    let ok = want.len() == got.len()
        && want
            .iter()
            .zip(got)
            .all(|(w, g)| w.to_bits() == g.to_bits());
    if !ok {
        eprintln!("FAIL: {name}: output is not bit-identical to the reference");
    }
    ok
}

#[allow(clippy::too_many_lines)]
fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    obs::reset();
    let obs_before = obs::snapshot();
    let reps = if smoke { 2 } else { 5 };
    let vl = 8;
    let host_cores = auto_threads();

    // --- fixtures: the exact ones the ECM rows are built from ---
    let (m, x) = ecm_spmv_fixture();
    let hints = ecm_hints(vl);
    let s = SellCSigma::from_crs(&m, vl, m.n_rows);
    let want = m.spmv_ref(&x);

    // --- bit-identity gate across every executor ---
    let tc = ookami_spmv::crs_trace(&m, &x, vl, hints);
    let ts = ookami_spmv::sell_trace(&s, &x, hints);
    let y_replay = run_crs_replay(&tc, &m);
    let y_interp = run_crs_interp(&m, &x, vl, hints);
    let y_par = run_crs_replay_par(4, &tc, &m);
    let y_sell = run_sell_replay(&ts, &s);
    let n = ECM_STREAM_N;
    let sb: Vec<f64> = (0..n).map(|i| 1.0 / (1.0 + i as f64)).collect();
    let sc: Vec<f64> = (0..n).map(|i| 0.5 + i as f64).collect();
    let triad = stream_trace(StreamKernel::Triad, vl);
    let triad_want = stream_ref(StreamKernel::Triad, &sb, Some(&sc));
    let triad_replay = run_stream(
        &triad,
        StreamKernel::Triad,
        StreamExec::Replay,
        1,
        &sb,
        Some(&sc),
    );
    let triad_compiled = run_stream(
        &triad,
        StreamKernel::Triad,
        StreamExec::Compiled,
        1,
        &sb,
        Some(&sc),
    );
    let st = Stencil::d2(32, 32, 0.5, -0.125);
    let field = st.field();
    let st_trace = st.trace(&field, vl, vl as u32);
    let bit_identical = bits_eq("crs replay", &want, &y_replay)
        & bits_eq("crs interp", &want, &y_interp)
        & bits_eq("crs replay_par(4)", &want, &y_par)
        & bits_eq("sell replay", &want, &y_sell)
        & bits_eq("stream triad replay", &triad_want, &triad_replay)
        & bits_eq("stream triad compiled", &triad_want, &triad_compiled)
        & bits_eq(
            "stencil4 replay",
            &st.apply_ref(&field),
            &st_trace.replay_map(&st.sites_f64()),
        );

    // --- rates: elements/s through the serial replayer ---
    let nnz = m.nnz() as f64;
    let crs_s = best_of(reps, || {
        std::hint::black_box(run_crs_replay(&tc, &m));
    });
    let sell_s = best_of(reps, || {
        std::hint::black_box(run_sell_replay(&ts, &s));
    });
    let crs_interp_s = best_of(reps, || {
        std::hint::black_box(run_crs_interp(&m, &x, vl, hints));
    });
    let crs_par_s = best_of(reps, || {
        std::hint::black_box(run_crs_replay_par(4, &tc, &m));
    });
    let triad_replay_s = best_of(reps, || {
        std::hint::black_box(run_stream(
            &triad,
            StreamKernel::Triad,
            StreamExec::Replay,
            1,
            &sb,
            Some(&sc),
        ));
    });
    let triad_interp_s = best_of(reps, || {
        std::hint::black_box(run_stream(
            &triad,
            StreamKernel::Triad,
            StreamExec::Interp,
            1,
            &sb,
            Some(&sc),
        ));
    });
    let spmv_replay_speedup = crs_interp_s / crs_s;
    let stream_replay_speedup = triad_interp_s / triad_replay_s;
    let spmv_par_speedup = crs_s / crs_par_s;

    // --- the ECM table on the A64FX descriptor ---
    let machine = ookami_uarch::machines::a64fx();
    let rows = ecm_families(machine, vl);
    let table = render_ecm_table(&ecm_table_rows(&rows), machine);
    let crs_row = rows.iter().find(|r| r.name == "spmv_crs").expect("crs row");
    let sell_row = rows
        .iter()
        .find(|r| r.name == "spmv_sell")
        .expect("sell row");
    let triad_row = rows.iter().find(|r| r.name == "triad").expect("triad row");
    let ecm_gate = crs_row.model.bandwidth_bound;

    println!(
        "spmv: {} x {}, {} nnz ({}/row), x = {} KiB; SELL-{}-σ{} lane utilization {:.3}",
        m.n_rows,
        m.n_cols,
        m.nnz(),
        m.nnz() / m.n_rows,
        m.n_cols * 8 / 1024,
        s.c,
        s.sigma,
        s.lane_utilization()
    );
    println!(
        "  crs  replay: {:>12.0} elems/s   interp: {:>12.0} elems/s   ({spmv_replay_speedup:.2}x)",
        nnz / crs_s,
        nnz / crs_interp_s
    );
    println!(
        "  sell replay: {:>12.0} elems/s   par(4): {spmv_par_speedup:.2}x on {host_cores} host core(s)",
        s.nnz as f64 / sell_s
    );
    println!(
        "  triad replay: {:>11.0} elems/s   interp: {:>12.0} elems/s   ({stream_replay_speedup:.2}x)",
        n as f64 / triad_replay_s,
        n as f64 / triad_interp_s
    );
    println!("\n{table}");
    println!("  bit identity (interp == replay == par == compiled == scalar ref): {bit_identical}");
    println!(
        "  ecm: crs is {} (t_core {:.1} vs t_data {:.1} cy/CL)",
        crs_row.model.bound_name(),
        crs_row.model.t_core,
        crs_row.model.t_data
    );

    let gate = bit_identical && ecm_gate;
    let mut report = obs::BenchReport::new("spmv", if smoke { "smoke" } else { "full" });
    report
        .metric("n_rows", m.n_rows as f64)
        .metric("nnz", nnz)
        .metric("crs_elems_per_sec", nnz / crs_s)
        .metric("sell_elems_per_sec", s.nnz as f64 / sell_s)
        .metric("crs_interp_elems_per_sec", nnz / crs_interp_s)
        .metric("triad_elems_per_sec", n as f64 / triad_replay_s)
        .metric("spmv_replay_speedup", spmv_replay_speedup)
        .metric("stream_replay_speedup", stream_replay_speedup)
        .metric("spmv_par_speedup", spmv_par_speedup)
        .metric("sell_lane_utilization", s.lane_utilization())
        .metric("ecm_crs_t_core", crs_row.model.t_core)
        .metric("ecm_crs_t_data", crs_row.model.t_data)
        .metric("ecm_crs_t_cl", crs_row.model.t_cl)
        .metric("ecm_crs_n_sat", crs_row.model.n_sat as f64)
        .metric("ecm_sell_t_core", sell_row.model.t_core)
        .metric("ecm_sell_t_cl", sell_row.model.t_cl)
        .metric("ecm_triad_t_cl", triad_row.model.t_cl)
        .metric("host_cores", host_cores as f64)
        .flag("machine", "a64fx")
        .flag("ecm_crs_bound", crs_row.model.bound_name())
        .flag("ecm_triad_bound", triad_row.model.bound_name())
        .flag("bit_identical", bit_identical)
        .flag("gate", gate)
        .attach_obs(&obs::snapshot().since(&obs_before));
    report
        .write("BENCH_spmv.json")
        .expect("write BENCH_spmv.json");
    println!("wrote BENCH_spmv.json");

    if !gate {
        std::process::exit(1);
    }
    // Replay-over-interpreter floors: recording once and replaying the
    // fused recipes must clearly beat per-block re-interpretation for the
    // gather-heavy SpMV kernel. STREAM's one-instruction body is the
    // worst case for the replayer — with obs compiled in, its per-block
    // counter accounting outweighs the single fused op and the
    // interpreter wins (~0.5x here) — so that floor only guards against
    // a catastrophic slowdown. Only meaningful at full problem size.
    if !smoke && (spmv_replay_speedup < 1.2 || stream_replay_speedup < 0.4) {
        eprintln!(
            "FAIL: replay floors: spmv {spmv_replay_speedup:.2}x (need >= 1.2x), \
             stream {stream_replay_speedup:.2}x (need >= 0.4x)"
        );
        std::process::exit(1);
    }
    if smoke {
        println!("OK (smoke): identity + ECM attribution hold (floors not gated)");
    } else {
        println!("OK: identity + ECM attribution hold; replay {spmv_replay_speedup:.2}x / {stream_replay_speedup:.2}x");
    }
}
