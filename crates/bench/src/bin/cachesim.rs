//! Cache-simulator probe: the sharded set-associative simulator
//! (`ookami_mem::ShardedCacheSim`) vs the serial `CacheSim` on
//! deterministic synthetic traces.
//!
//! Two gates:
//!
//! 1. **Identity** (always enforced, exit 1 on failure): the sharded
//!    simulator — serial dispatch and pool-parallel replay at several
//!    thread counts — must produce hit/miss/eviction counts *exactly*
//!    equal to the serial simulator, on both the A64FX and Skylake
//!    memory geometries. Sharding by set index is a bijection that
//!    preserves per-set LRU order, so any drift is a bug, not noise.
//! 2. **Parallel floor** (full mode, obs-independent, only on hosts with
//!    ≥ 4 cores): pool-parallel replay at 4 threads must be at least 2×
//!    the serial simulator on the same trace.
//!
//! Writes `BENCH_mem.json` (schema `ookami-bench-v1`) with the headline
//! A64FX numbers plus `host_cores`, so `benchdiff` can apply the same
//! capability-gated floor to committed baselines. Run with:
//!
//! ```text
//! cargo run -p ookami-bench --bin cachesim --release [--smoke]
//! ```

use ookami_core::{auto_threads, obs};
use ookami_mem::{AccessStats, CacheSim, ShardedCacheSim};
use ookami_uarch::{machines, MemSpec};
use std::time::Instant;

/// Deterministic synthetic trace mixing the three behaviors the cache
/// model has to get right: streaming fills (compulsory misses + high reuse
/// within a line), power-of-two strides (conflict evictions), and an LCG
/// scatter (capacity pressure across many sets).
fn synth_trace(n: usize) -> Vec<(u64, usize)> {
    let mut out = Vec::with_capacity(n);
    let third = n / 3;
    // Streaming doubles over a working set larger than L2.
    for i in 0..third {
        out.push(((i as u64 * 8) % (1 << 24), 8));
    }
    // Strided doubles: 4 KiB stride folds onto few sets.
    for i in 0..third {
        out.push(((i as u64 * 4096) % (1 << 26), 8));
    }
    // LCG scatter with occasional multi-line vector touches.
    let mut x: u64 = 0x9e37_79b9_7f4a_7c15;
    while out.len() < n {
        x = x
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        let addr = (x >> 17) % (1 << 25);
        let bytes = if x.trailing_zeros() >= 3 { 256 } else { 8 };
        out.push((addr, bytes));
    }
    out
}

fn serial_stats(spec: MemSpec, trace: &[(u64, usize)]) -> AccessStats {
    let mut c = CacheSim::new(spec);
    c.replay(trace.iter().copied())
}

fn best_of<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

/// Exact-equality check for one machine across dispatch strategies.
/// Returns false (and prints) on any mismatch.
fn identity_check(name: &str, spec: MemSpec, trace: &[(u64, usize)]) -> bool {
    let want = serial_stats(spec, trace);
    let mut ok = true;
    let mut sharded = ShardedCacheSim::new(spec, 8);
    let got = sharded.replay(trace);
    if got != want {
        eprintln!("FAIL: {name}: sharded serial replay {got:?} != serial {want:?}");
        ok = false;
    }
    for threads in [0usize, 1, 2, 4] {
        let mut s = ShardedCacheSim::new(spec, 8);
        let got = s.replay_par(threads, trace);
        if got != want {
            eprintln!(
                "FAIL: {name}: replay_par({threads}) over {} shard(s) {got:?} != serial {want:?}",
                s.n_shards()
            );
            ok = false;
        }
    }
    ok
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    obs::reset();
    let obs_before = obs::snapshot();
    let n = if smoke { 30_000 } else { 600_000 };
    let reps = if smoke { 2 } else { 5 };
    let trace = synth_trace(n);
    let host_cores = auto_threads();

    // --- identity gates on both machine geometries ---
    let a64 = machines::a64fx().mem;
    let skx = machines::skylake_6140().mem;
    let gate = identity_check("a64fx", a64, &trace) && identity_check("skylake_6140", skx, &trace);

    // --- throughput: serial vs pool-parallel sharded, A64FX geometry ---
    let stats = serial_stats(a64, &trace);
    let lines = stats.accesses;
    let mut serial = CacheSim::new(a64);
    serial.replay(trace.iter().copied()); // warm
    let serial_s = best_of(reps, || {
        std::hint::black_box(serial.replay(trace.iter().copied()));
    });
    let mut sharded = ShardedCacheSim::new(a64, 8);
    let shards = sharded.n_shards();
    sharded.replay_par(4, &trace); // warm
    let par_s = best_of(reps, || {
        std::hint::black_box(sharded.replay_par(4, &trace));
    });
    let serial_lps = lines as f64 / serial_s;
    let par_lps = lines as f64 / par_s;
    let par_speedup = serial_s / par_s;

    println!("cachesim: {n} accesses ({lines} line touches), a64fx geometry");
    println!(
        "  serial      : {serial_lps:>12.0} lines/s  (l1 {} l2 {} l3 {} mem {} evict {})",
        stats.l1_hits, stats.l2_hits, stats.l3_hits, stats.mem, stats.evictions
    );
    println!(
        "  sharded par4: {par_lps:>12.0} lines/s  ({par_speedup:.2}x, {shards} shard(s), \
         {host_cores} host core(s))"
    );
    println!("  identity (serial == sharded == par over both machines): {gate}");

    let mut report = obs::BenchReport::new("cachesim", if smoke { "smoke" } else { "full" });
    report
        .metric("accesses", n as f64)
        .metric("line_touches", lines as f64)
        .metric("l1_hits", stats.l1_hits as f64)
        .metric("l2_hits", stats.l2_hits as f64)
        .metric("l3_hits", stats.l3_hits as f64)
        .metric("mem_fills", stats.mem as f64)
        .metric("evictions", stats.evictions as f64)
        .metric("serial_lines_per_sec", serial_lps)
        .metric("par4_lines_per_sec", par_lps)
        .metric("cachesim_par_speedup", par_speedup)
        .metric("shards", shards as f64)
        .metric("host_cores", host_cores as f64)
        .flag("machine", "a64fx")
        .flag("gate", gate)
        .attach_obs(&obs::snapshot().since(&obs_before));
    report
        .write("BENCH_mem.json")
        .expect("write BENCH_mem.json");
    println!("wrote BENCH_mem.json");

    if !gate {
        std::process::exit(1);
    }
    // Capability-gated parallel floor, mirroring benchdiff: on < 4 cores
    // the pool runs shard tasks inline and the ratio is meaningless.
    if !smoke && host_cores >= 4 && par_speedup < 2.0 {
        eprintln!("FAIL: sharded par4 speedup {par_speedup:.2}x < 2x on a {host_cores}-core host");
        std::process::exit(1);
    }
    if smoke {
        println!("OK (smoke): identity holds; par4 {par_speedup:.2}x (not gated)");
    } else {
        println!("OK: identity holds; par4 {par_speedup:.2}x");
    }
}
