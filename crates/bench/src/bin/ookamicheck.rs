//! `ookamicheck` — the repo's static-analysis gate: run the
//! `ookami-check` verifier over the shipped traces of every workload
//! family (as recorded, `+opt`, and `+lowered`), replay the mutation
//! corpus, race-check the pool runtime, and (under `--tv`) prove every
//! family trace through the trace compiler's pass pipeline with the
//! translation validator. Run with:
//!
//! ```text
//! cargo run -p ookami-bench --bin ookamicheck --release [-- --mutations]
//! cargo run -p ookami-bench --bin ookamicheck --release -- --tv
//! ```
//!
//! Exit is nonzero if any shipped trace reports a diagnostic, any corpus
//! or trace mutant is mis-judged, any TV pass transition fails to prove,
//! or any pool race is found. Without `--features obs` the real-kernel
//! race gate is skipped with a visible notice (timeline events only
//! record with obs); the `--inject-race` / `--inject-tv` self-tests are
//! feature-independent and *exit 1 when the injected defect is flagged*
//! — the caller inverts them, mirroring `benchdiff
//! --inject-regression`.

use ookami_bench::family;
use ookami_check::{
    detect_races, injected_race_events, injected_sampler_race_events, render_all, to_json,
    validate_trace, verify, MutantVerdict, Program,
};
use ookami_core::obs::Json;
use ookami_core::{timeline, Schedule};
use ookami_loops::emulated as loops_em;
use ookami_mc::emulated as mc_em;
use ookami_sve::Trace;
use ookami_vecmath::{exp_trace, ExpVariant};

fn usage() -> ! {
    println!(
        "ookamicheck — static verifier + translation validator + race gate\n\
         \n\
         usage: ookamicheck [--mutations] [--tv] [--inject-race]\n\
         \x20                [--inject-sampler-race] [--inject-tv]\n\
         \x20                [--json <path>] [--help]\n\
         \n\
         options:\n\
           --mutations     also replay the golden corpus and trace-mutation\n\
                           self-tests (every broken stream must be rejected\n\
                           with its expected code)\n\
           --tv            run the translation validator instead: prove every\n\
                           family trace pass-by-pass through the compiler\n\
                           pipeline, plus the 24-seed mutation self-test\n\
                           (report goes to --json, default\n\
                           target/OOKAMICHECK.tv.json)\n\
           --inject-race   feed the detector a synthetic overlapping-write\n\
                           stream; exits 1 when the race is flagged (the\n\
                           caller inverts this, like benchdiff's\n\
                           --inject-regression)\n\
           --inject-sampler-race\n\
                           same, with a telemetry-actor stream: one sampler\n\
                           ring slot written by two unordered threads\n\
           --inject-tv     feed the validator a trail with a tampered stage;\n\
                           exits 1 when TV rejects it (caller inverts)\n\
           --json <path>   machine-readable report (default\n\
                           target/OOKAMICHECK.json)\n\
           --help          this text"
    );
    std::process::exit(0)
}

/// Every shipped workload-family trace, one per kernel: Section III
/// loops, Section IV exp, the Monte Carlo example, and the
/// NPB/LULESH/HPCC model kernels. Shared by the static-verifier gate and
/// the translation-validation gate (`--tv`).
fn family_traces() -> Vec<(&'static str, Trace)> {
    let vl = 8;
    let tab: Vec<f64> = (0..128).map(|i| f64::from(i) * 0.5).collect();
    let mut scratch = vec![0.0f64; 128];
    vec![
        // -- loops (Section III) --
        ("loops_simple", loops_em::simple_trace(vl)),
        ("loops_predicate", loops_em::predicate_trace(vl).0),
        ("loops_gather", loops_em::gather_trace(vl, &tab, 8)),
        ("loops_scatter", loops_em::scatter_trace(vl, &mut scratch)),
        // -- vecmath exp (Section IV), every variant --
        ("exp_fexpa_horner", exp_trace(vl, ExpVariant::FexpaHorner)),
        ("exp_fexpa_estrin", exp_trace(vl, ExpVariant::FexpaEstrin)),
        (
            "exp_fexpa_corrected",
            exp_trace(vl, ExpVariant::FexpaEstrinCorrected),
        ),
        ("exp_poly13", exp_trace(vl, ExpVariant::Poly13)),
        ("exp_poly13_sleef", exp_trace(vl, ExpVariant::Poly13Sleef)),
        // -- Monte Carlo (Section II example) --
        ("mc_metropolis", mc_em::metropolis_trace(vl, 42).0),
        // -- NPB / LULESH / HPCC model kernels (Sections V–VII) --
        ("npb_cg_matvec", family::cg_matvec_trace(vl)),
        ("lulesh_eos", family::lulesh_eos_trace(vl)),
        ("hpcc_triad", family::hpcc_triad_trace(vl)),
        ("hpcc_dgemm", family::hpcc_dgemm_trace(vl)),
        // -- irregular-memory families (ookami-spmv) --
        ("spmv_crs", family::spmv_crs_trace(vl)),
        ("spmv_sell", family::spmv_sell_trace(vl)),
        ("stream_copy", family::stream_copy_trace(vl)),
        ("stream_scale", family::stream_scale_trace(vl)),
        ("stream_add", family::stream_add_trace(vl)),
        ("stream_triad", family::stream_triad_trace(vl)),
        ("stencil4", family::stencil4_trace(vl)),
        ("stencil7", family::stencil7_trace(vl)),
    ]
}

/// Each family trace is verified three ways: as recorded (`Traced` SSA
/// convention), after the trace compiler's pass pipeline
/// ([`Trace::optimized`], the `+opt` rows — an optimizer pass that broke
/// SSA wiring, predicate safety, or operand domains would turn its `+opt`
/// form DIRTY right here), and as the lowered `to_instrs` stream
/// (`+lowered` rows, non-SSA `Lowered` convention) with the trace's
/// constant and table facts attached — so the `OC0004` bounds pass also
/// covers the instruction stream the cache/pipeline simulators consume.
fn shipped_programs() -> Vec<Program> {
    let mut out = Vec::new();
    for (name, t) in &family_traces() {
        out.push(Program::from_trace(name, t));
        out.push(Program::from_trace(&format!("{name}+opt"), &t.optimized()));
        let info = t.analysis();
        let mut low = Program::from_stream(&format!("{name}+lowered"), info.body);
        low.const_lanes = info.const_lanes;
        low.table_len = info.table_len;
        out.push(low);
    }
    out
}

/// The corpus + trace-mutation self-test; returns failure count.
fn run_mutations() -> usize {
    let mut failures = 0;
    println!("-- golden corpus --");
    for e in ookami_check::corpus::entries() {
        let got: Vec<_> = verify(&e.program).iter().map(|d| d.code).collect();
        let ok = got == e.expected;
        println!(
            "{:>18}  expect {:?}  {}",
            e.name,
            e.expected.iter().map(|c| c.as_str()).collect::<Vec<_>>(),
            if ok { "ok" } else { "MISMATCH" }
        );
        if !ok {
            eprintln!(
                "  got {:?}",
                got.iter().map(|c| c.as_str()).collect::<Vec<_>>()
            );
            failures += 1;
        }
    }

    println!("-- trace mutants --");
    let bases: Vec<(&str, Trace)> = vec![
        ("loops_simple", loops_em::simple_trace(8)),
        (
            "exp_fexpa_corrected",
            exp_trace(8, ExpVariant::FexpaEstrinCorrected),
        ),
    ];
    let xs: Vec<f64> = (0..64).map(|i| -2.0 + 4.0 * f64::from(i) / 64.0).collect();
    for (name, base) in &bases {
        let reference = base.map(&xs);
        let mut rejected = 0usize;
        let mut semantic = 0usize;
        for seed in 0..24u64 {
            let m = base.mutated(seed);
            let diags = verify(&Program::from_trace("mutant", &m));
            let errors = diags.iter().filter(|d| d.is_error()).count();
            if seed % 4 == 3 {
                // Semantic mutants pass the verifier but must change the
                // observable output — otherwise the mutation self-test
                // proves nothing.
                if errors != 0 {
                    eprintln!("{name}: semantic mutant seed={seed} rejected: {diags:?}");
                    failures += 1;
                } else if m.map(&xs) == reference {
                    eprintln!("{name}: semantic mutant seed={seed} output unchanged");
                    failures += 1;
                } else {
                    semantic += 1;
                }
            } else if errors == 0 {
                eprintln!("{name}: structural mutant seed={seed} not rejected");
                failures += 1;
            } else {
                rejected += 1;
            }
        }
        println!("{name:>22}  {rejected} structural rejected, {semantic} semantic diverged");
    }

    // SpMV's CRS trace cannot go through `Trace::map` (three bound input
    // streams plus a carried accumulator chained across row blocks), so
    // its semantic mutants are judged under the real replay harness —
    // the same path the `spmv` probe and the bit-identity tests use.
    println!("-- spmv trace mutants (replay-evaluated) --");
    {
        let (mfix, _x) = family::spmv_fixture();
        let base = family::spmv_crs_trace(8);
        let reference = ookami_spmv::run_crs_replay(&base, &mfix);
        let mut rejected = 0usize;
        let mut semantic = 0usize;
        for seed in 0..24u64 {
            let m = base.mutated(seed);
            let errors = verify(&Program::from_trace("mutant", &m))
                .iter()
                .filter(|d| d.is_error())
                .count();
            if seed % 4 == 3 {
                if errors == 0 && ookami_spmv::run_crs_replay(&m, &mfix) != reference {
                    semantic += 1;
                }
            } else if errors == 0 {
                eprintln!("spmv_crs: structural mutant seed={seed} not rejected");
                failures += 1;
            } else {
                rejected += 1;
            }
        }
        if semantic == 0 {
            eprintln!("spmv_crs: no semantic mutant diverged under replay");
            failures += 1;
        }
        println!(
            "{:>22}  {rejected} structural rejected, {semantic} semantic diverged",
            "spmv_crs"
        );
    }

    // The same discipline holds *after* the pass pipeline: optimized
    // traces must verify clean, and wiring damage inflicted on an
    // optimized trace must still be rejected — i.e. the verifier keeps
    // its teeth on exactly the programs the trace compiler executes.
    println!("-- optimized-trace mutants --");
    for (name, base) in &bases {
        let opt = base.optimized();
        let clean = verify(&Program::from_trace("opt", &opt))
            .iter()
            .all(|d| !d.is_error());
        if !clean {
            eprintln!("{name}+opt: pass pipeline produced a DIRTY trace");
            failures += 1;
        }
        let reference = opt.replay_map(&xs);
        let mut rejected = 0usize;
        let mut semantic = 0usize;
        for seed in 0..24u64 {
            let m = opt.mutated(seed);
            let errors = verify(&Program::from_trace("mutant", &m))
                .iter()
                .filter(|d| d.is_error())
                .count();
            if seed % 4 == 3 {
                if errors == 0 && m.replay_map(&xs) != reference {
                    semantic += 1;
                }
            } else if errors == 0 {
                eprintln!("{name}+opt: structural mutant seed={seed} not rejected");
                failures += 1;
            } else {
                rejected += 1;
            }
        }
        println!(
            "{:>22}  {rejected} structural rejected, {semantic} semantic diverged",
            format!("{name}+opt")
        );
    }
    failures
}

/// The translation-validation gate (`--tv`): prove every family trace
/// pass-by-pass through the compiler pipeline, then challenge the
/// validator with 24 mutated intermediate stages per map-able base —
/// every mutant must be rejected by TV or observably divergent in
/// replay. Returns the failure count and writes the
/// `ookamicheck-tv-v1` JSON report.
fn run_tv(json_path: &str) -> usize {
    let mut failures = 0usize;
    println!("== ookamicheck: translation validator ==");
    println!(
        "{:>22}  {:>6}  {:>8}  {:>8}",
        "trace", "stages", "counters", "verdict"
    );
    let mut entries = Vec::new();
    for (name, t) in &family_traces() {
        let r = validate_trace(name, t);
        let ok = r.is_ok();
        println!(
            "{:>22}  {:>6}  {:>8}  {:>8}",
            name,
            r.stages.len(),
            if r.counters_checked {
                "proved"
            } else {
                "skipped"
            },
            if ok { "proved" } else { "FAILED" }
        );
        if !ok {
            for s in &r.stages {
                if !s.diags.is_empty() {
                    eprint!("{}", render_all(&s.program, &s.diags));
                }
            }
            for d in &r.counter_diags {
                eprintln!("{name}: counters: {}", d.message);
            }
            failures += 1;
        }
        entries.push(format!(
            "{{\"trace\": \"{name}\", \"errors\": {}, \"counters_checked\": {}}}",
            r.errors(),
            r.counters_checked
        ));
    }

    println!("-- tv mutation self-test (24 seeds per base) --");
    let bases: Vec<(&str, Trace)> = vec![
        ("loops_simple", loops_em::simple_trace(8)),
        (
            "exp_fexpa_corrected",
            exp_trace(8, ExpVariant::FexpaEstrinCorrected),
        ),
    ];
    let mut challenges = Vec::new();
    for (name, base) in &bases {
        let trail = base.pass_trail();
        let (mut rejected, mut divergent) = (0usize, 0usize);
        for seed in 0..24u64 {
            match ookami_check::tv::challenge(&trail, seed) {
                MutantVerdict::Rejected => rejected += 1,
                MutantVerdict::Divergent => divergent += 1,
                MutantVerdict::Missed => {
                    eprintln!("{name}: TV accepted a bit-identical mutated stage, seed={seed}");
                    failures += 1;
                }
            }
        }
        println!("{name:>22}  {rejected} rejected, {divergent} divergent");
        challenges.push(format!(
            "{{\"base\": \"{name}\", \"rejected\": {rejected}, \"divergent\": {divergent}}}"
        ));
    }

    let doc = format!(
        "{{\n\"schema\": \"ookamicheck-tv-v1\",\n\"traces\": [\n{}\n],\n\"challenge\": [\n{}\n],\n\"failures\": {failures}\n}}\n",
        entries.join(",\n"),
        challenges.join(",\n")
    );
    Json::parse(&doc).expect("ookamicheck TV report must be valid JSON");
    if let Some(dir) = std::path::Path::new(json_path).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    std::fs::write(json_path, &doc).expect("write TV report");
    println!("wrote {json_path}");
    failures
}

/// The `--inject-tv` self-test: tamper a known-good trail two ways — a
/// structurally broken intermediate stage and an off-by-one static
/// counter snapshot — and exit 1 only if the validator flags both (the
/// caller inverts, like `--inject-race`).
fn run_inject_tv() -> i32 {
    let trail = loops_em::simple_trace(8).pass_trail();
    // Structural: a double-def mutation of the pred_simplify stage.
    let structural = ookami_check::tv::challenge(&trail, 1);
    if structural != MutantVerdict::Rejected {
        eprintln!("inject-tv: validator missed the mutated stage ({structural:?})");
        return 0; // caller treats exit 0 as THE failure
    }
    // Counter recipe: bump one static counter in the emission plan.
    let mut tampered = trail.clone();
    let Some(plan) = tampered.plan.as_mut() else {
        eprintln!("inject-tv: base trace unexpectedly has no native plan");
        return 0;
    };
    let c = ookami_core::obs::Counter::SveInstrs;
    plan.acct_static.set(c, plan.acct_static.get(c) + 1);
    match ookami_check::tv::verify_counters(&tampered) {
        Some(diags) if diags.iter().any(ookami_check::Diag::is_error) => {
            for d in &diags {
                println!("inject-tv: flagged {}: {}", d.code.as_str(), d.message);
            }
            println!("inject-tv: flagged the mutated stage and the counter tamper");
            1
        }
        other => {
            eprintln!("inject-tv: counter tamper not flagged ({other:?})");
            0
        }
    }
}

/// Record a real pool run (all three schedules + a trace replay) with
/// the telemetry actors live — a background `Sampler` thread and
/// `serve` connection threads — and race-check its timeline. The actor
/// fork/write/join events those background threads emit must all prove
/// ordered. Returns (events, races) — only meaningful with obs
/// compiled in.
fn race_check_kernels() -> (usize, usize) {
    timeline::start(timeline::DEFAULT_CAPACITY);
    // Background telemetry actors run *during* the pool workload, so
    // their timeline events interleave with the fork/join protocol.
    let mut sampler =
        ookami_core::telemetry::Sampler::start(std::time::Duration::from_millis(5), 8);
    let server =
        ookami_core::telemetry::serve::spawn_in("127.0.0.1:0", std::path::PathBuf::from("target"))
            .ok();
    let n = 10_000;
    let mut buf = vec![0.0f64; n];
    for sched in [
        Schedule::Static,
        Schedule::Dynamic { chunk: 64 },
        Schedule::Guided,
    ] {
        ookami_core::par_chunks_mut_with(4, &mut buf, 16, sched, |i, c| {
            for (k, x) in c.iter_mut().enumerate() {
                *x = (i * 16 + k) as f64;
            }
        });
    }
    // A trace replay drives the pool through the static path once more.
    let xs: Vec<f64> = (0..4096).map(|i| f64::from(i) * 1.0e-3).collect();
    std::hint::black_box(loops_em::simple_trace(8).par_map(4, &xs));
    sampler.force_sample();
    if let Some(srv) = &server {
        // Two requests → two connection actors in the event stream.
        for path in ["/metrics", "/samples"] {
            let _ = ookami_core::telemetry::serve::http_get(srv.addr(), path);
        }
    }
    if let Some(srv) = server {
        srv.stop();
    }
    sampler.stop();
    timeline::stop();
    let events = timeline::export_events();
    let actor_events = events
        .iter()
        .filter(|e| {
            matches!(
                e.payload,
                timeline::EventPayload::ActorFork { .. }
                    | timeline::EventPayload::ActorWrite { .. }
                    | timeline::EventPayload::ActorJoin { .. }
            )
        })
        .count();
    println!("telemetry actors: {actor_events} fork/write/join event(s) in the stream");
    let races = detect_races(&events);
    for r in &races {
        eprintln!("race: {r}");
    }
    (events.len(), races.len())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut mutations = false;
    let mut tv = false;
    let mut inject_race = false;
    let mut inject_sampler_race = false;
    let mut inject_tv = false;
    let mut json_path: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--mutations" => mutations = true,
            "--tv" => tv = true,
            "--inject-race" => inject_race = true,
            "--inject-sampler-race" => inject_sampler_race = true,
            "--inject-tv" => inject_tv = true,
            "--json" => {
                if let Some(p) = it.next() {
                    json_path = Some(p.clone());
                } else {
                    eprintln!("error: --json needs a path argument");
                    std::process::exit(2);
                }
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("error: unknown argument `{other}` (try --help)");
                std::process::exit(2);
            }
        }
    }

    if inject_tv {
        std::process::exit(run_inject_tv());
    }

    if tv {
        let path = json_path.unwrap_or_else(|| String::from("target/OOKAMICHECK.tv.json"));
        let failures = run_tv(&path);
        if failures > 0 {
            eprintln!("ookamicheck: {failures} TV gate failure(s)");
            std::process::exit(1);
        }
        println!("ookamicheck --tv: all pass transitions proved");
        return;
    }
    let json_path = json_path.unwrap_or_else(|| String::from("target/OOKAMICHECK.json"));

    if inject_race {
        let races = detect_races(&injected_race_events());
        if races.is_empty() {
            eprintln!("inject-race: detector missed the injected overlap");
            std::process::exit(0); // caller treats exit 0 as THE failure
        }
        for r in &races {
            println!("inject-race: flagged {r}");
        }
        std::process::exit(1);
    }

    if inject_sampler_race {
        let races = detect_races(&injected_sampler_race_events());
        if races.is_empty() {
            eprintln!("inject-sampler-race: detector missed the unordered actor writes");
            std::process::exit(0); // caller treats exit 0 as THE failure
        }
        for r in &races {
            println!("inject-sampler-race: flagged {r}");
        }
        std::process::exit(1);
    }

    let mut failures = 0usize;

    // -- verifier gate over every shipped workload trace --
    println!("== ookamicheck: static verifier ==");
    println!(
        "{:>22}  {:>6}  {:>6}  {:>8}",
        "program", "instrs", "diags", "verdict"
    );
    let programs = shipped_programs();
    let mut reports = Vec::new();
    for p in &programs {
        let diags = verify(p);
        println!(
            "{:>22}  {:>6}  {:>6}  {:>8}",
            p.name,
            p.instrs.len(),
            diags.len(),
            if diags.is_empty() { "clean" } else { "DIRTY" }
        );
        if !diags.is_empty() {
            eprint!("{}", render_all(p, &diags));
            failures += 1;
        }
        reports.push(to_json(p, &diags));
    }

    if mutations {
        println!("== ookamicheck: mutation self-tests ==");
        failures += run_mutations();
    }

    // -- race gate --
    println!("== ookamicheck: happens-before race detector ==");
    let race_summary = if ookami_core::obs::enabled() {
        let (events, races) = race_check_kernels();
        println!("pool kernels: {events} timeline events, {races} race(s)");
        if races > 0 {
            failures += 1;
        }
        format!("{{\"checked\": true, \"events\": {events}, \"races\": {races}}}")
    } else {
        println!(
            "SKIPPED: built without the `obs` feature — timeline events do \
             not record, so the real-kernel race gate cannot run here \
             (CI runs it under --features obs; --inject-race still works)"
        );
        String::from("{\"checked\": false, \"events\": 0, \"races\": 0}")
    };

    // -- machine-readable report --
    let doc = format!(
        "{{\n\"schema\": \"ookamicheck-v1\",\n\"programs\": [\n{}\n],\n\"race\": {race_summary},\n\"failures\": {failures}\n}}\n",
        reports.join(",\n")
    );
    Json::parse(&doc).expect("ookamicheck report must be valid JSON");
    if let Some(dir) = std::path::Path::new(&json_path).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    std::fs::write(&json_path, &doc).expect("write report");
    println!("wrote {json_path}");

    if failures > 0 {
        eprintln!("ookamicheck: {failures} gate failure(s)");
        std::process::exit(1);
    }
    println!("ookamicheck: all gates clean");
}

#[cfg(test)]
mod tests {
    use super::*;

    // Exit-code behavior of the TV gate, tested through the same
    // functions `main` dispatches to (0 failures == exit 0).
    #[test]
    fn tv_gate_proves_every_family_and_json_parses() {
        let path = std::env::temp_dir().join("test-ookamicheck-tv.json");
        let path = path.to_str().expect("temp path is utf-8");
        assert_eq!(run_tv(path), 0);
        let doc = std::fs::read_to_string(path).expect("TV report written");
        let v = Json::parse(&doc).expect("TV report parses");
        match v.get("schema") {
            Some(Json::Str(s)) => assert_eq!(s, "ookamicheck-tv-v1"),
            other => panic!("bad schema field: {other:?}"),
        }
        match v.get("failures") {
            Some(Json::Num(n)) => assert_eq!(*n, 0.0),
            other => panic!("bad failures field: {other:?}"),
        }
        match v.get("traces") {
            Some(Json::Arr(a)) => assert_eq!(a.len(), family_traces().len()),
            other => panic!("bad traces field: {other:?}"),
        }
    }

    #[test]
    fn inject_tv_flags_both_tampers() {
        // Exit 1 = both injected defects flagged; the gate script inverts.
        assert_eq!(run_inject_tv(), 1);
    }

    #[test]
    fn lowered_variants_carry_bounds_facts() {
        // The +lowered programs must keep the table/constant facts that
        // make the OC0004 pass meaningful on non-SSA streams.
        let programs = shipped_programs();
        let with_tables = programs
            .iter()
            .filter(|p| p.name.ends_with("+lowered"))
            .filter(|p| p.table_len.iter().any(Option::is_some))
            .count();
        assert!(
            with_tables >= 4,
            "only {with_tables} lowered programs kept table facts"
        );
    }
}
