//! `ookamicheck` — the repo's static-analysis gate: run the
//! `ookami-check` verifier over the shipped traces of every workload
//! family, replay the mutation corpus, and race-check the pool runtime.
//! Run with:
//!
//! ```text
//! cargo run -p ookami-bench --bin ookamicheck --release [-- --mutations]
//! ```
//!
//! Exit is nonzero if any shipped trace reports a diagnostic, any corpus
//! or trace mutant is mis-judged, or any pool race is found. Without
//! `--features obs` the real-kernel race gate is skipped with a visible
//! notice (timeline events only record with obs); the `--inject-race`
//! self-test is feature-independent and *exits 1 when the injected race
//! is flagged* — the caller inverts it, mirroring `benchdiff
//! --inject-regression`.

use ookami_bench::family;
use ookami_check::{detect_races, injected_race_events, render_all, to_json, verify, Program};
use ookami_core::obs::Json;
use ookami_core::{timeline, Schedule};
use ookami_loops::emulated as loops_em;
use ookami_mc::emulated as mc_em;
use ookami_sve::Trace;
use ookami_vecmath::{exp_trace, ExpVariant};

fn usage() -> ! {
    println!(
        "ookamicheck — static verifier + race detector gate\n\
         \n\
         usage: ookamicheck [--mutations] [--inject-race] [--json <path>] [--help]\n\
         \n\
         options:\n\
           --mutations     also replay the golden corpus and trace-mutation\n\
                           self-tests (every broken stream must be rejected\n\
                           with its expected code)\n\
           --inject-race   feed the detector a synthetic overlapping-write\n\
                           stream; exits 1 when the race is flagged (the\n\
                           caller inverts this, like benchdiff's\n\
                           --inject-regression)\n\
           --json <path>   machine-readable report (default\n\
                           target/OOKAMICHECK.json)\n\
           --help          this text"
    );
    std::process::exit(0)
}

/// Every shipped trace the verifier gates, one per workload-family
/// kernel: Section III loops, Section IV exp, the Monte Carlo example,
/// and the NPB/LULESH/HPCC model kernels. Each trace is verified twice:
/// as recorded, and after the trace compiler's pass pipeline
/// ([`Trace::optimized`], the `+opt` rows) — an optimizer pass that broke
/// SSA wiring, predicate safety, or operand domains would turn its `+opt`
/// form DIRTY right here.
fn shipped_programs() -> Vec<Program> {
    let vl = 8;
    let tab: Vec<f64> = (0..128).map(|i| f64::from(i) * 0.5).collect();
    let mut scratch = vec![0.0f64; 128];
    let traces: Vec<(&str, Trace)> = vec![
        // -- loops (Section III) --
        ("loops_simple", loops_em::simple_trace(vl)),
        ("loops_predicate", loops_em::predicate_trace(vl).0),
        ("loops_gather", loops_em::gather_trace(vl, &tab, 8)),
        ("loops_scatter", loops_em::scatter_trace(vl, &mut scratch)),
        // -- vecmath exp (Section IV), every variant --
        ("exp_fexpa_horner", exp_trace(vl, ExpVariant::FexpaHorner)),
        ("exp_fexpa_estrin", exp_trace(vl, ExpVariant::FexpaEstrin)),
        (
            "exp_fexpa_corrected",
            exp_trace(vl, ExpVariant::FexpaEstrinCorrected),
        ),
        ("exp_poly13", exp_trace(vl, ExpVariant::Poly13)),
        ("exp_poly13_sleef", exp_trace(vl, ExpVariant::Poly13Sleef)),
        // -- Monte Carlo (Section II example) --
        ("mc_metropolis", mc_em::metropolis_trace(vl, 42).0),
        // -- NPB / LULESH / HPCC model kernels (Sections V–VII) --
        ("npb_cg_matvec", family::cg_matvec_trace(vl)),
        ("lulesh_eos", family::lulesh_eos_trace(vl)),
        ("hpcc_triad", family::hpcc_triad_trace(vl)),
        ("hpcc_dgemm", family::hpcc_dgemm_trace(vl)),
        // -- irregular-memory families (ookami-spmv) --
        ("spmv_crs", family::spmv_crs_trace(vl)),
        ("spmv_sell", family::spmv_sell_trace(vl)),
        ("stream_copy", family::stream_copy_trace(vl)),
        ("stream_scale", family::stream_scale_trace(vl)),
        ("stream_add", family::stream_add_trace(vl)),
        ("stream_triad", family::stream_triad_trace(vl)),
        ("stencil4", family::stencil4_trace(vl)),
        ("stencil7", family::stencil7_trace(vl)),
    ];
    let mut out = Vec::new();
    for (name, t) in &traces {
        out.push(Program::from_trace(name, t));
        out.push(Program::from_trace(&format!("{name}+opt"), &t.optimized()));
    }
    out
}

/// The corpus + trace-mutation self-test; returns failure count.
fn run_mutations() -> usize {
    let mut failures = 0;
    println!("-- golden corpus --");
    for e in ookami_check::corpus::entries() {
        let got: Vec<_> = verify(&e.program).iter().map(|d| d.code).collect();
        let ok = got == e.expected;
        println!(
            "{:>18}  expect {:?}  {}",
            e.name,
            e.expected.iter().map(|c| c.as_str()).collect::<Vec<_>>(),
            if ok { "ok" } else { "MISMATCH" }
        );
        if !ok {
            eprintln!(
                "  got {:?}",
                got.iter().map(|c| c.as_str()).collect::<Vec<_>>()
            );
            failures += 1;
        }
    }

    println!("-- trace mutants --");
    let bases: Vec<(&str, Trace)> = vec![
        ("loops_simple", loops_em::simple_trace(8)),
        (
            "exp_fexpa_corrected",
            exp_trace(8, ExpVariant::FexpaEstrinCorrected),
        ),
    ];
    let xs: Vec<f64> = (0..64).map(|i| -2.0 + 4.0 * f64::from(i) / 64.0).collect();
    for (name, base) in &bases {
        let reference = base.map(&xs);
        let mut rejected = 0usize;
        let mut semantic = 0usize;
        for seed in 0..24u64 {
            let m = base.mutated(seed);
            let diags = verify(&Program::from_trace("mutant", &m));
            let errors = diags.iter().filter(|d| d.is_error()).count();
            if seed % 4 == 3 {
                // Semantic mutants pass the verifier but must change the
                // observable output — otherwise the mutation self-test
                // proves nothing.
                if errors != 0 {
                    eprintln!("{name}: semantic mutant seed={seed} rejected: {diags:?}");
                    failures += 1;
                } else if m.map(&xs) == reference {
                    eprintln!("{name}: semantic mutant seed={seed} output unchanged");
                    failures += 1;
                } else {
                    semantic += 1;
                }
            } else if errors == 0 {
                eprintln!("{name}: structural mutant seed={seed} not rejected");
                failures += 1;
            } else {
                rejected += 1;
            }
        }
        println!("{name:>22}  {rejected} structural rejected, {semantic} semantic diverged");
    }

    // SpMV's CRS trace cannot go through `Trace::map` (three bound input
    // streams plus a carried accumulator chained across row blocks), so
    // its semantic mutants are judged under the real replay harness —
    // the same path the `spmv` probe and the bit-identity tests use.
    println!("-- spmv trace mutants (replay-evaluated) --");
    {
        let (mfix, _x) = family::spmv_fixture();
        let base = family::spmv_crs_trace(8);
        let reference = ookami_spmv::run_crs_replay(&base, &mfix);
        let mut rejected = 0usize;
        let mut semantic = 0usize;
        for seed in 0..24u64 {
            let m = base.mutated(seed);
            let errors = verify(&Program::from_trace("mutant", &m))
                .iter()
                .filter(|d| d.is_error())
                .count();
            if seed % 4 == 3 {
                if errors == 0 && ookami_spmv::run_crs_replay(&m, &mfix) != reference {
                    semantic += 1;
                }
            } else if errors == 0 {
                eprintln!("spmv_crs: structural mutant seed={seed} not rejected");
                failures += 1;
            } else {
                rejected += 1;
            }
        }
        if semantic == 0 {
            eprintln!("spmv_crs: no semantic mutant diverged under replay");
            failures += 1;
        }
        println!(
            "{:>22}  {rejected} structural rejected, {semantic} semantic diverged",
            "spmv_crs"
        );
    }

    // The same discipline holds *after* the pass pipeline: optimized
    // traces must verify clean, and wiring damage inflicted on an
    // optimized trace must still be rejected — i.e. the verifier keeps
    // its teeth on exactly the programs the trace compiler executes.
    println!("-- optimized-trace mutants --");
    for (name, base) in &bases {
        let opt = base.optimized();
        let clean = verify(&Program::from_trace("opt", &opt))
            .iter()
            .all(|d| !d.is_error());
        if !clean {
            eprintln!("{name}+opt: pass pipeline produced a DIRTY trace");
            failures += 1;
        }
        let reference = opt.replay_map(&xs);
        let mut rejected = 0usize;
        let mut semantic = 0usize;
        for seed in 0..24u64 {
            let m = opt.mutated(seed);
            let errors = verify(&Program::from_trace("mutant", &m))
                .iter()
                .filter(|d| d.is_error())
                .count();
            if seed % 4 == 3 {
                if errors == 0 && m.replay_map(&xs) != reference {
                    semantic += 1;
                }
            } else if errors == 0 {
                eprintln!("{name}+opt: structural mutant seed={seed} not rejected");
                failures += 1;
            } else {
                rejected += 1;
            }
        }
        println!(
            "{:>22}  {rejected} structural rejected, {semantic} semantic diverged",
            format!("{name}+opt")
        );
    }
    failures
}

/// Record a real pool run (all three schedules + a trace replay) and
/// race-check its timeline. Returns (events, races) — only meaningful
/// with obs compiled in.
fn race_check_kernels() -> (usize, usize) {
    timeline::start(timeline::DEFAULT_CAPACITY);
    let n = 10_000;
    let mut buf = vec![0.0f64; n];
    for sched in [
        Schedule::Static,
        Schedule::Dynamic { chunk: 64 },
        Schedule::Guided,
    ] {
        ookami_core::par_chunks_mut_with(4, &mut buf, 16, sched, |i, c| {
            for (k, x) in c.iter_mut().enumerate() {
                *x = (i * 16 + k) as f64;
            }
        });
    }
    // A trace replay drives the pool through the static path once more.
    let xs: Vec<f64> = (0..4096).map(|i| f64::from(i) * 1.0e-3).collect();
    std::hint::black_box(loops_em::simple_trace(8).par_map(4, &xs));
    timeline::stop();
    let events = timeline::export_events();
    let races = detect_races(&events);
    for r in &races {
        eprintln!("race: {r}");
    }
    (events.len(), races.len())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut mutations = false;
    let mut inject_race = false;
    let mut json_path = String::from("target/OOKAMICHECK.json");
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--mutations" => mutations = true,
            "--inject-race" => inject_race = true,
            "--json" => {
                if let Some(p) = it.next() {
                    json_path.clone_from(p);
                } else {
                    eprintln!("error: --json needs a path argument");
                    std::process::exit(2);
                }
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("error: unknown argument `{other}` (try --help)");
                std::process::exit(2);
            }
        }
    }

    if inject_race {
        let races = detect_races(&injected_race_events());
        if races.is_empty() {
            eprintln!("inject-race: detector missed the injected overlap");
            std::process::exit(0); // caller treats exit 0 as THE failure
        }
        for r in &races {
            println!("inject-race: flagged {r}");
        }
        std::process::exit(1);
    }

    let mut failures = 0usize;

    // -- verifier gate over every shipped workload trace --
    println!("== ookamicheck: static verifier ==");
    println!(
        "{:>22}  {:>6}  {:>6}  {:>8}",
        "program", "instrs", "diags", "verdict"
    );
    let programs = shipped_programs();
    let mut reports = Vec::new();
    for p in &programs {
        let diags = verify(p);
        println!(
            "{:>22}  {:>6}  {:>6}  {:>8}",
            p.name,
            p.instrs.len(),
            diags.len(),
            if diags.is_empty() { "clean" } else { "DIRTY" }
        );
        if !diags.is_empty() {
            eprint!("{}", render_all(p, &diags));
            failures += 1;
        }
        reports.push(to_json(p, &diags));
    }

    if mutations {
        println!("== ookamicheck: mutation self-tests ==");
        failures += run_mutations();
    }

    // -- race gate --
    println!("== ookamicheck: happens-before race detector ==");
    let race_summary = if ookami_core::obs::enabled() {
        let (events, races) = race_check_kernels();
        println!("pool kernels: {events} timeline events, {races} race(s)");
        if races > 0 {
            failures += 1;
        }
        format!("{{\"checked\": true, \"events\": {events}, \"races\": {races}}}")
    } else {
        println!(
            "SKIPPED: built without the `obs` feature — timeline events do \
             not record, so the real-kernel race gate cannot run here \
             (CI runs it under --features obs; --inject-race still works)"
        );
        String::from("{\"checked\": false, \"events\": 0, \"races\": 0}")
    };

    // -- machine-readable report --
    let doc = format!(
        "{{\n\"schema\": \"ookamicheck-v1\",\n\"programs\": [\n{}\n],\n\"race\": {race_summary},\n\"failures\": {failures}\n}}\n",
        reports.join(",\n")
    );
    Json::parse(&doc).expect("ookamicheck report must be valid JSON");
    if let Some(dir) = std::path::Path::new(&json_path).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    std::fs::write(&json_path, &doc).expect("write report");
    println!("wrote {json_path}");

    if failures > 0 {
        eprintln!("ookamicheck: {failures} gate failure(s)");
        std::process::exit(1);
    }
    println!("ookamicheck: all gates clean");
}
