//! Regenerate the paper's tables: `tables <table1|table2|table3>|all`.

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    print!("{}", ookami_bench::run_tables(&which));
}
