//! The accuracy study the paper defers ("a complete evaluation of math
//! library performance must include accuracy, which will be the topic of
//! another paper"): max/mean ulp error of every toolchain's math-library
//! algorithm, measured on the emulator against libm references.

use ookami_core::measure::Table;
use ookami_vecmath::exp::{exp_trace, ExpVariant};
use ookami_vecmath::log::{log, DivStyle};
use ookami_vecmath::pow::{pow, PowStyle};
use ookami_vecmath::recip::{recip, RecipStyle};
use ookami_vecmath::sqrt::{sqrt, SqrtStyle};
use ookami_vecmath::ulp::{measure, sample_range, Accuracy};
use ookami_vecmath::{par_map2_traced, par_map_traced, sin::sin as vsin};

/// One row of the accuracy table.
#[derive(Debug, Clone)]
pub struct AccuracyRow {
    pub function: &'static str,
    pub implementation: &'static str,
    pub toolchains: &'static str,
    pub domain: &'static str,
    pub acc: Accuracy,
}

fn acc_of(got: &[f64], want: &[f64]) -> Accuracy {
    measure(got, want)
}

/// Measure every implementation. Each sweep records its kernel once into
/// an `ookami_sve::Trace` and replays it across the sample grid on the
/// `ookami_core` worker pool (static schedule — deterministic and
/// bit-identical to the serial interpreter, which the `ookami-sve`
/// differential tests guarantee).
pub fn accuracy_study() -> Vec<AccuracyRow> {
    let mut rows = Vec::new();

    // ---- exp ----
    let xs = sample_range(-700.0, 700.0, 40_001);
    let want: Vec<f64> = xs.iter().map(|&x| x.exp()).collect();
    for (imp, tc, v) in [
        (
            "FEXPA 5-term Estrin+fix",
            "fujitsu",
            ExpVariant::FexpaEstrinCorrected,
        ),
        (
            "FEXPA 5-term Horner",
            "(§IV prototype)",
            ExpVariant::FexpaHorner,
        ),
        ("13-term table-free", "cray/intel", ExpVariant::Poly13),
        ("13-term + Sleef guard", "arm", ExpVariant::Poly13Sleef),
    ] {
        rows.push(AccuracyRow {
            function: "exp",
            implementation: imp,
            toolchains: tc,
            domain: "[-700, 700]",
            acc: acc_of(&exp_trace(8, v).par_map(0, &xs), &want),
        });
    }

    // ---- sin ----
    let xs = sample_range(-100.0, 100.0, 40_001);
    let want: Vec<f64> = xs.iter().map(|&x| x.sin()).collect();
    let got = par_map_traced(0, 8, &xs, vsin);
    rows.push(AccuracyRow {
        function: "sin",
        implementation: "3-part reduction + Estrin",
        toolchains: "all vectorized",
        domain: "[-100, 100]",
        acc: acc_of(&got, &want),
    });

    // ---- log ----
    let xs = sample_range(1e-3, 1e3, 40_001);
    let want: Vec<f64> = xs.iter().map(|&x| x.ln()).collect();
    for (imp, tc, style) in [
        (
            "fdlibm series, Newton div",
            "fujitsu/cray",
            DivStyle::Newton,
        ),
        ("fdlibm series, FDIV", "gnu/arm", DivStyle::Fdiv),
    ] {
        let got = par_map_traced(0, 8, &xs, |ctx, pg, x| log(ctx, pg, x, style));
        rows.push(AccuracyRow {
            function: "log",
            implementation: imp,
            toolchains: tc,
            domain: "[1e-3, 1e3]",
            acc: acc_of(&got, &want),
        });
    }

    // ---- recip / sqrt ----
    let xs = sample_range(1e-3, 1e3, 40_001);
    let want: Vec<f64> = xs.iter().map(|&x| 1.0 / x).collect();
    for (imp, tc, style) in [
        (
            "FRECPE + 3 Newton + fix",
            "fujitsu/cray/arm",
            RecipStyle::Newton,
        ),
        ("FDIV instruction", "gnu", RecipStyle::Fdiv),
    ] {
        let got = par_map_traced(0, 8, &xs, |ctx, pg, x| recip(ctx, pg, x, style));
        rows.push(AccuracyRow {
            function: "recip",
            implementation: imp,
            toolchains: tc,
            domain: "[1e-3, 1e3]",
            acc: acc_of(&got, &want),
        });
    }
    let want: Vec<f64> = xs.iter().map(|&x| x.sqrt()).collect();
    for (imp, tc, style) in [
        (
            "FRSQRTE + 3 Newton + Heron",
            "fujitsu/cray",
            SqrtStyle::Newton,
        ),
        ("FSQRT instruction", "gnu/arm", SqrtStyle::Fsqrt),
    ] {
        let got = par_map_traced(0, 8, &xs, |ctx, pg, x| sqrt(ctx, pg, x, style));
        rows.push(AccuracyRow {
            function: "sqrt",
            implementation: imp,
            toolchains: tc,
            domain: "[1e-3, 1e3]",
            acc: acc_of(&got, &want),
        });
    }

    // ---- pow ----
    let mut cases = Vec::new();
    for i in 0..200 {
        for j in 0..50 {
            cases.push((0.1 + i as f64 * 0.05, -12.0 + j as f64 * 0.5));
        }
    }
    let bx: Vec<f64> = cases.iter().map(|&(x, _)| x).collect();
    let by: Vec<f64> = cases.iter().map(|&(_, y)| y).collect();
    let want: Vec<f64> = cases.iter().map(|&(x, y)| x.powf(y)).collect();
    for (imp, tc, style) in [
        (
            "table log + FEXPA exp",
            "fujitsu/intel",
            PowStyle::FexpaFast,
        ),
        ("FDIV log + FEXPA exp", "cray", PowStyle::FdivLog),
        ("Sleef double-double", "arm", PowStyle::SleefDd),
    ] {
        let got = par_map2_traced(0, 8, &bx, &by, |ctx, pg, x, y| pow(ctx, pg, x, y, style));
        rows.push(AccuracyRow {
            function: "pow",
            implementation: imp,
            toolchains: tc,
            domain: "x∈[0.1,10], y∈[-12,12]",
            acc: acc_of(&got, &want),
        });
    }

    rows
}

/// Render the study.
pub fn render() -> String {
    render_rows(&accuracy_study())
}

/// Render pre-computed rows (so callers that also report the rows don't
/// run the sweeps twice).
pub fn render_rows(rows: &[AccuracyRow]) -> String {
    let mut t = Table::new(
        "Accuracy study — max/mean ulp vs libm (the paper's deferred evaluation; \
         \"1 and 4 ulps is common in vectorized libraries\")",
        &[
            "function",
            "implementation",
            "toolchains",
            "domain",
            "max ulp",
            "mean ulp",
        ],
    );
    for r in rows {
        t.row(&[
            r.function.to_string(),
            r.implementation.to_string(),
            r.toolchains.to_string(),
            r.domain.to_string(),
            r.acc.max_ulp.to_string(),
            format!("{:.3}", r.acc.mean_ulp),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn study_is_complete_and_within_vectorized_norms() {
        let rows = accuracy_study();
        assert!(rows.len() >= 12);
        for r in &rows {
            assert!(
                r.acc.samples > 1000,
                "{}: too few samples",
                r.implementation
            );
            // every implementation within a few dozen ulp; the instruction-
            // based ones (FDIV/FSQRT) exactly rounded
            assert!(
                r.acc.max_ulp <= 64,
                "{} {}: {} ulp",
                r.function,
                r.implementation,
                r.acc.max_ulp
            );
        }
        let fdiv = rows
            .iter()
            .find(|r| r.function == "recip" && r.implementation.contains("FDIV"))
            .unwrap();
        assert_eq!(fdiv.acc.max_ulp, 0, "FDIV is correctly rounded");
        let fsqrt = rows
            .iter()
            .find(|r| r.function == "sqrt" && r.implementation.contains("FSQRT"))
            .unwrap();
        assert_eq!(fsqrt.acc.max_ulp, 0, "FSQRT is correctly rounded");
    }

    #[test]
    fn speed_accuracy_tradeoff_is_visible() {
        // The paper's §III observation in data: the *instructions* (FDIV,
        // FSQRT) are correctly rounded but catastrophically slow; the fast
        // Newton/table kernels trade a couple of ulp for 5–20× speed.
        let rows = accuracy_study();
        let newton_sqrt = rows
            .iter()
            .find(|r| r.function == "sqrt" && r.implementation.contains("Newton"))
            .unwrap();
        // ≤ ~1 ulp (the Heron fix often lands correctly rounded on dense
        // grids), versus 0 for the exact-but-blocking instruction.
        assert!(newton_sqrt.acc.max_ulp <= 2);
        let fexpa = rows
            .iter()
            .find(|r| r.function == "exp" && r.implementation.contains("Horner"))
            .unwrap();
        assert!(
            fexpa.acc.max_ulp >= 1,
            "the fast prototype is not correctly rounded"
        );
    }

    #[test]
    fn renders() {
        let s = render();
        assert!(s.contains("FEXPA") && s.contains("max ulp"));
    }
}
