//! ECM rows for the irregular-memory workload families.
//!
//! One place builds the `(T_core, traffic)` inputs the Execution-Cache-
//! Memory model needs, so the `spmv` probe and the golden-table test
//! agree on fixtures, normalization and hints:
//!
//! * **T_core** comes from the port/latency analyzer over the family's
//!   recorded SVE trace (`Trace::to_instrs` → `analyze_cached`), scaled
//!   from per-iteration to per-cache-line-of-work.  For CRS the scaling
//!   bakes in the lane waste of row-per-lane blocking (padded blocks /
//!   `vl`), which is exactly the term SELL-C-σ shrinks.
//! * **Traffic** comes from replaying the family's element-level address
//!   stream through `ookami_mem::CacheSim` cold — `l1_l2_lines()` and
//!   `l2_mem_lines()` per cache line of work feed `obs::derive::ecm`.
//!
//! Normalization: a "unit of work" is one useful element (a stored
//! nonzero for SpMV, an array element for STREAM/stencil), and rows are
//! expressed per *cache line* of such elements (`line_bytes / 8` of
//! them), matching the ECM literature's cycles-per-CL convention.

use ookami_core::obs::derive::{ecm, EcmInput, EcmModel};
use ookami_spmv::stream::StreamKernel;
use ookami_spmv::{memtrace, Crs, GatherHints, SellCSigma, Stencil};
use ookami_sve::Trace;
use ookami_uarch::{analyze_cached, KernelLoop, Machine};

/// One family's ECM row plus a naive-roofline reference column.
pub struct FamilyEcm {
    /// Family label as printed in the table and the probe's metrics.
    pub name: &'static str,
    /// The `(T_core, line-traffic)` pair fed to the model.
    pub input: EcmInput,
    /// The evaluated ECM model on the target machine.
    pub model: EcmModel,
    /// What a flat roofline (peak FLOP/s vs single-core bandwidth over
    /// the *instruction-stream* byte count) predicts for the same cache
    /// line of work — the comparison column showing what the cache
    /// hierarchy decomposition adds.
    pub roofline_cy_per_cl: f64,
}

/// The large deterministic SpMV fixture the ECM rows (and the probe's
/// rate measurements) run at: `x` is 512 KiB — eight L1s — so the
/// column gathers genuinely miss, while 12 nonzeros/row keeps the
/// stream:gather balance in SpMV's usual regime.
pub fn ecm_spmv_fixture() -> (Crs, Vec<f64>) {
    let m = Crs::random_fixed(4096, 65536, 12, 42);
    let x = (0..m.n_cols).map(|i| 1.0 / (1.0 + i as f64)).collect();
    (m, x)
}

/// Elements per STREAM array in the ECM/probe fixture (1 MiB over
/// three arrays: past L2's ability to hold the working set cold).
pub const ECM_STREAM_N: usize = 1 << 17;

/// The 2-D stencil lattice (65 536 sites, power-of-two as required).
pub fn ecm_stencil4() -> Stencil {
    Stencil::d2(256, 256, 0.5, -0.125)
}

/// The 3-D stencil lattice (65 536 sites).
pub fn ecm_stencil7() -> Stencil {
    Stencil::d3(64, 32, 32, 0.5, -0.125)
}

/// Gather-cost hints for the ECM fixtures, from the A64FX pair-window
/// rule: `val`/`col` gather sequential addresses, so consecutive lanes
/// pair within 128-byte windows (`vl/2` groups); the `x` gather over a
/// 512 KiB vector is effectively random (`vl` groups).
pub fn ecm_hints(vl: usize) -> GatherHints {
    GatherHints {
        stream_uops: (vl / 2).max(1) as u32,
        x_uops: vl as u32,
    }
}

/// Cycles per iteration of a recorded trace body on `m`.
fn core_cycles_per_iter(t: &Trace, vl: usize, m: &Machine) -> (f64, f64, f64) {
    let kl = KernelLoop::new(t.to_instrs(), vl as f64);
    let est = analyze_cached(&kl, m);
    (
        est.cycles_per_iter(),
        kl.flops_per_iter(),
        kl.bytes_per_iter(),
    )
}

fn roofline_cy_per_cl(m: &Machine, flops_cl: f64, bytes_cl: f64) -> f64 {
    let t_flop = flops_cl / (m.peak_gflops_per_core() * 1e9);
    let bw_1c = m.numa.bw_per_domain_gbs * m.numa.single_core_bw_fraction;
    let t_mem = bytes_cl / (bw_1c * 1e9);
    t_flop.max(t_mem) * m.base_ghz * 1e9
}

/// Build one row: `steps` trace iterations and one cold replay of
/// `addrs` cover `work_elems` useful elements.
fn row(
    name: &'static str,
    m: &Machine,
    t: &Trace,
    vl: usize,
    steps: f64,
    work_elems: f64,
    addrs: &[(u64, usize)],
) -> FamilyEcm {
    let elems_per_cl = m.mem.line_bytes as f64 / 8.0;
    let work_cls = work_elems / elems_per_cl;
    let (cy_it, fl_it, by_it) = core_cycles_per_iter(t, vl, m);
    let stats = memtrace::simulate(m.mem, addrs);
    let input = EcmInput {
        t_core: cy_it * steps / work_cls,
        l1_l2_lines: stats.l1_l2_lines() as f64 / work_cls,
        l2_mem_lines: stats.l2_mem_lines() as f64 / work_cls,
    };
    let model = ecm(m, &input);
    FamilyEcm {
        name,
        input,
        model,
        roofline_cy_per_cl: roofline_cy_per_cl(
            m,
            fl_it * steps / work_cls,
            by_it * steps / work_cls,
        ),
    }
}

/// All irregular-memory family rows on `m` at vector length `vl`
/// (lanes of f64; 8 on the 512-bit A64FX target).
pub fn ecm_families(m: &Machine, vl: usize) -> Vec<FamilyEcm> {
    let mut rows = Vec::new();
    let hints = ecm_hints(vl);

    // SpMV, CRS: row-per-lane blocking pads every vl-row block to its
    // longest row, so steps = padded / vl over nnz useful elements.
    let (mat, x) = ecm_spmv_fixture();
    let tc = ookami_spmv::crs_trace(&mat, &x, vl, hints);
    rows.push(row(
        "spmv_crs",
        m,
        &tc,
        vl,
        mat.block_padded_nnz(vl) as f64 / vl as f64,
        mat.nnz() as f64,
        &memtrace::crs_addr_trace(&mat),
    ));

    // SpMV, SELL-C-σ with C = vl and σ covering the matrix: same nnz,
    // fewer padded slots, and only the x access stays a gather.
    let s = SellCSigma::from_crs(&mat, vl, mat.n_rows);
    let ts = ookami_spmv::sell_trace(&s, &x, hints);
    rows.push(row(
        "spmv_sell",
        m,
        &ts,
        s.c,
        s.padded_nnz() as f64 / s.c as f64,
        s.nnz as f64,
        &memtrace::sell_addr_trace(&s),
    ));

    for k in StreamKernel::ALL {
        let t = ookami_spmv::stream_trace(k, vl);
        rows.push(row(
            k.name(),
            m,
            &t,
            vl,
            (ECM_STREAM_N as f64 / vl as f64).ceil(),
            ECM_STREAM_N as f64,
            &memtrace::stream_addr_trace(k, ECM_STREAM_N),
        ));
    }

    for (name, st) in [("stencil4", ecm_stencil4()), ("stencil7", ecm_stencil7())] {
        let t = st.trace(&st.field(), vl, vl as u32);
        rows.push(row(
            name,
            m,
            &t,
            vl,
            (st.n as f64 / vl as f64).ceil(),
            st.n as f64,
            &memtrace::stencil_addr_trace(&st),
        ));
    }
    rows
}

/// The rows in `(label, model)` form for `obs::derive::render_ecm_table`.
pub fn ecm_table_rows(rows: &[FamilyEcm]) -> Vec<(String, EcmModel)> {
    rows.iter().map(|r| (r.name.to_string(), r.model)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a64fx() -> &'static Machine {
        ookami_uarch::machines::a64fx()
    }

    #[test]
    fn crs_is_bandwidth_bound_on_a64fx() {
        // The acceptance pin for the family: a cold random-column SpMV
        // with a 512 KiB x vector is a data-transfer problem, not a
        // core-execution problem, on the a64fx descriptor.
        let rows = ecm_families(a64fx(), 8);
        let crs = rows.iter().find(|r| r.name == "spmv_crs").unwrap();
        assert!(
            crs.model.bandwidth_bound,
            "CRS must attribute bandwidth_bound: t_core={} t_data={}",
            crs.model.t_core, crs.model.t_data
        );
    }

    #[test]
    fn sell_never_moves_more_core_cycles_than_crs() {
        // SELL's whole point: less padding than vl-blocked CRS and two
        // fewer gathers, so its per-CL core time must come in below.
        let rows = ecm_families(a64fx(), 8);
        let crs = rows.iter().find(|r| r.name == "spmv_crs").unwrap();
        let sell = rows.iter().find(|r| r.name == "spmv_sell").unwrap();
        assert!(
            sell.input.t_core < crs.input.t_core,
            "sell {} vs crs {}",
            sell.input.t_core,
            crs.input.t_core
        );
    }

    #[test]
    fn stream_rows_are_bandwidth_bound_and_cheap_in_core() {
        let rows = ecm_families(a64fx(), 8);
        for k in StreamKernel::ALL {
            let r = rows.iter().find(|r| r.name == k.name()).unwrap();
            assert!(r.model.bandwidth_bound, "{} must be bw-bound", k.name());
            // One vector op per iteration: core time per CL is a few
            // cycles; the data terms dominate by an order of magnitude.
            assert!(
                r.input.t_core * 4.0 < r.model.t_data,
                "{}: t_core={} t_data={}",
                k.name(),
                r.input.t_core,
                r.model.t_data
            );
        }
    }

    #[test]
    fn every_family_row_is_finite_and_positive() {
        let rows = ecm_families(a64fx(), 8);
        assert_eq!(rows.len(), 8);
        for r in &rows {
            assert!(
                r.input.t_core > 0.0 && r.input.t_core.is_finite(),
                "{}",
                r.name
            );
            assert!(r.model.t_cl >= r.model.t_data, "{}", r.name);
            assert!(r.roofline_cy_per_cl >= 0.0, "{}", r.name);
            // n_sat above cores_per_domain is meaningful (a CMG never
            // saturates the link for that family) — only 0 is a bug.
            assert!(r.model.n_sat >= 1, "{}", r.name);
        }
    }
}
