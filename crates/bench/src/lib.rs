//! # ookami-bench — figure/table regenerators and micro-benchmarks
//!
//! Binaries (run with `cargo run -p ookami-bench --bin <name> --release`):
//!
//! * `figures <fig1|fig2|sec4|fig3|fig4|fig5|fig6|fig7|fig8|fig9|all> [--csv]`
//!   — regenerate any figure of the paper as a text table (or CSV rows);
//! * `tables <table1|table2|table3|all>` — regenerate the paper's tables;
//! * `forkjoin [reps]` — fork/barrier overhead probe: persistent pool vs
//!   spawn-per-region, plus fitted `BarrierCost` constants for the OpenMP
//!   runtime model.
//!
//! Criterion benches (run with `cargo bench -p ookami-bench`):
//!
//! * `loops_native` — the Section III loop suite, natively executed;
//! * `exp_bench` — exp implementations through the SVE emulator (Section IV);
//! * `npb_bench` — EP/CG/BT/SP/LU/UA kernels at small classes (Section V);
//! * `lulesh_bench` — Base vs Vect Sedov steps (Section VI);
//! * `hpcc_bench` — DGEMM/HPL/FFT kernels (Section VII);
//! * `mc_bench` — the Monte Carlo example, serial vs restructured;
//! * `fork_join` — empty-region cost of the pool vs spawn-per-region, and
//!   the three loop schedules.

pub mod ablations;
pub mod accuracy;
pub mod ecm;
pub mod family;

use ookami_core::measure::{to_csv, Measurement};

/// Render a figure by name; returns `(pretty_text, rows)`.
pub fn figure(name: &str) -> Option<(String, Vec<Measurement>)> {
    match name {
        "fig1" => Some((
            ookami_loops::fig1::render_figure1(),
            ookami_loops::fig1::figure1(),
        )),
        "fig2" => Some((
            ookami_loops::fig2::render_figure2(),
            ookami_loops::fig2::figure2(),
        )),
        "sec4" => Some((
            ookami_loops::sec4::render_sec4(),
            ookami_loops::sec4::toolchain_ladder(),
        )),
        "fig3" => Some((
            ookami_npb::figures::render(
                &ookami_npb::figures::figure3(),
                "Fig. 3 — NPB class C single-core runtime (s)",
                0,
            ),
            ookami_npb::figures::figure3(),
        )),
        "fig4" => Some((
            ookami_npb::figures::render(
                &ookami_npb::figures::figure4(),
                "Fig. 4 — NPB class C all-cores runtime (s)",
                1,
            ),
            ookami_npb::figures::figure4(),
        )),
        "fig5" => Some((
            ookami_npb::figures::render(
                &ookami_npb::figures::figure5(),
                "Fig. 5 — NPB parallel efficiency, A64FX/GCC",
                2,
            ),
            ookami_npb::figures::figure5(),
        )),
        "fig6" => Some((
            ookami_npb::figures::render(
                &ookami_npb::figures::figure6(),
                "Fig. 6 — NPB parallel efficiency, Skylake/Intel",
                2,
            ),
            ookami_npb::figures::figure6(),
        )),
        "fig7" | "table2" => Some((
            ookami_lulesh::table2::render_table2(),
            ookami_lulesh::table2::table2(),
        )),
        "fig8" => Some((
            ookami_hpcc::figures::render_figure8(),
            ookami_hpcc::figures::figure8(),
        )),
        "fig9" => Some((
            ookami_hpcc::figures::render_figure9(),
            ookami_hpcc::figures::figure9(),
        )),
        _ => None,
    }
}

/// Every figure id, in paper order.
pub const ALL_FIGURES: [&str; 10] = [
    "fig1", "fig2", "sec4", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
];

/// Render one or all figures, optionally as CSV.
pub fn run_figures(which: &str, csv: bool) -> String {
    let mut out = String::new();
    let names: Vec<&str> = if which == "all" {
        ALL_FIGURES.to_vec()
    } else {
        vec![which]
    };
    for n in names {
        match figure(n) {
            Some((text, rows)) => {
                if csv {
                    out.push_str(&to_csv(&rows));
                } else {
                    out.push_str(&text);
                    out.push('\n');
                }
            }
            None => out.push_str(&format!("unknown figure: {n}\n")),
        }
    }
    out
}

/// Render Table I (compiler flags).
pub fn render_table1() -> String {
    use ookami_core::measure::Table;
    use ookami_toolchain::Compiler;
    let mut t = Table::new(
        "Table I — compiler flags used in loop vectorization tests",
        &["compiler", "version", "flags"],
    );
    for c in [
        Compiler::Fujitsu,
        Compiler::Arm,
        Compiler::Cray,
        Compiler::Gnu,
        Compiler::Intel,
    ] {
        t.row(&[
            c.label().to_string(),
            c.version().to_string(),
            c.flags().to_string(),
        ]);
    }
    t.render()
}

/// Render a table by name.
pub fn run_tables(which: &str) -> String {
    let mut out = String::new();
    let names: Vec<&str> = if which == "all" {
        vec!["table1", "table2", "table3"]
    } else {
        vec![which]
    };
    for n in names {
        match n {
            "table1" => out.push_str(&render_table1()),
            "table2" => out.push_str(&ookami_lulesh::table2::render_table2()),
            "table3" => out.push_str(&ookami_uarch::peak::render_table3()),
            other => out.push_str(&format!("unknown table: {other}\n")),
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_figure_renders() {
        for n in ALL_FIGURES {
            let (text, rows) = figure(n).unwrap_or_else(|| panic!("missing {n}"));
            assert!(!text.is_empty(), "{n} rendered empty");
            assert!(!rows.is_empty(), "{n} has no rows");
            assert!(
                rows.iter().all(|r| r.value.is_finite()),
                "{n} has non-finite values"
            );
        }
    }

    #[test]
    fn tables_render() {
        let t = run_tables("all");
        for needle in ["-KSVE", "Vect(mt)", "Ookami", "57.6"] {
            assert!(t.contains(needle), "missing {needle}");
        }
    }

    #[test]
    fn csv_mode_produces_rows() {
        let csv = run_figures("fig1", true);
        assert!(csv.lines().count() > 20);
        assert!(csv.starts_with("experiment,"));
    }
}
