//! Section III's motivating Monte Carlo example: the serial dependency
//! chain versus the restructured independent-chain sampler.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use ookami_mc::{sample_parallel, sample_serial};
use std::hint::black_box;

fn bench_mc(c: &mut Criterion) {
    let n = 200_000u64;
    let threads = std::thread::available_parallelism().map_or(4, std::num::NonZero::get);

    let mut g = c.benchmark_group("mc_exponential_integral");
    g.sample_size(10);
    g.throughput(Throughput::Elements(n));
    g.bench_function("serial", |b| b.iter(|| sample_serial(black_box(n), 7)));
    g.bench_function("restructured_1t", |b| {
        b.iter(|| sample_parallel(black_box(n), 7, 1, 8));
    });
    g.bench_function("restructured_mt", |b| {
        b.iter(|| sample_parallel(black_box(n), 7, threads, 8));
    });
    g.finish();
}

criterion_group!(benches, bench_mc);
criterion_main!(benches);
