//! Criterion micro-benchmarks for the Section III loop suite (Figs. 1–2),
//! executed natively. The shapes to look for mirror the paper: gathers and
//! scatters cost multiples of the simple loop; the short (windowed)
//! variants are cheaper than the full random permutations on machines with
//! wide lines; math loops cost multiples of the arithmetic ones.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use ookami_loops::LoopSuite;
use std::hint::black_box;

fn bench_loops(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig1_loops");
    g.sample_size(20);
    let l1 = 64 * 1024; // A64FX-sized L1 working set (the paper's protocol)
    let make = || LoopSuite::for_l1(l1, 42);

    g.bench_function("simple", |b| {
        b.iter_batched_ref(make, |s| black_box(s).run_simple(), BatchSize::SmallInput);
    });
    g.bench_function("predicate", |b| {
        b.iter_batched_ref(
            make,
            |s| black_box(s).run_predicate(),
            BatchSize::SmallInput,
        );
    });
    g.bench_function("gather", |b| {
        b.iter_batched_ref(
            make,
            |s| black_box(s).run_gather(false),
            BatchSize::SmallInput,
        );
    });
    g.bench_function("short_gather", |b| {
        b.iter_batched_ref(
            make,
            |s| black_box(s).run_gather(true),
            BatchSize::SmallInput,
        );
    });
    g.bench_function("scatter", |b| {
        b.iter_batched_ref(
            make,
            |s| black_box(s).run_scatter(false),
            BatchSize::SmallInput,
        );
    });
    g.bench_function("short_scatter", |b| {
        b.iter_batched_ref(
            make,
            |s| black_box(s).run_scatter(true),
            BatchSize::SmallInput,
        );
    });
    g.finish();

    let mut g = c.benchmark_group("fig2_math_loops");
    g.sample_size(20);
    g.bench_function("recip", |b| {
        b.iter_batched_ref(make, |s| black_box(s).run_recip(), BatchSize::SmallInput);
    });
    g.bench_function("sqrt", |b| {
        b.iter_batched_ref(make, |s| black_box(s).run_sqrt(), BatchSize::SmallInput);
    });
    g.bench_function("exp", |b| {
        b.iter_batched_ref(make, |s| black_box(s).run_exp(), BatchSize::SmallInput);
    });
    g.bench_function("sin", |b| {
        b.iter_batched_ref(make, |s| black_box(s).run_sin(), BatchSize::SmallInput);
    });
    g.bench_function("pow", |b| {
        b.iter_batched_ref(make, |s| black_box(s).run_pow(), BatchSize::SmallInput);
    });
    g.finish();
}

criterion_group!(benches, bench_loops);
criterion_main!(benches);
