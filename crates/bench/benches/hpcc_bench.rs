//! Section VII: DGEMM (three maturity levels), HPL, FFT — the native
//! counterparts of Figs. 8–9. The naive/blocked/micro ladder shows the
//! library-tuning effect Fig. 8 measures across real BLAS stacks.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use ookami_hpcc::dgemm::{dgemm_blocked, dgemm_micro, dgemm_naive, gemm_flops};
use ookami_hpcc::fft::Fft;
use ookami_hpcc::hpl::lu_factor_solve;
use std::hint::black_box;

fn bench_hpcc(c: &mut Criterion) {
    let n = 192;
    let a: Vec<f64> = (0..n * n)
        .map(|i| ((i * 37) % 101) as f64 * 0.01 - 0.5)
        .collect();
    let b: Vec<f64> = (0..n * n)
        .map(|i| ((i * 53) % 97) as f64 * 0.01 - 0.5)
        .collect();

    let mut g = c.benchmark_group("fig8_dgemm");
    g.sample_size(10);
    g.throughput(Throughput::Elements(gemm_flops(n, n, n) as u64));
    g.bench_function("naive", |bch| {
        bch.iter_batched(
            || vec![0.0; n * n],
            |mut cc| dgemm_naive(n, n, n, 1.0, black_box(&a), black_box(&b), 0.0, &mut cc),
            BatchSize::SmallInput,
        );
    });
    g.bench_function("blocked", |bch| {
        bch.iter_batched(
            || vec![0.0; n * n],
            |mut cc| dgemm_blocked(n, n, n, 1.0, black_box(&a), black_box(&b), 0.0, &mut cc),
            BatchSize::SmallInput,
        );
    });
    g.bench_function("micro", |bch| {
        bch.iter_batched(
            || vec![0.0; n * n],
            |mut cc| dgemm_micro(n, n, n, 1.0, black_box(&a), black_box(&b), 0.0, &mut cc),
            BatchSize::SmallInput,
        );
    });
    g.finish();

    let mut g = c.benchmark_group("fig9_hpl_fft");
    g.sample_size(10);
    let hn = 160;
    let (ha, hb) = {
        let mut m: Vec<f64> = (0..hn * hn)
            .map(|i| ((i * 29) % 89) as f64 * 0.01 - 0.4)
            .collect();
        for i in 0..hn {
            m[i * hn + i] += 20.0;
        }
        let v: Vec<f64> = (0..hn).map(|i| (i as f64 * 0.37).sin()).collect();
        (m, v)
    };
    g.bench_function("hpl_lu_solve_160", |bch| {
        bch.iter(|| lu_factor_solve(black_box(&ha), black_box(&hb), hn, 32));
    });

    let fft = Fft::new(1 << 14);
    let signal: Vec<(f64, f64)> = (0..1 << 14)
        .map(|i| ((i as f64 * 0.01).sin(), (i as f64 * 0.007).cos()))
        .collect();
    g.bench_function("fft_16k", |bch| {
        bch.iter(|| fft.forward(black_box(&signal)));
    });
    g.finish();

    // STREAM triad: the bandwidth claim behind §II and the scaling model.
    let mut g = c.benchmark_group("stream");
    g.sample_size(10);
    let threads = std::thread::available_parallelism().map_or(4, std::num::NonZero::get);
    let n = 1 << 22; // 32 MiB/array: out of every modeled cache
    g.throughput(Throughput::Bytes((n * 8 * 3) as u64));
    let mut st = ookami_hpcc::stream::Stream::new(n);
    g.bench_function("triad_1t", |b| b.iter(|| st.triad(black_box(3.0), 1)));
    g.bench_function("triad_mt", |b| b.iter(|| st.triad(black_box(3.0), threads)));
    g.finish();
}

criterion_group!(benches, bench_hpcc);
criterion_main!(benches);
