//! Section IV: exponential-function implementations. Benchmarks both the
//! emulated-SVE kernels (algorithmic op-count/shape comparison: FEXPA
//! 5-term vs 13-term vs Sleef-hardened) and scalar libm as the baseline.

use criterion::{criterion_group, criterion_main, Criterion};
use ookami_vecmath::exp::{exp_slice, ExpVariant};
use std::hint::black_box;

fn bench_exp(c: &mut Criterion) {
    let xs: Vec<f64> = (0..512).map(|i| -23.0 + i as f64 * 46.0 / 511.0).collect();

    let mut g = c.benchmark_group("sec4_exp_emulated");
    g.sample_size(20);
    for (name, v) in [
        ("fexpa_horner", ExpVariant::FexpaHorner),
        ("fexpa_estrin", ExpVariant::FexpaEstrin),
        ("fexpa_estrin_corrected", ExpVariant::FexpaEstrinCorrected),
        ("poly13", ExpVariant::Poly13),
        ("poly13_sleef", ExpVariant::Poly13Sleef),
    ] {
        g.bench_function(name, |b| b.iter(|| exp_slice(8, black_box(&xs), v)));
    }
    g.finish();

    let mut g = c.benchmark_group("sec4_exp_native");
    g.sample_size(30);
    g.bench_function("libm_scalar", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for &x in black_box(&xs) {
                acc += x.exp();
            }
            acc
        });
    });
    g.finish();
}

criterion_group!(benches, bench_exp);
criterion_main!(benches);
