//! Section V: NPB kernels at small classes, single- vs multi-threaded —
//! the native-measurement counterpart of Figs. 3–6 (the class-C figures
//! come from the model harness; these verify the kernels really run and
//! really speed up with threads).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use ookami_npb::{bt::Bt, cg, ep, lu::Lu, sp::Sp, ua::Ua};
use std::hint::black_box;

fn bench_npb(c: &mut Criterion) {
    let mut g = c.benchmark_group("npb_single_thread");
    g.sample_size(10);
    g.bench_function("ep_m18", |b| b.iter(|| ep::run_m(black_box(18), 1)));
    let m = cg::makea(1400, 7, 10.0);
    g.bench_function("cg_conj_grad_s", |b| {
        b.iter_batched(
            || (vec![1.0; m.n], vec![0.0; m.n]),
            |(x, mut z)| cg::conj_grad(&m, &x, &mut z, 1),
            BatchSize::SmallInput,
        );
    });
    g.bench_function("bt_step_12", |b| {
        b.iter_batched_ref(|| Bt::with_grid(12), |s| s.step(1), BatchSize::SmallInput);
    });
    g.bench_function("sp_step_12", |b| {
        b.iter_batched_ref(|| Sp::with_grid(12), |s| s.step(1), BatchSize::SmallInput);
    });
    g.bench_function("lu_step_12", |b| {
        b.iter_batched_ref(|| Lu::with_grid(12), |s| s.step(1), BatchSize::SmallInput);
    });
    g.bench_function("ua_20steps", |b| {
        b.iter_batched_ref(
            || Ua::with_levels(5),
            |s| s.run(20, 1),
            BatchSize::SmallInput,
        );
    });
    g.finish();

    let threads = std::thread::available_parallelism().map_or(4, std::num::NonZero::get);
    let mut g = c.benchmark_group("npb_all_threads");
    g.sample_size(10);
    g.bench_function("ep_m18_mt", |b| {
        b.iter(|| ep::run_m(black_box(18), threads));
    });
    g.bench_function("bt_step_12_mt", |b| {
        b.iter_batched_ref(
            || Bt::with_grid(12),
            |s| s.step(threads),
            BatchSize::SmallInput,
        );
    });
    g.bench_function("sp_step_12_mt", |b| {
        b.iter_batched_ref(
            || Sp::with_grid(12),
            |s| s.step(threads),
            BatchSize::SmallInput,
        );
    });
    g.finish();
}

criterion_group!(benches, bench_npb);
criterion_main!(benches);
