//! Fork/join overhead of the persistent pool vs spawn-per-region.
//!
//! Times an empty parallel region — the purest measurement of what one
//! OpenMP-style barrier episode costs — for the persistent pool and for
//! the seed's spawn-per-region strategy, at several team sizes. The gap
//! between the two is the speedup the pool rework buys every timestep of
//! every threaded workload; the pool numbers also feed
//! `BarrierCost::from_samples` (see the `forkjoin` bin for the probe that
//! prints fitted constants).

use criterion::{criterion_group, criterion_main, Criterion};
use ookami_core::pool::Pool;
use ookami_core::runtime::spawn_par_for;

fn fork_join(c: &mut Criterion) {
    let mut g = c.benchmark_group("fork_join");
    for team in [2usize, 4, 8] {
        // One persistent pool per team size, workers oversubscribed if the
        // host has fewer cores — exactly how an 8-thread OpenMP run on a
        // smaller partition behaves.
        let pool = Pool::new(team - 1);
        pool.run(team, |_| {});
        g.bench_function(&format!("pool/{team}t"), |b| {
            b.iter(|| pool.run(team, |_| {}));
        });
        g.bench_function(&format!("spawn/{team}t"), |b| {
            b.iter(|| spawn_par_for(team, team, |_, _, _| {}));
        });
    }
    g.finish();
}

fn scheduled_loops(c: &mut Criterion) {
    use ookami_core::Schedule;
    let mut g = c.benchmark_group("schedules");
    let pool = Pool::new(3);
    let n = 1 << 16;
    for (name, sched) in [
        ("static", Schedule::Static),
        ("dynamic64", Schedule::Dynamic { chunk: 64 }),
        ("guided", Schedule::Guided),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                pool.par_for_with(4, n, sched, |_, s, e| {
                    let mut acc = 0u64;
                    for i in s..e {
                        acc = acc.wrapping_add(i as u64);
                    }
                    criterion::black_box(acc);
                });
            });
        });
    }
    g.finish();
}

criterion_group!(benches, fork_join, scheduled_loops);
criterion_main!(benches);
