//! Record-once/replay-many vs the per-op interpreter.
//!
//! The trace engine's whole claim: recording one VLA iteration of a kernel
//! into a compact `Trace` and replaying it from a preallocated arena beats
//! re-interpreting (and re-allocating) every op on every vector. This
//! bench measures the exp accuracy-sweep kernel three ways — interpreter,
//! serial replay, and replay over the worker pool — plus the build cost of
//! the trace itself (paid once per sweep, amortized over every element).

use criterion::{criterion_group, criterion_main, Criterion};
use ookami_vecmath::exp::{exp_slice_interp, exp_trace, ExpVariant};
use ookami_vecmath::ulp::sample_range;

fn sve_replay(c: &mut Criterion) {
    let mut g = c.benchmark_group("sve_replay");
    let vl = 8;
    let variant = ExpVariant::FexpaEstrinCorrected;
    let xs = sample_range(-700.0, 700.0, 4_001);

    g.bench_function("exp/interp", |b| {
        b.iter(|| criterion::black_box(exp_slice_interp(vl, &xs, variant)));
    });

    let t = exp_trace(vl, variant);
    g.bench_function("exp/replay", |b| {
        b.iter(|| criterion::black_box(t.map(&xs)));
    });
    g.bench_function("exp/replay_par4", |b| {
        b.iter(|| criterion::black_box(t.par_map(4, &xs)));
    });

    g.bench_function("exp/record", |b| {
        b.iter(|| criterion::black_box(exp_trace(vl, variant)));
    });
    g.finish();
}

criterion_group!(benches, sve_replay);
criterion_main!(benches);
