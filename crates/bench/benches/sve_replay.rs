//! Record-once/replay-many vs the per-op interpreter vs compiled closures.
//!
//! The trace engine's claim, in two steps. First: recording one VLA
//! iteration of a kernel into a compact `Trace` and replaying it from a
//! preallocated arena beats re-interpreting (and re-allocating) every op
//! on every vector. Second: compiling that trace once through the
//! `ookami_sve::compile` pass pipeline into fused native kernels over
//! lane blocks beats the replayer again (the `svereplay` probe gates the
//! ratio at ≥5x under obs). This bench measures the exp accuracy-sweep
//! kernel five ways — interpreter, serial replay, pooled replay, serial
//! compiled, pooled compiled — plus both one-time costs: recording the
//! trace and compiling it (each amortized over every element of a sweep).

use criterion::{criterion_group, criterion_main, Criterion};
use ookami_vecmath::exp::{exp_slice_interp, exp_trace, ExpVariant};
use ookami_vecmath::ulp::sample_range;

fn sve_replay(c: &mut Criterion) {
    let mut g = c.benchmark_group("sve_replay");
    let vl = 8;
    let variant = ExpVariant::FexpaEstrinCorrected;
    let xs = sample_range(-700.0, 700.0, 4_001);

    g.bench_function("exp/interp", |b| {
        b.iter(|| criterion::black_box(exp_slice_interp(vl, &xs, variant)));
    });

    let t = exp_trace(vl, variant);
    g.bench_function("exp/replay", |b| {
        b.iter(|| criterion::black_box(t.replay_map(&xs)));
    });
    g.bench_function("exp/replay_par4", |b| {
        b.iter(|| criterion::black_box(t.replay_par_map(4, &xs)));
    });

    let ct = t.compile();
    assert!(ct.is_native(), "bench body must take the native path");
    g.bench_function("exp/compiled", |b| {
        b.iter(|| criterion::black_box(ct.map(&xs)));
    });
    g.bench_function("exp/compiled_par4", |b| {
        b.iter(|| criterion::black_box(ct.par_map(4, &xs)));
    });

    g.bench_function("exp/record", |b| {
        b.iter(|| criterion::black_box(exp_trace(vl, variant)));
    });
    g.bench_function("exp/compile", |b| {
        b.iter(|| criterion::black_box(t.compile()));
    });
    g.finish();
}

/// Thread-scaling curve for both parallel executors: replay and compiled
/// at 1–8 pool threads over the same sweep. On a many-core host the
/// compiled curve should approach linear until the memory wall; the
/// worker-resident arenas keep the per-region setup cost off the curve
/// (steady state does zero allocation).
fn sve_replay_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("sve_replay_scaling");
    let vl = 8;
    let variant = ExpVariant::FexpaEstrinCorrected;
    let xs = sample_range(-700.0, 700.0, 16_001);
    let t = exp_trace(vl, variant);
    let ct = t.compile();
    assert!(ct.is_native(), "bench body must take the native path");
    for threads in 1usize..=8 {
        g.bench_function(&format!("replay/t{threads}"), |b| {
            b.iter(|| criterion::black_box(t.replay_par_map(threads, &xs)));
        });
        g.bench_function(&format!("compiled/t{threads}"), |b| {
            b.iter(|| criterion::black_box(ct.par_map(threads, &xs)));
        });
    }
    g.finish();
}

criterion_group!(benches, sve_replay, sve_replay_scaling);
criterion_main!(benches);
