//! Section VI: LULESH Base (AoS) vs Vect (SoA) — the Table II comparison,
//! natively measured on a small Sedov mesh.

use criterion::{criterion_group, criterion_main, Criterion};
use ookami_lulesh::{run_variant, Variant};
use std::hint::black_box;

fn bench_lulesh(c: &mut Criterion) {
    let mut g = c.benchmark_group("table2_lulesh");
    g.sample_size(10);
    g.bench_function("base_n10", |b| {
        b.iter(|| run_variant(Variant::Base, black_box(10), 0.02, 60));
    });
    g.bench_function("vect_n10", |b| {
        b.iter(|| run_variant(Variant::Vect, black_box(10), 0.02, 60));
    });
    g.finish();
}

criterion_group!(benches, bench_lulesh);
criterion_main!(benches);
