//! Differential properties tying the static verifier to the executable
//! semantics: every straight-line trace the builder can record — i.e.
//! everything the interpreter can execute — must verify clean, and a
//! `Trace::mutated` stream must either be rejected by the verifier
//! (structural mutants: dangling sources, double defs, undefined
//! predicates) or, when it verifies clean, provably change the kernel's
//! output. Together the two properties pin the verifier between "no false
//! positives on executable programs" and "no blind spot the mutation
//! operator can slip through".

use ookami_check::{verify, Program};
use ookami_sve::Trace;
use proptest::prelude::*;

/// One step of a generated kernel; `acc` threads through every step.
#[derive(Debug, Clone)]
enum Op {
    /// fadd/fsub/fmul/fmax against a broadcast constant.
    Bin(u8, f64),
    /// fabs/fneg/frintn/fsqrt.
    Un(u8),
    /// fmla with a broadcast multiplicand and the input as multiplier.
    Fma(f64),
    /// m = acc > t; acc = sel(m, acc, c).
    CmpSel(f64, f64),
}

/// The full op set: anything recordable must verify clean.
fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..4, -8.0..8.0f64).prop_map(|(k, c)| Op::Bin(k, c)),
        (0u8..4).prop_map(Op::Un),
        (-4.0..4.0f64).prop_map(Op::Fma),
        (-2.0..2.0f64, -8.0..8.0f64).prop_map(|(t, c)| Op::CmpSel(t, c)),
    ]
}

/// Injective ops only (affine in `acc` with nonzero scale): a bitwise
/// difference introduced at the head of the chain survives to the output,
/// so the divergence check below can't be masked by a max/select/round.
fn affine_op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..2, -8.0..8.0f64).prop_map(|(k, c)| Op::Bin(k, c)),
        (0.25..4.0f64, any::<bool>()).prop_map(|(c, n)| Op::Bin(2, if n { -c } else { c })),
        Just(Op::Un(1)), // fneg
        (-4.0..4.0f64).prop_map(Op::Fma),
    ]
}

fn record(vl: usize, prog: &[Op]) -> Trace {
    Trace::record1(vl, |ctx, pg, x| {
        // Anchor with an fmla so the semantic mutant class always has a
        // sign to flip: acc = x + 2.5·x² diverges from x − 2.5·x²
        // wherever x ≠ 0.
        let coef = ctx.dup_f64(2.5);
        let mut acc = ctx.fmla(pg, x, &coef, x);
        for op in prog {
            acc = match *op {
                Op::Bin(k, c) => {
                    let cv = ctx.dup_f64(c);
                    match k % 4 {
                        0 => ctx.fadd(pg, &acc, &cv),
                        1 => ctx.fsub(pg, &acc, &cv),
                        2 => ctx.fmul(pg, &acc, &cv),
                        _ => ctx.fmax(pg, &acc, &cv),
                    }
                }
                Op::Un(k) => match k % 4 {
                    0 => ctx.fabs(pg, &acc),
                    1 => ctx.fneg(pg, &acc),
                    2 => ctx.frintn(pg, &acc),
                    _ => ctx.fsqrt(pg, &acc),
                },
                Op::Fma(c) => {
                    let cv = ctx.dup_f64(c);
                    ctx.fmla(pg, &acc, &cv, x)
                }
                Op::CmpSel(t, c) => {
                    let tv = ctx.dup_f64(t);
                    let cv = ctx.dup_f64(c);
                    let m = ctx.fcmgt(pg, &acc, &tv);
                    ctx.sel(&m, &acc, &cv)
                }
            };
        }
        acc
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// No false positives: an executable recorded trace — any op mix, any
    /// vector length — produces zero diagnostics, warnings included.
    #[test]
    fn recorded_traces_verify_clean(
        vl in 1usize..=8,
        prog in prop::collection::vec(op_strategy(), 0..10),
    ) {
        let t = record(vl, &prog);
        let diags = verify(&Program::from_trace("generated", &t));
        prop_assert!(diags.is_empty(), "vl={}: {:?}", vl, diags);
    }

    /// No blind spots: a mutant is either statically rejected, or it is a
    /// semantic mutant — still executable, verifies clean, and its output
    /// differs bitwise from the original kernel's on the probe inputs.
    #[test]
    fn mutants_are_rejected_or_change_output(
        vl in 1usize..=8,
        seed in 0u64..256,
        prog in prop::collection::vec(affine_op_strategy(), 0..10),
        xs in prop::collection::vec(
            prop_oneof![0.5..100.0f64, -100.0..-0.5f64],
            1..40,
        ),
    ) {
        let t = record(vl, &prog);
        let m = t.mutated(seed);
        let diags = verify(&Program::from_trace("mutant", &m));
        // Structural mutants are statically rejected; otherwise the
        // verifier accepted it, so it must still be executable — and the
        // mutation must have moved the kernel, not just the wiring.
        if !diags.iter().any(ookami_check::Diag::is_error) {
            let want = t.map(&xs);
            let got = m.map(&xs);
            let diverged = want
                .iter()
                .zip(&got)
                .any(|(a, b)| a.to_bits() != b.to_bits());
            prop_assert!(
                diverged,
                "verifier-clean mutant did not change the kernel (seed={})",
                seed
            );
        }
    }
}
