//! Differential properties for the translation validator (`check::tv`),
//! the TV analogue of `differential_props.rs`: every pass trail the
//! trace compiler produces from a recordable kernel must prove clean
//! pass-by-pass (no false positives on real compilations), and a trail
//! with one mutated intermediate stage must be rejected by the validator
//! or observably divergent in replay (no blind spot the mutation
//! operator can slip through). Together they pin TV between "accepts
//! everything the compiler actually does" and "catches everything a
//! broken pass could do".

use ookami_check::tv::challenge;
use ookami_check::{validate_trail, MutantVerdict};
use ookami_sve::Trace;
use proptest::prelude::*;

/// One step of a generated kernel; `acc` threads through every step.
/// The op mix deliberately exercises every abstract domain TV tracks:
/// broadcast constants (constant lanes + folding), compares and selects
/// (the predicate lattice), and fmla chains (fusion in the emission
/// plan, hence the counter recipes).
#[derive(Debug, Clone)]
enum Op {
    /// fadd/fsub/fmul/fmax against a broadcast constant.
    Bin(u8, f64),
    /// fabs/fneg/frintn/fsqrt.
    Un(u8),
    /// fmla with a broadcast multiplicand and the input as multiplier.
    Fma(f64),
    /// m = acc > t; acc = sel(m, acc, c).
    CmpSel(f64, f64),
    /// A constant-only subexpression the const-fold pass collapses:
    /// acc = acc + (a · b) with both operands broadcast.
    FoldableMul(f64, f64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..4, -8.0..8.0f64).prop_map(|(k, c)| Op::Bin(k, c)),
        (0u8..4).prop_map(Op::Un),
        (-4.0..4.0f64).prop_map(Op::Fma),
        (-2.0..2.0f64, -8.0..8.0f64).prop_map(|(t, c)| Op::CmpSel(t, c)),
        (-4.0..4.0f64, -4.0..4.0f64).prop_map(|(a, b)| Op::FoldableMul(a, b)),
    ]
}

fn record(vl: usize, prog: &[Op]) -> Trace {
    Trace::record1(vl, |ctx, pg, x| {
        let coef = ctx.dup_f64(2.5);
        let mut acc = ctx.fmla(pg, x, &coef, x);
        for op in prog {
            acc = match *op {
                Op::Bin(k, c) => {
                    let cv = ctx.dup_f64(c);
                    match k % 4 {
                        0 => ctx.fadd(pg, &acc, &cv),
                        1 => ctx.fsub(pg, &acc, &cv),
                        2 => ctx.fmul(pg, &acc, &cv),
                        _ => ctx.fmax(pg, &acc, &cv),
                    }
                }
                Op::Un(k) => match k % 4 {
                    0 => ctx.fabs(pg, &acc),
                    1 => ctx.fneg(pg, &acc),
                    2 => ctx.frintn(pg, &acc),
                    _ => ctx.fsqrt(pg, &acc),
                },
                Op::Fma(c) => {
                    let cv = ctx.dup_f64(c);
                    ctx.fmla(pg, &acc, &cv, x)
                }
                Op::CmpSel(t, c) => {
                    let tv = ctx.dup_f64(t);
                    let cv = ctx.dup_f64(c);
                    let m = ctx.fcmgt(pg, &acc, &tv);
                    ctx.sel(&m, &acc, &cv)
                }
                Op::FoldableMul(a, b) => {
                    let av = ctx.dup_f64(a);
                    let bv = ctx.dup_f64(b);
                    let prod = ctx.fmul(pg, &av, &bv);
                    ctx.fadd(pg, &acc, &prod)
                }
            };
        }
        acc
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// No false positives: the compiler's own pass trail over any
    /// recordable kernel proves clean at every transition, and the
    /// static counter recipe (when a native plan exists) re-derives
    /// exactly.
    #[test]
    fn compiler_trails_validate_clean(
        vl in 1usize..=8,
        prog in prop::collection::vec(op_strategy(), 0..10),
    ) {
        let t = record(vl, &prog);
        let report = validate_trail("generated", &t.pass_trail());
        prop_assert!(
            report.is_ok(),
            "vl={}: {:?} / counters {:?}",
            vl,
            report
                .stages
                .iter()
                .flat_map(|s| s.diags.iter().map(|d| d.message.clone()))
                .collect::<Vec<_>>(),
            report.counter_diags,
        );
    }

    /// No blind spots: mutating one intermediate stage of a real trail
    /// is caught — either TV rejects the transition outright, or the
    /// mutant is wiring-intact and its replay output provably moved.
    /// `Missed` (validates clean AND bit-identical output) is the
    /// failure.
    #[test]
    fn mutated_stages_are_rejected_or_divergent(
        vl in 1usize..=8,
        seed in 0u64..256,
        prog in prop::collection::vec(op_strategy(), 0..10),
    ) {
        let t = record(vl, &prog);
        let verdict = challenge(&t.pass_trail(), seed);
        prop_assert!(
            verdict != MutantVerdict::Missed,
            "TV accepted a mutated stage with unchanged output (vl={}, seed={})",
            vl,
            seed
        );
    }
}
