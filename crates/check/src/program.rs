//! The verifier's input: an [`Instr`] stream plus the wiring facts the
//! abstract interpretation keys on (live-in/live-out sets, the loop
//! predicate, constant lanes, table bounds), under one of two register
//! conventions.

use ookami_sve::Trace;
use ookami_uarch::{Domain, Instr, Reg, Width};

/// How registers in the stream are numbered, which decides how much the
/// verifier can assume.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Convention {
    /// `Trace::to_instrs` numbering: SSA, vector regs `0..n_vec_regs`,
    /// predicate regs above. Every check runs.
    Traced,
    /// Interpreter-recorded streams (`record_kernel`): registers are
    /// renamed per write and live-in bases appear undefined, so the SSA,
    /// domain and predicate passes are skipped — only width uniformity,
    /// arity ceilings and effect sanity apply.
    Lowered,
}

/// One verifiable instruction stream. The corpus builds these directly
/// (fields are public); shipped traces come in via [`Program::from_trace`].
#[derive(Debug, Clone)]
pub struct Program {
    pub name: String,
    pub convention: Convention,
    pub instrs: Vec<Instr>,
    /// Expected uniform width. `None` disables the uniformity check
    /// (mixed-width streams; used by the widening-lint corpus entry).
    pub width: Option<Width>,
    /// Vector register file size — predicate registers start here
    /// (Traced convention only).
    pub n_vec_regs: Reg,
    pub n_pred_regs: Reg,
    /// Vector registers defined before the stream runs.
    pub live_in_vec: Vec<Reg>,
    /// Predicate registers defined before the stream runs.
    pub live_in_pred: Vec<Reg>,
    /// The loop-governing predicate (bounded to the active block).
    pub loop_pred: Option<Reg>,
    /// Live-in predicates known all-true (wider than the loop bound).
    pub ptrue_preds: Vec<Reg>,
    /// Live-in constants with exact record-time lane bits.
    pub const_lanes: Vec<(Reg, Vec<u64>)>,
    /// Per-instruction bound-buffer length for gather/scatter, aligned
    /// with `instrs`; `None` for non-table ops.
    pub table_len: Vec<Option<usize>>,
    /// Registers consumed after the stream (outputs, carries, taps).
    pub live_out: Vec<Reg>,
}

impl Program {
    /// Build the verifier view of a recorded trace via [`Trace::analysis`].
    pub fn from_trace(name: &str, t: &Trace) -> Program {
        let info = t.analysis();
        let width = match info.vl {
            1 => Width::Scalar,
            2 => Width::V128,
            4 => Width::V256,
            _ => Width::V512,
        };
        Program {
            name: name.to_string(),
            convention: Convention::Traced,
            instrs: info.body,
            width: Some(width),
            n_vec_regs: info.n_vec_regs as Reg,
            n_pred_regs: info.n_pred_regs as Reg,
            live_in_vec: info.live_in_vec,
            live_in_pred: info.live_in_pred,
            loop_pred: info.loop_pred,
            ptrue_preds: info.ptrue_preds,
            const_lanes: info.const_lanes,
            table_len: info.table_len,
            live_out: info.live_out,
        }
    }

    /// Wrap an interpreter-recorded stream (non-SSA `Lowered` convention).
    pub fn from_stream(name: &str, instrs: Vec<Instr>) -> Program {
        let width = instrs.first().map(|i| i.width);
        let n = instrs.len();
        Program {
            name: name.to_string(),
            convention: Convention::Lowered,
            instrs,
            width,
            n_vec_regs: 0,
            n_pred_regs: 0,
            live_in_vec: Vec::new(),
            live_in_pred: Vec::new(),
            loop_pred: None,
            ptrue_preds: Vec::new(),
            const_lanes: Vec::new(),
            table_len: vec![None; n],
            live_out: Vec::new(),
        }
    }

    /// Which register file a register number falls in (Traced numbering;
    /// Lowered streams have no domain information).
    pub fn domain_of(&self, r: Reg) -> Domain {
        if self.convention == Convention::Traced && r >= self.n_vec_regs {
            Domain::Predicate
        } else {
            Domain::Vector
        }
    }

    /// Human name of a register under the stream's convention:
    /// `v3`/`p1` for Traced, `r3` for Lowered.
    pub fn reg_name(&self, r: Reg) -> String {
        match self.convention {
            Convention::Traced => {
                if r < self.n_vec_regs {
                    format!("v{r}")
                } else {
                    format!("p{}", r - self.n_vec_regs)
                }
            }
            Convention::Lowered => format!("r{r}"),
        }
    }

    /// Render instruction `i` as one assembly-style line:
    /// `Fma.V512 v9 <- p5, v0, v1, v2` (defs) or
    /// `Scatter.V512 <- p5, v2, v3` (effect-only ops).
    pub fn render_instr(&self, i: usize) -> String {
        let ins = &self.instrs[i];
        let mut s = format!("{:?}.{:?}", ins.op, ins.width);
        if let Some(d) = ins.dst {
            s.push(' ');
            s.push_str(&self.reg_name(d));
        }
        if ins.dst.is_some() || !ins.srcs.is_empty() {
            s.push_str(" <-");
        }
        for (k, &r) in ins.srcs.iter().enumerate() {
            if k > 0 {
                s.push(',');
            }
            s.push(' ');
            s.push_str(&self.reg_name(r));
        }
        if let Some(u) = ins.uops_hint {
            s.push_str(&format!(" [uops={u}]"));
        }
        s
    }

    /// `(column, width)` of source operand `o` of instruction `i` inside
    /// [`Program::render_instr`]'s line — drives the diagnostic carets.
    pub fn operand_span(&self, i: usize, o: usize) -> Option<(usize, usize)> {
        let ins = &self.instrs[i];
        if o >= ins.srcs.len() {
            return None;
        }
        let mut col = format!("{:?}.{:?}", ins.op, ins.width).len();
        if let Some(d) = ins.dst {
            col += 1 + self.reg_name(d).len();
        }
        col += " <-".len();
        for (k, &r) in ins.srcs.iter().enumerate() {
            if k > 0 {
                col += 1; // ','
            }
            col += 1; // ' '
            let w = self.reg_name(r).len();
            if k == o {
                return Some((col, w));
            }
            col += w;
        }
        None
    }

    /// Full listing (used by the golden corpus snapshots).
    pub fn render_listing(&self) -> String {
        let mut out = String::new();
        for i in 0..self.instrs.len() {
            out.push_str(&format!("{i:>3} | {}\n", self.render_instr(i)));
        }
        out
    }
}
