//! The static verifier: abstract interpretation over one [`Program`].
//!
//! Under the `Traced` convention (SSA streams from `Trace::to_instrs`)
//! every pass runs:
//!
//! * **def-before-use / SSA** — every source register must be live-in or
//!   defined earlier (`OC0001`); no register is defined twice (`OC0007`);
//! * **arity** — each op class lowers with a fixed operand shape
//!   (`OC0005`);
//! * **domain** — operand positions expect vector or predicate registers
//!   per class metadata (`OC0002`);
//! * **width** — one stream, one vector length (`OC0003`);
//! * **predicate domain** — a two-point lattice `Bounded ⊑ Wide` proves
//!   memory writes are governed by the loop-bounded predicate, so
//!   inactive lanes never reach memory (`OC0006`);
//! * **bounds** — constant index vectors are checked against their
//!   gather/scatter table length (`OC0004`);
//! * **lints** — dead defs (`OC1001`), redundant predicate recompute
//!   (`OC1002`), unnecessary widening (`OC1003`).
//!
//! `Lowered` streams (interpreter recordings, non-SSA) get width
//! uniformity, effect sanity, and the constant index-bounds check
//! (`OC0004`): intervals seed from setup constants exactly as in traced
//! streams, but a redefinition kills the fact (last-write-wins — no
//! re-derivation through non-SSA dataflow).

use std::collections::{HashMap, HashSet};

use crate::diag::{Code, Diag};
use crate::program::{Convention, Program};
use ookami_uarch::meta::{expected_src_domain, pred_transfer, traced_arity, PredDom};
use ookami_uarch::{Domain, EffectClass, OpClass, Reg, Width};

/// Run every applicable pass over `p`. Diagnostics come out in
/// instruction order (stable across runs — the golden corpus depends on
/// it).
pub fn verify(p: &Program) -> Vec<Diag> {
    let mut diags = Vec::new();
    match p.convention {
        Convention::Traced => verify_traced(p, &mut diags),
        Convention::Lowered => verify_lowered(p, &mut diags),
    }
    diags.sort_by_key(|d| (d.index, d.code.as_str()));
    diags
}

fn verify_lowered(p: &Program, diags: &mut Vec<Diag>) {
    // Interval facts survive only until the register is redefined: the
    // stream is non-SSA, so last-write-wins is the only sound reading.
    let mut interval: HashMap<Reg, (i64, i64)> = HashMap::new();
    for (r, lanes) in &p.const_lanes {
        if let (Some(&lo), Some(&hi)) = (
            lanes.iter().min_by_key(|&&l| l as i64),
            lanes.iter().max_by_key(|&&l| l as i64),
        ) {
            interval.insert(*r, (lo as i64, hi as i64));
        }
    }

    for (i, ins) in p.instrs.iter().enumerate() {
        if let Some(w) = p.width {
            if ins.width != w {
                diags.push(Diag::new(
                    Code::WidthMismatch,
                    i,
                    None,
                    format!("{:?} op in a {w:?} stream", ins.width),
                ));
            }
        }
        // Effect sanity: stores and branches never define a register.
        let effectful = matches!(
            ins.effect_class(),
            EffectClass::MemWrite | EffectClass::Control
        );
        if effectful && ins.dst.is_some() {
            diags.push(Diag::new(
                Code::MalformedArity,
                i,
                None,
                format!("{:?} must not define a register", ins.op),
            ));
        }
        // Bounds (OC0004), same message as the traced pass.
        let idx_operand = match ins.op {
            OpClass::Gather => Some(1),
            OpClass::Scatter => Some(2),
            _ => None,
        };
        if let (Some(k), Some(Some(len))) = (idx_operand, p.table_len.get(i)) {
            if k < ins.srcs.len() {
                if let Some(&(lo, hi)) = interval.get(&ins.srcs[k]) {
                    if lo < 0 || hi >= *len as i64 {
                        diags.push(Diag::new(
                            Code::OutOfBoundsIndex,
                            i,
                            Some(k),
                            format!(
                                "index vector {} spans [{lo}, {hi}] but the \
                                 bound table has {len} elements",
                                p.reg_name(ins.srcs[k])
                            ),
                        ));
                    }
                }
            }
        }
        if let Some(d) = ins.dst {
            interval.remove(&d);
        }
    }
}

fn verify_traced(p: &Program, diags: &mut Vec<Diag>) {
    // Live-in state.
    let mut defined: HashSet<Reg> = HashSet::new();
    defined.extend(&p.live_in_vec);
    defined.extend(&p.live_in_pred);
    if let Some(lp) = p.loop_pred {
        defined.insert(lp);
    }

    // Predicate lattice: the loop predicate is the only live-in proved
    // Bounded; ptrue and unknown live-in predicates may be wide. With no
    // loop predicate the pass has nothing to prove against and is skipped.
    let mut pred_dom: HashMap<Reg, PredDom> = HashMap::new();
    for &r in p.live_in_pred.iter().chain(&p.ptrue_preds) {
        pred_dom.insert(r, PredDom::Wide);
    }
    if let Some(lp) = p.loop_pred {
        pred_dom.insert(lp, PredDom::Bounded);
    }

    // Interval domain, seeded only from exact setup constants (lanes
    // reinterpreted as i64 — how gather/scatter consume index vectors).
    let mut interval: HashMap<Reg, (i64, i64)> = HashMap::new();
    for (r, lanes) in &p.const_lanes {
        if let (Some(&lo), Some(&hi)) = (
            lanes.iter().min_by_key(|&&l| l as i64),
            lanes.iter().max_by_key(|&&l| l as i64),
        ) {
            interval.insert(*r, (lo as i64, hi as i64));
        }
    }

    // Lint state.
    let mut def_site: HashMap<Reg, usize> = HashMap::new();
    let mut used: HashSet<Reg> = HashSet::new();
    let mut pred_exprs: HashMap<(OpClass, Vec<Reg>), usize> = HashMap::new();
    let mut def_width: HashMap<Reg, Width> = HashMap::new();

    for (i, ins) in p.instrs.iter().enumerate() {
        // -- arity (OC0005) --
        let arity = traced_arity(ins.op);
        match arity {
            None => diags.push(Diag::new(
                Code::MalformedArity,
                i,
                None,
                format!("{:?} is not produced by the trace lowering", ins.op),
            )),
            Some((counts, needs_dst)) => {
                if !counts.contains(&ins.srcs.len()) {
                    diags.push(Diag::new(
                        Code::MalformedArity,
                        i,
                        None,
                        format!(
                            "{:?} takes {counts:?} sources, found {}",
                            ins.op,
                            ins.srcs.len()
                        ),
                    ));
                }
                if needs_dst != ins.dst.is_some() {
                    let what = if needs_dst {
                        "requires"
                    } else {
                        "must not have"
                    };
                    diags.push(Diag::new(
                        Code::MalformedArity,
                        i,
                        None,
                        format!("{:?} {what} a destination", ins.op),
                    ));
                }
            }
        }

        // -- width (OC0003) --
        if let Some(w) = p.width {
            if ins.width != w {
                diags.push(Diag::new(
                    Code::WidthMismatch,
                    i,
                    None,
                    format!("{:?} op in a {w:?} stream", ins.width),
                ));
            }
        }

        // -- def-before-use (OC0001) + domain (OC0002) per operand --
        let arity_ok = arity.is_some_and(|(c, _)| c.contains(&ins.srcs.len()));
        for (k, &r) in ins.srcs.iter().enumerate() {
            if !defined.contains(&r) {
                diags.push(Diag::new(
                    Code::UndefinedUse,
                    i,
                    Some(k),
                    format!(
                        "use of {} register {} before any definition",
                        match p.domain_of(r) {
                            Domain::Vector => "vector",
                            Domain::Predicate => "predicate",
                        },
                        p.reg_name(r)
                    ),
                ));
            }
            // Operand domains only make sense when the shape matched.
            if arity_ok {
                let want = expected_src_domain(ins, k);
                if p.domain_of(r) != want {
                    diags.push(Diag::new(
                        Code::DomainMismatch,
                        i,
                        Some(k),
                        format!(
                            "operand {k} of {:?} expects a {} register, found {}",
                            ins.op,
                            match want {
                                Domain::Vector => "vector",
                                Domain::Predicate => "predicate",
                            },
                            p.reg_name(r)
                        ),
                    ));
                }
            }
            used.insert(r);
        }

        // -- predicate-domain pass (OC0006) --
        if p.loop_pred.is_some() && ins.effect_class() == EffectClass::MemWrite && arity_ok {
            let pg = ins.srcs[0];
            let dom = pred_dom.get(&pg).copied().unwrap_or(PredDom::Wide);
            if dom != PredDom::Bounded {
                diags.push(Diag::new(
                    Code::OverWidePredicate,
                    i,
                    Some(0),
                    format!(
                        "memory write governed by {}, which may be wider than \
                         the loop predicate",
                        p.reg_name(pg)
                    ),
                ));
            }
        }

        // -- bounds pass (OC0004): constant index vectors vs table --
        if arity_ok {
            let idx_operand = match ins.op {
                OpClass::Gather => Some(1),
                OpClass::Scatter => Some(2),
                _ => None,
            };
            if let (Some(k), Some(Some(len))) = (idx_operand, p.table_len.get(i)) {
                if let Some(&(lo, hi)) = interval.get(&ins.srcs[k]) {
                    if lo < 0 || hi >= *len as i64 {
                        diags.push(Diag::new(
                            Code::OutOfBoundsIndex,
                            i,
                            Some(k),
                            format!(
                                "index vector {} spans [{lo}, {hi}] but the \
                                 bound table has {len} elements",
                                p.reg_name(ins.srcs[k])
                            ),
                        ));
                    }
                }
            }
        }

        // -- defs: SSA (OC0007), lattice/lint transfer --
        if let Some(d) = ins.dst {
            if defined.contains(&d) {
                diags.push(Diag::new(
                    Code::DoubleDef,
                    i,
                    None,
                    format!("register {} is already defined", p.reg_name(d)),
                ));
            }
            defined.insert(d);
            def_site.insert(d, i);
            def_width.insert(d, ins.width);

            // dst-domain sanity: the register file must match the class.
            if p.domain_of(d) != ins.def_domain() {
                diags.push(Diag::new(
                    Code::DomainMismatch,
                    i,
                    None,
                    format!(
                        "{:?} defines a {} register, but {} is in the {} file",
                        ins.op,
                        match ins.def_domain() {
                            Domain::Vector => "vector",
                            Domain::Predicate => "predicate",
                        },
                        p.reg_name(d),
                        match p.domain_of(d) {
                            Domain::Vector => "vector",
                            Domain::Predicate => "predicate",
                        },
                    ),
                ));
            }

            if ins.def_domain() == Domain::Predicate {
                // Transfer function lives in the shared metadata table so
                // the trace compiler's passes reuse identical facts.
                let src_doms: Vec<PredDom> = ins
                    .srcs
                    .iter()
                    .map(|s| pred_dom.get(s).copied().unwrap_or(PredDom::Wide))
                    .collect();
                pred_dom.insert(d, pred_transfer(ins.op, &src_doms));

                // OC1002: identical predicate recompute.
                if !ins.srcs.is_empty() {
                    let key = (ins.op, ins.srcs.to_vec());
                    if let Some(&first) = pred_exprs.get(&key) {
                        diags.push(Diag::new(
                            Code::RedundantPredicate,
                            i,
                            None,
                            format!(
                                "predicate {} recomputes the expression of \
                                 instruction {first}",
                                p.reg_name(d)
                            ),
                        ));
                    } else {
                        pred_exprs.insert(key, i);
                    }
                }
            }

            // OC1003: a vector-width op whose value inputs were all
            // produced at scalar width (mixed-width streams only — with a
            // uniform width the condition cannot arise).
            if p.width.is_none() && ins.width != Width::Scalar {
                let value_srcs: Vec<Reg> = ins
                    .srcs
                    .iter()
                    .enumerate()
                    .filter(|&(k, _)| expected_src_domain(ins, k) == Domain::Vector)
                    .map(|(_, &r)| r)
                    .collect();
                if !value_srcs.is_empty()
                    && value_srcs
                        .iter()
                        .all(|r| def_width.get(r) == Some(&Width::Scalar))
                {
                    diags.push(Diag::new(
                        Code::UnnecessaryWidening,
                        i,
                        None,
                        format!(
                            "{:?} runs at {:?} but every input is scalar",
                            ins.op, ins.width
                        ),
                    ));
                }
            }
        }
    }

    // -- OC1001: dead body defs --
    let live_out: HashSet<Reg> = p.live_out.iter().copied().collect();
    for (&d, &i) in &def_site {
        if !used.contains(&d) && !live_out.contains(&d) {
            diags.push(Diag::new(
                Code::DeadDef,
                i,
                None,
                format!("{} is never used and is not live-out", p.reg_name(d)),
            ));
        }
    }
}
