//! Diagnostics: stable codes, severities, source-span-style rendering,
//! and machine-readable JSON output.
//!
//! Codes are stable across releases (golden corpus files assert them):
//! `OC0xxx` are errors (the verifier's exit status is non-zero if any is
//! present), `OC1xxx` are lints (warnings; the `ookamicheck` gate holds
//! shipped traces to zero diagnostics of *either* class), and `TVxxxx`
//! are translation-validation failures from [`crate::tv`] (always
//! errors: a pass changed observable behavior, or the validator could
//! not prove it didn't).
//!
//! The full code table is embedded in DESIGN.md between
//! `<!-- diag-code-table:begin -->` markers and rendered by
//! [`code_table`]; a drift test fails when a code is added without a
//! doc row.

use crate::program::Program;

/// Stable diagnostic codes. The numeric part never changes meaning; new
/// checks get new codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Code {
    /// Use of a register that is not defined at this point (covers both
    /// never-defined and use-before-def in SSA streams).
    UndefinedUse,
    /// Operand register lives in the wrong domain (vector where a
    /// predicate is required, or vice versa).
    DomainMismatch,
    /// Instruction width differs from the stream's vector length.
    WidthMismatch,
    /// Gather/scatter index vector provably indexes outside its bound
    /// buffer.
    OutOfBoundsIndex,
    /// Operand count or destination presence is malformed for the op
    /// class under the stream's convention.
    MalformedArity,
    /// A memory write is governed by a predicate that may be wider than
    /// the loop predicate (inactive lanes could flow into memory).
    OverWidePredicate,
    /// A register is defined twice (SSA violation in a traced stream).
    DoubleDef,
    /// Lint: a body definition is never used and is not live-out.
    DeadDef,
    /// Lint: a predicate is recomputed from identical operands.
    RedundantPredicate,
    /// Lint: a vector-width op whose every in-body source is scalar.
    UnnecessaryWidening,
    /// TV: an observable (output slot, tap, carry, effect operand, or a
    /// defining op) differs between pass stages under the witness.
    ObservableMismatch,
    /// TV: the pass's slot-substitution or constant-fold witness cannot
    /// be independently justified from the source stage.
    WitnessBroken,
    /// TV: a pass introduced a gather/scatter index-bounds violation
    /// (OC0004) that the previous stage did not have.
    IndexWidened,
    /// TV: the independently re-derived static counter recipe differs
    /// from the compiler's pre-folded block snapshot.
    CounterRecipeMismatch,
    /// TV: a pass weakened an abstract-domain fact at an observable —
    /// a Bounded store predicate widened, or a canonical-quiet NaN
    /// output became arbitrary.
    LatticeWeakened,
    /// TV: a source-stage effect (scatter, overhead, libm call) has no
    /// target-stage counterpart.
    EffectDropped,
    /// TV: the target stage performs an effect the source never did.
    EffectAdded,
}

impl Code {
    /// Every stable code, in table order (OC errors, OC lints, TV).
    pub const ALL: [Code; 17] = [
        Code::UndefinedUse,
        Code::DomainMismatch,
        Code::WidthMismatch,
        Code::OutOfBoundsIndex,
        Code::MalformedArity,
        Code::OverWidePredicate,
        Code::DoubleDef,
        Code::DeadDef,
        Code::RedundantPredicate,
        Code::UnnecessaryWidening,
        Code::ObservableMismatch,
        Code::WitnessBroken,
        Code::IndexWidened,
        Code::CounterRecipeMismatch,
        Code::LatticeWeakened,
        Code::EffectDropped,
        Code::EffectAdded,
    ];

    pub fn as_str(self) -> &'static str {
        match self {
            Code::UndefinedUse => "OC0001",
            Code::DomainMismatch => "OC0002",
            Code::WidthMismatch => "OC0003",
            Code::OutOfBoundsIndex => "OC0004",
            Code::MalformedArity => "OC0005",
            Code::OverWidePredicate => "OC0006",
            Code::DoubleDef => "OC0007",
            Code::DeadDef => "OC1001",
            Code::RedundantPredicate => "OC1002",
            Code::UnnecessaryWidening => "OC1003",
            Code::ObservableMismatch => "TV0001",
            Code::WitnessBroken => "TV0002",
            Code::IndexWidened => "TV0003",
            Code::CounterRecipeMismatch => "TV0004",
            Code::LatticeWeakened => "TV0005",
            Code::EffectDropped => "TV0006",
            Code::EffectAdded => "TV0007",
        }
    }

    pub fn severity(self) -> Severity {
        match self {
            Code::DeadDef | Code::RedundantPredicate | Code::UnnecessaryWidening => {
                Severity::Warning
            }
            _ => Severity::Error,
        }
    }

    /// One-line meaning, the doc-table row text (drift-tested against
    /// DESIGN.md).
    pub fn doc(self) -> &'static str {
        match self {
            Code::UndefinedUse => "use of a register before any definition",
            Code::DomainMismatch => "operand register in the wrong domain (vector vs predicate)",
            Code::WidthMismatch => "instruction width differs from the stream's vector length",
            Code::OutOfBoundsIndex => {
                "gather/scatter index vector provably outside its bound table"
            }
            Code::MalformedArity => "operand count or destination malformed for the op class",
            Code::OverWidePredicate => {
                "memory write governed by a predicate possibly wider than the loop bound"
            }
            Code::DoubleDef => "register defined twice in an SSA stream",
            Code::DeadDef => "body definition never used and not live-out",
            Code::RedundantPredicate => "predicate recomputed from identical operands",
            Code::UnnecessaryWidening => "vector-width op whose every input is scalar",
            Code::ObservableMismatch => {
                "pass stage changes an observable (output, tap, carry, effect, or defining op)"
            }
            Code::WitnessBroken => {
                "pass witness (slot substitution or constant fold) cannot be re-proved"
            }
            Code::IndexWidened => "pass introduced an index-bounds violation the source lacked",
            Code::CounterRecipeMismatch => {
                "re-derived static counter recipe differs from the compiled snapshot"
            }
            Code::LatticeWeakened => {
                "pass weakened a predicate-bound or NaN-class fact at an observable"
            }
            Code::EffectDropped => "source-stage memory/overhead effect missing from the target",
            Code::EffectAdded => "target stage performs an effect the source never did",
        }
    }
}

/// The markdown diagnostic-code table embedded in DESIGN.md between the
/// `<!-- diag-code-table:begin -->` / `end` markers. A drift test
/// regenerates this and compares, so adding a [`Code`] without a doc row
/// fails CI.
pub fn code_table() -> String {
    let mut out = String::from("| code | severity | meaning |\n|---|---|---|\n");
    for c in Code::ALL {
        out.push_str(&format!(
            "| `{}` | {} | {} |\n",
            c.as_str(),
            c.severity().as_str(),
            c.doc()
        ));
    }
    out
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    Error,
    Warning,
}

impl Severity {
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
        }
    }
}

/// One finding, anchored to an instruction index in the verified stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diag {
    pub code: Code,
    /// Index of the offending instruction in the program body.
    pub index: usize,
    /// Operand position the finding points at (`None` = whole instr).
    pub operand: Option<usize>,
    pub message: String,
}

impl Diag {
    pub fn new(code: Code, index: usize, operand: Option<usize>, message: String) -> Diag {
        Diag {
            code,
            index,
            operand,
            message,
        }
    }

    pub fn is_error(&self) -> bool {
        self.code.severity() == Severity::Error
    }
}

/// Render one diagnostic in the source-span style:
///
/// ```text
/// error[OC0001]: use of undefined vector register v7
///   --> loops_simple:2
///    |
///  2 | FMul.V512 v4 <- p5, v7, v1
///    |                     ^^ never defined at this point
/// ```
pub fn render(p: &Program, d: &Diag) -> String {
    let line = p.render_instr(d.index);
    let gutter = format!("{:>3}", d.index);
    let blank = " ".repeat(gutter.len());
    // Caret span: the operand the finding points at, or the whole line.
    let (col, width) = match d.operand.and_then(|o| p.operand_span(d.index, o)) {
        Some((c, w)) => (c, w),
        None => (0, line.len().max(1)),
    };
    format!(
        "{}[{}]: {}\n  --> {}:{}\n {blank}|\n {gutter} | {}\n {blank}| {}{}\n",
        d.code.severity().as_str(),
        d.code.as_str(),
        d.message,
        p.name,
        d.index,
        line,
        " ".repeat(col),
        "^".repeat(width.max(1)),
    )
}

/// Render all diagnostics of one program, with a trailing summary line.
pub fn render_all(p: &Program, diags: &[Diag]) -> String {
    let mut out = String::new();
    for d in diags {
        out.push_str(&render(p, d));
        out.push('\n');
    }
    let errors = diags.iter().filter(|d| d.is_error()).count();
    let warnings = diags.len() - errors;
    out.push_str(&format!(
        "{}: {errors} error(s), {warnings} warning(s)\n",
        p.name
    ));
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Machine-readable report for one program: parses with the in-repo
/// `ookami_core::obs::Json` parser (asserted by tests).
pub fn to_json(p: &Program, diags: &[Diag]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"program\": {},\n", json_escape(&p.name)));
    out.push_str(&format!("  \"instructions\": {},\n", p.instrs.len()));
    out.push_str(&format!(
        "  \"errors\": {},\n",
        diags.iter().filter(|d| d.is_error()).count()
    ));
    out.push_str(&format!(
        "  \"warnings\": {},\n",
        diags.iter().filter(|d| !d.is_error()).count()
    ));
    out.push_str("  \"diagnostics\": [");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"code\": {}, \"severity\": {}, \"index\": {}, \"message\": {}, \"instr\": {}}}",
            json_escape(d.code.as_str()),
            json_escape(d.code.severity().as_str()),
            d.index,
            json_escape(&d.message),
            json_escape(&p.render_instr(d.index)),
        ));
    }
    out.push_str("\n  ]\n}\n");
    out
}
