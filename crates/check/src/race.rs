//! Happens-before race detector for the pool runtime.
//!
//! Replays a [`TimelineEvent`] stream (PR-4's per-thread tracer, exported
//! by `ookami_core::timeline::export_events`) with vector clocks:
//!
//! * `Fork` on thread `F` opens a region and snapshots `F`'s clock — the
//!   fork point every participant's first chunk synchronizes with;
//! * each `Chunk` on thread `T` joins `T`'s clock with the fork snapshot
//!   (first chunk in the region only), ticks `T`, and records the chunk's
//!   written index range `[start, start+len)` under its `loop_id`;
//! * `Join` on `F` absorbs every participant's clock and ticks `F`, so
//!   writes in *later* regions are ordered after everything before the
//!   barrier.
//!
//! Two chunk writes race when they target the same `loop_id` from
//! different threads, their index ranges overlap, and neither write
//! happens-before the other (vector clocks incomparable). The pool's
//! schedules claim each index exactly once per region, so shipped
//! kernels must report zero races; [`injected_race_events`] builds the
//! overlapping-write stream the self-test (and `ookamicheck
//! --inject-race`) must flag.
//!
//! Long-lived background threads — the `telemetry::Sampler` thread and
//! `telemetry::serve` connection threads — are modeled as **actors**:
//! `ActorFork` (on the spawning thread) snapshots the spawner's clock,
//! each `ActorWrite` synchronizes with that snapshot before recording a
//! write in the actor's own range space (keyed separately from pool
//! loops), and `ActorJoin` (after the thread join) absorbs the writer
//! clocks. Two unordered overlapping `ActorWrite`s to one actor's state
//! race exactly like chunk writes; [`injected_sampler_race_events`]
//! builds that stream for `ookamicheck --inject-sampler-race`.

use std::collections::HashMap;

use ookami_core::timeline::{EventPayload, TimelineEvent};

/// Sparse vector clock: thread id → logical time.
type Vc = HashMap<u64, u64>;

fn vc_tick(clocks: &mut HashMap<u64, Vc>, tid: u64) {
    *clocks.entry(tid).or_default().entry(tid).or_insert(0) += 1;
}

fn vc_join(dst: &mut Vc, src: &Vc) {
    for (&t, &c) in src {
        let e = dst.entry(t).or_insert(0);
        *e = (*e).max(c);
    }
}

/// One recorded chunk write.
#[derive(Debug, Clone)]
struct Write {
    tid: u64,
    start: u64,
    end: u64,
    /// The writer's own clock component at write time — enough to decide
    /// happens-before against any later snapshot (`w hb x` iff
    /// `x.vc[w.tid] >= w.own`).
    own: u64,
    vc: Vc,
}

/// A pair of overlapping, unordered chunk writes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Race {
    pub loop_id: u64,
    pub tid_a: u64,
    pub range_a: (u64, u64),
    pub tid_b: u64,
    pub range_b: (u64, u64),
}

impl std::fmt::Display for Race {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.loop_id & (1u64 << 63) != 0 {
            write!(f, "actor {}", self.loop_id & !(1u64 << 63))?;
        } else {
            write!(f, "loop {}", self.loop_id)?;
        }
        write!(
            f,
            ": thread {} writes [{}, {}) unordered with thread {} \
             writing [{}, {})",
            self.tid_a, self.range_a.0, self.range_a.1, self.tid_b, self.range_b.0, self.range_b.1
        )
    }
}

/// An open fork/join region.
struct Region {
    forker: u64,
    fork_vc: Vc,
    /// Threads whose first chunk already synchronized with the fork.
    synced: Vec<u64>,
}

/// Write-range key for actor writes: actors live in their own id space,
/// disjoint from pool `loop_id`s (which are small counters).
fn actor_key(actor: u64) -> u64 {
    (1u64 << 63) | actor
}

/// Replay `events` (sorted by `(ts_ns, tid)`, as `export_events` returns
/// them) and report every pair of overlapping chunk writes not ordered by
/// the fork/join protocol.
pub fn detect_races(events: &[TimelineEvent]) -> Vec<Race> {
    let mut clocks: HashMap<u64, Vc> = HashMap::new();
    let mut regions: Vec<Region> = Vec::new();
    let mut writes: HashMap<u64, Vec<Write>> = HashMap::new();
    // Actor bookkeeping: the spawner's clock at fork, and which threads
    // wrote on the actor's behalf (to absorb at join).
    let mut actor_fork_vc: HashMap<u64, Vc> = HashMap::new();
    let mut actor_writers: HashMap<u64, Vec<u64>> = HashMap::new();
    let mut races = Vec::new();

    // One chunk/actor write: synchronize with `sync_vc` if given, tick,
    // then race-check against every prior write under the same key.
    let record_write = |clocks: &mut HashMap<u64, Vc>,
                        writes: &mut HashMap<u64, Vec<Write>>,
                        races: &mut Vec<Race>,
                        tid: u64,
                        key: u64,
                        start: u64,
                        len: u64,
                        sync_vc: Option<&Vc>| {
        if let Some(vc) = sync_vc {
            vc_join(clocks.entry(tid).or_default(), vc);
        }
        vc_tick(clocks, tid);
        let vc = clocks.get(&tid).cloned().unwrap_or_default();
        let own = vc.get(&tid).copied().unwrap_or(0);
        let w = Write {
            tid,
            start,
            end: start + len,
            own,
            vc,
        };
        let ws = writes.entry(key).or_default();
        for prev in ws.iter() {
            if prev.tid == tid {
                continue; // program order on one thread
            }
            if prev.end <= w.start || w.end <= prev.start {
                continue; // disjoint ranges
            }
            let prev_hb_w = w.vc.get(&prev.tid).copied().unwrap_or(0) >= prev.own;
            let w_hb_prev = prev.vc.get(&w.tid).copied().unwrap_or(0) >= w.own;
            if !prev_hb_w && !w_hb_prev {
                races.push(Race {
                    loop_id: key,
                    tid_a: prev.tid,
                    range_a: (prev.start, prev.end),
                    tid_b: w.tid,
                    range_b: (w.start, w.end),
                });
            }
        }
        ws.push(w);
    };

    for ev in events {
        match ev.payload {
            EventPayload::Fork { .. } => {
                vc_tick(&mut clocks, ev.tid);
                regions.push(Region {
                    forker: ev.tid,
                    fork_vc: clocks.get(&ev.tid).cloned().unwrap_or_default(),
                    synced: Vec::new(),
                });
            }
            EventPayload::Chunk {
                loop_id,
                start,
                len,
                ..
            } => {
                let mut sync: Option<Vc> = None;
                if let Some(region) = regions.last_mut() {
                    if !region.synced.contains(&ev.tid) {
                        region.synced.push(ev.tid);
                        sync = Some(region.fork_vc.clone());
                    }
                }
                record_write(
                    &mut clocks,
                    &mut writes,
                    &mut races,
                    ev.tid,
                    loop_id,
                    start,
                    len,
                    sync.as_ref(),
                );
            }
            EventPayload::ActorFork { actor } => {
                vc_tick(&mut clocks, ev.tid);
                actor_fork_vc.insert(actor, clocks.get(&ev.tid).cloned().unwrap_or_default());
            }
            EventPayload::ActorWrite { actor, start, len } => {
                // Every actor write synchronizes with the fork snapshot
                // (joining a fixed clock is idempotent), so an actor
                // serviced by several OS threads over its life still
                // orders against the spawn point.
                let sync = actor_fork_vc.get(&actor).cloned();
                let writers = actor_writers.entry(actor).or_default();
                if !writers.contains(&ev.tid) {
                    writers.push(ev.tid);
                }
                record_write(
                    &mut clocks,
                    &mut writes,
                    &mut races,
                    ev.tid,
                    actor_key(actor),
                    start,
                    len,
                    sync.as_ref(),
                );
            }
            EventPayload::ActorJoin { actor } => {
                let writer_clocks: Vec<Vc> = actor_writers
                    .remove(&actor)
                    .unwrap_or_default()
                    .iter()
                    .filter_map(|t| clocks.get(t).cloned())
                    .collect();
                let jc = clocks.entry(ev.tid).or_default();
                for wc in &writer_clocks {
                    vc_join(jc, wc);
                }
                vc_tick(&mut clocks, ev.tid);
            }
            EventPayload::Join { .. } => {
                // Close the innermost region this thread forked.
                if let Some(pos) = regions.iter().rposition(|r| r.forker == ev.tid) {
                    let region = regions.remove(pos);
                    let participant_clocks: Vec<Vc> = region
                        .synced
                        .iter()
                        .filter_map(|t| clocks.get(t).cloned())
                        .collect();
                    let fc = clocks.entry(ev.tid).or_default();
                    for pc in &participant_clocks {
                        vc_join(fc, pc);
                    }
                    vc_tick(&mut clocks, ev.tid);
                }
            }
            _ => {}
        }
    }
    races
}

/// A synthetic event stream with an overlapping-write bug: two worker
/// threads of one region both write indices `[40, 60)` of loop 7. Used by
/// the `--inject-race` self-test — the detector must flag exactly this
/// overlap (and nothing in the surrounding well-formed traffic).
pub fn injected_race_events() -> Vec<TimelineEvent> {
    let ev = |tid, ts_ns, payload| TimelineEvent {
        tid,
        ts_ns,
        name: String::from("static"),
        payload,
    };
    let chunk = |loop_id, start, len| EventPayload::Chunk {
        loop_id,
        start,
        len,
        dur_ns: 100,
    };
    vec![
        // A well-formed region first: disjoint halves of loop 6.
        ev(0, 0, EventPayload::Fork { parts: 2 }),
        ev(1, 10, chunk(6, 0, 50)),
        ev(2, 11, chunk(6, 50, 50)),
        ev(0, 30, EventPayload::Join { parts: 2 }),
        // The buggy region: both workers claim [40, 60) of loop 7.
        ev(0, 40, EventPayload::Fork { parts: 2 }),
        ev(1, 50, chunk(7, 0, 60)),
        ev(2, 51, chunk(7, 40, 60)),
        ev(0, 80, EventPayload::Join { parts: 2 }),
        // A later well-formed region must stay clean (ordered by join).
        ev(0, 90, EventPayload::Fork { parts: 1 }),
        ev(1, 95, chunk(8, 0, 100)),
        ev(0, 99, EventPayload::Join { parts: 1 }),
    ]
}

/// A synthetic sampler-shaped stream with an actor bug: one actor's ring
/// slot 5 is written by two different threads with nothing ordering
/// them — the shape of a sampler whose `take()` leaked onto a second
/// thread without a fork edge. Surrounding well-formed actor traffic
/// (fork → writes → join) must stay clean. Drives `ookamicheck
/// --inject-sampler-race`.
pub fn injected_sampler_race_events() -> Vec<TimelineEvent> {
    let ev = |tid, ts_ns, name: &str, payload| TimelineEvent {
        tid,
        ts_ns,
        name: name.to_string(),
        payload,
    };
    vec![
        // A well-behaved sampler: forked on thread 0, writes disjoint
        // slots from its own thread, joined back.
        ev(0, 0, "actor_fork", EventPayload::ActorFork { actor: 1 }),
        ev(
            3,
            10,
            "actor_write",
            EventPayload::ActorWrite {
                actor: 1,
                start: 1,
                len: 1,
            },
        ),
        ev(
            3,
            20,
            "actor_write",
            EventPayload::ActorWrite {
                actor: 1,
                start: 2,
                len: 1,
            },
        ),
        ev(0, 30, "actor_join", EventPayload::ActorJoin { actor: 1 }),
        // The buggy actor: slot 5 written from two threads, unordered.
        ev(0, 40, "actor_fork", EventPayload::ActorFork { actor: 2 }),
        ev(
            4,
            50,
            "actor_write",
            EventPayload::ActorWrite {
                actor: 2,
                start: 5,
                len: 1,
            },
        ),
        ev(
            5,
            51,
            "actor_write",
            EventPayload::ActorWrite {
                actor: 2,
                start: 5,
                len: 1,
            },
        ),
        ev(0, 60, "actor_join", EventPayload::ActorJoin { actor: 2 }),
        // After the join, a write on the joining thread to the same slot
        // is ordered — must stay clean.
        ev(
            0,
            70,
            "actor_write",
            EventPayload::ActorWrite {
                actor: 2,
                start: 5,
                len: 1,
            },
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn injected_overlap_is_the_only_race() {
        let races = detect_races(&injected_race_events());
        assert_eq!(races.len(), 1, "races: {races:?}");
        let r = &races[0];
        assert_eq!(r.loop_id, 7);
        assert_ne!(r.tid_a, r.tid_b);
        // Ranges overlap on [40, 60).
        assert!(r.range_a.0 < r.range_b.1 && r.range_b.0 < r.range_a.1);
    }

    #[test]
    fn join_orders_across_regions() {
        // Same index range written by different threads in *consecutive*
        // regions is ordered by the join barrier — no race.
        let ev = |tid, ts_ns, payload| TimelineEvent {
            tid,
            ts_ns,
            name: String::from("static"),
            payload,
        };
        let chunk = |loop_id, start, len| EventPayload::Chunk {
            loop_id,
            start,
            len,
            dur_ns: 1,
        };
        // Note loop ids differ per region (the pool allocates fresh ids),
        // so cross-region pairs never even share a key; this test forces
        // the same id to prove the clocks alone are sufficient.
        let events = vec![
            ev(0, 0, EventPayload::Fork { parts: 1 }),
            ev(1, 5, chunk(3, 0, 10)),
            ev(0, 9, EventPayload::Join { parts: 1 }),
            ev(0, 10, EventPayload::Fork { parts: 1 }),
            ev(2, 15, chunk(3, 0, 10)),
            ev(0, 19, EventPayload::Join { parts: 1 }),
        ];
        assert!(detect_races(&events).is_empty());
    }

    #[test]
    fn same_thread_never_races_with_itself() {
        let ev = |tid, ts_ns, payload| TimelineEvent {
            tid,
            ts_ns,
            name: String::from("dynamic"),
            payload,
        };
        let chunk = |start| EventPayload::Chunk {
            loop_id: 1,
            start,
            len: 8,
            dur_ns: 1,
        };
        // One thread re-claiming overlapping dynamic chunks (can't happen
        // in the pool, but must not be reported either way).
        let events = vec![
            ev(0, 0, EventPayload::Fork { parts: 1 }),
            ev(1, 5, chunk(0)),
            ev(1, 6, chunk(4)),
            ev(0, 9, EventPayload::Join { parts: 1 }),
        ];
        assert!(detect_races(&events).is_empty());
    }

    #[test]
    fn injected_sampler_overlap_is_the_only_actor_race() {
        let races = detect_races(&injected_sampler_race_events());
        assert_eq!(races.len(), 1, "races: {races:?}");
        let r = &races[0];
        assert_eq!(r.loop_id, super::actor_key(2));
        assert!(format!("{r}").starts_with("actor 2:"), "{r}");
        assert_ne!(r.tid_a, r.tid_b);
    }

    #[test]
    fn actor_fork_orders_spawner_writes_before_actor_writes() {
        // The spawning thread writes the shared slot before forking the
        // actor; the actor then writes the same slot — ordered by the
        // fork edge, so no race.
        let ev = |tid, ts_ns, payload| TimelineEvent {
            tid,
            ts_ns,
            name: String::from("actor"),
            payload,
        };
        let w = |actor, start| EventPayload::ActorWrite {
            actor,
            start,
            len: 1,
        };
        let ordered = vec![
            ev(0, 0, w(9, 0)),
            ev(0, 1, EventPayload::ActorFork { actor: 9 }),
            ev(7, 5, w(9, 0)),
        ];
        assert!(detect_races(&ordered).is_empty());
        // Without the fork edge the same two writes race.
        let unordered = vec![ev(0, 0, w(9, 0)), ev(7, 5, w(9, 0))];
        assert_eq!(detect_races(&unordered).len(), 1);
    }

    #[test]
    fn actor_join_orders_later_writes() {
        let ev = |tid, ts_ns, payload| TimelineEvent {
            tid,
            ts_ns,
            name: String::from("actor"),
            payload,
        };
        let w = |start| EventPayload::ActorWrite {
            actor: 3,
            start,
            len: 2,
        };
        let events = vec![
            ev(0, 0, EventPayload::ActorFork { actor: 3 }),
            ev(6, 5, w(0)),
            ev(0, 9, EventPayload::ActorJoin { actor: 3 }),
            // Overlapping write after the join, on a third thread? No —
            // on the joiner itself, which absorbed the actor's clock.
            ev(0, 10, w(1)),
        ];
        assert!(detect_races(&events).is_empty());
    }

    #[test]
    fn actor_and_pool_keys_never_collide() {
        // A pool chunk on loop 5 and an actor-5 write overlap in range
        // but live in different key spaces — no cross-talk.
        let ev = |tid, ts_ns, payload| TimelineEvent {
            tid,
            ts_ns,
            name: String::from("mixed"),
            payload,
        };
        let events = vec![
            ev(
                1,
                0,
                EventPayload::Chunk {
                    loop_id: 5,
                    start: 0,
                    len: 8,
                    dur_ns: 1,
                },
            ),
            ev(
                2,
                1,
                EventPayload::ActorWrite {
                    actor: 5,
                    start: 0,
                    len: 8,
                },
            ),
        ];
        assert!(detect_races(&events).is_empty());
    }

    #[test]
    fn unsynced_overlap_without_fork_races() {
        // Two threads writing overlapping ranges with no fork/join
        // structure at all: nothing orders them.
        let ev = |tid, ts_ns, payload| TimelineEvent {
            tid,
            ts_ns,
            name: String::from("static"),
            payload,
        };
        let chunk = |start| EventPayload::Chunk {
            loop_id: 2,
            start,
            len: 16,
            dur_ns: 1,
        };
        let events = vec![ev(1, 0, chunk(0)), ev(2, 1, chunk(8))];
        assert_eq!(detect_races(&events).len(), 1);
    }
}
