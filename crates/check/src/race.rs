//! Happens-before race detector for the pool runtime.
//!
//! Replays a [`TimelineEvent`] stream (PR-4's per-thread tracer, exported
//! by `ookami_core::timeline::export_events`) with vector clocks:
//!
//! * `Fork` on thread `F` opens a region and snapshots `F`'s clock — the
//!   fork point every participant's first chunk synchronizes with;
//! * each `Chunk` on thread `T` joins `T`'s clock with the fork snapshot
//!   (first chunk in the region only), ticks `T`, and records the chunk's
//!   written index range `[start, start+len)` under its `loop_id`;
//! * `Join` on `F` absorbs every participant's clock and ticks `F`, so
//!   writes in *later* regions are ordered after everything before the
//!   barrier.
//!
//! Two chunk writes race when they target the same `loop_id` from
//! different threads, their index ranges overlap, and neither write
//! happens-before the other (vector clocks incomparable). The pool's
//! schedules claim each index exactly once per region, so shipped
//! kernels must report zero races; [`injected_race_events`] builds the
//! overlapping-write stream the self-test (and `ookamicheck
//! --inject-race`) must flag.

use std::collections::HashMap;

use ookami_core::timeline::{EventPayload, TimelineEvent};

/// Sparse vector clock: thread id → logical time.
type Vc = HashMap<u64, u64>;

fn vc_tick(clocks: &mut HashMap<u64, Vc>, tid: u64) {
    *clocks.entry(tid).or_default().entry(tid).or_insert(0) += 1;
}

fn vc_join(dst: &mut Vc, src: &Vc) {
    for (&t, &c) in src {
        let e = dst.entry(t).or_insert(0);
        *e = (*e).max(c);
    }
}

/// One recorded chunk write.
#[derive(Debug, Clone)]
struct Write {
    tid: u64,
    start: u64,
    end: u64,
    /// The writer's own clock component at write time — enough to decide
    /// happens-before against any later snapshot (`w hb x` iff
    /// `x.vc[w.tid] >= w.own`).
    own: u64,
    vc: Vc,
}

/// A pair of overlapping, unordered chunk writes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Race {
    pub loop_id: u64,
    pub tid_a: u64,
    pub range_a: (u64, u64),
    pub tid_b: u64,
    pub range_b: (u64, u64),
}

impl std::fmt::Display for Race {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "loop {}: thread {} writes [{}, {}) unordered with thread {} \
             writing [{}, {})",
            self.loop_id,
            self.tid_a,
            self.range_a.0,
            self.range_a.1,
            self.tid_b,
            self.range_b.0,
            self.range_b.1
        )
    }
}

/// An open fork/join region.
struct Region {
    forker: u64,
    fork_vc: Vc,
    /// Threads whose first chunk already synchronized with the fork.
    synced: Vec<u64>,
}

/// Replay `events` (sorted by `(ts_ns, tid)`, as `export_events` returns
/// them) and report every pair of overlapping chunk writes not ordered by
/// the fork/join protocol.
pub fn detect_races(events: &[TimelineEvent]) -> Vec<Race> {
    let mut clocks: HashMap<u64, Vc> = HashMap::new();
    let mut regions: Vec<Region> = Vec::new();
    let mut writes: HashMap<u64, Vec<Write>> = HashMap::new();
    let mut races = Vec::new();

    for ev in events {
        match ev.payload {
            EventPayload::Fork { .. } => {
                vc_tick(&mut clocks, ev.tid);
                regions.push(Region {
                    forker: ev.tid,
                    fork_vc: clocks.get(&ev.tid).cloned().unwrap_or_default(),
                    synced: Vec::new(),
                });
            }
            EventPayload::Chunk {
                loop_id,
                start,
                len,
                ..
            } => {
                if let Some(region) = regions.last_mut() {
                    if !region.synced.contains(&ev.tid) {
                        region.synced.push(ev.tid);
                        let fork_vc = region.fork_vc.clone();
                        vc_join(clocks.entry(ev.tid).or_default(), &fork_vc);
                    }
                }
                vc_tick(&mut clocks, ev.tid);
                let vc = clocks.get(&ev.tid).cloned().unwrap_or_default();
                let own = vc.get(&ev.tid).copied().unwrap_or(0);
                let w = Write {
                    tid: ev.tid,
                    start,
                    end: start + len,
                    own,
                    vc,
                };
                let ws = writes.entry(loop_id).or_default();
                for prev in ws.iter() {
                    if prev.tid == ev.tid {
                        continue; // program order on one thread
                    }
                    if prev.end <= w.start || w.end <= prev.start {
                        continue; // disjoint ranges
                    }
                    let prev_hb_w = w.vc.get(&prev.tid).copied().unwrap_or(0) >= prev.own;
                    let w_hb_prev = prev.vc.get(&w.tid).copied().unwrap_or(0) >= w.own;
                    if !prev_hb_w && !w_hb_prev {
                        races.push(Race {
                            loop_id,
                            tid_a: prev.tid,
                            range_a: (prev.start, prev.end),
                            tid_b: w.tid,
                            range_b: (w.start, w.end),
                        });
                    }
                }
                ws.push(w);
            }
            EventPayload::Join { .. } => {
                // Close the innermost region this thread forked.
                if let Some(pos) = regions.iter().rposition(|r| r.forker == ev.tid) {
                    let region = regions.remove(pos);
                    let participant_clocks: Vec<Vc> = region
                        .synced
                        .iter()
                        .filter_map(|t| clocks.get(t).cloned())
                        .collect();
                    let fc = clocks.entry(ev.tid).or_default();
                    for pc in &participant_clocks {
                        vc_join(fc, pc);
                    }
                    vc_tick(&mut clocks, ev.tid);
                }
            }
            _ => {}
        }
    }
    races
}

/// A synthetic event stream with an overlapping-write bug: two worker
/// threads of one region both write indices `[40, 60)` of loop 7. Used by
/// the `--inject-race` self-test — the detector must flag exactly this
/// overlap (and nothing in the surrounding well-formed traffic).
pub fn injected_race_events() -> Vec<TimelineEvent> {
    let ev = |tid, ts_ns, payload| TimelineEvent {
        tid,
        ts_ns,
        name: String::from("static"),
        payload,
    };
    let chunk = |loop_id, start, len| EventPayload::Chunk {
        loop_id,
        start,
        len,
        dur_ns: 100,
    };
    vec![
        // A well-formed region first: disjoint halves of loop 6.
        ev(0, 0, EventPayload::Fork { parts: 2 }),
        ev(1, 10, chunk(6, 0, 50)),
        ev(2, 11, chunk(6, 50, 50)),
        ev(0, 30, EventPayload::Join { parts: 2 }),
        // The buggy region: both workers claim [40, 60) of loop 7.
        ev(0, 40, EventPayload::Fork { parts: 2 }),
        ev(1, 50, chunk(7, 0, 60)),
        ev(2, 51, chunk(7, 40, 60)),
        ev(0, 80, EventPayload::Join { parts: 2 }),
        // A later well-formed region must stay clean (ordered by join).
        ev(0, 90, EventPayload::Fork { parts: 1 }),
        ev(1, 95, chunk(8, 0, 100)),
        ev(0, 99, EventPayload::Join { parts: 1 }),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn injected_overlap_is_the_only_race() {
        let races = detect_races(&injected_race_events());
        assert_eq!(races.len(), 1, "races: {races:?}");
        let r = &races[0];
        assert_eq!(r.loop_id, 7);
        assert_ne!(r.tid_a, r.tid_b);
        // Ranges overlap on [40, 60).
        assert!(r.range_a.0 < r.range_b.1 && r.range_b.0 < r.range_a.1);
    }

    #[test]
    fn join_orders_across_regions() {
        // Same index range written by different threads in *consecutive*
        // regions is ordered by the join barrier — no race.
        let ev = |tid, ts_ns, payload| TimelineEvent {
            tid,
            ts_ns,
            name: String::from("static"),
            payload,
        };
        let chunk = |loop_id, start, len| EventPayload::Chunk {
            loop_id,
            start,
            len,
            dur_ns: 1,
        };
        // Note loop ids differ per region (the pool allocates fresh ids),
        // so cross-region pairs never even share a key; this test forces
        // the same id to prove the clocks alone are sufficient.
        let events = vec![
            ev(0, 0, EventPayload::Fork { parts: 1 }),
            ev(1, 5, chunk(3, 0, 10)),
            ev(0, 9, EventPayload::Join { parts: 1 }),
            ev(0, 10, EventPayload::Fork { parts: 1 }),
            ev(2, 15, chunk(3, 0, 10)),
            ev(0, 19, EventPayload::Join { parts: 1 }),
        ];
        assert!(detect_races(&events).is_empty());
    }

    #[test]
    fn same_thread_never_races_with_itself() {
        let ev = |tid, ts_ns, payload| TimelineEvent {
            tid,
            ts_ns,
            name: String::from("dynamic"),
            payload,
        };
        let chunk = |start| EventPayload::Chunk {
            loop_id: 1,
            start,
            len: 8,
            dur_ns: 1,
        };
        // One thread re-claiming overlapping dynamic chunks (can't happen
        // in the pool, but must not be reported either way).
        let events = vec![
            ev(0, 0, EventPayload::Fork { parts: 1 }),
            ev(1, 5, chunk(0)),
            ev(1, 6, chunk(4)),
            ev(0, 9, EventPayload::Join { parts: 1 }),
        ];
        assert!(detect_races(&events).is_empty());
    }

    #[test]
    fn unsynced_overlap_without_fork_races() {
        // Two threads writing overlapping ranges with no fork/join
        // structure at all: nothing orders them.
        let ev = |tid, ts_ns, payload| TimelineEvent {
            tid,
            ts_ns,
            name: String::from("static"),
            payload,
        };
        let chunk = |start| EventPayload::Chunk {
            loop_id: 2,
            start,
            len: 16,
            dur_ns: 1,
        };
        let events = vec![ev(1, 0, chunk(0)), ev(2, 1, chunk(8))];
        assert_eq!(detect_races(&events).len(), 1);
    }
}
