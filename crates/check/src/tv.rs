//! Translation validation for the trace compiler (DESIGN.md §8.2).
//!
//! The compiler in `ookami_sve::compile` runs three passes (constant
//! fold, predicate simplification, dead-def elimination) and then folds
//! a static counter recipe into the emission plan. Each pass is
//! correct-by-construction in the compiler's head; this module makes it
//! correct-by-proof per run: [`validate_trail`] takes the per-pass
//! snapshot trail ([`ookami_sve::tv::pass_trail`]) and proves every
//! adjacent stage pair observationally equivalent by abstract
//! interpretation, trusting nothing the compiler claims beyond the
//! substitution witness — which it re-justifies from the source stage.
//!
//! Per transition the prover discharges:
//!
//! * **constant folds** — a target-stage setup constant replacing a
//!   source body op must re-evaluate bit-for-bit through the same lane
//!   functions, and the op's governing predicate must be provably
//!   all-true (`TV0002` otherwise);
//! * **witness legality** — every `psubst` entry needs a dissolving
//!   `pand` with an all-true operand, every `vsubst` entry a full-mask
//!   `sel`, in the source stage (`TV0002`);
//! * **definition matching** — every target definition must equal a
//!   source definition rewritten through the witness (`TV0001`);
//! * **effects and observables** — scatters, overhead, libm calls,
//!   outputs, taps and carries must be preserved exactly (`TV0001`,
//!   `TV0006`, `TV0007`);
//! * **lattice facts** — a store predicate must not widen from
//!   `Bounded` to `Wide` and an output's NaN class must not weaken from
//!   canonical-quiet to arbitrary (`TV0005`);
//! * **index bounds** — a gather/scatter bounds proof (`OC0004`) that
//!   held before the pass must still hold after it (`TV0003`);
//! * **counter recipe** — the plan's statically pre-folded [`Snapshot`]
//!   must match an independent re-derivation from the recorded body
//!   (`TV0004`).
//!
//! Each transition also runs the full static verifier on the
//! target-stage program, so a pass that manufactures an undefined use
//! or a double definition is caught by the existing `OCxxxx` checks;
//! intermediate stages keep only verifier *errors* (lints like dead
//! defs are transient by design until DCE runs).

use std::collections::{HashMap, HashSet};

use crate::diag::{Code, Diag};
use crate::program::Program;
use crate::verify::verify;
use ookami_core::obs::{Counter, Snapshot, COUNTERS};
use ookami_sve::fexpa::fexpa_lane;
use ookami_sve::lanes;
use ookami_sve::trace::{top_class, top_def, top_pg, CvtOp, ShiftOp, Slot, TOp, Trace};
use ookami_sve::tv::{self, PassStage, PassTrail, BLOCK_LANES};
use ookami_sve::TraceBuilder;
use ookami_uarch::meta::{
    lane_accounting, nan_class_transfer, pred_transfer, LaneAccounting, NanClass, PredDom,
};
use ookami_uarch::OpClass;

// ---------------------------------------------------------------------------
// Witness
// ---------------------------------------------------------------------------

/// The pass's slot-substitution witness, resolvable to fixpoint. Slots
/// are never renumbered by any pass, so both sides of a pair live in one
/// shared slot space and chasing is idempotent on already-resolved
/// operands.
struct Witness {
    p: HashMap<Slot, Slot>,
    v: HashMap<Slot, Slot>,
}

impl Witness {
    fn from_stage(stage: &PassStage) -> Witness {
        Witness {
            p: stage.psubst.iter().copied().collect(),
            v: stage.vsubst.iter().copied().collect(),
        }
    }

    fn chase(map: &HashMap<Slot, Slot>, mut s: Slot) -> Slot {
        // The compiler cannot produce substitution cycles, but the
        // witness under validation is untrusted — bound the walk.
        for _ in 0..=map.len() {
            match map.get(&s) {
                Some(&n) => s = n,
                None => break,
            }
        }
        s
    }

    fn rp(&self, s: Slot) -> Slot {
        Self::chase(&self.p, s)
    }

    fn rv(&self, s: Slot) -> Slot {
        Self::chase(&self.v, s)
    }
}

// ---------------------------------------------------------------------------
// Independent constant-fold evaluation
// ---------------------------------------------------------------------------

/// Evaluate one op over known constant lanes, mirroring the compiler's
/// fold through the same lane functions the replayer uses — a verified
/// fold is bit-identical to what replay would have computed.
fn eval_fold(op: &TOp, consts: &HashMap<Slot, Vec<u64>>, vl: usize) -> Option<Vec<u64>> {
    let k = |s: Slot| consts.get(&s);
    let lanes1 =
        |a: &Vec<u64>, f: &dyn Fn(u64) -> u64| -> Vec<u64> { a.iter().map(|&x| f(x)).collect() };
    Some(match *op {
        TOp::Bin { op, a, b, .. } => {
            let (a, b) = (k(a)?, k(b)?);
            (0..vl).map(|l| tv::eval_bin(op, a[l], b[l])).collect()
        }
        TOp::Un { op, a, .. } => lanes1(k(a)?, &|x| tv::eval_un(op, x)),
        TOp::Fmla { neg, c, a, b, .. } => {
            let (c, a, b) = (k(c)?, k(a)?, k(b)?);
            (0..vl)
                .map(|l| {
                    let av = f64::from_bits(a[l]);
                    let av = if neg { -av } else { av };
                    lanes::dn(av.mul_add(f64::from_bits(b[l]), f64::from_bits(c[l]))).to_bits()
                })
                .collect()
        }
        TOp::Est { rsqrt, a, .. } => {
            let f: fn(u64) -> u64 = if rsqrt {
                lanes::rsqrte_lane
            } else {
                lanes::recpe_lane
            };
            lanes1(k(a)?, &f)
        }
        TOp::NewtonStep { rsqrt, a, b, .. } => {
            let (a, b) = (k(a)?, k(b)?);
            (0..vl)
                .map(|l| {
                    let (x, y) = (f64::from_bits(a[l]), f64::from_bits(b[l]));
                    if rsqrt {
                        lanes::rsqrts_lane(x, y).to_bits()
                    } else {
                        lanes::recps_lane(x, y).to_bits()
                    }
                })
                .collect()
        }
        TOp::Fexpa { a, .. } => lanes1(k(a)?, &|x| fexpa_lane(x).to_bits()),
        TOp::Ftmad { a, b, coeff, .. } => {
            let (a, b) = (k(a)?, k(b)?);
            (0..vl)
                .map(|l| {
                    lanes::dn(f64::from_bits(a[l]).mul_add(f64::from_bits(b[l]), coeff)).to_bits()
                })
                .collect()
        }
        TOp::Shift { op, a, sh, .. } => {
            let f = move |x: u64| match op {
                ShiftOp::Lsl => x << sh,
                ShiftOp::Lsr => x >> sh,
                ShiftOp::Asr => ((x as i64) >> sh) as u64,
            };
            lanes1(k(a)?, &f)
        }
        TOp::Cvt { op, a, .. } => {
            let f: fn(u64) -> u64 = match op {
                CvtOp::Ucvtf => lanes::ucvtf_lane,
                CvtOp::Fcvtns => lanes::fcvtns_lane,
                CvtOp::Fcvtzs => lanes::fcvtzs_lane,
                CvtOp::Scvtf => lanes::scvtf_lane,
            };
            lanes1(k(a)?, &f)
        }
        _ => return None,
    })
}

// ---------------------------------------------------------------------------
// Abstract-domain walks
// ---------------------------------------------------------------------------

/// `{Bounded, Wide}` facts for every predicate defined in a stage, via
/// the shared transfer function. Unlike the compiler's internal pass
/// bookkeeping, compares resolve through the *verifier's* semantics: a
/// compare inherits its governing predicate's domain.
fn pred_doms(t: &Trace) -> HashMap<Slot, PredDom> {
    let mut dom: HashMap<Slot, PredDom> = HashMap::new();
    if let Some(lp) = t.loop_pred {
        dom.insert(lp, PredDom::Bounded);
    }
    let get = |dom: &HashMap<Slot, PredDom>, s: Slot| dom.get(&s).copied().unwrap_or(PredDom::Wide);
    for op in t.setup.iter().chain(t.body.iter()) {
        if let (None, Some(d)) = top_def(op) {
            let v = match *op {
                TOp::Pand { a, b, .. } => {
                    pred_transfer(OpClass::PredOp, &[get(&dom, a), get(&dom, b)])
                }
                TOp::Cmp { pg, .. } | TOp::CmpNeImm { pg, .. } => {
                    pred_transfer(OpClass::FCmp, &[get(&dom, pg)])
                }
                _ => PredDom::Wide,
            };
            dom.insert(d, v);
        }
    }
    dom
}

/// NaN-class facts for every vector slot in a stage. Inputs and carry
/// initials are `Arbitrary` (lanes arrive from memory / a previous
/// iteration); exact constants classify by their literal lanes; ops go
/// through the shared transfer.
fn nan_classes(t: &Trace) -> HashMap<Slot, NanClass> {
    let mut cls: HashMap<Slot, NanClass> = HashMap::new();
    let mut pinned: HashSet<Slot> = t.inputs.iter().copied().collect();
    for &(init, _) in &t.carries {
        pinned.insert(init);
    }
    for &s in &pinned {
        cls.insert(s, NanClass::Arbitrary);
    }
    let get = |cls: &HashMap<Slot, NanClass>, s: Slot| {
        cls.get(&s).copied().unwrap_or(NanClass::Arbitrary)
    };
    for op in t.setup.iter().chain(t.body.iter()) {
        let (vdef, _) = top_def(op);
        let Some(d) = vdef else { continue };
        if pinned.contains(&d) {
            continue;
        }
        let v = match op {
            TOp::ConstV { lanes, .. } => {
                if lanes
                    .iter()
                    .all(|&x| !f64::from_bits(x).is_nan() || x == lanes::DEFAULT_NAN)
                {
                    NanClass::CanonicalQuiet
                } else {
                    NanClass::Arbitrary
                }
            }
            _ => match top_class(op) {
                Some(class) => {
                    let srcs: Vec<NanClass> = tv::op_v_srcs(op)
                        .into_iter()
                        .map(|s| get(&cls, s))
                        .collect();
                    nan_class_transfer(class, &srcs)
                }
                None => NanClass::Arbitrary,
            },
        };
        cls.insert(d, v);
    }
    cls
}

// ---------------------------------------------------------------------------
// Diag anchoring
// ---------------------------------------------------------------------------

/// Body-op index → instruction index in the lowered stream (`Overhead`
/// expands to `int_ops` IntAlu plus one Branch; everything else is one
/// instruction). The second return is the stream length.
fn body_anchors(t: &Trace) -> (Vec<usize>, usize) {
    let mut anchors = Vec::with_capacity(t.body.len());
    let mut i = 0usize;
    for op in &t.body {
        anchors.push(i);
        i += match op {
            TOp::Overhead { int_ops } => int_ops + 1,
            _ => 1,
        };
    }
    (anchors, i)
}

fn clamp(i: usize, len: usize) -> usize {
    if len == 0 {
        0
    } else {
        i.min(len - 1)
    }
}

fn slot_name(vdef: Option<Slot>, pdef: Option<Slot>) -> String {
    match (vdef, pdef) {
        (Some(v), _) => format!("v{v}"),
        (_, Some(p)) => format!("p{p}"),
        _ => "<effect>".into(),
    }
}

fn op_kind(op: &TOp) -> &'static str {
    match op {
        TOp::Scatter { .. } => "scatter",
        TOp::Overhead { .. } => "overhead",
        TOp::LibmCall => "libm call",
        _ => "op",
    }
}

// ---------------------------------------------------------------------------
// Pair validation
// ---------------------------------------------------------------------------

/// Prove target stage `t` observationally equivalent to source stage `s`
/// under `t`'s witness. Returns only TV diagnostics; [`validate_pair_full`]
/// merges in the target-stage verifier run.
pub fn validate_pair(s: &PassStage, t: &PassStage) -> Vec<Diag> {
    let mut diags = Vec::new();
    let st = &s.trace;
    let tt = &t.trace;
    let w = Witness::from_stage(t);
    let (anchors, n_instrs) = body_anchors(tt);
    let last = clamp(n_instrs.saturating_sub(1), n_instrs);

    // Source-stage definition map and the fold-time "provably all-true"
    // predicate set (setup ptrues; the loop predicate is Bounded, not
    // full — its last block is partial).
    let mut s_def: HashMap<(bool, Slot), &TOp> = HashMap::new();
    let mut s_ptrues: HashSet<Slot> = HashSet::new();
    for op in st.setup.iter().chain(st.body.iter()) {
        let (vd, pd) = top_def(op);
        if let Some(v) = vd {
            s_def.insert((false, v), op);
        }
        if let Some(p) = pd {
            s_def.insert((true, p), op);
        }
        if let TOp::Ptrue { dst } = *op {
            s_ptrues.insert(dst);
        }
    }
    let is_full = |slot: Slot| s_ptrues.contains(&w.rp(slot));

    // --- Constant-fold claims: a target setup constant whose slot the
    // source defines with a body op is the fold pass asserting that op
    // evaluates to these lanes. Re-derive independently, in source body
    // order so chained folds see earlier verified results.
    let t_setup_consts: HashMap<Slot, &Vec<u64>> = tt
        .setup
        .iter()
        .filter_map(|op| match op {
            TOp::ConstV { dst, lanes } => Some((*dst, lanes)),
            _ => None,
        })
        .collect();
    let mut known: HashMap<Slot, Vec<u64>> = st
        .setup
        .iter()
        .filter_map(|op| match op {
            TOp::ConstV { dst, lanes } => Some((*dst, lanes.clone())),
            _ => None,
        })
        .collect();
    let mut claimed: HashSet<Slot> = HashSet::new();
    for op in &st.body {
        let Some(d) = top_def(op).0 else { continue };
        let Some(&lanes) = t_setup_consts.get(&d) else {
            continue;
        };
        claimed.insert(d);
        if let Some(pg) = top_pg(op) {
            if !s_ptrues.contains(&pg) {
                diags.push(Diag::new(
                    Code::WitnessBroken,
                    0,
                    None,
                    format!(
                        "v{d} folded to a constant under p{pg}, which is not provably all-true"
                    ),
                ));
            }
        }
        match eval_fold(op, &known, st.vl) {
            Some(ev) if ev == *lanes => {}
            Some(_) => diags.push(Diag::new(
                Code::WitnessBroken,
                0,
                None,
                format!("folded constant for v{d} does not match independent re-evaluation"),
            )),
            None => diags.push(Diag::new(
                Code::WitnessBroken,
                0,
                None,
                format!("v{d} folded to a constant but its sources are not all setup constants"),
            )),
        }
        known.insert(d, lanes.clone());
    }

    // --- Witness legality: only substitutions *introduced* by this
    // transition need justification (a carried-over witness was already
    // proved against the stage that introduced it).
    let prior_p: HashSet<(Slot, Slot)> = s.psubst.iter().copied().collect();
    for &(x, _) in t.psubst.iter().filter(|e| !prior_p.contains(e)) {
        let ok = st.setup.iter().chain(st.body.iter()).any(|op| match *op {
            TOp::Pand { dst, a, b } if dst == x => {
                (is_full(a) && w.rp(b) == w.rp(x)) || (is_full(b) && w.rp(a) == w.rp(x))
            }
            _ => false,
        });
        if !ok {
            diags.push(Diag::new(
                Code::WitnessBroken,
                0,
                None,
                format!(
                    "substitution p{x} -> p{} has no justifying pand dissolution in the source",
                    w.rp(x)
                ),
            ));
        }
    }
    let prior_v: HashSet<(Slot, Slot)> = s.vsubst.iter().copied().collect();
    for &(x, _) in t.vsubst.iter().filter(|e| !prior_v.contains(e)) {
        let ok = st.setup.iter().chain(st.body.iter()).any(|op| match *op {
            TOp::Sel { dst, pg, a, .. } if dst == x => is_full(pg) && w.rv(a) == w.rv(x),
            _ => false,
        });
        if !ok {
            diags.push(Diag::new(
                Code::WitnessBroken,
                0,
                None,
                format!(
                    "substitution v{x} -> v{} has no justifying full-mask sel in the source",
                    w.rv(x)
                ),
            ));
        }
    }

    // --- Definition matching: every target def must be a source def
    // rewritten through the witness (fold claims were handled above;
    // dropped source defs are fine — deadness is safe once effects and
    // observables are proved below).
    let rv = |s: Slot| w.rv(s);
    let rp = |s: Slot| w.rp(s);
    for (op, anchor) in tt.setup.iter().map(|op| (op, 0usize)).chain(
        tt.body
            .iter()
            .enumerate()
            .map(|(k, op)| (op, clamp(anchors[k], n_instrs))),
    ) {
        let (vd, pd) = top_def(op);
        if vd.is_none() && pd.is_none() {
            continue;
        }
        if let Some(v) = vd {
            if claimed.contains(&v) {
                continue;
            }
        }
        let key = match (vd, pd) {
            (Some(v), _) => (false, v),
            (_, Some(p)) => (true, p),
            _ => unreachable!(),
        };
        match s_def.get(&key) {
            None => diags.push(Diag::new(
                Code::ObservableMismatch,
                anchor,
                None,
                format!(
                    "target defines {} but the source stage has no matching definition",
                    slot_name(vd, pd)
                ),
            )),
            Some(sop) => {
                if tv::rewrite_op(sop, &rv, &rp) != *op {
                    diags.push(Diag::new(
                        Code::ObservableMismatch,
                        anchor,
                        None,
                        format!(
                            "definition of {} does not match the source op under the witness",
                            slot_name(vd, pd)
                        ),
                    ));
                }
            }
        }
    }

    // --- Effects: matched positionally — passes may drop or rewrite
    // defs but never reorder, drop or invent a scatter/overhead/libm
    // effect.
    fn effects(t: &Trace) -> Vec<(usize, &TOp)> {
        t.body
            .iter()
            .enumerate()
            .filter(|(_, op)| top_def(op) == (None, None))
            .collect()
    }
    let s_eff = effects(st);
    let t_eff = effects(tt);
    for (j, ((_, sop), (tk, top))) in s_eff.iter().zip(t_eff.iter()).enumerate() {
        if tv::rewrite_op(sop, &rv, &rp) != **top {
            diags.push(Diag::new(
                Code::ObservableMismatch,
                clamp(anchors[*tk], n_instrs),
                None,
                format!(
                    "effect #{j} ({}) does not match the source stage under the witness",
                    op_kind(top)
                ),
            ));
        }
    }
    for (j, (_, sop)) in s_eff.iter().enumerate().skip(t_eff.len()) {
        diags.push(Diag::new(
            Code::EffectDropped,
            last,
            None,
            format!(
                "source effect #{j} ({}) has no counterpart in the target",
                op_kind(sop)
            ),
        ));
    }
    for (j, (tk, top)) in t_eff.iter().enumerate().skip(s_eff.len()) {
        diags.push(Diag::new(
            Code::EffectAdded,
            clamp(anchors[*tk], n_instrs),
            None,
            format!(
                "target effect #{j} ({}) does not exist in the source",
                op_kind(top)
            ),
        ));
    }

    // --- Observables: outputs, taps and carries, resolved through the
    // witness on both sides (chasing is idempotent on the target, whose
    // references were already rewritten by the pass).
    let mut check_slots = |label: &str, ss: &[Slot], ts: &[Slot], pred: bool| {
        if ss.len() != ts.len() {
            diags.push(Diag::new(
                Code::ObservableMismatch,
                last,
                None,
                format!(
                    "source has {} {label}(s), target has {}",
                    ss.len(),
                    ts.len()
                ),
            ));
        }
        let r = |s: Slot| if pred { w.rp(s) } else { w.rv(s) };
        let dom = if pred { "p" } else { "v" };
        for (j, (&a, &b)) in ss.iter().zip(ts.iter()).enumerate() {
            if r(a) != r(b) {
                diags.push(Diag::new(
                    Code::ObservableMismatch,
                    last,
                    None,
                    format!(
                        "{label} {j} resolves to {dom}{} in the source but {dom}{} in the target",
                        r(a),
                        r(b)
                    ),
                ));
            }
        }
    };
    check_slots("output", &st.outputs, &tt.outputs, false);
    check_slots("vector tap", &st.tap_v, &tt.tap_v, false);
    check_slots("pred tap", &st.tap_p, &tt.tap_p, true);
    let (s_ci, s_cu): (Vec<Slot>, Vec<Slot>) = st.carries.iter().copied().unzip();
    let (t_ci, t_cu): (Vec<Slot>, Vec<Slot>) = tt.carries.iter().copied().unzip();
    check_slots("carry init", &s_ci, &t_ci, false);
    check_slots("carry update", &s_cu, &t_cu, false);

    // --- Lattice facts. (a) A store predicate that was provably inside
    // the loop bound must stay provable; (b) an output whose NaNs were
    // provably canonical-quiet must stay so.
    let dom_s = pred_doms(st);
    let dom_t = pred_doms(tt);
    let scatters = |t: &Trace| -> Vec<(usize, Slot)> {
        t.body
            .iter()
            .enumerate()
            .filter_map(|(k, op)| match *op {
                TOp::Scatter { pg, .. } => Some((k, pg)),
                _ => None,
            })
            .collect()
    };
    for (j, ((_, spg), (tk, tpg))) in scatters(st).iter().zip(scatters(tt).iter()).enumerate() {
        let sd = dom_s.get(spg).copied().unwrap_or(PredDom::Wide);
        let td = dom_t.get(tpg).copied().unwrap_or(PredDom::Wide);
        if sd == PredDom::Bounded && td == PredDom::Wide {
            diags.push(Diag::new(
                Code::LatticeWeakened,
                clamp(anchors[*tk], n_instrs),
                None,
                format!("scatter #{j} predicate widened from Bounded to Wide across the pass"),
            ));
        }
    }
    let nan_s = nan_classes(st);
    let nan_t = nan_classes(tt);
    for (j, (&a, &b)) in st.outputs.iter().zip(tt.outputs.iter()).enumerate() {
        let sc = nan_s.get(&a).copied().unwrap_or(NanClass::Arbitrary);
        let tc = nan_t.get(&b).copied().unwrap_or(NanClass::Arbitrary);
        if sc == NanClass::CanonicalQuiet && tc == NanClass::Arbitrary {
            diags.push(Diag::new(
                Code::LatticeWeakened,
                last,
                None,
                format!("output {j} NaN class weakened from canonical-quiet to arbitrary"),
            ));
        }
    }

    diags
}

/// [`validate_pair`] plus the target-stage verifier run (errors only —
/// mid-pipeline lints like dead defs are transient until DCE) and the
/// `TV0003` index-widening cross-check, merged and sorted the same way
/// [`verify`] sorts. Returns the target-stage program for rendering.
pub fn validate_pair_full(name: &str, s: &PassStage, t: &PassStage) -> (Program, Vec<Diag>) {
    let sp = Program::from_trace(&format!("{name}@{}", s.name), &s.trace);
    let tp = Program::from_trace(&format!("{name}@{}", t.name), &t.trace);
    let s_oob = verify(&sp).iter().any(|d| d.code == Code::OutOfBoundsIndex);
    let t_verify: Vec<Diag> = verify(&tp).into_iter().filter(Diag::is_error).collect();
    let mut diags = validate_pair(s, t);
    if !s_oob {
        for d in &t_verify {
            if d.code == Code::OutOfBoundsIndex {
                diags.push(Diag::new(
                    Code::IndexWidened,
                    d.index,
                    None,
                    "pass introduced an index-bounds violation the source stage did not have"
                        .into(),
                ));
            }
        }
    }
    diags.extend(t_verify);
    diags.sort_by(|a, b| (a.index, a.code.as_str()).cmp(&(b.index, b.code.as_str())));
    (tp, diags)
}

// ---------------------------------------------------------------------------
// Counter-recipe exactness
// ---------------------------------------------------------------------------

/// Re-derive the plan's statically pre-folded per-block counter
/// [`Snapshot`] from the *recorded* body (the native engine counts the
/// pre-pass stream) and compare bit-for-bit against what the compiler
/// baked into the plan. `None` = the trace has no native plan, nothing
/// to check.
pub fn verify_counters(trail: &PassTrail) -> Option<Vec<Diag>> {
    let plan = trail.plan.as_ref()?;
    let rec = &trail.stages[0].trace;
    let fin = trail.stages.last().expect("trail has stages");
    let w = Witness::from_stage(fin);
    let (_, n_instrs) = body_anchors(&fin.trace);
    let last = clamp(n_instrs.saturating_sub(1), n_instrs);
    let mut diags = Vec::new();

    let vl = rec.vl;
    let blocks = (BLOCK_LANES / vl) as u64;
    if plan.blocks != blocks {
        diags.push(Diag::new(
            Code::CounterRecipeMismatch,
            last,
            None,
            format!("plan block count {} does not match {blocks}", plan.blocks),
        ));
        return Some(diags);
    }

    // Statically-full predicates, re-derived: the loop predicate (full
    // on every full block by construction) plus every setup predicate
    // that materializes all-true at record width.
    let mut full: HashSet<Slot> = tv::setup_full_preds(&fin.trace).into_iter().collect();
    if let Some(lp) = fin.trace.loop_pred {
        full.insert(lp);
    }

    let lanes_w = BLOCK_LANES as u64;
    let mut snap = Snapshot::zero();
    snap.set(
        Counter::BytesLoaded,
        (fin.trace.inputs.len() * 8 * BLOCK_LANES) as u64,
    );
    for op in &rec.body {
        match *op {
            TOp::Fexpa { .. } => tv::acct_bump_fexpa(&mut snap, blocks, lanes_w),
            TOp::Overhead { int_ops } => {
                tv::acct_bump(&mut snap, OpClass::IntAlu, blocks * int_ops as u64, 0, 1);
                tv::acct_bump(&mut snap, OpClass::Branch, blocks, 0, 1);
            }
            TOp::LibmCall => tv::acct_bump(&mut snap, OpClass::ScalarLibmCall, blocks, 0, 1),
            TOp::Gather { .. } | TOp::Scatter { .. } => {
                diags.push(Diag::new(
                    Code::CounterRecipeMismatch,
                    last,
                    None,
                    "native plan exists for a trace with gather/scatter (gate breached)".into(),
                ));
                return Some(diags);
            }
            _ => {
                let class = top_class(op).expect("body op lowers to a class");
                match lane_accounting(class) {
                    LaneAccounting::Governed => {
                        let pg = w.rp(top_pg(op).expect("governed op has a predicate"));
                        if full.contains(&pg) {
                            tv::acct_bump(&mut snap, class, blocks, lanes_w, 1);
                        }
                        // Non-full masks are counted at runtime by row
                        // popcount — not part of the static recipe.
                    }
                    LaneAccounting::FullVector => {
                        tv::acct_bump(&mut snap, class, blocks, lanes_w, 1);
                    }
                    LaneAccounting::ResultPop => match *op {
                        TOp::Pand { a, b, .. } => {
                            if full.contains(&w.rp(a)) && full.contains(&w.rp(b)) {
                                tv::acct_bump(&mut snap, class, blocks, lanes_w, 1);
                            }
                        }
                        _ => unreachable!("ResultPop lowers only from pand"),
                    },
                    LaneAccounting::Scalar => tv::acct_bump(&mut snap, class, blocks, 0, 1),
                }
            }
        }
    }

    if snap != plan.acct_static {
        let mut diffs = Vec::new();
        for c in COUNTERS {
            let (got, want) = (snap.get(c), plan.acct_static.get(c));
            if got != want {
                diffs.push(format!("{}: re-derived {got}, plan has {want}", c.name()));
            }
        }
        diags.push(Diag::new(
            Code::CounterRecipeMismatch,
            last,
            None,
            format!("static counter recipe mismatch: {}", diffs.join("; ")),
        ));
    }
    Some(diags)
}

// ---------------------------------------------------------------------------
// Trail-level API
// ---------------------------------------------------------------------------

/// The validation result for one pass transition: the target-stage
/// program (for rendering) and the merged diagnostics.
#[derive(Debug)]
pub struct StageReport {
    /// Target-stage pass name (`fold`, `pred_simplify`, `dce`).
    pub stage: &'static str,
    pub program: Program,
    pub diags: Vec<Diag>,
}

/// The full translation-validation verdict for one trace.
#[derive(Debug)]
pub struct TvReport {
    pub name: String,
    /// One entry per pass transition, in pipeline order.
    pub stages: Vec<StageReport>,
    /// Whether the counter recipe was checked (false = no native plan).
    pub counters_checked: bool,
    pub counter_diags: Vec<Diag>,
}

impl TvReport {
    pub fn errors(&self) -> usize {
        self.stages
            .iter()
            .flat_map(|s| s.diags.iter())
            .chain(self.counter_diags.iter())
            .filter(|d| d.is_error())
            .count()
    }

    pub fn is_ok(&self) -> bool {
        self.errors() == 0
    }
}

/// Validate every adjacent stage pair of a pass trail plus the counter
/// recipe.
pub fn validate_trail(name: &str, trail: &PassTrail) -> TvReport {
    let mut stages = Vec::new();
    for k in 1..trail.stages.len() {
        let (program, diags) = validate_pair_full(name, &trail.stages[k - 1], &trail.stages[k]);
        stages.push(StageReport {
            stage: trail.stages[k].name,
            program,
            diags,
        });
    }
    let (counters_checked, counter_diags) = match verify_counters(trail) {
        Some(d) => (true, d),
        None => (false, Vec::new()),
    };
    TvReport {
        name: name.to_string(),
        stages,
        counters_checked,
        counter_diags,
    }
}

/// Run the compiler's pass pipeline on `t` and validate the whole trail.
pub fn validate_trace(name: &str, t: &Trace) -> TvReport {
    validate_trail(name, &t.pass_trail())
}

// ---------------------------------------------------------------------------
// Mutation self-test
// ---------------------------------------------------------------------------

/// Outcome of challenging the validator with a mutated intermediate
/// stage: `Rejected` = a TV/verifier error fired; `Divergent` = the
/// mutation survived validation but changes replay output (a semantic
/// rewrite the prover is allowed to accept only if behavior is
/// preserved — so this counts as a miss unless outputs differ... which
/// they must, or the mutation was a no-op); `Missed` = accepted and
/// bit-identical (only acceptable for genuine no-op mutations).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MutantVerdict {
    Rejected,
    Divergent,
    Missed,
}

/// Mutate stage `seed % 3 + 1` of `trail` (keeping that stage's original
/// witness) and check the pair against its untouched predecessor. The
/// gate in `ookamicheck --tv` requires every seed to come back
/// `Rejected` or `Divergent`.
pub fn challenge(trail: &PassTrail, seed: u64) -> MutantVerdict {
    let k = (seed as usize % 3) + 1;
    let s = &trail.stages[k - 1];
    let mut t = trail.stages[k].clone();
    let orig = t.trace.clone();
    t.trace = t.trace.mutated(seed);
    let (_, diags) = validate_pair_full("mutant", s, &t);
    if diags.iter().any(Diag::is_error) {
        return MutantVerdict::Rejected;
    }
    // Accepted: the mutation must at least be observable in replay
    // (SSA-breaking mutants never reach here — the verifier rejects
    // them — so replaying the mutant is safe).
    let xs = [0.0, 0.5, 1.0, -2.0, 3.75, 1e-3, 8.5, -0.25];
    let (a, b) = match orig.inputs.len() {
        1 => (orig.map(&xs), t.trace.map(&xs)),
        2 => {
            let ys = [1.0, -0.5, 2.0, 0.25, -3.0, 4.5, 1e-2, 7.0];
            (orig.map2(&xs, &ys), t.trace.map2(&xs, &ys))
        }
        _ => return MutantVerdict::Missed,
    };
    let differs = a
        .iter()
        .zip(b.iter())
        .any(|(x, y)| x.to_bits() != y.to_bits());
    if differs {
        MutantVerdict::Divergent
    } else {
        MutantVerdict::Missed
    }
}

// ---------------------------------------------------------------------------
// Lint corpus: pass-induced bugs
// ---------------------------------------------------------------------------

/// One hand-built pass-transition mutant with its expected codes, golden
/// snapshotted alongside the `OCxxxx` corpus.
pub struct TvCorpusEntry {
    pub name: &'static str,
    pub program: Program,
    pub diags: Vec<Diag>,
    pub expected: Vec<Code>,
}

fn entry(name: &'static str, s: &Trace, t: &Trace, expected: Vec<Code>) -> TvCorpusEntry {
    let sv = tv::stage_view("recorded", s);
    let tvw = tv::stage_view("mutated", t);
    let (program, diags) = validate_pair_full(name, &sv, &tvw);
    TvCorpusEntry {
        name,
        program,
        diags,
        expected,
    }
}

/// A constant wrongly folded under a partial predicate: the "pass"
/// replaces an `fadd` governed by a compare result (not a full mask)
/// with its would-be constant. The fold is numerically right on active
/// lanes but unsound — inactive lanes pass the first operand through.
fn misfold_partial_pred() -> TvCorpusEntry {
    let s = Trace::record1(8, |c, pg, x| {
        let zero = c.dup_f64(0.0);
        let a = c.dup_f64(3.0);
        let b = c.dup_f64(4.0);
        let p = c.fcmgt(pg, x, &zero);
        let sum = c.fadd(&p, &a, &b);
        c.fmul(pg, x, &sum)
    });
    let mut t = s.clone();
    let pos = t
        .body
        .iter()
        .position(|o| {
            matches!(
                o,
                TOp::Bin {
                    op: ookami_sve::trace::BinOp::FAdd,
                    ..
                }
            )
        })
        .expect("fixture has a fadd");
    let Some(dst) = top_def(&t.body.remove(pos)).0 else {
        unreachable!("fadd defines a vector")
    };
    t.setup.push(TOp::ConstV {
        dst,
        lanes: vec![7.0f64.to_bits(); 8],
    });
    entry("tv_misfold_partial_pred", &s, &t, vec![Code::WitnessBroken])
}

/// DCE wrongly drops a masked store: the scatter is an effect, not a
/// dead def, and removing it silently loses the kernel's writes.
fn dce_dropped_store() -> TvCorpusEntry {
    let s = {
        let mut b = TraceBuilder::new(8);
        let pg = b.loop_pred();
        let idx = b.input_i64();
        b.begin_body();
        let c = b.ctx();
        let src: Vec<f64> = (0..16).map(|k| k as f64).collect();
        let g = c.ld1d_gather(&pg, &src, &idx, 1);
        let mut dst = vec![0.0f64; 16];
        c.st1d_scatter(&pg, &g, &mut dst, &idx);
        b.finish(&[&g])
    };
    let mut t = s.clone();
    let pos = t
        .body
        .iter()
        .position(|o| matches!(o, TOp::Scatter { .. }))
        .expect("fixture has a scatter");
    t.body.remove(pos);
    entry("tv_dce_dropped_store", &s, &t, vec![Code::EffectDropped])
}

/// Predicate simplification widens a store mask: rewriting a scatter's
/// loop-bounded predicate to an all-true one is exactly the bug the
/// `Bounded`/`Wide` lattice exists to rule out — lanes past the loop
/// bound would flow into memory.
fn pred_widened() -> TvCorpusEntry {
    let s = {
        let mut b = TraceBuilder::new(8);
        let pg = b.loop_pred();
        let idx = b.input_i64();
        let vals = b.input_f64();
        b.begin_body();
        let c = b.ctx();
        let _wide = c.ptrue();
        let mut dst = vec![0.0f64; 16];
        c.st1d_scatter(&pg, &vals, &mut dst, &idx);
        b.finish(&[&vals])
    };
    let mut t = s.clone();
    let wide = t
        .setup
        .iter()
        .find_map(|o| match *o {
            TOp::Ptrue { dst } => Some(dst),
            _ => None,
        })
        .expect("fixture has a ptrue");
    for op in &mut t.body {
        if let TOp::Scatter { pg, .. } = op {
            *pg = wide;
        }
    }
    entry(
        "tv_pred_widened",
        &s,
        &t,
        vec![
            Code::OverWidePredicate,
            Code::ObservableMismatch,
            Code::LatticeWeakened,
        ],
    )
}

/// The pass-induced-bug corpus: each entry is a hand-built bad
/// transition with the codes it must (exactly) report, rendered into
/// golden files next to the `OCxxxx` corpus.
pub fn tv_corpus_entries() -> Vec<TvCorpusEntry> {
    vec![misfold_partial_pred(), dce_dropped_store(), pred_widened()]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exp_like() -> Trace {
        Trace::record1(8, |c, pg, x| {
            let half = c.dup_f64(0.5);
            let one = c.dup_f64(1.0);
            let k = c.fmul(pg, &half, &one);
            let p = c.ptrue();
            let m = c.pand(&p, pg);
            let y = c.fmul(&m, x, &k);
            let dead = c.fadd(pg, &y, &one);
            let _ = &dead;
            c.fadd(&m, &y, &one)
        })
    }

    #[test]
    fn clean_trail_validates() {
        let t = exp_like();
        let report = validate_trace("exp_like", &t);
        assert_eq!(report.stages.len(), 3);
        for s in &report.stages {
            assert!(
                s.diags.iter().all(|d| !d.is_error()),
                "{}: {:?}",
                s.stage,
                s.diags
            );
        }
        assert!(report.counters_checked);
        assert!(
            report.counter_diags.is_empty(),
            "{:?}",
            report.counter_diags
        );
        assert!(report.is_ok());
    }

    #[test]
    fn non_native_trail_skips_counters() {
        let t = Trace::record1(7, |c, pg, x| c.fadd(pg, x, x));
        let report = validate_trace("vl7", &t);
        assert!(!report.counters_checked);
        assert!(report.is_ok());
    }

    #[test]
    fn fold_claim_is_reevaluated() {
        // Tamper with a legitimately folded constant: flip one lane bit
        // in the dce-stage setup and revalidate that pair.
        let t = exp_like();
        let trail = t.pass_trail();
        let mut bad = trail.stages[1].clone();
        for op in &mut bad.trace.setup {
            if let TOp::ConstV { lanes, .. } = op {
                if lanes.iter().all(|&x| x == 0.5f64.to_bits()) {
                    lanes[0] ^= 1 << 30;
                }
            }
        }
        // The tampered stage no longer matches: either the fold claim
        // (if the flipped const was the folded one) or def matching.
        let diags = validate_pair(&trail.stages[0], &bad);
        assert!(diags.iter().any(Diag::is_error), "tamper not caught");
    }

    #[test]
    fn counter_recipe_tamper_is_caught() {
        let t = exp_like();
        let mut trail = t.pass_trail();
        let plan = trail.plan.as_mut().expect("native trace has a plan");
        let v = plan.acct_static.get(Counter::SveInstrs);
        plan.acct_static.set(Counter::SveInstrs, v + 1);
        let diags = verify_counters(&trail).expect("plan present");
        assert!(
            diags.iter().any(|d| d.code == Code::CounterRecipeMismatch),
            "{diags:?}"
        );
    }

    #[test]
    fn corpus_entries_report_expected_codes() {
        for e in tv_corpus_entries() {
            let got: Vec<Code> = e.diags.iter().map(|d| d.code).collect();
            assert_eq!(got, e.expected, "{}", e.name);
        }
    }

    #[test]
    fn challenge_rejects_structural_mutants() {
        let t = exp_like();
        let trail = t.pass_trail();
        for seed in 0..24 {
            let v = challenge(&trail, seed);
            assert_ne!(v, MutantVerdict::Missed, "seed {seed} missed");
        }
    }
}
