//! Golden mutation corpus: hand-built broken instruction streams, one per
//! diagnostic class, with the codes the verifier must report. The
//! `lint_corpus` integration test snapshots each entry's rendered listing
//! and diagnostics under `tests/lint_corpus/` (regenerate with
//! `UPDATE_GOLDEN=1`).

use crate::diag::Code;
use crate::program::{Convention, Program};
use ookami_uarch::{Instr, OpClass, Reg, Width};

pub struct CorpusEntry {
    pub name: &'static str,
    pub program: Program,
    /// Exact multiset of codes the verifier must report, in diagnostic
    /// order.
    pub expected: Vec<Code>,
}

/// Scaffold shared by most entries: a V512 stream with two live-in
/// inputs `v0, v1`, eight vector registers, and `p0` as the loop
/// predicate (predicate registers start at 8).
fn base(name: &'static str, instrs: Vec<Instr>, live_out: Vec<Reg>) -> Program {
    let n = instrs.len();
    Program {
        name: name.to_string(),
        convention: Convention::Traced,
        instrs,
        width: Some(Width::V512),
        n_vec_regs: 8,
        n_pred_regs: 3,
        live_in_vec: vec![0, 1],
        live_in_pred: Vec::new(),
        loop_pred: Some(8),
        ptrue_preds: Vec::new(),
        const_lanes: Vec::new(),
        table_len: vec![None; n],
        live_out,
    }
}

const PG: Reg = 8; // loop predicate under the scaffold numbering

pub fn entries() -> Vec<CorpusEntry> {
    let w = Width::V512;
    let mut out = Vec::new();

    // OC0001 — a source register no instruction ever defines.
    out.push(CorpusEntry {
        name: "undefined_use",
        program: base(
            "undefined_use",
            vec![Instr::def(OpClass::FMul, w, 2, &[PG, 0, 7])],
            vec![2],
        ),
        expected: vec![Code::UndefinedUse],
    });

    // OC0001 — defined, but only *after* the use (SSA order violation).
    out.push(CorpusEntry {
        name: "use_before_def",
        program: base(
            "use_before_def",
            vec![
                Instr::def(OpClass::FAdd, w, 3, &[PG, 0, 2]),
                Instr::def(OpClass::FMul, w, 2, &[PG, 0, 1]),
            ],
            vec![3, 2],
        ),
        expected: vec![Code::UndefinedUse],
    });

    // OC0007 — the same register defined twice.
    out.push(CorpusEntry {
        name: "double_def",
        program: base(
            "double_def",
            vec![
                Instr::def(OpClass::FMul, w, 2, &[PG, 0, 1]),
                Instr::def(OpClass::FAdd, w, 2, &[PG, 2, 0]),
            ],
            vec![2],
        ),
        expected: vec![Code::DoubleDef],
    });

    // OC0002 — a vector register where the governing predicate belongs.
    out.push(CorpusEntry {
        name: "domain_mixup",
        program: base(
            "domain_mixup",
            vec![Instr::def(OpClass::FMul, w, 2, &[0, 0, 1])],
            vec![2],
        ),
        expected: vec![Code::DomainMismatch],
    });

    // OC0003 — one op at the wrong vector length.
    out.push(CorpusEntry {
        name: "width_jitter",
        program: base(
            "width_jitter",
            vec![
                Instr::def(OpClass::FMul, w, 2, &[PG, 0, 1]),
                Instr::def(OpClass::FAdd, Width::V256, 3, &[PG, 2, 0]),
            ],
            vec![3],
        ),
        expected: vec![Code::WidthMismatch],
    });

    // OC0004 — a constant index vector provably past its table's end.
    out.push(CorpusEntry {
        name: "oob_gather",
        program: {
            let mut p = base(
                "oob_gather",
                vec![Instr::def(OpClass::Gather, w, 3, &[PG, 2]).with_uops(8)],
                vec![3],
            );
            p.live_in_vec.push(2);
            p.const_lanes.push((2, vec![0, 2, 4, 9]));
            p.table_len[0] = Some(8);
            p
        },
        expected: vec![Code::OutOfBoundsIndex],
    });

    // OC0004 — SpMV-shaped: a CRS row's sorted column list where the
    // last entry runs one past the x-table's end (the classic
    // off-by-one when the row pointer of the *next* row leaks in).
    out.push(CorpusEntry {
        name: "spmv_col_oob",
        program: {
            let mut p = base(
                "spmv_col_oob",
                vec![
                    Instr::def(OpClass::Gather, w, 3, &[PG, 2]).with_uops(8),
                    Instr::def(OpClass::Fma, w, 4, &[PG, 0, 1, 3]),
                ],
                vec![4],
            );
            p.live_in_vec.push(2);
            p.const_lanes.push((2, vec![0, 3, 7, 11, 12]));
            p.table_len[0] = Some(12);
            p
        },
        expected: vec![Code::OutOfBoundsIndex],
    });

    // OC0004 — SELL-C-σ-shaped: a packer that pads short rows with the
    // sentinel `table_len` instead of a valid in-range column (this
    // repo's packer pads with column 0; a sentinel-padding port would
    // fault exactly like this on its first gather).
    out.push(CorpusEntry {
        name: "sell_pad_sentinel",
        program: {
            let mut p = base(
                "sell_pad_sentinel",
                vec![
                    Instr::def(OpClass::Gather, w, 3, &[PG, 2]).with_uops(8),
                    Instr::def(OpClass::Fma, w, 4, &[PG, 0, 1, 3]),
                ],
                vec![4],
            );
            p.live_in_vec.push(2);
            p.const_lanes.push((2, vec![5, 2, 64, 64, 64]));
            p.table_len[0] = Some(64);
            p
        },
        expected: vec![Code::OutOfBoundsIndex],
    });

    // OC0006 — a scatter governed by an all-true predicate instead of the
    // loop predicate: lanes past the loop bound would reach memory.
    out.push(CorpusEntry {
        name: "wide_scatter",
        program: {
            let mut p = base(
                "wide_scatter",
                vec![Instr::effect(OpClass::Scatter, w, &[9, 0, 1])],
                vec![],
            );
            p.live_in_pred.push(9);
            p.ptrue_preds.push(9);
            p.table_len[0] = Some(1 << 20);
            p
        },
        expected: vec![Code::OverWidePredicate],
    });

    // OC0005 — an FMLA missing its multiplicand, and a scatter that
    // claims to define a register.
    out.push(CorpusEntry {
        name: "malformed_arity",
        program: base(
            "malformed_arity",
            vec![
                Instr::def(OpClass::Fma, w, 2, &[PG, 0]),
                Instr::def(OpClass::Scatter, w, 3, &[PG, 0, 1]),
            ],
            vec![2, 3],
        ),
        expected: vec![Code::MalformedArity, Code::MalformedArity],
    });

    // OC1001 — a def nothing reads and nothing exports.
    out.push(CorpusEntry {
        name: "dead_def",
        program: base(
            "dead_def",
            vec![
                Instr::def(OpClass::FMul, w, 2, &[PG, 0, 1]),
                Instr::def(OpClass::FAdd, w, 3, &[PG, 0, 1]),
            ],
            vec![3],
        ),
        expected: vec![Code::DeadDef],
    });

    // OC1002 — the same compare computed twice into different predicates.
    out.push(CorpusEntry {
        name: "redundant_pred",
        program: base(
            "redundant_pred",
            vec![
                Instr::def(OpClass::FCmp, w, 9, &[PG, 0, 1]),
                Instr::def(OpClass::FCmp, w, 10, &[PG, 0, 1]),
                Instr::def(OpClass::Select, w, 2, &[9, 0, 1]),
                Instr::def(OpClass::Select, w, 3, &[10, 1, 0]),
            ],
            vec![2, 3],
        ),
        expected: vec![Code::RedundantPredicate],
    });

    // OC1003 — a 512-bit op fed exclusively by scalar-width defs
    // (mixed-width stream: the uniformity check is off).
    out.push(CorpusEntry {
        name: "widen",
        program: {
            let mut p = base(
                "widen",
                vec![
                    Instr::def(OpClass::FMul, Width::Scalar, 2, &[PG, 0, 1]),
                    Instr::def(OpClass::FAdd, w, 3, &[PG, 2, 2]),
                ],
                vec![3],
            );
            p.width = None;
            p
        },
        expected: vec![Code::UnnecessaryWidening],
    });

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::verify;

    #[test]
    fn every_entry_reports_exactly_its_expected_codes() {
        for e in entries() {
            let got: Vec<Code> = verify(&e.program).iter().map(|d| d.code).collect();
            assert_eq!(
                got, e.expected,
                "corpus entry {:?} diagnostics mismatch",
                e.name
            );
        }
    }

    #[test]
    fn entry_names_are_unique() {
        let mut names: Vec<_> = entries().iter().map(|e| e.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), entries().len());
    }
}
