//! # ookami-check — static analysis for the emulator and the runtime
//!
//! Three engines (DESIGN.md §8):
//!
//! * [`verify`] — a static verifier and lint engine over SVE trace
//!   programs: abstract interpretation of [`ookami_uarch::Instr`] streams
//!   (def-before-use/SSA, operand domains, width uniformity, a predicate
//!   lattice proving memory writes stay inside the loop bound, constant
//!   index bounds) plus lint-class diagnostics, all under stable `OCxxxx`
//!   codes with rustc-style rendering and JSON output ([`diag`]);
//! * [`tv`] — a translation validator over the trace compiler's pass
//!   pipeline: each per-pass snapshot pair from
//!   `ookami_sve::Trace::pass_trail` is proved equivalent under a
//!   product abstract domain (constant lanes, intervals, NaN class, the
//!   predicate lattice) and the pass's slot-substitution witness, index
//!   bounds are re-proved post-pass, and the emission plan's static
//!   counter recipe is re-derived bit-for-bit — failures are stable
//!   `TVxxxx` codes through the same [`diag`] machinery;
//! * [`race`] — a happens-before race detector replaying the pool
//!   runtime's timeline events with vector clocks, reporting overlapping
//!   chunk writes not ordered by the fork/join protocol — including the
//!   telemetry sampler and HTTP-server threads, modeled as actors with
//!   fork/write/join edges in their own key space.
//!
//! The `ookamicheck` binary (crates/bench) drives all three as CI gates:
//! every shipped workload trace must verify clean, every family trace
//! must prove pass-by-pass under `--tv`, the [`corpus`] and
//! [`tv::tv_corpus_entries`] mutants must each report their expected
//! codes, and shipped kernels must be race-free while `--inject-race`,
//! `--inject-sampler-race`, and `--inject-tv` are flagged.

pub mod corpus;
pub mod diag;
pub mod program;
pub mod race;
pub mod tv;
pub mod verify;

pub use diag::{render, render_all, to_json, Code, Diag, Severity};
pub use program::{Convention, Program};
pub use race::{detect_races, injected_race_events, injected_sampler_race_events, Race};
pub use tv::{validate_trace, validate_trail, MutantVerdict, TvReport};
pub use verify::verify;

#[cfg(test)]
mod tests {
    use super::*;
    use ookami_sve::Trace;

    fn poly_trace(vl: usize) -> Trace {
        // y = 2x + 3x² — the loops crate's "simple" kernel shape.
        Trace::record1(vl, |ctx, pg, x| {
            let two = ctx.dup_f64(2.0);
            let three = ctx.dup_f64(3.0);
            let t3x = ctx.fmul(pg, &three, x);
            let t3xx = ctx.fmul(pg, &t3x, x);
            let t2x = ctx.fmul(pg, &two, x);
            ctx.fadd(pg, &t2x, &t3xx)
        })
    }

    #[test]
    fn clean_trace_verifies_clean() {
        for vl in [1, 2, 4, 8] {
            let p = Program::from_trace("poly", &poly_trace(vl));
            let diags = verify(&p);
            assert!(diags.is_empty(), "vl={vl}: {diags:?}");
        }
    }

    #[test]
    fn predicated_select_trace_verifies_clean() {
        let t = Trace::record1(8, |ctx, pg, x| {
            let zero = ctx.dup_f64(0.0);
            let m = ctx.fcmgt(pg, x, &zero);
            ctx.sel(&m, x, &zero)
        });
        let p = Program::from_trace("select", &t);
        let diags = verify(&p);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn mutated_traces_are_rejected_or_semantic() {
        let t = poly_trace(8);
        for seed in 0..16u64 {
            let m = t.mutated(seed);
            let diags = verify(&Program::from_trace("mutant", &m));
            let errors = diags.iter().filter(|d| d.is_error()).count();
            if seed % 4 == 3 {
                // Semantic mutants keep the wiring intact — the verifier
                // accepts them; the differential test proves the output
                // moved instead.
                assert_eq!(errors, 0, "seed={seed}: {diags:?}");
            } else {
                assert!(errors > 0, "seed={seed} mutant not rejected");
            }
        }
    }

    #[test]
    fn rendering_names_registers_by_file() {
        let e = &corpus::entries()[0]; // undefined_use
        let diags = verify(&e.program);
        let text = render_all(&e.program, &diags);
        assert!(text.contains("error[OC0001]"), "{text}");
        assert!(text.contains("v7"), "{text}");
        assert!(text.contains("--> undefined_use:0"), "{text}");
        assert!(text.contains('^'), "{text}");
    }

    #[test]
    fn json_report_parses_with_inhouse_parser() {
        for e in corpus::entries() {
            let diags = verify(&e.program);
            let js = to_json(&e.program, &diags);
            let v = ookami_core::obs::Json::parse(&js)
                .unwrap_or_else(|err| panic!("{}: bad JSON ({err}):\n{js}", e.name));
            let n = match v.get("diagnostics") {
                Some(ookami_core::obs::Json::Arr(a)) => a.len(),
                other => panic!("{}: diagnostics not an array: {other:?}", e.name),
            };
            assert_eq!(n, diags.len(), "{}", e.name);
        }
    }

    #[test]
    fn lowered_streams_skip_ssa_but_keep_effect_and_width_checks() {
        use ookami_uarch::{Instr, OpClass, Width};
        // Non-SSA register reuse is fine under the Lowered convention…
        let ok = Program::from_stream(
            "lowered_ok",
            vec![
                Instr::def(OpClass::FMul, Width::V512, 1, &[0, 1]),
                Instr::def(OpClass::FMul, Width::V512, 1, &[1, 1]),
            ],
        );
        assert!(verify(&ok).is_empty());
        // …but a store defining a register is malformed in any convention.
        let bad = Program::from_stream(
            "lowered_bad",
            vec![Instr::def(OpClass::Store, Width::V512, 2, &[0, 1])],
        );
        let diags = verify(&bad);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, Code::MalformedArity);
    }

    #[test]
    fn lowered_streams_get_constant_index_bounds() {
        use ookami_uarch::{Instr, OpClass, Width};
        // Gather with a constant index vector spanning [0, 20] against a
        // 16-element table: OC0004 even in a non-SSA stream.
        let mut p = Program::from_stream(
            "lowered_oob",
            vec![
                Instr::def(OpClass::Gather, Width::V512, 3, &[0, 2]),
                Instr::def(OpClass::Gather, Width::V512, 4, &[0, 2]),
            ],
        );
        p.const_lanes.push((2, vec![0, 5, 20]));
        p.table_len = vec![Some(16), Some(32)];
        let diags = verify(&p);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, Code::OutOfBoundsIndex);
        assert_eq!(diags[0].index, 0);
        // A redefinition kills the fact: the same shape, but the index
        // register is clobbered between the constant and the gather.
        let mut q = Program::from_stream(
            "lowered_clobber",
            vec![
                Instr::def(OpClass::FMul, Width::V512, 2, &[0, 1]),
                Instr::def(OpClass::Gather, Width::V512, 3, &[0, 2]),
            ],
        );
        q.const_lanes.push((2, vec![0, 20]));
        q.table_len = vec![None, Some(16)];
        assert!(verify(&q).is_empty());
    }
}
