//! Fig. 1 regenerator: runtime of the simple vector loops on A64FX,
//! relative to the Intel compiler on Skylake.

use crate::suite::LoopSuite;
use ookami_core::measure::{Measurement, Table};
use ookami_mem::gather::{analyze_array, MeanPattern};
use ookami_toolchain::lower::{lower_loop, LoopKind};
use ookami_toolchain::Compiler;
use ookami_uarch::{machines, Machine};

/// Seconds per element of `kind` compiled by `c` on `m`.
pub fn seconds_per_element(
    kind: LoopKind,
    c: Compiler,
    m: &Machine,
    pattern: Option<&MeanPattern>,
) -> f64 {
    let k = lower_loop(kind, c, m, pattern);
    ookami_uarch::analyze_cached(&k, m).cycles_per_element() / (m.turbo_1c_ghz * 1e9)
}

/// Index-pattern statistics for `m`, taken from the suite's real index
/// vectors (full and short permutations).
pub fn patterns_for(m: &Machine, seed: u64) -> (MeanPattern, MeanPattern) {
    let suite = LoopSuite::for_l1(m.mem.l1_bytes, seed);
    let full = analyze_array(
        &suite.index_full,
        8,
        m.mem.line_bytes,
        &m.gather,
        m.vector_width,
    );
    let short = analyze_array(
        &suite.index_short,
        8,
        m.mem.line_bytes,
        &m.gather,
        m.vector_width,
    );
    (full, short)
}

fn pattern_for_kind<'a>(
    kind: LoopKind,
    full: &'a MeanPattern,
    short: &'a MeanPattern,
) -> Option<&'a MeanPattern> {
    match kind {
        LoopKind::Simple | LoopKind::Predicate => None,
        LoopKind::Gather | LoopKind::Scatter => Some(full),
        LoopKind::ShortGather | LoopKind::ShortScatter => Some(short),
    }
}

/// One Fig. 1 data point: runtime on A64FX under `c`, relative to Intel on
/// Skylake (the paper's y-axis).
pub fn relative_runtime(kind: LoopKind, c: Compiler) -> f64 {
    let a = machines::a64fx();
    let s = machines::skylake_6140();
    let (fa, sa) = patterns_for(a, 42);
    let (fs, ss) = patterns_for(s, 42);
    let t_a = seconds_per_element(kind, c, a, pattern_for_kind(kind, &fa, &sa));
    let t_s = seconds_per_element(kind, Compiler::Intel, s, pattern_for_kind(kind, &fs, &ss));
    t_a / t_s
}

/// All Fig. 1 rows as measurements.
pub fn figure1() -> Vec<Measurement> {
    let mut out = Vec::new();
    for kind in LoopKind::ALL {
        for c in Compiler::A64FX {
            out.push(Measurement::new(
                "fig1",
                kind.label(),
                "Ookami A64FX",
                c.label(),
                1,
                relative_runtime(kind, c),
                "runtime_rel_skx",
            ));
        }
    }
    out
}

/// Fixed-width rendering of Fig. 1 (rows = loops, columns = compilers).
pub fn render_figure1() -> String {
    let mut t = Table::new(
        "Fig. 1 — runtime on A64FX of simple vector loops, relative to Intel/Skylake",
        &["loop", "fujitsu", "cray", "arm", "gcc"],
    );
    for kind in LoopKind::ALL {
        let cells: Vec<String> = std::iter::once(kind.label().to_string())
            .chain(
                Compiler::A64FX
                    .iter()
                    .map(|&c| format!("{:.2}", relative_runtime(kind, c))),
            )
            .collect();
        t.row(&cells);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fujitsu_hovers_near_two_for_streaming_kinds() {
        // Paper: "the Fujitsu tool chain performance hovers at the factor
        // of 2 expected from the ratio of the clock speeds, except for the
        // predicate operation that is 3-fold slower and the short gather
        // that is only circa 1.5-fold slower."
        let simple = relative_runtime(LoopKind::Simple, Compiler::Fujitsu);
        assert!(simple > 1.5 && simple < 2.7, "simple {simple}");
        let gather = relative_runtime(LoopKind::Gather, Compiler::Fujitsu);
        assert!(gather > 1.6 && gather < 2.6, "gather {gather}");
    }

    #[test]
    fn predicate_is_the_outlier_high() {
        let pred = relative_runtime(LoopKind::Predicate, Compiler::Fujitsu);
        let simple = relative_runtime(LoopKind::Simple, Compiler::Fujitsu);
        assert!(pred > simple + 0.4, "pred {pred} vs simple {simple}");
    }

    #[test]
    fn short_gather_is_the_outlier_low() {
        let sg = relative_runtime(LoopKind::ShortGather, Compiler::Fujitsu);
        let g = relative_runtime(LoopKind::Gather, Compiler::Fujitsu);
        assert!(sg < g - 0.4, "short {sg} vs full {g}");
        assert!(sg > 0.9 && sg < 1.9, "short gather {sg}");
    }

    #[test]
    fn fujitsu_best_on_a64fx_for_every_loop() {
        // Paper: "the Fujitsu toolchain delivers the highest performance
        // for all loops".
        for kind in LoopKind::ALL {
            let fuj = relative_runtime(kind, Compiler::Fujitsu);
            for c in [Compiler::Cray, Compiler::Arm, Compiler::Gnu] {
                let other = relative_runtime(kind, c);
                assert!(
                    fuj <= other + 1e-9,
                    "{kind:?}: fujitsu {fuj} vs {c:?} {other}"
                );
            }
        }
    }

    #[test]
    fn figure1_is_complete() {
        let rows = figure1();
        assert_eq!(rows.len(), 24); // 6 loops × 4 compilers
        assert!(rows.iter().all(|r| r.value.is_finite() && r.value > 0.5));
        let txt = render_figure1();
        assert!(txt.contains("short gather"));
    }
}
