//! The Section III loops executed *through the SVE emulator* — the same
//! vector-length-agnostic, predicated code an SVE compiler emits, run on
//! the suite's real data and checked against the native implementations.
//!
//! This closes the loop between the two halves of the reproduction: the
//! kernels whose instruction streams the cycle model costs are the same
//! kernels that demonstrably compute the right answers.

use crate::suite::LoopSuite;
use ookami_mem::gather::analyze_indices;
use ookami_sve::SveCtx;
use ookami_uarch::Machine;

/// `y[i] = 2x[i] + 3x[i]²` via predicated SVE (whilelt-governed VLA loop).
pub fn run_simple_sve(suite: &mut LoopSuite, vl: usize) {
    let mut ctx = SveCtx::new(vl);
    let two = ctx.dup_f64(2.0);
    let three = ctx.dup_f64(3.0);
    let n = suite.n;
    let mut i = 0;
    while i < n {
        let pg = ctx.whilelt(i, n);
        let x = ctx.ld1d(&pg, &suite.x, i);
        // y = 2·x + (3·x)·x, in the native evaluation order so the results
        // match bitwise (an FMA contraction would round differently — the
        // -ffp-contract question the Table I flags answer for each compiler).
        let t3x = ctx.fmul(&pg, &three, &x);
        let t3xx = ctx.fmul(&pg, &t3x, &x);
        let t2x = ctx.fmul(&pg, &two, &x);
        let y = ctx.fadd(&pg, &t2x, &t3xx);
        ctx.st1d(&pg, &y, &mut suite.y, i);
        i += vl;
    }
}

/// `if x[i] > 0 { y[i] = x[i] }` via compare-to-predicate + merging store.
pub fn run_predicate_sve(suite: &mut LoopSuite, vl: usize) {
    let mut ctx = SveCtx::new(vl);
    let zero = ctx.dup_f64(0.0);
    let n = suite.n;
    let mut i = 0;
    while i < n {
        let pg = ctx.whilelt(i, n);
        let x = ctx.ld1d(&pg, &suite.x, i);
        let p = ctx.fcmgt(&pg, &x, &zero);
        ctx.st1d(&p, &x, &mut suite.y, i);
        i += vl;
    }
}

/// `y[i] = x[index[i]]` via hardware-style gather, with the µop count per
/// vector taken from the real index pattern (the pairing analysis).
pub fn run_gather_sve(suite: &mut LoopSuite, vl: usize, short: bool, machine: &Machine) {
    let mut ctx = SveCtx::new(vl);
    let n = suite.n;
    let idx_src: Vec<usize> = if short {
        suite.index_short.clone()
    } else {
        suite.index_full.clone()
    };
    let mut i = 0;
    while i < n {
        let pg = ctx.whilelt(i, n);
        let lanes: Vec<i64> = (0..vl)
            .map(|l| if i + l < n { idx_src[i + l] as i64 } else { 0 })
            .collect();
        let take = vl.min(n - i);
        let pat = analyze_indices(
            &idx_src[i..i + take],
            8,
            machine.mem.line_bytes,
            &machine.gather,
            machine.vector_width,
        );
        let iv = ctx.input_i64(&lanes);
        let g = ctx.ld1d_gather(&pg, &suite.x, &iv, pat.uops as u32);
        ctx.st1d(&pg, &g, &mut suite.y, i);
        i += vl;
    }
}

/// `y[index[i]] = x[i]` via scatter.
pub fn run_scatter_sve(suite: &mut LoopSuite, vl: usize, short: bool) {
    let mut ctx = SveCtx::new(vl);
    let n = suite.n;
    let idx_src: Vec<usize> = if short {
        suite.index_short.clone()
    } else {
        suite.index_full.clone()
    };
    let mut i = 0;
    while i < n {
        let pg = ctx.whilelt(i, n);
        let lanes: Vec<i64> = (0..vl)
            .map(|l| if i + l < n { idx_src[i + l] as i64 } else { 0 })
            .collect();
        let iv = ctx.input_i64(&lanes);
        let x = ctx.ld1d(&pg, &suite.x, i);
        ctx.st1d_scatter(&pg, &x, &mut suite.y, &iv);
        i += vl;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ookami_uarch::machines;

    fn suites(n: usize, seed: u64) -> (LoopSuite, LoopSuite) {
        (LoopSuite::new(n, seed), LoopSuite::new(n, seed))
    }

    #[test]
    fn simple_matches_native() {
        for vl in [2usize, 4, 8] {
            let (mut a, mut b) = suites(1024, 3);
            a.run_simple();
            run_simple_sve(&mut b, vl);
            assert_eq!(a.y, b.y, "vl={vl}");
        }
    }

    #[test]
    fn simple_handles_tails() {
        // 1008 = 63 × 16 is a window multiple but not a multiple of 32; use
        // VL 32 > suite granularity to exercise a ragged tail.
        let (mut a, mut b) = suites(1008, 9);
        a.run_simple();
        run_simple_sve(&mut b, 32);
        assert_eq!(a.y, b.y);
    }

    #[test]
    fn predicate_matches_native() {
        let (mut a, mut b) = suites(512, 5);
        // make some entries negative so the predicate matters
        for i in (0..512).step_by(3) {
            a.x[i] = -a.x[i];
            b.x[i] = -b.x[i];
        }
        a.y.iter_mut().for_each(|v| *v = -7.0);
        b.y.iter_mut().for_each(|v| *v = -7.0);
        a.run_predicate();
        run_predicate_sve(&mut b, 8);
        assert_eq!(a.y, b.y);
    }

    #[test]
    fn gather_matches_native() {
        let m = machines::a64fx();
        for short in [false, true] {
            let (mut a, mut b) = suites(512, 11);
            a.run_gather(short);
            run_gather_sve(&mut b, 8, short, m);
            assert_eq!(a.y, b.y, "short={short}");
        }
    }

    #[test]
    fn scatter_matches_native() {
        for short in [false, true] {
            let (mut a, mut b) = suites(512, 13);
            a.run_scatter(short);
            run_scatter_sve(&mut b, 8, short);
            assert_eq!(a.y, b.y, "short={short}");
        }
    }
}
