//! The Section III loops executed *through the SVE emulator* — the same
//! vector-length-agnostic, predicated code an SVE compiler emits, run on
//! the suite's real data and checked against the native implementations.
//!
//! This closes the loop between the two halves of the reproduction: the
//! kernels whose instruction streams the cycle model costs are the same
//! kernels that demonstrably compute the right answers.
//!
//! Each loop records its body **once** into an [`ookami_sve::Trace`] and
//! replays it across the whole range with a preallocated [`Replayer`]
//! arena — bit-identical to the per-op interpreter (the differential tests
//! below compare against the native implementations, closing the chain).

use crate::suite::LoopSuite;
use ookami_mem::gather::analyze_indices;
use ookami_sve::{PSlot, Trace, TraceBuilder, VSlot};
use ookami_uarch::Machine;

/// Record the `simple` loop body (`y = 2x + 3x²`) as a standalone trace —
/// shared by [`run_simple_sve`] and the `ookamicheck` static verifier.
pub fn simple_trace(vl: usize) -> Trace {
    let mut b = TraceBuilder::new(vl);
    let pg = b.loop_pred();
    let x = b.input_f64();
    b.begin_body();
    let ctx = b.ctx();
    let two = ctx.dup_f64(2.0);
    let three = ctx.dup_f64(3.0);
    // y = 2·x + (3·x)·x, in the native evaluation order so the results
    // match bitwise (an FMA contraction would round differently — the
    // -ffp-contract question the Table I flags answer for each compiler).
    let t3x = ctx.fmul(&pg, &three, &x);
    let t3xx = ctx.fmul(&pg, &t3x, &x);
    let t2x = ctx.fmul(&pg, &two, &x);
    let y = ctx.fadd(&pg, &t2x, &t3xx);
    b.finish(&[&y])
}

/// `y[i] = 2x[i] + 3x[i]²` via predicated SVE (whilelt-governed VLA loop).
pub fn run_simple_sve(suite: &mut LoopSuite, vl: usize) {
    let _span = ookami_core::obs::region("loops_simple");
    let t = simple_trace(vl);
    let out = t.map(&suite.x[..suite.n]);
    suite.y[..suite.n].copy_from_slice(&out);
}

/// Record the predicated-store body (`p = pg ∧ x > 0`, tap `p` and `x`)
/// as a standalone trace; returns `(trace, pred_tap, value_tap)`.
pub fn predicate_trace(vl: usize) -> (Trace, PSlot, VSlot) {
    let mut b = TraceBuilder::new(vl);
    let pg = b.loop_pred();
    let x = b.input_f64();
    b.begin_body();
    let ctx = b.ctx();
    let zero = ctx.dup_f64(0.0);
    let p = ctx.fcmgt(&pg, &x, &zero);
    let ps = b.pslot_of(&p);
    let xs = b.slot_of(&x);
    (b.finish(&[]), ps, xs)
}

/// `if x[i] > 0 { y[i] = x[i] }` via compare-to-predicate + merging store.
pub fn run_predicate_sve(suite: &mut LoopSuite, vl: usize) {
    let _span = ookami_core::obs::region("loops_predicate");
    let (t, ps, xs) = predicate_trace(vl);

    // Replay block-by-block; the store is governed by the *computed*
    // predicate (p = pg ∧ x>0), so untaken lanes leave `y` untouched —
    // exactly the merging-store semantics of `st1d`.
    let mut r = t.replayer();
    let n = suite.n;
    let mut i = 0;
    while i < n {
        let m = vl.min(n - i);
        r.set_block(i, n);
        r.bind_f64(0, &suite.x[i..i + m]);
        r.step();
        for l in 0..m {
            if r.pred_lane(ps, l) {
                suite.y[i + l] = r.lane_f64(xs, l);
            }
        }
        i += vl;
    }
}

/// `y[i] = x[index[i]]` via hardware-style gather, with the µop count per
/// vector taken from the real index pattern (the pairing analysis).
pub fn run_gather_sve(suite: &mut LoopSuite, vl: usize, short: bool, machine: &Machine) {
    let _span = ookami_core::obs::region("loops_gather");
    let n = suite.n;
    let idx_src: Vec<usize> = if short {
        suite.index_short.clone()
    } else {
        suite.index_full.clone()
    };
    // The µop hint only annotates the *recorded* instruction (replay never
    // re-records), so analyze the first real vector's pattern once.
    let pat = analyze_indices(
        &idx_src[..vl.min(n)],
        8,
        machine.mem.line_bytes,
        &machine.gather,
        machine.vector_width,
    );

    let t = gather_trace(vl, &suite.x, pat.uops as u32);
    let o = t.output(0);

    let mut r = t.replayer();
    let mut lbuf = vec![0i64; vl];
    let mut i = 0;
    while i < n {
        let m = vl.min(n - i);
        for l in 0..m {
            lbuf[l] = idx_src[i + l] as i64;
        }
        r.set_block(i, n);
        r.bind_i64(0, &lbuf[..m]);
        r.step();
        for l in 0..m {
            suite.y[i + l] = r.lane_f64(o, l);
        }
        i += vl;
    }
}

/// Record the gather body (`y[i] = tab[index[i]]`) as a standalone trace.
/// `uops` is the per-vector µop count from the index-pattern analysis.
pub fn gather_trace(vl: usize, tab: &[f64], uops: u32) -> Trace {
    let mut b = TraceBuilder::new(vl);
    let pg = b.loop_pred();
    let iv = b.input_i64();
    b.begin_body();
    let g = b.ctx().ld1d_gather(&pg, tab, &iv, uops);
    b.finish(&[&g])
}

/// Record the scatter body (`y[index[i]] = x[i]`) as a standalone trace.
/// The recording itself touches one stray lane of `y` (record-time write);
/// callers replay into the trace's captured table and publish it back.
pub fn scatter_trace(vl: usize, y: &mut [f64]) -> Trace {
    let mut b = TraceBuilder::new(vl);
    let pg = b.loop_pred();
    let iv = b.input_i64();
    let x = b.input_f64();
    b.begin_body();
    b.ctx().st1d_scatter(&pg, &x, y, &iv);
    b.finish(&[])
}

/// `y[index[i]] = x[i]` via scatter.
pub fn run_scatter_sve(suite: &mut LoopSuite, vl: usize, short: bool) {
    let _span = ookami_core::obs::region("loops_scatter");
    let n = suite.n;
    let idx_src: Vec<usize> = if short {
        suite.index_short.clone()
    } else {
        suite.index_full.clone()
    };

    let t = scatter_trace(vl, &mut suite.y);

    // Replay scatters into the Replayer's working copy of `y` (captured
    // before the record-time write), then publish the final table — this
    // also overwrites the one stray lane the recording itself touched.
    let mut r = t.replayer();
    let mut lbuf = vec![0i64; vl];
    let mut i = 0;
    while i < n {
        let m = vl.min(n - i);
        for l in 0..m {
            lbuf[l] = idx_src[i + l] as i64;
        }
        r.set_block(i, n);
        r.bind_i64(0, &lbuf[..m]);
        r.bind_f64(1, &suite.x[i..i + m]);
        r.step();
        i += vl;
    }
    suite.y.copy_from_slice(r.table(0));
}

#[cfg(test)]
mod tests {
    use super::*;
    use ookami_uarch::machines;

    fn suites(n: usize, seed: u64) -> (LoopSuite, LoopSuite) {
        (LoopSuite::new(n, seed), LoopSuite::new(n, seed))
    }

    #[test]
    fn simple_matches_native() {
        for vl in [2usize, 4, 8] {
            let (mut a, mut b) = suites(1024, 3);
            a.run_simple();
            run_simple_sve(&mut b, vl);
            assert_eq!(a.y, b.y, "vl={vl}");
        }
    }

    #[test]
    fn simple_handles_tails() {
        // 1008 = 63 × 16 is a window multiple but not a multiple of 32; use
        // VL 32 > suite granularity to exercise a ragged tail.
        let (mut a, mut b) = suites(1008, 9);
        a.run_simple();
        run_simple_sve(&mut b, 32);
        assert_eq!(a.y, b.y);
    }

    #[test]
    fn predicate_matches_native() {
        let (mut a, mut b) = suites(512, 5);
        // make some entries negative so the predicate matters
        for i in (0..512).step_by(3) {
            a.x[i] = -a.x[i];
            b.x[i] = -b.x[i];
        }
        a.y.iter_mut().for_each(|v| *v = -7.0);
        b.y.iter_mut().for_each(|v| *v = -7.0);
        a.run_predicate();
        run_predicate_sve(&mut b, 8);
        assert_eq!(a.y, b.y);
    }

    #[test]
    fn gather_matches_native() {
        let m = machines::a64fx();
        for short in [false, true] {
            let (mut a, mut b) = suites(512, 11);
            a.run_gather(short);
            run_gather_sve(&mut b, 8, short, m);
            assert_eq!(a.y, b.y, "short={short}");
        }
    }

    #[test]
    fn scatter_matches_native() {
        for short in [false, true] {
            let (mut a, mut b) = suites(512, 13);
            a.run_scatter(short);
            run_scatter_sve(&mut b, 8, short);
            assert_eq!(a.y, b.y, "short={short}");
        }
    }
}
