//! # ookami-loops — the Section III loop-vectorization suite
//!
//! The paper probes toolchains with six tiny loops plus five math-function
//! loops, with working sets sized "to collectively fill the L1 cache". This
//! crate provides:
//!
//! * [`suite`] — *native Rust* implementations of every loop (actually
//!   executable and property-tested; also the payload for the criterion
//!   micro-benchmarks in `ookami-bench`);
//! * [`fig1`] — the Fig. 1 regenerator: relative runtime (A64FX toolchain
//!   vs. Intel-on-Skylake) of the simple/predicate/gather/scatter loops,
//!   from the toolchain lowering + machine cost model;
//! * [`fig2`] — the Fig. 2 regenerator for the recip/sqrt/exp/sin/pow
//!   loops via the math-library model;
//! * [`sec4`] — the Section IV table: exp cycles/element across toolchain
//!   implementations and loop structures (VLA / fixed-width / unrolled,
//!   Horner vs. Estrin).

pub mod emulated;
pub mod fig1;
pub mod fig2;
pub mod sec4;
pub mod suite;

pub use suite::LoopSuite;
