//! Fig. 2 regenerator: runtime of the vectorized math-function loops on
//! A64FX relative to the Intel compiler on Skylake.

use ookami_core::measure::{Measurement, Table};
use ookami_core::MathFunc;
use ookami_toolchain::mathlib::math_cycles_per_element;
use ookami_toolchain::Compiler;
use ookami_uarch::machines;

/// The five math loops of Fig. 2, in the paper's order.
pub const FIG2_FUNCS: [MathFunc; 5] = [
    MathFunc::Recip,
    MathFunc::Sqrt,
    MathFunc::Exp,
    MathFunc::Sin,
    MathFunc::Pow,
];

/// One Fig. 2 data point: clock-adjusted runtime relative to Intel/Skylake.
pub fn relative_runtime(f: MathFunc, c: Compiler) -> f64 {
    let a = machines::a64fx();
    let s = machines::skylake_6140();
    let t_a = math_cycles_per_element(f, c, a) / (a.turbo_1c_ghz * 1e9);
    let t_s = math_cycles_per_element(f, Compiler::Intel, s) / (s.turbo_1c_ghz * 1e9);
    t_a / t_s
}

/// All Fig. 2 rows.
pub fn figure2() -> Vec<Measurement> {
    let mut out = Vec::new();
    for f in FIG2_FUNCS {
        for c in Compiler::A64FX {
            out.push(Measurement::new(
                "fig2",
                f.label(),
                "Ookami A64FX",
                c.label(),
                1,
                relative_runtime(f, c),
                "runtime_rel_skx",
            ));
        }
    }
    out
}

/// Fixed-width rendering of Fig. 2.
pub fn render_figure2() -> String {
    let mut t = Table::new(
        "Fig. 2 — runtime on A64FX of vectorized math functions, relative to Intel/Skylake",
        &["function", "fujitsu", "cray", "arm", "gcc"],
    );
    for f in FIG2_FUNCS {
        let cells: Vec<String> = std::iter::once(f.label().to_string())
            .chain(
                Compiler::A64FX
                    .iter()
                    .map(|&c| format!("{:.2}", relative_runtime(f, c))),
            )
            .collect();
        t.row(&cells);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fujitsu_is_best_and_near_clock_ratio_for_exp_sin() {
        // exp tracks the paper's ~2× closely; sin lands at 3–5× here
        // because the model's kernel does not use the FTMAD coefficient
        // tables the Fujitsu library leans on (documented in EXPERIMENTS.md).
        let exp = relative_runtime(MathFunc::Exp, Compiler::Fujitsu);
        assert!(exp > 1.0 && exp < 3.2, "exp fujitsu {exp}");
        let sin = relative_runtime(MathFunc::Sin, Compiler::Fujitsu);
        assert!(sin > 1.0 && sin < 5.0, "sin fujitsu {sin}");
        for f in [MathFunc::Exp, MathFunc::Sin] {
            let fuj = relative_runtime(f, Compiler::Fujitsu);
            for c in [Compiler::Cray, Compiler::Arm, Compiler::Gnu] {
                assert!(
                    relative_runtime(f, c) >= fuj - 1e-9,
                    "{f:?}: {c:?} beat fujitsu"
                );
            }
        }
    }

    #[test]
    fn cray_another_factor_behind_fujitsu_on_exp() {
        // Paper: "The Cray math library is fairly consistently another
        // factor of 1.5-2 slower".
        let fuj = relative_runtime(MathFunc::Exp, Compiler::Fujitsu);
        let cray = relative_runtime(MathFunc::Exp, Compiler::Cray);
        let f = cray / fuj;
        assert!(f > 1.3 && f < 2.6, "cray/fujitsu on exp = {f}");
    }

    #[test]
    fn gnu_scalar_fallback_is_tens_of_x() {
        // Conclusion: "some kernels might run 30-times slower" with GNU.
        for f in [MathFunc::Exp, MathFunc::Sin, MathFunc::Pow] {
            let gnu = relative_runtime(f, Compiler::Gnu);
            assert!(gnu > 10.0, "{f:?} gnu rel {gnu}");
        }
    }

    #[test]
    fn sqrt_instruction_pickers_pay_20x() {
        for c in [Compiler::Gnu, Compiler::Arm] {
            let r = relative_runtime(MathFunc::Sqrt, c);
            assert!(r > 10.0 && r < 30.0, "{c:?} sqrt rel {r}");
        }
        // Newton pickers stay near single digits.
        let fuj = relative_runtime(MathFunc::Sqrt, Compiler::Fujitsu);
        assert!(fuj < 6.0, "fujitsu sqrt rel {fuj}");
    }

    #[test]
    fn arm_pow_an_order_worse() {
        let arm = relative_runtime(MathFunc::Pow, Compiler::Arm);
        let fuj = relative_runtime(MathFunc::Pow, Compiler::Fujitsu);
        assert!(arm / fuj > 2.0, "arm {arm} vs fujitsu {fuj}");
        assert!(arm > 8.0, "arm pow rel {arm}");
    }

    #[test]
    fn figure2_is_complete() {
        let rows = figure2();
        assert_eq!(rows.len(), 20); // 5 funcs × 4 compilers
        assert!(rows.iter().all(|r| r.value.is_finite() && r.value > 0.5));
        assert!(render_figure2().contains("recip"));
    }
}
