//! Section IV regenerator: the exponential-function deep dive.
//!
//! Reproduces (a) the toolchain ladder — "The serial GNU implementation …
//! takes nearly 32 cycles per evaluation. The vectorized ARM, Cray, and
//! Fujitsu compilers take 6, 4.2, and 2.1 cycles … the Intel compiler on
//! Skylake takes 1.6" — and (b) the kernel-structure study: 2.2
//! cycles/element with the vector-length-agnostic loop, 2.0 with a fixed
//! width, 1.9 unrolled once; Estrin slightly faster than Horner.

use ookami_core::measure::{Measurement, Table};
use ookami_core::MathFunc;
use ookami_sve::record_kernel;
use ookami_toolchain::mathlib::math_cycles_per_element;
use ookami_toolchain::Compiler;
use ookami_uarch::machines;
use ookami_vecmath::exp::{exp_fexpa, PolyForm};

/// Loop structure for the hand-written FEXPA exp kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoopStructure {
    /// `whilelt`-governed vector-length-agnostic loop.
    Vla,
    /// Fixed-width loop (counted; no per-iteration predicate upkeep).
    Fixed,
    /// Fixed-width, unrolled once (two vectors per iteration).
    Unrolled2,
}

impl LoopStructure {
    pub const ALL: [LoopStructure; 3] = [
        LoopStructure::Vla,
        LoopStructure::Fixed,
        LoopStructure::Unrolled2,
    ];

    pub fn label(self) -> &'static str {
        match self {
            LoopStructure::Vla => "VLA (whilelt)",
            LoopStructure::Fixed => "fixed-width",
            LoopStructure::Unrolled2 => "unrolled x2",
        }
    }
}

/// Cycles/element of our FEXPA exp kernel on A64FX under the given loop
/// structure and polynomial form.
pub fn our_exp_cycles(structure: LoopStructure, form: PolyForm, corrected: bool) -> f64 {
    let m = machines::a64fx();
    let vl = 8;
    let bodies = if matches!(structure, LoopStructure::Unrolled2) {
        2
    } else {
        1
    };
    let rec = record_kernel(vl, (vl * bodies) as f64, |ctx| {
        let pg = ctx.ptrue();
        let data = vec![0.5f64; vl];
        let mut out = vec![0.0f64; vl];
        for _ in 0..bodies {
            let x = ctx.ld1d(&pg, &data, 0);
            let y = exp_fexpa(ctx, &pg, &x, form, corrected);
            ctx.st1d(&pg, &y, &mut out, 0);
        }
        if matches!(structure, LoopStructure::Vla) {
            let p = ctx.whilelt(0, 2 * vl);
            ctx.ptest(&p);
        }
        ctx.loop_overhead(2);
        vec![]
    });
    ookami_uarch::analyze_cached(&rec.kernel, m).cycles_per_element()
}

/// The toolchain ladder (cycles per evaluation of exp).
pub fn toolchain_ladder() -> Vec<Measurement> {
    let a = machines::a64fx();
    let s = machines::skylake_6140();
    let mut out = Vec::new();
    for c in Compiler::A64FX {
        out.push(Measurement::new(
            "sec4",
            "exp",
            a.name,
            c.label(),
            1,
            math_cycles_per_element(MathFunc::Exp, c, a),
            "cycles_per_elem",
        ));
    }
    out.push(Measurement::new(
        "sec4",
        "exp",
        s.name,
        "intel",
        1,
        math_cycles_per_element(MathFunc::Exp, Compiler::Intel, s),
        "cycles_per_elem",
    ));
    out
}

/// Render the Section IV summary.
pub fn render_sec4() -> String {
    let mut t = Table::new(
        "Section IV — exp cycles per element (paper: GNU 32, ARM 6, Cray 4.2, Fujitsu 2.1, Intel/SKX 1.6)",
        &["implementation", "cycles/elem"],
    );
    for m in toolchain_ladder() {
        t.row(&[
            format!("{} ({})", m.toolchain, m.machine),
            format!("{:.2}", m.value),
        ]);
    }
    let mut s = t.render();
    s.push('\n');
    let mut t2 = Table::new(
        "Section IV — our FEXPA kernel (paper: VLA 2.2, fixed 2.0, unrolled 1.9; Estrin ≤ Horner)",
        &["structure", "horner", "estrin", "estrin+corrected"],
    );
    for st in LoopStructure::ALL {
        t2.row(&[
            st.label().to_string(),
            format!("{:.2}", our_exp_cycles(st, PolyForm::Horner, false)),
            format!("{:.2}", our_exp_cycles(st, PolyForm::Estrin, false)),
            format!("{:.2}", our_exp_cycles(st, PolyForm::Estrin, true)),
        ]);
    }
    s.push_str(&t2.render());
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_matches_paper_magnitudes() {
        let rows = toolchain_ladder();
        let get = |label: &str| rows.iter().find(|r| r.toolchain == label).unwrap().value;
        assert!((get("gcc") - 32.0).abs() < 3.0, "gcc {}", get("gcc"));
        assert!(get("arm") > 4.0 && get("arm") < 9.0, "arm {}", get("arm"));
        assert!(
            get("cray") > 2.5 && get("cray") < 6.0,
            "cray {}",
            get("cray")
        );
        assert!(
            get("fujitsu") > 1.4 && get("fujitsu") < 3.0,
            "fujitsu {}",
            get("fujitsu")
        );
        assert!(
            get("intel") > 0.9 && get("intel") < 2.3,
            "intel {}",
            get("intel")
        );
    }

    #[test]
    fn vla_costs_more_than_fixed_width() {
        // Paper: 2.2 (VLA) vs 2.0 (fixed) cycles/element.
        let vla = our_exp_cycles(LoopStructure::Vla, PolyForm::Estrin, false);
        let fixed = our_exp_cycles(LoopStructure::Fixed, PolyForm::Estrin, false);
        assert!(vla > fixed, "vla {vla} vs fixed {fixed}");
        assert!(vla > 1.6 && vla < 2.9, "vla {vla}");
        assert!(fixed > 1.4 && fixed < 2.6, "fixed {fixed}");
    }

    #[test]
    fn unrolling_does_not_hurt() {
        // Paper: unrolling once decreased 2.0 to 1.9 cycles/element.
        let fixed = our_exp_cycles(LoopStructure::Fixed, PolyForm::Estrin, false);
        let unrolled = our_exp_cycles(LoopStructure::Unrolled2, PolyForm::Estrin, false);
        assert!(
            unrolled <= fixed + 0.05,
            "unrolled {unrolled} vs fixed {fixed}"
        );
    }

    #[test]
    fn estrin_not_slower_than_horner() {
        // Paper: "the Estrin form … is slightly faster than the Horner form".
        for st in LoopStructure::ALL {
            let h = our_exp_cycles(st, PolyForm::Horner, false);
            let e = our_exp_cycles(st, PolyForm::Estrin, false);
            assert!(e <= h + 1e-9, "{st:?}: estrin {e} vs horner {h}");
        }
    }

    #[test]
    fn correction_costs_fraction_of_a_cycle() {
        // Paper estimate: +0.25 cycles/element for the corrected last FMA.
        let plain = our_exp_cycles(LoopStructure::Fixed, PolyForm::Estrin, false);
        let corr = our_exp_cycles(LoopStructure::Fixed, PolyForm::Estrin, true);
        assert!(
            (corr - plain).abs() < 0.5,
            "plain {plain}, corrected {corr}"
        );
    }

    #[test]
    fn render_mentions_paper_values() {
        let s = render_sec4();
        assert!(s.contains("FEXPA"));
        assert!(s.contains("VLA"));
    }
}
