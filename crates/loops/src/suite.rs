//! Native implementations of the Section III loops.
//!
//! The paper's protocol: working vectors sized to collectively fill the L1
//! cache; the gather/scatter index vector is a random permutation of the
//! whole index space; the *short* variants permute only within 128-byte
//! windows (16 doubles).

use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Doubles per 128-byte window (the A64FX gather-pairing granule).
pub const WINDOW_DOUBLES: usize = 16;

/// Working vectors for the loop suite.
#[derive(Debug, Clone)]
pub struct LoopSuite {
    pub n: usize,
    pub x: Vec<f64>,
    pub y: Vec<f64>,
    /// Random permutation of `0..n`.
    pub index_full: Vec<usize>,
    /// Permutation of `0..n` that only shuffles within 16-double windows.
    pub index_short: Vec<usize>,
}

impl LoopSuite {
    /// Build a suite with `n` elements (default sizing: see [`LoopSuite::for_l1`]).
    pub fn new(n: usize, seed: u64) -> Self {
        assert!(n >= WINDOW_DOUBLES && n.is_multiple_of(WINDOW_DOUBLES));
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin() + 1.5).collect();
        let y = vec![0.0; n];
        let mut index_full: Vec<usize> = (0..n).collect();
        index_full.shuffle(&mut rng);
        let mut index_short: Vec<usize> = (0..n).collect();
        for w in index_short.chunks_mut(WINDOW_DOUBLES) {
            w.shuffle(&mut rng);
        }
        LoopSuite {
            n,
            x,
            y,
            index_full,
            index_short,
        }
    }

    /// Size the three working vectors (x, y, index) to collectively fill an
    /// L1 of `l1_bytes` (the paper's protocol): n ≈ l1/24 rounded to a
    /// window multiple.
    pub fn for_l1(l1_bytes: usize, seed: u64) -> Self {
        let n = (l1_bytes / 24 / WINDOW_DOUBLES).max(1) * WINDOW_DOUBLES;
        Self::new(n, seed)
    }

    /// `y[i] = 2x[i] + 3x[i]²`
    pub fn run_simple(&mut self) {
        for i in 0..self.n {
            let xi = self.x[i];
            self.y[i] = 2.0 * xi + 3.0 * xi * xi;
        }
    }

    /// `if x[i] > 0 { y[i] = x[i] }`
    pub fn run_predicate(&mut self) {
        for i in 0..self.n {
            if self.x[i] > 0.0 {
                self.y[i] = self.x[i];
            }
        }
    }

    /// `y[i] = x[index[i]]`
    pub fn run_gather(&mut self, short: bool) {
        let idx = if short {
            &self.index_short
        } else {
            &self.index_full
        };
        for i in 0..self.n {
            self.y[i] = self.x[idx[i]];
        }
    }

    /// `y[index[i]] = x[i]`
    pub fn run_scatter(&mut self, short: bool) {
        let idx = if short {
            &self.index_short
        } else {
            &self.index_full
        };
        for i in 0..self.n {
            self.y[idx[i]] = self.x[i];
        }
    }

    /// Math loops: `y[i] = f(x[i])`.
    pub fn run_recip(&mut self) {
        for i in 0..self.n {
            self.y[i] = 1.0 / self.x[i];
        }
    }

    pub fn run_sqrt(&mut self) {
        for i in 0..self.n {
            self.y[i] = self.x[i].sqrt();
        }
    }

    pub fn run_exp(&mut self) {
        for i in 0..self.n {
            self.y[i] = (-self.x[i]).exp();
        }
    }

    pub fn run_sin(&mut self) {
        for i in 0..self.n {
            self.y[i] = self.x[i].sin();
        }
    }

    pub fn run_pow(&mut self) {
        for i in 0..self.n {
            self.y[i] = self.x[i].powf(1.5);
        }
    }

    /// Total working-set bytes (x + y + index).
    pub fn working_set_bytes(&self) -> usize {
        self.n * (8 + 8 + 8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizing_fills_l1() {
        let s = LoopSuite::for_l1(64 * 1024, 1); // A64FX L1
        let ws = s.working_set_bytes();
        assert!(ws <= 64 * 1024, "{ws}");
        assert!(ws >= 60 * 1024, "{ws}");
    }

    #[test]
    fn indices_are_permutations() {
        let s = LoopSuite::new(4096, 2);
        for idx in [&s.index_full, &s.index_short] {
            let mut seen = vec![false; s.n];
            for &i in idx {
                assert!(!seen[i]);
                seen[i] = true;
            }
        }
    }

    #[test]
    fn short_index_stays_in_window() {
        let s = LoopSuite::new(4096, 3);
        for (i, &j) in s.index_short.iter().enumerate() {
            assert_eq!(i / WINDOW_DOUBLES, j / WINDOW_DOUBLES, "i={i} j={j}");
        }
    }

    #[test]
    fn simple_matches_formula() {
        let mut s = LoopSuite::new(256, 4);
        s.run_simple();
        for i in 0..s.n {
            let xi = s.x[i];
            assert_eq!(s.y[i], 2.0 * xi + 3.0 * xi * xi);
        }
    }

    #[test]
    fn predicate_only_writes_positive() {
        let mut s = LoopSuite::new(256, 5);
        s.x[3] = -1.0;
        s.x[7] = 0.0;
        s.y.iter_mut().for_each(|y| *y = -99.0);
        s.run_predicate();
        assert_eq!(s.y[3], -99.0);
        assert_eq!(s.y[7], -99.0);
        assert_eq!(s.y[0], s.x[0]);
    }

    #[test]
    fn scatter_then_gather_is_identity() {
        // y[p[i]] = x[i]; then z[i] = y[p[i]] == x[i].
        let mut s = LoopSuite::new(1024, 6);
        s.run_scatter(false);
        let scattered = s.y.clone();
        for i in 0..s.n {
            assert_eq!(scattered[s.index_full[i]], s.x[i]);
        }
        s.y = scattered;
        // gather back through the same permutation
        let z: Vec<f64> = (0..s.n).map(|i| s.y[s.index_full[i]]).collect();
        assert_eq!(z, s.x);
    }

    #[test]
    fn math_loops_match_libm() {
        let mut s = LoopSuite::new(512, 7);
        s.run_exp();
        for i in 0..s.n {
            assert_eq!(s.y[i], (-s.x[i]).exp());
        }
        s.run_sqrt();
        for i in 0..s.n {
            assert_eq!(s.y[i], s.x[i].sqrt());
        }
    }

    proptest::proptest! {
        #[test]
        fn gather_is_permutation_of_x(seed in 0u64..1000) {
            let mut s = LoopSuite::new(256, seed);
            s.run_gather(true);
            let mut xs = s.x.clone();
            let mut ys = s.y.clone();
            xs.sort_by(f64::total_cmp);
            ys.sort_by(f64::total_cmp);
            prop_assert_eq!(xs, ys);
        }
    }
    use proptest::prelude::prop_assert_eq;
}
