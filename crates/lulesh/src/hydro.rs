//! The Lagrangian hydrodynamics core.
//!
//! Structured hex mesh: `(n+1)³` nodes, `n³` elements. Per cycle:
//!
//! 1. Courant/viscosity timestep control;
//! 2. nodal forces `F = −(p+q)·∂V/∂x` with the *exact* gradient of the
//!    tetrahedral-decomposition volume (so pressure work and internal
//!    energy are compatible, and total energy is conserved up to time
//!    discretization);
//! 3. kinematics: `a = F/m`, `v += a·dt` (symmetry planes at x=y=z=0),
//!    `x += v·dt`;
//! 4. element update: new volumes, `de = −(p+q)·dV`, ideal-gas EOS
//!    `p = (γ−1)·e/V_rel·…`, scalar artificial viscosity on compression.
//!
//! The Sedov problem deposits a point energy at the origin corner element;
//! the blast then expands spherically (symmetry is a test invariant).

/// Ideal-gas gamma.
const GAMMA: f64 = 1.4;
/// Artificial viscosity coefficients (linear, quadratic).
const Q1: f64 = 0.06;
const Q2: f64 = 2.0;
/// Courant safety factor.
const CFL: f64 = 0.3;

/// Hex-corner offsets in (i, j, k), LULESH node ordering.
const CORNERS: [(usize, usize, usize); 8] = [
    (0, 0, 0),
    (1, 0, 0),
    (1, 1, 0),
    (0, 1, 0),
    (0, 0, 1),
    (1, 0, 1),
    (1, 1, 1),
    (0, 1, 1),
];

/// Fixed 6-tet decomposition of a hex (corner indices into `CORNERS`).
const TETS: [[usize; 4]; 6] = [
    [0, 1, 2, 6],
    [0, 2, 3, 6],
    [0, 3, 7, 6],
    [0, 7, 4, 6],
    [0, 4, 5, 6],
    [0, 5, 1, 6],
];

/// Solver state (struct-of-arrays; the `variants` module builds the AoS
/// "Base" flavor on top of the same physics).
#[derive(Debug, Clone)]
pub struct Hydro {
    /// Elements per edge.
    pub n: usize,
    // --- nodal fields, (n+1)³ ---
    pub x: Vec<[f64; 3]>,
    pub v: Vec<[f64; 3]>,
    pub f: Vec<[f64; 3]>,
    pub nodal_mass: Vec<f64>,
    // --- element fields, n³ ---
    pub e: Vec<f64>,     // internal energy (extensive)
    pub p: Vec<f64>,     // pressure
    pub q: Vec<f64>,     // artificial viscosity
    pub vol: Vec<f64>,   // current volume
    pub vol0: Vec<f64>,  // reference volume
    pub emass: Vec<f64>, // element mass
    pub time: f64,
    pub cycles: usize,
}

impl Hydro {
    /// Sedov setup on the unit cube with `n³` elements and energy `e0`
    /// in the corner element at the origin.
    pub fn sedov(n: usize, e0: f64) -> Self {
        assert!(n >= 3);
        let nn = n + 1;
        let h = 1.0 / n as f64;
        let mut x = Vec::with_capacity(nn * nn * nn);
        for i in 0..nn {
            for j in 0..nn {
                for k in 0..nn {
                    x.push([i as f64 * h, j as f64 * h, k as f64 * h]);
                }
            }
        }
        let nelem = n * n * n;
        let vol0 = h * h * h;
        let rho0 = 1.0;
        let mut s = Hydro {
            n,
            v: vec![[0.0; 3]; nn * nn * nn],
            f: vec![[0.0; 3]; nn * nn * nn],
            nodal_mass: vec![0.0; nn * nn * nn],
            x,
            e: vec![0.0; nelem],
            p: vec![0.0; nelem],
            q: vec![0.0; nelem],
            vol: vec![vol0; nelem],
            vol0: vec![vol0; nelem],
            emass: vec![rho0 * vol0; nelem],
            time: 0.0,
            cycles: 0,
        };
        // nodal masses: element mass shared by its 8 corners
        for el in 0..nelem {
            for c in s.elem_nodes(el) {
                s.nodal_mass[c] += rho0 * vol0 / 8.0;
            }
        }
        // Sedov energy in the origin element
        let origin = s.eidx(0, 0, 0);
        s.e[origin] = e0;
        s.update_eos();
        s
    }

    #[inline]
    pub fn nidx(&self, i: usize, j: usize, k: usize) -> usize {
        let nn = self.n + 1;
        (i * nn + j) * nn + k
    }

    #[inline]
    pub fn eidx(&self, i: usize, j: usize, k: usize) -> usize {
        (i * self.n + j) * self.n + k
    }

    /// The 8 node indices of element `el`, LULESH corner order.
    pub fn elem_nodes(&self, el: usize) -> [usize; 8] {
        let k = el % self.n;
        let j = (el / self.n) % self.n;
        let i = el / (self.n * self.n);
        std::array::from_fn(|c| {
            let (di, dj, dk) = CORNERS[c];
            self.nidx(i + di, j + dj, k + dk)
        })
    }

    /// Element volume by tetrahedral decomposition.
    pub fn elem_volume(&self, corners: &[[f64; 3]; 8]) -> f64 {
        let mut v = 0.0;
        for t in TETS {
            let a = corners[t[0]];
            let b = corners[t[1]];
            let c = corners[t[2]];
            let d = corners[t[3]];
            v += tet_vol(a, b, c, d);
        }
        v
    }

    /// Volume gradient wrt each corner (exact for the decomposition).
    pub fn volume_gradients(&self, corners: &[[f64; 3]; 8]) -> [[f64; 3]; 8] {
        let mut g = [[0.0; 3]; 8];
        for t in TETS {
            let pa = corners[t[0]];
            let pb = corners[t[1]];
            let pc = corners[t[2]];
            let pd = corners[t[3]];
            // V = (b−a)·((c−a)×(d−a))/6
            let gb = cross(sub(pc, pa), sub(pd, pa));
            let gc = cross(sub(pd, pa), sub(pb, pa));
            let gd = cross(sub(pb, pa), sub(pc, pa));
            for m in 0..3 {
                g[t[1]][m] += gb[m] / 6.0;
                g[t[2]][m] += gc[m] / 6.0;
                g[t[3]][m] += gd[m] / 6.0;
                g[t[0]][m] -= (gb[m] + gc[m] + gd[m]) / 6.0;
            }
        }
        g
    }

    /// Sound speed of element `el`.
    fn sound_speed(&self, el: usize) -> f64 {
        let rho = self.emass[el] / self.vol[el];
        (GAMMA * self.p[el].max(1e-12) / rho).sqrt()
    }

    /// Courant/viscosity timestep.
    pub fn compute_dt(&self) -> f64 {
        let mut dt = f64::INFINITY;
        for el in 0..self.e.len() {
            let h = self.vol[el].cbrt();
            let c = self.sound_speed(el);
            // include viscosity signal speed
            let rho = self.emass[el] / self.vol[el];
            let qs = (self.q[el] / rho).sqrt();
            dt = dt.min(CFL * h / (c + 2.0 * qs + 1e-30));
        }
        dt.min(1e-2)
    }

    fn update_eos(&mut self) {
        for el in 0..self.e.len() {
            // ideal gas on extensive energy: p = (γ−1)·(e/V)
            self.p[el] = (GAMMA - 1.0) * (self.e[el] / self.vol[el]).max(0.0);
        }
    }

    /// One explicit cycle; returns dt.
    ///
    /// Energy compatibility: positions advance with the midpoint velocity
    /// `v_mid = v_old + a·dt/2`, and internal energy is drained by exactly
    /// the work the pressure force does on the nodes, `de = −Σ F·v_mid·dt`
    /// (an algebraic identity with the kinetic-energy change), so total
    /// energy is conserved up to the variation of the gradients over dt.
    pub fn step(&mut self) -> f64 {
        let dt = self.compute_dt();
        let nelem = self.e.len();

        // ---- nodal forces + per-element gradient stash ----
        self.f.iter_mut().for_each(|f| *f = [0.0; 3]);
        let mut elem_grads = vec![[[0.0f64; 3]; 8]; nelem];
        for el in 0..nelem {
            let nodes = self.elem_nodes(el);
            let corners: [[f64; 3]; 8] = std::array::from_fn(|c| self.x[nodes[c]]);
            let grads = self.volume_gradients(&corners);
            // F = −∂U/∂x = +(p+q)·∂V/∂x: pressure pushes nodes outward.
            let s = self.p[el] + self.q[el];
            for c in 0..8 {
                for m in 0..3 {
                    self.f[nodes[c]][m] += s * grads[c][m];
                }
            }
            elem_grads[el] = grads;
        }

        // ---- kinematics (midpoint rule); v_mid stashed in self.f ----
        let nn = self.n + 1;
        for i in 0..nn {
            for j in 0..nn {
                for k in 0..nn {
                    let idx = self.nidx(i, j, k);
                    let m = self.nodal_mass[idx];
                    let mut vmid = [0.0f64; 3];
                    for d in 0..3 {
                        let a = self.f[idx][d] / m;
                        vmid[d] = self.v[idx][d] + 0.5 * a * dt;
                        self.v[idx][d] += a * dt;
                    }
                    // symmetry planes: no normal velocity at i/j/k == 0
                    if i == 0 {
                        self.v[idx][0] = 0.0;
                        vmid[0] = 0.0;
                    }
                    if j == 0 {
                        self.v[idx][1] = 0.0;
                        vmid[1] = 0.0;
                    }
                    if k == 0 {
                        self.v[idx][2] = 0.0;
                        vmid[2] = 0.0;
                    }
                    for d in 0..3 {
                        self.x[idx][d] += dt * vmid[d];
                    }
                    self.f[idx] = vmid; // reuse force buffer for v_mid
                }
            }
        }

        // ---- element update: work-compatible energy, volume, EOS, q ----
        for el in 0..nelem {
            let nodes = self.elem_nodes(el);
            let corners: [[f64; 3]; 8] = std::array::from_fn(|c| self.x[nodes[c]]);
            let newvol = self.elem_volume(&corners);
            let dvol = newvol - self.vol[el];
            // dV along the actual nodal motion, with start-of-step grads:
            let mut dvol_lin = 0.0;
            for c in 0..8 {
                let vm = self.f[nodes[c]];
                for m in 0..3 {
                    dvol_lin += elem_grads[el][c][m] * vm[m] * dt;
                }
            }
            self.e[el] -= (self.p[el] + self.q[el]) * dvol_lin;
            if self.e[el] < 0.0 {
                self.e[el] = 0.0;
            }
            // artificial viscosity on compression
            let rho = self.emass[el] / newvol;
            let h = newvol.cbrt();
            let dvdt = dvol / (newvol * dt);
            self.q[el] = if dvol < 0.0 {
                let du = -dvdt * h; // compression speed scale
                rho * (Q1 * self.sound_speed(el) * du + Q2 * du * du)
            } else {
                0.0
            };
            self.vol[el] = newvol;
        }
        self.update_eos();

        self.time += dt;
        self.cycles += 1;
        dt
    }

    /// Run until `t_end` or `max_cycles`.
    pub fn run(&mut self, t_end: f64, max_cycles: usize) {
        let _span = ookami_core::obs::region("lulesh_hydro");
        while self.time < t_end && self.cycles < max_cycles {
            self.step();
        }
    }

    /// Threaded cycle: identical physics to [`Hydro::step`], with the
    /// force pass privatized per thread (elements share corner nodes, the
    /// classic Lagrangian race) and the kinematics/element passes split
    /// over disjoint ranges. Bitwise-identical results to the serial step
    /// because the per-thread partials are reduced in thread order.
    pub fn step_mt(&mut self, threads: usize) -> f64 {
        use ookami_core::runtime::{par_for, SendPtr};
        if threads <= 1 {
            return self.step();
        }
        let dt = self.compute_dt();
        let nelem = self.e.len();
        let nnode = self.x.len();

        // ---- forces: privatized accumulators over element ranges ----
        // Elements share corner nodes, so each logical thread scatters
        // into its own nodal-force vector; the static-schedule reduction
        // combines partials in thread order, keeping results bitwise
        // identical to the serial step.
        let nthreads = threads.min(nelem.max(1));
        let mut grads_all = vec![[[0.0f64; 3]; 8]; nelem];
        let forces: Vec<[f64; 3]> = {
            let this = &*self;
            let gbase = SendPtr::new(grads_all.as_mut_ptr());
            ookami_core::par_reduce_with(
                nthreads,
                nelem,
                ookami_core::Schedule::Static,
                vec![[0.0f64; 3]; nnode],
                |start, end, mut acc| {
                    // SAFETY: each reduce range gets the matching
                    // `start..end` window of `grads_all`; static ranges are
                    // disjoint and the borrow outlives the region.
                    let grads_out = unsafe { gbase.slice_mut(start, end.saturating_sub(start)) };
                    for (gi, el) in (start..end).enumerate() {
                        let nodes = this.elem_nodes(el);
                        let corners: [[f64; 3]; 8] = std::array::from_fn(|c| this.x[nodes[c]]);
                        let grads = this.volume_gradients(&corners);
                        let s = this.p[el] + this.q[el];
                        for c in 0..8 {
                            for m in 0..3 {
                                acc[nodes[c]][m] += s * grads[c][m];
                            }
                        }
                        grads_out[gi] = grads;
                    }
                    acc
                },
                |mut a, b| {
                    for (fv, pv) in a.iter_mut().zip(&b) {
                        for m in 0..3 {
                            fv[m] += pv[m];
                        }
                    }
                    a
                },
            )
        };
        self.f = forces;

        // ---- kinematics: disjoint node ranges ----
        let nn = self.n + 1;
        {
            let xb = SendPtr::new(self.x.as_mut_ptr());
            let vb = SendPtr::new(self.v.as_mut_ptr());
            let fb = SendPtr::new(self.f.as_mut_ptr());
            let mass = &self.nodal_mass;
            par_for(threads, nnode, |_, s0, e0| {
                // SAFETY: (all three) each thread derives only its own
                // `s0..e0` node window of x/v/f; static ranges partition
                // `0..nnode` and the borrows outlive the region.
                let x = unsafe { xb.slice_mut(s0, e0 - s0) };
                let v = unsafe { vb.slice_mut(s0, e0 - s0) };
                let f = unsafe { fb.slice_mut(s0, e0 - s0) };
                for (li, idx) in (s0..e0).enumerate() {
                    let k = idx % nn;
                    let j = (idx / nn) % nn;
                    let i = idx / (nn * nn);
                    let m = mass[idx];
                    let mut vmid = [0.0f64; 3];
                    for d in 0..3 {
                        let a = f[li][d] / m;
                        vmid[d] = v[li][d] + 0.5 * a * dt;
                        v[li][d] += a * dt;
                    }
                    if i == 0 {
                        v[li][0] = 0.0;
                        vmid[0] = 0.0;
                    }
                    if j == 0 {
                        v[li][1] = 0.0;
                        vmid[1] = 0.0;
                    }
                    if k == 0 {
                        v[li][2] = 0.0;
                        vmid[2] = 0.0;
                    }
                    for d in 0..3 {
                        x[li][d] += dt * vmid[d];
                    }
                    f[li] = vmid; // stash v_mid, as in the serial step
                }
            });
        }

        // ---- element update: disjoint element ranges (field-disjoint
        // borrows: e/q/vol mutate, p/x/f/emass read) ----
        {
            let n = self.n;
            let p_arr = &self.p;
            let x_arr = &self.x;
            let f_arr = &self.f;
            let emass = &self.emass;
            let grads_ref = &grads_all;
            let eb = SendPtr::new(self.e.as_mut_ptr());
            let qb = SendPtr::new(self.q.as_mut_ptr());
            let volb = SendPtr::new(self.vol.as_mut_ptr());
            let nn = n + 1;
            let node_of = move |el: usize, c: usize| {
                let k = el % n;
                let j = (el / n) % n;
                let i = el / (n * n);
                let (di, dj, dk) = CORNERS[c];
                ((i + di) * nn + (j + dj)) * nn + (k + dk)
            };
            par_for(threads, nelem, |_, s0, e0| {
                // SAFETY: (all three) per-thread `s0..e0` element windows
                // of e/q/vol; static ranges partition `0..nelem` and the
                // buffers outlive the region.
                let ee = unsafe { eb.slice_mut(s0, e0 - s0) };
                let qq = unsafe { qb.slice_mut(s0, e0 - s0) };
                let vv = unsafe { volb.slice_mut(s0, e0 - s0) };
                for (li, el) in (s0..e0).enumerate() {
                    let corners: [[f64; 3]; 8] = std::array::from_fn(|c| x_arr[node_of(el, c)]);
                    let newvol = hex_volume(&corners);
                    let dvol = newvol - vv[li];
                    let mut dvol_lin = 0.0;
                    for c in 0..8 {
                        let vm = f_arr[node_of(el, c)];
                        for m in 0..3 {
                            dvol_lin += grads_ref[el][c][m] * vm[m] * dt;
                        }
                    }
                    ee[li] -= (p_arr[el] + qq[li]) * dvol_lin;
                    if ee[li] < 0.0 {
                        ee[li] = 0.0;
                    }
                    let rho = emass[el] / newvol;
                    let h = newvol.cbrt();
                    let dvdt = dvol / (newvol * dt);
                    qq[li] = if dvol < 0.0 {
                        let c0 = {
                            let rho0 = emass[el] / vv[li];
                            (GAMMA * p_arr[el].max(1e-12) / rho0).sqrt()
                        };
                        let du = -dvdt * h;
                        rho * (Q1 * c0 * du + Q2 * du * du)
                    } else {
                        0.0
                    };
                    vv[li] = newvol;
                }
            });
        }
        self.update_eos();

        self.time += dt;
        self.cycles += 1;
        dt
    }

    /// Run with threads until `t_end` or `max_cycles`.
    pub fn run_mt(&mut self, t_end: f64, max_cycles: usize, threads: usize) {
        let _span = ookami_core::obs::region("lulesh_hydro");
        while self.time < t_end && self.cycles < max_cycles {
            self.step_mt(threads);
        }
    }

    /// Total energy: internal + kinetic.
    pub fn total_energy(&self) -> f64 {
        let internal: f64 = self.e.iter().sum();
        let kinetic: f64 = self
            .v
            .iter()
            .zip(&self.nodal_mass)
            .map(|(v, m)| 0.5 * m * (v[0] * v[0] + v[1] * v[1] + v[2] * v[2]))
            .sum();
        internal + kinetic
    }

    /// Pressure along the x axis (element row j=k=0) — for shock tracking.
    pub fn pressure_profile_x(&self) -> Vec<f64> {
        (0..self.n).map(|i| self.p[self.eidx(i, 0, 0)]).collect()
    }
}

#[inline]
fn sub(a: [f64; 3], b: [f64; 3]) -> [f64; 3] {
    [a[0] - b[0], a[1] - b[1], a[2] - b[2]]
}

#[inline]
fn cross(a: [f64; 3], b: [f64; 3]) -> [f64; 3] {
    [
        a[1] * b[2] - a[2] * b[1],
        a[2] * b[0] - a[0] * b[2],
        a[0] * b[1] - a[1] * b[0],
    ]
}

/// Hex volume by the fixed tetrahedral decomposition (free-function form
/// for borrow-free use inside parallel closures).
#[inline]
pub fn hex_volume(corners: &[[f64; 3]; 8]) -> f64 {
    let mut v = 0.0;
    for t in TETS {
        v += tet_vol(corners[t[0]], corners[t[1]], corners[t[2]], corners[t[3]]);
    }
    v
}

#[inline]
fn tet_vol(a: [f64; 3], b: [f64; 3], c: [f64; 3], d: [f64; 3]) -> f64 {
    let ab = sub(b, a);
    let ac = sub(c, a);
    let ad = sub(d, a);
    (ab[0] * (ac[1] * ad[2] - ac[2] * ad[1])
        + ab[1] * (ac[2] * ad[0] - ac[0] * ad[2])
        + ab[2] * (ac[0] * ad[1] - ac[1] * ad[0]))
        / 6.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_volumes_match_mesh() {
        let s = Hydro::sedov(8, 1.0);
        let h = 1.0 / 8.0;
        for &v in &s.vol {
            assert!((v - h * h * h).abs() < 1e-15);
        }
        let total: f64 = s.vol.iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn volume_gradient_is_exact() {
        // Finite-difference check of ∂V/∂x on a perturbed hex.
        let s = Hydro::sedov(3, 1.0);
        let mut corners: [[f64; 3]; 8] = std::array::from_fn(|c| {
            let (i, j, k) = CORNERS[c];
            [
                i as f64 + 0.05 * (c as f64).sin(),
                j as f64 + 0.04 * (c as f64).cos(),
                k as f64 + 0.03 * (c as f64 * 0.7).sin(),
            ]
        });
        let g = s.volume_gradients(&corners);
        let v0 = s.elem_volume(&corners);
        let eps = 1e-6;
        for c in 0..8 {
            for m in 0..3 {
                corners[c][m] += eps;
                let v1 = s.elem_volume(&corners);
                corners[c][m] -= eps;
                let fd = (v1 - v0) / eps;
                assert!(
                    (fd - g[c][m]).abs() < 1e-6,
                    "corner {c} dim {m}: fd {fd} vs analytic {}",
                    g[c][m]
                );
            }
        }
    }

    #[test]
    fn gradients_sum_to_zero() {
        // Translating the hex doesn't change volume.
        let s = Hydro::sedov(3, 1.0);
        let corners: [[f64; 3]; 8] = std::array::from_fn(|c| {
            let (i, j, k) = CORNERS[c];
            [i as f64 * 1.1, j as f64 * 0.9, k as f64 * 1.05]
        });
        let g = s.volume_gradients(&corners);
        for m in 0..3 {
            let sum: f64 = g.iter().map(|gc| gc[m]).sum();
            assert!(sum.abs() < 1e-14, "dim {m}: {sum}");
        }
    }

    #[test]
    fn energy_is_approximately_conserved() {
        let mut s = Hydro::sedov(10, 1.0);
        let e0 = s.total_energy();
        s.run(0.05, 300);
        assert!(s.cycles > 10, "only {} cycles", s.cycles);
        let e1 = s.total_energy();
        assert!(
            ((e1 - e0) / e0).abs() < 0.05,
            "energy drift {} -> {} over {} cycles",
            e0,
            e1,
            s.cycles
        );
    }

    #[test]
    fn blast_is_symmetric() {
        let mut s = Hydro::sedov(8, 1.0);
        s.run(0.03, 150);
        // The three axes see identical profiles by symmetry.
        for i in 0..s.n {
            let px = s.p[s.eidx(i, 0, 0)];
            let py = s.p[s.eidx(0, i, 0)];
            let pz = s.p[s.eidx(0, 0, i)];
            assert!((px - py).abs() < 1e-9 * px.abs().max(1.0), "i={i}");
            assert!((px - pz).abs() < 1e-9 * px.abs().max(1.0), "i={i}");
        }
    }

    #[test]
    fn shock_moves_outward() {
        let mut s = Hydro::sedov(12, 1.0);
        s.run(0.01, 60);
        let early: Vec<f64> = s.pressure_profile_x();
        let front_early = shock_front(&early);
        s.run(0.06, 400);
        let late: Vec<f64> = s.pressure_profile_x();
        let front_late = shock_front(&late);
        assert!(
            front_late > front_early,
            "front {front_early} -> {front_late}\nearly {early:?}\nlate {late:?}"
        );
    }

    fn shock_front(profile: &[f64]) -> usize {
        // outermost element with pressure above 1% of max
        let pmax = profile.iter().copied().fold(0.0, f64::max);
        profile.iter().rposition(|&p| p > 0.01 * pmax).unwrap_or(0)
    }

    #[test]
    fn volumes_stay_positive() {
        let mut s = Hydro::sedov(8, 1.0);
        s.run(0.08, 400);
        assert!(s.vol.iter().all(|&v| v > 0.0));
        assert!(s.p.iter().all(|&p| p >= 0.0));
    }

    #[test]
    fn threaded_step_matches_serial() {
        // Per-thread force partials reassociate the nodal sums, so agree-
        // ment is to rounding (not bitwise), like an OpenMP reduction.
        let mut a = Hydro::sedov(10, 1.0);
        let mut b = Hydro::sedov(10, 1.0);
        for _ in 0..15 {
            a.step();
            b.step_mt(5);
        }
        assert_eq!(a.cycles, b.cycles);
        for (x, y) in a.e.iter().zip(&b.e) {
            assert!((x - y).abs() <= 1e-12 * x.abs().max(1e-3), "e: {x} vs {y}");
        }
        for (x, y) in a.x.iter().zip(&b.x) {
            for d in 0..3 {
                assert!((x[d] - y[d]).abs() < 1e-12, "pos: {x:?} vs {y:?}");
            }
        }
    }

    #[test]
    fn run_mt_conserves_energy() {
        let mut s = Hydro::sedov(10, 1.0);
        s.run_mt(0.05, 300, 4);
        assert!((s.total_energy() - 1.0).abs() < 0.05);
    }

    #[test]
    fn dt_obeys_courant() {
        let s = Hydro::sedov(8, 1.0);
        let dt = s.compute_dt();
        let h = 1.0f64 / 8.0;
        let c_max =
            s.p.iter()
                .zip(&s.vol)
                .zip(&s.emass)
                .map(|((p, v), m)| (GAMMA * p / (m / v)).sqrt())
                .fold(0.0, f64::max);
        assert!(dt <= CFL * h / c_max * 1.5 + 1e-12, "dt {dt}");
    }
}
