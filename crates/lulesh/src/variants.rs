//! The paper's two LULESH flavors.
//!
//! *Base* is the LULESH 1.0 reference style: array-of-structs node and
//! element records walked by branchy per-element loops — code no compiler
//! vectorizes well (Table II shows all four A64FX toolchains within 1% of
//! each other on it). *Vect* is the restructured port ("done originally
//! for the Intel Sandy Bridge architecture"): struct-of-arrays fields and
//! split loops — our [`crate::hydro::Hydro`]. Both advance identical
//! physics; the test suite checks they agree to rounding.

use crate::hydro::Hydro;

/// AoS node record (Base flavor).
#[derive(Debug, Clone, Copy, Default)]
struct Node {
    x: [f64; 3],
    v: [f64; 3],
    f: [f64; 3],
    mass: f64,
}

/// AoS element record (Base flavor).
#[derive(Debug, Clone, Copy, Default)]
struct Elem {
    e: f64,
    p: f64,
    q: f64,
    vol: f64,
    mass: f64,
}

/// Which implementation to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    Base,
    Vect,
}

impl Variant {
    pub fn label(self) -> &'static str {
        match self {
            Variant::Base => "Base",
            Variant::Vect => "Vect",
        }
    }
}

/// Run the Sedov problem with the chosen variant; returns the final state
/// as a (time, cycles, total_energy, origin_pressure) tuple.
pub fn run_variant(
    variant: Variant,
    n: usize,
    t_end: f64,
    max_cycles: usize,
) -> (f64, usize, f64, f64) {
    match variant {
        Variant::Vect => {
            let mut h = Hydro::sedov(n, 1.0);
            h.run(t_end, max_cycles);
            (h.time, h.cycles, h.total_energy(), h.p[0])
        }
        Variant::Base => run_base(n, t_end, max_cycles),
    }
}

/// The Base (AoS) implementation: same physics as [`Hydro::step`], written
/// the way the 1.0 reference writes it — one record at a time.
fn run_base(n: usize, t_end: f64, max_cycles: usize) -> (f64, usize, f64, f64) {
    // Initialize through the SoA constructor to share the setup, then
    // convert to AoS records.
    let proto = Hydro::sedov(n, 1.0);
    let mut nodes: Vec<Node> = proto
        .x
        .iter()
        .zip(&proto.nodal_mass)
        .map(|(&x, &m)| Node {
            x,
            v: [0.0; 3],
            f: [0.0; 3],
            mass: m,
        })
        .collect();
    let mut elems: Vec<Elem> = (0..proto.e.len())
        .map(|el| Elem {
            e: proto.e[el],
            p: proto.p[el],
            q: proto.q[el],
            vol: proto.vol[el],
            mass: proto.emass[el],
        })
        .collect();

    let mut time = 0.0;
    let mut cycles = 0usize;
    let mut grads_stash = vec![[[0.0f64; 3]; 8]; elems.len()];
    const GAMMA: f64 = 1.4;
    const Q1: f64 = 0.06;
    const Q2: f64 = 2.0;
    const CFL: f64 = 0.3;

    while time < t_end && cycles < max_cycles {
        // dt
        let mut dt = f64::INFINITY;
        for el in &elems {
            let h = el.vol.cbrt();
            let rho = el.mass / el.vol;
            let c = (GAMMA * el.p.max(1e-12) / rho).sqrt();
            let qs = (el.q / rho).sqrt();
            dt = dt.min(CFL * h / (c + 2.0 * qs + 1e-30));
        }
        dt = dt.min(1e-2);

        // forces
        for node in &mut nodes {
            node.f = [0.0; 3];
        }
        for (el_idx, el) in elems.iter().enumerate() {
            let conn = proto.elem_nodes(el_idx);
            let corners: [[f64; 3]; 8] = std::array::from_fn(|c| nodes[conn[c]].x);
            let grads = proto.volume_gradients(&corners);
            let s = el.p + el.q;
            for c in 0..8 {
                for m in 0..3 {
                    nodes[conn[c]].f[m] += s * grads[c][m];
                }
            }
            grads_stash[el_idx] = grads;
        }

        // kinematics (midpoint); stash v_mid in f
        let nn = n + 1;
        for i in 0..nn {
            for j in 0..nn {
                for k in 0..nn {
                    let idx = (i * nn + j) * nn + k;
                    let node = &mut nodes[idx];
                    let mut vmid = [0.0f64; 3];
                    for d in 0..3 {
                        let a = node.f[d] / node.mass;
                        vmid[d] = node.v[d] + 0.5 * a * dt;
                        node.v[d] += a * dt;
                    }
                    if i == 0 {
                        node.v[0] = 0.0;
                        vmid[0] = 0.0;
                    }
                    if j == 0 {
                        node.v[1] = 0.0;
                        vmid[1] = 0.0;
                    }
                    if k == 0 {
                        node.v[2] = 0.0;
                        vmid[2] = 0.0;
                    }
                    for d in 0..3 {
                        node.x[d] += dt * vmid[d];
                    }
                    node.f = vmid;
                }
            }
        }

        // element update
        for (el_idx, el) in elems.iter_mut().enumerate() {
            let conn = proto.elem_nodes(el_idx);
            let corners: [[f64; 3]; 8] = std::array::from_fn(|c| nodes[conn[c]].x);
            let newvol = proto.elem_volume(&corners);
            let dvol = newvol - el.vol;
            let mut dvol_lin = 0.0;
            for c in 0..8 {
                let vm = nodes[conn[c]].f;
                for m in 0..3 {
                    dvol_lin += grads_stash[el_idx][c][m] * vm[m] * dt;
                }
            }
            el.e -= (el.p + el.q) * dvol_lin;
            if el.e < 0.0 {
                el.e = 0.0;
            }
            let rho = el.mass / newvol;
            let h = newvol.cbrt();
            let dvdt = dvol / (newvol * dt);
            el.q = if dvol < 0.0 {
                let c = (GAMMA * el.p.max(1e-12) / (el.mass / el.vol)).sqrt();
                let du = -dvdt * h;
                rho * (Q1 * c * du + Q2 * du * du)
            } else {
                0.0
            };
            el.vol = newvol;
            el.p = (GAMMA - 1.0) * (el.e / el.vol).max(0.0);
        }

        time += dt;
        cycles += 1;
    }

    let internal: f64 = elems.iter().map(|e| e.e).sum();
    let kinetic: f64 = nodes
        .iter()
        .map(|nd| 0.5 * nd.mass * (nd.v[0] * nd.v[0] + nd.v[1] * nd.v[1] + nd.v[2] * nd.v[2]))
        .sum();
    (time, cycles, internal + kinetic, elems[0].p)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_and_vect_agree() {
        let (tb, cb, eb, pb) = run_variant(Variant::Base, 8, 0.03, 200);
        let (tv, cv, ev, pv) = run_variant(Variant::Vect, 8, 0.03, 200);
        assert_eq!(cb, cv, "cycle counts differ");
        assert!((tb - tv).abs() < 1e-12);
        assert!((eb - ev).abs() < 1e-9 * eb.max(1.0), "{eb} vs {ev}");
        assert!((pb - pv).abs() < 1e-9 * pb.abs().max(1.0), "{pb} vs {pv}");
    }

    #[test]
    fn both_conserve_energy() {
        for v in [Variant::Base, Variant::Vect] {
            let (_, cycles, e, _) = run_variant(v, 8, 0.05, 300);
            assert!(cycles > 10);
            assert!((e - 1.0).abs() < 0.05, "{v:?}: energy {e}");
        }
    }
}
