//! # ookami-lulesh — the LULESH proxy application (Section VI)
//!
//! LULESH (Livermore Unstructured Lagrangian Explicit Shock Hydrodynamics)
//! "solves a simplified Sedov blast problem with analytic answers while
//! capturing the numerical essentials of more complex hydrodynamic
//! applications". This crate provides:
//!
//! * [`hydro`] — a runnable Lagrangian shock-hydrodynamics mini-app on a
//!   structured hex mesh: staggered kinematics (nodal velocity/position,
//!   element pressure/energy), compatible pressure forces via exact
//!   volume gradients, ideal-gas EOS, artificial viscosity, Courant
//!   timestep, Sedov point-energy initiation, symmetry boundary
//!   conditions. Verified for energy conservation and blast symmetry.
//! * [`variants`] — the paper's *Base* (LULESH 1.0 reference style:
//!   array-of-structs, branchy element loops) and *Vect* (the vectorized
//!   port "done originally for the Intel Sandy Bridge architecture":
//!   struct-of-arrays, split branchless loops) implementations, verified
//!   to produce identical physics.
//! * [`table2`] — the Table II / Fig. 7 regenerator: Base/Vect ×
//!   single-thread/all-cores × five toolchains, from the workload model.

pub mod hydro;
pub mod table2;
pub mod variants;

pub use hydro::Hydro;
pub use variants::{run_variant, Variant};
