//! Table II / Fig. 7: LULESH timings across toolchains and variants.
//!
//! The paper reports Base and Vect, single-thread (st) and all-cores (mt),
//! for five toolchains. The striking Base row — ARM 2.030, CPE 2.055,
//! Fujitsu 2.052, GNU 2.054, Intel/x86 0.395 — shows (a) that the 1.0
//! reference code does not vectorize anywhere, making it a pure scalar-IPC
//! shoot-out the A64FX core loses ~5×, and (b) that the Sandy-Bridge-era
//! vectorized port transfers to SVE ("promising vectorization for LULESH
//! based on code tuned for Intel architectures").

use crate::variants::Variant;
use ookami_core::measure::{Measurement, Table};
use ookami_core::WorkloadProfile;
use ookami_toolchain::app_model::predict_default;
use ookami_toolchain::Compiler;
use ookami_uarch::{machines, Machine};

/// Total FLOPs of the timed LULESH run (calibrated so the Base row lands
/// at the paper's ~2.05 s scale on A64FX).
const LULESH_FLOPS: f64 = 2.4e9;

/// Workload profile for a LULESH variant.
pub fn lulesh_profile(variant: Variant) -> WorkloadProfile {
    match variant {
        // Reference 1.0 code: effectively unvectorized, branchy AoS loops.
        Variant::Base => WorkloadProfile::new("LULESH base", LULESH_FLOPS, 3e9)
            .with_vec_fraction(0.0)
            .with_stride_waste(0.4)
            .with_parallel(0.993, 2000.0, 1.2),
        // The vectorized port: about half the work moves into vector loops.
        Variant::Vect => WorkloadProfile::new("LULESH vect", LULESH_FLOPS, 3e9)
            .with_vec_fraction(0.5)
            .with_stride_waste(0.3)
            .with_parallel(0.993, 2000.0, 1.2),
    }
}

fn machine_for(c: Compiler) -> &'static Machine {
    match c {
        // The LULESH comparison node is the Xeon Gold 6130 (32 cores).
        Compiler::Intel => machines::skylake_6130(),
        _ => machines::a64fx(),
    }
}

/// All five toolchains of Table II.
pub const TOOLCHAINS: [Compiler; 5] = [
    Compiler::Arm,
    Compiler::Cray,
    Compiler::Fujitsu,
    Compiler::Gnu,
    Compiler::Intel,
];

/// One Table II cell: seconds for (compiler, variant, all_cores?).
pub fn time_s(c: Compiler, variant: Variant, all_cores: bool) -> f64 {
    let m = machine_for(c);
    let threads = if all_cores { m.cores_per_node } else { 1 };
    predict_default(&lulesh_profile(variant), c, m, threads)
}

/// Table II as measurements.
pub fn table2() -> Vec<Measurement> {
    let mut out = Vec::new();
    for c in TOOLCHAINS {
        for (variant, vtag) in [(Variant::Base, "base"), (Variant::Vect, "vect")] {
            for (mt, mtag) in [(false, "st"), (true, "mt")] {
                let m = machine_for(c);
                out.push(Measurement::new(
                    "table2",
                    &format!("{vtag}({mtag})"),
                    m.name,
                    c.label(),
                    if mt { m.cores_per_node } else { 1 },
                    time_s(c, variant, mt),
                    "seconds",
                ));
            }
        }
    }
    out
}

/// Render Table II in the paper's layout.
pub fn render_table2() -> String {
    let mut t = Table::new(
        "Table II / Fig. 7 — LULESH timings (paper: Base(st) ≈ 2.03–2.06 on A64FX vs 0.395 Intel; Vect(st) 1.31–1.58 vs 0.260)",
        &["compiler", "Base(st)", "Base(mt)", "Vect(st)", "Vect(mt)"],
    );
    for c in TOOLCHAINS {
        t.row(&[
            c.label().to_string(),
            format!("{:.3}", time_s(c, Variant::Base, false)),
            format!("{:.4}", time_s(c, Variant::Base, true)),
            format!("{:.3}", time_s(c, Variant::Vect, false)),
            format!("{:.4}", time_s(c, Variant::Vect, true)),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_st_is_uniform_on_a64fx_and_5x_on_intel() {
        let a64: Vec<f64> = [
            Compiler::Arm,
            Compiler::Cray,
            Compiler::Fujitsu,
            Compiler::Gnu,
        ]
        .iter()
        .map(|&c| time_s(c, Variant::Base, false))
        .collect();
        let spread = a64.iter().copied().fold(0.0, f64::max)
            / a64.iter().copied().fold(f64::INFINITY, f64::min);
        assert!(spread < 1.05, "A64FX Base(st) spread {spread}: {a64:?}");
        // Magnitude ≈ 2.05 s and Intel ratio ≈ 5×.
        assert!((a64[0] / 2.05 - 1.0).abs() < 0.2, "Base(st) {}", a64[0]);
        let intel = time_s(Compiler::Intel, Variant::Base, false);
        let ratio = a64[0] / intel;
        assert!(ratio > 3.5 && ratio < 7.0, "Base(st) A64FX/Intel {ratio}");
    }

    #[test]
    fn vect_is_faster_than_base_everywhere() {
        for c in TOOLCHAINS {
            for mt in [false, true] {
                let b = time_s(c, Variant::Base, mt);
                let v = time_s(c, Variant::Vect, mt);
                assert!(v < b, "{c:?} mt={mt}: vect {v} vs base {b}");
            }
        }
    }

    #[test]
    fn vect_st_magnitudes() {
        // Paper: A64FX Vect(st) 1.31–1.58; Intel 0.260.
        for c in [
            Compiler::Arm,
            Compiler::Cray,
            Compiler::Fujitsu,
            Compiler::Gnu,
        ] {
            let v = time_s(c, Variant::Vect, false);
            assert!(v > 1.0 && v < 1.9, "{c:?} Vect(st) {v}");
        }
        let i = time_s(Compiler::Intel, Variant::Vect, false);
        assert!(i > 0.15 && i < 0.45, "Intel Vect(st) {i}");
    }

    #[test]
    fn mt_magnitudes_and_gap_narrows() {
        // Paper: Base(mt) ≈ 0.066 on A64FX, 0.0355 Intel — the node-level
        // gap shrinks from ~5× to ~2×.
        let a = time_s(Compiler::Gnu, Variant::Base, true);
        let i = time_s(Compiler::Intel, Variant::Base, true);
        assert!(a > 0.03 && a < 0.12, "A64FX Base(mt) {a}");
        let st_ratio = time_s(Compiler::Gnu, Variant::Base, false)
            / time_s(Compiler::Intel, Variant::Base, false);
        let mt_ratio = a / i;
        assert!(mt_ratio < st_ratio, "mt {mt_ratio} vs st {st_ratio}");
        assert!(
            mt_ratio > 1.0 && mt_ratio < 4.0,
            "Base(mt) ratio {mt_ratio}"
        );
    }

    #[test]
    fn table_renders_all_cells() {
        let rows = table2();
        assert_eq!(rows.len(), 20); // 5 compilers × 2 variants × 2 modes
        let txt = render_table2();
        assert!(txt.contains("fujitsu") && txt.contains("Vect(mt)"));
    }
}
