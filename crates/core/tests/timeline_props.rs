//! Timeline tracer properties (satellite of the observability PR): span
//! begin/end events pair and nest correctly under every pool schedule, the
//! Chrome-trace exporter's output always round-trips through the in-repo
//! `Json` parser, and chunk events account for exactly the iterations the
//! schedule dispatched.
//!
//! The whole file requires `--features obs`: without it the tracer is a
//! no-op by design (a separate unit test in `timeline.rs` pins that).
#![cfg(feature = "obs")]

use ookami_core::obs::{self, Json};
use ookami_core::{par_for_with, timeline, Schedule};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::Mutex;

/// Timeline state (recording flag, generation, rings) is global, so tests
/// that start/stop sessions must not overlap.
static TL_LOCK: Mutex<()> = Mutex::new(());

fn sched_strategy() -> impl Strategy<Value = Schedule> {
    prop_oneof![
        Just(Schedule::Static),
        (1usize..33).prop_map(|chunk| Schedule::Dynamic { chunk }),
        Just(Schedule::Guided),
    ]
}

/// Span names spanning the JSON-escaping edge cases: quotes, backslashes,
/// control characters, and plain printables.
fn name_strategy() -> impl Strategy<Value = String> {
    let ch = prop_oneof![
        (b' '..=b'~').prop_map(|b| b as char),
        Just('"'),
        Just('\\'),
        Just('\t'),
        Just('\n'),
        Just('\u{1}'),
    ];
    proptest::collection::vec(ch, 1..24).prop_map(|cs| cs.into_iter().collect())
}

fn chunk_event_name(s: Schedule) -> &'static str {
    match s {
        Schedule::Static => "chunk_static",
        Schedule::Dynamic { .. } => "chunk_dynamic",
        Schedule::Guided => "chunk_guided",
    }
}

/// Export, parse, and return the trace's events.
fn exported_events() -> Vec<Json> {
    let doc = timeline::export_chrome_trace();
    let parsed = Json::parse(&doc).expect("exported trace must parse with Json::parse");
    match parsed.get("traceEvents") {
        Some(Json::Arr(a)) => a.clone(),
        other => panic!("traceEvents missing or not an array: {other:?}"),
    }
}

fn str_of<'a>(e: &'a Json, key: &str) -> Option<&'a str> {
    match e.get(key) {
        Some(Json::Str(s)) => Some(s.as_str()),
        _ => None,
    }
}

fn num_of(e: &Json, key: &str) -> Option<f64> {
    match e.get(key) {
        Some(Json::Num(n)) => Some(*n),
        _ => None,
    }
}

/// Walk events and assert per-thread B/E stack discipline (matching names,
/// depth never negative, everything closed). Returns spans closed.
fn assert_well_nested(events: &[Json]) -> usize {
    let mut stacks: BTreeMap<i64, Vec<String>> = BTreeMap::new();
    let mut closed = 0;
    for e in events {
        let Some(ph) = str_of(e, "ph") else { continue };
        let tid = num_of(e, "tid").unwrap_or(-1.0) as i64;
        match ph {
            "B" => stacks
                .entry(tid)
                .or_default()
                .push(str_of(e, "name").expect("B event has a name").to_string()),
            "E" => {
                let top = stacks
                    .entry(tid)
                    .or_default()
                    .pop()
                    .unwrap_or_else(|| panic!("E with empty stack on tid {tid}"));
                let name = str_of(e, "name").expect("E event has a name");
                assert_eq!(top, name, "mispaired span end on tid {tid}");
                closed += 1;
            }
            _ => {}
        }
    }
    for (tid, stack) in stacks {
        assert!(stack.is_empty(), "tid {tid} left spans open: {stack:?}");
    }
    closed
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// A traced parallel region under any schedule exports a parseable
    /// trace whose spans are well-nested per thread, and whose chunk
    /// events account for exactly `len` iterations of that schedule.
    #[test]
    fn traced_region_is_well_nested_under_every_schedule(
        len in 1usize..400,
        threads in 1usize..6,
        sched in sched_strategy(),
    ) {
        let _g = TL_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        timeline::start(1 << 14);
        {
            let _outer = obs::region("tlp_region");
            par_for_with(threads, len, sched, |_tid, s, e| {
                std::hint::black_box(e - s);
            });
        }
        timeline::stop();

        let stats = timeline::stats();
        prop_assert_eq!(stats.events_dropped, 0, "capacity must hold the whole run");
        let events = exported_events();
        let closed = assert_well_nested(&events);
        prop_assert!(closed >= 1, "the obs::region span must appear");

        // Chunk accounting: the traced chunk lens of this schedule tile
        // the iteration space exactly.
        let want = chunk_event_name(sched);
        let traced: u64 = events
            .iter()
            .filter(|e| str_of(e, "ph") == Some("X") && str_of(e, "name") == Some(want))
            .map(|e| {
                num_of(e.get("args").expect("chunk X has args"), "len")
                    .expect("chunk args carry len") as u64
            })
            .sum();
        prop_assert_eq!(traced, len as u64, "chunk events must cover the range");
    }

    /// Arbitrary span names — including quotes, backslashes and control
    /// characters — survive the export → `Json::parse` round trip, with
    /// begin/end pairing intact under arbitrary nesting depth.
    #[test]
    fn exporter_roundtrips_arbitrary_span_names(
        names in proptest::collection::vec(name_strategy(), 1..8),
    ) {
        let _g = TL_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        timeline::start(1 << 12);
        fn nest(names: &[String]) {
            if let Some((first, rest)) = names.split_first() {
                let _span = obs::region(first);
                nest(rest);
            }
        }
        nest(&names);
        timeline::stop();

        let events = exported_events();
        let closed = assert_well_nested(&events);
        prop_assert_eq!(closed, names.len(), "every nested span must close");
        // Every name must appear verbatim after the JSON round trip. The
        // obs layer uses '/' to build span paths but passes the leaf name
        // through to the timeline unchanged.
        for name in &names {
            prop_assert!(
                events.iter().any(|e| str_of(e, "name") == Some(name.as_str())),
                "name {:?} lost in export", name
            );
        }
    }

    /// Drop-oldest never breaks nesting: even when the ring is much
    /// smaller than the event stream, the export still parses and every
    /// thread's spans balance.
    #[test]
    fn drop_oldest_preserves_nesting(spans in 40usize..200, cap in 16usize..64) {
        let _g = TL_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        timeline::start(cap);
        {
            let _outer = obs::region("tlp_drop_outer");
            for i in 0..spans {
                let _inner = obs::region(if i % 3 == 0 { "tlp_a" } else { "tlp_b" });
            }
        }
        timeline::stop();
        let events = exported_events();
        assert_well_nested(&events);
        let stats = timeline::stats();
        prop_assert!(
            stats.events_retained <= cap as u64 * stats.threads as u64,
            "retained {} exceeds ring capacity", stats.events_retained
        );
    }
}

/// Fork/join/barrier events from a real pooled region appear on the trace
/// and the document parses — the non-property integration smoke.
#[test]
fn pooled_region_emits_fork_join_events() {
    let _g = TL_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    // A private pool with workers guarantees the forked (non-inline) path.
    let pool = ookami_core::Pool::new(2);
    timeline::start(1 << 14);
    pool.run(4, |i| {
        std::hint::black_box(i);
    });
    timeline::stop();
    let events = exported_events();
    let has = |name: &str| {
        events
            .iter()
            .any(|e| str_of(e, "name") == Some(name) && str_of(e, "ph") == Some("i"))
    };
    assert!(has("fork"), "fork instant missing");
    assert!(has("join"), "join instant missing");
}
