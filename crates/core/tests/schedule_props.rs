//! Schedule correctness properties for the worker pool: every schedule
//! must partition the iteration space exactly — each index visited once,
//! no overlap, no gap — for arbitrary lengths, thread counts, and chunk
//! sizes, and (when built with `--features obs`) the chunk/iteration
//! counters must account for exactly the work dispatched.

use ookami_core::obs::{self, Counter};
use ookami_core::{par_for_with, par_reduce_with, Schedule};
use proptest::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The obs counter assertions read *global* deltas (pool workers count on
/// their own threads), so tests driving the pool must not overlap.
static POOL_LOCK: Mutex<()> = Mutex::new(());

fn sched_strategy() -> impl Strategy<Value = Schedule> {
    prop_oneof![
        Just(Schedule::Static),
        (1usize..33).prop_map(|chunk| Schedule::Dynamic { chunk }),
        Just(Schedule::Guided),
    ]
}

/// The per-schedule (chunks dispatched, iterations dispatched) counters.
fn sched_counters(s: Schedule) -> (Counter, Counter) {
    match s {
        Schedule::Static => (Counter::ChunksStatic, Counter::ItersStatic),
        Schedule::Dynamic { .. } => (Counter::ChunksDynamic, Counter::ItersDynamic),
        Schedule::Guided => (Counter::ChunksGuided, Counter::ItersGuided),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Exact-once coverage: for arbitrary `(len, threads, schedule)` the
    /// chunks handed to the body callback tile `0..len` with no overlap
    /// and no gap, and the obs iteration counters sum to exactly `len`.
    #[test]
    fn par_for_visits_every_index_exactly_once(
        len in 0usize..400,
        threads in 1usize..6,
        sched in sched_strategy(),
    ) {
        let _g = POOL_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let visits: Vec<AtomicUsize> = (0..len).map(|_| AtomicUsize::new(0)).collect();
        let before = obs::snapshot();
        par_for_with(threads, len, sched, |_tid, s, e| {
            for slot in &visits[s..e] {
                slot.fetch_add(1, Ordering::Relaxed);
            }
        });
        for (i, v) in visits.iter().enumerate() {
            let n = v.load(Ordering::Relaxed);
            prop_assert_eq!(n, 1, "index {} visited {} times", i, n);
        }
        if obs::enabled() {
            let d = obs::snapshot().since(&before);
            let (chunks, iters) = sched_counters(sched);
            prop_assert_eq!(d.get(iters), len as u64, "iteration counter mismatch");
            if len > 0 {
                let c = d.get(chunks);
                prop_assert!(
                    (1..=len as u64).contains(&c),
                    "chunk counter {} out of range for len {}", c, len
                );
            }
            // Work must land on the counters of the schedule that ran it,
            // not leak onto the other two.
            for other in [Schedule::Static, Schedule::Dynamic { chunk: 1 }, Schedule::Guided] {
                let (oc, oi) = sched_counters(other);
                if oi != sched_counters(sched).1 {
                    prop_assert_eq!(d.get(oi), 0);
                    prop_assert_eq!(d.get(oc), 0);
                }
            }
        }
    }

    /// Reductions see the same exact partition: summing each chunk's
    /// indices yields `len * (len - 1) / 2` under every schedule, and the
    /// obs iteration counters again sum to `len`.
    #[test]
    fn par_reduce_covers_every_index_exactly_once(
        len in 0usize..400,
        threads in 1usize..6,
        sched in sched_strategy(),
    ) {
        let _g = POOL_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let before = obs::snapshot();
        let total = par_reduce_with(
            threads,
            len,
            sched,
            0u64,
            |s, e, acc| acc + (s..e).map(|i| i as u64).sum::<u64>(),
            |a, b| a + b,
        );
        prop_assert_eq!(total, (len as u64 * len.saturating_sub(1) as u64) / 2);
        if obs::enabled() {
            let d = obs::snapshot().since(&before);
            let (_, iters) = sched_counters(sched);
            prop_assert_eq!(d.get(iters), len as u64);
        }
    }
}

/// Deterministic spot-check of the dynamic chunk accounting: with the
/// pool forced past the inline path, `Dynamic { chunk }` dispatches
/// exactly `ceil(len / chunk)` chunks.
#[test]
fn dynamic_chunk_count_is_exact() {
    if !obs::enabled() {
        return;
    }
    let _g = POOL_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    for (len, chunk) in [(96usize, 8usize), (97, 8), (100, 7), (5, 32)] {
        let before = obs::snapshot();
        par_for_with(2, len, Schedule::Dynamic { chunk }, |_tid, _s, _e| {});
        let d = obs::snapshot().since(&before);
        assert_eq!(d.get(Counter::ItersDynamic), len as u64);
        assert_eq!(
            d.get(Counter::ChunksDynamic),
            len.div_ceil(chunk) as u64,
            "len={len} chunk={chunk}"
        );
    }
}
