//! Telemetry-layer properties (satellites of the live-telemetry PR):
//! histogram snapshots must merge like the multiset union they claim to
//! be, quantiles must stay inside the bucket that holds the true rank
//! statistic, span-tree folding must preserve the timing algebra
//! (inclusive ≥ self, children nest inside parents) for *arbitrary*
//! well-nested timelines, and the collapsed-stack export must round-trip
//! through the in-repo parser losslessly.
//!
//! Everything here is pure-data — [`HistSnapshot`] arithmetic and the
//! [`spantree::fold`] function take plain slices — so the whole file runs
//! identically with and without `--features obs`.

use ookami_core::telemetry::{self, spantree, HistSnapshot};
use ookami_core::timeline::{EventPayload, TimelineEvent};
use proptest::prelude::*;

fn hist_of(values: &[u64]) -> HistSnapshot {
    let mut h = HistSnapshot::new();
    for &v in values {
        h.observe(v);
    }
    h
}

/// One thread's well-nested span timeline: a push/pop tape rendered into
/// begin/end events with strictly increasing timestamps. Pops on an empty
/// stack are dropped (the tape stays well-nested by construction); spans
/// still open when the tape ends are left open — `fold` must close them
/// at the thread's last timestamp.
fn render_tape(tid: u64, tape: &[(bool, u8)], ts: &mut u64) -> Vec<TimelineEvent> {
    let mut events = Vec::new();
    let mut depth = 0u32;
    for &(push, name) in tape {
        *ts += 1 + u64::from(name); // uneven, strictly increasing gaps
        if push {
            depth += 1;
            events.push(TimelineEvent {
                tid,
                ts_ns: *ts,
                name: format!("s{}", name % 5),
                payload: EventPayload::SpanBegin,
            });
        } else if depth > 0 {
            depth -= 1;
            events.push(TimelineEvent {
                tid,
                ts_ns: *ts,
                name: String::new(), // fold pairs ends by stack, not name
                payload: EventPayload::SpanEnd,
            });
        }
    }
    events
}

/// Walk a folded tree depth-first, checking the timing algebra at every
/// node and returning (nodes visited, total close count).
fn check_node(node: &spantree::SpanNode) -> (usize, u64) {
    assert!(
        node.incl_ns >= node.self_ns,
        "inclusive {} < self {} at `{}`",
        node.incl_ns,
        node.self_ns,
        node.name
    );
    let child_sum: u64 = node.children.values().map(|c| c.incl_ns).sum();
    assert!(
        child_sum <= node.incl_ns,
        "children sum {} exceeds parent inclusive {} at `{}`",
        child_sum,
        node.incl_ns,
        node.name
    );
    let mut visited = 1;
    let mut closes = node.count;
    for c in node.children.values() {
        let (v, n) = check_node(c);
        visited += v;
        closes += n;
    }
    (visited, closes)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Merging histogram snapshots is the multiset union: commutative,
    /// associative, and equal to observing the concatenated values — per
    /// bucket, not just in aggregate.
    #[test]
    fn hist_merge_is_commutative_associative_and_matches_concat(
        a in prop::collection::vec(any::<u64>(), 0..40),
        b in prop::collection::vec(any::<u64>(), 0..40),
        c in prop::collection::vec(any::<u64>(), 0..40),
    ) {
        let (ha, hb, hc) = (hist_of(&a), hist_of(&b), hist_of(&c));

        let mut ab = ha.clone();
        ab.merge(&hb);
        let mut ba = hb.clone();
        ba.merge(&ha);
        prop_assert_eq!(&ab, &ba, "merge must be commutative");

        let mut ab_c = ab.clone();
        ab_c.merge(&hc);
        let mut bc = hb.clone();
        bc.merge(&hc);
        let mut a_bc = ha.clone();
        a_bc.merge(&bc);
        prop_assert_eq!(&ab_c, &a_bc, "merge must be associative");

        let concat: Vec<u64> = a.iter().chain(&b).chain(&c).copied().collect();
        prop_assert_eq!(&ab_c, &hist_of(&concat), "merge must equal concat");
        prop_assert_eq!(ab_c.count(), concat.len() as u64);
    }

    /// A quantile estimate never leaves the bucket holding the true rank
    /// statistic: for rank r = ceil(q·n), the exact r-th smallest value
    /// and the estimate share a bucket, so the estimate is bounded by
    /// that bucket's edges — and never exceeds the exact maximum.
    #[test]
    fn quantile_stays_inside_the_rank_bucket(
        mut values in prop::collection::vec(any::<u64>(), 1..80),
        q in 0.01f64..1.0,
    ) {
        let h = hist_of(&values);
        values.sort_unstable();
        let est = h.quantile(q);
        let rank = ((q * values.len() as f64).ceil() as usize).clamp(1, values.len());
        let exact = values[rank - 1];
        let b = telemetry::bucket_index(exact);
        prop_assert!(
            (telemetry::bucket_lower(b)..=telemetry::bucket_upper(b)).contains(&est),
            "q={q}: estimate {est} outside bucket {b} of exact rank value {exact}"
        );
        prop_assert!(est <= h.max(), "estimate {est} above observed max {}", h.max());
        prop_assert_eq!(h.quantile(1.0), h.max(), "p100 is the exact maximum");
        prop_assert_eq!(h.max(), *values.last().unwrap());
    }

    /// Folding an arbitrary well-nested multi-thread timeline preserves
    /// the timing algebra everywhere: inclusive ≥ self at every node,
    /// children sum inside their parent, and every span opened — whether
    /// explicitly closed or left open for the fold to finish — closes
    /// exactly once.
    #[test]
    fn fold_preserves_timing_algebra_on_well_nested_timelines(
        tapes in prop::collection::vec(
            prop::collection::vec((any::<bool>(), any::<u8>()), 0..60),
            1..4,
        ),
    ) {
        let mut ts = 0u64;
        let mut events = Vec::new();
        let mut expected_closes = 0u64;
        for (tid, tape) in tapes.iter().enumerate() {
            let rendered = render_tape(tid as u64, tape, &mut ts);
            expected_closes += rendered
                .iter()
                .filter(|e| e.payload == EventPayload::SpanBegin)
                .count() as u64;
            events.extend(rendered);
        }
        let tree = spantree::fold(&events, &[]);
        let mut closes = 0u64;
        for root in tree.roots.values() {
            let (_, n) = check_node(root);
            closes += n;
        }
        prop_assert_eq!(closes, expected_closes, "every begin closes exactly once");
        prop_assert_eq!(tree.total_count(), expected_closes);
    }

    /// The collapsed-stack export round-trips: every emitted line parses,
    /// every parsed path maps back to a tree node, and the values are the
    /// node's self time. (Span names here avoid the sanitized characters;
    /// a unit test in `spantree` pins the `;`/space rewriting itself.)
    #[test]
    fn collapsed_export_round_trips_through_the_parser(
        tapes in prop::collection::vec(
            prop::collection::vec((any::<bool>(), any::<u8>()), 0..60),
            1..4,
        ),
    ) {
        let mut ts = 0u64;
        let mut events = Vec::new();
        for (tid, tape) in tapes.iter().enumerate() {
            events.extend(render_tape(tid as u64, tape, &mut ts));
        }
        let tree = spantree::fold(&events, &[]);
        let text = tree.collapsed();
        let parsed = spantree::parse_collapsed(&text)
            .expect("own collapsed export must parse");
        for (stack, self_ns) in &parsed {
            let path = stack.replace(';', "/");
            let node = tree
                .node(&path)
                .unwrap_or_else(|| panic!("parsed stack `{stack}` not in the tree"));
            prop_assert_eq!(
                *self_ns, node.self_ns,
                "self time mismatch for `{}`", stack
            );
        }
        let emitted: u64 = parsed.values().sum();
        let total_self: u64 = {
            fn sum_self(n: &spantree::SpanNode) -> u64 {
                n.self_ns + n.children.values().map(sum_self).sum::<u64>()
            }
            tree.roots.values().map(sum_self).sum()
        };
        prop_assert_eq!(emitted, total_self, "export must account for all self time");
    }
}
