//! Workload characterization records.
//!
//! Class-C NPB runs (162³ grids × hundreds of iterations) are infeasible
//! through an instruction emulator, so each workload crate *runs and
//! verifies* smaller classes natively and *characterizes* the work
//! analytically: total FLOPs, memory traffic, math-library calls, and
//! parallel structure. The toolchain/machine model turns a
//! [`WorkloadProfile`] into a runtime prediction (Figs. 3–7). DESIGN.md §2
//! documents this substitution.

use serde::{Deserialize, Serialize};

/// Math-library function families whose implementation choice the paper
/// shows dominates toolchain differences.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MathFunc {
    Exp,
    Sin,
    Pow,
    Sqrt,
    Recip,
    Log,
}

impl MathFunc {
    pub const ALL: [MathFunc; 6] = [
        MathFunc::Exp,
        MathFunc::Sin,
        MathFunc::Pow,
        MathFunc::Sqrt,
        MathFunc::Recip,
        MathFunc::Log,
    ];

    pub fn label(self) -> &'static str {
        match self {
            MathFunc::Exp => "exp",
            MathFunc::Sin => "sin",
            MathFunc::Pow => "pow",
            MathFunc::Sqrt => "sqrt",
            MathFunc::Recip => "recip",
            MathFunc::Log => "log",
        }
    }
}

/// Characterization of one workload configuration (e.g. "NPB CG, class C").
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorkloadProfile {
    pub name: String,
    /// Total double-precision FLOPs for the whole run.
    pub flops: f64,
    /// Fraction of FLOPs issued as FMAs (pairs of mul+add fused).
    pub fma_fraction: f64,
    /// Main-memory traffic in bytes for the whole run (post-cache).
    pub mem_bytes: f64,
    /// Math-library evaluations: (function, count).
    pub math_calls: Vec<(MathFunc, f64)>,
    /// Fraction of the FLOP work inside vectorizable inner loops.
    pub vec_fraction: f64,
    /// Fraction of loads that are indexed (gather-like; CG ≈ high, EP ≈ 0).
    pub gather_fraction: f64,
    /// Number of individually-indexed (gathered) element accesses over the
    /// run. These pay latency-bound costs the streaming-bandwidth model
    /// misses — they are why CG's single-core gap to Skylake is only 1.6×
    /// while EP's is 5.5× (Fig. 3) despite A64FX's bandwidth advantage.
    pub gather_elems: f64,
    /// Size of the randomly-accessed region (decides which cache level the
    /// gathers hit; CG's `x` vector fits in the A64FX L2).
    pub gather_target_bytes: f64,
    /// Fraction of the memory traffic issued with strided or partial-line
    /// access. On a 256-byte-line machine (A64FX) such traffic drags whole
    /// fat lines for few useful bytes; the model amplifies it by
    /// `line_bytes/64`. This is the mechanism that lets Skylake win the
    /// single-core comparisons even for memory-heavy codes (Fig. 3).
    pub stride_waste: f64,
    /// Amdahl parallel fraction of the run.
    pub parallel_fraction: f64,
    /// Fork/join episodes over the run (OpenMP barrier count).
    pub barriers: f64,
    /// Load-imbalance factor ≥ 1 (UA's irregular mesh > BT's blocks).
    pub imbalance: f64,
}

impl WorkloadProfile {
    /// A compute-only starting point; builder-style setters refine it.
    pub fn new(name: impl Into<String>, flops: f64, mem_bytes: f64) -> Self {
        WorkloadProfile {
            name: name.into(),
            flops,
            fma_fraction: 0.5,
            mem_bytes,
            math_calls: Vec::new(),
            vec_fraction: 0.9,
            gather_fraction: 0.0,
            gather_elems: 0.0,
            gather_target_bytes: 0.0,
            stride_waste: 0.0,
            parallel_fraction: 1.0,
            barriers: 0.0,
            imbalance: 1.0,
        }
    }

    pub fn with_math(mut self, f: MathFunc, count: f64) -> Self {
        self.math_calls.push((f, count));
        self
    }

    pub fn with_vec_fraction(mut self, v: f64) -> Self {
        assert!((0.0..=1.0).contains(&v));
        self.vec_fraction = v;
        self
    }

    pub fn with_fma_fraction(mut self, v: f64) -> Self {
        assert!((0.0..=1.0).contains(&v));
        self.fma_fraction = v;
        self
    }

    pub fn with_gather_fraction(mut self, v: f64) -> Self {
        assert!((0.0..=1.0).contains(&v));
        self.gather_fraction = v;
        self
    }

    pub fn with_gathers(mut self, elems: f64, target_bytes: f64) -> Self {
        self.gather_elems = elems;
        self.gather_target_bytes = target_bytes;
        self
    }

    pub fn with_stride_waste(mut self, v: f64) -> Self {
        assert!((0.0..=1.0).contains(&v));
        self.stride_waste = v;
        self
    }

    /// Memory traffic as seen by a machine with `line_bytes` cache lines:
    /// the strided fraction is amplified by the ratio to a 64-byte line.
    pub fn effective_bytes(&self, line_bytes: usize) -> f64 {
        let amp = (line_bytes as f64 / 64.0).max(1.0);
        self.mem_bytes * (1.0 + self.stride_waste * (amp - 1.0))
    }

    pub fn with_parallel(mut self, fraction: f64, barriers: f64, imbalance: f64) -> Self {
        assert!((0.0..=1.0).contains(&fraction));
        assert!(imbalance >= 1.0);
        self.parallel_fraction = fraction;
        self.barriers = barriers;
        self.imbalance = imbalance;
        self
    }

    /// Arithmetic intensity (FLOP/byte) of the whole run.
    pub fn intensity(&self) -> f64 {
        if self.mem_bytes == 0.0 {
            f64::INFINITY
        } else {
            self.flops / self.mem_bytes
        }
    }

    /// Total math-library calls.
    pub fn total_math_calls(&self) -> f64 {
        self.math_calls.iter().map(|&(_, c)| c).sum()
    }

    /// Scale all extensive quantities (FLOPs, bytes, calls, barriers) by
    /// `k` — e.g. from a measured small class to class C.
    pub fn scaled(&self, k: f64) -> Self {
        let mut p = self.clone();
        p.flops *= k;
        p.mem_bytes *= k;
        p.barriers *= k;
        p.gather_elems *= k;
        for (_, c) in &mut p.math_calls {
            *c *= k;
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_intensity() {
        let p = WorkloadProfile::new("cg", 1e12, 8e12)
            .with_gather_fraction(0.5)
            .with_math(MathFunc::Sqrt, 1e6)
            .with_parallel(0.99, 1000.0, 1.05);
        assert!((p.intensity() - 0.125).abs() < 1e-12);
        assert_eq!(p.total_math_calls(), 1e6);
        assert_eq!(p.barriers, 1000.0);
    }

    #[test]
    fn scaling_is_extensive_only() {
        let p = WorkloadProfile::new("x", 10.0, 20.0).with_math(MathFunc::Exp, 5.0);
        let q = p.scaled(3.0);
        assert_eq!(q.flops, 30.0);
        assert_eq!(q.mem_bytes, 60.0);
        assert_eq!(q.math_calls[0].1, 15.0);
        // intensive quantities unchanged
        assert_eq!(q.vec_fraction, p.vec_fraction);
        assert_eq!(q.imbalance, p.imbalance);
    }

    #[test]
    fn compute_only_profile() {
        let p = WorkloadProfile::new("ep", 1e12, 0.0);
        assert!(p.intensity().is_infinite());
    }

    #[test]
    #[should_panic(expected = "(0.0..=1.0).contains")]
    fn invalid_fraction_panics() {
        let _ = WorkloadProfile::new("x", 1.0, 1.0).with_vec_fraction(1.5);
    }
}
