//! Summary statistics — the paper's plots carry standard-deviation error
//! bars ("The error bars are the standard deviation of measurements").

/// Running summary of a sample set.
#[derive(Debug, Clone, Default)]
pub struct Stats {
    samples: Vec<f64>,
}

impl Stats {
    pub fn new() -> Self {
        Stats::default()
    }

    pub fn from_slice(xs: &[f64]) -> Self {
        Stats {
            samples: xs.to_vec(),
        }
    }

    pub fn push(&mut self, x: f64) {
        self.samples.push(x);
    }

    pub fn len(&self) -> usize {
        self.samples.len()
    }

    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            return f64::NAN;
        }
        self.samples.iter().sum::<f64>() / self.samples.len() as f64
    }

    /// Sample standard deviation (n-1 denominator; 0 for n ≤ 1).
    pub fn stddev(&self) -> f64 {
        let n = self.samples.len();
        if n <= 1 {
            return 0.0;
        }
        let m = self.mean();
        let ss: f64 = self.samples.iter().map(|x| (x - m) * (x - m)).sum();
        (ss / (n - 1) as f64).sqrt()
    }

    pub fn min(&self) -> f64 {
        self.samples.iter().copied().fold(f64::INFINITY, f64::min)
    }

    pub fn max(&self) -> f64 {
        self.samples
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    pub fn median(&self) -> f64 {
        if self.samples.is_empty() {
            return f64::NAN;
        }
        let mut s = self.samples.clone();
        s.sort_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
        let n = s.len();
        if n % 2 == 1 {
            s[n / 2]
        } else {
            0.5 * (s[n / 2 - 1] + s[n / 2])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_moments() {
        let s = Stats::from_slice(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // sample stddev of this classic set is sqrt(32/7)
        assert!((s.stddev() - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
        assert_eq!(s.median(), 4.5);
    }

    #[test]
    fn degenerate_cases() {
        let empty = Stats::new();
        assert!(empty.mean().is_nan());
        assert_eq!(empty.stddev(), 0.0);
        let one = Stats::from_slice(&[3.0]);
        assert_eq!(one.mean(), 3.0);
        assert_eq!(one.stddev(), 0.0);
        assert_eq!(one.median(), 3.0);
    }

    #[test]
    fn odd_median() {
        let s = Stats::from_slice(&[5.0, 1.0, 3.0]);
        assert_eq!(s.median(), 3.0);
    }
}
