//! Measurement records and report rendering.
//!
//! Every figure/table regenerator emits [`Measurement`] rows and renders
//! them through [`Table`] (fixed-width text) or CSV, so EXPERIMENTS.md can
//! diff paper values against produced values mechanically.

use crate::stats::Stats;
use serde::{Deserialize, Serialize};

/// One measured/modeled data point.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Measurement {
    /// Experiment id, e.g. "fig1", "table2".
    pub experiment: String,
    /// Workload/kernel label, e.g. "simple", "NPB BT".
    pub workload: String,
    /// Machine label, e.g. "Ookami A64FX".
    pub machine: String,
    /// Toolchain/library label, e.g. "fujitsu", "gcc", "OpenBLAS".
    pub toolchain: String,
    /// Thread (or node) count.
    pub threads: usize,
    /// Primary value (seconds, ratio, GFLOP/s — see `unit`).
    pub value: f64,
    /// Standard deviation of `value` if sampled (else 0).
    pub stddev: f64,
    /// Unit label for `value`.
    pub unit: String,
}

impl Measurement {
    pub fn new(
        experiment: &str,
        workload: &str,
        machine: &str,
        toolchain: &str,
        threads: usize,
        value: f64,
        unit: &str,
    ) -> Self {
        Measurement {
            experiment: experiment.into(),
            workload: workload.into(),
            machine: machine.into(),
            toolchain: toolchain.into(),
            threads,
            value,
            stddev: 0.0,
            unit: unit.into(),
        }
    }

    pub fn with_stats(mut self, s: &Stats) -> Self {
        self.value = s.mean();
        self.stddev = s.stddev();
        self
    }

    /// CSV row (header in [`csv_header`]).
    pub fn csv_row(&self) -> String {
        format!(
            "{},{},{},{},{},{:.6e},{:.3e},{}",
            self.experiment,
            self.workload,
            self.machine,
            self.toolchain,
            self.threads,
            self.value,
            self.stddev,
            self.unit
        )
    }
}

/// CSV header matching [`Measurement::csv_row`].
pub fn csv_header() -> &'static str {
    "experiment,workload,machine,toolchain,threads,value,stddev,unit"
}

/// Render a list of measurements as CSV.
pub fn to_csv(rows: &[Measurement]) -> String {
    let mut s = String::from(csv_header());
    s.push('\n');
    for r in rows {
        s.push_str(&r.csv_row());
        s.push('\n');
    }
    s
}

/// A simple fixed-width text table builder for figure output.
#[derive(Debug, Default)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Table {
            title: title.into(),
            header: header
                .iter()
                .map(std::string::ToString::to_string)
                .collect(),
            rows: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "column count mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    pub fn render(&self) -> String {
        let ncol = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(std::string::String::len).collect();
        for r in &self.rows {
            for c in 0..ncol {
                widths[c] = widths[c].max(r[c].len());
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            out.push_str(&format!("== {} ==\n", self.title));
        }
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (c, cell) in cells.iter().enumerate() {
                if c > 0 {
                    line.push_str("  ");
                }
                // Right-align numeric-looking cells, left-align labels.
                if cell.parse::<f64>().is_ok() {
                    line.push_str(&format!("{:>w$}", cell, w = widths[c]));
                } else {
                    line.push_str(&format!("{:<w$}", cell, w = widths[c]));
                }
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push_str(&format!(
            "{}\n",
            "-".repeat(widths.iter().sum::<usize>() + 2 * (ncol - 1))
        ));
        for r in &self.rows {
            out.push_str(&fmt_row(r, &widths));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_round_shape() {
        let m = Measurement::new("fig1", "simple", "A64FX", "fujitsu", 1, 2.0, "x_skx");
        let csv = to_csv(&[m]);
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some(csv_header()));
        let row = lines.next().expect("row");
        assert!(row.starts_with("fig1,simple,A64FX,fujitsu,1,"));
        assert!(row.ends_with("x_skx"));
    }

    #[test]
    fn with_stats_fills_mean_and_stddev() {
        let s = Stats::from_slice(&[1.0, 2.0, 3.0]);
        let m = Measurement::new("e", "w", "m", "t", 4, 0.0, "s").with_stats(&s);
        assert!((m.value - 2.0).abs() < 1e-12);
        assert!((m.stddev - 1.0).abs() < 1e-12);
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("Demo", &["kernel", "value"]);
        t.row(&["simple".into(), "2.00".into()]);
        t.row(&["short gather".into(), "1.50".into()]);
        let s = t.render();
        assert!(s.contains("== Demo =="));
        assert!(s.contains("simple"));
        assert!(s.contains("1.50"));
        // all data lines have equal length (fixed-width)
        let lens: Vec<usize> = s
            .lines()
            .skip(1)
            .map(|l| l.trim_end().len())
            .filter(|&l| l > 0)
            .collect();
        assert!(lens.windows(2).all(|w| w[0] == w[1]), "{s}");
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn table_column_mismatch_panics() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(&["only-one".into()]);
    }
}
