//! Dependency-free blocking HTTP/1.1 endpoint serving the live telemetry
//! surface: `std::net::TcpListener` + a thread per connection, no new
//! crates (consistent with the vendored-shim policy). Embeddable behind
//! any probe via `--serve <addr>`; `ookamiserve` wraps it standalone.
//!
//! Endpoint contract (all `GET`, anything else is `405`):
//!
//! | path                   | body                                        |
//! |------------------------|---------------------------------------------|
//! | `/`                    | plain-text index of the endpoints           |
//! | `/metrics`             | Prometheus text ([`super::prometheus`])     |
//! | `/profile`             | collapsed stacks ([`spantree`])             |
//! | `/profile?format=json` | `ookami-profile-v1` JSON tree               |
//! | `/trace`               | Chrome-trace JSON of the current session    |
//! | `/samples`             | `ookami-samples-v1` sampler ring JSON       |
//! | `/bench/<name>`        | committed `BENCH_<name>.json`, 404 if absent|
//!
//! Every body is generated at request time from the live registries, so a
//! dashboard polling `/metrics` watches the run move. The server works in
//! both obs modes — without the feature the documents are just empty-ish
//! (but still parse, which `ookamiserve --selfcheck` pins in CI).

use super::spantree;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Handle to a running server; stops (flag + wake-up connect) and joins
/// the accept thread on [`ServerHandle::stop`] or drop.
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    join: Option<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (resolves port 0 to the ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting, wake the blocked accept loop and join it.
    /// Idempotent; also invoked by `Drop`.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Release);
        // Wake the blocking accept so the thread observes the flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }

    /// Stop accepting and join the accept thread.
    pub fn stop(mut self) {
        self.shutdown();
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Bind `addr` (e.g. `127.0.0.1:9178`, port 0 for ephemeral) and serve the
/// telemetry endpoints until the handle is stopped. `/bench/<name>` reads
/// from the process's current directory.
pub fn spawn(addr: &str) -> std::io::Result<ServerHandle> {
    let dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    spawn_in(addr, dir)
}

/// [`spawn`], with an explicit directory for `/bench/<name>` lookups.
pub fn spawn_in(addr: &str, bench_dir: PathBuf) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let accept_stop = Arc::clone(&stop);
    let join = std::thread::Builder::new()
        .name("ookamiserve-accept".to_string())
        .spawn(move || {
            for conn in listener.incoming() {
                if accept_stop.load(Ordering::Acquire) {
                    break;
                }
                let Ok(stream) = conn else { continue };
                let dir = bench_dir.clone();
                // Each connection is a timeline actor: the fork edge on
                // the accept thread orders the handler's response write
                // after the accept, so the race detector can prove
                // connection threads never collide on shared state.
                let actor = crate::timeline::next_actor_id();
                crate::timeline::actor_fork(actor);
                let _ = std::thread::Builder::new()
                    .name("ookamiserve-conn".to_string())
                    .spawn(move || {
                        crate::timeline::actor_write(actor, 0, 1);
                        let _ = handle(stream, &dir);
                    });
            }
        })?;
    Ok(ServerHandle {
        addr: local,
        stop,
        join: Some(join),
    })
}

fn handle(mut stream: TcpStream, bench_dir: &std::path::Path) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    // Read the request head (we never need a body for GET).
    let mut buf = Vec::with_capacity(1024);
    let mut chunk = [0u8; 512];
    loop {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            break;
        }
        buf.extend_from_slice(&chunk[..n]);
        if buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.len() > 8192 {
            break;
        }
    }
    let head = String::from_utf8_lossy(&buf);
    let request_line = head.lines().next().unwrap_or("");
    let mut parts = request_line.split_ascii_whitespace();
    let method = parts.next().unwrap_or("");
    let target = parts.next().unwrap_or("/");
    let (status, content_type, body) = if method == "GET" {
        respond(target, bench_dir)
    } else {
        (
            405,
            "text/plain",
            "method not allowed: telemetry endpoints are GET-only\n".to_string(),
        )
    };
    let reason = match status {
        200 => "OK",
        404 => "Not Found",
        405 => "Method Not Allowed",
        _ => "Error",
    };
    let header = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(header.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

fn respond(target: &str, bench_dir: &std::path::Path) -> (u16, &'static str, String) {
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    match path {
        "/" => (
            200,
            "text/plain",
            "ookami live telemetry\n\
             /metrics              Prometheus text exposition\n\
             /profile              collapsed flamegraph stacks\n\
             /profile?format=json  ookami-profile-v1 span tree\n\
             /trace                Chrome-trace JSON (current session)\n\
             /samples              ookami-samples-v1 sampler ring\n\
             /bench/<name>         committed BENCH_<name>.json\n"
                .to_string(),
        ),
        "/metrics" => (200, "text/plain; version=0.0.4", super::prometheus()),
        "/profile" => {
            let tree = spantree::profile();
            if query.split('&').any(|kv| kv == "format=json") {
                (200, "application/json", tree.to_json())
            } else {
                (200, "text/plain", tree.collapsed())
            }
        }
        "/trace" => (
            200,
            "application/json",
            crate::timeline::export_chrome_trace(),
        ),
        "/samples" => (200, "application/json", super::active_samples_json()),
        p => {
            if let Some(name) = p.strip_prefix("/bench/") {
                let clean = name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_');
                if clean && !name.is_empty() {
                    let file = bench_dir.join(format!("BENCH_{name}.json"));
                    if let Ok(body) = std::fs::read_to_string(&file) {
                        return (200, "application/json", body);
                    }
                }
                return (404, "text/plain", format!("no such baseline: {name}\n"));
            }
            (404, "text/plain", format!("no such endpoint: {path}\n"))
        }
    }
}

/// Minimal blocking HTTP GET against a local server: returns
/// `(status, body)`. The in-repo client `ookamiserve --selfcheck` and
/// `scripts/check.sh` use instead of curl.
pub fn http_get(addr: SocketAddr, path: &str) -> std::io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
    let req = format!("GET {path} HTTP/1.1\r\nHost: ookami\r\nConnection: close\r\n\r\n");
    stream.write_all(req.as_bytes())?;
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    let text = String::from_utf8_lossy(&raw).into_owned();
    let status: u16 = text
        .lines()
        .next()
        .and_then(|l| l.split_ascii_whitespace().nth(1))
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| std::io::Error::other("malformed HTTP response head"))?;
    let body = text
        .split_once("\r\n\r\n")
        .map_or(String::new(), |(_, b)| b.to_string());
    Ok((status, body))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::Json;

    fn get(handle: &ServerHandle, path: &str) -> (u16, String) {
        http_get(handle.addr(), path).expect("request succeeds")
    }

    #[test]
    fn endpoints_serve_parseable_documents_in_both_modes() {
        let server = spawn_in(
            "127.0.0.1:0",
            std::path::Path::new(env!("CARGO_MANIFEST_DIR")).to_path_buf(),
        )
        .expect("bind ephemeral port");

        let (status, metrics) = get(&server, "/metrics");
        assert_eq!(status, 200);
        super::super::validate_prometheus(&metrics).expect("/metrics validates");
        assert!(metrics.contains("ookami_events_total"));

        let (status, collapsed) = get(&server, "/profile");
        assert_eq!(status, 200);
        spantree::parse_collapsed(&collapsed).expect("/profile parses as collapsed stacks");

        let (status, profile_json) = get(&server, "/profile?format=json");
        assert_eq!(status, 200);
        let v = Json::parse(&profile_json).expect("/profile?format=json parses");
        assert!(matches!(v.get("roots"), Some(Json::Arr(_))));

        let (status, trace) = get(&server, "/trace");
        assert_eq!(status, 200);
        let v = Json::parse(&trace).expect("/trace parses");
        assert!(matches!(v.get("traceEvents"), Some(Json::Arr(_))));

        let (status, samples) = get(&server, "/samples");
        assert_eq!(status, 200);
        let v = Json::parse(&samples).expect("/samples parses");
        assert_eq!(
            v.get("schema"),
            Some(&Json::Str("ookami-samples-v1".to_string()))
        );

        let (status, index) = get(&server, "/");
        assert_eq!(status, 200);
        assert!(index.contains("/metrics"));

        assert_eq!(get(&server, "/definitely-not-a-route").0, 404);
        assert_eq!(get(&server, "/bench/no_such_baseline").0, 404);
        assert_eq!(get(&server, "/bench/../escape").0, 404);

        server.stop();
    }

    #[test]
    fn non_get_methods_are_rejected() {
        let server = spawn_in("127.0.0.1:0", PathBuf::from(".")).expect("bind");
        let mut stream = TcpStream::connect(server.addr()).expect("connect");
        stream
            .write_all(b"POST /metrics HTTP/1.1\r\nHost: x\r\nContent-Length: 0\r\n\r\n")
            .expect("send");
        let mut raw = Vec::new();
        stream.read_to_end(&mut raw).expect("read");
        let text = String::from_utf8_lossy(&raw);
        assert!(text.starts_with("HTTP/1.1 405"), "got: {text}");
    }
}
