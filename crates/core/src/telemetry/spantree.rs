//! Span-tree profiler: fold the timeline ring's `obs::region` span events
//! into an aggregated call tree with inclusive/self time and per-node
//! counter deltas, exported as a rendered table, collapsed-stack text
//! (inferno / speedscope `flamegraph.pl` format), and JSON.
//!
//! Folding rules (proptest-pinned in `telemetry_props.rs`):
//!
//! * Events are grouped per recording thread; each thread's retained
//!   suffix is replayed against a stack. Region guards are strictly LIFO
//!   per thread, so no reordering is needed.
//! * A `SpanEnd` with an empty stack is an orphan (its begin was evicted
//!   by drop-oldest) and is skipped — exactly what the Chrome exporter
//!   does.
//! * Frames still open when the thread's event stream ends are closed at
//!   the thread's last timestamp, again mirroring the exporter.
//! * A closing frame adds `end − begin` to its node's inclusive time and
//!   `inclusive − Σ(direct children's inclusive)` to its self time
//!   (saturating, so clock jitter can't go negative). Aggregated over all
//!   instances this yields the two invariants the proptests pin:
//!   `incl ≥ self` and `Σ children's incl ≤ parent's incl` per node.
//! * Counter deltas are merged in from the `obs::spans` registry by
//!   slash-joined path (the timeline ring doesn't carry counters; the
//!   span registry already aggregates them inclusively per path).

use crate::obs::{self, Snapshot, SpanStat};
use crate::timeline::{EventPayload, TimelineEvent};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One aggregated node of the span tree (all instances of one path).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanNode {
    pub name: String,
    /// Times a span with this path closed.
    pub count: u64,
    /// Total inclusive wall time over all instances, ns.
    pub incl_ns: u64,
    /// Total self (exclusive) wall time over all instances, ns.
    pub self_ns: u64,
    /// Inclusive counter delta from the `obs::spans` registry.
    pub counters: Snapshot,
    pub children: BTreeMap<String, SpanNode>,
}

impl SpanNode {
    fn new(name: &str) -> SpanNode {
        SpanNode {
            name: name.to_string(),
            count: 0,
            incl_ns: 0,
            self_ns: 0,
            counters: Snapshot::zero(),
            children: BTreeMap::new(),
        }
    }
}

/// The aggregated call tree over one timeline session.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SpanTree {
    pub roots: BTreeMap<String, SpanNode>,
}

/// One in-flight stack frame during folding.
struct Frame {
    name: String,
    t0_ns: u64,
    child_ns: u64,
}

impl SpanTree {
    /// Total inclusive time across root spans, ns.
    pub fn total_incl_ns(&self) -> u64 {
        self.roots.values().map(|n| n.incl_ns).sum()
    }

    /// Total span closings folded into the tree.
    pub fn total_count(&self) -> u64 {
        fn rec(n: &SpanNode) -> u64 {
            n.count + n.children.values().map(rec).sum::<u64>()
        }
        self.roots.values().map(rec).sum()
    }

    /// The node at slash-joined `path`, if present.
    pub fn node(&self, path: &str) -> Option<&SpanNode> {
        let mut segs = path.split('/');
        let mut node = self.roots.get(segs.next()?)?;
        for seg in segs {
            node = node.children.get(seg)?;
        }
        Some(node)
    }

    fn node_mut(&mut self, path: &[String]) -> &mut SpanNode {
        let (first, rest) = path.split_first().expect("non-empty path");
        let mut node = self
            .roots
            .entry(first.clone())
            .or_insert_with(|| SpanNode::new(first));
        for seg in rest {
            node = node
                .children
                .entry(seg.clone())
                .or_insert_with(|| SpanNode::new(seg));
        }
        node
    }

    /// Collapsed-stack export (`flamegraph.pl` / inferno / speedscope):
    /// one line per node, `root;child;leaf self_ns`, depth-first in name
    /// order. Semicolons inside span names are mapped to `:` so the stack
    /// separator stays unambiguous.
    pub fn collapsed(&self) -> String {
        fn sanitize(name: &str) -> String {
            name.replace(';', ":").replace(' ', "_")
        }
        fn rec(out: &mut String, prefix: &str, node: &SpanNode) {
            let path = if prefix.is_empty() {
                sanitize(&node.name)
            } else {
                format!("{prefix};{}", sanitize(&node.name))
            };
            if node.count > 0 || node.self_ns > 0 {
                let _ = writeln!(out, "{path} {}", node.self_ns);
            }
            for child in node.children.values() {
                rec(out, &path, child);
            }
        }
        let mut out = String::new();
        for root in self.roots.values() {
            rec(&mut out, "", root);
        }
        out
    }

    /// Human-readable profile table, depth-indented, with per-node counter
    /// highlights.
    pub fn render_table(&self) -> String {
        let total = self.total_incl_ns().max(1);
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<40} {:>8} {:>12} {:>12} {:>6} {:>14}",
            "span", "count", "incl_ms", "self_ms", "incl%", "sve_instrs"
        );
        fn rec(out: &mut String, node: &SpanNode, depth: usize, total: u64) {
            let label = format!("{:indent$}{}", "", node.name, indent = depth * 2);
            let _ = writeln!(
                out,
                "{label:<40} {:>8} {:>12.3} {:>12.3} {:>5.1}% {:>14}",
                node.count,
                node.incl_ns as f64 / 1e6,
                node.self_ns as f64 / 1e6,
                node.incl_ns as f64 * 100.0 / total as f64,
                node.counters.get(obs::Counter::SveInstrs),
            );
            for child in node.children.values() {
                rec(out, child, depth + 1, total);
            }
        }
        for root in self.roots.values() {
            rec(&mut out, root, 0, total);
        }
        out
    }

    /// `ookami-profile-v1` JSON export (the `/profile?format=json` body).
    /// Parses with [`crate::obs::Json`].
    pub fn to_json(&self) -> String {
        fn node_json(out: &mut String, node: &SpanNode) {
            let _ = write!(
                out,
                "{{\"name\":{},\"count\":{},\"incl_ns\":{},\"self_ns\":{},\"counters\":{{",
                obs::json_str(&node.name),
                node.count,
                node.incl_ns,
                node.self_ns
            );
            for (i, (name, v)) in node.counters.nonzero().iter().enumerate() {
                let sep = if i == 0 { "" } else { "," };
                let _ = write!(out, "{sep}\"{name}\":{v}");
            }
            out.push_str("},\"children\":[");
            for (i, child) in node.children.values().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                node_json(out, child);
            }
            out.push_str("]}");
        }
        let mut out = String::from("{\"schema\":\"ookami-profile-v1\",");
        let _ = write!(
            out,
            "\"total_incl_ns\":{},\"total_count\":{},\"roots\":[",
            self.total_incl_ns(),
            self.total_count()
        );
        for (i, root) in self.roots.values().enumerate() {
            if i > 0 {
                out.push(',');
            }
            node_json(&mut out, root);
        }
        out.push_str("]}\n");
        out
    }
}

fn close_top(tree: &mut SpanTree, stack: &mut Vec<Frame>, end_ns: u64) {
    let frame = stack.pop().expect("close_top on non-empty stack");
    let incl = end_ns.saturating_sub(frame.t0_ns);
    let self_ns = incl.saturating_sub(frame.child_ns);
    let path: Vec<String> = stack
        .iter()
        .map(|f| f.name.clone())
        .chain(std::iter::once(frame.name))
        .collect();
    let node = tree.node_mut(&path);
    node.count += 1;
    node.incl_ns = node.incl_ns.saturating_add(incl);
    node.self_ns = node.self_ns.saturating_add(self_ns);
    if let Some(parent) = stack.last_mut() {
        parent.child_ns = parent.child_ns.saturating_add(incl);
    }
}

/// Fold timeline span events (plus the `obs::spans` counter registry) into
/// an aggregated [`SpanTree`]. Pure over its inputs, so tests can feed
/// synthetic event streams; `events` may be any interleaving that is
/// well-nested *per thread* (exactly what [`crate::timeline::export_events`]
/// returns).
pub fn fold(events: &[TimelineEvent], span_stats: &[SpanStat]) -> SpanTree {
    let mut per_tid: BTreeMap<u64, Vec<&TimelineEvent>> = BTreeMap::new();
    for ev in events {
        if matches!(ev.payload, EventPayload::SpanBegin | EventPayload::SpanEnd) {
            per_tid.entry(ev.tid).or_default().push(ev);
        }
    }
    let mut tree = SpanTree::default();
    for evs in per_tid.values() {
        let mut stack: Vec<Frame> = Vec::new();
        let last_ts = evs.last().map_or(0, |e| e.ts_ns);
        for ev in evs {
            match ev.payload {
                EventPayload::SpanBegin => stack.push(Frame {
                    name: ev.name.clone(),
                    t0_ns: ev.ts_ns,
                    child_ns: 0,
                }),
                // Orphan ends (begin evicted by drop-oldest) are skipped,
                // mirroring the Chrome exporter.
                EventPayload::SpanEnd if !stack.is_empty() => {
                    close_top(&mut tree, &mut stack, ev.ts_ns);
                }
                _ => {}
            }
        }
        // Close frames still open at stream end at the last timestamp.
        while !stack.is_empty() {
            close_top(&mut tree, &mut stack, last_ts);
        }
    }
    for stat in span_stats {
        let path: Vec<String> = stat.path.split('/').map(str::to_string).collect();
        if path.is_empty() || path.iter().any(String::is_empty) {
            continue;
        }
        tree.node_mut(&path).counters.accumulate(&stat.counters);
    }
    tree
}

/// Fold the *current* timeline session and span registry: what `/profile`
/// serves. Empty without the `obs` feature or when nothing was recorded.
pub fn profile() -> SpanTree {
    fold(&crate::timeline::export_events(), &obs::spans())
}

/// Parse collapsed-stack text back into `stack path → summed value`
/// (duplicate stacks add, per the format's semantics). The round-trip
/// partner of [`SpanTree::collapsed`] in the golden test.
pub fn parse_collapsed(text: &str) -> Result<BTreeMap<String, u64>, String> {
    let mut out = BTreeMap::new();
    for (idx, line) in text.lines().enumerate() {
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        let (stack, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {}: no value field in `{line}`", idx + 1))?;
        if stack.is_empty() || stack.split(';').any(str::is_empty) {
            return Err(format!("line {}: empty stack frame in `{line}`", idx + 1));
        }
        let value: u64 = value
            .parse()
            .map_err(|_| format!("line {}: bad value `{value}`", idx + 1))?;
        *out.entry(stack.to_string()).or_insert(0) += value;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(tid: u64, ts_ns: u64, name: &str, payload: EventPayload) -> TimelineEvent {
        TimelineEvent {
            tid,
            ts_ns,
            name: name.to_string(),
            payload,
        }
    }

    #[test]
    fn folds_nested_spans_with_self_time() {
        use EventPayload::{SpanBegin, SpanEnd};
        let events = vec![
            ev(1, 0, "outer", SpanBegin),
            ev(1, 10, "inner", SpanBegin),
            ev(1, 40, "inner", SpanEnd),
            ev(1, 100, "outer", SpanEnd),
        ];
        let tree = fold(&events, &[]);
        let outer = tree.node("outer").expect("outer folded");
        assert_eq!((outer.count, outer.incl_ns, outer.self_ns), (1, 100, 70));
        let inner = tree.node("outer/inner").expect("inner folded");
        assert_eq!((inner.count, inner.incl_ns, inner.self_ns), (1, 30, 30));
        assert_eq!(tree.total_count(), 2);
    }

    #[test]
    fn orphan_ends_skipped_and_open_spans_closed_at_last_ts() {
        use EventPayload::{SpanBegin, SpanEnd};
        let events = vec![
            ev(1, 5, "lost_begin", SpanEnd), // orphan: begin was dropped
            ev(1, 10, "open", SpanBegin),
            ev(1, 20, "closed", SpanBegin),
            ev(1, 30, "closed", SpanEnd), // last ts: "open" closes here
        ];
        let tree = fold(&events, &[]);
        assert!(tree.node("lost_begin").is_none(), "orphan end folded");
        let open = tree.node("open").expect("open span force-closed");
        assert_eq!((open.incl_ns, open.self_ns), (20, 10));
    }

    #[test]
    fn threads_fold_independently() {
        use EventPayload::{SpanBegin, SpanEnd};
        // Interleaved globally, well-nested per tid.
        let events = vec![
            ev(1, 0, "a", SpanBegin),
            ev(2, 1, "b", SpanBegin),
            ev(1, 10, "a", SpanEnd),
            ev(2, 11, "b", SpanEnd),
        ];
        let tree = fold(&events, &[]);
        assert_eq!(tree.node("a").map(|n| n.incl_ns), Some(10));
        assert_eq!(tree.node("b").map(|n| n.incl_ns), Some(10));
    }

    #[test]
    fn counters_merge_by_path() {
        use EventPayload::{SpanBegin, SpanEnd};
        let events = vec![ev(1, 0, "k", SpanBegin), ev(1, 9, "k", SpanEnd)];
        let mut counters = Snapshot::zero();
        counters.set(obs::Counter::SveInstrs, 42);
        let stats = vec![SpanStat {
            path: "k".to_string(),
            count: 1,
            total_ns: 9,
            counters,
        }];
        let tree = fold(&events, &stats);
        assert_eq!(
            tree.node("k")
                .map(|n| n.counters.get(obs::Counter::SveInstrs)),
            Some(42)
        );
        let json = tree.to_json();
        let v = obs::Json::parse(&json).expect("profile JSON parses");
        assert_eq!(
            v.get("schema"),
            Some(&obs::Json::Str("ookami-profile-v1".to_string()))
        );
    }

    #[test]
    fn collapsed_sanitizes_separators() {
        use EventPayload::{SpanBegin, SpanEnd};
        let events = vec![
            ev(1, 0, "weird;name with space", SpanBegin),
            ev(1, 7, "weird;name with space", SpanEnd),
        ];
        let text = fold(&events, &[]).collapsed();
        assert_eq!(text, "weird:name_with_space 7\n");
        let parsed = parse_collapsed(&text).expect("round-trips");
        assert_eq!(parsed.get("weird:name_with_space"), Some(&7));
    }
}
