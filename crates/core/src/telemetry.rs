//! Live telemetry on top of the `obs` counters and the timeline tracer:
//! log-bucketed latency histograms, continuous sampling sessions, and the
//! Prometheus text renderer/validator behind `ookamiserve`'s `/metrics`.
//!
//! The source paper's methodology is *live* measurement — counters watched
//! while the machine runs, not post-mortem dumps. This module is the
//! observability half of the planned `ookamid` server: everything a
//! long-running process needs to be observed mid-flight.
//!
//! Three layers, mirroring the `obs`/`timeline` design rules:
//!
//! * **Histograms** ([`record`], [`HistSnapshot`]): lock-free per-thread
//!   log-bucketed (base-2) histograms keyed by `(kind, label)` — per-region
//!   latency, per-chunk duration, barrier waits, SVE sample intervals.
//!   Bucket counts are exact and deterministic (bucketing is a pure
//!   function of the value, never sampled), so identity gates can compare
//!   them bit-for-bit across executors. Snapshots merge associatively and
//!   commutatively; quantiles are bucket-upper-edge estimates clamped to
//!   the recorded maximum.
//! * **Sampling sessions** ([`Sampler`]): a background thread snapshots
//!   counters + histograms every `period` into a bounded ring (drop-oldest
//!   with a dropped count) under a monotonic generation id, so a long run
//!   can be observed without stopping it.
//! * **Exposition** ([`prometheus`], [`validate_prometheus`]): the scalar
//!   counters plus full histogram exposition (cumulative `le` buckets,
//!   `_sum`/`_count`, p50/p90/p99/max gauges) as Prometheus text, with a
//!   dependency-free validator used by tests and `ookamiserve --selfcheck`.
//!
//! Without the `obs` cargo feature, [`record`] is an empty inline function
//! and [`snapshots`] returns an empty map; [`HistSnapshot`] itself is pure
//! data and works in both modes (the proptests exercise it feature-free).
//!
//! The span-tree profiler lives in [`spantree`]; the HTTP endpoint that
//! serves all of this lives in [`serve`].

pub mod serve;
pub mod spantree;

use crate::obs::Snapshot;
use std::collections::{BTreeMap, VecDeque};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Weak};
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------
// Log-bucketed histograms
// ---------------------------------------------------------------------

/// Bucket count: bucket 0 holds the value 0, bucket `i ≥ 1` holds
/// `[2^(i-1), 2^i - 1]`, up to bucket 64 for values with the top bit set.
pub const HIST_BUCKETS: usize = 65;

/// What a histogram series measures. Each kind owns one Prometheus metric
/// name and one label key; the label value is the series discriminator
/// (region path, schedule name, …).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum HistKind {
    /// Wall time of one `obs::region` span closing, labeled by the full
    /// slash-joined span path.
    RegionLatencyNs,
    /// Wall time of one scheduled pool chunk, labeled by schedule name.
    ChunkDurationNs,
    /// Time spent waiting at the pool completion barrier, labeled by site.
    BarrierWaitNs,
    /// Retired-instruction distance between two periodic SVE counter
    /// samples, labeled by engine.
    SampleInstrs,
}

/// Every histogram kind, in export order.
pub const HIST_KINDS: [HistKind; 4] = [
    HistKind::RegionLatencyNs,
    HistKind::ChunkDurationNs,
    HistKind::BarrierWaitNs,
    HistKind::SampleInstrs,
];

impl HistKind {
    /// Prometheus metric name (also the JSON export key).
    pub fn metric(self) -> &'static str {
        match self {
            HistKind::RegionLatencyNs => "ookami_region_latency_ns",
            HistKind::ChunkDurationNs => "ookami_chunk_duration_ns",
            HistKind::BarrierWaitNs => "ookami_barrier_wait_ns",
            HistKind::SampleInstrs => "ookami_sample_interval_instrs",
        }
    }

    /// Label key discriminating series of this kind.
    pub fn label_key(self) -> &'static str {
        match self {
            HistKind::RegionLatencyNs => "path",
            HistKind::ChunkDurationNs => "sched",
            HistKind::BarrierWaitNs => "site",
            HistKind::SampleInstrs => "engine",
        }
    }
}

/// Bucket index for a value: 0 for 0, else `64 - leading_zeros(v)` (the
/// position of the highest set bit, one-based). Pure and branch-light, so
/// counts are exactly reproducible across executors.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// Smallest value landing in bucket `i`.
pub fn bucket_lower(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << (i - 1)
    }
}

/// Largest value landing in bucket `i`.
pub fn bucket_upper(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// A mergeable point-in-time histogram: exact per-bucket counts plus the
/// running sum and max. Pure data — works with or without the `obs`
/// feature (recording is what gets compiled out).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistSnapshot {
    counts: [u64; HIST_BUCKETS],
    sum: u64,
    max: u64,
}

impl Default for HistSnapshot {
    fn default() -> Self {
        HistSnapshot::new()
    }
}

impl HistSnapshot {
    pub fn new() -> HistSnapshot {
        HistSnapshot {
            counts: [0; HIST_BUCKETS],
            sum: 0,
            max: 0,
        }
    }

    /// Count one value.
    pub fn observe(&mut self, v: u64) {
        self.counts[bucket_index(v)] += 1;
        self.sum = self.sum.saturating_add(v);
        self.max = self.max.max(v);
    }

    /// Merge `other` into `self`. Associative and commutative (saturating
    /// adds, max of maxes) — the property the sampler and the per-thread
    /// aggregation lean on, proptest-pinned in `telemetry_props.rs`.
    pub fn merge(&mut self, other: &HistSnapshot) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a = a.saturating_add(*b);
        }
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    pub fn sum(&self) -> u64 {
        self.sum
    }

    pub fn max(&self) -> u64 {
        self.max
    }

    pub fn is_empty(&self) -> bool {
        self.counts.iter().all(|&c| c == 0)
    }

    /// Observations in bucket `i`.
    pub fn bucket_count(&self, i: usize) -> u64 {
        self.counts[i]
    }

    /// Mean of all observations (0.0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum as f64 / n as f64
        }
    }

    /// Quantile estimate: the upper edge of the bucket containing the
    /// `ceil(q·count)`-th observation, clamped to the recorded max (which
    /// only tightens the top non-empty bucket, so the estimate always
    /// stays within its bucket's `[lower, upper]` edges).
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= rank {
                return bucket_upper(i).min(self.max);
            }
        }
        self.max
    }
}

// ---------------------------------------------------------------------
// Recording (enabled): per-thread atomic blocks, global registry
// ---------------------------------------------------------------------

#[cfg(feature = "obs")]
mod himp {
    use super::{HistKind, HistSnapshot, HIST_BUCKETS};
    use parking_lot::Mutex;
    use std::cell::RefCell;
    use std::collections::BTreeMap;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    /// One thread's counts for one `(kind, label)` series. Only the owner
    /// writes; readers snapshot with relaxed loads (monotone counters, so
    /// a torn-across-buckets read still under-counts consistently).
    pub(super) struct HistBlock {
        counts: [AtomicU64; HIST_BUCKETS],
        sum: AtomicU64,
        max: AtomicU64,
    }

    impl HistBlock {
        fn new() -> HistBlock {
            HistBlock {
                counts: std::array::from_fn(|_| AtomicU64::new(0)),
                sum: AtomicU64::new(0),
                max: AtomicU64::new(0),
            }
        }

        fn observe(&self, v: u64) {
            self.counts[super::bucket_index(v)].fetch_add(1, Ordering::Relaxed);
            self.sum.fetch_add(v, Ordering::Relaxed);
            self.max.fetch_max(v, Ordering::Relaxed);
        }

        fn read(&self) -> HistSnapshot {
            let mut s = HistSnapshot::new();
            for (i, c) in self.counts.iter().enumerate() {
                s.counts[i] = c.load(Ordering::Relaxed);
            }
            s.sum = self.sum.load(Ordering::Relaxed);
            s.max = self.max.load(Ordering::Relaxed);
            s
        }

        fn reset(&self) {
            for c in &self.counts {
                c.store(0, Ordering::Relaxed);
            }
            self.sum.store(0, Ordering::Relaxed);
            self.max.store(0, Ordering::Relaxed);
        }
    }

    /// All blocks ever created; blocks outlive their threads so a late
    /// snapshot still sees a finished worker's observations.
    #[allow(clippy::type_complexity)]
    static REGISTRY: Mutex<Vec<((HistKind, String), Arc<HistBlock>)>> = Mutex::new(Vec::new());

    thread_local! {
        /// This thread's series cache; the registry mutex is touched only
        /// on first use of a series per thread.
        static LOCAL: RefCell<BTreeMap<HistKind, BTreeMap<String, Arc<HistBlock>>>> =
            const { RefCell::new(BTreeMap::new()) };
    }

    pub fn record(kind: HistKind, label: &str, value: u64) {
        LOCAL.with(|cache| {
            let mut cache = cache.borrow_mut();
            let inner = cache.entry(kind).or_default();
            if let Some(block) = inner.get(label) {
                block.observe(value);
                return;
            }
            let block = Arc::new(HistBlock::new());
            REGISTRY
                .lock()
                .push(((kind, label.to_string()), Arc::clone(&block)));
            inner.insert(label.to_string(), Arc::clone(&block));
            block.observe(value);
        });
    }

    pub fn snapshots() -> BTreeMap<(HistKind, String), HistSnapshot> {
        let mut out: BTreeMap<(HistKind, String), HistSnapshot> = BTreeMap::new();
        for ((kind, label), block) in REGISTRY.lock().iter() {
            let snap = block.read();
            match out.entry((*kind, label.clone())) {
                std::collections::btree_map::Entry::Occupied(mut e) => e.get_mut().merge(&snap),
                std::collections::btree_map::Entry::Vacant(e) => {
                    e.insert(snap);
                }
            }
        }
        out
    }

    pub fn reset() {
        for (_, block) in REGISTRY.lock().iter() {
            block.reset();
        }
    }
}

#[cfg(not(feature = "obs"))]
mod himp {
    use super::{HistKind, HistSnapshot};
    use std::collections::BTreeMap;

    #[inline(always)]
    pub fn record(_kind: HistKind, _label: &str, _value: u64) {}

    pub fn snapshots() -> BTreeMap<(HistKind, String), HistSnapshot> {
        BTreeMap::new()
    }

    #[inline(always)]
    pub fn reset() {}
}

/// Count one observation on this thread's `(kind, label)` series.
/// Lock-free after the first touch of a series per thread; an empty inline
/// no-op without the `obs` feature.
#[inline(always)]
pub fn record(kind: HistKind, label: &str, value: u64) {
    himp::record(kind, label, value);
}

/// Merged histogram snapshots across all threads, keyed by
/// `(kind, label)`. Empty without the `obs` feature.
pub fn snapshots() -> BTreeMap<(HistKind, String), HistSnapshot> {
    himp::snapshots()
}

/// Zero every histogram series (called from `obs::reset`).
pub fn reset() {
    himp::reset();
}

// ---------------------------------------------------------------------
// Continuous sampling sessions
// ---------------------------------------------------------------------

/// One periodic observation: global counters + all histogram series at one
/// instant, under a monotonic generation id.
#[derive(Debug, Clone)]
pub struct Sample {
    /// Monotonic per-sampler sequence number, starting at 1. Gaps between
    /// the generations a reader sees tell it samples were dropped.
    pub generation: u64,
    /// Nanoseconds since the sampler started.
    pub at_ns: u64,
    pub counters: Snapshot,
    pub hists: BTreeMap<(HistKind, String), HistSnapshot>,
}

struct SamplerShared {
    epoch: Instant,
    retain: usize,
    /// Timeline actor id of the sampler thread, so the race detector can
    /// prove the ring writes are ordered by the spawn/join protocol.
    actor: u64,
    stop: AtomicBool,
    generation: AtomicU64,
    dropped: AtomicU64,
    ring: parking_lot::Mutex<VecDeque<Sample>>,
}

impl SamplerShared {
    fn take(&self) {
        let generation = self.generation.fetch_add(1, Ordering::AcqRel) + 1;
        // Model the ring push as this actor writing slot `generation`
        // (slots are never reused, so well-behaved sampler writes are
        // disjoint by construction).
        crate::timeline::actor_write(self.actor, generation, 1);
        let sample = Sample {
            generation,
            at_ns: self.epoch.elapsed().as_nanos().min(u64::MAX as u128) as u64,
            counters: crate::obs::snapshot(),
            hists: snapshots(),
        };
        let mut ring = self.ring.lock();
        ring.push_back(sample);
        while ring.len() > self.retain {
            ring.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// The process-wide sampler `ookamiserve`'s `/samples` endpoint reads;
/// the most recently started [`Sampler`] wins.
static ACTIVE_SAMPLER: parking_lot::Mutex<Option<Weak<SamplerShared>>> =
    parking_lot::Mutex::new(None);

/// A continuous sampling session: a background thread snapshots counters
/// and histograms every `period` into a ring of the most recent `retain`
/// samples. Stops (and joins) on [`Sampler::stop`] or drop.
pub struct Sampler {
    shared: Arc<SamplerShared>,
    join: Option<std::thread::JoinHandle<()>>,
}

impl Sampler {
    /// Start sampling. Works in both obs modes (samples are empty-ish
    /// without the feature, but generations still tick, which is what the
    /// endpoint contract tests rely on).
    pub fn start(period: Duration, retain: usize) -> Sampler {
        let actor = crate::timeline::next_actor_id();
        let shared = Arc::new(SamplerShared {
            epoch: Instant::now(),
            retain: retain.max(1),
            actor,
            stop: AtomicBool::new(false),
            generation: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            ring: parking_lot::Mutex::new(VecDeque::new()),
        });
        *ACTIVE_SAMPLER.lock() = Some(Arc::downgrade(&shared));
        let worker = Arc::clone(&shared);
        // Fork edge first, on the spawning thread: everything before this
        // point happens-before the sampler's ring writes.
        crate::timeline::actor_fork(actor);
        let join = std::thread::Builder::new()
            .name("ookami-sampler".to_string())
            .spawn(move || loop {
                let mut slept = Duration::ZERO;
                while slept < period {
                    if worker.stop.load(Ordering::Acquire) {
                        return;
                    }
                    let step = period.saturating_sub(slept).min(Duration::from_millis(25));
                    std::thread::sleep(step);
                    slept += step;
                }
                if worker.stop.load(Ordering::Acquire) {
                    return;
                }
                worker.take();
            })
            .expect("spawn sampler thread");
        Sampler {
            shared,
            join: Some(join),
        }
    }

    /// Take one sample immediately (deterministic tests and endpoint
    /// selfchecks don't want to wait out a period).
    pub fn force_sample(&self) {
        self.shared.take();
    }

    /// The retained samples, oldest first.
    pub fn samples(&self) -> Vec<Sample> {
        self.shared.ring.lock().iter().cloned().collect()
    }

    /// Samples evicted by ring retention so far.
    pub fn dropped(&self) -> u64 {
        self.shared.dropped.load(Ordering::Relaxed)
    }

    /// The latest generation id handed out (0 before the first sample).
    pub fn generation(&self) -> u64 {
        self.shared.generation.load(Ordering::Relaxed)
    }

    /// Stop and join the background thread (idempotent).
    pub fn stop(&mut self) {
        self.shared.stop.store(true, Ordering::Release);
        if let Some(join) = self.join.take() {
            let _ = join.join();
            // Join edge after the thread join: the sampler's writes
            // happen-before everything the joiner does next.
            crate::timeline::actor_join(self.shared.actor);
        }
    }
}

impl Drop for Sampler {
    fn drop(&mut self) {
        self.stop();
        let mut active = ACTIVE_SAMPLER.lock();
        let ours = active
            .as_ref()
            .and_then(Weak::upgrade)
            .is_some_and(|s| Arc::ptr_eq(&s, &self.shared));
        if ours {
            *active = None;
        }
    }
}

/// Render the active sampler's ring as `ookami-samples-v1` JSON (the
/// `/samples` endpoint body). Parses with `obs::Json`.
pub fn active_samples_json() -> String {
    let active = ACTIVE_SAMPLER.lock().as_ref().and_then(Weak::upgrade);
    let Some(shared) = active else {
        return "{\"schema\":\"ookami-samples-v1\",\"active\":false,\"generation\":0,\
                \"dropped\":0,\"samples\":[]}\n"
            .to_string();
    };
    let samples: Vec<Sample> = shared.ring.lock().iter().cloned().collect();
    let mut o = String::from("{\"schema\":\"ookami-samples-v1\",\"active\":true,");
    let _ = write!(
        o,
        "\"generation\":{},\"dropped\":{},\"samples\":[",
        shared.generation.load(Ordering::Relaxed),
        shared.dropped.load(Ordering::Relaxed)
    );
    for (i, s) in samples.iter().enumerate() {
        let sep = if i == 0 { "" } else { "," };
        let _ = write!(
            o,
            "{sep}\n {{\"generation\":{},\"at_ns\":{},\"counters\":{{",
            s.generation, s.at_ns
        );
        for (j, (name, v)) in s.counters.nonzero().iter().enumerate() {
            let sep = if j == 0 { "" } else { "," };
            let _ = write!(o, "{sep}\"{name}\":{v}");
        }
        o.push_str("},\"hists\":[");
        for (j, ((kind, label), h)) in s.hists.iter().enumerate() {
            let sep = if j == 0 { "" } else { "," };
            let _ = write!(
                o,
                "{sep}{{\"metric\":\"{}\",\"label\":{},\"count\":{},\"sum\":{},\"max\":{},\
                 \"p50\":{},\"p90\":{},\"p99\":{}}}",
                kind.metric(),
                crate::obs::json_str(label),
                h.count(),
                h.sum(),
                h.max(),
                h.quantile(0.50),
                h.quantile(0.90),
                h.quantile(0.99),
            );
        }
        o.push_str("]}");
    }
    o.push_str("\n]}\n");
    o
}

// ---------------------------------------------------------------------
// Prometheus exposition + validator
// ---------------------------------------------------------------------

fn prom_label_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Full Prometheus text exposition: the scalar counter/span rendering from
/// [`crate::obs::prometheus`] plus histogram exposition (cumulative `le`
/// buckets, `_sum`, `_count`) and p50/p90/p99/max quantile gauges for
/// every histogram series, plus the active sampler's generation. Always
/// passes [`validate_prometheus`].
pub fn prometheus() -> String {
    let mut out = crate::obs::prometheus();
    let snaps = snapshots();
    for kind in HIST_KINDS {
        let series: Vec<(&String, &HistSnapshot)> = snaps
            .iter()
            .filter(|((k, _), _)| *k == kind)
            .map(|((_, label), h)| (label, h))
            .collect();
        if series.is_empty() {
            continue;
        }
        let metric = kind.metric();
        let key = kind.label_key();
        let _ = writeln!(out, "# TYPE {metric} histogram");
        for (label, h) in &series {
            let base = if label.is_empty() {
                String::new()
            } else {
                format!("{key}=\"{}\",", prom_label_escape(label))
            };
            let mut cum = 0u64;
            for i in 0..HIST_BUCKETS {
                let c = h.bucket_count(i);
                if c == 0 {
                    continue;
                }
                cum += c;
                let _ = writeln!(
                    out,
                    "{metric}_bucket{{{base}le=\"{}\"}} {cum}",
                    bucket_upper(i)
                );
            }
            let _ = writeln!(out, "{metric}_bucket{{{base}le=\"+Inf\"}} {}", h.count());
            let _ = writeln!(
                out,
                "{metric}_sum{{{base_t}}} {}",
                h.sum(),
                base_t = base.trim_end_matches(',')
            );
            let _ = writeln!(
                out,
                "{metric}_count{{{base_t}}} {}",
                h.count(),
                base_t = base.trim_end_matches(',')
            );
        }
        let _ = writeln!(out, "# TYPE {metric}_quantile gauge");
        for (label, h) in &series {
            let base = if label.is_empty() {
                String::new()
            } else {
                format!("{key}=\"{}\",", prom_label_escape(label))
            };
            for (q, qv) in [
                ("0.5", h.quantile(0.50)),
                ("0.9", h.quantile(0.90)),
                ("0.99", h.quantile(0.99)),
                ("1", h.max()),
            ] {
                let _ = writeln!(out, "{metric}_quantile{{{base}quantile=\"{q}\"}} {qv}");
            }
        }
    }
    let generation = ACTIVE_SAMPLER
        .lock()
        .as_ref()
        .and_then(Weak::upgrade)
        .map_or(0, |s| s.generation.load(Ordering::Relaxed));
    out.push_str("# TYPE ookami_sampler_generation gauge\n");
    let _ = writeln!(out, "ookami_sampler_generation {generation}");
    out
}

fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// One parsed sample line: name, labels (in order), value.
fn parse_prom_sample(line: &str) -> Result<(String, Vec<(String, String)>, f64), String> {
    let b = line.as_bytes();
    let mut i = 0usize;
    while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_' || b[i] == b':') {
        i += 1;
    }
    let name = &line[..i];
    if !valid_metric_name(name) {
        return Err(format!("bad metric name in `{line}`"));
    }
    let mut labels = Vec::new();
    if b.get(i) == Some(&b'{') {
        i += 1;
        loop {
            if b.get(i) == Some(&b'}') {
                i += 1;
                break;
            }
            let lstart = i;
            while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                i += 1;
            }
            let lname = &line[lstart..i];
            if lname.is_empty() || lname.as_bytes()[0].is_ascii_digit() {
                return Err(format!("bad label name in `{line}`"));
            }
            if b.get(i) != Some(&b'=') || b.get(i + 1) != Some(&b'"') {
                return Err(format!("expected =\"...\" after label in `{line}`"));
            }
            i += 2;
            let mut val = String::new();
            loop {
                match b.get(i) {
                    Some(b'"') => {
                        i += 1;
                        break;
                    }
                    Some(b'\\') => {
                        let esc = b.get(i + 1).ok_or_else(|| "dangling escape".to_string())?;
                        match esc {
                            b'\\' => val.push('\\'),
                            b'"' => val.push('"'),
                            b'n' => val.push('\n'),
                            _ => return Err(format!("bad label escape in `{line}`")),
                        }
                        i += 2;
                    }
                    Some(&c) => {
                        val.push(c as char);
                        i += 1;
                    }
                    None => return Err(format!("unterminated label value in `{line}`")),
                }
            }
            labels.push((lname.to_string(), val));
            match b.get(i) {
                Some(b',') => i += 1,
                Some(b'}') => {}
                _ => return Err(format!("expected `,` or `}}` in labels of `{line}`")),
            }
        }
    }
    let rest = line[i..].trim();
    let mut parts = rest.split_ascii_whitespace();
    let value_tok = parts
        .next()
        .ok_or_else(|| format!("missing value in `{line}`"))?;
    let value = match value_tok {
        "+Inf" | "Inf" => f64::INFINITY,
        "-Inf" => f64::NEG_INFINITY,
        "NaN" => f64::NAN,
        t => t
            .parse::<f64>()
            .map_err(|_| format!("bad value `{t}` in `{line}`"))?,
    };
    if let Some(ts) = parts.next() {
        ts.parse::<i64>()
            .map_err(|_| format!("bad timestamp `{ts}` in `{line}`"))?;
    }
    if parts.next().is_some() {
        return Err(format!("trailing tokens in `{line}`"));
    }
    Ok((name.to_string(), labels, value))
}

/// Validate a Prometheus text-exposition document: comment lines must be
/// well-formed `# TYPE`/`# HELP`, sample lines must parse (metric name,
/// label syntax, numeric value), and every `_bucket` family must be
/// cumulative — non-decreasing counts over increasing `le` edges, ending
/// at `+Inf` with a count matching the family's `_count` when present.
pub fn validate_prometheus(text: &str) -> Result<(), String> {
    // (base name, non-le labels) → [(le, count)] in document order.
    #[allow(clippy::type_complexity)]
    let mut buckets: BTreeMap<(String, String), Vec<(f64, f64)>> = BTreeMap::new();
    let mut counts: BTreeMap<(String, String), f64> = BTreeMap::new();
    for (idx, line) in text.lines().enumerate() {
        let lineno = idx + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let comment = comment.trim_start();
            if let Some(rest) = comment.strip_prefix("TYPE ") {
                let mut it = rest.split_ascii_whitespace();
                let name = it.next().unwrap_or("");
                let ty = it.next().unwrap_or("");
                if !valid_metric_name(name) {
                    return Err(format!("line {lineno}: bad TYPE metric name `{name}`"));
                }
                if !matches!(
                    ty,
                    "counter" | "gauge" | "histogram" | "summary" | "untyped"
                ) {
                    return Err(format!("line {lineno}: bad TYPE `{ty}`"));
                }
            } else if comment.strip_prefix("HELP ").is_none() && !comment.is_empty() {
                return Err(format!("line {lineno}: unknown comment `{line}`"));
            }
            continue;
        }
        let (name, labels, value) =
            parse_prom_sample(line).map_err(|e| format!("line {lineno}: {e}"))?;
        if let Some(base) = name.strip_suffix("_bucket") {
            let le = labels
                .iter()
                .find(|(k, _)| k == "le")
                .ok_or_else(|| format!("line {lineno}: `{name}` without le label"))?;
            let edge = if le.1 == "+Inf" {
                f64::INFINITY
            } else {
                le.1.parse::<f64>()
                    .map_err(|_| format!("line {lineno}: bad le `{}`", le.1))?
            };
            let others: Vec<String> = labels
                .iter()
                .filter(|(k, _)| k != "le")
                .map(|(k, v)| format!("{k}={v}"))
                .collect();
            buckets
                .entry((base.to_string(), others.join(",")))
                .or_default()
                .push((edge, value));
        } else if let Some(base) = name.strip_suffix("_count") {
            let others: Vec<String> = labels.iter().map(|(k, v)| format!("{k}={v}")).collect();
            counts.insert((base.to_string(), others.join(",")), value);
        }
    }
    for ((base, labels), series) in &buckets {
        let mut prev_edge = f64::NEG_INFINITY;
        let mut prev_count = 0.0f64;
        for &(edge, count) in series {
            if edge <= prev_edge {
                return Err(format!(
                    "histogram {base}{{{labels}}}: le edges not increasing at {edge}"
                ));
            }
            if count < prev_count {
                return Err(format!(
                    "histogram {base}{{{labels}}}: cumulative count decreases at le={edge}"
                ));
            }
            prev_edge = edge;
            prev_count = count;
        }
        let last = series.last().expect("non-empty series");
        if last.0 != f64::INFINITY {
            return Err(format!("histogram {base}{{{labels}}}: missing +Inf bucket"));
        }
        if let Some(&total) = counts.get(&(base.clone(), labels.clone())) {
            if (total - last.1).abs() > 1e-9 {
                return Err(format!(
                    "histogram {base}{{{labels}}}: _count {total} != +Inf bucket {}",
                    last.1
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges_partition_u64() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(u64::MAX), 64);
        for i in 0..HIST_BUCKETS {
            assert_eq!(bucket_index(bucket_lower(i)), i, "lower edge of {i}");
            assert_eq!(bucket_index(bucket_upper(i)), i, "upper edge of {i}");
        }
    }

    #[test]
    fn quantiles_of_a_known_distribution() {
        let mut h = HistSnapshot::new();
        for v in [1u64, 2, 3, 100, 1000] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1106);
        assert_eq!(h.max(), 1000);
        // rank(0.5) = 3 → bucket of 3 ([2,3]) → upper edge 3.
        assert_eq!(h.quantile(0.5), 3);
        // rank(0.99) = 5 → bucket of 1000 ([512,1023]) → clamped to max.
        assert_eq!(h.quantile(0.99), 1000);
        assert_eq!(h.quantile(1.0), 1000);
        let empty = HistSnapshot::new();
        assert_eq!(empty.quantile(0.5), 0);
    }

    #[test]
    fn exposition_validates_and_rejects_corruption() {
        validate_prometheus(&prometheus()).expect("own exposition must validate");
        let good = "# TYPE m histogram\nm_bucket{le=\"1\"} 2\nm_bucket{le=\"+Inf\"} 3\n\
                    m_sum 4\nm_count 3\n";
        validate_prometheus(good).expect("good histogram");
        for (bad, why) in [
            ("m_bucket{le=\"1\"} 2\n", "no +Inf bucket"),
            (
                "m_bucket{le=\"1\"} 5\nm_bucket{le=\"+Inf\"} 3\n",
                "decreasing cumulative counts",
            ),
            (
                "m_bucket{le=\"1\"} 1\nm_bucket{le=\"+Inf\"} 3\nm_count 4\n",
                "_count disagrees with +Inf",
            ),
            ("1bad_name 3\n", "bad metric name"),
            ("m{x=\"unterminated} 3\n", "unterminated label"),
            ("m no_value_here\n", "non-numeric value"),
            ("# TYPE m flavor\n", "bad TYPE"),
        ] {
            assert!(validate_prometheus(bad).is_err(), "accepted {why}");
        }
    }

    #[cfg(feature = "obs")]
    #[test]
    fn record_snapshot_roundtrip() {
        record(HistKind::SampleInstrs, "telemetry_unit_test", 5);
        record(HistKind::SampleInstrs, "telemetry_unit_test", 9);
        record(HistKind::SampleInstrs, "telemetry_unit_test", 1 << 20);
        let snaps = snapshots();
        let h = snaps
            .get(&(HistKind::SampleInstrs, "telemetry_unit_test".to_string()))
            .expect("series recorded");
        assert!(h.count() >= 3);
        assert!(h.max() >= 1 << 20);
        assert!(h.bucket_count(bucket_index(5)) >= 1);
        // The exposition must now carry this series' buckets.
        let text = prometheus();
        assert!(
            text.contains("ookami_sample_interval_instrs_bucket{engine=\"telemetry_unit_test\"")
        );
        validate_prometheus(&text).expect("exposition with live series validates");
    }

    #[test]
    fn sampler_ring_retains_and_counts_drops() {
        let mut s = Sampler::start(Duration::from_hours(1), 3);
        for _ in 0..5 {
            s.force_sample();
        }
        let samples = s.samples();
        assert_eq!(samples.len(), 3, "ring bounded at retain");
        assert_eq!(s.dropped(), 2);
        assert_eq!(s.generation(), 5);
        let gens: Vec<u64> = samples.iter().map(|x| x.generation).collect();
        assert_eq!(gens, vec![3, 4, 5], "monotonic generations, oldest dropped");
        let doc = active_samples_json();
        let v = crate::obs::Json::parse(&doc).expect("samples JSON parses");
        assert_eq!(
            v.get("schema"),
            Some(&crate::obs::Json::Str("ookami-samples-v1".to_string()))
        );
        s.stop();
        s.stop(); // idempotent
    }
}
