//! Timeline tracer: a lock-free, per-thread ring-buffer event recorder
//! with a Chrome-trace-event (Perfetto-loadable) JSON exporter.
//!
//! The PR-3 `obs` layer answers *how many* events a run retired; this
//! module answers *when and where*: span begin/end pairs (from
//! [`crate::obs::region`]), pool fork/join/chunk/barrier events (from
//! [`crate::pool`]), periodic counter samples (from the SVE executors),
//! and background-actor fork/write/join events (from the telemetry
//! sampler and HTTP server threads) land in per-thread ring buffers and
//! export as a `traceEvents` JSON document that `chrome://tracing` and
//! Perfetto load directly.
//!
//! Design rules, mirroring [`crate::obs`]:
//!
//! * **Zero cost when disabled.** Without the `obs` cargo feature every
//!   hook is an empty `#[inline(always)]` function and [`ChunkGuard`] is a
//!   ZST; with the feature but no active recording, each hook is one
//!   relaxed atomic load.
//! * **Lock-free recording.** Each thread owns a ring of fixed-size event
//!   slots guarded by per-slot sequence numbers (a seqlock): the owner
//!   writes with plain atomic stores and never blocks; the exporter
//!   validates each slot's sequence before and after reading and skips
//!   slots a writer raced it on. No allocation happens on the hot path
//!   after the ring exists (span/counter *names* are interned once under a
//!   mutex — spans and samples are rare next to chunk events, which use
//!   pre-interned names).
//! * **Bounded memory, drop-oldest.** A ring holds the most recent
//!   `capacity` events of its thread; older events are overwritten and
//!   counted in [`TimelineStats::events_dropped`]. The exporter re-balances
//!   span begin/end pairs so a trace whose oldest events were dropped still
//!   nests correctly (orphan ends are discarded, still-open begins are
//!   closed at the last timestamp).
//!
//! ```text
//! timeline::start(1 << 15);
//! { let _span = obs::region("npb_cg"); cg::run(Class::S, 4); }
//! let json = timeline::export_chrome_trace();   // parses with obs::Json
//! ```

use crate::obs::Counter;

/// Event-kind discriminants stored in ring slots.
#[cfg(feature = "obs")]
mod kind {
    pub const SPAN_BEGIN: u64 = 1;
    pub const SPAN_END: u64 = 2;
    pub const FORK: u64 = 3;
    pub const JOIN: u64 = 4;
    pub const CHUNK: u64 = 5;
    pub const BARRIER: u64 = 6;
    pub const COUNTER: u64 = 7;
    pub const ACTOR_FORK: u64 = 8;
    pub const ACTOR_JOIN: u64 = 9;
    pub const ACTOR_WRITE: u64 = 10;
}

/// Escape a string as a JSON string literal (quotes included).
#[cfg(feature = "obs")]
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// One recorded event, decoded for programmatic consumers (the
/// `ookami_check` race detector replays these). [`export_events`] returns
/// them sorted by timestamp across all threads of the current session.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimelineEvent {
    /// Recording thread (dense ids assigned at first event, caller = the
    /// thread that called [`start`] or the pool worker's own id).
    pub tid: u64,
    /// Event timestamp (session-relative); for duration payloads this is
    /// the *start* of the measured interval.
    pub ts_ns: u64,
    /// Interned event name (span name, schedule name, counter name).
    pub name: String,
    pub payload: EventPayload,
}

/// Decoded payload of a [`TimelineEvent`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventPayload {
    SpanBegin,
    SpanEnd,
    /// Pool region forked into `parts` logical threads (caller thread).
    Fork {
        parts: u64,
    },
    /// Pool region joined after the completion barrier (caller thread).
    Join {
        parts: u64,
    },
    /// One scheduled chunk `[start, start+len)` of parallel-for `loop_id`
    /// (ids are unique per top-level pool call within a process).
    Chunk {
        loop_id: u64,
        start: u64,
        len: u64,
        dur_ns: u64,
    },
    /// Time spent waiting at the pool completion barrier.
    BarrierWait {
        ns: u64,
    },
    /// Periodic cumulative counter sample.
    Counter {
        value: u64,
    },
    /// A long-lived background actor (telemetry sampler thread, HTTP
    /// connection thread, …) was spawned; recorded on the *spawning*
    /// thread, so the actor's first write synchronizes with everything
    /// before the spawn. `actor` ids come from [`next_actor_id`].
    ActorFork {
        actor: u64,
    },
    /// The actor was joined (recorded on the joining thread after the
    /// thread join), ordering the actor's writes before what follows.
    ActorJoin {
        actor: u64,
    },
    /// The actor wrote shared state `[start, start+len)` in its own
    /// address space (sampler ring slots, response buffers); recorded on
    /// the thread that performed the write.
    ActorWrite {
        actor: u64,
        start: u64,
        len: u64,
    },
}

/// Recording statistics over the rings of the current recording session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TimelineStats {
    /// Threads that recorded at least one event.
    pub threads: usize,
    /// Events currently retained across all rings.
    pub events_retained: u64,
    /// Events overwritten by drop-oldest across all rings.
    pub events_dropped: u64,
}

// ---------------------------------------------------------------------
// Enabled implementation
// ---------------------------------------------------------------------

#[cfg(feature = "obs")]
mod imp {
    use super::{kind, TimelineStats};
    use crate::obs::Counter;
    use parking_lot::Mutex;
    use std::cell::RefCell;
    use std::collections::BTreeMap;
    use std::fmt::Write as _;
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::{Arc, OnceLock};
    use std::time::Instant;

    /// One recorded event. `seq` is a per-slot seqlock: odd while the owner
    /// is writing, `2 × (event_number + 1)` once event `event_number` is
    /// fully stored — so a reader can both detect in-progress writes and
    /// tell which generation of the ring a slot holds.
    struct Slot {
        seq: AtomicU64,
        ts_ns: AtomicU64,
        kind: AtomicU64,
        name: AtomicU64,
        a: AtomicU64,
        b: AtomicU64,
        c: AtomicU64,
    }

    impl Slot {
        fn new() -> Slot {
            Slot {
                seq: AtomicU64::new(0),
                ts_ns: AtomicU64::new(0),
                kind: AtomicU64::new(0),
                name: AtomicU64::new(0),
                a: AtomicU64::new(0),
                b: AtomicU64::new(0),
                c: AtomicU64::new(0),
            }
        }
    }

    struct ThreadRing {
        tid: u64,
        thread_name: String,
        /// Recording generation this ring belongs to; rings from earlier
        /// [`super::start`] calls stay registered but are skipped.
        generation: u64,
        capacity: usize,
        /// Events ever pushed to this ring (monotonic).
        head: AtomicU64,
        slots: Box<[Slot]>,
    }

    impl ThreadRing {
        /// Owner-thread only.
        fn push(&self, ts_ns: u64, kind: u64, name: u64, a: u64, b: u64, c: u64) {
            let h = self.head.load(Ordering::Relaxed);
            let slot = &self.slots[(h as usize) % self.capacity];
            slot.seq.store(2 * h + 1, Ordering::Release);
            slot.ts_ns.store(ts_ns, Ordering::Relaxed);
            slot.kind.store(kind, Ordering::Relaxed);
            slot.name.store(name, Ordering::Relaxed);
            slot.a.store(a, Ordering::Relaxed);
            slot.b.store(b, Ordering::Relaxed);
            slot.c.store(c, Ordering::Relaxed);
            slot.seq.store(2 * (h + 1), Ordering::Release);
            self.head.store(h + 1, Ordering::Release);
        }

        /// Snapshot the retained events, oldest first, skipping any slot a
        /// concurrent writer invalidated.
        fn read(&self) -> Vec<Event> {
            let h = self.head.load(Ordering::Acquire);
            let start = h.saturating_sub(self.capacity as u64);
            let mut out = Vec::with_capacity((h - start) as usize);
            for e in start..h {
                let slot = &self.slots[(e as usize) % self.capacity];
                let seq1 = slot.seq.load(Ordering::Acquire);
                if seq1 != 2 * (e + 1) {
                    continue;
                }
                let ev = Event {
                    ts_ns: slot.ts_ns.load(Ordering::Relaxed),
                    kind: slot.kind.load(Ordering::Relaxed),
                    name: slot.name.load(Ordering::Relaxed),
                    a: slot.a.load(Ordering::Relaxed),
                    b: slot.b.load(Ordering::Relaxed),
                    c: slot.c.load(Ordering::Relaxed),
                };
                if slot.seq.load(Ordering::Acquire) == seq1 {
                    out.push(ev);
                }
            }
            out
        }
    }

    #[derive(Clone, Copy)]
    struct Event {
        ts_ns: u64,
        kind: u64,
        name: u64,
        a: u64,
        b: u64,
        c: u64,
    }

    static RECORDING: AtomicBool = AtomicBool::new(false);
    static GENERATION: AtomicU64 = AtomicU64::new(0);
    static CAPACITY: AtomicU64 = AtomicU64::new(DEFAULT_CAPACITY as u64);
    static NEXT_TID: AtomicU64 = AtomicU64::new(1);
    static REGISTRY: Mutex<Vec<Arc<ThreadRing>>> = Mutex::new(Vec::new());

    pub const DEFAULT_CAPACITY: usize = 1 << 15;

    /// Name intern table. Ids 0..N_WELL_KNOWN are fixed so the pool's
    /// chunk/fork/join/barrier hot paths never touch this mutex.
    struct Intern {
        names: Vec<String>,
        ids: BTreeMap<String, u64>,
    }

    pub const NAME_STATIC: u64 = 0;
    pub const NAME_DYNAMIC: u64 = 1;
    pub const NAME_GUIDED: u64 = 2;
    pub const NAME_FORK: u64 = 3;
    pub const NAME_JOIN: u64 = 4;
    pub const NAME_BARRIER: u64 = 5;
    pub const NAME_ACTOR_FORK: u64 = 6;
    pub const NAME_ACTOR_JOIN: u64 = 7;
    pub const NAME_ACTOR_WRITE: u64 = 8;
    const WELL_KNOWN: [&str; 9] = [
        "chunk_static",
        "chunk_dynamic",
        "chunk_guided",
        "fork",
        "join",
        "barrier_wait",
        "actor_fork",
        "actor_join",
        "actor_write",
    ];

    fn intern_table() -> &'static Mutex<Intern> {
        static TABLE: OnceLock<Mutex<Intern>> = OnceLock::new();
        TABLE.get_or_init(|| {
            let names: Vec<String> = WELL_KNOWN.iter().map(ToString::to_string).collect();
            let ids = names
                .iter()
                .enumerate()
                .map(|(i, n)| (n.clone(), i as u64))
                .collect();
            Mutex::new(Intern { names, ids })
        })
    }

    fn intern(name: &str) -> u64 {
        let mut t = intern_table().lock();
        if let Some(&id) = t.ids.get(name) {
            return id;
        }
        let id = t.names.len() as u64;
        t.names.push(name.to_string());
        t.ids.insert(name.to_string(), id);
        id
    }

    fn epoch() -> &'static Instant {
        static EPOCH: OnceLock<Instant> = OnceLock::new();
        EPOCH.get_or_init(Instant::now)
    }

    fn now_ns() -> u64 {
        epoch().elapsed().as_nanos().min(u64::MAX as u128) as u64
    }

    thread_local! {
        static RING: RefCell<Option<Arc<ThreadRing>>> = const { RefCell::new(None) };
        static TID: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
    }

    #[inline]
    pub fn recording() -> bool {
        RECORDING.load(Ordering::Relaxed)
    }

    pub fn start(capacity_per_thread: usize) {
        epoch(); // pin the trace epoch before any event
        CAPACITY.store(capacity_per_thread.max(16) as u64, Ordering::Relaxed);
        GENERATION.fetch_add(1, Ordering::Release);
        RECORDING.store(true, Ordering::Release);
    }

    pub fn stop() {
        RECORDING.store(false, Ordering::Release);
    }

    /// Push one event on this thread's current-generation ring, creating
    /// and registering the ring on first use.
    fn push(kind: u64, name: u64, ts_ns: u64, a: u64, b: u64, c: u64) {
        RING.with(|cell| {
            let mut cell = cell.borrow_mut();
            let generation = GENERATION.load(Ordering::Acquire);
            let stale = match cell.as_ref() {
                Some(ring) => ring.generation != generation,
                None => true,
            };
            if stale {
                let tid = TID.with(|t| {
                    if t.get() == 0 {
                        t.set(NEXT_TID.fetch_add(1, Ordering::Relaxed));
                    }
                    t.get()
                });
                let capacity = CAPACITY.load(Ordering::Relaxed) as usize;
                let ring = Arc::new(ThreadRing {
                    tid,
                    thread_name: std::thread::current()
                        .name()
                        .unwrap_or("unnamed")
                        .to_string(),
                    generation,
                    capacity,
                    head: AtomicU64::new(0),
                    slots: (0..capacity).map(|_| Slot::new()).collect(),
                });
                REGISTRY.lock().push(Arc::clone(&ring));
                *cell = Some(ring);
            }
            cell.as_ref()
                .expect("ring just installed")
                .push(ts_ns, kind, name, a, b, c);
        });
    }

    pub fn span_begin(name: &str) {
        if !recording() {
            return;
        }
        let id = intern(name);
        push(kind::SPAN_BEGIN, id, now_ns(), 0, 0, 0);
    }

    pub fn span_end(name: &str) {
        if !recording() {
            return;
        }
        let id = intern(name);
        push(kind::SPAN_END, id, now_ns(), 0, 0, 0);
    }

    pub fn fork(parts: usize) {
        if !recording() {
            return;
        }
        push(kind::FORK, NAME_FORK, now_ns(), parts as u64, 0, 0);
    }

    pub fn join(parts: usize) {
        if !recording() {
            return;
        }
        push(kind::JOIN, NAME_JOIN, now_ns(), parts as u64, 0, 0);
    }

    /// Chunk guard: measures the chunk body and records one complete event
    /// on drop. `sched_name_id` is one of the pre-interned schedule names.
    pub struct ChunkGuard {
        t0_ns: u64,
        name: u64,
        loop_id: u64,
        start: u32,
        len: u32,
        active: bool,
    }

    pub fn chunk(sched_name_id: u64, loop_id: u64, start: usize, len: usize) -> ChunkGuard {
        if !recording() {
            return ChunkGuard {
                t0_ns: 0,
                name: 0,
                loop_id: 0,
                start: 0,
                len: 0,
                active: false,
            };
        }
        ChunkGuard {
            t0_ns: now_ns(),
            name: sched_name_id,
            loop_id,
            start: start.min(u32::MAX as usize) as u32,
            len: len.min(u32::MAX as usize) as u32,
            active: true,
        }
    }

    impl Drop for ChunkGuard {
        fn drop(&mut self) {
            if !self.active {
                return;
            }
            let dur = now_ns().saturating_sub(self.t0_ns);
            let packed = (u64::from(self.start) << 32) | u64::from(self.len);
            push(
                kind::CHUNK,
                self.name,
                self.t0_ns,
                dur,
                packed,
                self.loop_id,
            );
        }
    }

    pub fn barrier_wait(ns: u64) {
        if !recording() {
            return;
        }
        let end = now_ns();
        push(
            kind::BARRIER,
            NAME_BARRIER,
            end.saturating_sub(ns),
            ns,
            0,
            0,
        );
    }

    pub fn actor_fork(actor: u64) {
        if !recording() {
            return;
        }
        push(kind::ACTOR_FORK, NAME_ACTOR_FORK, now_ns(), actor, 0, 0);
    }

    pub fn actor_join(actor: u64) {
        if !recording() {
            return;
        }
        push(kind::ACTOR_JOIN, NAME_ACTOR_JOIN, now_ns(), actor, 0, 0);
    }

    pub fn actor_write(actor: u64, start: u64, len: u64) {
        if !recording() {
            return;
        }
        push(
            kind::ACTOR_WRITE,
            NAME_ACTOR_WRITE,
            now_ns(),
            actor,
            start,
            len,
        );
    }

    pub fn counter_sample(c: Counter, value: u64) {
        if !recording() {
            return;
        }
        let id = intern(c.name());
        push(kind::COUNTER, id, now_ns(), value, 0, 0);
    }

    fn current_rings() -> Vec<Arc<ThreadRing>> {
        let generation = GENERATION.load(Ordering::Acquire);
        let mut rings: Vec<Arc<ThreadRing>> = REGISTRY
            .lock()
            .iter()
            .filter(|r| r.generation == generation)
            .cloned()
            .collect();
        rings.sort_by_key(|r| r.tid);
        rings
    }

    pub fn stats() -> TimelineStats {
        let mut s = TimelineStats::default();
        for ring in current_rings() {
            let head = ring.head.load(Ordering::Acquire);
            if head == 0 {
                continue;
            }
            s.threads += 1;
            let retained = head.min(ring.capacity as u64);
            s.events_retained += retained;
            s.events_dropped += head - retained;
        }
        s
    }

    /// Microseconds with nanosecond precision, the Chrome trace `ts` unit.
    fn us(ns: u64) -> String {
        format!("{:.3}", ns as f64 / 1e3)
    }

    fn emit(
        out: &mut String,
        first: &mut bool,
        name: &str,
        cat: &str,
        ph: &str,
        ts_ns: u64,
        tid: u64,
        extra: &str,
    ) {
        if !*first {
            out.push(',');
        }
        *first = false;
        let _ = write!(
            out,
            "\n  {{\"name\":{},\"cat\":\"{cat}\",\"ph\":\"{ph}\",\"ts\":{},\"pid\":1,\"tid\":{tid}{extra}}}",
            super::json_escape(name),
            us(ts_ns)
        );
    }

    pub fn export_chrome_trace() -> String {
        let rings = current_rings();
        let names: Vec<String> = intern_table().lock().names.clone();
        let name_of = |id: u64| -> &str { names.get(id as usize).map_or("?", |s| s.as_str()) };
        // Stats are taken once, before the rings are read, so the
        // truncation annotation and otherData describe the same instant.
        let s = stats();

        let mut out = String::from("{\"traceEvents\":[");
        let _ = write!(
            out,
            "\n  {{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"args\":{{\"name\":\"ookami\"}}}}"
        );
        let mut first = false;
        if s.events_dropped > 0 {
            // Truncated session: say so *inside* the trace (a global
            // instant event Perfetto renders), not just in otherData —
            // a partial trace must never pass as a complete one.
            let _ = write!(
                out,
                ",\n  {{\"name\":\"timeline_truncated\",\"cat\":\"meta\",\"ph\":\"i\",\"ts\":0.000,\
                 \"pid\":1,\"tid\":0,\"s\":\"g\",\"args\":{{\"events_dropped\":{}}}}}",
                s.events_dropped
            );
        }

        let mut total_spans_closed = 0u64;
        let mut orphan_ends = 0u64;
        for ring in &rings {
            let events = ring.read();
            if events.is_empty() {
                continue;
            }
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "\n  {{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{},\"args\":{{\"name\":{}}}}}",
                ring.tid,
                super::json_escape(&ring.thread_name)
            );
            // Span fixup: drop-oldest may have evicted a begin whose end
            // survives (orphan end — discarded) and the stream may close
            // while spans are open (closed at the last timestamp). Guards
            // are strictly LIFO per thread, so the retained suffix needs no
            // reordering.
            let mut stack: Vec<u64> = Vec::new();
            let last_ts = events.last().map_or(0, |e| e.ts_ns);
            for ev in &events {
                match ev.kind {
                    kind::SPAN_BEGIN => {
                        stack.push(ev.name);
                        emit(
                            &mut out,
                            &mut first,
                            name_of(ev.name),
                            "span",
                            "B",
                            ev.ts_ns,
                            ring.tid,
                            "",
                        );
                    }
                    kind::SPAN_END => {
                        if stack.pop().is_some() {
                            total_spans_closed += 1;
                            emit(
                                &mut out,
                                &mut first,
                                name_of(ev.name),
                                "span",
                                "E",
                                ev.ts_ns,
                                ring.tid,
                                "",
                            );
                        } else {
                            orphan_ends += 1;
                        }
                    }
                    kind::FORK | kind::JOIN => {
                        let extra = format!(",\"s\":\"t\",\"args\":{{\"parts\":{}}}", ev.a);
                        emit(
                            &mut out,
                            &mut first,
                            name_of(ev.name),
                            "pool",
                            "i",
                            ev.ts_ns,
                            ring.tid,
                            &extra,
                        );
                    }
                    kind::CHUNK => {
                        let extra = format!(
                            ",\"dur\":{},\"args\":{{\"start\":{},\"len\":{},\"loop\":{}}}",
                            us(ev.a),
                            ev.b >> 32,
                            ev.b & 0xffff_ffff,
                            ev.c
                        );
                        emit(
                            &mut out,
                            &mut first,
                            name_of(ev.name),
                            "pool",
                            "X",
                            ev.ts_ns,
                            ring.tid,
                            &extra,
                        );
                    }
                    kind::BARRIER => {
                        let extra = format!(",\"dur\":{}", us(ev.a));
                        emit(
                            &mut out,
                            &mut first,
                            name_of(ev.name),
                            "pool",
                            "X",
                            ev.ts_ns,
                            ring.tid,
                            &extra,
                        );
                    }
                    kind::COUNTER => {
                        let extra = format!(",\"args\":{{\"value\":{}}}", ev.a);
                        emit(
                            &mut out,
                            &mut first,
                            name_of(ev.name),
                            "counter",
                            "C",
                            ev.ts_ns,
                            ring.tid,
                            &extra,
                        );
                    }
                    kind::ACTOR_FORK | kind::ACTOR_JOIN => {
                        let extra = format!(",\"s\":\"t\",\"args\":{{\"actor\":{}}}", ev.a);
                        emit(
                            &mut out,
                            &mut first,
                            name_of(ev.name),
                            "actor",
                            "i",
                            ev.ts_ns,
                            ring.tid,
                            &extra,
                        );
                    }
                    kind::ACTOR_WRITE => {
                        let extra = format!(
                            ",\"s\":\"t\",\"args\":{{\"actor\":{},\"start\":{},\"len\":{}}}",
                            ev.a, ev.b, ev.c
                        );
                        emit(
                            &mut out,
                            &mut first,
                            name_of(ev.name),
                            "actor",
                            "i",
                            ev.ts_ns,
                            ring.tid,
                            &extra,
                        );
                    }
                    _ => {}
                }
            }
            // Close spans still open at export time so every exported trace
            // is well-nested.
            while let Some(name) = stack.pop() {
                total_spans_closed += 1;
                emit(
                    &mut out,
                    &mut first,
                    name_of(name),
                    "span",
                    "E",
                    last_ts,
                    ring.tid,
                    "",
                );
            }
        }

        let _ = write!(
            out,
            "\n],\n\"displayTimeUnit\":\"ms\",\n\"otherData\":{{\"threads\":{},\"events_retained\":{},\"events_dropped\":{},\"truncated\":{},\"spans_closed\":{total_spans_closed},\"orphan_span_ends\":{orphan_ends}}}\n}}\n",
            s.threads,
            s.events_retained,
            s.events_dropped,
            s.events_dropped > 0
        );
        out
    }

    pub fn export_events() -> Vec<super::TimelineEvent> {
        use super::EventPayload as P;
        let rings = current_rings();
        let names: Vec<String> = intern_table().lock().names.clone();
        let name_of = |id: u64| -> String {
            names
                .get(id as usize)
                .map_or("?", |s| s.as_str())
                .to_string()
        };
        let mut out = Vec::new();
        for ring in &rings {
            for ev in ring.read() {
                let payload = match ev.kind {
                    kind::SPAN_BEGIN => P::SpanBegin,
                    kind::SPAN_END => P::SpanEnd,
                    kind::FORK => P::Fork { parts: ev.a },
                    kind::JOIN => P::Join { parts: ev.a },
                    kind::CHUNK => P::Chunk {
                        loop_id: ev.c,
                        start: ev.b >> 32,
                        len: ev.b & 0xffff_ffff,
                        dur_ns: ev.a,
                    },
                    kind::BARRIER => P::BarrierWait { ns: ev.a },
                    kind::COUNTER => P::Counter { value: ev.a },
                    kind::ACTOR_FORK => P::ActorFork { actor: ev.a },
                    kind::ACTOR_JOIN => P::ActorJoin { actor: ev.a },
                    kind::ACTOR_WRITE => P::ActorWrite {
                        actor: ev.a,
                        start: ev.b,
                        len: ev.c,
                    },
                    _ => continue,
                };
                out.push(super::TimelineEvent {
                    tid: ring.tid,
                    ts_ns: ev.ts_ns,
                    name: name_of(ev.name),
                    payload,
                });
            }
        }
        // Deterministic global order: by timestamp, ties by thread.
        out.sort_by_key(|e| (e.ts_ns, e.tid));
        out
    }
}

// ---------------------------------------------------------------------
// Disabled implementation (all no-ops; identical public surface)
// ---------------------------------------------------------------------

#[cfg(not(feature = "obs"))]
mod imp {
    use super::TimelineStats;
    use crate::obs::Counter;

    pub const DEFAULT_CAPACITY: usize = 1 << 15;
    pub const NAME_STATIC: u64 = 0;
    pub const NAME_DYNAMIC: u64 = 1;
    pub const NAME_GUIDED: u64 = 2;

    #[inline(always)]
    pub fn recording() -> bool {
        false
    }

    #[inline(always)]
    pub fn start(_capacity_per_thread: usize) {}

    #[inline(always)]
    pub fn stop() {}

    #[inline(always)]
    pub fn span_begin(_name: &str) {}

    #[inline(always)]
    pub fn span_end(_name: &str) {}

    #[inline(always)]
    pub fn fork(_parts: usize) {}

    #[inline(always)]
    pub fn join(_parts: usize) {}

    /// Zero-sized no-op chunk guard.
    pub struct ChunkGuard;

    #[inline(always)]
    pub fn chunk(_sched_name_id: u64, _loop_id: u64, _start: usize, _len: usize) -> ChunkGuard {
        ChunkGuard
    }

    #[inline(always)]
    pub fn barrier_wait(_ns: u64) {}

    #[inline(always)]
    pub fn counter_sample(_c: Counter, _value: u64) {}

    #[inline(always)]
    pub fn actor_fork(_actor: u64) {}

    #[inline(always)]
    pub fn actor_join(_actor: u64) {}

    #[inline(always)]
    pub fn actor_write(_actor: u64, _start: u64, _len: u64) {}

    pub fn stats() -> TimelineStats {
        TimelineStats::default()
    }

    pub fn export_chrome_trace() -> String {
        "{\"traceEvents\":[],\n\"otherData\":{\"threads\":0,\"events_retained\":0,\"events_dropped\":0,\"truncated\":false}\n}\n"
            .to_string()
    }

    pub fn export_events() -> Vec<super::TimelineEvent> {
        Vec::new()
    }
}

pub use imp::{ChunkGuard, DEFAULT_CAPACITY, NAME_DYNAMIC, NAME_GUIDED, NAME_STATIC};

/// True while a recording session is active (one relaxed load; `const`
/// false without the `obs` feature, so guards fold away).
#[inline(always)]
pub fn recording() -> bool {
    imp::recording()
}

/// Begin a recording session: all subsequent events land in fresh
/// per-thread rings of `capacity_per_thread` slots (drop-oldest beyond
/// that). Rings from a previous session are discarded.
pub fn start(capacity_per_thread: usize) {
    imp::start(capacity_per_thread);
}

/// Stop recording. Already-recorded events stay exportable until the next
/// [`start`].
pub fn stop() {
    imp::stop();
}

/// Record a span open (called by [`crate::obs::region`]).
#[inline(always)]
pub fn span_begin(name: &str) {
    imp::span_begin(name);
}

/// Record a span close (called by the [`crate::obs::Region`] guard).
#[inline(always)]
pub fn span_end(name: &str) {
    imp::span_end(name);
}

/// Record a pool region fork of `parts` logical threads (caller thread).
#[inline(always)]
pub fn fork(parts: usize) {
    imp::fork(parts);
}

/// Record a pool region join (caller thread, after the barrier).
#[inline(always)]
pub fn join(parts: usize) {
    imp::join(parts);
}

/// Guard measuring one scheduled chunk `[start, start+len)` of
/// parallel-for `loop_id`; records a complete event with its duration on
/// drop. `sched_name_id` is one of [`NAME_STATIC`], [`NAME_DYNAMIC`],
/// [`NAME_GUIDED`]; the pool assigns one fresh `loop_id` per top-level
/// region so the race detector can group chunks by loop.
#[inline(always)]
pub fn chunk(sched_name_id: u64, loop_id: u64, start: usize, len: usize) -> ChunkGuard {
    imp::chunk(sched_name_id, loop_id, start, len)
}

/// Record `ns` nanoseconds spent waiting at the pool completion barrier.
#[inline(always)]
pub fn barrier_wait(ns: u64) {
    imp::barrier_wait(ns);
}

/// Record a periodic counter sample: this thread's cumulative `value` for
/// counter `c` (plotted as a Chrome `C` counter track).
#[inline(always)]
pub fn counter_sample(c: Counter, value: u64) {
    imp::counter_sample(c, value);
}

/// Allocate a process-unique actor id for [`actor_fork`]. Never 0, so 0
/// can mean "no actor". Works in both obs modes (ids are cheap and the
/// telemetry threads exist either way).
pub fn next_actor_id() -> u64 {
    static NEXT_ACTOR: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);
    NEXT_ACTOR.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
}

/// Record (on the spawning thread) that background actor `actor` was
/// forked: the race detector orders the actor's writes after everything
/// the spawner did before this point.
#[inline(always)]
pub fn actor_fork(actor: u64) {
    imp::actor_fork(actor);
}

/// Record (on the joining thread, after the thread join) that `actor`
/// finished: its writes happen-before everything after this point.
#[inline(always)]
pub fn actor_join(actor: u64) {
    imp::actor_join(actor);
}

/// Record a shared-state write `[start, start+len)` by `actor` (sampler
/// ring slot, connection response buffer), on the thread performing it.
#[inline(always)]
pub fn actor_write(actor: u64, start: u64, len: u64) {
    imp::actor_write(actor, start, len);
}

/// Statistics over the current recording session's rings.
pub fn stats() -> TimelineStats {
    imp::stats()
}

/// Export the current session as a Chrome trace-event JSON document
/// (object form, `traceEvents` array). The output always parses with
/// [`crate::obs::Json::parse`] and is well-nested per thread.
pub fn export_chrome_trace() -> String {
    imp::export_chrome_trace()
}

/// Export the current session as decoded [`TimelineEvent`]s, sorted by
/// `(ts_ns, tid)` across all threads — the input the `ookami_check`
/// happens-before race detector replays. Empty without the `obs` feature
/// or when nothing was recorded.
pub fn export_events() -> Vec<TimelineEvent> {
    imp::export_events()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::Json;

    /// Serializes the session tests: concurrent `start()` calls steal each
    /// other's recording generation.
    static TL_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn disabled_or_idle_export_is_valid_json() {
        // Whatever the feature state, an export with nothing recorded must
        // parse and contain an (empty or non-empty) traceEvents array.
        let doc = export_chrome_trace();
        let v = Json::parse(&doc).expect("export must be valid JSON");
        assert!(matches!(v.get("traceEvents"), Some(Json::Arr(_))));
    }

    #[cfg(not(feature = "obs"))]
    #[test]
    fn disabled_timeline_is_zero_cost() {
        assert_eq!(std::mem::size_of::<ChunkGuard>(), 0);
        assert!(!recording());
        start(1024);
        assert!(!recording());
        span_begin("x");
        span_end("x");
        assert_eq!(stats(), TimelineStats::default());
    }

    #[cfg(feature = "obs")]
    #[test]
    fn record_export_roundtrip() {
        let _g = TL_LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        start(64);
        span_begin("outer");
        span_begin("inner");
        counter_sample(Counter::SveInstrs, 42);
        {
            let _c = chunk(NAME_STATIC, 7, 0, 10);
        }
        barrier_wait(1000);
        fork(4);
        join(4);
        span_end("inner");
        span_end("outer");
        stop();
        let s = stats();
        assert!(s.threads >= 1);
        assert!(s.events_retained >= 8);
        let doc = export_chrome_trace();
        let v = Json::parse(&doc).expect("trace must parse");
        let events = match v.get("traceEvents") {
            Some(Json::Arr(a)) => a,
            other => panic!("traceEvents missing: {other:?}"),
        };
        let phases: Vec<&str> = events
            .iter()
            .filter_map(|e| match e.get("ph") {
                Some(Json::Str(s)) => Some(s.as_str()),
                _ => None,
            })
            .collect();
        for needed in ["B", "E", "X", "C", "i", "M"] {
            assert!(
                phases.contains(&needed),
                "missing phase {needed}: {phases:?}"
            );
        }
    }

    #[test]
    fn export_events_decodes_payloads() {
        let _g = TL_LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        start(64);
        fork(2);
        {
            let _c = chunk(NAME_DYNAMIC, 42, 8, 4);
        }
        barrier_wait(500);
        join(2);
        stop();
        let events = export_events();
        if cfg!(feature = "obs") {
            let chunk_ev = events
                .iter()
                .find(|e| matches!(e.payload, EventPayload::Chunk { .. }))
                .expect("chunk event present");
            assert_eq!(chunk_ev.name, "chunk_dynamic");
            assert!(matches!(
                chunk_ev.payload,
                EventPayload::Chunk {
                    loop_id: 42,
                    start: 8,
                    len: 4,
                    ..
                }
            ));
            assert!(events
                .iter()
                .any(|e| matches!(e.payload, EventPayload::Fork { parts: 2 })));
            assert!(events
                .iter()
                .any(|e| matches!(e.payload, EventPayload::Join { parts: 2 })));
            assert!(events.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
        } else {
            assert!(events.is_empty());
        }
    }

    #[cfg(feature = "obs")]
    #[test]
    fn actor_events_roundtrip() {
        let _g = TL_LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let actor = next_actor_id();
        start(64);
        actor_fork(actor);
        actor_write(actor, 3, 1);
        actor_join(actor);
        stop();
        let events = export_events();
        assert!(events
            .iter()
            .any(|e| e.payload == EventPayload::ActorFork { actor } && e.name == "actor_fork"));
        assert!(events.iter().any(|e| e.payload
            == EventPayload::ActorWrite {
                actor,
                start: 3,
                len: 1
            }));
        assert!(events
            .iter()
            .any(|e| e.payload == EventPayload::ActorJoin { actor }));
        // The Chrome export carries them too, and still parses.
        let doc = export_chrome_trace();
        let v = Json::parse(&doc).expect("trace must parse");
        if let Some(Json::Arr(evs)) = v.get("traceEvents") {
            assert!(evs.iter().any(|e| matches!(
                e.get("name"),
                Some(Json::Str(n)) if n == "actor_write"
            )));
        } else {
            panic!("traceEvents missing");
        }
    }

    #[cfg(feature = "obs")]
    #[test]
    fn drop_oldest_bounds_memory_and_keeps_nesting() {
        let _g = TL_LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        start(32);
        {
            let _g = crate::obs::region("tl_outer");
            for i in 0..100 {
                let _s = crate::obs::region(if i % 2 == 0 { "tl_even" } else { "tl_odd" });
            }
        }
        stop();
        let s = stats();
        assert!(s.events_dropped > 0, "expected drop-oldest to engage");
        let doc = export_chrome_trace();
        let v = Json::parse(&doc).expect("trace must parse");
        // Truncated sessions must be annotated, not silently partial: an
        // in-trace instant event plus the otherData flag.
        match v.get("otherData").and_then(|o| o.get("truncated")) {
            Some(Json::Bool(true)) => {}
            other => panic!("otherData.truncated must be true, got {other:?}"),
        }
        if let Some(Json::Arr(events)) = v.get("traceEvents") {
            assert!(
                events.iter().any(|e| matches!(
                    e.get("name"),
                    Some(Json::Str(n)) if n == "timeline_truncated"
                )),
                "truncated trace must carry the timeline_truncated marker"
            );
        }
        if let Some(Json::Arr(events)) = v.get("traceEvents") {
            // Per-tid B/E discipline must survive the dropped prefix.
            let mut depth = std::collections::BTreeMap::<i64, i64>::new();
            for e in events {
                let tid = match e.get("tid") {
                    Some(Json::Num(n)) => *n as i64,
                    _ => continue,
                };
                match e.get("ph") {
                    Some(Json::Str(p)) if p == "B" => *depth.entry(tid).or_default() += 1,
                    Some(Json::Str(p)) if p == "E" => {
                        let d = depth.entry(tid).or_default();
                        *d -= 1;
                        assert!(*d >= 0, "unbalanced span end");
                    }
                    _ => {}
                }
            }
            for (tid, d) in depth {
                assert_eq!(d, 0, "thread {tid} left {d} spans open");
            }
        } else {
            panic!("traceEvents missing");
        }
    }
}
