//! Persistent worker pool for the parallel runtime.
//!
//! The seed runtime spawned and joined fresh OS threads on every
//! `par_for`/`par_reduce`/`par_chunks_mut` call, so every NPB timestep,
//! LULESH hydro step and DGEMM panel paid thread-creation cost where an
//! OpenMP program pays a barrier. This module replaces that with the
//! fork/join structure the paper's §V/§VI scaling results assume:
//!
//! * workers are created once and **parked between regions** on a
//!   `parking_lot` condvar;
//! * a region is published as an epoch bump + task pointer; all workers
//!   wake, multiplex the region's *logical* threads over the pool via an
//!   atomic cursor, and meet the caller at a **reusable sense-reversing
//!   barrier**;
//! * three OpenMP-style [`Schedule`]s: `Static` (contiguous chunks,
//!   bit-for-bit the seed's split for any requested thread count),
//!   `Dynamic` (atomic-counter chunk stealing for irregular iterations),
//!   and `Guided` (geometrically shrinking chunks);
//! * worker panics are caught and re-raised on the caller with their
//!   original payload;
//! * top-level regions are **serialized by a region lock** held for the
//!   whole fork/join, so independent threads may drive one pool (e.g.
//!   [`Pool::global`], or tests under the parallel harness) safely —
//!   a second caller queues instead of clobbering the active region's
//!   task slot and over-subscribing the barrier;
//! * a global pool, lazily initialized and sized from
//!   `std::thread::available_parallelism`, backs the free functions in
//!   [`crate::runtime`].
//!
//! Logical threads are decoupled from OS threads: `par_for(8, …)` always
//! splits work into the same 8 ranges no matter how many workers exist,
//! so results are reproducible across machines while the pool supplies
//! whatever concurrency the hardware has.

use crate::obs::{self, Counter};
use parking_lot::{Condvar, Mutex};
use std::any::Any;
use std::cell::Cell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

/// Loop schedule for a parallel region, mirroring OpenMP's `schedule`
/// clause.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Schedule {
    /// Each logical thread takes one contiguous chunk of the iteration
    /// space. Deterministic: identical ranges for a given `(threads, n)`
    /// regardless of pool size.
    Static,
    /// Logical threads repeatedly steal fixed-size chunks from a shared
    /// atomic counter — the right choice for irregular iterations (CG's
    /// sparse rows, UA's refined leaves, LU's hyperplanes).
    Dynamic { chunk: usize },
    /// Like `Dynamic`, but chunk sizes start at `remaining / (2 ×
    /// threads)` and shrink geometrically, trading steal overhead
    /// against tail imbalance.
    Guided,
}

/// Reusable sense-reversing barrier. All `total` participants call
/// [`SenseBarrier::wait`]; the last arrival resets the count and flips
/// the sense, releasing the spinners. Reusable immediately: a
/// participant of the next phase observes the flipped sense as its new
/// "entry" sense.
pub struct SenseBarrier {
    total: usize,
    count: AtomicUsize,
    sense: AtomicBool,
}

impl SenseBarrier {
    pub fn new(total: usize) -> Self {
        assert!(total > 0);
        SenseBarrier {
            total,
            count: AtomicUsize::new(0),
            sense: AtomicBool::new(false),
        }
    }

    pub fn wait(&self) {
        // `enabled()` is const, so the timing folds away without `obs`.
        let start = if obs::enabled() {
            Some(std::time::Instant::now())
        } else {
            None
        };
        let my_sense = !self.sense.load(Ordering::Acquire);
        if self.count.fetch_add(1, Ordering::AcqRel) + 1 == self.total {
            // Last arrival: reset for the next phase, then release.
            self.count.store(0, Ordering::Relaxed);
            self.sense.store(my_sense, Ordering::Release);
        } else {
            let mut spins = 0u32;
            while self.sense.load(Ordering::Acquire) != my_sense {
                spins += 1;
                if spins < 128 {
                    std::hint::spin_loop();
                } else {
                    // Oversubscribed or long-tailed region: let the
                    // remaining participants run.
                    std::thread::yield_now();
                }
            }
        }
        if let Some(t) = start {
            let ns = t.elapsed().as_nanos().min(u64::MAX as u128) as u64;
            obs::add(Counter::BarrierWaitNs, ns);
            crate::timeline::barrier_wait(ns);
            crate::telemetry::record(crate::telemetry::HistKind::BarrierWaitNs, "pool", ns);
        }
    }
}

/// Erased borrowed task; valid strictly between region publication and
/// barrier completion, which `Pool::run_dyn` guarantees by not returning
/// until every participant has arrived.
#[derive(Clone, Copy)]
struct TaskPtr(*const (dyn Fn(usize) + Sync));

// SAFETY: the pointee is `Sync` (bound in the type), and the pool's
// barrier protocol keeps the borrow alive until every worker is done with
// it — workers only read the pointer between publication and completion.
unsafe impl Send for TaskPtr {}

struct State {
    epoch: u64,
    parts: usize,
    task: Option<TaskPtr>,
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    work_cv: Condvar,
    /// Next unclaimed logical thread index of the active region.
    cursor: AtomicUsize,
    /// Completion barrier: every worker plus the caller, every region.
    barrier: SenseBarrier,
    /// First panic payload observed in the active region.
    panic: Mutex<Option<Box<dyn Any + Send>>>,
    /// Workers that have registered their obs thread-local slab. `Pool::new`
    /// waits for all of them so an `obs::snapshot()`/`obs::reset()` taken
    /// right after construction deterministically covers every (still
    /// parked) worker.
    ready: AtomicUsize,
}

thread_local! {
    /// True while this OS thread is executing inside a parallel region
    /// (worker threads: always). Nested regions run inline to keep
    /// OpenMP's nested-off default and to make nesting deadlock-free.
    static IN_PARALLEL: Cell<bool> = const { Cell::new(false) };
}

/// Persistent fork/join worker pool. See the module docs for the
/// execution model.
pub struct Pool {
    shared: Arc<Shared>,
    handles: Vec<std::thread::JoinHandle<()>>,
    /// Serializes top-level regions: held by the caller for the whole
    /// fork/join, so concurrent `run` calls queue rather than race on
    /// the task slot / cursor / panic slot / barrier.
    region: Mutex<()>,
}

/// Logical thread count from the OS (`available_parallelism`), the
/// value `threads == 0` resolves to in the `par_*` helpers.
pub fn auto_threads() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZero::get)
}

impl Pool {
    /// Pool with `workers` background threads; a region therefore has up
    /// to `workers + 1` OS threads working in it (the caller
    /// participates). `workers == 0` is valid: every region runs inline
    /// on the caller.
    pub fn new(workers: usize) -> Self {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                epoch: 0,
                parts: 0,
                task: None,
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            cursor: AtomicUsize::new(0),
            barrier: SenseBarrier::new(workers + 1),
            panic: Mutex::new(None),
            ready: AtomicUsize::new(0),
        });
        let handles: Vec<_> = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("ookami-pool-{i}"))
                    .spawn(move || worker_main(shared))
                    .expect("failed to spawn pool worker")
            })
            .collect();
        // Block until every worker has registered with the obs registry, so
        // counter snapshots never race worker startup (satellite invariant:
        // a snapshot taken before a worker's first region still covers it).
        while shared.ready.load(Ordering::Acquire) < workers {
            std::thread::yield_now();
        }
        Pool {
            shared,
            handles,
            region: Mutex::new(()),
        }
    }

    /// The lazily-initialized global pool, sized so that caller +
    /// workers == `auto_threads()`.
    pub fn global() -> &'static Pool {
        static POOL: OnceLock<Pool> = OnceLock::new();
        POOL.get_or_init(|| Pool::new(auto_threads().saturating_sub(1)))
    }

    pub fn workers(&self) -> usize {
        self.handles.len()
    }

    /// Fork a region of `parts` logical threads: `f(i)` runs exactly
    /// once for every `i in 0..parts`, distributed over the pool (caller
    /// included), then all participants join. Panics inside `f` are
    /// re-raised here with their original payload. Concurrent top-level
    /// calls on one pool are safe: regions are serialized, so a second
    /// caller blocks until the active region completes.
    pub fn run<F: Fn(usize) + Sync>(&self, parts: usize, f: F) {
        self.run_dyn(parts, &f);
    }

    fn run_dyn(&self, parts: usize, f: &(dyn Fn(usize) + Sync)) {
        if parts == 0 {
            return;
        }
        // Nested regions and worker-less pools execute inline; the
        // IN_PARALLEL flag stays set so deeper nesting is inline too.
        if parts == 1 || self.handles.is_empty() || IN_PARALLEL.get() {
            obs::add(Counter::RegionsInline, 1);
            obs::add(Counter::RegionParts, parts as u64);
            let was = IN_PARALLEL.replace(true);
            let mut panicked = None;
            for i in 0..parts {
                if let Err(p) = catch_unwind(AssertUnwindSafe(|| f(i))) {
                    panicked = Some(p);
                    break;
                }
            }
            IN_PARALLEL.set(was);
            if let Some(p) = panicked {
                resume_unwind(p);
            }
            return;
        }

        // One top-level region at a time. Without this, a second caller
        // would overwrite the active region's task pointer, parts and
        // cursor, and the barrier (sized workers + 1) would see
        // workers + 2 participants — releasing one caller while workers
        // may still hold its borrowed closure. Held until after the
        // completion barrier below; dropped during unwind if the region
        // panicked. Nested regions never reach this point (they run
        // inline via the IN_PARALLEL check above), so the lock cannot
        // self-deadlock.
        let _region = self.region.lock();
        obs::add(Counter::RegionsForked, 1);
        obs::add(Counter::RegionParts, parts as u64);
        crate::timeline::fork(parts);

        // SAFETY: the pointee outlives the region — run_dyn does not
        // return until every participant has passed the barrier, and
        // workers only dereference the pointer before arriving at it.
        // A plain `as` cast cannot erase the trait object's lifetime
        // bound, so this stays a transmute.
        #[allow(clippy::transmute_ptr_to_ptr)]
        let task = TaskPtr(unsafe {
            std::mem::transmute::<
                *const (dyn Fn(usize) + Sync + '_),
                *const (dyn Fn(usize) + Sync + 'static),
            >(f)
        });

        {
            let mut g = self.shared.state.lock();
            debug_assert!(g.task.is_none(), "region published while another is active");
            self.shared.cursor.store(0, Ordering::Relaxed);
            *self.shared.panic.lock() = None;
            g.parts = parts;
            g.task = Some(task);
            g.epoch += 1;
            drop(g);
            self.shared.work_cv.notify_all();
        }

        let was = IN_PARALLEL.replace(true);
        execute_parts(&self.shared, parts, f);
        IN_PARALLEL.set(was);

        self.shared.barrier.wait();
        crate::timeline::join(parts);
        // Region complete; clear the task slot for the next region (and
        // for the debug_assert above).
        self.shared.state.lock().task = None;
        if let Some(p) = self.shared.panic.lock().take() {
            resume_unwind(p);
        }
    }
}

/// Claim and execute logical threads until the region's cursor is
/// drained, capturing the first panic.
fn execute_parts(shared: &Shared, parts: usize, f: &(dyn Fn(usize) + Sync)) {
    loop {
        let i = shared.cursor.fetch_add(1, Ordering::Relaxed);
        if i >= parts {
            break;
        }
        if let Err(p) = catch_unwind(AssertUnwindSafe(|| f(i))) {
            shared.panic.lock().get_or_insert(p);
            // Curtail the rest of the region: other participants stop
            // claiming new logical threads.
            shared.cursor.store(parts, Ordering::Relaxed);
        }
    }
}

fn worker_main(shared: Arc<Shared>) {
    // Eagerly create this worker's obs thread-local slab so global
    // snapshots taken while the worker is parked already include it.
    obs::register_thread();
    shared.ready.fetch_add(1, Ordering::Release);
    IN_PARALLEL.set(true);
    let mut seen_epoch = 0u64;
    loop {
        let (parts, task) = {
            let mut g = shared.state.lock();
            loop {
                if g.shutdown {
                    return;
                }
                if g.epoch != seen_epoch {
                    break;
                }
                shared.work_cv.wait(&mut g);
            }
            seen_epoch = g.epoch;
            (g.parts, g.task.expect("region published without task"))
        };
        // SAFETY: the caller keeps the closure alive until this worker
        // (a barrier participant) arrives below.
        let f = unsafe { &*task.0 };
        execute_parts(&shared, parts, f);
        shared.barrier.wait();
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        {
            let mut g = self.shared.state.lock();
            g.shutdown = true;
            drop(g);
            self.shared.work_cv.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

// ---------------------------------------------------------------------
// Scheduled loops on a pool
// ---------------------------------------------------------------------

impl Pool {
    /// `par_for` against this pool: run `f(tid, start, end)` over a
    /// partition of `0..n` into `threads` logical threads under `sched`.
    /// For `Static`, `tid` is the logical thread index and each logical
    /// thread receives exactly one call with its contiguous range — the
    /// seed runtime's exact contract. For `Dynamic`/`Guided`, `tid` is
    /// the stealing slot (`0..threads`) and `f` is called once per
    /// claimed chunk.
    pub fn par_for_with<F>(&self, threads: usize, n: usize, sched: Schedule, f: F)
    where
        F: Fn(usize, usize, usize) + Sync,
    {
        if n == 0 {
            return;
        }
        let threads = resolve_threads(threads, n);
        let lid = fresh_loop_id();
        if threads == 1 {
            let _chunk = count_chunk(sched, lid, 0, n);
            f(0, 0, n);
            return;
        }
        match sched {
            Schedule::Static => {
                let chunk = n.div_ceil(threads);
                self.run(threads, |t| {
                    let start = t * chunk;
                    let end = ((t + 1) * chunk).min(n);
                    if start < end {
                        let _chunk = count_chunk(sched, lid, start, end);
                        f(t, start, end);
                    }
                });
            }
            Schedule::Dynamic { chunk } => {
                let chunk = chunk.max(1);
                let cursor = AtomicUsize::new(0);
                self.run(threads, |slot| loop {
                    let s = cursor.fetch_add(chunk, Ordering::Relaxed);
                    if s >= n {
                        break;
                    }
                    let _chunk = count_chunk(sched, lid, s, (s + chunk).min(n));
                    f(slot, s, (s + chunk).min(n));
                });
            }
            Schedule::Guided => {
                let cursor = AtomicUsize::new(0);
                self.run(threads, |slot| loop {
                    let cur = cursor.load(Ordering::Relaxed);
                    if cur >= n {
                        break;
                    }
                    let c = ((n - cur) / (2 * threads)).max(1);
                    if cursor
                        .compare_exchange_weak(cur, cur + c, Ordering::Relaxed, Ordering::Relaxed)
                        .is_ok()
                    {
                        let _chunk = count_chunk(sched, lid, cur, (cur + c).min(n));
                        f(slot, cur, (cur + c).min(n));
                    }
                });
            }
        }
    }

    /// `par_reduce` against this pool. Partials combine in logical
    /// thread order, so `Static` reductions are deterministic for a
    /// given `(threads, n)` on any machine.
    pub fn par_reduce_with<A, F, C>(
        &self,
        threads: usize,
        n: usize,
        sched: Schedule,
        init: A,
        f: F,
        combine: C,
    ) -> A
    where
        A: Send + Clone,
        F: Fn(usize, usize, A) -> A + Sync,
        C: Fn(A, A) -> A,
    {
        let threads = resolve_threads(threads, n);
        let lid = fresh_loop_id();
        if threads == 1 {
            if n > 0 {
                let _chunk = count_chunk(sched, lid, 0, n);
                return f(0, n, init);
            }
            return f(0, n, init);
        }
        // `A` is only `Send`, not `Sync`, so logical threads may not
        // touch `init` directly; each slot gets a pre-cloned seed behind
        // a mutex (taken at most once: `run` hands out every slot index
        // exactly once per region).
        let seeds: Vec<Mutex<Option<A>>> = (0..threads)
            .map(|_| Mutex::new(Some(init.clone())))
            .collect();
        let take_seed = |slot: usize| slots_take(&seeds, slot);
        let slots: Vec<Mutex<Option<A>>> = (0..threads).map(|_| Mutex::new(None)).collect();
        match sched {
            Schedule::Static => {
                let chunk = n.div_ceil(threads);
                self.run(threads, |t| {
                    let start = t * chunk;
                    let end = ((t + 1) * chunk).min(n);
                    if start < end {
                        let _chunk = count_chunk(sched, lid, start, end);
                        *slots[t].lock() = Some(f(start, end, take_seed(t)));
                    }
                });
            }
            Schedule::Dynamic { chunk } => {
                let chunk = chunk.max(1);
                let cursor = AtomicUsize::new(0);
                self.run(threads, |slot| {
                    let mut acc: Option<A> = None;
                    loop {
                        let s = cursor.fetch_add(chunk, Ordering::Relaxed);
                        if s >= n {
                            break;
                        }
                        let _chunk = count_chunk(sched, lid, s, (s + chunk).min(n));
                        let seed = acc.take().unwrap_or_else(|| take_seed(slot));
                        acc = Some(f(s, (s + chunk).min(n), seed));
                    }
                    if acc.is_some() {
                        *slots[slot].lock() = acc;
                    }
                });
            }
            Schedule::Guided => {
                let cursor = AtomicUsize::new(0);
                self.run(threads, |slot| {
                    let mut acc: Option<A> = None;
                    loop {
                        let cur = cursor.load(Ordering::Relaxed);
                        if cur >= n {
                            break;
                        }
                        let c = ((n - cur) / (2 * threads)).max(1);
                        if cursor
                            .compare_exchange_weak(
                                cur,
                                cur + c,
                                Ordering::Relaxed,
                                Ordering::Relaxed,
                            )
                            .is_ok()
                        {
                            let _chunk = count_chunk(sched, lid, cur, (cur + c).min(n));
                            let seed = acc.take().unwrap_or_else(|| take_seed(slot));
                            acc = Some(f(cur, (cur + c).min(n), seed));
                        }
                    }
                    if acc.is_some() {
                        *slots[slot].lock() = acc;
                    }
                });
            }
        }
        slots
            .into_iter()
            .filter_map(parking_lot::Mutex::into_inner)
            .fold(init, combine)
    }
}

fn slots_take<A>(seeds: &[Mutex<Option<A>>], slot: usize) -> A {
    seeds[slot].lock().take().expect("reduce seed taken twice")
}

/// Count one executed chunk `[s, e)` against the schedule's chunk/iter
/// counters (the iter counters therefore sum to exactly `n` for every
/// completed loop — an invariant the schedule property tests assert) and
/// return a timeline guard: hold it across the chunk body so the trace
/// records the chunk's duration as a complete event.
/// Loop ids for timeline chunk events: one fresh id per `par_for_with` /
/// `par_reduce_with` call, process-global, so the race detector can group
/// the chunks of one parallel loop even when several loops interleave on
/// the trace (nested inline regions included).
static NEXT_LOOP_ID: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);

fn fresh_loop_id() -> u64 {
    NEXT_LOOP_ID.fetch_add(1, Ordering::Relaxed)
}

/// Guard measuring one scheduled chunk: carries the timeline chunk guard
/// and, when obs is compiled in, feeds the chunk's wall time into the
/// per-schedule `chunk_duration_ns` telemetry histogram on drop. Without
/// the `obs` feature `start` is constant `None` (`obs::enabled()` is
/// `const false`), so both the timing and the drop body fold away.
#[must_use = "hold the guard across the chunk body so its duration is traced"]
struct ChunkTimer {
    start: Option<std::time::Instant>,
    sched: &'static str,
    _timeline: crate::timeline::ChunkGuard,
}

impl Drop for ChunkTimer {
    fn drop(&mut self) {
        if let Some(t0) = self.start {
            let ns = t0.elapsed().as_nanos().min(u64::MAX as u128) as u64;
            crate::telemetry::record(crate::telemetry::HistKind::ChunkDurationNs, self.sched, ns);
        }
    }
}

#[inline]
fn count_chunk(sched: Schedule, loop_id: u64, s: usize, e: usize) -> ChunkTimer {
    let (chunks, iters, name, sched_name) = match sched {
        Schedule::Static => (
            Counter::ChunksStatic,
            Counter::ItersStatic,
            crate::timeline::NAME_STATIC,
            "static",
        ),
        Schedule::Dynamic { .. } => (
            Counter::ChunksDynamic,
            Counter::ItersDynamic,
            crate::timeline::NAME_DYNAMIC,
            "dynamic",
        ),
        Schedule::Guided => (
            Counter::ChunksGuided,
            Counter::ItersGuided,
            crate::timeline::NAME_GUIDED,
            "guided",
        ),
    };
    obs::add(chunks, 1);
    obs::add(iters, (e - s) as u64);
    ChunkTimer {
        // `enabled()` is const, so the timing folds away without `obs`.
        start: if obs::enabled() {
            Some(std::time::Instant::now())
        } else {
            None
        },
        sched: sched_name,
        _timeline: crate::timeline::chunk(name, loop_id, s, e - s),
    }
}

fn resolve_threads(threads: usize, n: usize) -> usize {
    let threads = if threads == 0 {
        auto_threads()
    } else {
        threads
    };
    threads.clamp(1, n.max(1))
}

// ---------------------------------------------------------------------
// Fork/join overhead measurement (feeds the OpenMP model constants)
// ---------------------------------------------------------------------

/// Seconds per empty parallel region (fork + barrier + join) on `pool`
/// with `team` logical threads. This is the measured counterpart of
/// `ookami_mem::scaling::BarrierCost`.
pub fn measure_pool_fork_join(pool: &Pool, team: usize, reps: u32) -> f64 {
    // Warm the pool so worker startup is not billed to the first region.
    pool.run(team, |_| {});
    let start = std::time::Instant::now();
    for _ in 0..reps {
        pool.run(team, |_| {});
    }
    start.elapsed().as_secs_f64() / reps as f64
}

/// Seconds per empty region for the seed's spawn-per-region strategy
/// (`team` OS threads spawned and joined each region) — the baseline the
/// pool replaces. Kept for differential tests and the overhead probe.
pub fn measure_spawn_fork_join(team: usize, reps: u32) -> f64 {
    let start = std::time::Instant::now();
    for _ in 0..reps {
        std::thread::scope(|s| {
            for _ in 0..team {
                s.spawn(|| {});
            }
        });
    }
    start.elapsed().as_secs_f64() / reps as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn run_covers_all_parts_exactly_once() {
        let pool = Pool::new(3);
        let hits: Vec<AtomicUsize> = (0..100).map(|_| AtomicUsize::new(0)).collect();
        pool.run(100, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn pool_is_reusable_across_many_regions() {
        let pool = Pool::new(2);
        let total = AtomicU64::new(0);
        for round in 0..500u64 {
            pool.run(4, |i| {
                total.fetch_add(round + i as u64, Ordering::Relaxed);
            });
        }
        // Σ_round (4·round + 0+1+2+3)
        let want: u64 = (0..500u64).map(|r| 4 * r + 6).sum();
        assert_eq!(total.load(Ordering::Relaxed), want);
    }

    #[test]
    fn nested_regions_do_not_deadlock() {
        let pool = Pool::new(2);
        let count = AtomicUsize::new(0);
        pool.run(4, |_| {
            // Nested region: must run inline rather than re-enter the pool.
            pool.run(4, |_| {
                count.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(count.load(Ordering::Relaxed), 16);
    }

    #[test]
    fn worker_panic_propagates_with_payload() {
        let pool = Pool::new(2);
        let res = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run(8, |i| {
                assert!(i != 5, "part five failed");
            });
        }));
        let payload = res.expect_err("panic must propagate");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or("");
        assert_eq!(msg, "part five failed");
        // The pool must still be usable afterwards.
        let ok = AtomicUsize::new(0);
        pool.run(4, |_| {
            ok.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(ok.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn dynamic_schedule_covers_range_exactly_once_under_contention() {
        let pool = Pool::new(4);
        let n = 100_000;
        for chunk in [1, 7, 64] {
            let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
            pool.par_for_with(8, n, Schedule::Dynamic { chunk }, |_, s, e| {
                for h in &hits[s..e] {
                    h.fetch_add(1, Ordering::Relaxed);
                }
            });
            assert!(
                hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
                "chunk {chunk} missed or duplicated iterations"
            );
        }
    }

    #[test]
    fn guided_schedule_covers_range_exactly_once() {
        let pool = Pool::new(4);
        let n = 50_000;
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        pool.par_for_with(8, n, Schedule::Guided, |_, s, e| {
            for h in &hits[s..e] {
                h.fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn static_reduce_is_deterministic_and_ordered() {
        let pool = Pool::new(3);
        // Concatenation is order-sensitive: partials must combine in
        // logical-thread order.
        let s = pool.par_reduce_with(
            5,
            10,
            Schedule::Static,
            String::new(),
            |a, b, mut acc| {
                for i in a..b {
                    acc.push_str(&i.to_string());
                }
                acc
            },
            |x, y| x + &y,
        );
        assert_eq!(s, "0123456789");
    }

    #[test]
    fn dynamic_reduce_sums_correctly() {
        let pool = Pool::new(4);
        let s = pool.par_reduce_with(
            8,
            10_001,
            Schedule::Dynamic { chunk: 13 },
            0u64,
            |a, b, acc| acc + (a as u64..b as u64).sum::<u64>(),
            |x, y| x + y,
        );
        assert_eq!(s, 10_001 * 10_000 / 2);
    }

    #[test]
    fn zero_worker_pool_runs_inline() {
        let pool = Pool::new(0);
        assert_eq!(pool.workers(), 0);
        let seen: Vec<AtomicUsize> = (0..10).map(|_| AtomicUsize::new(0)).collect();
        pool.run(10, |i| {
            seen[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(seen.iter().all(|s| s.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn sense_barrier_reuses_across_phases() {
        let b = Arc::new(SenseBarrier::new(3));
        let counter = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..2 {
            let b = Arc::clone(&b);
            let c = Arc::clone(&counter);
            handles.push(std::thread::spawn(move || {
                for _ in 0..50 {
                    c.fetch_add(1, Ordering::Relaxed);
                    b.wait();
                    b.wait(); // second phase per round
                }
            }));
        }
        for round in 1..=50 {
            b.wait();
            // After the first barrier of the round every thread has
            // incremented exactly `round` times.
            assert_eq!(counter.load(Ordering::Relaxed), 2 * round);
            b.wait();
        }
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn concurrent_top_level_runs_are_serialized() {
        // Several OS threads drive one pool at once (the Pool::global
        // situation under cargo test's parallel harness). Regions must
        // queue, each seeing exactly its own closure and full coverage.
        let pool = Arc::new(Pool::new(3));
        let handles: Vec<_> = (0..4)
            .map(|caller| {
                let pool = Arc::clone(&pool);
                std::thread::spawn(move || {
                    for _ in 0..200 {
                        let sum = AtomicUsize::new(0);
                        pool.run(8, |i| {
                            sum.fetch_add(caller * 100 + i, Ordering::Relaxed);
                        });
                        // Σ i in 0..8 plus 8 caller tags: proof no other
                        // caller's parts leaked into this region.
                        assert_eq!(sum.load(Ordering::Relaxed), caller * 800 + 28);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    #[ignore = "timing-sensitive; the real >=5x bar is asserted by the forkjoin probe \
                (cargo run -p ookami-bench --bin forkjoin --release)"]
    fn pool_forkjoin_beats_spawn_per_region() {
        // The acceptance bar (≥5× at 8 workers) is asserted by the
        // overhead probe and recorded in EXPERIMENTS.md; here we keep a
        // conservative 2× smoke check. Ignored by default: on a loaded
        // or low-core CI runner wall-clock ratios are noise.
        let pool = Pool::new(7);
        let pooled = measure_pool_fork_join(&pool, 8, 200);
        let spawned = measure_spawn_fork_join(8, 200);
        assert!(
            spawned > 2.0 * pooled,
            "pool {pooled:.2e}s/region vs spawn {spawned:.2e}s/region"
        );
    }
}
