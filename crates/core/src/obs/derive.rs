//! Derived-metrics engine: turn raw counter [`Snapshot`]s into the
//! quantities the paper argues with — model FLOP/s, model bytes/s,
//! arithmetic intensity, SVE lane utilization, FEXPA issue rate, per-port
//! pressure shares — and place each span on the machine's roofline with a
//! top-bottleneck attribution.
//!
//! Everything here is *model-derived*: the counters are emulator event
//! counts (see [`super::Counter`]), not PMU reads, so the derived numbers
//! are exactly reproducible across runs and across execution strategies
//! (interpreter vs trace replay — the counter-identity invariant makes the
//! derived metrics bit-identical too, which `sve`'s tests pin).
//!
//! The roofline follows the classic formulation (Williams et al.), with
//! machine parameters from [`ookami_uarch::Machine`]:
//!
//! ```text
//! peak  = peak_gflops_per_core × threads
//! bw    = bw_per_domain × min(threads × single_core_bw_fraction, domains_used)
//! ridge = peak / bw                       (FLOP/byte)
//! attainable(AI) = min(peak, AI × bw)
//! ```
//!
//! Attribution is a fixed, documented score per candidate bottleneck
//! (memory depth below the ridge, FEXPA share of the FLA pipe, FLA/FLB
//! imbalance, inactive lanes, barrier wait share, indexed-access share);
//! the top scorer wins, `Balanced` if nothing clears 0.25. Deterministic by
//! construction — ties break in declaration order.

use super::{Counter, Json, Snapshot, SpanStat};
use ookami_uarch::Machine;

/// Number of issue ports in the A64FX-style port model (FLA..BR).
pub const N_PORTS: usize = 8;

/// Display names for the port-pressure share vector, in counter order.
pub const PORT_NAMES: [&str; N_PORTS] = ["FLA", "FLB", "PR", "EXA", "EXB", "EAGA", "EAGB", "BR"];

/// The bottleneck classes the attributor can assign, in priority order
/// (ties break toward the earlier variant).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bottleneck {
    /// AI is left of the ridge and the span sits deep in the bandwidth
    /// ceiling — the STREAM/SpMV story (paper §VII, Alappat et al.).
    MemoryBandwidth,
    /// FEXPA dominates the FLA pipe: exp-bound math kernels (paper §IV —
    /// FEXPA issues on FLA only, halving the usable FP issue width).
    FexpaThroughput,
    /// FLA carries far more work than FLB (predicate-heavy or
    /// FEXPA-adjacent code that can't use the second pipe).
    FlaPortImbalance,
    /// Vectors run mostly empty: low active-lane fraction (short loops,
    /// heavy predication — paper §III).
    LaneUtilization,
    /// Threads burn their time at the pool barrier (load imbalance or
    /// too-fine regions — paper §V scaling walls).
    BarrierWait,
    /// Indexed accesses (gather/scatter) dominate the memory traffic.
    ScatterGather,
    /// Nothing clears the attribution threshold.
    Balanced,
}

impl Bottleneck {
    pub fn name(self) -> &'static str {
        match self {
            Bottleneck::MemoryBandwidth => "memory-bandwidth",
            Bottleneck::FexpaThroughput => "fexpa-throughput",
            Bottleneck::FlaPortImbalance => "fla-port-imbalance",
            Bottleneck::LaneUtilization => "lane-utilization",
            Bottleneck::BarrierWait => "barrier-wait",
            Bottleneck::ScatterGather => "scatter-gather",
            Bottleneck::Balanced => "balanced",
        }
    }
}

/// Roofline placement of one measured span.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Roofline {
    /// Compute ceiling for the configured thread count, GFLOP/s.
    pub peak_gflops: f64,
    /// Bandwidth ceiling for the configured thread count, GB/s.
    pub mem_bw_gbs: f64,
    /// Ridge-point arithmetic intensity, FLOP/byte.
    pub ridge_ai: f64,
    /// `min(peak, AI × bw)` at the span's measured AI, GFLOP/s.
    pub attainable_gflops: f64,
    /// Achieved model GFLOP/s as a fraction of attainable (0 when the span
    /// did no model FLOPs).
    pub achieved_frac: f64,
    /// True when the span sits left of the ridge (AI < ridge).
    pub memory_bound: bool,
}

/// All derived metrics for one counter snapshot over a wall-time window.
#[derive(Debug, Clone, PartialEq)]
pub struct Derived {
    /// Model GFLOP/s: `model_flops / seconds / 1e9`.
    pub model_gflops: f64,
    /// Model GB/s: `(bytes_loaded + bytes_stored) / seconds / 1e9`.
    pub model_gbs: f64,
    /// Arithmetic intensity, FLOP/byte (`f64::INFINITY` for compute-only
    /// spans that touched no model bytes).
    pub arithmetic_intensity: f64,
    /// Mean active-lane fraction per SVE instruction (0 when no SVE
    /// instructions retired). Lanes are counted against the execution
    /// vector length, so this is exactly the paper's §III utilization axis.
    pub lane_utilization: f64,
    /// FEXPA instructions per second.
    pub fexpa_per_s: f64,
    /// FEXPA share of FLA-port issues (the §IV one-pipe pressure).
    pub fexpa_share_fla: f64,
    /// Per-port share of total port events, counter order (see
    /// [`PORT_NAMES`]); all zero when no port events were recorded.
    pub port_share: [f64; N_PORTS],
    /// Barrier wait as a fraction of `threads × wall` time.
    pub barrier_share: f64,
    /// Gather+scatter elements × 8 bytes as a fraction of model bytes.
    pub indexed_share: f64,
    /// Roofline placement at this span's AI.
    pub roofline: Roofline,
    /// Winning bottleneck attribution.
    pub bottleneck: Bottleneck,
    /// The winner's score (0 for [`Bottleneck::Balanced`]).
    pub bottleneck_score: f64,
    /// Wall seconds the metrics were normalized over.
    pub wall_seconds: f64,
}

/// Score below which no bottleneck is attributed.
const ATTRIBUTION_THRESHOLD: f64 = 0.25;

/// Roofline ceilings for `threads` cores of `m`. Bandwidth scales with
/// thread count until the occupied domains saturate: one core draws
/// `single_core_bw_fraction` of its domain, and `ceil(threads /
/// cores_per_domain)` domains (clamped to the machine) cap the total.
pub fn roofline_ceilings(m: &Machine, threads: usize) -> (f64, f64) {
    let threads = threads.max(1);
    let peak = m.peak_gflops_per_core() * threads as f64;
    let domains_used = threads
        .div_ceil(m.numa.cores_per_domain.max(1))
        .min(m.numa.domains.max(1));
    let draw = (threads as f64 * m.numa.single_core_bw_fraction).min(domains_used as f64);
    let bw = m.numa.bw_per_domain_gbs * draw;
    (peak, bw)
}

/// Derive all metrics from a counter snapshot over `wall_seconds` of wall
/// time, against machine `m` running `threads` threads.
pub fn derive(snap: &Snapshot, wall_seconds: f64, m: &Machine, threads: usize) -> Derived {
    let secs = if wall_seconds > 0.0 {
        wall_seconds
    } else {
        f64::MIN_POSITIVE
    };
    let threads = threads.max(1);

    let flops = snap.get(Counter::FlopsModel) as f64;
    let bytes = (snap.get(Counter::BytesLoaded) + snap.get(Counter::BytesStored)) as f64;
    let model_gflops = flops / secs / 1e9;
    let model_gbs = bytes / secs / 1e9;
    let arithmetic_intensity = if bytes > 0.0 {
        flops / bytes
    } else if flops > 0.0 {
        f64::INFINITY
    } else {
        0.0
    };

    let sve_instrs = snap.get(Counter::SveInstrs) as f64;
    let lanes = snap.get(Counter::SveLanesActive) as f64;
    let max_lanes = m.vector_width.lanes_f64() as f64;
    let lane_utilization = if sve_instrs > 0.0 {
        (lanes / (sve_instrs * max_lanes)).min(1.0)
    } else {
        0.0
    };

    let fexpa = snap.get(Counter::FexpaIssues) as f64;
    let fla = snap.get(Counter::PortFla) as f64;
    let flb = snap.get(Counter::PortFlb) as f64;
    let fexpa_per_s = fexpa / secs;
    let fexpa_share_fla = if fla > 0.0 {
        (fexpa / fla).min(1.0)
    } else {
        0.0
    };

    let mut port_share = [0.0; N_PORTS];
    let mut port_total = 0.0;
    for (i, share) in port_share.iter_mut().enumerate() {
        let v = snap.get(Counter::port(i as u8)) as f64;
        *share = v;
        port_total += v;
    }
    if port_total > 0.0 {
        for share in &mut port_share {
            *share /= port_total;
        }
    }

    let barrier_ns = snap.get(Counter::BarrierWaitNs) as f64;
    let barrier_share = (barrier_ns / 1e9 / (secs * threads as f64)).min(1.0);

    let indexed_bytes =
        (snap.get(Counter::GatherElems) + snap.get(Counter::ScatterElems)) as f64 * 8.0;
    let indexed_share = if bytes > 0.0 {
        (indexed_bytes / bytes).min(1.0)
    } else {
        0.0
    };

    let (peak, bw) = roofline_ceilings(m, threads);
    let ridge = if bw > 0.0 { peak / bw } else { f64::INFINITY };
    let memory_bound = arithmetic_intensity < ridge;
    let attainable = if arithmetic_intensity.is_infinite() {
        peak
    } else {
        (arithmetic_intensity * bw).min(peak)
    };
    let achieved_frac = if attainable > 0.0 {
        (model_gflops / attainable).min(1.0)
    } else {
        0.0
    };
    let roofline = Roofline {
        peak_gflops: peak,
        mem_bw_gbs: bw,
        ridge_ai: ridge,
        attainable_gflops: attainable,
        achieved_frac,
        memory_bound,
    };

    // --- attribution: fixed scores, winner takes the label ---
    let ai_depth = if memory_bound && ridge.is_finite() && ridge > 0.0 && bytes > 0.0 {
        1.0 - (arithmetic_intensity / ridge).min(1.0)
    } else {
        0.0
    };
    let fla_imbalance = if fla + flb > 0.0 && fla > flb {
        (fla - flb) / (fla + flb)
    } else {
        0.0
    };
    let lane_waste = if sve_instrs > 0.0 {
        1.0 - lane_utilization
    } else {
        0.0
    };

    let scores = [
        (Bottleneck::MemoryBandwidth, ai_depth),
        (Bottleneck::FexpaThroughput, fexpa_share_fla),
        (Bottleneck::FlaPortImbalance, fla_imbalance),
        (Bottleneck::LaneUtilization, lane_waste),
        (Bottleneck::BarrierWait, barrier_share),
        (Bottleneck::ScatterGather, indexed_share),
    ];
    let (mut bottleneck, mut bottleneck_score) = (Bottleneck::Balanced, 0.0);
    for (b, s) in scores {
        if s >= ATTRIBUTION_THRESHOLD && s > bottleneck_score {
            bottleneck = b;
            bottleneck_score = s;
        }
    }

    Derived {
        model_gflops,
        model_gbs,
        arithmetic_intensity,
        lane_utilization,
        fexpa_per_s,
        fexpa_share_fla,
        port_share,
        barrier_share,
        indexed_share,
        roofline,
        bottleneck,
        bottleneck_score,
        wall_seconds: secs,
    }
}

/// Derive metrics for one recorded span (wall time = its `total_ns`).
pub fn derive_span(span: &SpanStat, m: &Machine, threads: usize) -> Derived {
    derive(&span.counters, span.total_ns as f64 / 1e9, m, threads)
}

/// Parse a validated `ookami-bench-v1` document and derive one row per
/// span carrying counters, plus a `"(total)"` row from the root counters
/// normalized over the summed top-level span time. Returns
/// `(path, Derived)` rows in document order.
pub fn derive_bench_doc(
    doc: &Json,
    m: &Machine,
    threads: usize,
) -> Result<Vec<(String, Derived)>, String> {
    let spans = match doc.get("spans") {
        Some(Json::Arr(a)) => a.as_slice(),
        _ => &[],
    };
    let mut rows = Vec::new();
    let mut top_level_ns = 0u64;
    for s in spans {
        let path = match s.get("path") {
            Some(Json::Str(p)) => p.clone(),
            _ => return Err("span missing string `path`".to_string()),
        };
        let total_ns = match s.get("total_ns") {
            Some(Json::Num(n)) if *n >= 0.0 => *n as u64,
            _ => return Err(format!("span `{path}` missing numeric `total_ns`")),
        };
        if !path.contains('/') {
            top_level_ns += total_ns;
        }
        let counters = match s.get("counters") {
            Some(c) => super::snapshot_from_json(c),
            None => Snapshot::zero(),
        };
        if counters.is_zero() {
            continue; // spans without counters have nothing to derive
        }
        rows.push((path, derive(&counters, total_ns as f64 / 1e9, m, threads)));
    }
    if let Some(root) = doc.get("counters") {
        let snap = super::snapshot_from_json(root);
        if !snap.is_zero() && top_level_ns > 0 {
            rows.push((
                "(total)".to_string(),
                derive(&snap, top_level_ns as f64 / 1e9, m, threads),
            ));
        }
    }
    Ok(rows)
}

fn fmt_ai(ai: f64) -> String {
    if ai.is_infinite() {
        "inf".to_string()
    } else {
        format!("{ai:.3}")
    }
}

/// Render derived rows as the fixed-width roofline/bottleneck table
/// `report --derive` prints.
pub fn render_table(rows: &[(String, Derived)], m: &Machine, threads: usize) -> String {
    use std::fmt::Write as _;
    let (peak, bw) = roofline_ceilings(m, threads);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "roofline: machine {} · {} thread(s) · peak {:.1} GF/s · bw {:.1} GB/s · ridge {:.3} F/B",
        m.name,
        threads,
        peak,
        bw,
        if bw > 0.0 { peak / bw } else { f64::INFINITY }
    );
    let _ = writeln!(
        out,
        "{:<28} {:>10} {:>10} {:>8} {:>7} {:>12} {:>6} {:>8}  bottleneck",
        "span", "GF/s", "GB/s", "AI", "lanes", "fexpa/s", "bound", "of-roof"
    );
    for (path, d) in rows {
        let _ = writeln!(
            out,
            "{:<28} {:>10.4} {:>10.4} {:>8} {:>6.1}% {:>12.3e} {:>6} {:>7.1}%  {}",
            path,
            d.model_gflops,
            d.model_gbs,
            fmt_ai(d.arithmetic_intensity),
            d.lane_utilization * 100.0,
            d.fexpa_per_s,
            if d.roofline.memory_bound {
                "mem"
            } else {
                "comp"
            },
            d.roofline.achieved_frac * 100.0,
            d.bottleneck.name(),
        );
    }
    out
}

// ---------------------------------------------------------------------------
// ECM (execution-cache-memory) model — Alappat/Hager/Wellein, arXiv
// 2103.03013 / 2009.13903, the two papers that extend this machine model
// to irregular kernels. Where the roofline asks "which single ceiling am
// I under", ECM *composes* the time one cache line of results costs from
// an in-core term and per-link transfer terms:
//
// ```text
// T_L1L2 = lines_L1↔L2 × line_bytes / l1_l2_bytes_per_cycle
// T_L2Mem = lines_L2↔Mem × line_bytes / (single-core mem B/cy)
// T_data = T_L1L2 + T_L2Mem          (A64FX: no overlap between links)
// T_CL   = max(T_core, T_data)       (in-core overlaps with transfers)
// ```
//
// The no-overlap-between-links assumption is the published A64FX finding
// (the single-ported L1 serializes the traffic); `T_core` still overlaps
// because the core computes on data already in registers while the next
// line streams. Multicore scaling inside one CMG is linear until the
// domain bandwidth saturates at `n_sat` cores.
//
// Everything is per **cache line of result elements** (`line_bytes / 8`
// f64 elements), the papers' unit of account. `T_core` comes from the
// deterministic port analyzer (`ookami_uarch::analyze_cached`), the line
// volumes from the cache simulator (`ookami_mem::CacheSim` +
// `AccessStats::{l1_l2_lines, l2_mem_lines}`), so the whole model is
// reproducible without wall-clock input — it coexists with the roofline
// attribution rather than replacing it.
// ---------------------------------------------------------------------------

/// ECM model inputs, normalized per cache line of result data.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EcmInput {
    /// In-core execution cycles per result cache line (port model).
    pub t_core: f64,
    /// Cache lines crossing L1↔L2 per result cache line.
    pub l1_l2_lines: f64,
    /// Cache lines crossing L2↔memory per result cache line.
    pub l2_mem_lines: f64,
}

/// The composed ECM prediction for one kernel on one machine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EcmModel {
    pub t_core: f64,
    pub t_l1l2: f64,
    pub t_l2mem: f64,
    /// `t_l1l2 + t_l2mem` — serialized transfer time.
    pub t_data: f64,
    /// `max(t_core, t_data)` — predicted cycles per result cache line.
    pub t_cl: f64,
    /// True when the data terms dominate: the kernel cannot go faster
    /// without moving fewer bytes.
    pub bandwidth_bound: bool,
    /// Cores of one NUMA domain needed to saturate its memory bandwidth
    /// (`≥ domain size` means the kernel never saturates it).
    pub n_sat: usize,
    /// Predicted single-core result cache lines per second.
    pub cl_per_s_1c: f64,
    /// Domain-bandwidth ceiling on cache lines per second
    /// (`f64::INFINITY` for in-cache kernels with no memory traffic).
    pub cl_per_s_bw_cap: f64,
}

impl EcmModel {
    /// The attribution string BENCH documents carry (coexists with the
    /// roofline's `Bottleneck` vocabulary; deliberately distinct names).
    pub fn bound_name(&self) -> &'static str {
        if self.bandwidth_bound {
            "bandwidth_bound"
        } else {
            "core_bound"
        }
    }

    /// Predicted result cache lines per second at `cores` of one domain:
    /// linear in cores until the domain bandwidth cap.
    pub fn cl_per_s(&self, cores: usize) -> f64 {
        (cores as f64 * self.cl_per_s_1c).min(self.cl_per_s_bw_cap)
    }
}

/// Compose the ECM model for one kernel (see the module commentary on
/// units). Deterministic in all inputs.
pub fn ecm(m: &Machine, inp: &EcmInput) -> EcmModel {
    let lb = m.mem.line_bytes as f64;
    let ghz = m.base_ghz;
    let t_l1l2 = inp.l1_l2_lines * lb / m.mem.l1_l2_bytes_per_cycle;
    // Single-core draw on the domain's memory: GB/s ÷ Gcy/s = bytes/cy.
    let mem_bcy_1c = m.numa.bw_per_domain_gbs * m.numa.single_core_bw_fraction / ghz;
    let t_l2mem = inp.l2_mem_lines * lb / mem_bcy_1c;
    let t_data = t_l1l2 + t_l2mem;
    let t_cl = inp.t_core.max(t_data);
    // Full-domain memory time per result line decides saturation: core
    // count where `n × (1/T_CL)` meets the bandwidth roof.
    let mem_bcy_domain = m.numa.bw_per_domain_gbs / ghz;
    let t_mem_full = inp.l2_mem_lines * lb / mem_bcy_domain;
    let n_sat = if t_mem_full > 0.0 {
        (t_cl / t_mem_full).ceil() as usize
    } else {
        m.numa.cores_per_domain
    };
    let cl_per_s_1c = ghz * 1e9 / t_cl;
    let cl_per_s_bw_cap = if inp.l2_mem_lines > 0.0 {
        m.numa.bw_per_domain_gbs * 1e9 / (inp.l2_mem_lines * lb)
    } else {
        f64::INFINITY
    };
    EcmModel {
        t_core: inp.t_core,
        t_l1l2,
        t_l2mem,
        t_data,
        t_cl,
        bandwidth_bound: t_data >= inp.t_core,
        n_sat,
        cl_per_s_1c,
        cl_per_s_bw_cap,
    }
}

/// Render ECM rows as the fixed-width per-family table the `spmv` probe
/// prints and the golden tests snapshot. All columns are model-derived,
/// so the rendering is bit-stable across runs.
pub fn render_ecm_table(rows: &[(String, EcmModel)], m: &Machine) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "ecm: machine {} · {:.0} B lines · L1↔L2 {:.0} B/cy · mem {:.1} GB/s/domain (1c ×{:.2})",
        m.name,
        m.mem.line_bytes as f64,
        m.mem.l1_l2_bytes_per_cycle,
        m.numa.bw_per_domain_gbs,
        m.numa.single_core_bw_fraction,
    );
    let _ = writeln!(
        out,
        "{:<22} {:>8} {:>8} {:>8} {:>8} {:>8} {:>6} {:>12}  bound",
        "family", "T_core", "T_L1L2", "T_L2Mem", "T_data", "T_CL", "n_sat", "CL/s(1c)"
    );
    for (name, e) in rows {
        let _ = writeln!(
            out,
            "{:<22} {:>8.2} {:>8.2} {:>8.2} {:>8.2} {:>8.2} {:>6} {:>12.4e}  {}",
            name,
            e.t_core,
            e.t_l1l2,
            e.t_l2mem,
            e.t_data,
            e.t_cl,
            e.n_sat,
            e.cl_per_s_1c,
            e.bound_name(),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ookami_uarch::machines;

    fn snap_with(pairs: &[(Counter, u64)]) -> Snapshot {
        let mut s = Snapshot::zero();
        for &(c, v) in pairs {
            s.set(c, v);
        }
        s
    }

    #[test]
    fn roofline_ceilings_match_paper_arithmetic() {
        let m = machines::a64fx();
        let (peak1, bw1) = roofline_ceilings(m, 1);
        assert!((peak1 - 57.6).abs() < 1e-9, "A64FX §II peak: {peak1}");
        // One core draws single_core_bw_fraction of its CMG.
        let expect_bw1 = m.numa.bw_per_domain_gbs * m.numa.single_core_bw_fraction;
        assert!((bw1 - expect_bw1).abs() < 1e-9);
        // A full CMG saturates its HBM stack.
        let (_, bw12) = roofline_ceilings(m, m.numa.cores_per_domain);
        assert!(bw12 <= m.numa.bw_per_domain_gbs + 1e-9);
        // Peak scales linearly with threads.
        let (peak4, _) = roofline_ceilings(m, 4);
        assert!((peak4 - 4.0 * peak1).abs() < 1e-9);
    }

    #[test]
    fn stream_like_span_is_memory_bound() {
        let m = machines::a64fx();
        // Triad: 2 flops per 24 bytes → AI ≈ 0.083, far left of any ridge.
        let s = snap_with(&[
            (Counter::FlopsModel, 2_000_000),
            (Counter::BytesLoaded, 16_000_000),
            (Counter::BytesStored, 8_000_000),
            (Counter::SveInstrs, 1_000),
            (Counter::SveLanesActive, 8_000),
        ]);
        let d = derive(&s, 0.01, m, 1);
        assert!(d.roofline.memory_bound);
        assert_eq!(d.bottleneck, Bottleneck::MemoryBandwidth);
        assert!((d.arithmetic_intensity - 2.0 / 24.0).abs() < 1e-12);
        assert!((d.lane_utilization - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fexpa_heavy_span_attributes_to_fexpa() {
        let m = machines::a64fx();
        // §IV exp: every FLA issue is FEXPA-adjacent, high AI.
        let s = snap_with(&[
            (Counter::FlopsModel, 80_000_000),
            (Counter::BytesLoaded, 800_000),
            (Counter::PortFla, 1_000_000),
            (Counter::PortFlb, 900_000),
            (Counter::FexpaIssues, 600_000),
            (Counter::SveInstrs, 2_000_000),
            (Counter::SveLanesActive, 16_000_000),
        ]);
        let d = derive(&s, 0.01, m, 1);
        assert!(!d.roofline.memory_bound, "AI = {}", d.arithmetic_intensity);
        assert_eq!(d.bottleneck, Bottleneck::FexpaThroughput);
        assert!((d.fexpa_share_fla - 0.6).abs() < 1e-12);
    }

    #[test]
    fn barrier_heavy_span_attributes_to_barrier() {
        let m = machines::a64fx();
        // 4 threads, 10 ms wall, 30 ms cumulative barrier wait = 75%.
        let s = snap_with(&[
            (Counter::FlopsModel, 8_000_000),
            (Counter::BytesLoaded, 8_000),
            (Counter::BarrierWaitNs, 30_000_000),
        ]);
        let d = derive(&s, 0.01, m, 4);
        assert_eq!(d.bottleneck, Bottleneck::BarrierWait);
        assert!((d.barrier_share - 0.75).abs() < 1e-12);
    }

    #[test]
    fn empty_snapshot_is_balanced() {
        let m = machines::a64fx();
        let d = derive(&Snapshot::zero(), 1.0, m, 1);
        assert_eq!(d.bottleneck, Bottleneck::Balanced);
        assert_eq!(d.model_gflops, 0.0);
        assert_eq!(d.arithmetic_intensity, 0.0);
        assert_eq!(d.lane_utilization, 0.0);
    }

    #[test]
    fn derive_is_deterministic_bitwise() {
        let m = machines::a64fx();
        let s = snap_with(&[
            (Counter::FlopsModel, 123_456_789),
            (Counter::BytesLoaded, 98_765_432),
            (Counter::BytesStored, 12_345),
            (Counter::SveInstrs, 55_555),
            (Counter::SveLanesActive, 333_333),
            (Counter::PortFla, 44_444),
            (Counter::PortFlb, 22_222),
            (Counter::FexpaIssues, 11_111),
        ]);
        let a = derive(&s, 0.0375, m, 4);
        let b = derive(&s, 0.0375, m, 4);
        assert_eq!(a.model_gflops.to_bits(), b.model_gflops.to_bits());
        assert_eq!(a.model_gbs.to_bits(), b.model_gbs.to_bits());
        assert_eq!(
            a.arithmetic_intensity.to_bits(),
            b.arithmetic_intensity.to_bits()
        );
        assert_eq!(a.lane_utilization.to_bits(), b.lane_utilization.to_bits());
        assert_eq!(a, b);
    }

    #[test]
    fn bench_doc_rows_cover_spans_and_total() {
        let m = machines::a64fx();
        let doc = Json::parse(
            r#"{
              "schema": "ookami-bench-v1",
              "counters": {"model_flops": 1000, "bytes_loaded": 100},
              "spans": [
                {"path": "loops", "count": 1, "total_ns": 1000000,
                 "counters": {"model_flops": 600, "bytes_loaded": 60}},
                {"path": "loops/inner", "count": 2, "total_ns": 400000,
                 "counters": {"model_flops": 400, "bytes_loaded": 40}},
                {"path": "bare", "count": 1, "total_ns": 250000}
              ]
            }"#,
        )
        .unwrap();
        let rows = derive_bench_doc(&doc, m, 1).unwrap();
        let paths: Vec<&str> = rows.iter().map(|(p, _)| p.as_str()).collect();
        assert_eq!(paths, ["loops", "loops/inner", "(total)"]);
        // (total) normalizes over top-level span time only (1.25 ms).
        let total = &rows[2].1;
        assert!((total.wall_seconds - 0.00125).abs() < 1e-12);
        let table = render_table(&rows, m, 1);
        assert!(table.contains("loops/inner"));
        assert!(table.contains("bottleneck"));
    }

    #[test]
    fn ecm_streaming_kernel_is_bandwidth_bound() {
        let m = machines::a64fx();
        // STREAM-triad-like volumes: ~3 lines in/out per result line,
        // trivial in-core work.
        let inp = EcmInput {
            t_core: 8.0,
            l1_l2_lines: 3.0,
            l2_mem_lines: 3.0,
        };
        let e = ecm(m, &inp);
        assert!(e.bandwidth_bound);
        assert_eq!(e.bound_name(), "bandwidth_bound");
        // T_L1L2 = 3·256/64 = 12 cycles exactly.
        assert!((e.t_l1l2 - 12.0).abs() < 1e-12);
        // Serialized transfers: T_data = T_L1L2 + T_L2Mem, T_CL = T_data.
        assert!((e.t_data - (e.t_l1l2 + e.t_l2mem)).abs() < 1e-12);
        assert_eq!(e.t_cl.to_bits(), e.t_data.to_bits());
        // A single A64FX core draws 20% of its CMG: saturation needs a
        // handful of cores but fewer than the full CMG.
        assert!(e.n_sat > 1 && e.n_sat <= m.numa.cores_per_domain);
    }

    #[test]
    fn ecm_compute_kernel_is_core_bound_and_scales() {
        let m = machines::a64fx();
        let inp = EcmInput {
            t_core: 400.0,
            l1_l2_lines: 1.0,
            l2_mem_lines: 0.25,
        };
        let e = ecm(m, &inp);
        assert!(!e.bandwidth_bound);
        assert_eq!(e.bound_name(), "core_bound");
        assert_eq!(e.t_cl.to_bits(), 400.0f64.to_bits());
        // Linear scaling region: 4 cores = 4× one core.
        assert!((e.cl_per_s(4) - 4.0 * e.cl_per_s_1c).abs() < 1e-3);
        // The cap binds eventually.
        assert!(e.cl_per_s(10_000) <= e.cl_per_s_bw_cap);
    }

    #[test]
    fn ecm_in_cache_kernel_never_saturates_memory() {
        let m = machines::a64fx();
        let inp = EcmInput {
            t_core: 16.0,
            l1_l2_lines: 2.0,
            l2_mem_lines: 0.0,
        };
        let e = ecm(m, &inp);
        assert_eq!(e.t_l2mem, 0.0);
        assert_eq!(e.n_sat, m.numa.cores_per_domain);
        assert!(e.cl_per_s_bw_cap.is_infinite());
    }

    #[test]
    fn ecm_table_renders_every_family_row() {
        let m = machines::a64fx();
        let rows = vec![
            (
                "spmv_crs".to_string(),
                ecm(
                    m,
                    &EcmInput {
                        t_core: 30.0,
                        l1_l2_lines: 6.0,
                        l2_mem_lines: 6.0,
                    },
                ),
            ),
            (
                "stream_copy".to_string(),
                ecm(
                    m,
                    &EcmInput {
                        t_core: 4.0,
                        l1_l2_lines: 2.0,
                        l2_mem_lines: 2.0,
                    },
                ),
            ),
        ];
        let t = render_ecm_table(&rows, m);
        assert!(t.contains("spmv_crs"));
        assert!(t.contains("stream_copy"));
        assert!(t.contains("bandwidth_bound"));
        assert!(t.contains("T_L1L2"));
        // Deterministic rendering.
        assert_eq!(t, render_ecm_table(&rows, m));
    }
}
