//! Hardware-counter-style observability for the whole stack.
//!
//! The source paper is a *measurement* study: every figure is derived from
//! counted events and timers on real silicon. This module gives the
//! reproduction the same vocabulary — a fixed taxonomy of event counters
//! ([`Counter`]) incremented by the SVE interpreter, the trace replayer and
//! the worker pool, plus a nested span-timing API ([`region`]) — so paper
//! claims become checkable counter equalities instead of derived ratios.
//!
//! Design rules:
//!
//! * **Zero cost when disabled.** Without the `obs` cargo feature every
//!   increment compiles to an empty inline function and [`Region`] is a
//!   zero-sized guard; call sites stay unconditional. [`enabled`] is a
//!   `const fn`, so `if obs::enabled()` branches fold away.
//! * **Lock-free counting.** Each OS thread owns an atomic counter block
//!   ([`add`] is one relaxed `fetch_add` on thread-local state); blocks are
//!   registered once in a global list that [`snapshot`] sums. Blocks of
//!   exited threads stay registered so totals never go backwards.
//! * **Counter identity.** The SVE interpreter and the trace replayer must
//!   produce *identical* instruction/lane/port totals for the same kernel
//!   over the same range — a correctness invariant tested in
//!   `crates/sve/tests/trace_replay.rs`. The taxonomy here is therefore
//!   execution-strategy-neutral (per-port pressure, active lanes, element
//!   counts), never "ops dispatched".
//! * **One schema.** Every probe binary renders its results through
//!   [`BenchReport`] into the shared `ookami-bench-v1` JSON shape, which
//!   [`validate_bench_json`] checks with a dependency-free parser (the
//!   vendored serde is a no-op shim). [`prometheus`] renders the same
//!   registry as Prometheus text exposition for eyeballing.

pub mod derive;

use std::collections::BTreeMap;
use std::fmt::Write as _;

// ---------------------------------------------------------------------
// Counter taxonomy
// ---------------------------------------------------------------------

/// One event counter. The first eight entries are instruction pressure per
/// A64FX issue port (index-aligned with `ookami_uarch::machines::a64fx_ports`
/// via [`Counter::port`]); an instruction that may issue to either of two
/// ports (e.g. FLA/FLB for FMA) counts on **both** — "candidate-port
/// pressure", which is deterministic and identical between interpreter and
/// replayer, unlike a simulated port assignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Counter {
    /// Pressure on FP pipe A (also FEXPA, estimates, predicated-result ops).
    PortFla,
    /// Pressure on FP pipe B.
    PortFlb,
    /// Pressure on the predicate unit.
    PortPr,
    /// Pressure on integer pipe A.
    PortExa,
    /// Pressure on integer pipe B.
    PortExb,
    /// Pressure on address-generation/load-store pipe A.
    PortEaga,
    /// Pressure on address-generation/load-store pipe B.
    PortEagb,
    /// Pressure on the branch port.
    PortBr,
    /// SVE instructions retired (interpreter ops / replayed block-ops).
    SveInstrs,
    /// Active (predicated-true) lanes processed by retired instructions.
    SveLanesActive,
    /// Bytes loaded by emulated loads/gathers and replay input binds.
    BytesLoaded,
    /// Bytes stored by emulated stores/scatters.
    BytesStored,
    /// Elements moved by gather loads (active lanes).
    GatherElems,
    /// Elements moved by scatter stores (active lanes).
    ScatterElems,
    /// FEXPA instructions issued.
    FexpaIssues,
    /// Model FLOPs retired: active lanes × `OpClass::flops_per_lane` summed
    /// over retired instructions. An *instruction-derived* FLOP count (2 per
    /// FMA lane), identical between interpreter and replayer, and the
    /// numerator of every roofline placement in [`derive`].
    FlopsModel,
    /// Parallel regions forked across the worker pool.
    RegionsForked,
    /// Parallel regions executed inline (nested / single part / no workers).
    RegionsInline,
    /// Logical threads (parts) summed over all regions.
    RegionParts,
    /// Nanoseconds spent waiting at the pool's completion barrier.
    BarrierWaitNs,
    /// Chunks executed under a `Static` schedule.
    ChunksStatic,
    /// Chunks stolen under a `Dynamic` schedule.
    ChunksDynamic,
    /// Chunks claimed under a `Guided` schedule.
    ChunksGuided,
    /// Iterations executed under a `Static` schedule.
    ItersStatic,
    /// Iterations executed under a `Dynamic` schedule.
    ItersDynamic,
    /// Iterations executed under a `Guided` schedule.
    ItersGuided,
    /// Timeline ring events overwritten by drop-oldest in the current
    /// recording session. Not a thread-block counter: [`snapshot`] injects
    /// it from [`crate::timeline::stats`] so Prometheus exposition and
    /// BENCH reports carry truncation first-class. [`thread_snapshot`]
    /// leaves it 0 (it is a session-global quantity, and the executor
    /// counter-identity gates compare thread snapshots).
    TimelineDroppedEvents,
}

/// Every counter, in export order.
pub const COUNTERS: [Counter; Counter::COUNT] = [
    Counter::PortFla,
    Counter::PortFlb,
    Counter::PortPr,
    Counter::PortExa,
    Counter::PortExb,
    Counter::PortEaga,
    Counter::PortEagb,
    Counter::PortBr,
    Counter::SveInstrs,
    Counter::SveLanesActive,
    Counter::BytesLoaded,
    Counter::BytesStored,
    Counter::GatherElems,
    Counter::ScatterElems,
    Counter::FexpaIssues,
    Counter::FlopsModel,
    Counter::RegionsForked,
    Counter::RegionsInline,
    Counter::RegionParts,
    Counter::BarrierWaitNs,
    Counter::ChunksStatic,
    Counter::ChunksDynamic,
    Counter::ChunksGuided,
    Counter::ItersStatic,
    Counter::ItersDynamic,
    Counter::ItersGuided,
    Counter::TimelineDroppedEvents,
];

impl Counter {
    pub const COUNT: usize = 27;

    /// Stable snake_case export name (JSON keys, Prometheus labels).
    pub fn name(self) -> &'static str {
        match self {
            Counter::PortFla => "port_fla",
            Counter::PortFlb => "port_flb",
            Counter::PortPr => "port_pr",
            Counter::PortExa => "port_exa",
            Counter::PortExb => "port_exb",
            Counter::PortEaga => "port_eaga",
            Counter::PortEagb => "port_eagb",
            Counter::PortBr => "port_br",
            Counter::SveInstrs => "sve_instrs",
            Counter::SveLanesActive => "sve_lanes_active",
            Counter::BytesLoaded => "bytes_loaded",
            Counter::BytesStored => "bytes_stored",
            Counter::GatherElems => "gather_elems",
            Counter::ScatterElems => "scatter_elems",
            Counter::FexpaIssues => "fexpa_issues",
            Counter::FlopsModel => "model_flops",
            Counter::RegionsForked => "regions_forked",
            Counter::RegionsInline => "regions_inline",
            Counter::RegionParts => "region_parts",
            Counter::BarrierWaitNs => "barrier_wait_ns",
            Counter::ChunksStatic => "chunks_static",
            Counter::ChunksDynamic => "chunks_dynamic",
            Counter::ChunksGuided => "chunks_guided",
            Counter::ItersStatic => "iters_static",
            Counter::ItersDynamic => "iters_dynamic",
            Counter::ItersGuided => "iters_guided",
            Counter::TimelineDroppedEvents => "timeline_dropped_events",
        }
    }

    /// The pressure counter for A64FX issue-port index `p` (the
    /// `a64fx_ports` numbering: FLA=0 … BR=7).
    pub fn port(p: u8) -> Counter {
        COUNTERS[p as usize]
    }

    /// Inverse of [`Counter::name`] — how `report --derive` and `benchdiff`
    /// rebuild [`Snapshot`]s from a `BENCH_*.json` counters object.
    pub fn from_name(name: &str) -> Option<Counter> {
        COUNTERS.iter().copied().find(|c| c.name() == name)
    }

    fn idx(self) -> usize {
        COUNTERS
            .iter()
            .position(|&c| c as usize == self as usize)
            .expect("counter present in COUNTERS")
    }
}

/// A point-in-time sum of counters (global or per-thread).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    vals: [u64; Counter::COUNT],
}

impl Snapshot {
    pub fn zero() -> Snapshot {
        Snapshot {
            vals: [0; Counter::COUNT],
        }
    }

    pub fn get(&self, c: Counter) -> u64 {
        self.vals[c.idx()]
    }

    /// Set one counter (used when rebuilding a snapshot from JSON).
    pub fn set(&mut self, c: Counter, v: u64) {
        self.vals[c.idx()] = v;
    }

    /// Counter-wise saturating accumulate (per-span counter aggregation).
    pub fn accumulate(&mut self, other: &Snapshot) {
        for (a, b) in self.vals.iter_mut().zip(other.vals.iter()) {
            *a = a.saturating_add(*b);
        }
    }

    /// True if every counter is zero.
    pub fn is_zero(&self) -> bool {
        self.vals.iter().all(|&v| v == 0)
    }

    /// Counter-wise saturating difference `self - earlier` (deltas for a
    /// measured phase bracketed by two snapshots).
    pub fn since(&self, earlier: &Snapshot) -> Snapshot {
        let mut vals = [0u64; Counter::COUNT];
        for (i, v) in vals.iter_mut().enumerate() {
            *v = self.vals[i].saturating_sub(earlier.vals[i]);
        }
        Snapshot { vals }
    }

    /// `(name, value)` pairs for the non-zero counters, in export order.
    pub fn nonzero(&self) -> Vec<(&'static str, u64)> {
        COUNTERS
            .iter()
            .filter(|c| self.get(**c) != 0)
            .map(|&c| (c.name(), self.get(c)))
            .collect()
    }
}

/// Aggregated timing (and counter deltas) for one span path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanStat {
    /// Slash-joined nesting path, e.g. `"ookamistat/npb_cg/cg_iter"`.
    pub path: String,
    /// Number of times the span closed.
    pub count: u64,
    /// Total wall time across all closings, in nanoseconds.
    pub total_ns: u64,
    /// Global counter delta summed over all closings. *Inclusive*: a parent
    /// span's delta contains its children's, and concurrent activity on
    /// other threads (pool workers executing this span's region, but also
    /// any unrelated open span) is attributed to every span open at the
    /// time. The feed for [`derive`]'s per-span roofline placement.
    pub counters: Snapshot,
}

// ---------------------------------------------------------------------
// Enabled implementation
// ---------------------------------------------------------------------

#[cfg(feature = "obs")]
mod imp {
    use super::{Counter, Snapshot, SpanStat};
    use parking_lot::Mutex;
    use std::cell::RefCell;
    use std::collections::BTreeMap;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;
    use std::time::Instant;

    struct ThreadCounters {
        vals: [AtomicU64; Counter::COUNT],
    }

    impl ThreadCounters {
        fn new() -> ThreadCounters {
            ThreadCounters {
                vals: std::array::from_fn(|_| AtomicU64::new(0)),
            }
        }
    }

    /// All thread blocks ever created; blocks outlive their threads so a
    /// late [`super::snapshot`] still sees a finished worker's events.
    static REGISTRY: Mutex<Vec<Arc<ThreadCounters>>> = Mutex::new(Vec::new());

    /// Per-path aggregates: (close count, total ns, counter delta sum).
    type SpanEntry = (u64, u64, super::Snapshot);
    static SPANS: Mutex<BTreeMap<String, SpanEntry>> = Mutex::new(BTreeMap::new());

    thread_local! {
        static LOCAL: Arc<ThreadCounters> = {
            let block = Arc::new(ThreadCounters::new());
            REGISTRY.lock().push(Arc::clone(&block));
            block
        };
        /// This thread's open span path ("a/b/c"); owned by Region guards.
        static SPAN_PATH: RefCell<String> = const { RefCell::new(String::new()) };
    }

    pub const fn enabled() -> bool {
        true
    }

    /// Force this thread's counter block into the registry *now*. Pool
    /// workers call this at spawn so a snapshot/reset taken before their
    /// first counted event still covers them deterministically.
    pub fn register_thread() {
        LOCAL.with(|_| {});
    }

    #[inline]
    pub fn add(c: Counter, n: u64) {
        if n != 0 {
            LOCAL.with(|b| b.vals[c.idx()].fetch_add(n, Ordering::Relaxed));
        }
    }

    pub fn snapshot() -> Snapshot {
        let mut s = Snapshot::zero();
        {
            let registry = REGISTRY.lock();
            for block in registry.iter() {
                for (i, v) in block.vals.iter().enumerate() {
                    s.vals[i] += v.load(Ordering::Relaxed);
                }
            }
        }
        // Session-global injected counter (satellite of the telemetry PR):
        // drop-oldest truncation is surfaced like any other counter.
        s.set(
            Counter::TimelineDroppedEvents,
            crate::timeline::stats().events_dropped,
        );
        s
    }

    pub fn thread_snapshot() -> Snapshot {
        let mut s = Snapshot::zero();
        LOCAL.with(|b| {
            for (i, v) in b.vals.iter().enumerate() {
                s.vals[i] = v.load(Ordering::Relaxed);
            }
        });
        s
    }

    pub fn reset() {
        for block in REGISTRY.lock().iter() {
            for v in &block.vals {
                v.store(0, Ordering::Relaxed);
            }
        }
        SPANS.lock().clear();
        crate::telemetry::reset();
    }

    /// RAII span guard; see [`super::region`].
    pub struct Region {
        start: Instant,
        /// Global counter snapshot at open; the close accumulates the delta
        /// into the span's entry.
        open_snap: super::Snapshot,
        /// Path length to truncate back to on close.
        parent_len: usize,
        /// Regions time their own thread: keep the guard on it.
        _not_send: std::marker::PhantomData<*const ()>,
    }

    pub fn region(name: &str) -> Region {
        let parent_len = SPAN_PATH.with(|p| {
            let mut p = p.borrow_mut();
            let parent_len = p.len();
            if !p.is_empty() {
                p.push('/');
            }
            p.push_str(name);
            parent_len
        });
        crate::timeline::span_begin(name);
        Region {
            start: Instant::now(),
            open_snap: super::snapshot(),
            parent_len,
            _not_send: std::marker::PhantomData,
        }
    }

    impl Drop for Region {
        fn drop(&mut self) {
            let ns = self.start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
            let delta = super::snapshot().since(&self.open_snap);
            SPAN_PATH.with(|p| {
                let mut p = p.borrow_mut();
                crate::telemetry::record(crate::telemetry::HistKind::RegionLatencyNs, &p, ns);
                let entry_path = p.clone();
                {
                    let mut spans = SPANS.lock();
                    let e = spans
                        .entry(entry_path)
                        .or_insert((0, 0, super::Snapshot::zero()));
                    e.0 += 1;
                    e.1 = e.1.saturating_add(ns);
                    e.2.accumulate(&delta);
                }
                let name = &p[if self.parent_len == 0 {
                    0
                } else {
                    self.parent_len + 1
                }..];
                crate::timeline::span_end(name);
                p.truncate(self.parent_len);
            });
        }
    }

    pub fn spans() -> Vec<SpanStat> {
        SPANS
            .lock()
            .iter()
            .map(|(path, (count, total_ns, counters))| SpanStat {
                path: path.clone(),
                count: *count,
                total_ns: *total_ns,
                counters: counters.clone(),
            })
            .collect()
    }
}

// ---------------------------------------------------------------------
// Disabled implementation (all no-ops; identical public surface)
// ---------------------------------------------------------------------

#[cfg(not(feature = "obs"))]
mod imp {
    use super::{Counter, Snapshot, SpanStat};

    pub const fn enabled() -> bool {
        false
    }

    #[inline(always)]
    pub fn register_thread() {}

    #[inline(always)]
    pub fn add(_c: Counter, _n: u64) {}

    pub fn snapshot() -> Snapshot {
        Snapshot::zero()
    }

    pub fn thread_snapshot() -> Snapshot {
        Snapshot::zero()
    }

    pub fn reset() {}

    /// Zero-sized no-op guard (the disabled [`super::region`]).
    pub struct Region {
        _not_send: std::marker::PhantomData<*const ()>,
    }

    #[inline(always)]
    pub fn region(_name: &str) -> Region {
        Region {
            _not_send: std::marker::PhantomData,
        }
    }

    pub fn spans() -> Vec<SpanStat> {
        Vec::new()
    }
}

pub use imp::Region;

/// Whether the `obs` feature is compiled in. `const`, so guards fold away.
pub const fn enabled() -> bool {
    imp::enabled()
}

/// Eagerly create and register this thread's counter block. Threads that
/// only ever *read* counters need not call this; long-lived worker threads
/// (the pool) call it at spawn so [`snapshot`]/[`reset`] cover them before
/// their first counted event.
#[inline(always)]
pub fn register_thread() {
    imp::register_thread();
}

/// Add `n` events to counter `c` on this thread (relaxed, lock-free).
#[inline(always)]
pub fn add(c: Counter, n: u64) {
    imp::add(c, n);
}

/// Sum of all threads' counters.
pub fn snapshot() -> Snapshot {
    imp::snapshot()
}

/// This thread's counters only — isolation for single-threaded
/// differential tests running under a parallel test harness.
pub fn thread_snapshot() -> Snapshot {
    imp::thread_snapshot()
}

/// Zero every thread's counters, clear the span registry, and zero the
/// telemetry histograms.
pub fn reset() {
    imp::reset();
}

/// Open a named span; the guard closes it on drop. Nested spans aggregate
/// under slash-joined paths in the session-global registry:
///
/// ```
/// let _outer = ookami_core::obs::region("cg");
/// {
///     let _inner = ookami_core::obs::region("cg_iter"); // path "cg/cg_iter"
/// }
/// ```
pub fn region(name: &str) -> Region {
    imp::region(name)
}

/// All span aggregates, sorted by path.
pub fn spans() -> Vec<SpanStat> {
    imp::spans()
}

/// Render the registry (global counter snapshot + spans) as Prometheus
/// text exposition.
pub fn prometheus() -> String {
    let snap = snapshot();
    let mut out = String::new();
    out.push_str("# TYPE ookami_events_total counter\n");
    for &c in &COUNTERS {
        let _ = writeln!(
            out,
            "ookami_events_total{{counter=\"{}\"}} {}",
            c.name(),
            snap.get(c)
        );
    }
    out.push_str("# TYPE ookami_span_seconds_total counter\n");
    out.push_str("# TYPE ookami_span_count_total counter\n");
    for s in spans() {
        let _ = writeln!(
            out,
            "ookami_span_seconds_total{{path=\"{}\"}} {:.9}",
            s.path,
            s.total_ns as f64 / 1e9
        );
        let _ = writeln!(
            out,
            "ookami_span_count_total{{path=\"{}\"}} {}",
            s.path, s.count
        );
    }
    out
}

// ---------------------------------------------------------------------
// Shared BENCH_*.json schema
// ---------------------------------------------------------------------

/// One probe run rendered into the shared `ookami-bench-v1` JSON schema.
///
/// Every `BENCH_*.json` the repo writes has the same top-level shape:
///
/// ```json
/// {
///   "schema": "ookami-bench-v1",
///   "probe": "svereplay",
///   "mode": "full",
///   "obs_enabled": true,
///   "metrics": { "speedup": 13.2 },
///   "flags": { "identical": "true" },
///   "counters": { "sve_instrs": 1234 },
///   "spans": [ { "path": "replay", "count": 1, "total_ns": 42 } ]
/// }
/// ```
#[derive(Debug, Clone, Default)]
pub struct BenchReport {
    probe: String,
    mode: String,
    metrics: Vec<(String, f64)>,
    flags: Vec<(String, String)>,
    counters: Vec<(&'static str, u64)>,
    spans: Vec<SpanStat>,
}

impl BenchReport {
    pub fn new(probe: &str, mode: &str) -> BenchReport {
        BenchReport {
            probe: probe.to_string(),
            mode: mode.to_string(),
            ..BenchReport::default()
        }
    }

    /// Record a numeric result (insertion order is preserved).
    pub fn metric(&mut self, key: &str, value: f64) -> &mut Self {
        self.metrics.push((key.to_string(), value));
        self
    }

    /// Record a string/boolean flag.
    pub fn flag(&mut self, key: &str, value: impl ToString) -> &mut Self {
        self.flags.push((key.to_string(), value.to_string()));
        self
    }

    /// Attach the non-zero counters of `snap` and the current spans.
    pub fn attach_obs(&mut self, snap: &Snapshot) -> &mut Self {
        self.counters = snap.nonzero();
        self.spans = spans();
        self
    }

    pub fn to_json(&self) -> String {
        let mut o = String::from("{\n");
        let _ = writeln!(o, "  \"schema\": \"ookami-bench-v1\",");
        let _ = writeln!(o, "  \"probe\": {},", json_str(&self.probe));
        let _ = writeln!(o, "  \"mode\": {},", json_str(&self.mode));
        let _ = writeln!(o, "  \"obs_enabled\": {},", enabled());
        o.push_str("  \"metrics\": {");
        for (i, (k, v)) in self.metrics.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(o, "{sep}\n    {}: {}", json_str(k), json_num(*v));
        }
        o.push_str(if self.metrics.is_empty() {
            "},\n"
        } else {
            "\n  },\n"
        });
        o.push_str("  \"flags\": {");
        for (i, (k, v)) in self.flags.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(o, "{sep}\n    {}: {}", json_str(k), json_str(v));
        }
        o.push_str(if self.flags.is_empty() {
            "},\n"
        } else {
            "\n  },\n"
        });
        o.push_str("  \"counters\": {");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(o, "{sep}\n    {}: {v}", json_str(k));
        }
        o.push_str(if self.counters.is_empty() {
            "},\n"
        } else {
            "\n  },\n"
        });
        o.push_str("  \"spans\": [");
        for (i, s) in self.spans.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(
                o,
                "{sep}\n    {{ \"path\": {}, \"count\": {}, \"total_ns\": {}",
                json_str(&s.path),
                s.count,
                s.total_ns
            );
            if !s.counters.is_zero() {
                o.push_str(", \"counters\": { ");
                for (j, (k, v)) in s.counters.nonzero().iter().enumerate() {
                    let sep = if j == 0 { "" } else { ", " };
                    let _ = write!(o, "{sep}{}: {v}", json_str(k));
                }
                o.push_str(" }");
            }
            o.push_str(" }");
        }
        o.push_str(if self.spans.is_empty() {
            "]\n"
        } else {
            "\n  ]\n"
        });
        o.push_str("}\n");
        o
    }

    /// Serialize, self-validate against the schema, and write to `path`.
    pub fn write(&self, path: &str) -> std::io::Result<()> {
        let json = self.to_json();
        if let Err(e) = validate_bench_json(&json) {
            return Err(std::io::Error::other(format!(
                "generated {path} violates ookami-bench-v1: {e}"
            )));
        }
        std::fs::write(path, json)
    }
}

pub(crate) fn json_str(s: &str) -> String {
    let mut o = String::with_capacity(s.len() + 2);
    o.push('"');
    for c in s.chars() {
        match c {
            '"' => o.push_str("\\\""),
            '\\' => o.push_str("\\\\"),
            '\n' => o.push_str("\\n"),
            '\t' => o.push_str("\\t"),
            '\r' => o.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(o, "\\u{:04x}", c as u32);
            }
            c => o.push(c),
        }
    }
    o.push('"');
    o
}

fn json_num(v: f64) -> String {
    if v.is_finite() {
        // `{:?}` always keeps a fractional part or exponent, so the value
        // round-trips as a JSON number ("1.0", not "1" → still a number
        // either way, but stable formatting keeps goldens diffable).
        format!("{v:?}")
    } else {
        "null".to_string()
    }
}

// ---------------------------------------------------------------------
// Schema validation (dependency-free recursive-descent JSON)
// ---------------------------------------------------------------------

/// Minimal JSON value for schema validation.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Parse a complete JSON document (trailing garbage is an error).
    pub fn parse(s: &str) -> Result<Json, String> {
        let b = s.as_bytes();
        let mut i = 0usize;
        let v = parse_value(b, &mut i)?;
        skip_ws(b, &mut i);
        if i != b.len() {
            return Err(format!("trailing bytes at offset {i}"));
        }
        Ok(v)
    }

    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }
}

fn skip_ws(b: &[u8], i: &mut usize) {
    while *i < b.len() && matches!(b[*i], b' ' | b'\t' | b'\n' | b'\r') {
        *i += 1;
    }
}

fn expect(b: &[u8], i: &mut usize, lit: &str) -> Result<(), String> {
    if b[*i..].starts_with(lit.as_bytes()) {
        *i += lit.len();
        Ok(())
    } else {
        Err(format!("expected `{lit}` at offset {i}", i = *i))
    }
}

fn parse_value(b: &[u8], i: &mut usize) -> Result<Json, String> {
    skip_ws(b, i);
    match b.get(*i) {
        None => Err("unexpected end of input".to_string()),
        Some(b'n') => expect(b, i, "null").map(|()| Json::Null),
        Some(b't') => expect(b, i, "true").map(|()| Json::Bool(true)),
        Some(b'f') => expect(b, i, "false").map(|()| Json::Bool(false)),
        Some(b'"') => parse_string(b, i).map(Json::Str),
        Some(b'[') => {
            *i += 1;
            let mut items = Vec::new();
            skip_ws(b, i);
            if b.get(*i) == Some(&b']') {
                *i += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, i)?);
                skip_ws(b, i);
                match b.get(*i) {
                    Some(b',') => *i += 1,
                    Some(b']') => {
                        *i += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at offset {i}", i = *i)),
                }
            }
        }
        Some(b'{') => {
            *i += 1;
            let mut m = BTreeMap::new();
            skip_ws(b, i);
            if b.get(*i) == Some(&b'}') {
                *i += 1;
                return Ok(Json::Obj(m));
            }
            loop {
                skip_ws(b, i);
                let key = parse_string(b, i)?;
                skip_ws(b, i);
                expect(b, i, ":")?;
                let val = parse_value(b, i)?;
                m.insert(key, val);
                skip_ws(b, i);
                match b.get(*i) {
                    Some(b',') => *i += 1,
                    Some(b'}') => {
                        *i += 1;
                        return Ok(Json::Obj(m));
                    }
                    _ => return Err(format!("expected `,` or `}}` at offset {i}", i = *i)),
                }
            }
        }
        Some(_) => parse_number(b, i),
    }
}

fn parse_string(b: &[u8], i: &mut usize) -> Result<String, String> {
    if b.get(*i) != Some(&b'"') {
        return Err(format!("expected string at offset {i}", i = *i));
    }
    *i += 1;
    let mut out = Vec::new();
    while let Some(&c) = b.get(*i) {
        *i += 1;
        match c {
            b'"' => {
                return String::from_utf8(out).map_err(|e| e.to_string());
            }
            b'\\' => {
                let esc = *b.get(*i).ok_or("unterminated escape")?;
                *i += 1;
                match esc {
                    b'"' => out.push(b'"'),
                    b'\\' => out.push(b'\\'),
                    b'/' => out.push(b'/'),
                    b'n' => out.push(b'\n'),
                    b't' => out.push(b'\t'),
                    b'r' => out.push(b'\r'),
                    b'b' => out.push(0x08),
                    b'f' => out.push(0x0c),
                    b'u' => {
                        let hex = b
                            .get(*i..*i + 4)
                            .ok_or("truncated \\u escape")
                            .and_then(|h| std::str::from_utf8(h).map_err(|_| "bad \\u escape"))?;
                        let cp = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape hex")?;
                        *i += 4;
                        let ch = char::from_u32(cp).ok_or("surrogate \\u escape unsupported")?;
                        let mut buf = [0u8; 4];
                        out.extend_from_slice(ch.encode_utf8(&mut buf).as_bytes());
                    }
                    _ => return Err(format!("bad escape `\\{}`", esc as char)),
                }
            }
            c => out.push(c),
        }
    }
    Err("unterminated string".to_string())
}

fn parse_number(b: &[u8], i: &mut usize) -> Result<Json, String> {
    let start = *i;
    if b.get(*i) == Some(&b'-') {
        *i += 1;
    }
    while matches!(b.get(*i), Some(c) if c.is_ascii_digit()) {
        *i += 1;
    }
    if b.get(*i) == Some(&b'.') {
        *i += 1;
        while matches!(b.get(*i), Some(c) if c.is_ascii_digit()) {
            *i += 1;
        }
    }
    if matches!(b.get(*i), Some(&b'e' | &b'E')) {
        *i += 1;
        if matches!(b.get(*i), Some(&b'+' | &b'-')) {
            *i += 1;
        }
        while matches!(b.get(*i), Some(c) if c.is_ascii_digit()) {
            *i += 1;
        }
    }
    let text = std::str::from_utf8(&b[start..*i]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("bad number `{text}` at offset {start}"))
}

/// Check `s` against the `ookami-bench-v1` schema shared by every
/// `BENCH_*.json` this repo writes.
pub fn validate_bench_json(s: &str) -> Result<(), String> {
    let v = Json::parse(s)?;
    let Json::Obj(obj) = &v else {
        return Err("top level must be an object".to_string());
    };
    match obj.get("schema") {
        Some(Json::Str(tag)) if tag == "ookami-bench-v1" => {}
        other => {
            return Err(format!(
                "schema tag must be \"ookami-bench-v1\", got {other:?}"
            ))
        }
    }
    for key in ["probe", "mode"] {
        match obj.get(key) {
            Some(Json::Str(p)) if !p.is_empty() => {}
            other => return Err(format!("`{key}` must be a non-empty string, got {other:?}")),
        }
    }
    match obj.get("obs_enabled") {
        Some(Json::Bool(_)) => {}
        other => return Err(format!("`obs_enabled` must be a bool, got {other:?}")),
    }
    for key in ["metrics", "counters"] {
        let m = match obj.get(key) {
            Some(Json::Obj(m)) => m,
            other => return Err(format!("`{key}` must be an object, got {other:?}")),
        };
        for (k, v) in m {
            if !matches!(v, Json::Num(_) | Json::Null) {
                return Err(format!("`{key}.{k}` must be a number, got {v:?}"));
            }
            if key == "counters" {
                match v {
                    Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => {}
                    _ => return Err(format!("`counters.{k}` must be a non-negative integer")),
                }
            }
        }
    }
    let flags = match obj.get("flags") {
        Some(Json::Obj(m)) => m,
        other => return Err(format!("`flags` must be an object, got {other:?}")),
    };
    for (k, v) in flags {
        if !matches!(v, Json::Str(_) | Json::Bool(_)) {
            return Err(format!("`flags.{k}` must be a string or bool, got {v:?}"));
        }
    }
    let spans = match obj.get("spans") {
        Some(Json::Arr(a)) => a,
        other => return Err(format!("`spans` must be an array, got {other:?}")),
    };
    for (i, s) in spans.iter().enumerate() {
        let Json::Obj(m) = s else {
            return Err(format!("`spans[{i}]` must be an object"));
        };
        match m.get("path") {
            Some(Json::Str(p)) if !p.is_empty() => {}
            _ => return Err(format!("`spans[{i}].path` must be a non-empty string")),
        }
        for key in ["count", "total_ns"] {
            match m.get(key) {
                Some(Json::Num(n)) if *n >= 0.0 && n.fract() == 0.0 => {}
                _ => return Err(format!("`spans[{i}].{key}` must be a non-negative integer")),
            }
        }
        // Optional per-span counter deltas (added with the derive engine;
        // older baselines without them stay valid).
        match m.get("counters") {
            None => {}
            Some(Json::Obj(cm)) => {
                for (k, v) in cm {
                    match v {
                        Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => {}
                        _ => {
                            return Err(format!(
                                "`spans[{i}].counters.{k}` must be a non-negative integer"
                            ))
                        }
                    }
                }
            }
            Some(other) => {
                return Err(format!(
                    "`spans[{i}].counters` must be an object, got {other:?}"
                ))
            }
        }
    }
    Ok(())
}

/// Rebuild a [`Snapshot`] from a parsed JSON counters object (the
/// `counters` map of a report or of one span). Unknown counter names are
/// ignored so old tooling keeps reading newer reports.
pub fn snapshot_from_json(counters: &Json) -> Snapshot {
    let mut s = Snapshot::zero();
    if let Json::Obj(m) = counters {
        for (k, v) in m {
            if let (Some(c), Json::Num(n)) = (Counter::from_name(k), v) {
                if *n >= 0.0 {
                    s.set(c, *n as u64);
                }
            }
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_names_are_unique_and_total() {
        let mut names: Vec<_> = COUNTERS.iter().map(|c| c.name()).collect();
        assert_eq!(names.len(), Counter::COUNT);
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Counter::COUNT, "duplicate counter name");
        // port() is index-aligned with the first eight counters
        assert_eq!(Counter::port(0), Counter::PortFla);
        assert_eq!(Counter::port(7), Counter::PortBr);
    }

    #[test]
    fn report_json_passes_its_own_validator() {
        let mut r = BenchReport::new("unit", "smoke");
        r.metric("speedup", 13.25).metric("wall_s", 1e-3);
        r.flag("identical", true);
        r.attach_obs(&snapshot());
        let json = r.to_json();
        validate_bench_json(&json).expect("self-produced JSON must validate");
    }

    #[test]
    fn empty_report_validates() {
        let json = BenchReport::new("unit", "smoke").to_json();
        validate_bench_json(&json).expect("empty sections must validate");
    }

    #[test]
    fn validator_rejects_malformed_documents() {
        for (doc, why) in [
            ("[]", "non-object top level"),
            ("{}", "missing schema tag"),
            (r#"{"schema":"ookami-bench-v2"}"#, "wrong schema tag"),
            (
                r#"{"schema":"ookami-bench-v1","probe":"p","mode":"m","obs_enabled":true,
                   "metrics":{"x":"not a number"},"flags":{},"counters":{},"spans":[]}"#,
                "string metric",
            ),
            (
                r#"{"schema":"ookami-bench-v1","probe":"p","mode":"m","obs_enabled":true,
                   "metrics":{},"flags":{},"counters":{"c":-1},"spans":[]}"#,
                "negative counter",
            ),
            (
                r#"{"schema":"ookami-bench-v1","probe":"p","mode":"m","obs_enabled":true,
                   "metrics":{},"flags":{},"counters":{},"spans":[{"path":""}]}"#,
                "bad span",
            ),
            (
                "{\"schema\":\"ookami-bench-v1\"} trailing",
                "trailing bytes",
            ),
        ] {
            assert!(validate_bench_json(doc).is_err(), "accepted {why}");
        }
    }

    #[test]
    fn json_parser_handles_escapes_and_numbers() {
        let v = Json::parse(r#"{"s":"a\"b\\c\nd","n":-1.5e-3,"b":[true,false,null]}"#).unwrap();
        assert_eq!(v.get("s"), Some(&Json::Str("a\"b\\c\nd".to_string())));
        assert_eq!(v.get("n"), Some(&Json::Num(-1.5e-3)));
        assert_eq!(
            v.get("b"),
            Some(&Json::Arr(vec![
                Json::Bool(true),
                Json::Bool(false),
                Json::Null
            ]))
        );
    }

    #[cfg(feature = "obs")]
    #[test]
    fn add_snapshot_roundtrip_on_this_thread() {
        let before = thread_snapshot();
        add(Counter::GatherElems, 7);
        add(Counter::GatherElems, 5);
        add(Counter::BarrierWaitNs, 100);
        let delta = thread_snapshot().since(&before);
        assert_eq!(delta.get(Counter::GatherElems), 12);
        assert_eq!(delta.get(Counter::BarrierWaitNs), 100);
        assert_eq!(delta.get(Counter::SveInstrs), 0);
    }

    #[cfg(feature = "obs")]
    #[test]
    fn nested_regions_aggregate_under_joined_paths() {
        {
            let _a = region("obs_test_outer");
            let _b = region("inner");
        }
        {
            let _a = region("obs_test_outer");
        }
        let spans = spans();
        let find = |p: &str| spans.iter().find(|s| s.path == p);
        assert!(find("obs_test_outer").is_some_and(|s| s.count >= 2));
        assert!(find("obs_test_outer/inner").is_some_and(|s| s.count >= 1));
    }

    #[cfg(not(feature = "obs"))]
    #[test]
    fn disabled_obs_is_zero_cost() {
        // The guard is a ZST and counting is compiled out entirely.
        assert_eq!(std::mem::size_of::<Region>(), 0);
        assert!(!enabled());
        add(Counter::SveInstrs, 1_000_000);
        assert_eq!(snapshot().get(Counter::SveInstrs), 0);
        assert!(spans().is_empty());
    }
}
