//! # ookami-core — experiment orchestration
//!
//! Shared substrate for the workload crates and the benchmark harness:
//!
//! * [`runtime`] — an OpenMP-like chunked parallel-for on crossbeam scoped
//!   threads (the repo's stand-in for the OpenMP runtimes the paper
//!   compares; also how the native Rust workloads actually thread);
//! * [`profile`] — [`WorkloadProfile`]: the characterization record each
//!   workload produces (FLOPs, memory traffic, math-function calls,
//!   vectorizability, parallel structure) and the machine/toolchain model
//!   consumes;
//! * [`measure`] — measurement records and fixed-width table / CSV output
//!   used by every figure regenerator;
//! * [`stats`] — mean/stddev/median helpers (the paper's error bars).

pub mod measure;
pub mod profile;
pub mod runtime;
pub mod stats;

pub use measure::{Measurement, Table};
pub use profile::{MathFunc, WorkloadProfile};
pub use runtime::{par_chunks_mut, par_for, par_reduce};
pub use stats::Stats;
