//! # ookami-core — experiment orchestration
//!
//! Shared substrate for the workload crates and the benchmark harness:
//!
//! * [`pool`] — a persistent fork/join worker pool (workers parked between
//!   regions, sense-reversing barrier, OpenMP-style `Static`/`Dynamic`/
//!   `Guided` schedules) — the repo's stand-in for the OpenMP runtimes the
//!   paper compares;
//! * [`runtime`] — the OpenMP-like `par_for`/`par_reduce`/`par_chunks_mut`
//!   helpers the workload crates call, backed by the global [`pool::Pool`];
//! * [`profile`] — [`WorkloadProfile`]: the characterization record each
//!   workload produces (FLOPs, memory traffic, math-function calls,
//!   vectorizability, parallel structure) and the machine/toolchain model
//!   consumes;
//! * [`measure`] — measurement records and fixed-width table / CSV output
//!   used by every figure regenerator;
//! * [`obs`] — hardware-counter-style event counters and span timing
//!   (zero-cost unless built with the `obs` feature), plus the shared
//!   `ookami-bench-v1` JSON report schema every probe binary writes;
//! * [`timeline`] — lock-free per-thread ring-buffer tracer with a Chrome
//!   trace-event exporter (span begin/end, pool fork/join/chunk/barrier,
//!   periodic counter samples), plus [`obs::derive`] — the roofline /
//!   derived-metrics engine built on the counter snapshots;
//! * [`telemetry`] — the live-observation layer on top of `obs` and
//!   `timeline`: lock-free log-bucketed latency histograms, the span-tree
//!   profiler with flamegraph (collapsed-stack) export
//!   ([`telemetry::spantree`]), continuous sampling sessions, and the
//!   dependency-free HTTP endpoint ([`telemetry::serve`]) behind
//!   `ookamiserve`'s `/metrics`, `/profile` and `/trace`;
//! * [`stats`] — mean/stddev/median helpers (the paper's error bars).

// Every `unsafe` operation must sit in an explicit `unsafe { }` block with
// its own `// SAFETY:` justification, even inside `unsafe fn` (the
// workspace unsafe-audit test enforces the comments).
#![deny(unsafe_op_in_unsafe_fn)]

pub mod measure;
pub mod obs;
pub mod pool;
pub mod profile;
pub mod runtime;
pub mod scratch;
pub mod stats;
pub mod telemetry;
pub mod timeline;

pub use measure::{Measurement, Table};
pub use pool::{Pool, Schedule};
pub use profile::{MathFunc, WorkloadProfile};
pub use runtime::{
    auto_threads, par_chunks_mut, par_chunks_mut_with, par_for, par_for_with, par_reduce,
    par_reduce_with, SendPtr,
};
pub use stats::Stats;
