//! A small OpenMP-style parallel runtime on crossbeam scoped threads.
//!
//! The NPB, LULESH and HPCC ports thread through these helpers. Rayon was
//! deliberately not used (see DESIGN.md §6): a hand-rolled static-schedule
//! parallel-for is closer to the OpenMP `parallel for` semantics the paper
//! studies, and its fork/join cost is the quantity the runtime model in
//! `ookami-mem::scaling` charges.

/// Static-schedule parallel for over `0..n`: each of `threads` workers gets
/// one contiguous range. `f(thread_id, start, end)` must only touch data
/// owned by its range (enforced by the usual borrow rules in callers via
/// `par_chunks_mut`, or by interior synchronization).
pub fn par_for<F>(threads: usize, n: usize, f: F)
where
    F: Fn(usize, usize, usize) + Sync,
{
    if n == 0 {
        return;
    }
    let threads = threads.clamp(1, n);
    if threads == 1 {
        f(0, 0, n);
        return;
    }
    let chunk = n.div_ceil(threads);
    crossbeam::thread::scope(|s| {
        for t in 0..threads {
            let start = t * chunk;
            let end = ((t + 1) * chunk).min(n);
            if start >= end {
                continue;
            }
            let f = &f;
            s.spawn(move |_| f(t, start, end));
        }
    })
    .expect("worker thread panicked");
}

/// Split `data` into per-thread contiguous chunks of `chunk_len` items and
/// run `f(chunk_index, chunk)` in parallel. The last chunk may be short.
pub fn par_chunks_mut<T: Send, F>(threads: usize, data: &mut [T], chunk_len: usize, f: F)
where
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(chunk_len > 0);
    let chunks: Vec<(usize, &mut [T])> = data.chunks_mut(chunk_len).enumerate().collect();
    let n = chunks.len();
    let threads = threads.max(1).min(n.max(1));
    if threads == 1 {
        for (i, c) in chunks {
            f(i, c);
        }
        return;
    }
    // Distribute chunks round-robin-free: contiguous blocks of chunks.
    let per = n.div_ceil(threads);
    let mut buckets: Vec<Vec<(usize, &mut [T])>> = Vec::with_capacity(threads);
    for _ in 0..threads {
        buckets.push(Vec::with_capacity(per));
    }
    for (i, c) in chunks {
        buckets[(i / per).min(threads - 1)].push((i, c));
    }
    crossbeam::thread::scope(|s| {
        for bucket in buckets {
            let f = &f;
            s.spawn(move |_| {
                for (i, c) in bucket {
                    f(i, c);
                }
            });
        }
    })
    .expect("worker thread panicked");
}

/// Parallel reduction over `0..n`: map each range with `f`, combine with
/// `combine` (associative, commutative), starting from `init`.
pub fn par_reduce<A, F, C>(threads: usize, n: usize, init: A, f: F, combine: C) -> A
where
    A: Send + Clone,
    F: Fn(usize, usize, A) -> A + Sync,
    C: Fn(A, A) -> A,
{
    let threads = threads.max(1).min(n.max(1));
    if threads == 1 {
        return f(0, n, init);
    }
    let chunk = n.div_ceil(threads);
    let partials = crossbeam::thread::scope(|s| {
        let mut handles = Vec::new();
        for t in 0..threads {
            let start = t * chunk;
            let end = ((t + 1) * chunk).min(n);
            if start >= end {
                continue;
            }
            let f = &f;
            let seed = init.clone();
            handles.push(s.spawn(move |_| f(start, end, seed)));
        }
        handles.into_iter().map(|h| h.join().expect("worker panicked")).collect::<Vec<_>>()
    })
    .expect("scope failed");
    partials.into_iter().fold(init, combine)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn par_for_covers_range_exactly_once() {
        let n = 10_007;
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        par_for(7, n, |_, s, e| {
            for i in s..e {
                hits[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn par_for_single_thread_and_empty() {
        let mut count = 0usize;
        par_for(1, 5, |_, s, e| {
            // single-thread path runs inline, so this closure could mutate
            // via a cell; here we just assert the full range arrives.
            assert_eq!((s, e), (0, 5));
        });
        par_for(4, 0, |_, _, _| panic!("must not run"));
        count += 1;
        assert_eq!(count, 1);
    }

    #[test]
    fn par_chunks_mut_writes_disjoint() {
        let mut v = vec![0usize; 1000];
        par_chunks_mut(5, &mut v, 13, |i, c| {
            for x in c.iter_mut() {
                *x = i + 1;
            }
        });
        // Every element assigned its chunk index + 1.
        for (i, &x) in v.iter().enumerate() {
            assert_eq!(x, i / 13 + 1);
        }
    }

    #[test]
    fn par_reduce_sums() {
        let s = par_reduce(
            6,
            1_000,
            0u64,
            |a, b, acc| acc + (a as u64..b as u64).sum::<u64>(),
            |x, y| x + y,
        );
        assert_eq!(s, 499_500);
    }

    #[test]
    fn par_reduce_more_threads_than_items() {
        let s = par_reduce(64, 3, 0u64, |a, b, acc| acc + (b - a) as u64, |x, y| x + y);
        assert_eq!(s, 3);
    }

    #[test]
    fn par_for_more_threads_than_items() {
        let n = 3;
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        par_for(16, n, |_, s, e| {
            for i in s..e {
                hits[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }
}
