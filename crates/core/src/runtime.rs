//! An OpenMP-style parallel runtime on the persistent worker pool.
//!
//! The NPB, LULESH and HPCC ports thread through these helpers. Rayon was
//! deliberately not used (see DESIGN.md §6): a hand-rolled OpenMP-like
//! runtime keeps `parallel for` semantics — and the fork/join cost the
//! runtime model in `ookami-mem::scaling` charges — explicit.
//!
//! Since the pool rework (DESIGN.md §4), these free functions are thin
//! wrappers over [`Pool::global`]: workers persist across regions and
//! regions cost a wakeup plus a sense-reversing barrier instead of a
//! `thread::spawn`/`join` round trip. `threads == 0` means "auto"
//! ([`auto_threads`]). The `*_with` variants additionally take a
//! [`Schedule`]; the plain forms keep the seed's static schedule and exact
//! chunk splits.

use crate::pool::{Pool, Schedule};

pub use crate::pool::auto_threads;

/// A raw pointer that may cross the pool's thread boundary, keeping its
/// provenance intact (no round-trip through `usize`, which strict
/// provenance — Miri's `-Zmiri-strict-provenance`, CHERI-style targets —
/// rejects). The workload crates use this to hand each logical thread a
/// disjoint window of one buffer.
///
/// Creating and copying a `SendPtr` is safe; all the usual raw-pointer
/// obligations apply at dereference time ([`SendPtr::slice_mut`],
/// [`SendPtr::ptr`]).
pub struct SendPtr<T>(*mut T);

// Manual impls: the derives would add an unwanted `T: Clone`/`T: Copy`
// bound, but the wrapper is a pointer — always copyable.
impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendPtr<T> {}

// SAFETY: the wrapper only carries the address; every dereference happens
// inside an `unsafe` block whose caller guarantees disjointness (each pool
// chunk derives a non-overlapping window exactly once per region).
unsafe impl<T> Send for SendPtr<T> {}
// SAFETY: as above — shared `&SendPtr` access only copies the address.
unsafe impl<T> Sync for SendPtr<T> {}

impl<T> SendPtr<T> {
    pub fn new(ptr: *mut T) -> Self {
        SendPtr(ptr)
    }

    /// The wrapped pointer. Dereferencing it inherits the caller's
    /// aliasing/liveness obligations.
    pub fn ptr(self) -> *mut T {
        self.0
    }

    /// `&mut` slice of `len` elements starting `offset` elements past
    /// the base.
    ///
    /// # Safety
    /// `from_raw_parts_mut` rules: `offset..offset + len` must be in
    /// bounds of the original allocation, live for `'a`, and disjoint
    /// from every other active reference (in the pool's case: each
    /// claimed range derived exactly once per region, and the borrow the
    /// pointer came from outlives the region).
    pub unsafe fn slice_mut<'a>(self, offset: usize, len: usize) -> &'a mut [T] {
        // SAFETY: forwarded to the caller — see the function's contract.
        unsafe { std::slice::from_raw_parts_mut(self.0.add(offset), len) }
    }
}

/// Static-schedule parallel for over `0..n`: each of `threads` logical
/// threads gets one contiguous range. `f(thread_id, start, end)` must only
/// touch data owned by its range (enforced by the usual borrow rules in
/// callers via `par_chunks_mut`, or by interior synchronization).
/// `threads == 0` resolves to [`auto_threads`].
pub fn par_for<F>(threads: usize, n: usize, f: F)
where
    F: Fn(usize, usize, usize) + Sync,
{
    Pool::global().par_for_with(threads, n, Schedule::Static, f);
}

/// [`par_for`] with an explicit [`Schedule`]. Under `Dynamic`/`Guided`
/// the first argument of `f` is the stealing slot, not a stable thread
/// id, and `f` may be called several times per slot.
pub fn par_for_with<F>(threads: usize, n: usize, sched: Schedule, f: F)
where
    F: Fn(usize, usize, usize) + Sync,
{
    Pool::global().par_for_with(threads, n, sched, f);
}

/// Split `data` into chunks of `chunk_len` items and run
/// `f(chunk_index, chunk)` in parallel. The last chunk may be short.
pub fn par_chunks_mut<T: Send, F>(threads: usize, data: &mut [T], chunk_len: usize, f: F)
where
    F: Fn(usize, &mut [T]) + Sync,
{
    par_chunks_mut_with(threads, data, chunk_len, Schedule::Static, f);
}

/// [`par_chunks_mut`] with an explicit [`Schedule`]. Chunks are claimed
/// by index over the region — no intermediate `Vec<Vec<_>>` of borrows
/// is materialized (each logical thread recomputes its chunk bounds from
/// the base pointer, which is safe because chunk ranges are disjoint).
pub fn par_chunks_mut_with<T: Send, F>(
    threads: usize,
    data: &mut [T],
    chunk_len: usize,
    sched: Schedule,
    f: F,
) where
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(chunk_len > 0);
    let len = data.len();
    let n_chunks = len.div_ceil(chunk_len);
    if n_chunks == 0 {
        return;
    }
    let base = SendPtr::new(data.as_mut_ptr());
    Pool::global().par_for_with(threads, n_chunks, sched, |_, s, e| {
        for i in s..e {
            let start = i * chunk_len;
            let end = ((i + 1) * chunk_len).min(len);
            // SAFETY: chunk `i` covers `start..end` of the original
            // slice; distinct `i` never overlap, every `i` is claimed
            // exactly once per region, and the borrow of `data` outlives
            // the region (the caller blocks until the pool's barrier).
            let chunk = unsafe { base.slice_mut(start, end - start) };
            f(i, chunk);
        }
    });
}

/// Parallel reduction over `0..n`: map each range with `f`, combine with
/// `combine` (associative), starting from `init`. Partials are combined
/// in logical-thread order, so the result is deterministic for a given
/// `(threads, n)` on any machine.
pub fn par_reduce<A, F, C>(threads: usize, n: usize, init: A, f: F, combine: C) -> A
where
    A: Send + Clone,
    F: Fn(usize, usize, A) -> A + Sync,
    C: Fn(A, A) -> A,
{
    Pool::global().par_reduce_with(threads, n, Schedule::Static, init, f, combine)
}

/// [`par_reduce`] with an explicit [`Schedule`]. Under `Dynamic`/`Guided`
/// the combine order follows stealing slots, so `combine` should be
/// associative and (for reproducibility across runs) commutative.
pub fn par_reduce_with<A, F, C>(
    threads: usize,
    n: usize,
    sched: Schedule,
    init: A,
    f: F,
    combine: C,
) -> A
where
    A: Send + Clone,
    F: Fn(usize, usize, A) -> A + Sync,
    C: Fn(A, A) -> A,
{
    Pool::global().par_reduce_with(threads, n, sched, init, f, combine)
}

/// The seed runtime's spawn-per-region `par_for`: `threads` fresh OS
/// threads per call via `std::thread::scope`. Kept as the measured
/// baseline for the pool's fork/join overhead probe (`forkjoin` bin,
/// `fork_join` bench) and for differential tests.
pub fn spawn_par_for<F>(threads: usize, n: usize, f: F)
where
    F: Fn(usize, usize, usize) + Sync,
{
    if n == 0 {
        return;
    }
    let threads = threads.max(1).min(n);
    if threads == 1 {
        f(0, 0, n);
        return;
    }
    let chunk = n.div_ceil(threads);
    std::thread::scope(|s| {
        for t in 0..threads {
            let start = t * chunk;
            let end = ((t + 1) * chunk).min(n);
            if start >= end {
                continue;
            }
            let f = &f;
            s.spawn(move || f(t, start, end));
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn par_for_covers_range_exactly_once() {
        let n = 10_007;
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        par_for(7, n, |_, s, e| {
            for h in &hits[s..e] {
                h.fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn par_for_single_thread_and_empty() {
        let mut count = 0usize;
        par_for(1, 5, |_, s, e| {
            // single-thread path runs inline, so this closure could mutate
            // via a cell; here we just assert the full range arrives.
            assert_eq!((s, e), (0, 5));
        });
        par_for(4, 0, |_, _, _| panic!("must not run"));
        count += 1;
        assert_eq!(count, 1);
    }

    #[test]
    fn par_chunks_mut_writes_disjoint() {
        let mut v = vec![0usize; 1000];
        par_chunks_mut(5, &mut v, 13, |i, c| {
            for x in c.iter_mut() {
                *x = i + 1;
            }
        });
        // Every element assigned its chunk index + 1.
        for (i, &x) in v.iter().enumerate() {
            assert_eq!(x, i / 13 + 1);
        }
    }

    #[test]
    fn par_reduce_sums() {
        let s = par_reduce(
            6,
            1_000,
            0u64,
            |a, b, acc| acc + (a as u64..b as u64).sum::<u64>(),
            |x, y| x + y,
        );
        assert_eq!(s, 499_500);
    }

    #[test]
    fn par_reduce_more_threads_than_items() {
        let s = par_reduce(64, 3, 0u64, |a, b, acc| acc + (b - a) as u64, |x, y| x + y);
        assert_eq!(s, 3);
    }

    #[test]
    fn par_for_more_threads_than_items() {
        let n = 3;
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        par_for(16, n, |_, s, e| {
            for h in &hits[s..e] {
                h.fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    // --- pool-era additions ---

    #[test]
    fn auto_threads_is_positive_and_zero_means_auto() {
        assert!(auto_threads() >= 1);
        let hits = AtomicUsize::new(0);
        par_for(0, 100, |_, s, e| {
            hits.fetch_add(e - s, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn par_for_matches_spawn_baseline_splits() {
        // The pool's Static schedule must produce bit-for-bit the same
        // (tid, start, end) triples as the seed's spawn-per-region code.
        for (threads, n) in [(7, 10_007), (4, 16), (16, 3), (3, 1)] {
            let a = std::sync::Mutex::new(Vec::new());
            let b = std::sync::Mutex::new(Vec::new());
            par_for(threads, n, |t, s, e| a.lock().unwrap().push((t, s, e)));
            spawn_par_for(threads, n, |t, s, e| b.lock().unwrap().push((t, s, e)));
            let mut a = a.into_inner().unwrap();
            let mut b = b.into_inner().unwrap();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "threads={threads} n={n}");
        }
    }

    #[test]
    fn par_chunks_mut_dynamic_schedule() {
        let mut v = vec![0usize; 997];
        par_chunks_mut_with(8, &mut v, 10, Schedule::Dynamic { chunk: 3 }, |i, c| {
            for x in c.iter_mut() {
                *x = i + 1;
            }
        });
        for (i, &x) in v.iter().enumerate() {
            assert_eq!(x, i / 10 + 1);
        }
    }

    #[test]
    fn par_reduce_guided_sums() {
        let s = par_reduce_with(
            8,
            100_000,
            Schedule::Guided,
            0u64,
            |a, b, acc| acc + (a as u64..b as u64).sum::<u64>(),
            |x, y| x + y,
        );
        assert_eq!(s, 100_000u64 * 99_999 / 2);
    }
}
