//! Worker-resident scratch arenas.
//!
//! The bulk executors in `ookami-sve` and the sharded cache simulator hand
//! each pool worker a per-region working set (lane arenas, row buffers).
//! Allocating those inside every `par_for_with` closure puts `malloc`/
//! `free` — and the page faults behind them — on the fork/join critical
//! path of *every* region. Because the PR-1 pool parks its workers between
//! regions instead of respawning them, a `thread_local!` cache **is**
//! worker-local storage: a buffer parked here by one region is still warm
//! (same thread, same physical pages, likely still in cache) when the next
//! region claims it.
//!
//! The protocol is take/put:
//!
//! * [`take`] removes and returns the cached value for `(owner, shape)`,
//!   if this thread has one. While taken, the entry is absent — concurrent
//!   re-entry on the same thread (nested regions run inline) falls back to
//!   a fresh allocation instead of aliasing.
//! * [`put`] parks a value for the next taker, evicting the least-recently
//!   parked entry beyond [`MAX_RESIDENT`] so dropped owners (temporary
//!   traces in tests, mutants) cannot grow the cache without bound.
//!
//! Keys are `(owner, shape)` pairs: `owner` comes from [`unique_id`] — a
//! process-global monotone counter, so two live owners can never collide
//! and a recycled allocation cannot masquerade as its predecessor — and
//! `shape` encodes whatever geometry makes a cached value reusable (the
//! replayer keys on its step width). **Cached contents are stale data**:
//! the taker must re-establish every invariant it needs (the replayer
//! zeroes its arenas and re-runs trace setup; the compiled engine re-tiles
//! its splat/constant rows).

use std::any::Any;
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Scratch entries a thread keeps parked at once. Steady state needs one
/// entry per live (trace × width) or plan actually executing on the
/// thread — a handful; the cap only matters for test suites that mint
/// thousands of short-lived traces.
const MAX_RESIDENT: usize = 32;

/// A process-unique owner id for scratch keys (and anything else that
/// needs a cheap never-reused handle). Starts at 1 so 0 can mean "no id".
pub fn unique_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

struct Entry {
    /// Insertion stamp for LRU eviction (monotone per thread).
    stamp: u64,
    val: Box<dyn Any>,
}

thread_local! {
    static CACHE: RefCell<(u64, HashMap<(u64, u64), Entry>)> =
        RefCell::new((0, HashMap::new()));
}

/// Claim this thread's parked value for `key`, if any. The entry is
/// removed; park it again with [`put`] when done.
pub fn take<T: 'static>(key: (u64, u64)) -> Option<Box<T>> {
    CACHE.with(|c| {
        let mut c = c.borrow_mut();
        match c.1.remove(&key) {
            Some(e) => match e.val.downcast::<T>() {
                Ok(v) => Some(v),
                // A type mismatch under a unique owner id means the caller
                // changed the cached type between put and take — park it
                // back rather than silently dropping someone's buffer.
                Err(v) => {
                    c.1.insert(
                        key,
                        Entry {
                            stamp: e.stamp,
                            val: v,
                        },
                    );
                    None
                }
            },
            None => None,
        }
    })
}

/// Park `val` for the next [`take`] of `key` on this thread, evicting the
/// least-recently parked entry if the cache is full.
pub fn put<T: 'static>(key: (u64, u64), val: Box<T>) {
    CACHE.with(|c| {
        let mut c = c.borrow_mut();
        c.0 += 1;
        let stamp = c.0;
        c.1.insert(key, Entry { stamp, val });
        if c.1.len() > MAX_RESIDENT {
            if let Some(&victim) = c.1.iter().min_by_key(|(_, e)| e.stamp).map(|(k, _)| k) {
                c.1.remove(&victim);
            }
        }
    });
}

/// Number of entries parked on this thread (test/diagnostic support).
pub fn resident() -> usize {
    CACHE.with(|c| c.borrow().1.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unique_ids_never_repeat() {
        let a = unique_id();
        let b = unique_id();
        assert_ne!(a, b);
        assert!(b > a);
    }

    #[test]
    fn take_put_roundtrip_preserves_contents() {
        let key = (unique_id(), 64);
        assert!(take::<Vec<u64>>(key).is_none(), "fresh key starts empty");
        put(key, Box::new(vec![7u64; 16]));
        let v = take::<Vec<u64>>(key).expect("parked value comes back");
        assert_eq!(*v, vec![7u64; 16]);
        assert!(take::<Vec<u64>>(key).is_none(), "take removes the entry");
    }

    #[test]
    fn distinct_shapes_are_distinct_entries() {
        let owner = unique_id();
        put((owner, 8), Box::new(8usize));
        put((owner, 64), Box::new(64usize));
        assert_eq!(*take::<usize>((owner, 8)).unwrap(), 8);
        assert_eq!(*take::<usize>((owner, 64)).unwrap(), 64);
    }

    #[test]
    fn type_mismatch_leaves_entry_parked() {
        let key = (unique_id(), 0);
        put(key, Box::new(5u32));
        assert!(take::<String>(key).is_none());
        assert_eq!(*take::<u32>(key).unwrap(), 5, "entry survived the miss");
    }

    #[test]
    fn eviction_caps_resident_entries() {
        // Fill far past the cap from a clean slate of unique owners; the
        // oldest entries must be the ones evicted.
        let owners: Vec<u64> = (0..2 * MAX_RESIDENT).map(|_| unique_id()).collect();
        for &o in &owners {
            put((o, 1), Box::new(o));
        }
        assert!(resident() <= MAX_RESIDENT);
        assert!(
            take::<u64>((owners[0], 1)).is_none(),
            "oldest entry was evicted"
        );
        let newest = *owners.last().unwrap();
        assert_eq!(*take::<u64>((newest, 1)).unwrap(), newest);
    }

    #[test]
    fn worker_threads_have_independent_caches() {
        let key = (unique_id(), 3);
        put(key, Box::new(1u8));
        std::thread::spawn(move || {
            assert!(take::<u8>(key).is_none(), "other thread sees no entry");
        })
        .join()
        .unwrap();
        assert_eq!(*take::<u8>(key).unwrap(), 1);
    }
}
