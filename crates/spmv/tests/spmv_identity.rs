//! Differential properties across the SpMV/STREAM/stencil executors: the
//! interpreter, the replayer, parallel replay at several worker counts
//! and (where the trace compiles natively) the compiled closure must all
//! reproduce the fused scalar reference *bitwise* on arbitrary fixtures
//! — and, with obs compiled in, with identical counter totals, because
//! both sides mirror the same binds and the same predicates.

use ookami_core::obs::{self, Counter};
use ookami_spmv::{
    run_crs_interp, run_crs_replay, run_crs_replay_par, run_sell_interp, run_sell_replay,
    run_sell_replay_par, run_stream, stream_ref, stream_trace, Crs, GatherHints, SellCSigma,
    Stencil, StreamExec, StreamKernel,
};
use proptest::prelude::*;

fn x_for(n: usize) -> Vec<f64> {
    (0..n).map(|i| 1.0 / (1.0 + i as f64)).collect()
}

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// The deterministic model counters an executor accrues over a closure.
fn counted(f: impl FnOnce()) -> Vec<(&'static str, u64)> {
    let t0 = obs::snapshot();
    f();
    obs::snapshot().since(&t0).nonzero()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// CRS: interpreter == replayer == parallel replay == scalar ref,
    /// bitwise, on ragged matrices (empty rows and tails included).
    #[test]
    fn crs_executors_agree_bitwise(
        n_rows in 1usize..40,
        n_cols in 1usize..48,
        max_per_row in 0usize..7,
        seed in 0u64..1000,
        tidx in 0usize..3,
    ) {
        let threads = [1usize, 2, 4][tidx];
        let m = Crs::ragged(n_rows, n_cols, max_per_row.min(n_cols), seed);
        let x = x_for(m.n_cols);
        let hints = GatherHints::uniform(8);
        let want = bits(&m.spmv_ref(&x));
        let t = ookami_spmv::crs_trace(&m, &x, 8, hints);
        prop_assert_eq!(&bits(&run_crs_interp(&m, &x, 8, hints)), &want);
        prop_assert_eq!(&bits(&run_crs_replay(&t, &m)), &want);
        prop_assert_eq!(&bits(&run_crs_replay_par(threads, &t, &m)), &want);
    }

    /// SELL-C-σ: same discipline, across chunk widths and sort windows.
    #[test]
    fn sell_executors_agree_bitwise(
        n_rows in 1usize..40,
        max_per_row in 0usize..7,
        seed in 0u64..1000,
        cidx in 0usize..4,
        sigma in 1usize..64,
    ) {
        let c = [2usize, 3, 4, 8][cidx];
        let m = Crs::ragged(n_rows, 32, max_per_row, seed);
        let x = x_for(m.n_cols);
        let hints = GatherHints::uniform(c as u32);
        let s = SellCSigma::from_crs(&m, c, sigma);
        let want = bits(&m.spmv_ref(&x));
        let t = ookami_spmv::sell_trace(&s, &x, hints);
        prop_assert_eq!(&bits(&run_sell_interp(&s, &x, hints)), &want);
        prop_assert_eq!(&bits(&run_sell_replay(&t, &s)), &want);
        prop_assert_eq!(&bits(&run_sell_replay_par(2, &t, &s)), &want);
    }

    /// STREAM: every kernel × executor × thread count is bit-faithful,
    /// including on lengths that leave a predicated tail.
    #[test]
    fn stream_executors_agree_bitwise(
        n in 1usize..200,
        kidx in 0usize..4,
        threads in 1usize..3,
    ) {
        let k = StreamKernel::ALL[kidx];
        let a: Vec<f64> = (0..n).map(|i| 0.25 + i as f64).collect();
        let b: Vec<f64> = (0..n).map(|i| 1.0 / (1.0 + i as f64)).collect();
        let bopt = (k.inputs() == 2).then_some(&b[..]);
        let want = bits(&stream_ref(k, &a, bopt));
        let t = stream_trace(k, 8);
        for exec in [StreamExec::Interp, StreamExec::Replay, StreamExec::Compiled] {
            prop_assert_eq!(
                &bits(&run_stream(&t, k, exec, threads, &a, bopt)),
                &want,
                "{} via {:?} x{}", k.name(), exec, threads
            );
        }
    }

    /// Stencil: replay equals the fused scalar sweep for arbitrary
    /// mass/kappa couplings on both lattices.
    #[test]
    fn stencil_replay_matches_reference(
        mass in -2.0f64..2.0,
        kappa in -1.0f64..1.0,
    ) {
        for st in [Stencil::d2(16, 8, mass, kappa), Stencil::d3(4, 4, 8, mass, kappa)] {
            let u = st.field();
            let want = bits(&st.apply_ref(&u));
            let t = st.trace(&u, 8, 8);
            prop_assert_eq!(&bits(&t.replay_map(&st.sites_f64())), &want);
            prop_assert_eq!(&bits(&st.apply_interp(&u, 8, 8)), &want);
        }
    }

    /// Counter identity: the interpreter and the replayer account the
    /// same work — same gathered elements, same bound bytes — because
    /// constants and `whilelt` are uncounted on both sides and the binds
    /// mirror each other stream for stream.
    #[test]
    fn interp_and_replay_count_identically(
        n_rows in 1usize..24,
        max_per_row in 0usize..6,
        seed in 0u64..500,
    ) {
        if !obs::enabled() {
            return;
        }
        let m = Crs::ragged(n_rows, 24, max_per_row, seed);
        let x = x_for(m.n_cols);
        let hints = GatherHints::uniform(8);
        let t = ookami_spmv::crs_trace(&m, &x, 8, hints);
        let ci = counted(|| { std::hint::black_box(run_crs_interp(&m, &x, 8, hints)); });
        let cr = counted(|| { std::hint::black_box(run_crs_replay(&t, &m)); });
        prop_assert_eq!(&ci, &cr);
        let gathered = ci.iter().find(|(k, _)| *k == Counter::GatherElems.name());
        let want = 3 * m.nnz() as u64;
        prop_assert_eq!(gathered.map_or(0, |(_, v)| *v), want);
    }
}

#[test]
fn nan_payloads_survive_every_stream_executor() {
    // Copy is an ORR move: even signaling-NaN payloads must round-trip.
    let weird = f64::from_bits(0x7ff0_dead_beef_0001);
    let a = vec![1.0, weird, -0.0, f64::INFINITY, 3.5];
    let t = stream_trace(StreamKernel::Copy, 8);
    for exec in [StreamExec::Interp, StreamExec::Replay, StreamExec::Compiled] {
        let got = run_stream(&t, StreamKernel::Copy, exec, 1, &a, None);
        assert_eq!(bits(&got), bits(&a), "{exec:?}");
    }
}
