//! Format-equivalence properties: SELL-C-σ is a *storage* transform, not
//! a numerical one. For any chunk width C and any sort window σ it must
//! reproduce CRS bitwise — the packer preserves each row's entry order
//! and only permutes row order, and the kernels accumulate per row in
//! stored order — while its padding economics obey the σ-sorting bounds.

use ookami_core::obs::{self, Counter};
use ookami_spmv::{run_sell_interp, sell_trace, Crs, GatherHints, SellCSigma};
use proptest::prelude::*;

fn x_for(n: usize) -> Vec<f64> {
    (0..n).map(|i| (1.0 + i as f64).recip()).collect()
}

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The pin of the whole format family: CRS == SELL-C-σ bitwise for
    /// *any* admissible (C, σ) over ragged random matrices.
    #[test]
    fn sell_equals_crs_bitwise_for_any_c_sigma(
        n_rows in 1usize..48,
        n_cols in 1usize..64,
        max_per_row in 0usize..9,
        seed in 0u64..10_000,
        c in 1usize..12,
        sigma in 1usize..96,
    ) {
        let m = Crs::ragged(n_rows, n_cols, max_per_row.min(n_cols), seed);
        let x = x_for(m.n_cols);
        let s = SellCSigma::from_crs(&m, c, sigma);
        prop_assert_eq!(&bits(&s.spmv_ref(&x)), &bits(&m.spmv_ref(&x)));
        // Structural conservation: padding only ever adds slots, and the
        // utilization ratio reflects exactly the real/padded split.
        prop_assert_eq!(s.nnz, m.nnz());
        prop_assert!(s.padded_nnz() >= s.nnz);
        if s.padded_nnz() > 0 {
            let util = s.lane_utilization();
            prop_assert!((util - s.nnz as f64 / s.padded_nnz() as f64).abs() < 1e-15);
            prop_assert!(util <= 1.0 + 1e-15);
        }
    }

    /// σ-sorting monotonicity at full window: sorting the whole matrix
    /// by row length never pads more than not sorting at all (σ = 1).
    #[test]
    fn full_sigma_never_pads_more_than_unsorted(
        n_rows in 1usize..48,
        max_per_row in 0usize..9,
        seed in 0u64..10_000,
        c in 1usize..12,
    ) {
        let m = Crs::ragged(n_rows, 32, max_per_row, seed);
        let unsorted = SellCSigma::from_crs(&m, c, 1);
        let sorted = SellCSigma::from_crs(&m, c, m.n_rows.max(1));
        prop_assert!(sorted.padded_nnz() <= unsorted.padded_nnz());
    }

    /// The emulated SELL kernel gathers exactly nnz elements of `x` —
    /// padding lanes are predicated off and never reach the gather
    /// accounting — independent of (C, σ).
    #[test]
    fn sell_gathers_exactly_nnz(
        n_rows in 1usize..32,
        max_per_row in 0usize..7,
        seed in 0u64..1000,
        c in 2usize..9,
        sigma in 1usize..48,
    ) {
        if !obs::enabled() {
            return;
        }
        let m = Crs::ragged(n_rows, 24, max_per_row, seed);
        let x = x_for(m.n_cols);
        let s = SellCSigma::from_crs(&m, c, sigma);
        let hints = GatherHints::uniform(c as u32);
        let t0 = obs::snapshot();
        std::hint::black_box(run_sell_interp(&s, &x, hints));
        let got = obs::snapshot().since(&t0).get(Counter::GatherElems);
        prop_assert_eq!(got, m.nnz() as u64);
    }
}

#[test]
fn sigma_permutes_rows_never_entries() {
    // A directed witness for the bit-identity argument: build a matrix
    // whose rows would sum differently under re-ordered entries (large
    // cancellations), then check every (C, σ) anyway agrees.
    let rows: Vec<Vec<(usize, f64)>> = vec![
        vec![(0, 1.0e16), (1, 1.0), (2, -1.0e16)],
        vec![(3, -1.0)],
        vec![],
        vec![(1, 0.1), (2, 0.2), (3, 0.3), (4, 0.4), (5, 0.5)],
        vec![(0, 1.0e-300), (5, 1.0e300)],
    ];
    let m = Crs::from_rows(6, &rows);
    let x: Vec<f64> = vec![1.0, 3.0, 1.0, 7.0, 0.5, 1.0e-300];
    let want: Vec<u64> = m.spmv_ref(&x).iter().map(|v| v.to_bits()).collect();
    for c in 1..=5 {
        for sigma in [1, 2, 3, 5] {
            let s = SellCSigma::from_crs(&m, c, sigma);
            let got: Vec<u64> = s.spmv_ref(&x).iter().map(|v| v.to_bits()).collect();
            assert_eq!(got, want, "C={c} sigma={sigma}");
            let t = sell_trace(&s, &x, GatherHints::uniform(c as u32));
            let rep: Vec<u64> = ookami_spmv::run_sell_replay(&t, &s)
                .iter()
                .map(|v| v.to_bits())
                .collect();
            assert_eq!(rep, want, "replay C={c} sigma={sigma}");
        }
    }
}
