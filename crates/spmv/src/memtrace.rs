//! Element-level address streams for the cache simulator.
//!
//! The ECM model needs per-family L1↔L2 and L2↔memory line traffic.
//! Rather than hand-derive it, each family emits the exact `(addr,
//! bytes)` sequence its kernel touches — value/column streams, the
//! gathered `x` accesses in true column order, output stores — and
//! `ookami_mem::CacheSim` replays it against a machine's `MemSpec`.
//! Arrays live at disjoint 4 GiB-aligned bases so they never alias.
//!
//! A writeback simplification is deliberate: stores count as accesses at
//! the store's address (write-allocate), and dirty-eviction traffic is
//! not modeled separately — consistent with how the rest of the repo's
//! cache model treats stores.

use crate::matrix::{Crs, SellCSigma};
use crate::stencil::Stencil;
use crate::stream::StreamKernel;
use ookami_mem::{AccessStats, CacheSim};
use ookami_uarch::MemSpec;

const VAL_BASE: u64 = 1 << 32;
const COL_BASE: u64 = 2 << 32;
const X_BASE: u64 = 3 << 32;
const Y_BASE: u64 = 4 << 32;
const PTR_BASE: u64 = 5 << 32;
const B_BASE: u64 = 6 << 32;

/// CRS SpMV: per row, one row-pointer load, then `val[j]` + `col[j]` +
/// `x[col[j]]` per entry, then the `y[r]` store.
pub fn crs_addr_trace(m: &Crs) -> Vec<(u64, usize)> {
    let mut t = Vec::with_capacity(3 * m.nnz() + 2 * m.n_rows);
    for r in 0..m.n_rows {
        t.push((PTR_BASE + 8 * r as u64, 8));
        for j in m.ptr[r]..m.ptr[r + 1] {
            t.push((VAL_BASE + 8 * j as u64, 8));
            t.push((COL_BASE + 8 * j as u64, 8));
            t.push((X_BASE + 8 * m.col[j] as u64, 8));
        }
        t.push((Y_BASE + 8 * r as u64, 8));
    }
    t
}

/// SELL-C-σ SpMV: the value/column slabs stream contiguously in chunk
/// order (padding included — it is fetched even though it is predicated
/// off), `x` is gathered for real entries only, `y` stored per row.
pub fn sell_addr_trace(s: &SellCSigma) -> Vec<(u64, usize)> {
    let mut t = Vec::new();
    for ck in 0..s.n_chunks() {
        let p0 = ck * s.c;
        let rows = (p0 + s.c).min(s.n_rows) - p0;
        for j in 0..s.chunk_len[ck] {
            for l in 0..s.c {
                let o = s.chunk_ptr[ck] + j * s.c + l;
                t.push((VAL_BASE + 8 * o as u64, 8));
                t.push((COL_BASE + 8 * o as u64, 8));
                if l < rows && j < s.row_len[p0 + l] {
                    t.push((X_BASE + 8 * s.col[o] as u64, 8));
                }
            }
        }
        for l in 0..rows {
            t.push((Y_BASE + 8 * s.row_order[p0 + l] as u64, 8));
        }
    }
    t
}

/// One STREAM pass of `n` elements (loads then store per element).
pub fn stream_addr_trace(k: StreamKernel, n: usize) -> Vec<(u64, usize)> {
    let mut t = Vec::with_capacity((k.inputs() + 1) * n);
    for i in 0..n {
        t.push((X_BASE + 8 * i as u64, 8));
        if k.inputs() == 2 {
            t.push((B_BASE + 8 * i as u64, 8));
        }
        t.push((Y_BASE + 8 * i as u64, 8));
    }
    t
}

/// One stencil sweep: neighbor gathers in offset order, the center load,
/// the output store.
pub fn stencil_addr_trace(st: &Stencil) -> Vec<(u64, usize)> {
    let mut t = Vec::with_capacity((st.points() + 1) * st.n);
    for i in 0..st.n {
        for &d in &st.offsets {
            t.push((X_BASE + 8 * (((i + d) & (st.n - 1)) as u64), 8));
        }
        t.push((X_BASE + 8 * i as u64, 8));
        t.push((Y_BASE + 8 * i as u64, 8));
    }
    t
}

/// Replay an address trace against a cold hierarchy of `spec`.
pub fn simulate(spec: MemSpec, trace: &[(u64, usize)]) -> AccessStats {
    CacheSim::new(spec).replay(trace.iter().copied())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> MemSpec {
        ookami_uarch::machines::a64fx().mem
    }

    #[test]
    fn crs_trace_has_expected_access_count() {
        let m = Crs::ragged(64, 64, 10, 3);
        let t = crs_addr_trace(&m);
        assert_eq!(t.len(), 3 * m.nnz() + 2 * m.n_rows);
        let st = simulate(spec(), &t);
        assert_eq!(st.accesses as usize, t.len());
        assert!(st.mem > 0, "cold caches must miss");
    }

    #[test]
    fn sell_padding_streams_but_never_gathers() {
        let m = Crs::ragged(64, 64, 10, 3);
        let s = SellCSigma::from_crs(&m, 8, 64);
        let t = sell_addr_trace(&s);
        // Slabs include padding; x gathers count real entries only.
        assert_eq!(t.len(), 2 * s.padded_nnz() + s.nnz + s.n_rows);
    }

    #[test]
    fn banded_crs_is_friendlier_than_random() {
        // Column locality must show up as strictly fewer memory lines.
        let band = Crs::banded(256, 4);
        let rand = Crs::random_fixed(256, 256, 9, 17);
        let sb = simulate(spec(), &crs_addr_trace(&band));
        let sr = simulate(spec(), &crs_addr_trace(&rand));
        let lines = |s: &AccessStats| s.mem;
        assert!(
            lines(&sb) <= lines(&sr),
            "banded {} vs random {}",
            lines(&sb),
            lines(&sr)
        );
    }

    #[test]
    fn stream_and_stencil_traces_cover_all_arrays() {
        let t = stream_addr_trace(StreamKernel::Triad, 100);
        assert_eq!(t.len(), 300);
        let st = Stencil::d2(8, 8, 0.5, -0.125);
        let tr = stencil_addr_trace(&st);
        assert_eq!(tr.len(), st.n * (st.points() + 1));
    }
}
