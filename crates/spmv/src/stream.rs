//! The four STREAM kernels (McCalpin) as pure streaming traces — the
//! bandwidth anchors of the A64FX modeling papers (arXiv 2009.13903
//! measures exactly these four on this machine).
//!
//! Each kernel is a one-op trace body over bound input streams:
//!
//! | kernel | body            | arrays |
//! |--------|-----------------|--------|
//! | copy   | `c[i] = a[i]`   | 2      |
//! | scale  | `b[i] = s·c[i]` | 2      |
//! | add    | `c[i] = a[i]+b[i]` | 3   |
//! | triad  | `a[i] = b[i]+s·c[i]` | 3 |
//!
//! Copy is an `ORR` move alias, so it is bit-faithful for every payload
//! including NaNs. All four are carry-free and gather-free, which makes
//! them batchable in the replayer *and* compilable to native closures —
//! the streaming counterpart to SpMV's replayer-fallback path.

use ookami_sve::Trace;

/// The STREAM scalar `s` (McCalpin's reference value).
pub const STREAM_SCALAR: f64 = 3.0;

/// Which STREAM kernel a trace/runner implements.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamKernel {
    Copy,
    Scale,
    Add,
    Triad,
}

impl StreamKernel {
    pub const ALL: [StreamKernel; 4] = [
        StreamKernel::Copy,
        StreamKernel::Scale,
        StreamKernel::Add,
        StreamKernel::Triad,
    ];

    pub fn name(self) -> &'static str {
        match self {
            StreamKernel::Copy => "copy",
            StreamKernel::Scale => "scale",
            StreamKernel::Add => "add",
            StreamKernel::Triad => "triad",
        }
    }

    /// Number of bound input streams (1 or 2).
    pub fn inputs(self) -> usize {
        match self {
            StreamKernel::Copy | StreamKernel::Scale => 1,
            StreamKernel::Add | StreamKernel::Triad => 2,
        }
    }

    /// Bytes moved per element counting the output store, the STREAM
    /// bandwidth convention (copy/scale 16 B, add/triad 24 B).
    pub fn bytes_per_elem(self) -> usize {
        8 * (self.inputs() + 1)
    }

    /// FLOPs per element under the model's convention (FMA = 2).
    pub fn flops_per_elem(self) -> usize {
        match self {
            StreamKernel::Copy => 0,
            StreamKernel::Scale | StreamKernel::Add => 1,
            StreamKernel::Triad => 2,
        }
    }
}

/// Record one STREAM kernel at vector length `vl`.
pub fn stream_trace(k: StreamKernel, vl: usize) -> Trace {
    match k {
        // MOV is an ORR alias on SVE; a one-op body keeps the trace
        // non-empty and the move bit-faithful.
        StreamKernel::Copy => Trace::record1(vl, |ctx, pg, x| ctx.orr_u(pg, x, x)),
        StreamKernel::Scale => Trace::record1(vl, |ctx, pg, x| {
            let s = ctx.dup_f64(STREAM_SCALAR);
            ctx.fmul(pg, x, &s)
        }),
        StreamKernel::Add => Trace::record2(vl, ookami_sve::SveCtx::fadd),
        StreamKernel::Triad => Trace::record2(vl, |ctx, pg, b, c| {
            let s = ctx.dup_f64(STREAM_SCALAR);
            ctx.fmla(pg, b, &s, c)
        }),
    }
}

/// Scalar reference, bit-identical to the emulated kernels: scale is a
/// bare product, triad a fused `s·c + b` (the emulator's FMLA is fused).
pub fn stream_ref(k: StreamKernel, a: &[f64], b: Option<&[f64]>) -> Vec<f64> {
    match k {
        StreamKernel::Copy => a.to_vec(),
        StreamKernel::Scale => a.iter().map(|&x| STREAM_SCALAR * x).collect(),
        StreamKernel::Add => {
            let b = b.expect("add takes two streams");
            a.iter().zip(b).map(|(&x, &y)| x + y).collect()
        }
        StreamKernel::Triad => {
            let b = b.expect("triad takes two streams");
            a.iter()
                .zip(b)
                .map(|(&x, &y)| STREAM_SCALAR.mul_add(y, x))
                .collect()
        }
    }
}

/// Run a recorded STREAM trace through the chosen executor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamExec {
    Interp,
    Replay,
    Compiled,
}

/// One entry point for the differential tests: run kernel `k` over the
/// stream(s) with `threads` workers (0 = auto, 1 = serial path).
pub fn run_stream(
    t: &Trace,
    k: StreamKernel,
    exec: StreamExec,
    threads: usize,
    a: &[f64],
    b: Option<&[f64]>,
) -> Vec<f64> {
    match (k.inputs(), exec, threads) {
        (1, StreamExec::Interp, _) => t.map(a),
        (1, StreamExec::Replay, 1) => t.replay_map(a),
        (1, StreamExec::Replay, n) => t.replay_par_map(n, a),
        (1, StreamExec::Compiled, 1) => t.compile().map(a),
        (1, StreamExec::Compiled, n) => t.compile().par_map(n, a),
        (2, StreamExec::Interp, _) => t.map2(a, b.expect("two streams")),
        (2, StreamExec::Replay, 1) => t.replay_map2(a, b.expect("two streams")),
        (2, StreamExec::Replay, n) => t.replay_par_map2(n, a, b.expect("two streams")),
        (2, StreamExec::Compiled, 1) => t.compile().map2(a, b.expect("two streams")),
        (2, StreamExec::Compiled, n) => t.compile().par_map2(n, a, b.expect("two streams")),
        _ => unreachable!("inputs() is 1 or 2"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_four_kernels_match_reference_bitwise() {
        let n = 77;
        let a: Vec<f64> = (0..n).map(|i| 1.0 + 0.5 * i as f64).collect();
        let b: Vec<f64> = (0..n).map(|i| 0.25 * i as f64 - 3.0).collect();
        for k in StreamKernel::ALL {
            let t = stream_trace(k, 8);
            let bb = (k.inputs() == 2).then_some(b.as_slice());
            let want = stream_ref(k, &a, bb);
            for exec in [StreamExec::Interp, StreamExec::Replay, StreamExec::Compiled] {
                let got = run_stream(&t, k, exec, 1, &a, bb);
                assert_eq!(got.len(), want.len());
                for i in 0..n {
                    assert_eq!(
                        want[i].to_bits(),
                        got[i].to_bits(),
                        "{} {exec:?} elem {i}",
                        k.name()
                    );
                }
            }
        }
    }

    #[test]
    fn copy_is_bit_faithful_for_nan_payloads() {
        let weird = f64::from_bits(0x7FF0_0000_0000_BEEF); // signaling-ish NaN payload
        let a = vec![weird, -0.0, f64::INFINITY, 1.5];
        let t = stream_trace(StreamKernel::Copy, 8);
        let y = t.replay_map(&a);
        for i in 0..a.len() {
            assert_eq!(a[i].to_bits(), y[i].to_bits());
        }
    }

    #[test]
    fn stream_traces_compile_natively() {
        // No gathers, no carries: the compiled engine must take the
        // native path for all four (SpMV takes the fallback — tested in
        // its own module).
        for k in StreamKernel::ALL {
            let t = stream_trace(k, 8);
            assert!(t.compile().is_native(), "{} fell back", k.name());
        }
    }
}
