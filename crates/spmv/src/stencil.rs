//! A Wilson-Dslash-flavored lattice stencil family.
//!
//! Lattice QCD's Dslash is, memory-wise, a nearest-neighbor gather over a
//! periodic lattice followed by a short arithmetic chain per site — the
//! second workload arXiv 2103.03013 models on A64FX. This module keeps
//! that shape at `f64` granularity:
//!
//! ```text
//! out[i] = mass·u[i] + kappa · Σ_d u[(i + d) mod n]
//! ```
//!
//! with 4 neighbors (±1, ±nx on a 2-D helical lattice) or 6 neighbors
//! (±1, ±nx, ±nx·ny in 3-D). The lattice size is a power of two, so the
//! periodic wrap is an `AND` with `n-1` — every gather index is provably
//! in `[0, n)`, which the `ookamicheck` bounds pass can see.
//!
//! The trace takes a single `f64` input (the site index), converts it
//! with `fcvtzs`, and builds every neighbor index in-register: that makes
//! the family expressible through the one-input `map` drivers on all
//! three executors, and — because the body is gather-heavy — the compiled
//! engine takes its replayer *fallback* path, which this family exists to
//! exercise (the STREAM family covers the native path).

use ookami_sve::{SveCtx, Trace, TraceBuilder, VVal};

/// Stencil geometry: neighbor offsets on a helical periodic lattice of
/// `n` sites (`n` a power of two).
#[derive(Debug, Clone)]
pub struct Stencil {
    pub n: usize,
    /// Neighbor offsets, already reduced to positive representatives
    /// mod `n` (so in-register index math never goes negative).
    pub offsets: Vec<usize>,
    pub mass: f64,
    pub kappa: f64,
}

impl Stencil {
    /// 4-point stencil on an `nx × ny` helical lattice (±1, ±nx).
    pub fn d2(nx: usize, ny: usize, mass: f64, kappa: f64) -> Stencil {
        let n = nx * ny;
        assert!(n.is_power_of_two(), "lattice size must be a power of two");
        Stencil {
            n,
            offsets: vec![1, n - 1, nx % n, (n - nx % n) % n],
            mass,
            kappa,
        }
    }

    /// 7-point stencil on an `nx × ny × nz` lattice (±1, ±nx, ±nx·ny).
    pub fn d3(nx: usize, ny: usize, nz: usize, mass: f64, kappa: f64) -> Stencil {
        let n = nx * ny * nz;
        assert!(n.is_power_of_two(), "lattice size must be a power of two");
        let (dx, dy) = (1, nx % n);
        let dz = (nx * ny) % n;
        Stencil {
            n,
            offsets: vec![dx, n - dx, dy, (n - dy) % n, dz, (n - dz) % n],
            mass,
            kappa,
        }
    }

    pub fn points(&self) -> usize {
        self.offsets.len() + 1
    }

    /// The site-index input every runner maps over: `0.0, 1.0, …`.
    pub fn sites_f64(&self) -> Vec<f64> {
        (0..self.n).map(|i| i as f64).collect()
    }

    /// Record the stencil over field `u` (len ≥ `n`; captured as the
    /// gather table). `x_uops` is the gather crack hint.
    pub fn trace(&self, u: &[f64], vl: usize, x_uops: u32) -> Trace {
        assert!(u.len() >= self.n);
        let mut b = TraceBuilder::new(vl);
        let pg = b.loop_pred();
        let sf = b.input_f64(); // ord 0: site index as f64
        b.begin_body();
        let ctx = b.ctx();
        let mask = ctx.dup_i64(self.n as i64 - 1);
        let ci = ctx.fcvtzs(&pg, &sf);
        let mut sum: Option<VVal> = None;
        for &d in &self.offsets {
            let dv = ctx.dup_i64(d as i64);
            let nb = ctx.add_i(&pg, &ci, &dv);
            let idx = ctx.and_u(&pg, &nb, &mask);
            let uv = ctx.ld1d_gather(&pg, u, &idx, x_uops);
            sum = Some(match sum {
                None => uv,
                Some(s) => ctx.fadd(&pg, &s, &uv),
            });
        }
        let s = sum.expect("a stencil has at least one neighbor");
        let center = ctx.ld1d_gather(&pg, u, &ci, x_uops);
        let massv = ctx.dup_f64(self.mass);
        let kappav = ctx.dup_f64(self.kappa);
        let t = ctx.fmul(&pg, &center, &massv);
        let out = ctx.fmla(&pg, &t, &kappav, &s);
        b.finish(&[&out])
    }

    /// Fused scalar reference: neighbor sum in offset order, then
    /// `kappa·sum + mass·u[i]` with the product rounded once and the
    /// final FMA fused — the emulated body's exact rounding sequence.
    pub fn apply_ref(&self, u: &[f64]) -> Vec<f64> {
        assert!(u.len() >= self.n);
        (0..self.n)
            .map(|i| {
                let mut s = u[(i + self.offsets[0]) & (self.n - 1)];
                for &d in &self.offsets[1..] {
                    s += u[(i + d) & (self.n - 1)];
                }
                self.kappa.mul_add(s, self.mass * u[i])
            })
            .collect()
    }

    /// The interpreter path, mirroring [`Stencil::trace`] op for op (the
    /// `map` driver stages inputs identically, so this is only used by
    /// counter-identity tests that want an explicit context).
    pub fn apply_interp(&self, u: &[f64], vl: usize, x_uops: u32) -> Vec<f64> {
        assert!(u.len() >= self.n);
        let mut ctx = SveCtx::new(vl);
        let mut y = Vec::with_capacity(self.n);
        let mut i = 0;
        while i < self.n {
            let pg = ctx.whilelt(i, self.n);
            let nr = vl.min(self.n - i);
            let mut lanes = vec![0.0; vl];
            for (l, lane) in lanes.iter_mut().enumerate().take(nr) {
                *lane = (i + l) as f64;
            }
            ookami_core::obs::add(ookami_core::obs::Counter::BytesLoaded, 8 * nr as u64);
            let sf = ctx.input_f64(&lanes);
            let mask = ctx.dup_i64(self.n as i64 - 1);
            let ci = ctx.fcvtzs(&pg, &sf);
            let mut sum: Option<VVal> = None;
            for &d in &self.offsets {
                let dv = ctx.dup_i64(d as i64);
                let nb = ctx.add_i(&pg, &ci, &dv);
                let idx = ctx.and_u(&pg, &nb, &mask);
                let uv = ctx.ld1d_gather(&pg, u, &idx, x_uops);
                sum = Some(match sum {
                    None => uv,
                    Some(s) => ctx.fadd(&pg, &s, &uv),
                });
            }
            let s = sum.expect("a stencil has at least one neighbor");
            let center = ctx.ld1d_gather(&pg, u, &ci, x_uops);
            let massv = ctx.dup_f64(self.mass);
            let kappav = ctx.dup_f64(self.kappa);
            let t = ctx.fmul(&pg, &center, &massv);
            let out = ctx.fmla(&pg, &t, &kappav, &s);
            for l in 0..nr {
                y.push(out.f64_lane(l));
            }
            i += vl;
        }
        y
    }

    /// Deterministic test field: a smooth wave plus a site-local term.
    pub fn field(&self) -> Vec<f64> {
        (0..self.n)
            .map(|i| 1.0 + 0.001 * i as f64 + (0.1 * i as f64).sin())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn d2_executors_agree_bitwise() {
        let st = Stencil::d2(8, 8, 0.5, -0.125);
        let u = st.field();
        let want = st.apply_ref(&u);
        let t = st.trace(&u, 8, 8);
        let sites = st.sites_f64();
        let yi = t.map(&sites);
        let yr = t.replay_map(&sites);
        let yc = t.compile().map(&sites);
        let ym = st.apply_interp(&u, 8, 8);
        for i in 0..st.n {
            assert_eq!(want[i].to_bits(), yi[i].to_bits(), "map site {i}");
            assert_eq!(want[i].to_bits(), yr[i].to_bits(), "replay site {i}");
            assert_eq!(want[i].to_bits(), yc[i].to_bits(), "compiled site {i}");
            assert_eq!(want[i].to_bits(), ym[i].to_bits(), "interp site {i}");
        }
    }

    #[test]
    fn d3_wraps_periodically() {
        let st = Stencil::d3(4, 4, 4, 1.0, 1.0);
        let u = st.field();
        let y = st.apply_ref(&u);
        // Site 0's -1 neighbor is site n-1: verify the wrap contributes.
        let manual: f64 = u[1] + u[st.n - 1] + u[4] + u[st.n - 4] + u[16] + u[st.n - 16];
        assert_eq!(y[0].to_bits(), 1.0f64.mul_add(manual, u[0]).to_bits());
    }

    #[test]
    fn gather_heavy_stencil_takes_compiled_fallback() {
        let st = Stencil::d2(8, 8, 0.5, -0.125);
        let u = st.field();
        let t = st.trace(&u, 8, 8);
        // The compiled engine must still be bit-identical, but via its
        // replayer fallback: gathers keep the body off the native path.
        assert!(!t.compile().is_native());
    }
}
