//! Irregular-memory workload families for the Ookami model stack.
//!
//! The source paper's suite is dense-kernel-heavy; the A64FX modeling
//! literature that extends its machine model (Alappat, Hager, Wellein
//! et al. — arXiv 2103.03013, 2009.13903) shows the interesting behavior
//! lives in irregular, bandwidth-bound kernels. This crate adds those
//! workloads as first-class citizens of the emulator → trace → obs →
//! check stack:
//!
//! * [`matrix`] — CRS and SELL-C-σ sparse formats with deterministic
//!   synthetic generators (banded, fixed-nnz random, ragged random,
//!   5-point stencil-derived) and fused scalar references;
//! * [`emulated`] — row-per-lane SpMV kernels recorded as SVE traces,
//!   bit- and counter-identical across interpreter / replayer / parallel
//!   replay, with CRS gathering everything and SELL-C-σ streaming its
//!   slabs;
//! * [`stream`] — the four STREAM kernels (copy/scale/add/triad) as
//!   pure streaming traces, native-compilable;
//! * [`stencil`] — a Wilson-Dslash-flavored 4/7-point periodic lattice
//!   stencil, gather-heavy on purpose so the compiled engine exercises
//!   its replayer fallback;
//! * [`memtrace`] — element-level address streams per family for
//!   `ookami_mem::CacheSim`, feeding the ECM model's transfer terms.
//!
//! The ECM (execution-cache-memory) model itself lives in
//! `ookami_core::obs::derive` next to the roofline; the `spmv` probe in
//! `ookami-bench` ties the two together into `BENCH_spmv.json`.

pub mod emulated;
pub mod matrix;
pub mod memtrace;
pub mod stencil;
pub mod stream;

pub use emulated::{
    crs_trace, run_crs_interp, run_crs_replay, run_crs_replay_par, run_sell_interp,
    run_sell_replay, run_sell_replay_par, sell_trace, GatherHints,
};
pub use matrix::{Crs, SellCSigma};
pub use stencil::Stencil;
pub use stream::{run_stream, stream_ref, stream_trace, StreamExec, StreamKernel, STREAM_SCALAR};
