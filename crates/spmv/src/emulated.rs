//! Row-per-lane SpMV kernels through the SVE trace engine.
//!
//! Both formats use the same execution shape: lane `l` of a vector block
//! owns one matrix row, and step `k` folds that row's `k`-th entry into a
//! carried accumulator with one predicated FMA. An activity stream
//! (`1.0` while `k < nnz(row)`, else `0.0`) drives a `fcmgt`-derived
//! predicate, so exhausted rows and SELL padding are architecturally
//! inactive — they touch no memory and bump no gather counters.
//!
//! * **CRS** binds an index stream and gathers *everything*: the value,
//!   the column (stored as an exact-integer `f64` table, converted back
//!   with `fcvtzs`), and finally `x[col]` — three gathers per active
//!   lane-step, the fully irregular end of the spectrum.
//! * **SELL-C-σ** streams the value/column slabs contiguously
//!   (`bind_f64`/`bind_i64`, C-lane chunks are column-major by
//!   construction) and gathers only `x[col]` — one gather per active
//!   lane-step, the vectorization win the format exists for.
//!
//! Every runner mirrors the recorded trace op for op, so interpreter,
//! replayer and parallel replay agree in bits *and* obs counter totals;
//! gather-element counters come out to exactly `3·nnz` (CRS) and `nnz`
//! (SELL). Row blocks are independent accumulation chains — the replayer
//! runs many per arena via [`ookami_sve::Replayer::reset_carries`].

use crate::matrix::{Crs, SellCSigma};
use ookami_core::obs::{self, Counter};
use ookami_core::Schedule;
use ookami_sve::{SveCtx, Trace, TraceBuilder};

/// Gather micro-op hints baked into a recorded trace (see
/// `ookami_mem::analyze_indices`; the port model consumes them, the
/// numerics never do). Identity tests only need both executors to see
/// the same constants, which holds because the hints are recorded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GatherHints {
    /// Crack factor for the CRS value/column gathers (quasi-streaming
    /// indices `ptr[row] + k`).
    pub stream_uops: u32,
    /// Crack factor for the `x[col]` gather (matrix-dependent).
    pub x_uops: u32,
}

impl GatherHints {
    pub fn uniform(uops: u32) -> GatherHints {
        GatherHints {
            stream_uops: uops,
            x_uops: uops,
        }
    }
}

/// The CRS inner kernel as a trace: activity + value-index inputs, three
/// gathers, one carried FMA. Captures `val`, `col` (as f64) and `x` as
/// gather tables, so the trace is specific to one `(matrix, x)` pair.
pub fn crs_trace(m: &Crs, x: &[f64], vl: usize, hints: GatherHints) -> Trace {
    assert!(x.len() >= m.n_cols);
    let colf: Vec<f64> = m.col.iter().map(|&c| c as f64).collect();
    let mut b = TraceBuilder::new(vl);
    let pg = b.loop_pred();
    let act = b.input_f64(); // ord 0: 1.0 while the lane's row has entries
    let vidx = b.input_i64(); // ord 1: ptr[row] + k (0 when inactive)
    b.begin_body();
    let ctx = b.ctx();
    let half = ctx.dup_f64(0.5);
    let acc0 = ctx.dup_f64(0.0);
    let p = ctx.fcmgt(&pg, &act, &half);
    let a = ctx.ld1d_gather(&p, &m.val, &vidx, hints.stream_uops);
    let cf = ctx.ld1d_gather(&p, &colf, &vidx, hints.stream_uops);
    let ci = ctx.fcvtzs(&p, &cf);
    let xv = ctx.ld1d_gather(&p, x, &ci, hints.x_uops);
    let acc1 = ctx.fmla(&p, &acc0, &a, &xv);
    b.carry(&acc0, &acc1);
    b.finish(&[&acc1])
}

/// The SELL-C-σ inner kernel as a trace: activity + streamed value/column
/// inputs, a single `x` gather, one carried FMA. `vl` must equal the
/// format's chunk height C.
pub fn sell_trace(s: &SellCSigma, x: &[f64], hints: GatherHints) -> Trace {
    assert!(x.len() >= s.n_cols);
    let mut b = TraceBuilder::new(s.c);
    let pg = b.loop_pred();
    let act = b.input_f64(); // ord 0
    let a = b.input_f64(); // ord 1: value slab, streamed
    let ci = b.input_i64(); // ord 2: column slab, streamed
    b.begin_body();
    let ctx = b.ctx();
    let half = ctx.dup_f64(0.5);
    let acc0 = ctx.dup_f64(0.0);
    let p = ctx.fcmgt(&pg, &act, &half);
    let xv = ctx.ld1d_gather(&p, x, &ci, hints.x_uops);
    let acc1 = ctx.fmla(&p, &acc0, &a, &xv);
    b.carry(&acc0, &acc1);
    b.finish(&[&acc1])
}

/// CRS input streams for step `k` of the block starting at `r0`
/// (`nr ≤ vl` live rows): activity flags and value indices.
fn crs_streams(m: &Crs, r0: usize, nr: usize, k: usize) -> (Vec<f64>, Vec<i64>) {
    let mut act = Vec::with_capacity(nr);
    let mut vidx = Vec::with_capacity(nr);
    for l in 0..nr {
        let r = r0 + l;
        if k < m.row_nnz(r) {
            act.push(1.0);
            vidx.push((m.ptr[r] + k) as i64);
        } else {
            act.push(0.0);
            vidx.push(0);
        }
    }
    (act, vidx)
}

/// SELL input streams for step `j` of chunk `ck` (`nr ≤ C` live rows):
/// activity flags and the contiguous value/column slab slices.
fn sell_streams(s: &SellCSigma, ck: usize, nr: usize, j: usize) -> (Vec<f64>, Vec<f64>, Vec<i64>) {
    let p0 = ck * s.c;
    let o = s.chunk_ptr[ck] + j * s.c;
    let act: Vec<f64> = (0..nr)
        .map(|l| if j < s.row_len[p0 + l] { 1.0 } else { 0.0 })
        .collect();
    let val = s.val[o..o + nr].to_vec();
    let col: Vec<i64> = s.col[o..o + nr].iter().map(|&c| c as i64).collect();
    (act, val, col)
}

/// CRS SpMV through the per-op interpreter — the measured baseline the
/// replayer is differential-tested against. Mirrors [`crs_trace`]'s body
/// exactly (same ops, same predicates, manual byte accounting matching
/// `Replayer::bind_*`), so counters agree bit for bit.
pub fn run_crs_interp(m: &Crs, x: &[f64], vl: usize, hints: GatherHints) -> Vec<f64> {
    assert!(x.len() >= m.n_cols);
    let colf: Vec<f64> = m.col.iter().map(|&c| c as f64).collect();
    let mut ctx = SveCtx::new(vl);
    let mut y = vec![0.0; m.n_rows];
    let mut r0 = 0;
    while r0 < m.n_rows {
        let nr = vl.min(m.n_rows - r0);
        let kmax = (0..nr).map(|l| m.row_nnz(r0 + l)).max().unwrap_or(0);
        if kmax > 0 {
            let pg = ctx.whilelt(r0, m.n_rows);
            let half = ctx.dup_f64(0.5);
            let mut acc = ctx.dup_f64(0.0);
            for k in 0..kmax {
                let (actl, vidxl) = crs_streams(m, r0, nr, k);
                let (actl, vidxl) = (pad_f64(&actl, vl), pad_i64(&vidxl, vl));
                // Staged input loads: count the bytes `Replayer::bind_*`
                // counts for this step.
                obs::add(Counter::BytesLoaded, 8 * nr as u64);
                let act = ctx.input_f64(&actl);
                obs::add(Counter::BytesLoaded, 8 * nr as u64);
                let vidx = ctx.input_i64(&vidxl);
                let p = ctx.fcmgt(&pg, &act, &half);
                let a = ctx.ld1d_gather(&p, &m.val, &vidx, hints.stream_uops);
                let cf = ctx.ld1d_gather(&p, &colf, &vidx, hints.stream_uops);
                let ci = ctx.fcvtzs(&p, &cf);
                let xv = ctx.ld1d_gather(&p, x, &ci, hints.x_uops);
                acc = ctx.fmla(&p, &acc, &a, &xv);
            }
            for l in 0..nr {
                y[r0 + l] = acc.f64_lane(l);
            }
        }
        r0 += vl;
    }
    y
}

/// SELL-C-σ SpMV through the interpreter, mirroring [`sell_trace`].
pub fn run_sell_interp(s: &SellCSigma, x: &[f64], hints: GatherHints) -> Vec<f64> {
    assert!(x.len() >= s.n_cols);
    let c = s.c;
    let mut ctx = SveCtx::new(c);
    let mut y = vec![0.0; s.n_rows];
    for ck in 0..s.n_chunks() {
        let p0 = ck * c;
        let nr = (p0 + c).min(s.n_rows) - p0;
        let kmax = s.chunk_len[ck];
        if kmax > 0 {
            let pg = ctx.whilelt(p0, s.n_rows);
            let half = ctx.dup_f64(0.5);
            let mut acc = ctx.dup_f64(0.0);
            for j in 0..kmax {
                let (actl, vall, coll) = sell_streams(s, ck, nr, j);
                let (actl, vall, coll) = (pad_f64(&actl, c), pad_f64(&vall, c), pad_i64(&coll, c));
                obs::add(Counter::BytesLoaded, 8 * nr as u64);
                let act = ctx.input_f64(&actl);
                obs::add(Counter::BytesLoaded, 8 * nr as u64);
                let a = ctx.input_f64(&vall);
                obs::add(Counter::BytesLoaded, 8 * nr as u64);
                let ci = ctx.input_i64(&coll);
                let p = ctx.fcmgt(&pg, &act, &half);
                let xv = ctx.ld1d_gather(&p, x, &ci, hints.x_uops);
                acc = ctx.fmla(&p, &acc, &a, &xv);
            }
            for l in 0..nr {
                y[s.row_order[p0 + l]] = acc.f64_lane(l);
            }
        }
    }
    y
}

fn pad_f64(v: &[f64], w: usize) -> Vec<f64> {
    let mut out = vec![0.0; w];
    out[..v.len()].copy_from_slice(v);
    out
}

fn pad_i64(v: &[i64], w: usize) -> Vec<i64> {
    let mut out = vec![0i64; w];
    out[..v.len()].copy_from_slice(v);
    out
}

/// Replay one CRS row-block range `[rows.0, rows.1)` into `y` (indexed
/// from `rows.0`) through a fresh replayer of `t`.
fn crs_replay_range(t: &Trace, m: &Crs, rows: (usize, usize), y: &mut [f64]) {
    let vl = t.vl();
    let out = t.output(0);
    let mut r = t.replayer();
    let mut r0 = rows.0;
    while r0 < rows.1 {
        let nr = vl.min(rows.1 - r0);
        let kmax = (0..nr).map(|l| m.row_nnz(r0 + l)).max().unwrap_or(0);
        if kmax > 0 {
            r.reset_carries();
            r.set_block(r0, m.n_rows);
            for k in 0..kmax {
                let (act, vidx) = crs_streams(m, r0, nr, k);
                r.bind_f64(0, &act);
                r.bind_i64(1, &vidx);
                r.step();
                r.advance();
            }
            for l in 0..nr {
                y[r0 - rows.0 + l] = r.lane_f64(out, l);
            }
        }
        r0 += vl;
    }
}

/// CRS SpMV through the trace replayer. `t` must come from [`crs_trace`]
/// over the same `(m, x)`.
pub fn run_crs_replay(t: &Trace, m: &Crs) -> Vec<f64> {
    let mut y = vec![0.0; m.n_rows];
    crs_replay_range(t, m, (0, m.n_rows), &mut y);
    y
}

/// Parallel CRS replay over the fork/join pool: disjoint row ranges, one
/// worker-resident replayer per task. Bitwise equal to serial replay for
/// any thread count (0 = auto).
pub fn run_crs_replay_par(threads: usize, t: &Trace, m: &Crs) -> Vec<f64> {
    let vl = t.vl();
    let mut y = vec![0.0; m.n_rows];
    // Whole vl-blocks per task so no block straddles two workers.
    let chunk = chunk_rows(m.n_rows, vl);
    ookami_core::par_chunks_mut_with(threads, &mut y, chunk, Schedule::Static, |ci, part| {
        let r0 = ci * chunk;
        crs_replay_range(t, m, (r0, r0 + part.len()), part);
    });
    y
}

fn sell_replay_chunks(t: &Trace, s: &SellCSigma, chunks: (usize, usize), y: &mut [f64]) {
    let c = s.c;
    let out = t.output(0);
    let mut r = t.replayer();
    for ck in chunks.0..chunks.1 {
        let p0 = ck * c;
        let nr = (p0 + c).min(s.n_rows) - p0;
        let kmax = s.chunk_len[ck];
        if kmax > 0 {
            r.reset_carries();
            r.set_block(p0, s.n_rows);
            for j in 0..kmax {
                let (act, val, col) = sell_streams(s, ck, nr, j);
                r.bind_f64(0, &act);
                r.bind_f64(1, &val);
                r.bind_i64(2, &col);
                r.step();
                r.advance();
            }
            for l in 0..nr {
                y[p0 - chunks.0 * c + l] = r.lane_f64(out, l);
            }
        }
    }
}

/// SELL-C-σ SpMV through the trace replayer; returns `y` in original row
/// order. `t` must come from [`sell_trace`] over the same `(s, x)`.
pub fn run_sell_replay(t: &Trace, s: &SellCSigma) -> Vec<f64> {
    let mut packed = vec![0.0; s.n_chunks() * s.c];
    sell_replay_chunks(t, s, (0, s.n_chunks()), &mut packed);
    unpermute(s, &packed)
}

/// Parallel SELL replay: disjoint chunk ranges per task.
pub fn run_sell_replay_par(threads: usize, t: &Trace, s: &SellCSigma) -> Vec<f64> {
    let mut packed = vec![0.0; s.n_chunks() * s.c];
    let c = s.c;
    let chunk = chunk_rows(s.n_chunks(), 1) * c;
    ookami_core::par_chunks_mut_with(threads, &mut packed, chunk, Schedule::Static, |ci, part| {
        let ck0 = ci * (chunk / c);
        sell_replay_chunks(t, s, (ck0, ck0 + part.len() / c), part);
    });
    unpermute(s, &packed)
}

fn unpermute(s: &SellCSigma, packed: &[f64]) -> Vec<f64> {
    let mut y = vec![0.0; s.n_rows];
    for (p, &r) in s.row_order.iter().enumerate() {
        y[r] = packed[p];
    }
    y
}

/// Rows (or chunks) per parallel task: at least one vector block, at
/// most ~64 blocks, so small matrices still fan out.
fn chunk_rows(total: usize, unit: usize) -> usize {
    let blocks = total.div_ceil(unit).max(1);
    let per_task = blocks
        .div_ceil(ookami_core::auto_threads().max(1) * 4)
        .max(1);
    per_task.min(64) * unit
}

#[cfg(test)]
mod tests {
    use super::*;

    fn x_for(n: usize) -> Vec<f64> {
        (0..n).map(|i| 0.5 + 0.125 * i as f64).collect()
    }

    #[test]
    fn crs_interp_replay_ref_agree_bitwise() {
        let m = Crs::ragged(53, 40, 9, 5);
        let x = x_for(m.n_cols);
        let hints = GatherHints::uniform(8);
        let want = m.spmv_ref(&x);
        let yi = run_crs_interp(&m, &x, 8, hints);
        let t = crs_trace(&m, &x, 8, hints);
        let yr = run_crs_replay(&t, &m);
        let yp = run_crs_replay_par(4, &t, &m);
        for r in 0..m.n_rows {
            assert_eq!(want[r].to_bits(), yi[r].to_bits(), "interp row {r}");
            assert_eq!(want[r].to_bits(), yr[r].to_bits(), "replay row {r}");
            assert_eq!(want[r].to_bits(), yp[r].to_bits(), "par row {r}");
        }
    }

    #[test]
    fn sell_executors_agree_bitwise_with_crs() {
        let m = Crs::ragged(41, 32, 7, 9);
        let x = x_for(m.n_cols);
        let hints = GatherHints::uniform(8);
        let want = m.spmv_ref(&x);
        let s = SellCSigma::from_crs(&m, 8, 16);
        let yi = run_sell_interp(&s, &x, hints);
        let t = sell_trace(&s, &x, hints);
        let yr = run_sell_replay(&t, &s);
        let yp = run_sell_replay_par(3, &t, &s);
        for r in 0..m.n_rows {
            assert_eq!(want[r].to_bits(), yi[r].to_bits(), "interp row {r}");
            assert_eq!(want[r].to_bits(), yr[r].to_bits(), "replay row {r}");
            assert_eq!(want[r].to_bits(), yp[r].to_bits(), "par row {r}");
        }
    }

    #[test]
    fn gather_elems_count_nnz_exactly() {
        let m = Crs::ragged(29, 24, 6, 13);
        let x = x_for(m.n_cols);
        let hints = GatherHints::uniform(8);
        if !obs::enabled() {
            return;
        }
        let t0 = obs::snapshot();
        let _ = run_crs_interp(&m, &x, 8, hints);
        let crs_elems = obs::snapshot().since(&t0).get(Counter::GatherElems);
        assert_eq!(crs_elems, 3 * m.nnz() as u64);
        let s = SellCSigma::from_crs(&m, 8, 29);
        let t1 = obs::snapshot();
        let _ = run_sell_interp(&s, &x, hints);
        let sell_elems = obs::snapshot().since(&t1).get(Counter::GatherElems);
        assert_eq!(sell_elems, m.nnz() as u64);
    }
}
