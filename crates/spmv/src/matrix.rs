//! Sparse-matrix storage formats and deterministic synthetic generators.
//!
//! Two formats from the A64FX SpMV modeling literature (Alappat et al.,
//! arXiv 2103.03013 / 2009.13903):
//!
//! * **CRS** (compressed row storage) — the baseline: `ptr`/`col`/`val`
//!   with rows stored back to back. Vectorizing it row-per-lane leaves
//!   lanes idle whenever row lengths differ inside one vector block.
//! * **SELL-C-σ** — rows are sorted by length inside windows of σ rows,
//!   then packed into chunks of C rows stored column-major and padded to
//!   the chunk's longest row. Sorting makes chunks near-uniform, so the
//!   same row-per-lane kernel wastes far fewer lanes.
//!
//! Both formats preserve each row's entry order, and every SpMV in this
//! crate (scalar references and emulated kernels alike) accumulates one
//! row strictly sequentially with fused multiply-adds — so CRS, SELL-C-σ
//! (any C, any σ) and the interpreter/replayer/compiled executors all
//! produce **bit-identical** `y` vectors. The equivalence proptests in
//! `tests/format_equiv.rs` pin this.

/// Deterministic 64-bit mixer (splitmix64) — the generators' only
/// randomness source, so every synthetic matrix is reproducible from its
/// seed alone.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A value in `(0, 1]` from one mixer draw.
fn unit_f64(state: &mut u64) -> f64 {
    ((splitmix64(state) >> 11) + 1) as f64 / (1u64 << 53) as f64
}

/// Compressed row storage: row `r` owns `col[ptr[r]..ptr[r+1]]` /
/// `val[ptr[r]..ptr[r+1]]`, columns ascending within each row.
#[derive(Debug, Clone)]
pub struct Crs {
    pub n_rows: usize,
    pub n_cols: usize,
    /// Row start offsets, `n_rows + 1` entries.
    pub ptr: Vec<usize>,
    pub col: Vec<usize>,
    pub val: Vec<f64>,
}

impl Crs {
    /// Build from per-row `(col, val)` lists (cols must be in-bounds;
    /// per-row order is preserved verbatim).
    pub fn from_rows(n_cols: usize, rows: &[Vec<(usize, f64)>]) -> Crs {
        let mut ptr = Vec::with_capacity(rows.len() + 1);
        let mut col = Vec::new();
        let mut val = Vec::new();
        ptr.push(0);
        for row in rows {
            for &(c, v) in row {
                assert!(c < n_cols, "column {c} out of bounds (n_cols {n_cols})");
                col.push(c);
                val.push(v);
            }
            ptr.push(col.len());
        }
        Crs {
            n_rows: rows.len(),
            n_cols,
            ptr,
            col,
            val,
        }
    }

    pub fn nnz(&self) -> usize {
        self.val.len()
    }

    pub fn row_nnz(&self, r: usize) -> usize {
        self.ptr[r + 1] - self.ptr[r]
    }

    pub fn max_row_nnz(&self) -> usize {
        (0..self.n_rows).map(|r| self.row_nnz(r)).max().unwrap_or(0)
    }

    /// Banded matrix: row `r` holds columns `r-half_bw ..= r+half_bw`
    /// clipped to the square, value `1/(1+|r-c|)` — the regular,
    /// cache-friendly end of the spectrum.
    pub fn banded(n: usize, half_bw: usize) -> Crs {
        let rows: Vec<Vec<(usize, f64)>> = (0..n)
            .map(|r| {
                (r.saturating_sub(half_bw)..=(r + half_bw).min(n.saturating_sub(1)))
                    .map(|c| (c, 1.0 / (1.0 + r.abs_diff(c) as f64)))
                    .collect()
            })
            .collect();
        Crs::from_rows(n, &rows)
    }

    /// Fixed nnz-per-row with uniformly random distinct columns — the
    /// gather-hostile pattern behind the papers' "full" index vectors.
    pub fn random_fixed(n_rows: usize, n_cols: usize, per_row: usize, seed: u64) -> Crs {
        assert!(per_row <= n_cols);
        let mut st = seed ^ 0x5EED_0001;
        let rows: Vec<Vec<(usize, f64)>> = (0..n_rows)
            .map(|_| {
                let mut cols: Vec<usize> = Vec::with_capacity(per_row);
                while cols.len() < per_row {
                    let c = (splitmix64(&mut st) % n_cols as u64) as usize;
                    if !cols.contains(&c) {
                        cols.push(c);
                    }
                }
                cols.sort_unstable();
                cols.into_iter().map(|c| (c, unit_f64(&mut st))).collect()
            })
            .collect();
        Crs::from_rows(n_cols, &rows)
    }

    /// Ragged random matrix: row lengths drawn uniformly from
    /// `0..=max_per_row` — the worst case for row-per-lane CRS (every
    /// vector block runs to its longest row) and the case SELL-C-σ's
    /// sorting is designed to fix. Empty rows are legal and exercised.
    pub fn ragged(n_rows: usize, n_cols: usize, max_per_row: usize, seed: u64) -> Crs {
        assert!(max_per_row <= n_cols);
        let mut st = seed ^ 0x5EED_0002;
        let rows: Vec<Vec<(usize, f64)>> = (0..n_rows)
            .map(|_| {
                let k = (splitmix64(&mut st) % (max_per_row as u64 + 1)) as usize;
                let mut cols: Vec<usize> = Vec::with_capacity(k);
                while cols.len() < k {
                    let c = (splitmix64(&mut st) % n_cols as u64) as usize;
                    if !cols.contains(&c) {
                        cols.push(c);
                    }
                }
                cols.sort_unstable();
                cols.into_iter().map(|c| (c, unit_f64(&mut st))).collect()
            })
            .collect();
        Crs::from_rows(n_cols, &rows)
    }

    /// 5-point Laplacian on an `nx × ny` grid (Dirichlet boundaries):
    /// the stencil-derived sparsity pattern — short rows, strong column
    /// locality, the matrix the QCD-style stencil family mirrors.
    pub fn stencil5(nx: usize, ny: usize) -> Crs {
        let n = nx * ny;
        let site = |x: usize, y: usize| y * nx + x;
        let rows: Vec<Vec<(usize, f64)>> = (0..n)
            .map(|i| {
                let (x, y) = (i % nx, i / nx);
                let mut row = Vec::with_capacity(5);
                if y > 0 {
                    row.push((site(x, y - 1), -1.0));
                }
                if x > 0 {
                    row.push((site(x - 1, y), -1.0));
                }
                row.push((i, 4.0));
                if x + 1 < nx {
                    row.push((site(x + 1, y), -1.0));
                }
                if y + 1 < ny {
                    row.push((site(x, y + 1), -1.0));
                }
                row
            })
            .collect();
        Crs::from_rows(n, &rows)
    }

    /// Fused-FMA scalar reference: `y[r] = Σ val·x[col]`, one row at a
    /// time in stored order, each term folded in with `mul_add` — the
    /// exact per-row operation sequence of the emulated kernels, hence
    /// bit-identical to them.
    pub fn spmv_ref(&self, x: &[f64]) -> Vec<f64> {
        assert!(x.len() >= self.n_cols);
        (0..self.n_rows)
            .map(|r| {
                let mut acc = 0.0f64;
                for j in self.ptr[r]..self.ptr[r + 1] {
                    acc = self.val[j].mul_add(x[self.col[j]], acc);
                }
                acc
            })
            .collect()
    }

    /// Lane-slots a row-per-lane kernel at width `vl` spends on this
    /// matrix in original row order: each block of `vl` rows runs to its
    /// longest member. The CRS side of the SELL-C-σ padding comparison.
    pub fn block_padded_nnz(&self, vl: usize) -> usize {
        assert!(vl > 0);
        (0..self.n_rows)
            .step_by(vl)
            .map(|r0| {
                let end = (r0 + vl).min(self.n_rows);
                let kmax = (r0..end).map(|r| self.row_nnz(r)).max().unwrap_or(0);
                vl * kmax
            })
            .sum()
    }
}

/// SELL-C-σ: σ-window length-sorted rows packed into C-row chunks stored
/// column-major (`slab[chunk_ptr[k] + j*C + lane]`), padded per chunk.
#[derive(Debug, Clone)]
pub struct SellCSigma {
    pub c: usize,
    pub sigma: usize,
    pub n_rows: usize,
    pub n_cols: usize,
    pub nnz: usize,
    /// `row_order[p]` = original row stored at packed position `p`
    /// (chunk `p / C`, lane `p % C`).
    pub row_order: Vec<usize>,
    /// nnz of the original row at each packed position.
    pub row_len: Vec<usize>,
    /// Slab offset of each chunk.
    pub chunk_ptr: Vec<usize>,
    /// Padded length (longest row) of each chunk.
    pub chunk_len: Vec<usize>,
    /// Column slab; padding entries hold the in-bounds sentinel 0.
    pub col: Vec<usize>,
    /// Value slab; padding entries hold 0.0.
    pub val: Vec<f64>,
}

impl SellCSigma {
    /// Pack `m` with chunk height `c` and sort window `sigma` (≥ 1; a
    /// window of 1 disables sorting, `sigma >= n_rows` sorts globally).
    /// Sorting is stable on descending row length, so the permutation is
    /// deterministic.
    pub fn from_crs(m: &Crs, c: usize, sigma: usize) -> SellCSigma {
        assert!(c > 0 && sigma > 0);
        let n = m.n_rows;
        let mut row_order: Vec<usize> = (0..n).collect();
        for w0 in (0..n).step_by(sigma) {
            let w1 = (w0 + sigma).min(n);
            row_order[w0..w1].sort_by_key(|&r| std::cmp::Reverse(m.row_nnz(r)));
        }
        let row_len: Vec<usize> = row_order.iter().map(|&r| m.row_nnz(r)).collect();
        let n_chunks = n.div_ceil(c);
        let mut chunk_ptr = Vec::with_capacity(n_chunks);
        let mut chunk_len = Vec::with_capacity(n_chunks);
        let mut col = Vec::new();
        let mut val = Vec::new();
        for k in 0..n_chunks {
            let p0 = k * c;
            let rows = (p0 + c).min(n) - p0;
            let kmax = row_len[p0..p0 + rows].iter().copied().max().unwrap_or(0);
            chunk_ptr.push(col.len());
            chunk_len.push(kmax);
            // Column-major chunk: step j holds lane l's j-th entry. Full
            // C lanes even in a partial final chunk, so the slab layout
            // is uniform; phantom lanes pad like short rows.
            for j in 0..kmax {
                for l in 0..c {
                    let (cc, vv) = if l < rows && j < row_len[p0 + l] {
                        let r = row_order[p0 + l];
                        let o = m.ptr[r] + j;
                        (m.col[o], m.val[o])
                    } else {
                        (0, 0.0)
                    };
                    col.push(cc);
                    val.push(vv);
                }
            }
        }
        SellCSigma {
            c,
            sigma,
            n_rows: n,
            n_cols: m.n_cols,
            nnz: m.nnz(),
            row_order,
            row_len,
            chunk_ptr,
            chunk_len,
            col,
            val,
        }
    }

    pub fn n_chunks(&self) -> usize {
        self.chunk_len.len()
    }

    /// Total lane-slots including padding — the SELL side of the lane
    /// utilization comparison. Sorting can only lower this below
    /// [`Crs::block_padded_nnz`] at the same width.
    pub fn padded_nnz(&self) -> usize {
        self.chunk_len.iter().map(|&k| self.c * k).sum()
    }

    /// Fraction of padded lane-slots holding real entries.
    pub fn lane_utilization(&self) -> f64 {
        let p = self.padded_nnz();
        if p == 0 {
            1.0
        } else {
            self.nnz as f64 / p as f64
        }
    }

    /// Fused-FMA scalar reference, bit-identical to [`Crs::spmv_ref`]
    /// on the source matrix: each row still accumulates its own entries
    /// in original order, only the row visit order changes.
    pub fn spmv_ref(&self, x: &[f64]) -> Vec<f64> {
        assert!(x.len() >= self.n_cols);
        let mut y = vec![0.0; self.n_rows];
        for k in 0..self.n_chunks() {
            let p0 = k * self.c;
            let rows = (p0 + self.c).min(self.n_rows) - p0;
            for l in 0..rows {
                let mut acc = 0.0f64;
                for j in 0..self.row_len[p0 + l] {
                    let o = self.chunk_ptr[k] + j * self.c + l;
                    acc = self.val[o].mul_add(x[self.col[o]], acc);
                }
                y[self.row_order[p0 + l]] = acc;
            }
        }
        y
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn x_for(n: usize) -> Vec<f64> {
        (0..n).map(|i| 1.0 + 0.25 * i as f64).collect()
    }

    #[test]
    fn banded_shape() {
        let m = Crs::banded(10, 2);
        assert_eq!(m.n_rows, 10);
        assert_eq!(m.row_nnz(0), 3);
        assert_eq!(m.row_nnz(5), 5);
        assert_eq!(m.max_row_nnz(), 5);
    }

    #[test]
    fn generators_are_deterministic() {
        let a = Crs::random_fixed(20, 40, 6, 7);
        let b = Crs::random_fixed(20, 40, 6, 7);
        assert_eq!(a.col, b.col);
        assert_eq!(a.val, b.val);
        let c = Crs::ragged(20, 40, 9, 7);
        let d = Crs::ragged(20, 40, 9, 7);
        assert_eq!(c.col, d.col);
        assert!(c.nnz() > 0);
    }

    #[test]
    fn stencil5_row_sums_vanish_in_interior() {
        let m = Crs::stencil5(6, 6);
        // Interior row: 4 - 4·1 = 0 against the all-ones vector.
        let y = m.spmv_ref(&vec![1.0; m.n_cols]);
        assert_eq!(y[6 + 1], 0.0);
        // Corner keeps 4 - 2.
        assert_eq!(y[0], 2.0);
    }

    #[test]
    fn sell_matches_crs_reference_bitwise() {
        let m = Crs::ragged(37, 50, 11, 3);
        let x = x_for(m.n_cols);
        let y0 = m.spmv_ref(&x);
        for (c, sigma) in [(4, 1), (4, 8), (8, 37), (3, 5), (8, 64)] {
            let s = SellCSigma::from_crs(&m, c, sigma);
            let y1 = s.spmv_ref(&x);
            for r in 0..m.n_rows {
                assert_eq!(
                    y0[r].to_bits(),
                    y1[r].to_bits(),
                    "(C={c}, σ={sigma}) row {r}"
                );
            }
        }
    }

    #[test]
    fn sorting_reduces_padding_on_ragged_rows() {
        let m = Crs::ragged(64, 64, 16, 11);
        let unsorted = SellCSigma::from_crs(&m, 8, 1);
        let sorted = SellCSigma::from_crs(&m, 8, 64);
        assert_eq!(unsorted.padded_nnz(), m.block_padded_nnz(8));
        assert!(sorted.padded_nnz() < unsorted.padded_nnz());
        assert!(sorted.lane_utilization() > unsorted.lane_utilization());
        assert!(sorted.padded_nnz() >= m.nnz());
    }
}
