//! Parallel/serial differential properties for both bulk executors: on
//! any recorded kernel, `replay_par_map` must equal `replay_map` and
//! `CompiledTrace::par_map` must equal `CompiledTrace::map` — **bit for
//! bit** and **counter for counter** — for every thread count, including
//! oversubscription and ragged tails. The pool's workers bump the same
//! process-global obs counters the serial path does, so the counter
//! assertions read *global* snapshot deltas, and every test in this
//! binary serializes pool use behind one lock (pool work from a
//! concurrently running test would otherwise leak into the delta). The
//! tests live in their own integration-test binary for the same reason:
//! other binaries' tests run in parallel threads of their own process,
//! but never in this one.

use ookami_core::obs;
use ookami_sve::{Pred, SveCtx, Trace, VVal};
use proptest::prelude::*;
use std::sync::Mutex;

/// Serializes pool-driving tests within this binary (see module doc).
static POOL_LOCK: Mutex<()> = Mutex::new(());

fn pool_lock() -> std::sync::MutexGuard<'static, ()> {
    POOL_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Thread counts under test: serial pool use, partial, the headline 4,
/// and 0 = auto (whatever the host has).
const THREADS: [usize; 4] = [1, 2, 4, 0];

/// The deterministic counters that may not depend on the execution
/// strategy (the same set `svereplay` gates across executors, plus the
/// byte counters — within one engine the staging path is identical, so
/// bytes must agree too). Scheduling counters (forked regions, barrier
/// waits) are excluded: they legitimately vary with thread count.
const IDENTITY_COUNTERS: [&str; 15] = [
    "sve_instrs",
    "sve_lanes_active",
    "port_fla",
    "port_flb",
    "port_pr",
    "port_exa",
    "port_exb",
    "port_eaga",
    "port_eagb",
    "port_br",
    "gather_elems",
    "scatter_elems",
    "fexpa_issues",
    "bytes_loaded",
    "bytes_stored",
];

/// Global obs delta of `f`, projected onto [`IDENTITY_COUNTERS`].
/// Global — not per-thread — because pool workers retire lanes on their
/// own threads.
fn global_delta(f: impl FnOnce()) -> Vec<u64> {
    let before = obs::snapshot();
    f();
    let d = obs::snapshot().since(&before);
    IDENTITY_COUNTERS
        .iter()
        .map(|n| d.get(obs::Counter::from_name(n).expect("known counter")))
        .collect()
}

/// In-kernel gather table (exercises the shared-captured-tables path:
/// a gather-only trace replays straight out of `Trace::tabs`).
const TAB: [f64; 16] = [
    0.5, -1.25, 3.0, 0.0625, -7.5, 11.0, 0.1, -0.0, 2.75, 1e10, -1e-10, 42.0, 0.3333, -6.0, 8.125,
    0.99,
];

/// A trimmed straight-line op set: enough classes to exercise merging
/// predication, predicate-governed lane accounting, FEXPA, and gathers
/// (the full class-by-class differential lives in `trace_replay.rs`).
#[derive(Debug, Clone)]
enum Op {
    Bin(u8, f64),
    Un(u8),
    Fma(bool, f64),
    Fexpa,
    CmpToP(u8, f64),
    SelC(f64),
    Gather,
}

fn fconst() -> impl Strategy<Value = f64> {
    prop_oneof![Just(0.0f64), Just(-1.5), Just(0.5), -1e6..1e6f64]
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..6, fconst()).prop_map(|(k, x)| Op::Bin(k, x)),
        (0u8..4).prop_map(Op::Un),
        (any::<bool>(), fconst()).prop_map(|(n, x)| Op::Fma(n, x)),
        Just(Op::Fexpa),
        (0u8..3, fconst()).prop_map(|(k, x)| Op::CmpToP(k, x)),
        fconst().prop_map(Op::SelC),
        Just(Op::Gather),
    ]
}

fn run_program(ctx: &mut SveCtx, pg: &Pred, x: &VVal, prog: &[Op]) -> VVal {
    let mut cur = x.clone();
    let mut p = pg.clone();
    for op in prog {
        match *op {
            Op::Bin(k, c) => {
                let cv = ctx.dup_f64(c);
                cur = match k {
                    0 => ctx.fadd(&p, &cur, &cv),
                    1 => ctx.fsub(&p, &cur, &cv),
                    2 => ctx.fmul(&p, &cur, &cv),
                    3 => ctx.fdiv(&p, &cur, &cv),
                    4 => ctx.fmax(&p, &cur, &cv),
                    _ => ctx.fmin(&p, &cur, &cv),
                };
            }
            Op::Un(k) => {
                cur = match k {
                    0 => ctx.fsqrt(&p, &cur),
                    1 => ctx.fneg(&p, &cur),
                    2 => ctx.fabs(&p, &cur),
                    _ => ctx.frintn(&p, &cur),
                };
            }
            Op::Fma(neg, c) => {
                let cv = ctx.dup_f64(c);
                cur = if neg {
                    ctx.fmls(&p, &cur, &cv, &cur)
                } else {
                    ctx.fmla(&p, &cur, &cv, &cur)
                };
            }
            Op::Fexpa => cur = ctx.fexpa(&cur),
            Op::CmpToP(k, c) => {
                let cv = ctx.dup_f64(c);
                p = match k {
                    0 => ctx.fcmgt(pg, &cur, &cv),
                    1 => ctx.fcmge(pg, &cur, &cv),
                    _ => ctx.fcmeq(pg, &cur, &cv),
                };
            }
            Op::SelC(c) => {
                let cv = ctx.dup_f64(c);
                cur = ctx.sel(&p, &cur, &cv);
            }
            Op::Gather => {
                let m = ctx.dup_i64(TAB.len() as i64 - 1);
                let idx = ctx.and_u(pg, &cur, &m);
                cur = ctx.ld1d_gather(&p, &TAB, &idx, 4);
            }
        }
    }
    cur
}

fn assert_bits_eq(want: &[f64], got: &[f64], what: &str) {
    assert_eq!(want.len(), got.len(), "{what}: length");
    for (i, (w, g)) in want.iter().zip(got).enumerate() {
        assert_eq!(
            w.to_bits(),
            g.to_bits(),
            "{what}: lane {i} differs ({w} vs {g})"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Replayer: parallel replay is bit- and counter-identical to serial
    /// replay for every thread count and ragged length.
    #[test]
    fn replay_par_identity_across_threads(
        vl in 1usize..=8,
        xs in prop::collection::vec(-1e3..1e3f64, 1..260),
        prog in prop::collection::vec(op_strategy(), 1..8),
    ) {
        let _g = pool_lock();
        let t = Trace::record1(vl, |ctx, pg, x| run_program(ctx, pg, x, &prog));
        let mut serial = Vec::new();
        let cs = global_delta(|| serial = t.replay_map(&xs));
        for th in THREADS {
            let mut par = Vec::new();
            let cp = global_delta(|| par = t.replay_par_map(th, &xs));
            assert_bits_eq(&serial, &par, &format!("replay_par_map({th})"));
            prop_assert_eq!(
                &cs, &cp,
                "replay counters diverge at {} thread(s) ({:?})",
                th, IDENTITY_COUNTERS
            );
        }
    }

    /// Compiled engine: `par_map` is bit- and counter-identical to `map`
    /// for every thread count and ragged length (tails fall back to the
    /// replayer in both paths).
    #[test]
    fn compiled_par_identity_across_threads(
        vl in 1usize..=8,
        xs in prop::collection::vec(-1e3..1e3f64, 1..300),
        prog in prop::collection::vec(op_strategy(), 1..8),
    ) {
        let _g = pool_lock();
        let t = Trace::record1(vl, |ctx, pg, x| run_program(ctx, pg, x, &prog));
        let ct = t.compile();
        let mut serial = Vec::new();
        let cs = global_delta(|| serial = ct.map(&xs));
        for th in THREADS {
            let mut par = Vec::new();
            let cp = global_delta(|| par = ct.par_map(th, &xs));
            assert_bits_eq(&serial, &par, &format!("compiled par_map({th})"));
            prop_assert_eq!(
                &cs, &cp,
                "compiled counters diverge at {} thread(s)",
                th
            );
        }
    }

    /// Two-input kernels: `replay_par_map2` / compiled `par_map2` match
    /// their serial counterparts the same way.
    #[test]
    fn par_map2_identity_across_threads(
        vl in 1usize..=8,
        n in 1usize..260,
        seed in 0u64..1000,
    ) {
        let _g = pool_lock();
        // Deterministic but irregular inputs from the seed.
        let xs: Vec<f64> = (0..n)
            .map(|i| ((i as u64).wrapping_mul(seed | 1) % 2000) as f64 / 7.0 - 140.0)
            .collect();
        let ys: Vec<f64> = xs.iter().map(|x| 1.5 - x * 0.25).collect();
        let t = Trace::record2(vl, |ctx, pg, x, y| {
            let s = ctx.fmul(pg, x, y);
            let q = ctx.fcmgt(pg, &s, y);
            let r = ctx.fmla(&q, &s, x, y);
            ctx.sel(&q, &r, &s)
        });
        let mut serial = Vec::new();
        let cs = global_delta(|| serial = t.replay_map2(&xs, &ys));
        let ct = t.compile();
        let mut cserial = Vec::new();
        let cc = global_delta(|| cserial = ct.map2(&xs, &ys));
        for th in THREADS {
            let mut par = Vec::new();
            let cp = global_delta(|| par = t.replay_par_map2(th, &xs, &ys));
            assert_bits_eq(&serial, &par, &format!("replay_par_map2({th})"));
            prop_assert_eq!(&cs, &cp, "replay_map2 counters diverge at {}", th);
            let mut cpar = Vec::new();
            let cq = global_delta(|| cpar = ct.par_map2(th, &xs, &ys));
            assert_bits_eq(&cserial, &cpar, &format!("compiled par_map2({th})"));
            prop_assert_eq!(&cc, &cq, "compiled map2 counters diverge at {}", th);
        }
    }
}

/// Ragged tails at the compiled engine's chunk boundary (W = 128): one
/// short of a chunk, exact chunks, one over — the shapes where the
/// replayer-fallback tail path and the W-aligned parallel split meet.
#[test]
fn ragged_tails_at_chunk_boundaries() {
    let _g = pool_lock();
    let t = Trace::record1(8, |ctx, pg, x| {
        let e = ctx.fexpa(x);
        ctx.fmul(pg, &e, x)
    });
    let ct = t.compile();
    for n in [1usize, 7, 127, 128, 129, 255, 256, 257, 1023] {
        let xs: Vec<f64> = (0..n).map(|i| (i as f64).mul_add(0.37, -80.0)).collect();
        let serial = t.replay_map(&xs);
        let compiled = ct.map(&xs);
        assert_bits_eq(&serial, &compiled, &format!("compiled vs replay, n={n}"));
        for th in THREADS {
            assert_bits_eq(
                &serial,
                &t.replay_par_map(th, &xs),
                &format!("replay_par_map({th}), n={n}"),
            );
            assert_bits_eq(
                &serial,
                &ct.par_map(th, &xs),
                &format!("compiled par_map({th}), n={n}"),
            );
        }
    }
}

/// Steady-state parallel replay reuses worker-resident arenas: running
/// the same trace through the pool repeatedly must keep producing the
/// serial bits (the arena take/put protocol re-establishes all per-region
/// invariants, so staleness would show up here as bit drift).
#[test]
fn worker_resident_arenas_survive_repeated_regions() {
    let _g = pool_lock();
    let t = Trace::record1(4, |ctx, pg, x| {
        let z = ctx.dup_f64(0.0);
        let q = ctx.fcmgt(pg, x, &z);
        let s = ctx.fsqrt(&q, x);
        ctx.sel(&q, &s, x)
    });
    let xs: Vec<f64> = (0..777).map(|i| (i as f64) * 0.5 - 111.0).collect();
    let want = t.replay_map(&xs);
    let ct = t.compile();
    for round in 0..10 {
        assert_bits_eq(
            &want,
            &t.replay_par_map(4, &xs),
            &format!("replay round {round}"),
        );
        assert_bits_eq(
            &want,
            &ct.par_map(4, &xs),
            &format!("compiled round {round}"),
        );
    }
}
