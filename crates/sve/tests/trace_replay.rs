//! Differential properties of the trace engine: `Trace::replay` must match
//! the per-op interpreter **bit for bit** for every op class — merging
//! predication, gather/scatter through captured tables, FEXPA and the
//! hardware estimate/refine steps included — and the `Instr` stream a trace
//! lowers to ([`Trace::to_instrs`]) must be the stream the interpreter's
//! recorder would produce for the same kernel (modulo register naming,
//! which is canonicalized by first appearance).

use ookami_core::obs::{self, Counter};
use ookami_sve::{Pred, SveCtx, Trace, TraceBuilder, VVal};
use ookami_uarch::{Instr, OpClass, Reg, Width};
use proptest::prelude::*;
use std::collections::HashMap;

/// Fixed in-kernel lookup table for gather ops (like the log kernel's
/// coefficient tables).
const TAB: [f64; 16] = [
    0.5, -1.25, 3.0, 0.0625, -7.5, 11.0, 0.1, -0.0, 2.75, 1e10, -1e-10, 42.0, 0.3333, -6.0, 8.125,
    0.99,
];

/// One step of a randomly generated straight-line kernel. Every variant
/// maps to a distinct `TOp` class in the trace engine.
#[derive(Debug, Clone)]
enum Op {
    /// fadd/fsub/fmul/fdiv/fmax/fmin against a broadcast constant, under
    /// the current (possibly partial) predicate — merging semantics.
    Bin(u8, f64),
    /// fsqrt/fneg/fabs/frintn under the current predicate.
    Un(u8),
    /// fmla/fmls with a broadcast multiplicand.
    Fma(bool, f64),
    /// FRECPE + FRECPS refine (reciprocal Newton step).
    RecipStep,
    /// FRSQRTE + FRSQRTS refine.
    RsqrtStep,
    /// FEXPA on the raw lane bits.
    Fexpa,
    /// FTMAD with an immediate coefficient.
    Ftmad(f64),
    /// Replace the working predicate: fcmgt/fcmge/fcmeq vs a constant.
    CmpToP(u8, f64),
    /// Replace the working predicate: integer CMPNE vs an immediate.
    CmpNe(i64),
    /// AND a fresh compare into the working predicate.
    PandP(f64),
    /// Full select between the value and a broadcast constant.
    SelC(f64),
    /// lsl/lsr/asr by a constant shift.
    Shift(u8, u32),
    /// add/sub/mul/and/orr/eor against a broadcast integer constant.
    IntBin(u8, i64),
    /// ucvtf/fcvtns/fcvtzs/scvtf.
    Cvt(u8),
    /// Pack active lanes to the front.
    Compact,
    /// Gather from [`TAB`]; `masked` keeps indices in-bounds, otherwise
    /// out-of-bounds lanes exercise the load-zero path.
    Gather(bool),
}

fn fconst() -> impl Strategy<Value = f64> {
    prop_oneof![
        Just(0.0f64),
        Just(-1.5),
        Just(1e300),
        Just(0.5),
        -1e6..1e6f64,
    ]
}

fn iconst() -> impl Strategy<Value = i64> {
    prop_oneof![Just(0i64), Just(-3), Just(15), -1000..1000i64]
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..6, fconst()).prop_map(|(k, x)| Op::Bin(k, x)),
        (0u8..4).prop_map(Op::Un),
        (any::<bool>(), fconst()).prop_map(|(n, x)| Op::Fma(n, x)),
        Just(Op::RecipStep),
        Just(Op::RsqrtStep),
        Just(Op::Fexpa),
        fconst().prop_map(Op::Ftmad),
        (0u8..3, fconst()).prop_map(|(k, x)| Op::CmpToP(k, x)),
        iconst().prop_map(Op::CmpNe),
        fconst().prop_map(Op::PandP),
        fconst().prop_map(Op::SelC),
        (0u8..3, 0u32..64).prop_map(|(k, s)| Op::Shift(k, s)),
        (0u8..6, iconst()).prop_map(|(k, x)| Op::IntBin(k, x)),
        (0u8..4).prop_map(Op::Cvt),
        Just(Op::Compact),
        any::<bool>().prop_map(Op::Gather),
    ]
}

/// Run the straight-line program on any executor (interpreter or trace
/// recorder — the ops themselves are executor-agnostic).
fn run_program(ctx: &mut SveCtx, pg: &Pred, x: &VVal, prog: &[Op]) -> VVal {
    let mut cur = x.clone();
    let mut p = pg.clone();
    for op in prog {
        match *op {
            Op::Bin(k, c) => {
                let cv = ctx.dup_f64(c);
                cur = match k {
                    0 => ctx.fadd(&p, &cur, &cv),
                    1 => ctx.fsub(&p, &cur, &cv),
                    2 => ctx.fmul(&p, &cur, &cv),
                    3 => ctx.fdiv(&p, &cur, &cv),
                    4 => ctx.fmax(&p, &cur, &cv),
                    _ => ctx.fmin(&p, &cur, &cv),
                };
            }
            Op::Un(k) => {
                cur = match k {
                    0 => ctx.fsqrt(&p, &cur),
                    1 => ctx.fneg(&p, &cur),
                    2 => ctx.fabs(&p, &cur),
                    _ => ctx.frintn(&p, &cur),
                };
            }
            Op::Fma(neg, c) => {
                let cv = ctx.dup_f64(c);
                cur = if neg {
                    ctx.fmls(&p, &cur, &cv, &cur)
                } else {
                    ctx.fmla(&p, &cur, &cv, &cur)
                };
            }
            Op::RecipStep => {
                let e = ctx.frecpe(&cur);
                let s = ctx.frecps(&p, &cur, &e);
                cur = ctx.fmul(&p, &e, &s);
            }
            Op::RsqrtStep => {
                let e = ctx.frsqrte(&cur);
                cur = ctx.frsqrts(&p, &cur, &e);
            }
            Op::Fexpa => cur = ctx.fexpa(&cur),
            Op::Ftmad(c) => cur = ctx.ftmad(&p, &cur, &cur, c),
            Op::CmpToP(k, c) => {
                let cv = ctx.dup_f64(c);
                p = match k {
                    0 => ctx.fcmgt(pg, &cur, &cv),
                    1 => ctx.fcmge(pg, &cur, &cv),
                    _ => ctx.fcmeq(pg, &cur, &cv),
                };
            }
            Op::CmpNe(imm) => p = ctx.cmpne_imm(pg, &cur, imm),
            Op::PandP(c) => {
                let cv = ctx.dup_f64(c);
                let q = ctx.fcmge(pg, &cur, &cv);
                p = ctx.pand(&p, &q);
            }
            Op::SelC(c) => {
                let cv = ctx.dup_f64(c);
                cur = ctx.sel(&p, &cur, &cv);
            }
            Op::Shift(k, sh) => {
                cur = match k {
                    0 => ctx.lsl(&p, &cur, sh),
                    1 => ctx.lsr(&p, &cur, sh),
                    _ => ctx.asr(&p, &cur, sh),
                };
            }
            Op::IntBin(k, c) => {
                let cv = ctx.dup_i64(c);
                cur = match k {
                    0 => ctx.add_i(&p, &cur, &cv),
                    1 => ctx.sub_i(&p, &cur, &cv),
                    2 => ctx.mul_i(&p, &cur, &cv),
                    3 => ctx.and_u(&p, &cur, &cv),
                    4 => ctx.orr_u(&p, &cur, &cv),
                    _ => ctx.eor_u(&p, &cur, &cv),
                };
            }
            Op::Cvt(k) => {
                cur = match k {
                    0 => ctx.ucvtf(&p, &cur),
                    1 => ctx.fcvtns(&p, &cur),
                    2 => ctx.fcvtzs(&p, &cur),
                    _ => ctx.scvtf(&p, &cur),
                };
            }
            Op::Compact => cur = ctx.compact(&p, &cur),
            Op::Gather(masked) => {
                let idx = if masked {
                    let m = ctx.dup_i64(TAB.len() as i64 - 1);
                    ctx.and_u(pg, &cur, &m)
                } else {
                    cur.clone()
                };
                cur = ctx.ld1d_gather(&p, &TAB, &idx, 4);
            }
        }
    }
    cur
}

/// Reference executor: the per-op interpreter, vector by vector.
fn interp_map(vl: usize, xs: &[f64], prog: &[Op]) -> Vec<f64> {
    let mut ctx = SveCtx::new(vl);
    let mut out = Vec::with_capacity(xs.len());
    let mut i = 0;
    while i < xs.len() {
        let pg = ctx.whilelt(i, xs.len());
        let mut lanes = vec![0.0; vl];
        let n = vl.min(xs.len() - i);
        lanes[..n].copy_from_slice(&xs[i..i + n]);
        let x = ctx.input_f64(&lanes);
        let y = run_program(&mut ctx, &pg, &x, prog);
        for l in 0..n {
            out.push(y.f64_lane(l));
        }
        i += vl;
    }
    out
}

/// Canonicalize an instruction stream: rename registers densely in order
/// of first appearance so two streams compare by *structure* (op class,
/// width, def/use shape, µop hints) rather than by allocator state.
fn canon(instrs: &[Instr]) -> Vec<(OpClass, Width, Option<u32>, Vec<u32>, Option<u32>)> {
    let mut names: HashMap<Reg, u32> = HashMap::new();
    let rename = |r: Reg, names: &mut HashMap<Reg, u32>| -> u32 {
        let next = names.len() as u32;
        *names.entry(r).or_insert(next)
    };
    instrs
        .iter()
        .map(|i| {
            let srcs = i.srcs.iter().map(|&r| rename(r, &mut names)).collect();
            let dst = i.dst.map(|r| rename(r, &mut names));
            (i.op, i.width, dst, srcs, i.uops_hint)
        })
        .collect()
}

/// Record the program through the plain interpreter's instruction recorder
/// (constants hoisted outside the recording window, like a real VLA loop
/// whose loop-invariant `dup`s sit before the loop).
fn interp_instrs(vl: usize, prog: &[Op]) -> Vec<Instr> {
    let mut ctx = SveCtx::new(vl);
    let pg = ctx.ptrue();
    let x = ctx.input_f64(&vec![0.0; vl]);
    ctx.start_recording();
    let _ = run_program(&mut ctx, &pg, &x, prog);
    ctx.take_recording()
}

/// The obs counters that must be **bit-identical** between interpreting a
/// kernel and replaying its trace: retired-instruction, active-lane, and
/// candidate-port totals plus the element counters. Byte counters are
/// deliberately excluded — they also fire on the harness's own
/// `input_f64`/`bind_f64` staging, which the two executors do differently.
const IDENTITY_COUNTERS: [Counter; 13] = [
    Counter::SveInstrs,
    Counter::SveLanesActive,
    Counter::PortFla,
    Counter::PortFlb,
    Counter::PortPr,
    Counter::PortExa,
    Counter::PortExb,
    Counter::PortEaga,
    Counter::PortEagb,
    Counter::PortBr,
    Counter::GatherElems,
    Counter::ScatterElems,
    Counter::FexpaIssues,
];

/// Run `f` on this thread and return the per-thread obs counter deltas it
/// produced, projected onto [`IDENTITY_COUNTERS`].
fn counter_delta(f: impl FnOnce()) -> [u64; IDENTITY_COUNTERS.len()] {
    let before = obs::thread_snapshot();
    f();
    let delta = obs::thread_snapshot().since(&before);
    let mut out = [0u64; IDENTITY_COUNTERS.len()];
    for (slot, &c) in out.iter_mut().zip(IDENTITY_COUNTERS.iter()) {
        *slot = delta.get(c);
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The tentpole property: for arbitrary programs over every traceable
    /// op class, arbitrary vector lengths, and ragged input lengths, the
    /// recorded trace replays bit-identically to the interpreter.
    #[test]
    fn replay_is_bit_identical_to_interpreter(
        vl in 1usize..=8,
        xs in prop::collection::vec(
            prop_oneof![Just(0.0f64), Just(-0.0), Just(1e308), Just(-4.25), -1e3..1e3f64],
            1..120,
        ),
        prog in prop::collection::vec(op_strategy(), 1..14),
    ) {
        let want = interp_map(vl, &xs, &prog);
        let t = Trace::record1(vl, |ctx, pg, x| run_program(ctx, pg, x, &prog));
        let got = t.map(&xs);
        prop_assert_eq!(want.len(), got.len());
        for (i, (w, g)) in want.iter().zip(&got).enumerate() {
            prop_assert_eq!(
                w.to_bits(), g.to_bits(),
                "lane {} differs: interp {} vs replay {} (vl={})", i, w, g, vl
            );
        }
    }

    /// Counter identity (needs `--features obs`, vacuous otherwise): the
    /// obs totals from replaying a traced kernel over a range are exactly
    /// the totals from interpreting it — same retired instructions, same
    /// active lanes, same candidate-port pressure, same gather/FEXPA
    /// element counts — for arbitrary programs, vector lengths, and ragged
    /// input lengths. This is what makes the counters trustworthy: they
    /// measure the *kernel*, not the execution strategy.
    #[test]
    fn replay_counters_equal_interpreter_counters(
        vl in 1usize..=8,
        xs in prop::collection::vec(
            prop_oneof![Just(0.0f64), Just(-0.0), Just(1e308), Just(-4.25), -1e3..1e3f64],
            1..120,
        ),
        prog in prop::collection::vec(op_strategy(), 1..14),
    ) {
        if obs::enabled() {
            let interp = counter_delta(|| {
                let _ = interp_map(vl, &xs, &prog);
            });
            let t = Trace::record1(vl, |ctx, pg, x| run_program(ctx, pg, x, &prog));
            let replay = counter_delta(|| {
                let _ = t.map(&xs);
            });
            for (i, (&a, &b)) in interp.iter().zip(replay.iter()).enumerate() {
                prop_assert_eq!(
                    a, b,
                    "counter {} differs: interp {} vs replay {} (vl={}, n={})",
                    IDENTITY_COUNTERS[i].name(), a, b, vl, xs.len()
                );
            }
            // A nonempty program over a nonempty range must retire work.
            prop_assert!(interp[0] > 0, "no instructions counted");
        }
    }

    /// Parallel replay over the worker pool is the same bits as serial
    /// replay (static schedule, block-disjoint writes).
    #[test]
    fn par_replay_matches_serial_replay(
        vl in 1usize..=8,
        threads in 1usize..5,
        xs in prop::collection::vec(-1e3..1e3f64, 1..160),
        prog in prop::collection::vec(op_strategy(), 1..10),
    ) {
        let t = Trace::record1(vl, |ctx, pg, x| run_program(ctx, pg, x, &prog));
        let serial = t.map(&xs);
        // threads == 0 is "auto": the pool picks its own width.
        for th in [threads, 0] {
            let par = t.par_map(th, &xs);
            prop_assert_eq!(serial.len(), par.len());
            for (s, p) in serial.iter().zip(&par) {
                prop_assert_eq!(s.to_bits(), p.to_bits());
            }
        }
        // Replayer-only parallel path (bypasses the compiled dispatch).
        let rserial = t.replay_map(&xs);
        for th in [threads, 0] {
            let rpar = t.replay_par_map(th, &xs);
            prop_assert_eq!(rserial.len(), rpar.len());
            for (s, p) in rserial.iter().zip(&rpar) {
                prop_assert_eq!(s.to_bits(), p.to_bits());
            }
        }
    }

    /// The instruction stream a trace lowers to is exactly the stream the
    /// interpreter's recorder produces for the same kernel body.
    #[test]
    fn trace_instrs_equal_interpreter_recording(
        vl in 1usize..=8,
        prog in prop::collection::vec(op_strategy(), 1..14),
    ) {
        let want = canon(&interp_instrs(vl, &prog));
        let t = Trace::record1(vl, |ctx, pg, x| run_program(ctx, pg, x, &prog));
        let got = canon(&t.to_instrs());
        prop_assert_eq!(want, got);
    }

    /// The compiled engine is bit-identical to the replayer for arbitrary
    /// recordable programs and input lengths spanning several 512-lane
    /// blocks plus a ragged tail. Bodies the native gate rejects (gather,
    /// compact, non-power-of-two vl) must fall back invisibly.
    #[test]
    fn compiled_matches_replay_bit_identical(
        vl in 1usize..=8,
        xs in prop::collection::vec(
            prop_oneof![Just(0.0f64), Just(-0.0), Just(1e308), Just(-4.25), -1e3..1e3f64],
            400..1300,
        ),
        prog in prop::collection::vec(op_strategy(), 1..14),
    ) {
        let t = Trace::record1(vl, |ctx, pg, x| run_program(ctx, pg, x, &prog));
        let want = t.replay_map(&xs);
        let ct = t.compile();
        let got = ct.map(&xs);
        prop_assert_eq!(want.len(), got.len());
        for (i, (w, g)) in want.iter().zip(&got).enumerate() {
            prop_assert_eq!(
                w.to_bits(), g.to_bits(),
                "lane {} differs: replay {} vs compiled {} (vl={}, native={})",
                i, w, g, vl, ct.is_native()
            );
        }
        let par = ct.par_map(3, &xs);
        for (w, g) in want.iter().zip(&par) {
            prop_assert_eq!(w.to_bits(), g.to_bits(), "par_map (vl={})", vl);
        }
    }

    /// The optimizer alone (constant folding, predicate simplification,
    /// dead-code elimination) preserves replay bits: `Trace::optimized`
    /// yields a plain trace the unmodified replayer runs to the same
    /// output, for arbitrary programs and ragged lengths.
    #[test]
    fn optimized_trace_replays_bit_identically(
        vl in 1usize..=8,
        xs in prop::collection::vec(
            prop_oneof![Just(0.0f64), Just(-0.0), Just(1e308), Just(-4.25), -1e3..1e3f64],
            1..160,
        ),
        prog in prop::collection::vec(op_strategy(), 1..14),
    ) {
        let t = Trace::record1(vl, |ctx, pg, x| run_program(ctx, pg, x, &prog));
        let want = t.replay_map(&xs);
        let got = t.optimized().replay_map(&xs);
        prop_assert_eq!(want.len(), got.len());
        for (w, g) in want.iter().zip(&got) {
            prop_assert_eq!(w.to_bits(), g.to_bits(), "vl={}", vl);
        }
    }

    /// Counter identity for the compiled engine (needs `--features obs`,
    /// vacuous otherwise): block-scaled accounting over the *original*
    /// body must reproduce the replayer's per-op totals exactly — dead or
    /// folded ops included — so `compiled == replayer == interpreter`
    /// holds for counters, not just bits. Byte counters are included
    /// here: both executors stage exactly 8·n input bytes.
    #[test]
    fn compiled_counters_equal_replay_counters(
        vl in 1usize..=8,
        xs in prop::collection::vec(
            prop_oneof![Just(0.0f64), Just(-0.0), Just(1e308), Just(-4.25), -1e3..1e3f64],
            400..1300,
        ),
        prog in prop::collection::vec(op_strategy(), 1..14),
    ) {
        if obs::enabled() {
            let t = Trace::record1(vl, |ctx, pg, x| run_program(ctx, pg, x, &prog));
            let ct = t.compile();
            let replay = counter_delta(|| {
                let _ = t.replay_map(&xs);
            });
            let compiled = counter_delta(|| {
                let _ = ct.map(&xs);
            });
            for (i, (&a, &b)) in replay.iter().zip(compiled.iter()).enumerate() {
                prop_assert_eq!(
                    a, b,
                    "counter {} differs: replay {} vs compiled {} (vl={}, n={}, native={})",
                    IDENTITY_COUNTERS[i].name(), a, b, vl, xs.len(), ct.is_native()
                );
            }
            let bytes = |f: &dyn Fn()| {
                let before = obs::thread_snapshot();
                f();
                obs::thread_snapshot().since(&before).get(Counter::BytesLoaded)
            };
            let rb = bytes(&|| {
                let _ = t.replay_map(&xs);
            });
            let cb = bytes(&|| {
                let _ = ct.map(&xs);
            });
            prop_assert_eq!(rb, cb, "BytesLoaded (vl={}, n={})", vl, xs.len());
            // Both stage 8·n input bytes; gathers may add table reads on top.
            prop_assert!(rb >= 8 * xs.len() as u64);
        }
    }

    /// Scatter: replays write into the captured working table exactly as
    /// the interpreter writes into live memory (including dropped
    /// out-of-bounds lanes and last-write-wins ordering).
    #[test]
    fn scatter_replay_matches_interpreter(
        vl in 1usize..=8,
        pairs in prop::collection::vec((0i64..40, -1e3..1e3f64), 1..100),
        scale in -10.0..10.0f64,
    ) {
        let n = pairs.len();
        let idx: Vec<i64> = pairs.iter().map(|&(i, _)| i).collect();
        let vals: Vec<f64> = pairs.iter().map(|&(_, v)| v).collect();
        let init: Vec<f64> = (0..32).map(|i| i as f64 * 0.125 - 2.0).collect();

        // Interpreter reference.
        let mut tab_i = init.clone();
        let mut ctx = SveCtx::new(vl);
        let sc = ctx.dup_f64(scale);
        let mut i = 0;
        while i < n {
            let pg = ctx.whilelt(i, n);
            let m = vl.min(n - i);
            let mut lbuf = vec![0i64; vl];
            let mut vbuf = vec![0.0f64; vl];
            lbuf[..m].copy_from_slice(&idx[i..i + m]);
            vbuf[..m].copy_from_slice(&vals[i..i + m]);
            let iv = ctx.input_i64(&lbuf);
            let xv = ctx.input_f64(&vbuf);
            let v2 = ctx.fmul(&pg, &xv, &sc);
            ctx.st1d_scatter(&pg, &v2, &mut tab_i, &iv);
            i += vl;
        }

        // Trace replay into the captured working copy.
        let mut tab_t = init.clone();
        let mut b = TraceBuilder::new(vl);
        let pg = b.loop_pred();
        let iv = b.input_i64();
        let xv = b.input_f64();
        b.begin_body();
        let c = b.ctx().dup_f64(scale);
        let v2 = b.ctx().fmul(&pg, &xv, &c);
        b.ctx().st1d_scatter(&pg, &v2, &mut tab_t, &iv);
        let t = b.finish(&[]);

        let mut r = t.replayer();
        let mut i = 0;
        while i < n {
            let m = vl.min(n - i);
            r.set_block(i, n);
            r.bind_i64(0, &idx[i..i + m]);
            r.bind_f64(1, &vals[i..i + m]);
            r.step();
            i += vl;
        }
        let got = r.table(0);
        prop_assert_eq!(tab_i.len(), got.len());
        for (a, b) in tab_i.iter().zip(got) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}

/// A deterministic kernel that touches **every** traceable op class in one
/// body — belt-and-braces on top of the random programs, and the anchor
/// for the instruction-stream identity check.
fn everything_kernel(ctx: &mut SveCtx, pg: &Pred, x: &VVal) -> VVal {
    let c1 = ctx.dup_f64(1.5);
    let ci = ctx.dup_i64(7);
    let a = ctx.fadd(pg, x, &c1);
    let b = ctx.fsub(pg, &a, x);
    let m = ctx.fmul(pg, &a, &b);
    let d = ctx.fdiv(pg, &m, &c1);
    let mx = ctx.fmax(pg, &d, &c1);
    let mn = ctx.fmin(pg, &mx, &a);
    let sq = ctx.fabs(pg, &mn);
    let s = ctx.fsqrt(pg, &sq);
    let ng = ctx.fneg(pg, &s);
    let rn = ctx.frintn(pg, &ng);
    let fm = ctx.fmla(pg, &rn, &a, &b);
    let fs = ctx.fmls(pg, &fm, &a, &b);
    let re = ctx.frecpe(&sq);
    let rs = ctx.frecps(pg, &sq, &re);
    let qe = ctx.frsqrte(&sq);
    let qs = ctx.frsqrts(pg, &sq, &qe);
    let fe = ctx.fexpa(&ci);
    let ft = ctx.ftmad(pg, &fs, &fe, 0.25);
    let p1 = ctx.fcmgt(pg, &ft, &c1);
    let p2 = ctx.fcmge(pg, &ft, &c1);
    let p3 = ctx.fcmeq(pg, &ft, &ft);
    let p4 = ctx.cmpne_imm(pg, &ci, 7);
    let p5 = ctx.pand(&p1, &p2);
    let p6 = ctx.pand(&p3, &p4);
    let se = ctx.sel(&p5, &ft, &rs);
    let se2 = ctx.sel(&p6, &se, &qs);
    let i1 = ctx.add_i(pg, &se2, &ci);
    let i2 = ctx.sub_i(pg, &i1, &ci);
    let i3 = ctx.mul_i(pg, &i2, &ci);
    let i4 = ctx.and_u(pg, &i3, &ci);
    let i5 = ctx.orr_u(pg, &i4, &ci);
    let i6 = ctx.eor_u(pg, &i5, &ci);
    let s1 = ctx.lsl(pg, &i6, 3);
    let s2 = ctx.lsr(pg, &s1, 5);
    let s3 = ctx.asr(pg, &s2, 1);
    let v1 = ctx.ucvtf(pg, &s3);
    let v2 = ctx.fcvtns(pg, &v1);
    let v3 = ctx.scvtf(pg, &v2);
    let v4 = ctx.fcvtzs(pg, &v3);
    let v5 = ctx.ucvtf(pg, &v4);
    let cp = ctx.compact(&p5, &v5);
    let msk = ctx.dup_i64(TAB.len() as i64 - 1);
    let gi = ctx.and_u(pg, &v4, &msk);
    let g = ctx.ld1d_gather(&p3, &TAB, &gi, 4);
    ctx.loop_overhead(2);
    ctx.scalar_libm_call();
    let out = ctx.fadd(pg, &cp, &g);
    ctx.fmla(pg, &out, &se2, &c1)
}

#[test]
fn everything_kernel_replays_bit_identically() {
    for vl in [1usize, 3, 8] {
        let xs: Vec<f64> = (0..101).map(|i| (i as f64 - 50.0) * 0.73).collect();
        let want = {
            let mut ctx = SveCtx::new(vl);
            let mut out = Vec::new();
            let mut i = 0;
            while i < xs.len() {
                let pg = ctx.whilelt(i, xs.len());
                let mut lanes = vec![0.0; vl];
                let n = vl.min(xs.len() - i);
                lanes[..n].copy_from_slice(&xs[i..i + n]);
                let x = ctx.input_f64(&lanes);
                let y = everything_kernel(&mut ctx, &pg, &x);
                for l in 0..n {
                    out.push(y.f64_lane(l));
                }
                i += vl;
            }
            out
        };
        let got = Trace::record1(vl, everything_kernel).map(&xs);
        assert_eq!(want.len(), got.len());
        for (w, g) in want.iter().zip(&got) {
            assert_eq!(w.to_bits(), g.to_bits(), "vl={vl}");
        }
    }
}

/// Counter identity on the everything-kernel: every traceable op class —
/// gather, scatter-free loop overhead, the scalar libm escape, FEXPA —
/// contributes, across ragged tails at several vector lengths.
#[test]
fn everything_kernel_counters_match_interpreter() {
    if !obs::enabled() {
        return;
    }
    for vl in [1usize, 3, 8] {
        let xs: Vec<f64> = (0..101).map(|i| (i as f64 - 50.0) * 0.73).collect();
        let interp = counter_delta(|| {
            let mut ctx = SveCtx::new(vl);
            let mut i = 0;
            while i < xs.len() {
                let pg = ctx.whilelt(i, xs.len());
                let mut lanes = vec![0.0; vl];
                let n = vl.min(xs.len() - i);
                lanes[..n].copy_from_slice(&xs[i..i + n]);
                let x = ctx.input_f64(&lanes);
                let _ = everything_kernel(&mut ctx, &pg, &x);
                i += vl;
            }
        });
        let t = Trace::record1(vl, everything_kernel);
        let replay = counter_delta(|| {
            let _ = t.map(&xs);
        });
        assert_eq!(interp, replay, "vl={vl}");
        let gather = interp[IDENTITY_COUNTERS
            .iter()
            .position(|&c| c == Counter::GatherElems)
            .unwrap()];
        let fexpa = interp[IDENTITY_COUNTERS
            .iter()
            .position(|&c| c == Counter::FexpaIssues)
            .unwrap()];
        // The gather runs under a compare-derived predicate, so only its
        // upper bound is structural; FEXPA is unpredicated — exactly one
        // issue per kernel iteration.
        assert!(
            gather > 0 && gather <= xs.len().div_ceil(vl) as u64 * vl as u64,
            "vl={vl} gather={gather}"
        );
        assert_eq!(fexpa, xs.len().div_ceil(vl) as u64, "vl={vl}");
    }
}

/// Counter identity for the scatter path (the random programs never
/// scatter, so cover it with the dedicated harness from
/// [`scatter_replay_matches_interpreter`]).
#[test]
fn scatter_counters_match_interpreter() {
    if !obs::enabled() {
        return;
    }
    for vl in [1usize, 3, 8] {
        let n = 41usize;
        let idx: Vec<i64> = (0..n).map(|i| (i * 7 % 32) as i64).collect();
        let vals: Vec<f64> = (0..n).map(|i| i as f64 * 0.5 - 3.0).collect();
        let init: Vec<f64> = (0..32).map(|i| i as f64 * 0.125 - 2.0).collect();

        let interp = counter_delta(|| {
            let mut tab = init.clone();
            let mut ctx = SveCtx::new(vl);
            let sc = ctx.dup_f64(1.5);
            let mut i = 0;
            while i < n {
                let pg = ctx.whilelt(i, n);
                let m = vl.min(n - i);
                let mut lbuf = vec![0i64; vl];
                let mut vbuf = vec![0.0f64; vl];
                lbuf[..m].copy_from_slice(&idx[i..i + m]);
                vbuf[..m].copy_from_slice(&vals[i..i + m]);
                let iv = ctx.input_i64(&lbuf);
                let xv = ctx.input_f64(&vbuf);
                let v2 = ctx.fmul(&pg, &xv, &sc);
                ctx.st1d_scatter(&pg, &v2, &mut tab, &iv);
                i += vl;
            }
        });

        let mut tab_t = init.clone();
        let mut b = TraceBuilder::new(vl);
        let pg = b.loop_pred();
        let iv = b.input_i64();
        let xv = b.input_f64();
        b.begin_body();
        let c = b.ctx().dup_f64(1.5);
        let v2 = b.ctx().fmul(&pg, &xv, &c);
        b.ctx().st1d_scatter(&pg, &v2, &mut tab_t, &iv);
        let t = b.finish(&[]);

        let replay = counter_delta(|| {
            let mut r = t.replayer();
            let mut i = 0;
            while i < n {
                let m = vl.min(n - i);
                r.set_block(i, n);
                r.bind_i64(0, &idx[i..i + m]);
                r.bind_f64(1, &vals[i..i + m]);
                r.step();
                i += vl;
            }
        });
        assert_eq!(interp, replay, "vl={vl}");
        let scatter = interp[IDENTITY_COUNTERS
            .iter()
            .position(|&c| c == Counter::ScatterElems)
            .unwrap()];
        assert_eq!(scatter, n as u64, "every lane scatters exactly once");
    }
}

#[test]
fn everything_kernel_instrs_match_interpreter_recording() {
    let vl = 8;
    let mut ctx = SveCtx::new(vl);
    let pg = ctx.ptrue();
    let x = ctx.input_f64(&vec![0.25; vl]);
    ctx.start_recording();
    let _ = everything_kernel(&mut ctx, &pg, &x);
    let want = canon(&ctx.take_recording());

    let t = Trace::record1(vl, everything_kernel);
    let got = canon(&t.to_instrs());
    assert_eq!(want, got);
}
