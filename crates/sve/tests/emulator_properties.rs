//! Property tests: the SVE emulator's predicated ops must agree with
//! scalar IEEE-754 arithmetic lane-by-lane under arbitrary inputs and
//! masks, and merging semantics must preserve inactive lanes exactly.

use ookami_sve::{Pred, SveCtx};
use proptest::prelude::*;

fn lanes8() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(
        prop_oneof![-1e6f64..1e6, -1.0f64..1.0, Just(0.0), Just(-0.0), Just(1.0),],
        8,
    )
}

fn mask8() -> impl Strategy<Value = Vec<bool>> {
    prop::collection::vec(any::<bool>(), 8)
}

/// Build a predicate with an arbitrary mask (test-only back door via
/// whilelt + pand composition would be cumbersome; use fcmgt on crafted
/// data instead).
fn pred_from_mask(ctx: &mut SveCtx, mask: &[bool]) -> Pred {
    let vals: Vec<f64> = mask.iter().map(|&b| if b { 1.0 } else { -1.0 }).collect();
    let v = ctx.input_f64(&vals);
    let zero = ctx.dup_f64(0.0);
    let all = ctx.ptrue();
    ctx.fcmgt(&all, &v, &zero)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn predicated_binary_ops_match_scalar(a in lanes8(), b in lanes8(), m in mask8()) {
        let mut ctx = SveCtx::new(8);
        let va = ctx.input_f64(&a);
        let vb = ctx.input_f64(&b);
        let pg = pred_from_mask(&mut ctx, &m);

        let add = ctx.fadd(&pg, &va, &vb);
        let sub = ctx.fsub(&pg, &va, &vb);
        let mul = ctx.fmul(&pg, &va, &vb);
        for l in 0..8 {
            if m[l] {
                prop_assert_eq!(add.f64_lane(l), a[l] + b[l]);
                prop_assert_eq!(sub.f64_lane(l), a[l] - b[l]);
                prop_assert_eq!(mul.f64_lane(l), a[l] * b[l]);
            } else {
                // merging: inactive lanes hold the first operand bitwise
                prop_assert_eq!(add.f64_lane(l).to_bits(), a[l].to_bits());
                prop_assert_eq!(sub.f64_lane(l).to_bits(), a[l].to_bits());
                prop_assert_eq!(mul.f64_lane(l).to_bits(), a[l].to_bits());
            }
        }
    }

    #[test]
    fn fmla_is_fused(a in lanes8(), b in lanes8(), c in lanes8()) {
        let mut ctx = SveCtx::new(8);
        let va = ctx.input_f64(&a);
        let vb = ctx.input_f64(&b);
        let vc = ctx.input_f64(&c);
        let pg = ctx.ptrue();
        let r = ctx.fmla(&pg, &vc, &va, &vb);
        for l in 0..8 {
            prop_assert_eq!(r.f64_lane(l), a[l].mul_add(b[l], c[l]));
        }
    }

    #[test]
    fn sel_and_compact_are_consistent(a in lanes8(), m in mask8()) {
        let mut ctx = SveCtx::new(8);
        let va = ctx.input_f64(&a);
        let zeros = ctx.dup_f64(0.0);
        let pg = pred_from_mask(&mut ctx, &m);
        let sel = ctx.sel(&pg, &va, &zeros);
        let comp = ctx.compact(&pg, &va);
        // compact(sel(...)) front-packs exactly the selected lanes.
        let expect: Vec<f64> = (0..8).filter(|&l| m[l]).map(|l| a[l]).collect();
        for (i, &want) in expect.iter().enumerate() {
            prop_assert_eq!(comp.f64_lane(i).to_bits(), want.to_bits());
        }
        // selected sum equals masked sum
        let s = ctx.faddv(&pg, &sel);
        let want_sum: f64 = (0..8).filter(|&l| m[l]).map(|l| a[l]).sum();
        prop_assert!((s - want_sum).abs() <= 1e-9 * want_sum.abs().max(1.0));
    }

    #[test]
    fn int_float_roundtrip(vals in prop::collection::vec(-1_000_000i64..1_000_000, 8)) {
        let mut ctx = SveCtx::new(8);
        let v = ctx.input_i64(&vals);
        let pg = ctx.ptrue();
        let f = ctx.scvtf(&pg, &v);
        let back = ctx.fcvtns(&pg, &f);
        prop_assert_eq!(back.to_i64_vec(), vals);
    }

    #[test]
    fn gather_after_scatter_is_identity(perm_seed in 0u64..1000, a in lanes8()) {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let mut rng = rand::rngs::SmallRng::seed_from_u64(perm_seed);
        let mut perm: Vec<i64> = (0..8).collect();
        perm.shuffle(&mut rng);

        let mut ctx = SveCtx::new(8);
        let pg = ctx.ptrue();
        let v = ctx.input_f64(&a);
        let idx = ctx.input_i64(&perm);
        let mut buf = vec![0.0f64; 8];
        ctx.st1d_scatter(&pg, &v, &mut buf, &idx);
        let back = ctx.ld1d_gather(&pg, &buf, &idx, 8);
        for l in 0..8 {
            prop_assert_eq!(back.f64_lane(l).to_bits(), a[l].to_bits());
        }
    }

    #[test]
    fn whilelt_counts(i in 0usize..64, n in 0usize..64) {
        let mut ctx = SveCtx::new(8);
        let p = ctx.whilelt(i, n);
        let expect = n.saturating_sub(i).min(8);
        prop_assert_eq!(p.count_active(), expect);
    }
}
