//! obs counter glue shared by the interpreter ([`crate::ctx`]) and the
//! trace replayer ([`crate::trace`]).
//!
//! Both executors funnel retired ops through [`bump`], so the *counter
//! identity* invariant — replaying a traced kernel over a range produces
//! exactly the totals interpreting it does — reduces to both sides
//! agreeing on `(class, instrs, lanes, uops)` per op:
//!
//! * the interpreter counts one instruction per op call, with `lanes` =
//!   active lanes of the governing predicate (the full `vl` for the
//!   unpredicated estimates/FEXPA, the result's population for `pand`),
//!   and suppresses counting entirely while a trace sink is installed
//!   (record-time execution is re-counted by the replay that re-runs it);
//! * the replayer counts `blocks` instructions per body op, where
//!   `blocks = ceil(active_block_lanes / vl)` tracks how many `vl`-wide
//!   interpreter iterations one batched step stands for, and lane counts
//!   come from the same predicate masks (block masks concatenate lanewise
//!   under batching, so popcounts sum to the interpreter's).
//!
//! Port pressure is **candidate-port pressure**: each instruction adds
//! `instrs × uops` to *every* port its class may issue to in the A64FX
//! cost table (FLA *and* FLB for an FMA). That is deterministic and
//! execution-order-independent — unlike a simulated port assignment — so
//! it can be asserted bit-equal across execution strategies.

use ookami_core::{obs, obs::Counter, timeline};
use ookami_uarch::{CostTable, OpClass, Width};

/// Retired-instruction interval between periodic timeline counter samples.
/// Large enough that sampling is invisible next to the emulation itself,
/// small enough that a bench slice produces a usable counter track.
const SAMPLE_PERIOD: u64 = 16_384;

#[cfg(feature = "obs")]
thread_local! {
    /// Instructions retired on this thread since the last timeline sample.
    static SINCE_SAMPLE: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// Every `SAMPLE_PERIOD` retired instructions, drop a sample of this
/// thread's cumulative hot counters into the timeline (Chrome `C` counter
/// tracks) and publish the realized sample interval into the
/// `sample_interval_instrs` telemetry histogram (the intervals overshoot
/// `SAMPLE_PERIOD` by up to one bulk call's worth — the histogram makes
/// that skid observable on `/metrics`). A pure observation: counter
/// totals are unaffected.
#[inline]
fn maybe_sample(instrs: u64) {
    #[cfg(feature = "obs")]
    {
        if !timeline::recording() {
            return;
        }
        let due = SINCE_SAMPLE.with(|s| {
            let v = s.get() + instrs;
            if v >= SAMPLE_PERIOD {
                s.set(0);
                Some(v)
            } else {
                s.set(v);
                None
            }
        });
        if let Some(interval) = due {
            let snap = obs::thread_snapshot();
            for c in [
                Counter::SveInstrs,
                Counter::SveLanesActive,
                Counter::FlopsModel,
                Counter::BytesLoaded,
                Counter::FexpaIssues,
            ] {
                timeline::counter_sample(c, snap.get(c));
            }
            ookami_core::telemetry::record(
                ookami_core::telemetry::HistKind::SampleInstrs,
                "sve",
                interval,
            );
        }
    }
    #[cfg(not(feature = "obs"))]
    {
        let _ = instrs;
        let _ = SAMPLE_PERIOD;
        let _ = timeline::recording; // keep the import meaningful without obs
    }
}

/// Count `instrs` retired instructions of `class` touching `lanes` active
/// lanes in total, each cracking into `uops` micro-ops (1 for everything
/// but gathers, which carry the 128-byte-window pairing hint).
#[inline]
pub(crate) fn bump(class: OpClass, instrs: u64, lanes: u64, uops: u64) {
    if !obs::enabled() || instrs == 0 {
        return;
    }
    obs::add(Counter::SveInstrs, instrs);
    obs::add(Counter::SveLanesActive, lanes);
    // Model FLOPs: active lanes × the class's per-lane FLOP weight — the
    // numerator of every roofline placement in `obs::derive`.
    let flops = lanes * class.flops_per_lane() as u64;
    if flops > 0 {
        obs::add(Counter::FlopsModel, flops);
    }
    let cost = ookami_uarch::machines::A64fxTable.cost(class, Width::V512);
    for p in cost.ports.iter() {
        obs::add(Counter::port(p), instrs * uops);
    }
    maybe_sample(instrs);
}

/// [`bump`] into a local snapshot instead of the live thread counters.
/// The compiled path ([`crate::compile`]) pre-folds one block's static
/// accounting at plan-build time and [`flush`]es `blocks × snapshot` per
/// bulk call — per-block `bump`s would spend more time in thread-local
/// atomics than in the kernels themselves. Must mirror [`bump`] field for
/// field: every counter here is linear in `(instrs, lanes)`, so scaling
/// by the block count is exact, and the cross-executor identity tests
/// assert it stays that way.
pub(crate) fn bump_into(s: &mut obs::Snapshot, class: OpClass, instrs: u64, lanes: u64, uops: u64) {
    if instrs == 0 {
        return;
    }
    let mut add = |c: Counter, n: u64| s.set(c, s.get(c) + n);
    add(Counter::SveInstrs, instrs);
    add(Counter::SveLanesActive, lanes);
    let flops = lanes * class.flops_per_lane() as u64;
    if flops > 0 {
        add(Counter::FlopsModel, flops);
    }
    let cost = ookami_uarch::machines::A64fxTable.cost(class, Width::V512);
    for p in cost.ports.iter() {
        add(Counter::port(p), instrs * uops);
    }
}

/// [`bump_fexpa`] into a local snapshot (see [`bump_into`]).
pub(crate) fn bump_fexpa_into(s: &mut obs::Snapshot, instrs: u64, lanes: u64) {
    bump_into(s, OpClass::Fexpa, instrs, lanes, 1);
    s.set(Counter::FexpaIssues, s.get(Counter::FexpaIssues) + instrs);
}

/// Drain `times` copies of a pre-folded block snapshot into the live
/// counters: at most one [`obs::add`] per counter per bulk call.
pub(crate) fn flush(s: &obs::Snapshot, times: u64) {
    if !obs::enabled() || times == 0 {
        return;
    }
    for c in obs::COUNTERS {
        let v = s.get(c);
        if v != 0 {
            obs::add(c, v * times);
        }
    }
    maybe_sample(s.get(Counter::SveInstrs) * times);
}

/// Active lanes of an interpreter predicate mask.
#[inline]
pub(crate) fn popcount(mask: &[bool]) -> u64 {
    mask.iter().filter(|&&m| m).count() as u64
}

/// [`bump`] plus the gather element/byte counters.
#[inline]
pub(crate) fn bump_gather(instrs: u64, elems: u64, uops: u64) {
    if !obs::enabled() {
        return;
    }
    bump(OpClass::Gather, instrs, elems, uops);
    obs::add(Counter::GatherElems, elems);
    obs::add(Counter::BytesLoaded, 8 * elems);
}

/// [`bump`] plus the scatter element/byte counters.
#[inline]
pub(crate) fn bump_scatter(instrs: u64, elems: u64) {
    if !obs::enabled() {
        return;
    }
    bump(OpClass::Scatter, instrs, elems, 1);
    obs::add(Counter::ScatterElems, elems);
    obs::add(Counter::BytesStored, 8 * elems);
}

/// [`bump`] plus the FEXPA issue counter (Table I's signature instruction
/// gets its own line in every report).
#[inline]
pub(crate) fn bump_fexpa(instrs: u64, lanes: u64) {
    if !obs::enabled() {
        return;
    }
    bump(OpClass::Fexpa, instrs, lanes, 1);
    obs::add(Counter::FexpaIssues, instrs);
}
