//! Kernel recording: turn one emulated loop iteration into a
//! [`KernelLoop`] for the cycle analyzer, including loop-carried
//! dependencies.

use crate::ctx::SveCtx;
use ookami_uarch::{KernelLoop, Reg};

/// A recorded kernel plus its vector length.
#[derive(Debug, Clone)]
pub struct Recording {
    pub kernel: KernelLoop,
    pub vl: usize,
}

/// Record one loop iteration.
///
/// The closure receives a recording [`SveCtx`] and must execute exactly one
/// steady-state iteration of the loop body, returning the list of
/// loop-carried `(input_reg, output_reg)` pairs — values produced by one
/// iteration and consumed by the next (accumulators, running RNG state…).
/// The recorder renames each output register to its input register so the
/// analyzer's def-use scan sees the recurrence.
///
/// `elements_per_iter` is how many result elements one iteration retires.
pub fn record_kernel(
    vl: usize,
    elements_per_iter: f64,
    f: impl FnOnce(&mut SveCtx) -> Vec<(Reg, Reg)>,
) -> Recording {
    let mut ctx = SveCtx::new(vl);
    ctx.start_recording();
    let carried = f(&mut ctx);
    let mut body = ctx.take_recording();
    for (input, output) in carried {
        for ins in &mut body {
            if ins.dst == Some(output) {
                ins.dst = Some(input);
            }
            for s in &mut ins.srcs {
                if *s == output {
                    *s = input;
                }
            }
        }
    }
    Recording {
        kernel: KernelLoop::new(body, elements_per_iter),
        vl,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ookami_uarch::machines;

    #[test]
    fn carried_accumulator_binds_recurrence() {
        // sum += x[i] over a 512-bit vector: the FADD's 9-cycle latency on
        // A64FX should be the recurrence bound.
        let rec = record_kernel(8, 8.0, |ctx| {
            let pg = ctx.ptrue();
            let acc_in = ctx.dup_f64(0.0);
            let data = vec![1.0; 8];
            let x = ctx.ld1d(&pg, &data, 0);
            let acc_out = ctx.fadd(&pg, &acc_in, &x);
            ctx.loop_overhead(1);
            vec![(acc_in.id(), acc_out.id())]
        });
        let est = rec.kernel.analyze(machines::a64fx().table);
        assert!(
            (est.recurrence - 9.0).abs() < 1e-9,
            "recurrence {}",
            est.recurrence
        );
        assert_eq!(est.binding_bound(), "recurrence");
    }

    #[test]
    fn independent_body_has_no_recurrence() {
        let rec = record_kernel(8, 8.0, |ctx| {
            let pg = ctx.ptrue();
            let data = vec![1.0; 16];
            let mut out = vec![0.0; 16];
            let x = ctx.ld1d(&pg, &data, 0);
            let two = ctx.dup_f64(2.0);
            let y = ctx.fmul(&pg, &x, &two);
            ctx.st1d(&pg, &y, &mut out, 0);
            ctx.loop_overhead(2);
            vec![]
        });
        let est = rec.kernel.analyze(machines::a64fx().table);
        assert_eq!(est.recurrence, 0.0);
        assert!(est.cycles_per_iter() >= 1.0);
    }
}
