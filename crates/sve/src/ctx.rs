//! The SVE execution context: emulated instructions + optional recording.

use crate::fexpa::fexpa_lane;
use crate::value::{Pred, VVal};
use ookami_uarch::{Instr, OpClass, Reg, Width};

/// Emulated SVE machine state: a vector length and an instruction recorder.
///
/// Every op both computes its result lanes (merging predication: inactive
/// lanes pass through the *first* vector operand) and, when recording is on,
/// appends an [`Instr`] carrying def/use register ids, so the exact code
/// that was numerically validated is also what the cycle analyzer sees.
pub struct SveCtx {
    vl: usize,
    next_reg: Reg,
    recording: Option<Vec<Instr>>,
}

impl SveCtx {
    /// New context with `vl` 64-bit lanes (8 on A64FX).
    pub fn new(vl: usize) -> Self {
        assert!((1..=64).contains(&vl), "unreasonable vector length {vl}");
        SveCtx {
            vl,
            next_reg: 0,
            recording: None,
        }
    }

    pub fn vl(&self) -> usize {
        self.vl
    }

    /// Width implied by this context's vector length (for recording).
    pub fn width(&self) -> Width {
        match self.vl {
            1 => Width::Scalar,
            2 => Width::V128,
            4 => Width::V256,
            _ => Width::V512,
        }
    }

    pub fn start_recording(&mut self) {
        self.recording = Some(Vec::new());
    }

    pub fn take_recording(&mut self) -> Vec<Instr> {
        self.recording.take().unwrap_or_default()
    }

    pub fn is_recording(&self) -> bool {
        self.recording.is_some()
    }

    fn fresh(&mut self) -> Reg {
        let r = self.next_reg;
        // Ids only need to be unique while a recording is open (they drive
        // dependency analysis); outside recording, wrap freely so long
        // numerical runs never exhaust the id space.
        if self.recording.is_some() {
            self.next_reg = self
                .next_reg
                .checked_add(1)
                .expect("register ids exhausted");
        } else {
            self.next_reg = self.next_reg.wrapping_add(1);
        }
        r
    }

    fn rec(&mut self, op: OpClass, dst: Option<Reg>, srcs: &[Reg]) {
        let w = self.width();
        if let Some(log) = &mut self.recording {
            log.push(Instr::new(op, w, dst, srcs.to_vec()));
        }
    }

    fn rec_hint(&mut self, op: OpClass, dst: Option<Reg>, srcs: &[Reg], uops: u32) {
        let w = self.width();
        if let Some(log) = &mut self.recording {
            log.push(Instr::new(op, w, dst, srcs.to_vec()).with_uops(uops));
        }
    }

    // ---------------- constants and setup (not recorded: hoisted) --------

    /// Broadcast an `f64` constant (loop-invariant; not recorded).
    pub fn dup_f64(&mut self, c: f64) -> VVal {
        VVal {
            bits: vec![c.to_bits(); self.vl],
            id: self.fresh(),
        }
    }

    /// Broadcast an `i64` constant (loop-invariant; not recorded).
    pub fn dup_i64(&mut self, c: i64) -> VVal {
        VVal {
            bits: vec![c as u64; self.vl],
            id: self.fresh(),
        }
    }

    /// `INDEX z, #start, #step` (not recorded: setup). Wrapping arithmetic,
    /// as the hardware's lane counters wrap.
    pub fn index(&mut self, start: i64, step: i64) -> VVal {
        let bits = (0..self.vl)
            .map(|l| start.wrapping_add(step.wrapping_mul(l as i64)) as u64)
            .collect();
        VVal {
            bits,
            id: self.fresh(),
        }
    }

    /// All-true predicate (not recorded: setup).
    pub fn ptrue(&mut self) -> Pred {
        Pred {
            mask: vec![true; self.vl],
            id: self.fresh(),
        }
    }

    /// An uninitialized-id wrapper for external inputs (tests/kernels).
    pub fn input_f64(&mut self, lanes: &[f64]) -> VVal {
        assert_eq!(lanes.len(), self.vl);
        VVal {
            bits: lanes.iter().map(|x| x.to_bits()).collect(),
            id: self.fresh(),
        }
    }

    /// Integer-lane input (e.g. an index vector loaded by a kernel).
    pub fn input_i64(&mut self, lanes: &[i64]) -> VVal {
        assert_eq!(lanes.len(), self.vl);
        VVal {
            bits: lanes.iter().map(|&x| x as u64).collect(),
            id: self.fresh(),
        }
    }

    // ---------------- predicates -----------------------------------------

    /// `WHILELT`: lanes `[i, i+vl)` active while `< n`. Recorded (this is
    /// the per-iteration cost of the vector-length-agnostic loop structure
    /// that Section IV measures at +0.2 cycles/element).
    pub fn whilelt(&mut self, i: usize, n: usize) -> Pred {
        let mask = (0..self.vl).map(|l| i + l < n).collect();
        let id = self.fresh();
        self.rec(OpClass::PredOp, Some(id), &[]);
        Pred { mask, id }
    }

    /// `PTEST`-style continuation check (recorded as predicate work).
    pub fn ptest(&mut self, p: &Pred) -> bool {
        self.rec(OpClass::PredOp, None, &[p.id]);
        p.any()
    }

    /// Logical AND of predicates.
    pub fn pand(&mut self, a: &Pred, b: &Pred) -> Pred {
        let mask = a.mask.iter().zip(&b.mask).map(|(&x, &y)| x && y).collect();
        let id = self.fresh();
        self.rec(OpClass::PredOp, Some(id), &[a.id, b.id]);
        Pred { mask, id }
    }

    // ---------------- elementwise float ops ------------------------------

    fn map2f(
        &mut self,
        op: OpClass,
        pg: &Pred,
        a: &VVal,
        b: &VVal,
        f: impl Fn(f64, f64) -> f64,
    ) -> VVal {
        let bits = (0..self.vl)
            .map(|l| {
                if pg.mask[l] {
                    f(f64::from_bits(a.bits[l]), f64::from_bits(b.bits[l])).to_bits()
                } else {
                    a.bits[l]
                }
            })
            .collect();
        let id = self.fresh();
        self.rec(op, Some(id), &[pg.id, a.id, b.id]);
        VVal { bits, id }
    }

    fn map1f(&mut self, op: OpClass, pg: &Pred, a: &VVal, f: impl Fn(f64) -> f64) -> VVal {
        let bits = (0..self.vl)
            .map(|l| {
                if pg.mask[l] {
                    f(f64::from_bits(a.bits[l])).to_bits()
                } else {
                    a.bits[l]
                }
            })
            .collect();
        let id = self.fresh();
        self.rec(op, Some(id), &[pg.id, a.id]);
        VVal { bits, id }
    }

    pub fn fadd(&mut self, pg: &Pred, a: &VVal, b: &VVal) -> VVal {
        self.map2f(OpClass::FAdd, pg, a, b, |x, y| x + y)
    }

    pub fn fsub(&mut self, pg: &Pred, a: &VVal, b: &VVal) -> VVal {
        self.map2f(OpClass::FAdd, pg, a, b, |x, y| x - y)
    }

    pub fn fmul(&mut self, pg: &Pred, a: &VVal, b: &VVal) -> VVal {
        self.map2f(OpClass::FMul, pg, a, b, |x, y| x * y)
    }

    pub fn fdiv(&mut self, pg: &Pred, a: &VVal, b: &VVal) -> VVal {
        self.map2f(OpClass::FDiv, pg, a, b, |x, y| x / y)
    }

    pub fn fsqrt(&mut self, pg: &Pred, a: &VVal) -> VVal {
        self.map1f(OpClass::FSqrt, pg, a, f64::sqrt)
    }

    pub fn fneg(&mut self, pg: &Pred, a: &VVal) -> VVal {
        self.map1f(OpClass::FAbsNeg, pg, a, |x| -x)
    }

    pub fn fabs(&mut self, pg: &Pred, a: &VVal) -> VVal {
        self.map1f(OpClass::FAbsNeg, pg, a, f64::abs)
    }

    pub fn fmax(&mut self, pg: &Pred, a: &VVal, b: &VVal) -> VVal {
        self.map2f(OpClass::FMinMax, pg, a, b, f64::max)
    }

    pub fn fmin(&mut self, pg: &Pred, a: &VVal, b: &VVal) -> VVal {
        self.map2f(OpClass::FMinMax, pg, a, b, f64::min)
    }

    /// Fused multiply-add `a*b + c` (`FMLA` with the accumulator third).
    pub fn fmla(&mut self, pg: &Pred, c: &VVal, a: &VVal, b: &VVal) -> VVal {
        let bits = (0..self.vl)
            .map(|l| {
                if pg.mask[l] {
                    f64::from_bits(a.bits[l])
                        .mul_add(f64::from_bits(b.bits[l]), f64::from_bits(c.bits[l]))
                        .to_bits()
                } else {
                    c.bits[l]
                }
            })
            .collect();
        let id = self.fresh();
        self.rec(OpClass::Fma, Some(id), &[pg.id, c.id, a.id, b.id]);
        VVal { bits, id }
    }

    /// Fused multiply-subtract `c - a*b` (`FMLS`).
    pub fn fmls(&mut self, pg: &Pred, c: &VVal, a: &VVal, b: &VVal) -> VVal {
        let bits = (0..self.vl)
            .map(|l| {
                if pg.mask[l] {
                    (-f64::from_bits(a.bits[l]))
                        .mul_add(f64::from_bits(b.bits[l]), f64::from_bits(c.bits[l]))
                        .to_bits()
                } else {
                    c.bits[l]
                }
            })
            .collect();
        let id = self.fresh();
        self.rec(OpClass::Fma, Some(id), &[pg.id, c.id, a.id, b.id]);
        VVal { bits, id }
    }

    /// Reciprocal estimate (`FRECPE`): ~8 significant bits, like hardware.
    pub fn frecpe(&mut self, a: &VVal) -> VVal {
        let bits = (0..self.vl)
            .map(|l| {
                let est = 1.0 / f64::from_bits(a.bits[l]);
                // truncate to 8 mantissa bits to match the hardware's table
                (est.to_bits() & !((1u64 << 44) - 1)).max(1)
            })
            .collect();
        let id = self.fresh();
        self.rec(OpClass::FRecpe, Some(id), &[a.id]);
        VVal { bits, id }
    }

    /// Newton refinement step for reciprocal (`FRECPS`): `2 - a*b`.
    pub fn frecps(&mut self, pg: &Pred, a: &VVal, b: &VVal) -> VVal {
        let bits = (0..self.vl)
            .map(|l| {
                if pg.mask[l] {
                    (-f64::from_bits(a.bits[l]))
                        .mul_add(f64::from_bits(b.bits[l]), 2.0)
                        .to_bits()
                } else {
                    a.bits[l]
                }
            })
            .collect();
        let id = self.fresh();
        self.rec(OpClass::Fma, Some(id), &[pg.id, a.id, b.id]);
        VVal { bits, id }
    }

    /// Reciprocal square-root estimate (`FRSQRTE`): ~8 significant bits.
    pub fn frsqrte(&mut self, a: &VVal) -> VVal {
        let bits = (0..self.vl)
            .map(|l| {
                let est = 1.0 / f64::from_bits(a.bits[l]).sqrt();
                (est.to_bits() & !((1u64 << 44) - 1)).max(1)
            })
            .collect();
        let id = self.fresh();
        self.rec(OpClass::FRsqrte, Some(id), &[a.id]);
        VVal { bits, id }
    }

    /// Newton refinement step for rsqrt (`FRSQRTS`): `(3 - a*b) / 2`.
    pub fn frsqrts(&mut self, pg: &Pred, a: &VVal, b: &VVal) -> VVal {
        let bits = (0..self.vl)
            .map(|l| {
                if pg.mask[l] {
                    ((3.0 - f64::from_bits(a.bits[l]) * f64::from_bits(b.bits[l])) * 0.5).to_bits()
                } else {
                    a.bits[l]
                }
            })
            .collect();
        let id = self.fresh();
        self.rec(OpClass::Fma, Some(id), &[pg.id, a.id, b.id]);
        VVal { bits, id }
    }

    /// `FEXPA` (bit-exact; see [`crate::fexpa`]).
    pub fn fexpa(&mut self, a: &VVal) -> VVal {
        let bits = (0..self.vl)
            .map(|l| fexpa_lane(a.bits[l]).to_bits())
            .collect();
        let id = self.fresh();
        self.rec(OpClass::Fexpa, Some(id), &[a.id]);
        VVal { bits, id }
    }

    /// `FTMAD`-style trig step: `a*b + coeff` with a hardware coefficient,
    /// recorded to the FTMAD cost class (FLA pipe only on A64FX).
    pub fn ftmad(&mut self, pg: &Pred, a: &VVal, b: &VVal, coeff: f64) -> VVal {
        let bits = (0..self.vl)
            .map(|l| {
                if pg.mask[l] {
                    f64::from_bits(a.bits[l])
                        .mul_add(f64::from_bits(b.bits[l]), coeff)
                        .to_bits()
                } else {
                    a.bits[l]
                }
            })
            .collect();
        let id = self.fresh();
        self.rec(OpClass::Ftmad, Some(id), &[pg.id, a.id, b.id]);
        VVal { bits, id }
    }

    /// Round to nearest integral value (`FRINTN`).
    pub fn frintn(&mut self, pg: &Pred, a: &VVal) -> VVal {
        self.map1f(OpClass::FRound, pg, a, |x| {
            // round-half-even, matching FRINTN
            let r = x.round();
            if (x - x.trunc()).abs() == 0.5 && r % 2.0 != 0.0 {
                r - x.signum()
            } else {
                r
            }
        })
    }

    /// Float compare greater-than, producing a predicate (`FCMGT`).
    pub fn fcmgt(&mut self, pg: &Pred, a: &VVal, b: &VVal) -> Pred {
        let mask = (0..self.vl)
            .map(|l| pg.mask[l] && f64::from_bits(a.bits[l]) > f64::from_bits(b.bits[l]))
            .collect();
        let id = self.fresh();
        self.rec(OpClass::FCmp, Some(id), &[pg.id, a.id, b.id]);
        Pred { mask, id }
    }

    /// Float compare greater-or-equal (`FCMGE`).
    pub fn fcmge(&mut self, pg: &Pred, a: &VVal, b: &VVal) -> Pred {
        let mask = (0..self.vl)
            .map(|l| pg.mask[l] && f64::from_bits(a.bits[l]) >= f64::from_bits(b.bits[l]))
            .collect();
        let id = self.fresh();
        self.rec(OpClass::FCmp, Some(id), &[pg.id, a.id, b.id]);
        Pred { mask, id }
    }

    /// Float compare equal (`FCMEQ`).
    pub fn fcmeq(&mut self, pg: &Pred, a: &VVal, b: &VVal) -> Pred {
        let mask = (0..self.vl)
            .map(|l| pg.mask[l] && f64::from_bits(a.bits[l]) == f64::from_bits(b.bits[l]))
            .collect();
        let id = self.fresh();
        self.rec(OpClass::FCmp, Some(id), &[pg.id, a.id, b.id]);
        Pred { mask, id }
    }

    /// Integer compare-not-equal against an immediate (`CMPNE`), producing
    /// a predicate — used for quadrant selection in the sin kernel.
    pub fn cmpne_imm(&mut self, pg: &Pred, a: &VVal, imm: i64) -> Pred {
        let mask = (0..self.vl)
            .map(|l| pg.mask[l] && (a.bits[l] as i64) != imm)
            .collect();
        let id = self.fresh();
        self.rec(OpClass::FCmp, Some(id), &[pg.id, a.id]);
        Pred { mask, id }
    }

    /// Select lanes: active → `a`, inactive → `b` (`SEL`).
    pub fn sel(&mut self, pg: &Pred, a: &VVal, b: &VVal) -> VVal {
        let bits = (0..self.vl)
            .map(|l| if pg.mask[l] { a.bits[l] } else { b.bits[l] })
            .collect();
        let id = self.fresh();
        self.rec(OpClass::Select, Some(id), &[pg.id, a.id, b.id]);
        VVal { bits, id }
    }

    /// Horizontal sum of active lanes (`FADDA`-style, returned as scalar).
    pub fn faddv(&mut self, pg: &Pred, a: &VVal) -> f64 {
        self.rec(OpClass::FAdd, None, &[pg.id, a.id]);
        (0..self.vl)
            .filter(|&l| pg.mask[l])
            .map(|l| f64::from_bits(a.bits[l]))
            .sum()
    }

    // ---------------- int / bit ops on lanes ------------------------------

    fn map2i(&mut self, pg: &Pred, a: &VVal, b: &VVal, f: impl Fn(i64, i64) -> i64) -> VVal {
        let bits = (0..self.vl)
            .map(|l| {
                if pg.mask[l] {
                    f(a.bits[l] as i64, b.bits[l] as i64) as u64
                } else {
                    a.bits[l]
                }
            })
            .collect();
        let id = self.fresh();
        self.rec(OpClass::VecIntOp, Some(id), &[pg.id, a.id, b.id]);
        VVal { bits, id }
    }

    pub fn add_i(&mut self, pg: &Pred, a: &VVal, b: &VVal) -> VVal {
        self.map2i(pg, a, b, |x, y| x.wrapping_add(y))
    }

    pub fn sub_i(&mut self, pg: &Pred, a: &VVal, b: &VVal) -> VVal {
        self.map2i(pg, a, b, |x, y| x.wrapping_sub(y))
    }

    pub fn mul_i(&mut self, pg: &Pred, a: &VVal, b: &VVal) -> VVal {
        self.map2i(pg, a, b, |x, y| x.wrapping_mul(y))
    }

    pub fn and_u(&mut self, pg: &Pred, a: &VVal, b: &VVal) -> VVal {
        self.map2i(pg, a, b, |x, y| ((x as u64) & (y as u64)) as i64)
    }

    pub fn orr_u(&mut self, pg: &Pred, a: &VVal, b: &VVal) -> VVal {
        self.map2i(pg, a, b, |x, y| ((x as u64) | (y as u64)) as i64)
    }

    pub fn lsl(&mut self, pg: &Pred, a: &VVal, sh: u32) -> VVal {
        let bits = (0..self.vl)
            .map(|l| {
                if pg.mask[l] {
                    a.bits[l] << sh
                } else {
                    a.bits[l]
                }
            })
            .collect();
        let id = self.fresh();
        self.rec(OpClass::VecIntOp, Some(id), &[pg.id, a.id]);
        VVal { bits, id }
    }

    /// Logical (unsigned) shift right.
    pub fn lsr(&mut self, pg: &Pred, a: &VVal, sh: u32) -> VVal {
        let bits = (0..self.vl)
            .map(|l| {
                if pg.mask[l] {
                    a.bits[l] >> sh
                } else {
                    a.bits[l]
                }
            })
            .collect();
        let id = self.fresh();
        self.rec(OpClass::VecIntOp, Some(id), &[pg.id, a.id]);
        VVal { bits, id }
    }

    /// Bitwise XOR (`EOR`).
    pub fn eor_u(&mut self, pg: &Pred, a: &VVal, b: &VVal) -> VVal {
        self.map2i(pg, a, b, |x, y| ((x as u64) ^ (y as u64)) as i64)
    }

    /// Unsigned int → float (`UCVTF`).
    pub fn ucvtf(&mut self, pg: &Pred, a: &VVal) -> VVal {
        let bits = (0..self.vl)
            .map(|l| {
                if pg.mask[l] {
                    (a.bits[l] as f64).to_bits()
                } else {
                    a.bits[l]
                }
            })
            .collect();
        let id = self.fresh();
        self.rec(OpClass::FCvt, Some(id), &[pg.id, a.id]);
        VVal { bits, id }
    }

    /// `COMPACT`: pack the active lanes to the front (inactive lanes fill
    /// with zero) — the "splitting/merging vectors to avoid divergent
    /// execution paths" primitive the paper's §III mentions.
    pub fn compact(&mut self, pg: &Pred, a: &VVal) -> VVal {
        let mut bits: Vec<u64> = Vec::with_capacity(self.vl);
        for l in 0..self.vl {
            if pg.mask[l] {
                bits.push(a.bits[l]);
            }
        }
        bits.resize(self.vl, 0);
        let id = self.fresh();
        self.rec(OpClass::Permute, Some(id), &[pg.id, a.id]);
        VVal { bits, id }
    }

    pub fn asr(&mut self, pg: &Pred, a: &VVal, sh: u32) -> VVal {
        let bits = (0..self.vl)
            .map(|l| {
                if pg.mask[l] {
                    ((a.bits[l] as i64) >> sh) as u64
                } else {
                    a.bits[l]
                }
            })
            .collect();
        let id = self.fresh();
        self.rec(OpClass::VecIntOp, Some(id), &[pg.id, a.id]);
        VVal { bits, id }
    }

    /// Float → int, round to nearest (`FCVTNS`-like).
    pub fn fcvtns(&mut self, pg: &Pred, a: &VVal) -> VVal {
        let bits = (0..self.vl)
            .map(|l| {
                if pg.mask[l] {
                    (f64::from_bits(a.bits[l]).round_ties_even() as i64) as u64
                } else {
                    a.bits[l]
                }
            })
            .collect();
        let id = self.fresh();
        self.rec(OpClass::FCvt, Some(id), &[pg.id, a.id]);
        VVal { bits, id }
    }

    /// Float → int, truncate toward zero (`FCVTZS`).
    pub fn fcvtzs(&mut self, pg: &Pred, a: &VVal) -> VVal {
        let bits = (0..self.vl)
            .map(|l| {
                if pg.mask[l] {
                    (f64::from_bits(a.bits[l]).trunc() as i64) as u64
                } else {
                    a.bits[l]
                }
            })
            .collect();
        let id = self.fresh();
        self.rec(OpClass::FCvt, Some(id), &[pg.id, a.id]);
        VVal { bits, id }
    }

    /// Int → float (`SCVTF`).
    pub fn scvtf(&mut self, pg: &Pred, a: &VVal) -> VVal {
        let bits = (0..self.vl)
            .map(|l| {
                if pg.mask[l] {
                    ((a.bits[l] as i64) as f64).to_bits()
                } else {
                    a.bits[l]
                }
            })
            .collect();
        let id = self.fresh();
        self.rec(OpClass::FCvt, Some(id), &[pg.id, a.id]);
        VVal { bits, id }
    }

    // ---------------- memory ---------------------------------------------

    /// Contiguous load of up to `vl` doubles from `data[offset..]`
    /// (`LD1D`). Inactive or out-of-bounds lanes load 0.
    pub fn ld1d(&mut self, pg: &Pred, data: &[f64], offset: usize) -> VVal {
        let bits = (0..self.vl)
            .map(|l| {
                if pg.mask[l] && offset + l < data.len() {
                    data[offset + l].to_bits()
                } else {
                    0u64
                }
            })
            .collect();
        let id = self.fresh();
        self.rec(OpClass::Load, Some(id), &[pg.id]);
        VVal { bits, id }
    }

    /// Contiguous store (`ST1D`).
    pub fn st1d(&mut self, pg: &Pred, v: &VVal, data: &mut [f64], offset: usize) {
        for l in 0..self.vl {
            if pg.mask[l] && offset + l < data.len() {
                data[offset + l] = f64::from_bits(v.bits[l]);
            }
        }
        self.rec(OpClass::Store, None, &[pg.id, v.id]);
    }

    /// Gather load `data[idx[l]]` (`LD1D (gather)`); `uops` lets callers
    /// attach the 128-byte-window pairing analysis from `ookami-mem`.
    pub fn ld1d_gather(&mut self, pg: &Pred, data: &[f64], idx: &VVal, uops: u32) -> VVal {
        let bits = (0..self.vl)
            .map(|l| {
                let i = idx.bits[l] as usize;
                if pg.mask[l] && i < data.len() {
                    data[i].to_bits()
                } else {
                    0u64
                }
            })
            .collect();
        let id = self.fresh();
        self.rec_hint(OpClass::Gather, Some(id), &[pg.id, idx.id], uops);
        VVal { bits, id }
    }

    /// Scatter store `data[idx[l]] = v[l]` (`ST1D (scatter)`).
    pub fn st1d_scatter(&mut self, pg: &Pred, v: &VVal, data: &mut [f64], idx: &VVal) {
        for l in 0..self.vl {
            let i = idx.bits[l] as usize;
            if pg.mask[l] && i < data.len() {
                data[i] = f64::from_bits(v.bits[l]);
            }
        }
        self.rec(OpClass::Scatter, None, &[pg.id, v.id, idx.id]);
    }

    // ---------------- loop bookkeeping ------------------------------------

    /// Record the scalar overhead of one loop iteration: `int_ops` address/
    /// counter updates plus the back-edge branch.
    pub fn loop_overhead(&mut self, int_ops: usize) {
        for _ in 0..int_ops {
            self.rec(OpClass::IntAlu, None, &[]);
        }
        self.rec(OpClass::Branch, None, &[]);
    }

    /// Record a scalar libm call retiring one element (the GNU-on-A64FX
    /// fallback path for exp/sin/pow).
    pub fn scalar_libm_call(&mut self) {
        self.rec(OpClass::ScalarLibmCall, None, &[]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> SveCtx {
        SveCtx::new(8)
    }

    #[test]
    fn arithmetic_matches_scalar() {
        let mut c = ctx();
        let pg = c.ptrue();
        let a = c.input_f64(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
        let b = c.dup_f64(0.5);
        let s = c.fadd(&pg, &a, &b);
        let m = c.fmul(&pg, &a, &b);
        let f = c.fmla(&pg, &s, &a, &b);
        for l in 0..8 {
            let x = (l + 1) as f64;
            assert_eq!(s.f64_lane(l), x + 0.5);
            assert_eq!(m.f64_lane(l), x * 0.5);
            assert_eq!(f.f64_lane(l), x.mul_add(0.5, x + 0.5));
        }
    }

    #[test]
    fn predication_merges_first_operand() {
        let mut c = ctx();
        let a = c.input_f64(&[1.0; 8]);
        let b = c.dup_f64(10.0);
        let zero = c.dup_f64(0.0);
        let all = c.ptrue();
        let pg = c.fcmgt(&all, &a, &zero); // all true
        let half = Pred {
            mask: (0..8).map(|l| l % 2 == 0).collect(),
            id: pg.id,
        };
        let r = c.fadd(&half, &a, &b);
        for l in 0..8 {
            let want = if l % 2 == 0 { 11.0 } else { 1.0 };
            assert_eq!(r.f64_lane(l), want, "lane {l}");
        }
    }

    #[test]
    fn whilelt_tail_handling() {
        let mut c = ctx();
        let p = c.whilelt(16, 19);
        assert_eq!(p.count_active(), 3);
        assert!(p.any());
        let p2 = c.whilelt(24, 19);
        assert!(!p2.any());
    }

    #[test]
    fn load_store_roundtrip() {
        let mut c = ctx();
        let pg = c.ptrue();
        let src: Vec<f64> = (0..32).map(|i| i as f64).collect();
        let mut dst = vec![0.0; 32];
        for off in (0..32).step_by(8) {
            let v = c.ld1d(&pg, &src, off);
            c.st1d(&pg, &v, &mut dst, off);
        }
        assert_eq!(src, dst);
    }

    #[test]
    fn gather_scatter_permutation_roundtrip() {
        let mut c = ctx();
        let pg = c.ptrue();
        let src: Vec<f64> = (0..8).map(|i| i as f64 * 1.5).collect();
        let mut dst = vec![0.0; 8];
        let perm = [3i64, 1, 4, 0, 6, 2, 7, 5];
        let idxbits: Vec<u64> = perm.iter().map(|&i| i as u64).collect();
        let idx = VVal {
            bits: idxbits,
            id: 99,
        };
        let g = c.ld1d_gather(&pg, &src, &idx, 8);
        for l in 0..8 {
            assert_eq!(g.f64_lane(l), src[perm[l] as usize]);
        }
        c.st1d_scatter(&pg, &g, &mut dst, &idx);
        // scatter(gather(x, p), p) restores the original
        assert_eq!(dst, src);
    }

    #[test]
    fn newton_reciprocal_converges() {
        let mut c = ctx();
        let pg = c.ptrue();
        let x = c.input_f64(&[0.1, 0.5, 1.0, 2.0, 3.0, 7.0, 100.0, 12345.0]);
        let mut y = c.frecpe(&x);
        for _ in 0..3 {
            let corr = c.frecps(&pg, &x, &y); // 2 - x*y
            y = c.fmul(&pg, &y, &corr);
        }
        for l in 0..8 {
            let want = 1.0 / x.f64_lane(l);
            let got = y.f64_lane(l);
            assert!(
                (got / want - 1.0).abs() < 1e-14,
                "lane {l}: {got} vs {want}"
            );
        }
    }

    #[test]
    fn newton_rsqrt_converges() {
        let mut c = ctx();
        let pg = c.ptrue();
        let x = c.input_f64(&[0.25, 1.0, 2.0, 4.0, 9.0, 100.0, 0.01, 64.0]);
        let mut y = c.frsqrte(&x);
        for _ in 0..3 {
            let xy = c.fmul(&pg, &x, &y);
            let corr = c.frsqrts(&pg, &xy, &y); // (3 - x*y*y)/2
            y = c.fmul(&pg, &y, &corr);
        }
        for l in 0..8 {
            let want = 1.0 / x.f64_lane(l).sqrt();
            let got = y.f64_lane(l);
            assert!(
                (got / want - 1.0).abs() < 1e-13,
                "lane {l}: {got} vs {want}"
            );
        }
    }

    #[test]
    fn recording_captures_def_use() {
        let mut c = ctx();
        let pg = c.ptrue();
        let a = c.dup_f64(1.0);
        let b = c.dup_f64(2.0);
        c.start_recording();
        let s = c.fadd(&pg, &a, &b);
        let _t = c.fmul(&pg, &s, &b);
        c.loop_overhead(2);
        let log = c.take_recording();
        assert_eq!(log.len(), 5); // fadd, fmul, 2×IntAlu, branch
        assert_eq!(log[0].op, OpClass::FAdd);
        assert_eq!(log[1].op, OpClass::FMul);
        // fmul's sources include fadd's destination
        assert!(log[1].srcs.contains(&log[0].dst.unwrap()));
        assert_eq!(log[4].op, OpClass::Branch);
    }

    #[test]
    fn gather_uops_hint_recorded() {
        let mut c = ctx();
        let pg = c.ptrue();
        let idx = c.index(0, 1);
        c.start_recording();
        let _ = c.ld1d_gather(&pg, &[1.0; 8], &idx, 4);
        let log = c.take_recording();
        assert_eq!(log[0].uops_hint, Some(4));
    }

    #[test]
    fn faddv_sums_active_lanes() {
        let mut c = ctx();
        let a = c.input_f64(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
        let pg = c.whilelt(0, 4);
        let s = c.faddv(&pg, &a);
        assert_eq!(s, 10.0);
    }

    #[test]
    fn int_ops_and_conversions() {
        let mut c = ctx();
        let pg = c.ptrue();
        let x = c.input_f64(&[1.4, 2.5, -3.5, 7.9, 0.0, -0.4, 100.6, -1.5]);
        let n = c.fcvtns(&pg, &x);
        assert_eq!(n.to_i64_vec(), vec![1, 2, -4, 8, 0, 0, 101, -2]);
        let back = c.scvtf(&pg, &n);
        assert_eq!(back.f64_lane(3), 8.0);
        let one = c.dup_i64(1);
        let shifted = c.lsl(&pg, &one, 6);
        assert_eq!(shifted.i64_lane(0), 64);
        let neg = c.dup_i64(-128);
        let a = c.asr(&pg, &neg, 6);
        assert_eq!(a.i64_lane(0), -2);
    }

    #[test]
    fn smaller_vector_lengths() {
        for vl in [1usize, 2, 4] {
            let mut c = SveCtx::new(vl);
            let pg = c.ptrue();
            let a = c.dup_f64(3.0);
            let b = c.dup_f64(4.0);
            let s = c.fadd(&pg, &a, &b);
            assert_eq!(s.vl(), vl);
            assert_eq!(s.f64_lane(vl - 1), 7.0);
        }
    }
}
