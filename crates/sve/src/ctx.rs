//! The SVE execution context: emulated instructions + optional recording.

use crate::counters::{self, popcount};
use crate::fexpa::fexpa_lane;
use crate::lanes;
use crate::trace::{BinOp, CmpOp, CvtOp, ShiftOp, TOp, TraceSink, UnOp};
use crate::value::{Pred, VVal};
use ookami_core::obs::{self, Counter};
use ookami_uarch::meta::{self, LaneAccounting};
use ookami_uarch::{Instr, OpClass, Reg, Width};

/// Emulated SVE machine state: a vector length and an instruction recorder.
///
/// Every op both computes its result lanes (merging predication: inactive
/// lanes pass through the *first* vector operand) and, when recording is on,
/// appends an [`Instr`] carrying def/use register ids, so the exact code
/// that was numerically validated is also what the cycle analyzer sees.
///
/// A third mode, installed by [`crate::trace::TraceBuilder`], additionally
/// captures each op into a compact replayable [`crate::trace::Trace`].
pub struct SveCtx {
    vl: usize,
    next_reg: Reg,
    recording: Option<Vec<Instr>>,
    trace: Option<Box<TraceSink>>,
}

impl SveCtx {
    /// New context with `vl` 64-bit lanes (8 on A64FX).
    pub fn new(vl: usize) -> Self {
        assert!((1..=64).contains(&vl), "unreasonable vector length {vl}");
        SveCtx {
            vl,
            next_reg: 0,
            recording: None,
            trace: None,
        }
    }

    pub fn vl(&self) -> usize {
        self.vl
    }

    /// Width implied by this context's vector length (for recording).
    pub fn width(&self) -> Width {
        match self.vl {
            1 => Width::Scalar,
            2 => Width::V128,
            4 => Width::V256,
            _ => Width::V512,
        }
    }

    pub fn start_recording(&mut self) {
        self.recording = Some(Vec::new());
    }

    pub fn take_recording(&mut self) -> Vec<Instr> {
        self.recording.take().unwrap_or_default()
    }

    pub fn is_recording(&self) -> bool {
        self.recording.is_some()
    }

    pub(crate) fn install_trace(&mut self, sink: TraceSink) {
        self.trace = Some(Box::new(sink));
    }

    pub(crate) fn take_trace(&mut self) -> Box<TraceSink> {
        self.trace.take().expect("no trace sink installed")
    }

    pub(crate) fn trace_sink(&mut self) -> &mut TraceSink {
        self.trace.as_deref_mut().expect("no trace sink installed")
    }

    pub(crate) fn fresh_id(&mut self) -> Reg {
        self.fresh()
    }

    /// Jump the register counter (wraparound regression tests only).
    #[doc(hidden)]
    pub fn force_next_reg(&mut self, r: Reg) {
        self.next_reg = r;
    }

    fn fresh(&mut self) -> Reg {
        let r = self.next_reg;
        // Ids must stay unique while a recording or trace is open (they
        // drive def-use analysis and trace slot allocation) — exhausting
        // the space there is a hard error, never a silent wrap. Outside,
        // long numerical runs may legitimately burn through ids; saturate
        // so the counter still cannot wrap back into live low ids, and a
        // subsequently opened recording trips the panic above on its
        // first op.
        if self.recording.is_some() || self.trace.is_some() {
            self.next_reg = self
                .next_reg
                .checked_add(1)
                .expect("SVE register ids exhausted while a recording is open");
        } else {
            self.next_reg = self.next_reg.saturating_add(1);
        }
        r
    }

    fn rec(&mut self, op: OpClass, dst: Option<Reg>, srcs: &[Reg]) {
        let w = self.width();
        if let Some(log) = &mut self.recording {
            log.push(Instr::new(op, w, dst, srcs));
        }
    }

    fn rec_hint(&mut self, op: OpClass, dst: Option<Reg>, srcs: &[Reg], uops: u32) {
        let w = self.width();
        if let Some(log) = &mut self.recording {
            log.push(Instr::new(op, w, dst, srcs).with_uops(uops));
        }
    }

    /// Count one retired op against the obs registry. Suppressed while a
    /// trace sink is installed: record-time execution is re-counted by the
    /// replay that re-runs it, which keeps interpreter and replay totals
    /// identical for a kernel (see [`crate::counters`]).
    ///
    /// `governed` is the active-lane count of the governing (or result)
    /// predicate; the shared [`meta::lane_accounting`] table decides
    /// whether the class retires that, the full vector, or nothing — the
    /// same classification the replayer and the trace compiler apply, so
    /// all executors agree by construction.
    #[inline]
    fn count(&self, class: OpClass, governed: u64) {
        if self.trace.is_none() {
            let lanes = match meta::lane_accounting(class) {
                LaneAccounting::Governed | LaneAccounting::ResultPop => governed,
                LaneAccounting::FullVector => self.vl as u64,
                LaneAccounting::Scalar => 0,
            };
            counters::bump(class, 1, lanes, 1);
        }
    }

    /// Harness-level ops (`whilelt`, loads/stores, reductions, raw inputs)
    /// have no trace representation — the replay harness owns them.
    fn no_trace(&self, what: &str) {
        assert!(
            self.trace.is_none(),
            "{what} cannot be recorded into a trace; use the TraceBuilder \
             harness (loop_pred / input_* / taps) instead"
        );
    }

    // ---------------- constants and setup (not recorded: hoisted) --------

    /// Broadcast an `f64` constant (loop-invariant; not recorded).
    pub fn dup_f64(&mut self, c: f64) -> VVal {
        let bits = vec![c.to_bits(); self.vl];
        let id = self.fresh();
        if let Some(tr) = &mut self.trace {
            let dst = tr.new_v(id);
            tr.push_setup(TOp::ConstV {
                dst,
                lanes: bits.clone(),
            });
        }
        VVal { bits, id }
    }

    /// Broadcast an `i64` constant (loop-invariant; not recorded).
    pub fn dup_i64(&mut self, c: i64) -> VVal {
        let bits = vec![c as u64; self.vl];
        let id = self.fresh();
        if let Some(tr) = &mut self.trace {
            let dst = tr.new_v(id);
            tr.push_setup(TOp::ConstV {
                dst,
                lanes: bits.clone(),
            });
        }
        VVal { bits, id }
    }

    /// `INDEX z, #start, #step` (not recorded: setup). Wrapping arithmetic,
    /// as the hardware's lane counters wrap.
    pub fn index(&mut self, start: i64, step: i64) -> VVal {
        let bits: Vec<u64> = (0..self.vl)
            .map(|l| start.wrapping_add(step.wrapping_mul(l as i64)) as u64)
            .collect();
        let id = self.fresh();
        if let Some(tr) = &mut self.trace {
            let dst = tr.new_v(id);
            tr.push_setup(TOp::ConstV {
                dst,
                lanes: bits.clone(),
            });
        }
        VVal { bits, id }
    }

    /// All-true predicate (not recorded: setup).
    pub fn ptrue(&mut self) -> Pred {
        let id = self.fresh();
        if let Some(tr) = &mut self.trace {
            let dst = tr.new_p(id);
            tr.push_setup(TOp::Ptrue { dst });
        }
        Pred {
            mask: vec![true; self.vl],
            id,
        }
    }

    /// An uninitialized-id wrapper for external inputs (tests/kernels).
    pub fn input_f64(&mut self, lanes: &[f64]) -> VVal {
        self.no_trace("input_f64");
        assert_eq!(lanes.len(), self.vl);
        VVal {
            bits: lanes.iter().map(|x| x.to_bits()).collect(),
            id: self.fresh(),
        }
    }

    /// Integer-lane input (e.g. an index vector loaded by a kernel).
    pub fn input_i64(&mut self, lanes: &[i64]) -> VVal {
        self.no_trace("input_i64");
        assert_eq!(lanes.len(), self.vl);
        VVal {
            bits: lanes.iter().map(|&x| x as u64).collect(),
            id: self.fresh(),
        }
    }

    // ---------------- predicates -----------------------------------------

    /// `WHILELT`: lanes `[i, i+vl)` active while `< n`. Recorded (this is
    /// the per-iteration cost of the vector-length-agnostic loop structure
    /// that Section IV measures at +0.2 cycles/element).
    pub fn whilelt(&mut self, i: usize, n: usize) -> Pred {
        self.no_trace("whilelt");
        let mask = (0..self.vl).map(|l| i + l < n).collect();
        let id = self.fresh();
        self.rec(OpClass::PredOp, Some(id), &[]);
        Pred { mask, id }
    }

    /// `PTEST`-style continuation check (recorded as predicate work).
    pub fn ptest(&mut self, p: &Pred) -> bool {
        self.no_trace("ptest");
        self.rec(OpClass::PredOp, None, &[p.id]);
        p.any()
    }

    /// Logical AND of predicates.
    pub fn pand(&mut self, a: &Pred, b: &Pred) -> Pred {
        let mask: Vec<bool> = a.mask.iter().zip(&b.mask).map(|(&x, &y)| x && y).collect();
        let id = self.fresh();
        // Predicate ops count the *result* population (both executors can
        // derive it without re-deciding what "active" means for an AND).
        self.count(OpClass::PredOp, popcount(&mask));
        self.rec(OpClass::PredOp, Some(id), &[a.id, b.id]);
        if let Some(tr) = &mut self.trace {
            let (sa, sb) = (tr.ps(a.id), tr.ps(b.id));
            let dst = tr.new_p(id);
            tr.push(TOp::Pand { dst, a: sa, b: sb });
        }
        Pred { mask, id }
    }

    // ---------------- elementwise float ops ------------------------------

    fn map2f(
        &mut self,
        op: OpClass,
        top: BinOp,
        pg: &Pred,
        a: &VVal,
        b: &VVal,
        f: impl Fn(f64, f64) -> f64,
    ) -> VVal {
        let bits = (0..self.vl)
            .map(|l| {
                if pg.mask[l] {
                    f(f64::from_bits(a.bits[l]), f64::from_bits(b.bits[l])).to_bits()
                } else {
                    a.bits[l]
                }
            })
            .collect();
        let id = self.fresh();
        self.count(op, popcount(&pg.mask));
        self.rec(op, Some(id), &[pg.id, a.id, b.id]);
        if let Some(tr) = &mut self.trace {
            let (sp, sa, sb) = (tr.ps(pg.id), tr.vs(a.id), tr.vs(b.id));
            let dst = tr.new_v(id);
            tr.push(TOp::Bin {
                op: top,
                dst,
                pg: sp,
                a: sa,
                b: sb,
            });
        }
        VVal { bits, id }
    }

    fn map1f(
        &mut self,
        op: OpClass,
        top: UnOp,
        pg: &Pred,
        a: &VVal,
        f: impl Fn(f64) -> f64,
    ) -> VVal {
        let bits = (0..self.vl)
            .map(|l| {
                if pg.mask[l] {
                    f(f64::from_bits(a.bits[l])).to_bits()
                } else {
                    a.bits[l]
                }
            })
            .collect();
        let id = self.fresh();
        self.count(op, popcount(&pg.mask));
        self.rec(op, Some(id), &[pg.id, a.id]);
        if let Some(tr) = &mut self.trace {
            let (sp, sa) = (tr.ps(pg.id), tr.vs(a.id));
            let dst = tr.new_v(id);
            tr.push(TOp::Un {
                op: top,
                dst,
                pg: sp,
                a: sa,
            });
        }
        VVal { bits, id }
    }

    pub fn fadd(&mut self, pg: &Pred, a: &VVal, b: &VVal) -> VVal {
        self.map2f(OpClass::FAdd, BinOp::FAdd, pg, a, b, |x, y| {
            lanes::dn(x + y)
        })
    }

    pub fn fsub(&mut self, pg: &Pred, a: &VVal, b: &VVal) -> VVal {
        self.map2f(OpClass::FAdd, BinOp::FSub, pg, a, b, |x, y| {
            lanes::dn(x - y)
        })
    }

    pub fn fmul(&mut self, pg: &Pred, a: &VVal, b: &VVal) -> VVal {
        self.map2f(OpClass::FMul, BinOp::FMul, pg, a, b, |x, y| {
            lanes::dn(x * y)
        })
    }

    pub fn fdiv(&mut self, pg: &Pred, a: &VVal, b: &VVal) -> VVal {
        self.map2f(OpClass::FDiv, BinOp::FDiv, pg, a, b, |x, y| {
            lanes::dn(x / y)
        })
    }

    pub fn fsqrt(&mut self, pg: &Pred, a: &VVal) -> VVal {
        self.map1f(OpClass::FSqrt, UnOp::Sqrt, pg, a, |x| lanes::dn(x.sqrt()))
    }

    pub fn fneg(&mut self, pg: &Pred, a: &VVal) -> VVal {
        self.map1f(OpClass::FAbsNeg, UnOp::Neg, pg, a, |x| -x)
    }

    pub fn fabs(&mut self, pg: &Pred, a: &VVal) -> VVal {
        self.map1f(OpClass::FAbsNeg, UnOp::Abs, pg, a, f64::abs)
    }

    pub fn fmax(&mut self, pg: &Pred, a: &VVal, b: &VVal) -> VVal {
        self.map2f(OpClass::FMinMax, BinOp::FMax, pg, a, b, |x, y| {
            f64::from_bits(lanes::fmax_lane(x.to_bits(), y.to_bits()))
        })
    }

    pub fn fmin(&mut self, pg: &Pred, a: &VVal, b: &VVal) -> VVal {
        self.map2f(OpClass::FMinMax, BinOp::FMin, pg, a, b, |x, y| {
            f64::from_bits(lanes::fmin_lane(x.to_bits(), y.to_bits()))
        })
    }

    fn fused_mla(&mut self, neg: bool, pg: &Pred, c: &VVal, a: &VVal, b: &VVal) -> VVal {
        let bits = (0..self.vl)
            .map(|l| {
                if pg.mask[l] {
                    let av = f64::from_bits(a.bits[l]);
                    let av = if neg { -av } else { av };
                    lanes::dn(av.mul_add(f64::from_bits(b.bits[l]), f64::from_bits(c.bits[l])))
                        .to_bits()
                } else {
                    c.bits[l]
                }
            })
            .collect();
        let id = self.fresh();
        self.count(OpClass::Fma, popcount(&pg.mask));
        self.rec(OpClass::Fma, Some(id), &[pg.id, c.id, a.id, b.id]);
        if let Some(tr) = &mut self.trace {
            let (sp, sc, sa, sb) = (tr.ps(pg.id), tr.vs(c.id), tr.vs(a.id), tr.vs(b.id));
            let dst = tr.new_v(id);
            tr.push(TOp::Fmla {
                neg,
                dst,
                pg: sp,
                c: sc,
                a: sa,
                b: sb,
            });
        }
        VVal { bits, id }
    }

    /// Fused multiply-add `a*b + c` (`FMLA` with the accumulator third).
    pub fn fmla(&mut self, pg: &Pred, c: &VVal, a: &VVal, b: &VVal) -> VVal {
        self.fused_mla(false, pg, c, a, b)
    }

    /// Fused multiply-subtract `c - a*b` (`FMLS`).
    pub fn fmls(&mut self, pg: &Pred, c: &VVal, a: &VVal, b: &VVal) -> VVal {
        self.fused_mla(true, pg, c, a, b)
    }

    fn estimate(&mut self, rsqrt: bool, a: &VVal) -> VVal {
        let bits = (0..self.vl)
            .map(|l| {
                if rsqrt {
                    lanes::rsqrte_lane(a.bits[l])
                } else {
                    lanes::recpe_lane(a.bits[l])
                }
            })
            .collect();
        let id = self.fresh();
        let op = if rsqrt {
            OpClass::FRsqrte
        } else {
            OpClass::FRecpe
        };
        // Estimates are unpredicated: lane accounting derives `vl`.
        self.count(op, 0);
        self.rec(op, Some(id), &[a.id]);
        if let Some(tr) = &mut self.trace {
            let sa = tr.vs(a.id);
            let dst = tr.new_v(id);
            tr.push(TOp::Est { rsqrt, dst, a: sa });
        }
        VVal { bits, id }
    }

    /// Reciprocal estimate (`FRECPE`): ~8 significant bits, like hardware.
    pub fn frecpe(&mut self, a: &VVal) -> VVal {
        self.estimate(false, a)
    }

    /// Reciprocal square-root estimate (`FRSQRTE`): ~8 significant bits.
    pub fn frsqrte(&mut self, a: &VVal) -> VVal {
        self.estimate(true, a)
    }

    fn newton_step(&mut self, rsqrt: bool, pg: &Pred, a: &VVal, b: &VVal) -> VVal {
        let bits = (0..self.vl)
            .map(|l| {
                if pg.mask[l] {
                    let x = f64::from_bits(a.bits[l]);
                    let y = f64::from_bits(b.bits[l]);
                    if rsqrt {
                        lanes::rsqrts_lane(x, y).to_bits()
                    } else {
                        lanes::recps_lane(x, y).to_bits()
                    }
                } else {
                    a.bits[l]
                }
            })
            .collect();
        let id = self.fresh();
        self.count(OpClass::Fma, popcount(&pg.mask));
        self.rec(OpClass::Fma, Some(id), &[pg.id, a.id, b.id]);
        if let Some(tr) = &mut self.trace {
            let (sp, sa, sb) = (tr.ps(pg.id), tr.vs(a.id), tr.vs(b.id));
            let dst = tr.new_v(id);
            tr.push(TOp::NewtonStep {
                rsqrt,
                dst,
                pg: sp,
                a: sa,
                b: sb,
            });
        }
        VVal { bits, id }
    }

    /// Newton refinement step for reciprocal (`FRECPS`): `2 - a*b`.
    pub fn frecps(&mut self, pg: &Pred, a: &VVal, b: &VVal) -> VVal {
        self.newton_step(false, pg, a, b)
    }

    /// Newton refinement step for rsqrt (`FRSQRTS`): `(3 - a*b) / 2`.
    pub fn frsqrts(&mut self, pg: &Pred, a: &VVal, b: &VVal) -> VVal {
        self.newton_step(true, pg, a, b)
    }

    /// `FEXPA` (bit-exact; see [`crate::fexpa`]).
    pub fn fexpa(&mut self, a: &VVal) -> VVal {
        let bits = (0..self.vl)
            .map(|l| fexpa_lane(a.bits[l]).to_bits())
            .collect();
        let id = self.fresh();
        if self.trace.is_none() {
            counters::bump_fexpa(1, self.vl as u64);
        }
        self.rec(OpClass::Fexpa, Some(id), &[a.id]);
        if let Some(tr) = &mut self.trace {
            let sa = tr.vs(a.id);
            let dst = tr.new_v(id);
            tr.push(TOp::Fexpa { dst, a: sa });
        }
        VVal { bits, id }
    }

    /// `FTMAD`-style trig step: `a*b + coeff` with a hardware coefficient,
    /// recorded to the FTMAD cost class (FLA pipe only on A64FX).
    pub fn ftmad(&mut self, pg: &Pred, a: &VVal, b: &VVal, coeff: f64) -> VVal {
        let bits = (0..self.vl)
            .map(|l| {
                if pg.mask[l] {
                    lanes::dn(f64::from_bits(a.bits[l]).mul_add(f64::from_bits(b.bits[l]), coeff))
                        .to_bits()
                } else {
                    a.bits[l]
                }
            })
            .collect();
        let id = self.fresh();
        self.count(OpClass::Ftmad, popcount(&pg.mask));
        self.rec(OpClass::Ftmad, Some(id), &[pg.id, a.id, b.id]);
        if let Some(tr) = &mut self.trace {
            let (sp, sa, sb) = (tr.ps(pg.id), tr.vs(a.id), tr.vs(b.id));
            let dst = tr.new_v(id);
            tr.push(TOp::Ftmad {
                dst,
                pg: sp,
                a: sa,
                b: sb,
                coeff,
            });
        }
        VVal { bits, id }
    }

    /// Round to nearest integral value (`FRINTN`).
    pub fn frintn(&mut self, pg: &Pred, a: &VVal) -> VVal {
        self.map1f(OpClass::FRound, UnOp::Rintn, pg, a, lanes::frintn_lane)
    }

    fn fcmp(&mut self, op: CmpOp, pg: &Pred, a: &VVal, b: &VVal) -> Pred {
        let mask = (0..self.vl)
            .map(|l| {
                pg.mask[l] && {
                    let x = f64::from_bits(a.bits[l]);
                    let y = f64::from_bits(b.bits[l]);
                    match op {
                        CmpOp::Gt => x > y,
                        CmpOp::Ge => x >= y,
                        CmpOp::Eq => x == y,
                    }
                }
            })
            .collect();
        let id = self.fresh();
        self.count(OpClass::FCmp, popcount(&pg.mask));
        self.rec(OpClass::FCmp, Some(id), &[pg.id, a.id, b.id]);
        if let Some(tr) = &mut self.trace {
            let (sp, sa, sb) = (tr.ps(pg.id), tr.vs(a.id), tr.vs(b.id));
            let dst = tr.new_p(id);
            tr.push(TOp::Cmp {
                op,
                dst,
                pg: sp,
                a: sa,
                b: sb,
            });
        }
        Pred { mask, id }
    }

    /// Float compare greater-than, producing a predicate (`FCMGT`).
    pub fn fcmgt(&mut self, pg: &Pred, a: &VVal, b: &VVal) -> Pred {
        self.fcmp(CmpOp::Gt, pg, a, b)
    }

    /// Float compare greater-or-equal (`FCMGE`).
    pub fn fcmge(&mut self, pg: &Pred, a: &VVal, b: &VVal) -> Pred {
        self.fcmp(CmpOp::Ge, pg, a, b)
    }

    /// Float compare equal (`FCMEQ`).
    pub fn fcmeq(&mut self, pg: &Pred, a: &VVal, b: &VVal) -> Pred {
        self.fcmp(CmpOp::Eq, pg, a, b)
    }

    /// Integer compare-not-equal against an immediate (`CMPNE`), producing
    /// a predicate — used for quadrant selection in the sin kernel.
    pub fn cmpne_imm(&mut self, pg: &Pred, a: &VVal, imm: i64) -> Pred {
        let mask = (0..self.vl)
            .map(|l| pg.mask[l] && (a.bits[l] as i64) != imm)
            .collect();
        let id = self.fresh();
        self.count(OpClass::FCmp, popcount(&pg.mask));
        self.rec(OpClass::FCmp, Some(id), &[pg.id, a.id]);
        if let Some(tr) = &mut self.trace {
            let (sp, sa) = (tr.ps(pg.id), tr.vs(a.id));
            let dst = tr.new_p(id);
            tr.push(TOp::CmpNeImm {
                dst,
                pg: sp,
                a: sa,
                imm,
            });
        }
        Pred { mask, id }
    }

    /// Select lanes: active → `a`, inactive → `b` (`SEL`).
    pub fn sel(&mut self, pg: &Pred, a: &VVal, b: &VVal) -> VVal {
        let bits = (0..self.vl)
            .map(|l| if pg.mask[l] { a.bits[l] } else { b.bits[l] })
            .collect();
        let id = self.fresh();
        self.count(OpClass::Select, popcount(&pg.mask));
        self.rec(OpClass::Select, Some(id), &[pg.id, a.id, b.id]);
        if let Some(tr) = &mut self.trace {
            let (sp, sa, sb) = (tr.ps(pg.id), tr.vs(a.id), tr.vs(b.id));
            let dst = tr.new_v(id);
            tr.push(TOp::Sel {
                dst,
                pg: sp,
                a: sa,
                b: sb,
            });
        }
        VVal { bits, id }
    }

    /// Horizontal sum of active lanes (`FADDA`-style, returned as scalar).
    pub fn faddv(&mut self, pg: &Pred, a: &VVal) -> f64 {
        self.no_trace("faddv");
        self.rec(OpClass::FAdd, None, &[pg.id, a.id]);
        (0..self.vl)
            .filter(|&l| pg.mask[l])
            .map(|l| f64::from_bits(a.bits[l]))
            .sum()
    }

    // ---------------- int / bit ops on lanes ------------------------------

    fn map2i(
        &mut self,
        top: BinOp,
        pg: &Pred,
        a: &VVal,
        b: &VVal,
        f: impl Fn(i64, i64) -> i64,
    ) -> VVal {
        let bits = (0..self.vl)
            .map(|l| {
                if pg.mask[l] {
                    f(a.bits[l] as i64, b.bits[l] as i64) as u64
                } else {
                    a.bits[l]
                }
            })
            .collect();
        let id = self.fresh();
        self.count(OpClass::VecIntOp, popcount(&pg.mask));
        self.rec(OpClass::VecIntOp, Some(id), &[pg.id, a.id, b.id]);
        if let Some(tr) = &mut self.trace {
            let (sp, sa, sb) = (tr.ps(pg.id), tr.vs(a.id), tr.vs(b.id));
            let dst = tr.new_v(id);
            tr.push(TOp::Bin {
                op: top,
                dst,
                pg: sp,
                a: sa,
                b: sb,
            });
        }
        VVal { bits, id }
    }

    pub fn add_i(&mut self, pg: &Pred, a: &VVal, b: &VVal) -> VVal {
        self.map2i(BinOp::IAdd, pg, a, b, i64::wrapping_add)
    }

    pub fn sub_i(&mut self, pg: &Pred, a: &VVal, b: &VVal) -> VVal {
        self.map2i(BinOp::ISub, pg, a, b, i64::wrapping_sub)
    }

    pub fn mul_i(&mut self, pg: &Pred, a: &VVal, b: &VVal) -> VVal {
        self.map2i(BinOp::IMul, pg, a, b, i64::wrapping_mul)
    }

    pub fn and_u(&mut self, pg: &Pred, a: &VVal, b: &VVal) -> VVal {
        self.map2i(BinOp::And, pg, a, b, |x, y| {
            ((x as u64) & (y as u64)) as i64
        })
    }

    pub fn orr_u(&mut self, pg: &Pred, a: &VVal, b: &VVal) -> VVal {
        self.map2i(BinOp::Orr, pg, a, b, |x, y| {
            ((x as u64) | (y as u64)) as i64
        })
    }

    /// Bitwise XOR (`EOR`).
    pub fn eor_u(&mut self, pg: &Pred, a: &VVal, b: &VVal) -> VVal {
        self.map2i(BinOp::Eor, pg, a, b, |x, y| {
            ((x as u64) ^ (y as u64)) as i64
        })
    }

    fn shift(&mut self, op: ShiftOp, pg: &Pred, a: &VVal, sh: u32) -> VVal {
        let bits = (0..self.vl)
            .map(|l| {
                if pg.mask[l] {
                    match op {
                        ShiftOp::Lsl => a.bits[l] << sh,
                        ShiftOp::Lsr => a.bits[l] >> sh,
                        ShiftOp::Asr => ((a.bits[l] as i64) >> sh) as u64,
                    }
                } else {
                    a.bits[l]
                }
            })
            .collect();
        let id = self.fresh();
        self.count(OpClass::VecIntOp, popcount(&pg.mask));
        self.rec(OpClass::VecIntOp, Some(id), &[pg.id, a.id]);
        if let Some(tr) = &mut self.trace {
            let (sp, sa) = (tr.ps(pg.id), tr.vs(a.id));
            let dst = tr.new_v(id);
            tr.push(TOp::Shift {
                op,
                dst,
                pg: sp,
                a: sa,
                sh,
            });
        }
        VVal { bits, id }
    }

    pub fn lsl(&mut self, pg: &Pred, a: &VVal, sh: u32) -> VVal {
        self.shift(ShiftOp::Lsl, pg, a, sh)
    }

    /// Logical (unsigned) shift right.
    pub fn lsr(&mut self, pg: &Pred, a: &VVal, sh: u32) -> VVal {
        self.shift(ShiftOp::Lsr, pg, a, sh)
    }

    pub fn asr(&mut self, pg: &Pred, a: &VVal, sh: u32) -> VVal {
        self.shift(ShiftOp::Asr, pg, a, sh)
    }

    fn convert(&mut self, op: CvtOp, pg: &Pred, a: &VVal) -> VVal {
        let bits = (0..self.vl)
            .map(|l| {
                if pg.mask[l] {
                    match op {
                        CvtOp::Ucvtf => lanes::ucvtf_lane(a.bits[l]),
                        CvtOp::Fcvtns => lanes::fcvtns_lane(a.bits[l]),
                        CvtOp::Fcvtzs => lanes::fcvtzs_lane(a.bits[l]),
                        CvtOp::Scvtf => lanes::scvtf_lane(a.bits[l]),
                    }
                } else {
                    a.bits[l]
                }
            })
            .collect();
        let id = self.fresh();
        self.count(OpClass::FCvt, popcount(&pg.mask));
        self.rec(OpClass::FCvt, Some(id), &[pg.id, a.id]);
        if let Some(tr) = &mut self.trace {
            let (sp, sa) = (tr.ps(pg.id), tr.vs(a.id));
            let dst = tr.new_v(id);
            tr.push(TOp::Cvt {
                op,
                dst,
                pg: sp,
                a: sa,
            });
        }
        VVal { bits, id }
    }

    /// Unsigned int → float (`UCVTF`).
    pub fn ucvtf(&mut self, pg: &Pred, a: &VVal) -> VVal {
        self.convert(CvtOp::Ucvtf, pg, a)
    }

    /// Float → int, round to nearest (`FCVTNS`-like).
    pub fn fcvtns(&mut self, pg: &Pred, a: &VVal) -> VVal {
        self.convert(CvtOp::Fcvtns, pg, a)
    }

    /// Float → int, truncate toward zero (`FCVTZS`).
    pub fn fcvtzs(&mut self, pg: &Pred, a: &VVal) -> VVal {
        self.convert(CvtOp::Fcvtzs, pg, a)
    }

    /// Int → float (`SCVTF`).
    pub fn scvtf(&mut self, pg: &Pred, a: &VVal) -> VVal {
        self.convert(CvtOp::Scvtf, pg, a)
    }

    /// `COMPACT`: pack the active lanes to the front (inactive lanes fill
    /// with zero) — the "splitting/merging vectors to avoid divergent
    /// execution paths" primitive the paper's §III mentions.
    pub fn compact(&mut self, pg: &Pred, a: &VVal) -> VVal {
        let mut bits: Vec<u64> = Vec::with_capacity(self.vl);
        for l in 0..self.vl {
            if pg.mask[l] {
                bits.push(a.bits[l]);
            }
        }
        bits.resize(self.vl, 0);
        let id = self.fresh();
        self.count(OpClass::Permute, popcount(&pg.mask));
        self.rec(OpClass::Permute, Some(id), &[pg.id, a.id]);
        if let Some(tr) = &mut self.trace {
            let (sp, sa) = (tr.ps(pg.id), tr.vs(a.id));
            let dst = tr.new_v(id);
            tr.push(TOp::Compact { dst, pg: sp, a: sa });
        }
        VVal { bits, id }
    }

    // ---------------- memory ---------------------------------------------

    /// Contiguous load of up to `vl` doubles from `data[offset..]`
    /// (`LD1D`). Inactive or out-of-bounds lanes load 0.
    pub fn ld1d(&mut self, pg: &Pred, data: &[f64], offset: usize) -> VVal {
        self.no_trace("ld1d");
        let bits = (0..self.vl)
            .map(|l| {
                if pg.mask[l] && offset + l < data.len() {
                    data[offset + l].to_bits()
                } else {
                    0u64
                }
            })
            .collect();
        let id = self.fresh();
        obs::add(Counter::BytesLoaded, 8 * popcount(&pg.mask));
        self.rec(OpClass::Load, Some(id), &[pg.id]);
        VVal { bits, id }
    }

    /// Contiguous store (`ST1D`).
    pub fn st1d(&mut self, pg: &Pred, v: &VVal, data: &mut [f64], offset: usize) {
        self.no_trace("st1d");
        for l in 0..self.vl {
            if pg.mask[l] && offset + l < data.len() {
                data[offset + l] = f64::from_bits(v.bits[l]);
            }
        }
        obs::add(Counter::BytesStored, 8 * popcount(&pg.mask));
        self.rec(OpClass::Store, None, &[pg.id, v.id]);
    }

    /// Gather load `data[idx[l]]` (`LD1D (gather)`); `uops` lets callers
    /// attach the 128-byte-window pairing analysis from `ookami-mem`.
    /// Under tracing the table is captured by value: replays read a
    /// record-time copy.
    pub fn ld1d_gather(&mut self, pg: &Pred, data: &[f64], idx: &VVal, uops: u32) -> VVal {
        let bits = (0..self.vl)
            .map(|l| {
                let i = idx.bits[l] as usize;
                if pg.mask[l] && i < data.len() {
                    data[i].to_bits()
                } else {
                    0u64
                }
            })
            .collect();
        let id = self.fresh();
        if self.trace.is_none() {
            counters::bump_gather(1, popcount(&pg.mask), uops.max(1) as u64);
        }
        self.rec_hint(OpClass::Gather, Some(id), &[pg.id, idx.id], uops);
        if let Some(tr) = &mut self.trace {
            let tab = tr.capture_tab(data);
            let (sp, si) = (tr.ps(pg.id), tr.vs(idx.id));
            let dst = tr.new_v(id);
            tr.push(TOp::Gather {
                dst,
                pg: sp,
                idx: si,
                tab,
                uops,
            });
        }
        VVal { bits, id }
    }

    /// Scatter store `data[idx[l]] = v[l]` (`ST1D (scatter)`).
    /// Under tracing the *pre-write* table contents are captured; replays
    /// scatter into the replayer's working copy ([`crate::trace::Replayer::table`]).
    pub fn st1d_scatter(&mut self, pg: &Pred, v: &VVal, data: &mut [f64], idx: &VVal) {
        let tab = self.trace.as_mut().map(|tr| tr.capture_tab(data));
        for l in 0..self.vl {
            let i = idx.bits[l] as usize;
            if pg.mask[l] && i < data.len() {
                data[i] = f64::from_bits(v.bits[l]);
            }
        }
        if self.trace.is_none() {
            counters::bump_scatter(1, popcount(&pg.mask));
        }
        self.rec(OpClass::Scatter, None, &[pg.id, v.id, idx.id]);
        if let Some(tr) = &mut self.trace {
            let op = TOp::Scatter {
                pg: tr.ps(pg.id),
                v: tr.vs(v.id),
                idx: tr.vs(idx.id),
                tab: tab.expect("table captured above when tracing"),
            };
            tr.push(op);
        }
    }

    // ---------------- loop bookkeeping ------------------------------------

    /// Record the scalar overhead of one loop iteration: `int_ops` address/
    /// counter updates plus the back-edge branch.
    pub fn loop_overhead(&mut self, int_ops: usize) {
        if self.trace.is_none() {
            counters::bump(OpClass::IntAlu, int_ops as u64, 0, 1);
            counters::bump(OpClass::Branch, 1, 0, 1);
        }
        for _ in 0..int_ops {
            self.rec(OpClass::IntAlu, None, &[]);
        }
        self.rec(OpClass::Branch, None, &[]);
        if let Some(tr) = &mut self.trace {
            tr.push(TOp::Overhead { int_ops });
        }
    }

    /// Record a scalar libm call retiring one element (the GNU-on-A64FX
    /// fallback path for exp/sin/pow).
    pub fn scalar_libm_call(&mut self) {
        self.count(OpClass::ScalarLibmCall, 0);
        self.rec(OpClass::ScalarLibmCall, None, &[]);
        if let Some(tr) = &mut self.trace {
            tr.push(TOp::LibmCall);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> SveCtx {
        SveCtx::new(8)
    }

    #[test]
    fn arithmetic_matches_scalar() {
        let mut c = ctx();
        let pg = c.ptrue();
        let a = c.input_f64(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
        let b = c.dup_f64(0.5);
        let s = c.fadd(&pg, &a, &b);
        let m = c.fmul(&pg, &a, &b);
        let f = c.fmla(&pg, &s, &a, &b);
        for l in 0..8 {
            let x = (l + 1) as f64;
            assert_eq!(s.f64_lane(l), x + 0.5);
            assert_eq!(m.f64_lane(l), x * 0.5);
            assert_eq!(f.f64_lane(l), x.mul_add(0.5, x + 0.5));
        }
    }

    #[test]
    fn predication_merges_first_operand() {
        let mut c = ctx();
        let a = c.input_f64(&[1.0; 8]);
        let b = c.dup_f64(10.0);
        let zero = c.dup_f64(0.0);
        let all = c.ptrue();
        let pg = c.fcmgt(&all, &a, &zero); // all true
        let half = Pred {
            mask: (0..8).map(|l| l % 2 == 0).collect(),
            id: pg.id,
        };
        let r = c.fadd(&half, &a, &b);
        for l in 0..8 {
            let want = if l % 2 == 0 { 11.0 } else { 1.0 };
            assert_eq!(r.f64_lane(l), want, "lane {l}");
        }
    }

    #[test]
    fn whilelt_tail_handling() {
        let mut c = ctx();
        let p = c.whilelt(16, 19);
        assert_eq!(p.count_active(), 3);
        assert!(p.any());
        let p2 = c.whilelt(24, 19);
        assert!(!p2.any());
    }

    #[test]
    fn load_store_roundtrip() {
        let mut c = ctx();
        let pg = c.ptrue();
        let src: Vec<f64> = (0..32).map(|i| i as f64).collect();
        let mut dst = vec![0.0; 32];
        for off in (0..32).step_by(8) {
            let v = c.ld1d(&pg, &src, off);
            c.st1d(&pg, &v, &mut dst, off);
        }
        assert_eq!(src, dst);
    }

    #[test]
    fn gather_scatter_permutation_roundtrip() {
        let mut c = ctx();
        let pg = c.ptrue();
        let src: Vec<f64> = (0..8).map(|i| i as f64 * 1.5).collect();
        let mut dst = vec![0.0; 8];
        let perm = [3i64, 1, 4, 0, 6, 2, 7, 5];
        let idxbits: Vec<u64> = perm.iter().map(|&i| i as u64).collect();
        let idx = VVal {
            bits: idxbits,
            id: 99,
        };
        let g = c.ld1d_gather(&pg, &src, &idx, 8);
        for l in 0..8 {
            assert_eq!(g.f64_lane(l), src[perm[l] as usize]);
        }
        c.st1d_scatter(&pg, &g, &mut dst, &idx);
        // scatter(gather(x, p), p) restores the original
        assert_eq!(dst, src);
    }

    #[test]
    fn newton_reciprocal_converges() {
        let mut c = ctx();
        let pg = c.ptrue();
        let x = c.input_f64(&[0.1, 0.5, 1.0, 2.0, 3.0, 7.0, 100.0, 12345.0]);
        let mut y = c.frecpe(&x);
        for _ in 0..3 {
            let corr = c.frecps(&pg, &x, &y); // 2 - x*y
            y = c.fmul(&pg, &y, &corr);
        }
        for l in 0..8 {
            let want = 1.0 / x.f64_lane(l);
            let got = y.f64_lane(l);
            assert!(
                (got / want - 1.0).abs() < 1e-14,
                "lane {l}: {got} vs {want}"
            );
        }
    }

    #[test]
    fn newton_rsqrt_converges() {
        let mut c = ctx();
        let pg = c.ptrue();
        let x = c.input_f64(&[0.25, 1.0, 2.0, 4.0, 9.0, 100.0, 0.01, 64.0]);
        let mut y = c.frsqrte(&x);
        for _ in 0..3 {
            let xy = c.fmul(&pg, &x, &y);
            let corr = c.frsqrts(&pg, &xy, &y); // (3 - x*y*y)/2
            y = c.fmul(&pg, &y, &corr);
        }
        for l in 0..8 {
            let want = 1.0 / x.f64_lane(l).sqrt();
            let got = y.f64_lane(l);
            assert!(
                (got / want - 1.0).abs() < 1e-13,
                "lane {l}: {got} vs {want}"
            );
        }
    }

    #[test]
    fn recording_captures_def_use() {
        let mut c = ctx();
        let pg = c.ptrue();
        let a = c.dup_f64(1.0);
        let b = c.dup_f64(2.0);
        c.start_recording();
        let s = c.fadd(&pg, &a, &b);
        let _t = c.fmul(&pg, &s, &b);
        c.loop_overhead(2);
        let log = c.take_recording();
        assert_eq!(log.len(), 5); // fadd, fmul, 2×IntAlu, branch
        assert_eq!(log[0].op, OpClass::FAdd);
        assert_eq!(log[1].op, OpClass::FMul);
        // fmul's sources include fadd's destination
        assert!(log[1].srcs.contains(&log[0].dst.unwrap()));
        assert_eq!(log[4].op, OpClass::Branch);
    }

    #[test]
    fn gather_uops_hint_recorded() {
        let mut c = ctx();
        let pg = c.ptrue();
        let idx = c.index(0, 1);
        c.start_recording();
        let _ = c.ld1d_gather(&pg, &[1.0; 8], &idx, 4);
        let log = c.take_recording();
        assert_eq!(log[0].uops_hint, Some(4));
    }

    #[test]
    fn faddv_sums_active_lanes() {
        let mut c = ctx();
        let a = c.input_f64(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
        let pg = c.whilelt(0, 4);
        let s = c.faddv(&pg, &a);
        assert_eq!(s, 10.0);
    }

    #[test]
    fn int_ops_and_conversions() {
        let mut c = ctx();
        let pg = c.ptrue();
        let x = c.input_f64(&[1.4, 2.5, -3.5, 7.9, 0.0, -0.4, 100.6, -1.5]);
        let n = c.fcvtns(&pg, &x);
        assert_eq!(n.to_i64_vec(), vec![1, 2, -4, 8, 0, 0, 101, -2]);
        let back = c.scvtf(&pg, &n);
        assert_eq!(back.f64_lane(3), 8.0);
        let one = c.dup_i64(1);
        let shifted = c.lsl(&pg, &one, 6);
        assert_eq!(shifted.i64_lane(0), 64);
        let neg = c.dup_i64(-128);
        let a = c.asr(&pg, &neg, 6);
        assert_eq!(a.i64_lane(0), -2);
    }

    #[test]
    fn smaller_vector_lengths() {
        for vl in [1usize, 2, 4] {
            let mut c = SveCtx::new(vl);
            let pg = c.ptrue();
            let a = c.dup_f64(3.0);
            let b = c.dup_f64(4.0);
            let s = c.fadd(&pg, &a, &b);
            assert_eq!(s.vl(), vl);
            assert_eq!(s.f64_lane(vl - 1), 7.0);
        }
    }

    // --- register-id wraparound (satellite regression tests) ---

    #[test]
    fn ids_saturate_instead_of_wrapping_outside_recording() {
        let mut c = ctx();
        c.force_next_reg(Reg::MAX - 1);
        let a = c.dup_f64(1.0); // takes MAX-1
        let b = c.dup_f64(2.0); // takes MAX, saturates
        let d = c.dup_f64(3.0); // stays at MAX — never wraps to collide with a
        assert_eq!(a.id, Reg::MAX - 1);
        assert_eq!(b.id, Reg::MAX);
        assert_eq!(d.id, Reg::MAX);
    }

    #[test]
    #[should_panic(expected = "register ids exhausted")]
    fn ids_panic_instead_of_colliding_under_recording() {
        let mut c = ctx();
        let pg = c.ptrue();
        let a = c.dup_f64(1.0);
        c.force_next_reg(Reg::MAX);
        c.start_recording();
        // first op takes id MAX; incrementing past it must panic, not wrap
        // back over `pg`/`a`'s live low ids.
        let _ = c.fadd(&pg, &a, &a);
    }
}
