//! Vector and predicate values.

use ookami_uarch::Reg;

/// A vector register value: `vl` lanes of 64 raw bits each, with a virtual
/// register id for dependency tracking. Lanes can be viewed as `f64` or
/// `i64`; like hardware, the emulator does not track which view is "live".
#[derive(Debug, Clone, PartialEq)]
pub struct VVal {
    pub(crate) bits: Vec<u64>,
    pub(crate) id: Reg,
}

impl VVal {
    pub fn vl(&self) -> usize {
        self.bits.len()
    }

    pub fn id(&self) -> Reg {
        self.id
    }

    pub fn f64_lane(&self, i: usize) -> f64 {
        f64::from_bits(self.bits[i])
    }

    pub fn i64_lane(&self, i: usize) -> i64 {
        self.bits[i] as i64
    }

    pub fn to_f64_vec(&self) -> Vec<f64> {
        self.bits.iter().map(|&b| f64::from_bits(b)).collect()
    }

    pub fn to_i64_vec(&self) -> Vec<i64> {
        self.bits.iter().map(|&b| b as i64).collect()
    }
}

/// A predicate register value: one boolean per lane.
#[derive(Debug, Clone, PartialEq)]
pub struct Pred {
    pub(crate) mask: Vec<bool>,
    pub(crate) id: Reg,
}

impl Pred {
    pub fn vl(&self) -> usize {
        self.mask.len()
    }

    pub fn id(&self) -> Reg {
        self.id
    }

    pub fn lane(&self, i: usize) -> bool {
        self.mask[i]
    }

    /// Number of active lanes.
    pub fn count_active(&self) -> usize {
        self.mask.iter().filter(|&&b| b).count()
    }

    /// True if any lane is active (the `PTEST` result driving VLA loops).
    pub fn any(&self) -> bool {
        self.mask.iter().any(|&b| b)
    }
}
