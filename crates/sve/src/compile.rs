//! AOT trace compilation: SSA passes + fused native closures.
//!
//! The replayer in [`crate::trace`] interprets one [`TOp`] at a time over a
//! ≤64-lane arena — a dispatch, a predicate-mask test, and a bounds-checked
//! slice walk per op per step. This module compiles a recorded [`Trace`]
//! once and replays the compiled form many times:
//!
//! 1. **Pass pipeline** ([`optimize`]) — constant folding of ops whose
//!    vector inputs are setup constants and whose governing predicate is
//!    statically all-true, predicate simplification (`pand` with an
//!    all-true operand and `sel` under an all-true predicate dissolve into
//!    substitutions), and backward dead-def elimination. The predicate
//!    facts reuse the `{Bounded, Wide}` lattice the `ookami-check`
//!    verifier proves through [`ookami_uarch::meta::pred_transfer`]: a
//!    substitution only ever replaces a predicate with one of identical
//!    lattice value, so a verified trace stays verified (the satellite
//!    `ookamicheck` run re-proves every optimized family trace).
//! 2. **Kernel emission** — the optimized body becomes a straight line of
//!    monomorphized kernels ([`K`]) over 512-lane register-cached rows
//!    (`[u64; 512]`, SoA per SSA slot): splat constants become immediate
//!    operands, adjacent `fmul`→`fcvtns` and `fmul`→`fmla` pairs fuse when
//!    the intermediate is single-use, and all-true predicates drop their
//!    mask tests entirely. Ops under a genuinely narrow predicate compute
//!    unmasked and then merge (`(new & m) | (first_src & !m)`) — bitwise
//!    identical to the replayer's merging predication.
//! 3. **Block-scaled accounting** — obs counters are bumped once per
//!    512-lane block from the *original* (pre-pass) body, with lane counts
//!    resolved per [`ookami_uarch::meta::lane_accounting`]; on full blocks
//!    every per-`vl`-iteration count the interpreter or replayer would
//!    produce is a linear function of blocks × active lanes, so one
//!    aggregated bump per op yields bit-equal totals (see
//!    DESIGN.md §4.7 for the argument).
//!
//! Ragged tails (the final `n mod 512` elements) and traces the native
//! plan cannot express (loop-carried state, `compact`, gather/scatter)
//! fall back to the replayer on the **original** trace, preserving both
//! bits and counters exactly.

use std::collections::{HashMap, HashSet};

use crate::counters;
use crate::fexpa::{fexpa_lane, mantissa_table};
use crate::lanes;
use crate::trace::{
    bin_lane, pg_mut, top_class, top_def, top_pg, un_lane, v_srcs_mut, BinOp, CmpOp, CvtOp, PSlot,
    Replayer, ShiftOp, Slot, TOp, Trace, UnOp, VSlot,
};
use ookami_core::obs::{self, Counter, Snapshot};
use ookami_core::pool::Schedule;
use ookami_core::runtime::{par_for_with, SendPtr};
use ookami_core::scratch;
use ookami_uarch::meta::{self, LaneAccounting, PredDom};
use ookami_uarch::OpClass;

/// Lanes per compiled block: two replayer-width (64-lane) steps' worth.
/// Large enough to amortize kernel dispatch, small enough that a real
/// body's row set (~20 SSA slots × 1 KiB) stays L1-resident — the block
/// size is the dominant lever here, measured on the corrected-Estrin
/// chain: 128 ⇒ 380 M elems/s, 256 ⇒ 311 M, 512 ⇒ 252 M (80 KiB of rows
/// thrashes L1 between kernels).
pub(crate) const W: usize = 128;

/// One SSA slot's lane storage: a fixed-size row so LLVM knows the trip
/// count and autovectorizes the kernel loops (slice-length rows defeat
/// that and cost ~4x, measured).
type Row = [u64; W];

const SIGN: u64 = 1u64 << 63;

/// What the pass pipeline did to one trace.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CompileReport {
    /// Whether a native plan was built (false ⇒ every call replays).
    pub native: bool,
    /// Body ops in the recorded trace.
    pub body_ops: usize,
    /// Body ops after the pass pipeline.
    pub opt_ops: usize,
    /// Emitted native kernels (≤ `opt_ops`; fusion shrinks it).
    pub kernels: usize,
    /// Kernel pairs fused (`fmul→fcvtns`, `fmul→fmla`).
    pub fused: usize,
    /// Ops folded to setup constants.
    pub folded: usize,
    /// `pand`/`sel` ops dissolved into substitutions.
    pub pred_simplified: usize,
    /// Dead defs removed (body + setup).
    pub dead_removed: usize,
}

/// An ahead-of-time compiled trace: same bulk entry points as
/// [`Trace::map`] and friends (which lazily build the identical engine),
/// but the compile cost is paid at [`Trace::compile`] time and the
/// [`CompileReport`] is exposed.
pub struct CompiledTrace {
    t: Trace,
}

impl CompiledTrace {
    pub(crate) fn new(t: Trace) -> CompiledTrace {
        let ct = CompiledTrace { t };
        ct.t.engine(); // force the build now, not on first map
        ct
    }

    /// What the pass pipeline and kernel emitter did.
    pub fn report(&self) -> CompileReport {
        self.t.engine().report.clone()
    }

    /// Whether calls run the fused native path (vs. replayer fallback).
    pub fn is_native(&self) -> bool {
        self.t.engine().plan.is_some()
    }

    /// See [`Trace::map`].
    pub fn map(&self, xs: &[f64]) -> Vec<f64> {
        self.t.map(xs)
    }

    /// See [`Trace::map2`].
    pub fn map2(&self, xs: &[f64], ys: &[f64]) -> Vec<f64> {
        self.t.map2(xs, ys)
    }

    /// See [`Trace::par_map`].
    pub fn par_map(&self, threads: usize, xs: &[f64]) -> Vec<f64> {
        self.t.par_map(threads, xs)
    }

    /// See [`Trace::par_map2`].
    pub fn par_map2(&self, threads: usize, xs: &[f64], ys: &[f64]) -> Vec<f64> {
        self.t.par_map2(threads, xs, ys)
    }
}

// ---------------------------------------------------------------------------
// Pass pipeline
// ---------------------------------------------------------------------------

/// Everything the passes learned, for the engine builder.
pub(crate) struct PassOut {
    pub(crate) t: Trace,
    /// Predicate substitutions from dissolved `pand`s (fully resolved).
    pub(crate) psubst: HashMap<Slot, Slot>,
    /// Predicate slots statically all-true by construction (`ptrue`
    /// closure) — *not* the loop predicate, which narrows on tails.
    pub(crate) full: HashSet<Slot>,
    pub(crate) stats: CompileReport,
}

/// Run the pass pipeline. Public wrapper for [`Trace::optimized`].
pub(crate) fn optimize(t: &Trace) -> (Trace, CompileReport) {
    let out = run_passes(t, false);
    let stats = out.stats.clone();
    (out.t, stats)
}

fn resolve(map: &HashMap<Slot, Slot>, mut s: Slot) -> Slot {
    while let Some(&n) = map.get(&s) {
        s = n;
    }
    s
}

/// Const fold → predicate simplify → dead-def eliminate, on a clone.
///
/// `keep_acct_preds` retains every predicate the *original* body's
/// counter accounting will read at runtime (the compiled engine counts
/// the pre-pass stream), so DCE cannot strip a mask the accounting needs.
pub(crate) fn run_passes(t: &Trace, keep_acct_preds: bool) -> PassOut {
    let mut st = PassState::new(t);
    st.fold();
    st.simplify();
    st.dce(if keep_acct_preds { Some(t) } else { None });
    st.into_out()
}

/// The pass pipeline as an explicit three-step state machine, so the
/// translation-validation surface ([`crate::tv`]) can snapshot the trace
/// *between* passes. [`run_passes`] drives the steps back to back and is
/// behavior-identical to the former monolithic function.
pub(crate) struct PassState {
    /// The working clone, rewritten in place by each pass.
    pub(crate) o: Trace,
    /// Statically all-true predicates: setup ptrue, closed under pand.
    full: HashSet<Slot>,
    /// {Bounded, Wide} facts, maintained with the verifier's own transfer
    /// function so substitutions provably preserve what OC0006 proves.
    dom: HashMap<Slot, PredDom>,
    /// Predicate substitutions from dissolved `pand`s.
    pub(crate) psubst: HashMap<Slot, Slot>,
    /// Vector substitutions from dissolved full-mask `sel`s.
    pub(crate) vsubst: HashMap<Slot, Slot>,
    pub(crate) stats: CompileReport,
}

impl PassState {
    pub(crate) fn new(t: &Trace) -> PassState {
        let o = t.clone();
        let stats = CompileReport {
            body_ops: t.body.len(),
            ..CompileReport::default()
        };
        let mut full: HashSet<Slot> = HashSet::new();
        for op in &o.setup {
            if let TOp::Ptrue { dst } = *op {
                full.insert(dst);
            }
        }
        let mut dom: HashMap<Slot, PredDom> = full.iter().map(|&s| (s, PredDom::Wide)).collect();
        if let Some(lp) = o.loop_pred {
            dom.insert(lp, PredDom::Bounded);
        }
        PassState {
            o,
            full,
            dom,
            psubst: HashMap::new(),
            vsubst: HashMap::new(),
            stats,
        }
    }

    /// Pass 1: constant folding. Ops whose vector inputs are setup
    /// constants and whose governing predicate is statically all-true
    /// evaluate at compile time and move to setup as `ConstV`.
    pub(crate) fn fold(&mut self) {
        let o = &mut self.o;
        // Setup constant lanes by slot.
        let mut consts: HashMap<Slot, Vec<u64>> = HashMap::new();
        for op in &o.setup {
            if let TOp::ConstV { dst, ref lanes } = *op {
                consts.insert(dst, lanes.clone());
            }
        }
        let vl = o.vl;
        let mut kept = Vec::with_capacity(o.body.len());
        for op in std::mem::take(&mut o.body) {
            let foldable = top_pg(&op).is_none_or(|pg| self.full.contains(&pg));
            match fold_op(&op, &consts, vl) {
                Some(lanes) if foldable => {
                    let dst = top_def(&op).0.expect("folded ops define a vector");
                    consts.insert(dst, lanes.clone());
                    o.setup.push(TOp::ConstV { dst, lanes });
                    self.stats.folded += 1;
                }
                _ => kept.push(op),
            }
        }
        o.body = kept;
    }

    /// Pass 2: predicate simplification. `pand` with an all-true operand
    /// and `sel` under an all-true predicate dissolve into slot
    /// substitutions, recorded in `psubst`/`vsubst` (the witness the
    /// translation validator checks).
    pub(crate) fn simplify(&mut self) {
        let mut n_simpl = 0usize;
        let mut setup = std::mem::take(&mut self.o.setup);
        simplify_ops(
            &mut setup,
            &mut self.full,
            &mut self.dom,
            &mut self.psubst,
            &mut self.vsubst,
            &mut n_simpl,
        );
        self.o.setup = setup;
        let mut body = std::mem::take(&mut self.o.body);
        simplify_ops(
            &mut body,
            &mut self.full,
            &mut self.dom,
            &mut self.psubst,
            &mut self.vsubst,
            &mut n_simpl,
        );
        self.o.body = body;
        self.stats.pred_simplified = n_simpl;
        // Rewire the trace-level slot references through the substitutions.
        let o = &mut self.o;
        for s in o
            .outputs
            .iter_mut()
            .chain(o.tap_v.iter_mut())
            .chain(o.carries.iter_mut().flat_map(|(a, b)| [a, b]))
        {
            *s = resolve(&self.vsubst, *s);
        }
        for s in &mut o.tap_p {
            *s = resolve(&self.psubst, *s);
        }
    }

    /// Pass 3: backward dead-def elimination. `keep_acct` is the original
    /// trace whose body's accounting predicates must survive (the native
    /// engine counts the pre-pass stream), `None` for a pure optimize.
    pub(crate) fn dce(&mut self, keep_acct: Option<&Trace>) {
        let o = &mut self.o;
        let mut live_v: HashSet<Slot> = o.outputs.iter().copied().collect();
        live_v.extend(o.tap_v.iter().copied());
        live_v.extend(o.carries.iter().flat_map(|&(a, b)| [a, b]));
        let mut live_p: HashSet<Slot> = o.tap_p.iter().copied().collect();
        if let Some(t) = keep_acct {
            // The runtime accounting pops masks of the ORIGINAL body's ops
            // (post-substitution); those defs must survive.
            for op in &t.body {
                if let Some(pg) = top_pg(op) {
                    live_p.insert(resolve(&self.psubst, pg));
                }
                if let TOp::Pand { a, b, .. } = *op {
                    live_p.insert(resolve(&self.psubst, a));
                    live_p.insert(resolve(&self.psubst, b));
                }
            }
        }
        let dce = |ops: &mut Vec<TOp>,
                   live_v: &mut HashSet<Slot>,
                   live_p: &mut HashSet<Slot>,
                   removed: &mut usize| {
            let mut kept_rev = Vec::with_capacity(ops.len());
            for mut op in ops.drain(..).rev() {
                let effectful = matches!(
                    op,
                    TOp::Scatter { .. } | TOp::Overhead { .. } | TOp::LibmCall
                );
                let live = match top_def(&op) {
                    (Some(v), _) => live_v.contains(&v),
                    (_, Some(p)) => live_p.contains(&p),
                    _ => false,
                };
                if !(live || effectful) {
                    *removed += 1;
                    continue;
                }
                if let Some(pg) = pg_mut(&mut op) {
                    live_p.insert(*pg);
                }
                if let TOp::Pand { a, b, .. } = op {
                    live_p.insert(a);
                    live_p.insert(b);
                }
                for s in v_srcs_mut(&mut op) {
                    live_v.insert(*s);
                }
                kept_rev.push(op);
            }
            kept_rev.reverse();
            *ops = kept_rev;
        };
        let mut removed = 0usize;
        let mut body = std::mem::take(&mut o.body);
        dce(&mut body, &mut live_v, &mut live_p, &mut removed);
        o.body = body;
        let mut setup = std::mem::take(&mut o.setup);
        dce(&mut setup, &mut live_v, &mut live_p, &mut removed);
        o.setup = setup;
        self.stats.dead_removed = removed;
        self.stats.opt_ops = self.o.body.len();
    }

    pub(crate) fn into_out(self) -> PassOut {
        PassOut {
            t: self.o,
            psubst: self.psubst,
            full: self.full,
            stats: self.stats,
        }
    }
}

/// One `simplify` sweep over an op list (setup or body), threading the
/// lattice facts and substitution maps.
fn simplify_ops(
    ops: &mut Vec<TOp>,
    full: &mut HashSet<Slot>,
    dom: &mut HashMap<Slot, PredDom>,
    psubst: &mut HashMap<Slot, Slot>,
    vsubst: &mut HashMap<Slot, Slot>,
    n: &mut usize,
) {
    let mut kept = Vec::with_capacity(ops.len());
    for mut op in ops.drain(..) {
        // Apply accumulated substitutions first.
        if let Some(pg) = pg_mut(&mut op) {
            *pg = resolve(psubst, *pg);
        }
        for s in v_srcs_mut(&mut op) {
            *s = resolve(vsubst, *s);
        }
        match op {
            TOp::Pand { dst, mut a, mut b } => {
                a = resolve(psubst, a);
                b = resolve(psubst, b);
                let d = meta::pred_transfer(
                    OpClass::PredOp,
                    &[
                        dom.get(&a).copied().unwrap_or(PredDom::Wide),
                        dom.get(&b).copied().unwrap_or(PredDom::Wide),
                    ],
                );
                dom.insert(dst, d);
                let rep = if full.contains(&a) && full.contains(&b) {
                    full.insert(dst);
                    Some(a)
                } else if full.contains(&a) {
                    // all-true ∧ b ≡ b, and Wide ∧ dom(b) = dom(b):
                    // the substitution carries the lattice fact along.
                    Some(b)
                } else if full.contains(&b) {
                    Some(a)
                } else {
                    None
                };
                if let Some(r) = rep {
                    debug_assert_eq!(
                        d,
                        dom.get(&r).copied().unwrap_or(PredDom::Wide),
                        "pand substitution must preserve the verifier's lattice fact"
                    );
                    psubst.insert(dst, r);
                    *n += 1;
                } else {
                    kept.push(TOp::Pand { dst, a, b });
                }
            }
            TOp::Sel { dst, pg, a, .. } if full.contains(&resolve(psubst, pg)) => {
                vsubst.insert(dst, a);
                *n += 1;
            }
            TOp::Cmp { dst, .. } | TOp::CmpNeImm { dst, .. } => {
                dom.insert(dst, meta::pred_transfer(OpClass::FCmp, &[]));
                kept.push(op);
            }
            _ => kept.push(op),
        }
    }
    *ops = kept;
}

/// Evaluate one op over `vl` constant lanes, if every vector source is a
/// known setup constant and the op is a pure lanewise vector op. The
/// evaluation calls the same lane functions the replayer does, so a
/// folded constant is bit-identical to the lanes replay would compute.
pub(crate) fn fold_op(op: &TOp, consts: &HashMap<Slot, Vec<u64>>, vl: usize) -> Option<Vec<u64>> {
    let c = |s: Slot| consts.get(&s);
    let lanes1 =
        |a: &Vec<u64>, f: &dyn Fn(u64) -> u64| -> Vec<u64> { a.iter().map(|&x| f(x)).collect() };
    Some(match *op {
        TOp::Bin { op, a, b, .. } => {
            let (a, b) = (c(a)?, c(b)?);
            (0..vl).map(|l| bin_lane(op, a[l], b[l])).collect()
        }
        TOp::Un { op, a, .. } => lanes1(c(a)?, &|x| un_lane(op, x)),
        TOp::Fmla {
            neg, c: cc, a, b, ..
        } => {
            let (cc, a, b) = (c(cc)?, c(a)?, c(b)?);
            (0..vl)
                .map(|l| {
                    let av = f64::from_bits(a[l]);
                    let av = if neg { -av } else { av };
                    lanes::dn(av.mul_add(f64::from_bits(b[l]), f64::from_bits(cc[l]))).to_bits()
                })
                .collect()
        }
        TOp::Est { rsqrt, a, .. } => {
            let f: fn(u64) -> u64 = if rsqrt {
                lanes::rsqrte_lane
            } else {
                lanes::recpe_lane
            };
            lanes1(c(a)?, &f)
        }
        TOp::NewtonStep { rsqrt, a, b, .. } => {
            let (a, b) = (c(a)?, c(b)?);
            (0..vl)
                .map(|l| {
                    let (x, y) = (f64::from_bits(a[l]), f64::from_bits(b[l]));
                    if rsqrt {
                        lanes::rsqrts_lane(x, y).to_bits()
                    } else {
                        lanes::recps_lane(x, y).to_bits()
                    }
                })
                .collect()
        }
        TOp::Fexpa { a, .. } => lanes1(c(a)?, &|x| fexpa_lane(x).to_bits()),
        TOp::Ftmad { a, b, coeff, .. } => {
            let (a, b) = (c(a)?, c(b)?);
            (0..vl)
                .map(|l| {
                    lanes::dn(f64::from_bits(a[l]).mul_add(f64::from_bits(b[l]), coeff)).to_bits()
                })
                .collect()
        }
        TOp::Shift { op, a, sh, .. } => {
            let f = move |x: u64| match op {
                ShiftOp::Lsl => x << sh,
                ShiftOp::Lsr => x >> sh,
                ShiftOp::Asr => ((x as i64) >> sh) as u64,
            };
            lanes1(c(a)?, &f)
        }
        TOp::Cvt { op, a, .. } => {
            let f: fn(u64) -> u64 = match op {
                CvtOp::Ucvtf => lanes::ucvtf_lane,
                CvtOp::Fcvtns => lanes::fcvtns_lane,
                CvtOp::Fcvtzs => lanes::fcvtzs_lane,
                CvtOp::Scvtf => lanes::scvtf_lane,
            };
            lanes1(c(a)?, &f)
        }
        _ => return None,
    })
}

// ---------------------------------------------------------------------------
// Native plan
// ---------------------------------------------------------------------------

/// One fused native kernel over 512-lane rows. `RI` forms carry a splat
/// constant as an immediate (normalized onto the second operand through
/// bitwise-safe commutativity; `fmls` folds its sign into the immediate).
/// Predication is handled outside the kernel: an op under a narrow mask
/// computes unmasked and a [`K::Merge`] restores the inactive lanes.
// The `K` suffix reads as "kernel" and disambiguates from the `TOp`/`UnOp`
// names these variants lower from; renaming would only lose that link.
#[allow(clippy::enum_variant_names)]
#[derive(Debug, Clone, Copy)]
enum K {
    BinRR {
        op: BinOp,
        d: Slot,
        a: Slot,
        b: Slot,
    },
    BinRI {
        op: BinOp,
        d: Slot,
        a: Slot,
        imm: u64,
    },
    UnK {
        op: UnOp,
        d: Slot,
        a: Slot,
    },
    MlaRRR {
        neg: bool,
        d: Slot,
        c: Slot,
        a: Slot,
        b: Slot,
    },
    /// `dn(a*imm + c)` — sign of a negated multiplicand lives in `imm`.
    MlaRRI {
        d: Slot,
        c: Slot,
        a: Slot,
        imm: u64,
    },
    /// `dn(a*a_imm + c_imm)` (polynomial steps on two constants).
    MlaIRI {
        d: Slot,
        a: Slot,
        a_imm: u64,
        c_imm: u64,
    },
    EstK {
        rsqrt: bool,
        d: Slot,
        a: Slot,
    },
    NewtonK {
        rsqrt: bool,
        d: Slot,
        a: Slot,
        b: Slot,
    },
    /// Table-hoisted FEXPA: the 64-entry mantissa LUT is a plan field, so
    /// the lane loop is two shifts, a mask, and a load.
    FexpaK {
        d: Slot,
        a: Slot,
    },
    FtmadK {
        d: Slot,
        a: Slot,
        b: Slot,
        coeff: f64,
    },
    CvtK {
        op: CvtOp,
        d: Slot,
        a: Slot,
    },
    ShiftK {
        op: ShiftOp,
        d: Slot,
        a: Slot,
        sh: u32,
    },
    CmpK {
        op: CmpOp,
        d: Slot,
        m: Option<Slot>,
        a: Slot,
        b: Slot,
    },
    CmpNeImmK {
        d: Slot,
        m: Option<Slot>,
        a: Slot,
        imm: i64,
    },
    PandK {
        d: Slot,
        a: Slot,
        b: Slot,
    },
    SelK {
        d: Slot,
        m: Slot,
        a: Slot,
        b: Slot,
    },
    /// Merging predication: `d = (d & m) | (src & !m)` lanewise.
    Merge {
        d: Slot,
        m: Slot,
        src: Slot,
    },
    /// Fused `fmul`→`fcvtns`: round-to-nearest via the 1.5·2⁵² magic-add
    /// trick on the fast path (exact for |x| < 2⁵¹, ties-to-even).
    MulCvtnsRI {
        d: Slot,
        a: Slot,
        imm: u64,
    },
    MulCvtnsRR {
        d: Slot,
        a: Slot,
        b: Slot,
    },
    /// Fused `fmul`→`fmla`: `dn(dn(x*y)*o + c)`, inner `dn` kept so the
    /// value chain is bit-for-bit the unfused pair's.
    FMulMla {
        d: Slot,
        x: Slot,
        y: Slot,
        o: Slot,
        c: Slot,
    },
    /// Fused `fmul`→`fmla` where the product feeds the *addend* slot:
    /// `dn(a2*b2 + dn(x*y))` — the shape the corrected-Estrin tail uses.
    FMulMlaC {
        d: Slot,
        x: Slot,
        y: Slot,
        a2: Slot,
        b2: Slot,
    },
}

/// How many active lanes one original-body op contributes per block.
#[derive(Debug, Clone, Copy)]
enum Lanes {
    /// Statically all-true governance: `W` lanes per block.
    Full,
    /// Popcount of a mask row at runtime.
    Row(Slot),
    /// Popcount of the AND of two mask rows (`pand` result population).
    RowAnd(Slot, Slot),
    Zero,
}

/// One obs-counter bump per original-body op per full block.
#[derive(Debug, Clone, Copy)]
enum Acct {
    Bump { class: OpClass, lanes: Lanes },
    FexpaA,
    OverheadA { int_ops: u64 },
    LibmA,
}

/// Everything needed to run full 512-lane blocks without touching the
/// [`Trace`]: initial row images, the kernel line, and the accounting
/// program derived from the *original* body.
#[derive(Debug)]
pub(crate) struct Plan {
    vl: usize,
    n_v: usize,
    n_p: usize,
    inputs: Vec<Slot>,
    out: Slot,
    /// Uniform setup rows: fill with one bit pattern.
    splats: Vec<(Slot, u64)>,
    /// Non-uniform setup rows: `vl` record lanes tiled across the block.
    tiles: Vec<(Slot, Vec<u64>)>,
    /// Statically all-true mask rows (loop predicate, ptrue closure).
    pfull: Vec<Slot>,
    /// Non-uniform setup masks, tiled like [`Plan::tiles`].
    ptiles: Vec<(Slot, Vec<bool>)>,
    kernels: Vec<K>,
    /// Runtime-varying accounting only: ops whose lane count popcounts a
    /// mask row the kernels compute per block. Everything static is
    /// pre-folded into `acct_static` at build time.
    acct: Vec<Acct>,
    /// One full block's statically-known counter increments, flushed once
    /// per bulk call scaled by the block count (per-block bumps would
    /// cost more in thread-local atomics than the kernels themselves).
    acct_static: Snapshot,
    tab: [u64; 64],
    /// Process-unique identity for worker-resident [`State`] caching (see
    /// [`ookami_core::scratch`]): a parked state can only ever be
    /// re-claimed by the plan that shaped it.
    uid: u64,
}

/// The compiled engine cached on a [`Trace`]. `plan: None` means every
/// call replays the original trace (non-batchable shapes, gather/scatter,
/// non-power-of-two vector lengths).
#[derive(Debug)]
pub(crate) struct Compiled {
    plan: Option<Plan>,
    pub(crate) report: CompileReport,
}

#[derive(Default)]
struct State {
    rows: Vec<Row>,
    prows: Vec<Row>,
}

/// RAII handle over a worker-resident [`State`]: claimed from thread-local
/// scratch on region entry (pool workers persist across regions, so a
/// parked state is still warm), parked back when the region's chunk loop
/// drops it. Steady-state `par_map` allocates nothing per region.
struct StateGuard {
    uid: u64,
    st: State,
}

impl Drop for StateGuard {
    fn drop(&mut self) {
        scratch::put((self.uid, 0), Box::new(std::mem::take(&mut self.st)));
    }
}

/// The native-plan admission gate: batchable elementwise shapes with a
/// loop predicate, 1–2 inputs, power-of-two vector length ≤ 64, and no
/// gather/scatter/compact (those families replay the recorded trace).
pub(crate) fn native_gate(t: &Trace) -> bool {
    t.batchable()
        && t.loop_pred.is_some()
        && !t.outputs.is_empty()
        && !t.inputs.is_empty()
        && t.inputs.len() <= 2
        && t.vl.is_power_of_two()
        && t.vl <= 64
        && !t.body.iter().any(|o| {
            matches!(
                o,
                TOp::Gather { .. } | TOp::Scatter { .. } | TOp::Compact { .. }
            )
        })
}

/// The emission-plan facts the translation validator cross-checks,
/// decoupled from the private [`Plan`] internals.
pub(crate) struct PlanFacts {
    pub(crate) blocks: u64,
    pub(crate) kernels: usize,
    pub(crate) fused: usize,
    /// Statically-full predicate slots: pass closure ∪ loop predicate ∪
    /// setup masks that materialize all-true.
    pub(crate) full: HashSet<Slot>,
    pub(crate) acct_static: Snapshot,
}

/// Build the native emission plan for a gated trace: materialize the
/// optimized setup, lower the body to the kernel line, and pre-fold the
/// static accounting. Returns the plan plus the facts [`crate::tv`]
/// re-derives independently; `None` if a body op has no native lowering.
pub(crate) fn build_plan(t: &Trace, passes: &PassOut) -> Option<(Plan, PlanFacts)> {
    let opt = &passes.t;

    // Materialize setup values once at record width: a throwaway
    // replayer runs the (uncounted) setup ops, and its arena is read
    // back into splat/tile row images.
    let vl = opt.vl;
    let mut splats = Vec::new();
    let mut tiles = Vec::new();
    let mut imm: HashMap<Slot, u64> = HashMap::new();
    let mut pfull = Vec::new();
    let mut ptiles = Vec::new();
    let mut full_native: HashSet<Slot> = passes.full.clone();
    let lp = opt
        .loop_pred
        .expect("native plan is gated on a loop predicate");
    full_native.insert(lp);
    pfull.push(lp);
    {
        let r = Replayer::with_batch(opt, 1);
        for op in &opt.setup {
            match top_def(op) {
                (Some(v), _) => {
                    let lanes: Vec<u64> = (0..vl).map(|l| r.lane_bits(VSlot(v), l)).collect();
                    if lanes.iter().all(|&x| x == lanes[0]) {
                        imm.insert(v, lanes[0]);
                        splats.push((v, lanes[0]));
                    } else {
                        tiles.push((v, lanes));
                    }
                }
                (_, Some(p)) => {
                    let mask: Vec<bool> = (0..vl).map(|l| r.pred_lane(PSlot(p), l)).collect();
                    if mask.iter().all(|&m| m) {
                        full_native.insert(p);
                        pfull.push(p);
                    } else {
                        ptiles.push((p, mask));
                    }
                }
                _ => {}
            }
        }
    }

    let (kernels, fused) = emit_kernels(opt, &full_native, &imm)?;
    let all = build_acct(t, &passes.psubst, &full_native);
    let blocks = (W / vl) as u64;
    let mut acct_static = Snapshot::zero();
    // Tiling the inputs into lane rows is the plan's only data load.
    acct_static.set(Counter::BytesLoaded, (opt.inputs.len() * 8 * W) as u64);
    let mut acct = Vec::new();
    for a in all {
        match a {
            Acct::Bump {
                class,
                lanes: Lanes::Full,
            } => counters::bump_into(&mut acct_static, class, blocks, W as u64, 1),
            Acct::Bump {
                class,
                lanes: Lanes::Zero,
            } => counters::bump_into(&mut acct_static, class, blocks, 0, 1),
            Acct::FexpaA => counters::bump_fexpa_into(&mut acct_static, blocks, W as u64),
            Acct::OverheadA { int_ops } => {
                counters::bump_into(&mut acct_static, OpClass::IntAlu, blocks * int_ops, 0, 1);
                counters::bump_into(&mut acct_static, OpClass::Branch, blocks, 0, 1);
            }
            Acct::LibmA => {
                counters::bump_into(&mut acct_static, OpClass::ScalarLibmCall, blocks, 0, 1);
            }
            dynamic @ Acct::Bump { .. } => acct.push(dynamic),
        }
    }
    let facts = PlanFacts {
        blocks,
        kernels: kernels.len(),
        fused,
        full: full_native,
        acct_static: acct_static.clone(),
    };
    let plan = Plan {
        vl,
        n_v: opt.n_v,
        n_p: opt.n_p,
        inputs: opt.inputs.clone(),
        out: opt.outputs[0],
        splats,
        tiles,
        pfull,
        ptiles,
        kernels,
        acct,
        acct_static,
        tab: mantissa_table(),
        uid: scratch::unique_id(),
    };
    Some((plan, facts))
}

impl Compiled {
    pub(crate) fn build(t: &Trace) -> Compiled {
        let report = CompileReport {
            body_ops: t.body.len(),
            ..CompileReport::default()
        };
        if !native_gate(t) {
            return Compiled { plan: None, report };
        }
        let passes = run_passes(t, true);
        let mut report = passes.stats.clone();
        let Some((plan, facts)) = build_plan(t, &passes) else {
            return Compiled { plan: None, report };
        };
        report.fused = facts.fused;
        report.kernels = facts.kernels;
        report.native = true;
        Compiled {
            plan: Some(plan),
            report,
        }
    }

    pub(crate) fn map(&self, t: &Trace, xs: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0f64; xs.len()];
        self.run_serial(t, &[xs], &mut out);
        out
    }

    pub(crate) fn map2(&self, t: &Trace, xs: &[f64], ys: &[f64]) -> Vec<f64> {
        assert_eq!(xs.len(), ys.len());
        let mut out = vec![0.0f64; xs.len()];
        self.run_serial(t, &[xs, ys], &mut out);
        out
    }

    pub(crate) fn par_map(&self, t: &Trace, threads: usize, xs: &[f64]) -> Vec<f64> {
        self.run_par(t, threads, &[xs])
    }

    pub(crate) fn par_map2(&self, t: &Trace, threads: usize, xs: &[f64], ys: &[f64]) -> Vec<f64> {
        assert_eq!(xs.len(), ys.len());
        self.run_par(t, threads, &[xs, ys])
    }

    fn run_serial(&self, t: &Trace, ins: &[&[f64]], out: &mut [f64]) {
        let n = out.len();
        let plan = match &self.plan {
            Some(p) if p.inputs.len() == ins.len() && n >= W => p,
            _ => return replay_into(t, ins, out, 0),
        };
        let nfull = n / W;
        let mut g = plan.acquire_state();
        for c in 0..nfull {
            plan.run_chunk(&mut g.st, ins, &mut out[c * W..(c + 1) * W], c * W);
        }
        counters::flush(&plan.acct_static, nfull as u64);
        replay_into(t, ins, out, nfull * W);
    }

    fn run_par(&self, t: &Trace, threads: usize, ins: &[&[f64]]) -> Vec<f64> {
        let n = ins[0].len();
        let plan = match &self.plan {
            Some(p) if p.inputs.len() == ins.len() && n >= W => p,
            _ => {
                return match ins {
                    [xs] => t.replay_par_map(threads, xs),
                    [xs, ys] => t.replay_par_map2(threads, xs, ys),
                    _ => unreachable!("traces bind one or two streams"),
                }
            }
        };
        let nfull = n / W;
        let mut out = vec![0.0f64; n];
        let base = SendPtr::new(out.as_mut_ptr());
        par_for_with(threads, nfull, Schedule::Static, |_, s, e| {
            let mut g = plan.acquire_state();
            for c in s..e {
                // SAFETY: chunk ranges are disjoint and claimed exactly
                // once; `out` outlives the region (par_for_with blocks).
                let chunk = unsafe { base.slice_mut(c * W, W) };
                plan.run_chunk(&mut g.st, ins, chunk, c * W);
            }
        });
        counters::flush(&plan.acct_static, nfull as u64);
        replay_into(t, ins, &mut out, nfull * W);
        out
    }
}

/// Replay elements `[start, n)` of the range through the **original**
/// trace — the tail/fallback path, bit- and counter-identical to a pure
/// replayer run over the same blocks (`start` is always a multiple of the
/// replayer's step width: `W` is a multiple of every power-of-two batch).
fn replay_into(t: &Trace, ins: &[&[f64]], out: &mut [f64], start: usize) {
    let n = out.len();
    if start >= n {
        return;
    }
    let mut r = Replayer::with_batch(t, t.auto_batch());
    let w = r.width();
    debug_assert_eq!(start % w, 0);
    let (b0, b1) = (start / w, n.div_ceil(w));
    match ins {
        [xs] => t.map_range(&mut r, xs, &mut out[start..], b0, b1),
        [xs, ys] => t.map2_range(&mut r, xs, ys, &mut out[start..], b0, b1),
        _ => unreachable!("traces bind one or two streams"),
    }
}

/// Lower the optimized body to the kernel line. `None` if an op has no
/// native lowering (defensive — the build gate screens these earlier).
fn emit_kernels(
    opt: &Trace,
    full: &HashSet<Slot>,
    imm: &HashMap<Slot, u64>,
) -> Option<(Vec<K>, usize)> {
    // Use counts + loop-exit reads decide fusion legality: the fused
    // intermediate must die inside the pair.
    let mut uses: HashMap<Slot, usize> = HashMap::new();
    let mut body = opt.body.clone();
    for op in &mut body {
        for s in v_srcs_mut(op) {
            *uses.entry(*s).or_insert(0) += 1;
        }
    }
    let mut roots: HashSet<Slot> = opt.outputs.iter().copied().collect();
    roots.extend(opt.tap_v.iter().copied());
    roots.extend(opt.carries.iter().flat_map(|&(a, b)| [a, b]));

    let is_full = |pg: Slot| full.contains(&pg);
    let mut ks = Vec::new();
    let mut fused = 0usize;
    let mut skip = false;
    let b = &opt.body;
    for i in 0..b.len() {
        if skip {
            skip = false;
            continue;
        }
        let op = &b[i];
        let masked = top_pg(op).filter(|pg| !is_full(*pg));
        match *op {
            TOp::ConstV { .. } | TOp::Ptrue { .. } => unreachable!("constants live in setup"),
            TOp::Gather { .. } | TOp::Scatter { .. } | TOp::Compact { .. } => return None,
            TOp::Overhead { .. } | TOp::LibmCall => {}
            TOp::Bin {
                op: bo,
                dst,
                a,
                b: bb,
                ..
            } => {
                if bo == BinOp::FMul
                    && masked.is_none()
                    && uses.get(&dst) == Some(&1)
                    && !roots.contains(&dst)
                {
                    if let Some(next) = b.get(i + 1) {
                        match *next {
                            TOp::Cvt {
                                op: CvtOp::Fcvtns,
                                dst: d2,
                                pg,
                                a: ca,
                            } if ca == dst && is_full(pg) => {
                                ks.push(match (imm.get(&bb), imm.get(&a)) {
                                    (Some(&ib), _) => K::MulCvtnsRI { d: d2, a, imm: ib },
                                    (None, Some(&ia)) => K::MulCvtnsRI {
                                        d: d2,
                                        a: bb,
                                        imm: ia,
                                    },
                                    _ => K::MulCvtnsRR { d: d2, a, b: bb },
                                });
                                fused += 1;
                                skip = true;
                                continue;
                            }
                            TOp::Fmla {
                                neg: false,
                                dst: d2,
                                pg,
                                c,
                                a: fa,
                                b: fb,
                            } if is_full(pg) && c != dst && (fa == dst) != (fb == dst) => {
                                let o = if fa == dst { fb } else { fa };
                                ks.push(K::FMulMla {
                                    d: d2,
                                    x: a,
                                    y: bb,
                                    o,
                                    c,
                                });
                                fused += 1;
                                skip = true;
                                continue;
                            }
                            TOp::Fmla {
                                neg: false,
                                dst: d2,
                                pg,
                                c,
                                a: fa,
                                b: fb,
                            } if is_full(pg) && c == dst && fa != dst && fb != dst => {
                                ks.push(K::FMulMlaC {
                                    d: d2,
                                    x: a,
                                    y: bb,
                                    a2: fa,
                                    b2: fb,
                                });
                                fused += 1;
                                skip = true;
                                continue;
                            }
                            _ => {}
                        }
                    }
                }
                ks.push(match (imm.get(&bb), imm.get(&a)) {
                    (Some(&ib), _) => K::BinRI {
                        op: bo,
                        d: dst,
                        a,
                        imm: ib,
                    },
                    (None, Some(&ia)) if commutes(bo) => K::BinRI {
                        op: bo,
                        d: dst,
                        a: bb,
                        imm: ia,
                    },
                    _ => K::BinRR {
                        op: bo,
                        d: dst,
                        a,
                        b: bb,
                    },
                });
                if let Some(m) = masked {
                    ks.push(K::Merge { d: dst, m, src: a });
                }
            }
            TOp::Un { op: uo, dst, a, .. } => {
                ks.push(K::UnK { op: uo, d: dst, a });
                if let Some(m) = masked {
                    ks.push(K::Merge { d: dst, m, src: a });
                }
            }
            TOp::Fmla {
                neg,
                dst,
                c,
                a,
                b: fb,
                ..
            } => {
                let flip = |v: u64| if neg { v ^ SIGN } else { v };
                ks.push(match (imm.get(&c), imm.get(&a), imm.get(&fb)) {
                    (Some(&ic), Some(&ia), None) => K::MlaIRI {
                        d: dst,
                        a: fb,
                        a_imm: flip(ia),
                        c_imm: ic,
                    },
                    (Some(&ic), None, Some(&ib)) => K::MlaIRI {
                        d: dst,
                        a,
                        a_imm: flip(ib),
                        c_imm: ic,
                    },
                    (None, Some(&ia), None) => K::MlaRRI {
                        d: dst,
                        c,
                        a: fb,
                        imm: flip(ia),
                    },
                    (None, None, Some(&ib)) => K::MlaRRI {
                        d: dst,
                        c,
                        a,
                        imm: flip(ib),
                    },
                    _ => K::MlaRRR {
                        neg,
                        d: dst,
                        c,
                        a,
                        b: fb,
                    },
                });
                if let Some(m) = masked {
                    ks.push(K::Merge { d: dst, m, src: c });
                }
            }
            TOp::Est { rsqrt, dst, a } => ks.push(K::EstK { rsqrt, d: dst, a }),
            TOp::NewtonStep {
                rsqrt,
                dst,
                a,
                b: nb,
                ..
            } => {
                ks.push(K::NewtonK {
                    rsqrt,
                    d: dst,
                    a,
                    b: nb,
                });
                if let Some(m) = masked {
                    ks.push(K::Merge { d: dst, m, src: a });
                }
            }
            TOp::Fexpa { dst, a } => ks.push(K::FexpaK { d: dst, a }),
            TOp::Ftmad {
                dst,
                a,
                b: tb,
                coeff,
                ..
            } => {
                ks.push(K::FtmadK {
                    d: dst,
                    a,
                    b: tb,
                    coeff,
                });
                if let Some(m) = masked {
                    ks.push(K::Merge { d: dst, m, src: a });
                }
            }
            TOp::Cmp {
                op: co,
                dst,
                pg,
                a,
                b: cb,
            } => ks.push(K::CmpK {
                op: co,
                d: dst,
                m: (!is_full(pg)).then_some(pg),
                a,
                b: cb,
            }),
            TOp::CmpNeImm {
                dst,
                pg,
                a,
                imm: iv,
            } => ks.push(K::CmpNeImmK {
                d: dst,
                m: (!is_full(pg)).then_some(pg),
                a,
                imm: iv,
            }),
            TOp::Pand { dst, a, b: pb } => ks.push(K::PandK { d: dst, a, b: pb }),
            TOp::Sel { dst, pg, a, b: sb } => ks.push(K::SelK {
                d: dst,
                m: pg,
                a,
                b: sb,
            }),
            TOp::Shift {
                op: so, dst, a, sh, ..
            } => {
                ks.push(K::ShiftK {
                    op: so,
                    d: dst,
                    a,
                    sh,
                });
                if let Some(m) = masked {
                    ks.push(K::Merge { d: dst, m, src: a });
                }
            }
            TOp::Cvt { op: vo, dst, a, .. } => {
                ks.push(K::CvtK { op: vo, d: dst, a });
                if let Some(m) = masked {
                    ks.push(K::Merge { d: dst, m, src: a });
                }
            }
        }
    }
    Some((ks, fused))
}

/// Bitwise-safe commutativity: `dn` canonicalizes NaN payloads, so these
/// ops produce identical bits with swapped operands (FMAX/FMIN's ±0 tie
/// rules and NaN handling are symmetric too).
fn commutes(op: BinOp) -> bool {
    matches!(
        op,
        BinOp::FAdd
            | BinOp::FMul
            | BinOp::FMax
            | BinOp::FMin
            | BinOp::IAdd
            | BinOp::IMul
            | BinOp::And
            | BinOp::Orr
            | BinOp::Eor
    )
}

/// The per-block accounting program from the **original** body: one entry
/// per recorded op, with lane counts resolved statically where the mask
/// is provably all-true on full blocks and by runtime mask-row popcount
/// otherwise. See [`crate::counters`] for why linearity makes one scaled
/// bump per block exactly equal to per-iteration counting.
fn build_acct(t: &Trace, psubst: &HashMap<Slot, Slot>, full: &HashSet<Slot>) -> Vec<Acct> {
    t.body
        .iter()
        .map(|op| match *op {
            TOp::Fexpa { .. } => Acct::FexpaA,
            TOp::Overhead { int_ops } => Acct::OverheadA {
                int_ops: int_ops as u64,
            },
            TOp::LibmCall => Acct::LibmA,
            TOp::Gather { .. } | TOp::Scatter { .. } => {
                unreachable!("gated out of the native plan")
            }
            _ => {
                let class = top_class(op).expect("body op lowers to a class");
                let lanes = match meta::lane_accounting(class) {
                    LaneAccounting::Governed => {
                        let pg = resolve(psubst, top_pg(op).expect("governed op has a predicate"));
                        if full.contains(&pg) {
                            Lanes::Full
                        } else {
                            Lanes::Row(pg)
                        }
                    }
                    LaneAccounting::FullVector => Lanes::Full,
                    LaneAccounting::ResultPop => match *op {
                        TOp::Pand { a, b, .. } => {
                            let (a, b) = (resolve(psubst, a), resolve(psubst, b));
                            match (full.contains(&a), full.contains(&b)) {
                                (true, true) => Lanes::Full,
                                (true, false) => Lanes::Row(b),
                                (false, true) => Lanes::Row(a),
                                (false, false) => Lanes::RowAnd(a, b),
                            }
                        }
                        _ => unreachable!("ResultPop lowers only from pand"),
                    },
                    LaneAccounting::Scalar => Lanes::Zero,
                };
                Acct::Bump { class, lanes }
            }
        })
        .collect()
}

impl Plan {
    /// Claim this worker's parked [`State`] for the plan — or allocate a
    /// fresh one — and (re-)establish the setup row images. Nothing else
    /// needs resetting: every other row a chunk reads is written earlier
    /// in the same chunk (inputs re-tile, kernel destinations are SSA),
    /// which is the same invariant the serial chunk loop already reuses
    /// its state under.
    fn acquire_state(&self) -> StateGuard {
        let mut st = match scratch::take::<State>((self.uid, 0)) {
            Some(s) => *s,
            None => State {
                rows: vec![[0u64; W]; self.n_v],
                prows: vec![[0u64; W]; self.n_p],
            },
        };
        debug_assert_eq!(st.rows.len(), self.n_v);
        for &(s, v) in &self.splats {
            st.rows[s as usize] = [v; W];
        }
        for (s, lanes) in &self.tiles {
            let r = &mut st.rows[*s as usize];
            for (l, slot) in r.iter_mut().enumerate() {
                *slot = lanes[l % lanes.len()];
            }
        }
        for &s in &self.pfull {
            st.prows[s as usize] = [u64::MAX; W];
        }
        for (s, mask) in &self.ptiles {
            let r = &mut st.prows[*s as usize];
            for (l, slot) in r.iter_mut().enumerate() {
                *slot = if mask[l % mask.len()] { u64::MAX } else { 0 };
            }
        }
        StateGuard { uid: self.uid, st }
    }

    /// Execute one full 512-lane block starting at element `i`.
    fn run_chunk(&self, st: &mut State, ins: &[&[f64]], out: &mut [f64], i: usize) {
        for (k, &slot) in self.inputs.iter().enumerate() {
            let row = &mut st.rows[slot as usize];
            let src = &ins[k][i..i + W];
            for (l, r) in row.iter_mut().enumerate() {
                *r = src[l].to_bits();
            }
        }
        for k in &self.kernels {
            exec_k(k, st, &self.tab);
        }
        if obs::enabled() && !self.acct.is_empty() {
            self.account(&st.prows);
        }
        let o = &st.rows[self.out as usize];
        for (l, slot) in out.iter_mut().enumerate() {
            *slot = f64::from_bits(o[l]);
        }
    }

    /// Per-chunk accounting for the runtime-varying entries only (mask-row
    /// popcounts); the static remainder was pre-folded at build time.
    fn account(&self, prows: &[Row]) {
        let blocks = (W / self.vl) as u64;
        let popr = |p: Slot| prows[p as usize].iter().filter(|&&m| m != 0).count() as u64;
        for a in &self.acct {
            match *a {
                Acct::Bump { class, lanes } => {
                    let l = match lanes {
                        Lanes::Row(p) => popr(p),
                        Lanes::RowAnd(p, q) => prows[p as usize]
                            .iter()
                            .zip(&prows[q as usize])
                            .filter(|(&x, &y)| x & y != 0)
                            .count() as u64,
                        Lanes::Full | Lanes::Zero => {
                            unreachable!("static accounting is pre-folded at build")
                        }
                    };
                    counters::bump(class, blocks, l, 1);
                }
                _ => unreachable!("static accounting is pre-folded at build"),
            }
        }
    }
}

/// Split one mutable destination row from `N` shared source rows. Sound
/// because slots are SSA-numbered: a destination never aliases a source
/// (asserted); sources may alias each other, which shared refs allow.
#[inline(always)]
fn dsts<const N: usize>(rows: &mut [Row], d: Slot, srcs: [Slot; N]) -> (&mut Row, [&Row; N]) {
    let n = rows.len();
    assert!((d as usize) < n);
    for &s in &srcs {
        assert!((s as usize) < n && s != d, "SSA: dst aliases a source");
    }
    let p = rows.as_mut_ptr();
    // SAFETY: all indices in bounds; `d` differs from every source, so the
    // one `&mut` is disjoint from the shared refs.
    unsafe { (&mut *p.add(d as usize), srcs.map(|s| &*p.add(s as usize))) }
}

#[inline(always)]
fn zip1(d: &mut Row, a: &Row, f: impl Fn(u64) -> u64) {
    for l in 0..W {
        d[l] = f(a[l]);
    }
}

#[inline(always)]
fn zip2(d: &mut Row, a: &Row, b: &Row, f: impl Fn(u64, u64) -> u64) {
    for l in 0..W {
        d[l] = f(a[l], b[l]);
    }
}

/// 1.5 × 2⁵²: `(x + MAGIC) - MAGIC` rounds to the nearest integer with
/// ties to even — precisely `FCVTNS`'s rounding — because the sum lands
/// in [2⁵², 2⁵³) where the ulp is exactly 1.
const MAGIC: f64 = 6_755_399_441_055_744.0;
/// Fast-path bound (2⁵¹): comfortably inside the magic trick's exact
/// range; NaN/inf/huge inputs fall back to the shared lane function.
const MAGIC_SAFE: f64 = 2_251_799_813_685_248.0;

/// `FCVTNS` over one lane block, `src(l)` producing the lane value. The
/// main loop is branchless (a per-lane branch to the libm-grade fallback
/// would keep LLVM from vectorizing it) and cast-free: for `|x| < 2⁵¹`
/// the sum `x + MAGIC` has a fixed exponent, so its low mantissa bits
/// *are* the rounded integer in offset form — `bits(x+MAGIC) -
/// bits(MAGIC)` as a wrapping integer subtract recovers it (two's
/// complement for negatives) without a float→int conversion. NaN/huge
/// lanes make the speculative result garbage-but-defined, and a second
/// pass rewrites exactly those lanes through the shared
/// [`lanes::fcvtns_lane`] semantics when any exist.
#[inline(always)]
fn cvtns_rows(d: &mut Row, src: impl Fn(usize) -> f64) {
    let mut all_fast = true;
    let mbits = MAGIC.to_bits();
    for l in 0..W {
        let x = src(l);
        d[l] = (x + MAGIC).to_bits().wrapping_sub(mbits);
        all_fast &= x.abs() < MAGIC_SAFE;
    }
    if !all_fast {
        for l in 0..W {
            let x = src(l);
            // `<` is false for NaN, so NaN lanes land on the slow path too.
            let fast = x.abs() < MAGIC_SAFE;
            if !fast {
                d[l] = lanes::fcvtns_lane(x.to_bits());
            }
        }
    }
}

/// Monomorphized per-[`BinOp`] row loop ([`bin_lane`] const-folds on the
/// known variant, hoisting the dispatch out of the lane loop).
fn bin_kernel(op: BinOp, d: &mut Row, a: &Row, b: &Row) {
    macro_rules! arm {
        ($v:expr) => {
            zip2(d, a, b, |x, y| bin_lane($v, x, y))
        };
    }
    match op {
        BinOp::FAdd => arm!(BinOp::FAdd),
        BinOp::FSub => arm!(BinOp::FSub),
        BinOp::FMul => arm!(BinOp::FMul),
        BinOp::FDiv => arm!(BinOp::FDiv),
        BinOp::FMax => arm!(BinOp::FMax),
        BinOp::FMin => arm!(BinOp::FMin),
        BinOp::IAdd => arm!(BinOp::IAdd),
        BinOp::ISub => arm!(BinOp::ISub),
        BinOp::IMul => arm!(BinOp::IMul),
        BinOp::And => arm!(BinOp::And),
        BinOp::Orr => arm!(BinOp::Orr),
        BinOp::Eor => arm!(BinOp::Eor),
    }
}

/// [`bin_kernel`] with the second operand splatted to an immediate.
fn bin_kernel_imm(op: BinOp, d: &mut Row, a: &Row, imm: u64) {
    macro_rules! arm {
        ($v:expr) => {
            zip1(d, a, |x| bin_lane($v, x, imm))
        };
    }
    match op {
        BinOp::FAdd => arm!(BinOp::FAdd),
        BinOp::FSub => arm!(BinOp::FSub),
        BinOp::FMul => arm!(BinOp::FMul),
        BinOp::FDiv => arm!(BinOp::FDiv),
        BinOp::FMax => arm!(BinOp::FMax),
        BinOp::FMin => arm!(BinOp::FMin),
        BinOp::IAdd => arm!(BinOp::IAdd),
        BinOp::ISub => arm!(BinOp::ISub),
        BinOp::IMul => arm!(BinOp::IMul),
        BinOp::And => arm!(BinOp::And),
        BinOp::Orr => arm!(BinOp::Orr),
        BinOp::Eor => arm!(BinOp::Eor),
    }
}

fn un_kernel(op: UnOp, d: &mut Row, a: &Row) {
    match op {
        UnOp::Sqrt => zip1(d, a, |x| un_lane(UnOp::Sqrt, x)),
        UnOp::Neg => zip1(d, a, |x| un_lane(UnOp::Neg, x)),
        UnOp::Abs => zip1(d, a, |x| un_lane(UnOp::Abs, x)),
        UnOp::Rintn => zip1(d, a, |x| un_lane(UnOp::Rintn, x)),
    }
}

#[inline(always)]
fn mla_rows<const NEG: bool>(d: &mut Row, c: &Row, a: &Row, b: &Row) {
    for l in 0..W {
        let av = f64::from_bits(a[l]);
        let av = if NEG { -av } else { av };
        d[l] = lanes::dn(av.mul_add(f64::from_bits(b[l]), f64::from_bits(c[l]))).to_bits();
    }
}

fn exec_k(k: &K, st: &mut State, tab: &[u64; 64]) {
    match *k {
        K::BinRR { op, d, a, b } => {
            let (d, [a, b]) = dsts(&mut st.rows, d, [a, b]);
            bin_kernel(op, d, a, b);
        }
        K::BinRI { op, d, a, imm } => {
            let (d, [a]) = dsts(&mut st.rows, d, [a]);
            bin_kernel_imm(op, d, a, imm);
        }
        K::UnK { op, d, a } => {
            let (d, [a]) = dsts(&mut st.rows, d, [a]);
            un_kernel(op, d, a);
        }
        K::MlaRRR { neg, d, c, a, b } => {
            let (d, [c, a, b]) = dsts(&mut st.rows, d, [c, a, b]);
            if neg {
                mla_rows::<true>(d, c, a, b);
            } else {
                mla_rows::<false>(d, c, a, b);
            }
        }
        K::MlaRRI { d, c, a, imm } => {
            let (d, [c, a]) = dsts(&mut st.rows, d, [c, a]);
            let y = f64::from_bits(imm);
            for l in 0..W {
                d[l] = lanes::dn(f64::from_bits(a[l]).mul_add(y, f64::from_bits(c[l]))).to_bits();
            }
        }
        K::MlaIRI { d, a, a_imm, c_imm } => {
            let (d, [a]) = dsts(&mut st.rows, d, [a]);
            let (y, cc) = (f64::from_bits(a_imm), f64::from_bits(c_imm));
            zip1(d, a, |x| {
                lanes::dn(f64::from_bits(x).mul_add(y, cc)).to_bits()
            });
        }
        K::EstK { rsqrt, d, a } => {
            let (d, [a]) = dsts(&mut st.rows, d, [a]);
            if rsqrt {
                zip1(d, a, lanes::rsqrte_lane);
            } else {
                zip1(d, a, lanes::recpe_lane);
            }
        }
        K::NewtonK { rsqrt, d, a, b } => {
            let (d, [a, b]) = dsts(&mut st.rows, d, [a, b]);
            if rsqrt {
                zip2(d, a, b, |x, y| {
                    lanes::rsqrts_lane(f64::from_bits(x), f64::from_bits(y)).to_bits()
                });
            } else {
                zip2(d, a, b, |x, y| {
                    lanes::recps_lane(f64::from_bits(x), f64::from_bits(y)).to_bits()
                });
            }
        }
        K::FexpaK { d, a } => {
            let (d, [a]) = dsts(&mut st.rows, d, [a]);
            zip1(d, a, |x| {
                ((x >> 6) & 0x7ff) << 52 | tab[(x & 0x3f) as usize]
            });
        }
        K::FtmadK { d, a, b, coeff } => {
            let (d, [a, b]) = dsts(&mut st.rows, d, [a, b]);
            zip2(d, a, b, |x, y| {
                lanes::dn(f64::from_bits(x).mul_add(f64::from_bits(y), coeff)).to_bits()
            });
        }
        K::CvtK { op, d, a } => {
            let (d, [a]) = dsts(&mut st.rows, d, [a]);
            match op {
                CvtOp::Ucvtf => zip1(d, a, lanes::ucvtf_lane),
                CvtOp::Fcvtns => cvtns_rows(d, |l| f64::from_bits(a[l])),
                CvtOp::Fcvtzs => zip1(d, a, lanes::fcvtzs_lane),
                CvtOp::Scvtf => zip1(d, a, lanes::scvtf_lane),
            }
        }
        K::ShiftK { op, d, a, sh } => {
            let (d, [a]) = dsts(&mut st.rows, d, [a]);
            match op {
                ShiftOp::Lsl => zip1(d, a, |x| x << sh),
                ShiftOp::Lsr => zip1(d, a, |x| x >> sh),
                ShiftOp::Asr => zip1(d, a, |x| ((x as i64) >> sh) as u64),
            }
        }
        K::CmpK { op, d, m, a, b } => {
            let (a, b) = {
                let p = st.rows.as_ptr();
                assert!((a as usize) < st.rows.len() && (b as usize) < st.rows.len());
                // SAFETY: shared reads of the vector arena; the write below
                // goes to the disjoint predicate arena.
                unsafe { (&*p.add(a as usize), &*p.add(b as usize)) }
            };
            let (dm, mrow) = match m {
                Some(m) => {
                    let (dm, [mr]) = dsts(&mut st.prows, d, [m]);
                    (dm, Some(mr))
                }
                None => (&mut st.prows[d as usize], None),
            };
            macro_rules! cmp {
                ($f:expr) => {
                    match mrow {
                        None => zip2(dm, a, b, |x, y| {
                            if $f(f64::from_bits(x), f64::from_bits(y)) {
                                u64::MAX
                            } else {
                                0
                            }
                        }),
                        Some(mr) => {
                            for l in 0..W {
                                dm[l] = mr[l]
                                    & if $f(f64::from_bits(a[l]), f64::from_bits(b[l])) {
                                        u64::MAX
                                    } else {
                                        0
                                    };
                            }
                        }
                    }
                };
            }
            match op {
                CmpOp::Gt => cmp!(|x, y| x > y),
                CmpOp::Ge => cmp!(|x, y| x >= y),
                CmpOp::Eq => cmp!(|x, y| x == y),
            }
        }
        K::CmpNeImmK { d, m, a, imm } => {
            let av = &raw const st.rows[a as usize];
            // SAFETY: shared read of the vector arena, write goes to the
            // predicate arena.
            let a = unsafe { &*av };
            if let Some(m) = m {
                let (dm, [mr]) = dsts(&mut st.prows, d, [m]);
                for l in 0..W {
                    dm[l] = mr[l] & if (a[l] as i64) != imm { u64::MAX } else { 0 };
                }
            } else {
                let dm = &mut st.prows[d as usize];
                zip1(dm, a, |x| if (x as i64) != imm { u64::MAX } else { 0 });
            }
        }
        K::PandK { d, a, b } => {
            let (dm, [a, b]) = dsts(&mut st.prows, d, [a, b]);
            zip2(dm, a, b, |x, y| x & y);
        }
        K::SelK { d, m, a, b } => {
            let mr = &raw const st.prows[m as usize];
            let (d, [a, b]) = dsts(&mut st.rows, d, [a, b]);
            // SAFETY: the mask lives in the predicate arena, disjoint from
            // the vector arena rows above.
            let mr = unsafe { &*mr };
            for l in 0..W {
                d[l] = (a[l] & mr[l]) | (b[l] & !mr[l]);
            }
        }
        K::Merge { d, m, src } => {
            let mr = &raw const st.prows[m as usize];
            let (d, [s]) = dsts(&mut st.rows, d, [src]);
            // SAFETY: as for SelK — arenas are disjoint allocations.
            let mr = unsafe { &*mr };
            for l in 0..W {
                d[l] = (d[l] & mr[l]) | (s[l] & !mr[l]);
            }
        }
        K::MulCvtnsRI { d, a, imm } => {
            let (d, [a]) = dsts(&mut st.rows, d, [a]);
            let y = f64::from_bits(imm);
            cvtns_rows(d, |l| f64::from_bits(a[l]) * y);
        }
        K::MulCvtnsRR { d, a, b } => {
            let (d, [a, b]) = dsts(&mut st.rows, d, [a, b]);
            cvtns_rows(d, |l| f64::from_bits(a[l]) * f64::from_bits(b[l]));
        }
        K::FMulMla { d, x, y, o, c } => {
            let (d, [x, y, o, c]) = dsts(&mut st.rows, d, [x, y, o, c]);
            for l in 0..W {
                let t = lanes::dn(f64::from_bits(x[l]) * f64::from_bits(y[l]));
                d[l] = lanes::dn(t.mul_add(f64::from_bits(o[l]), f64::from_bits(c[l]))).to_bits();
            }
        }
        K::FMulMlaC { d, x, y, a2, b2 } => {
            let (d, [x, y, a2, b2]) = dsts(&mut st.rows, d, [x, y, a2, b2]);
            for l in 0..W {
                let t = lanes::dn(f64::from_bits(x[l]) * f64::from_bits(y[l]));
                d[l] = lanes::dn(f64::from_bits(a2[l]).mul_add(f64::from_bits(b2[l]), t)).to_bits();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctx::SveCtx;
    use crate::value::{Pred, VVal};

    fn bits(v: &[f64]) -> Vec<u64> {
        v.iter().map(|x| x.to_bits()).collect()
    }

    /// The paper's FEXPA exp kernel shape: range reduction (fmul +
    /// fcvtns + scvtf + fmls), exponent assembly (integer add + fexpa),
    /// and a short polynomial — the body `ookami_sve::compile` exists to
    /// accelerate.
    fn exp_like(c: &mut SveCtx, pg: &Pred, x: &VVal) -> VVal {
        let ln2e = c.dup_f64(std::f64::consts::LOG2_E * 64.0);
        let ln2hi = c.dup_f64(std::f64::consts::LN_2 / 64.0);
        let half = c.dup_f64(0.5);
        let bias = c.dup_i64(1023 << 6);
        let z = c.fmul(pg, x, &ln2e);
        let n = c.fcvtns(pg, &z);
        let nf = c.scvtf(pg, &n);
        let r = c.fmls(pg, x, &nf, &ln2hi);
        let u = c.add_i(pg, &n, &bias);
        let s = c.fexpa(&u);
        let r2 = c.fmul(pg, &r, &r);
        let q = c.fmla(pg, &r, &r2, &half);
        c.fmul(pg, &q, &s)
    }

    fn sample(n: usize) -> Vec<f64> {
        (0..n).map(|i| (i as f64 * 0.61 - 350.0) % 700.0).collect()
    }

    #[test]
    fn exp_like_body_compiles_native_and_fuses() {
        let t = Trace::record1(8, exp_like);
        let ct = t.compile();
        let rep = ct.report();
        assert!(ct.is_native(), "gate rejected a straight-line f64 body");
        assert!(rep.native);
        assert_eq!(rep.body_ops, 9);
        assert!(rep.fused >= 1, "fmul+fcvtns must fuse: {rep:?}");
        assert!(
            rep.kernels < rep.opt_ops,
            "fusion must shrink the kernel chain: {rep:?}"
        );
    }

    #[test]
    fn compiled_map_is_bit_identical_to_replay_incl_ragged_tail() {
        let t = Trace::record1(8, exp_like);
        let ct = t.compile();
        assert!(ct.is_native());
        // Below one block (pure fallback), one exact block, block+ragged
        // tail, and several blocks + tail.
        for n in [37usize, 512, 513, 1024 + 101, 3 * 512 + 7] {
            let xs = sample(n);
            assert_eq!(bits(&ct.map(&xs)), bits(&t.replay_map(&xs)), "n={n}");
        }
    }

    #[test]
    fn compiled_par_map_is_bit_identical_to_serial() {
        let t = Trace::record1(8, exp_like);
        let ct = t.compile();
        let xs = sample(4 * 512 + 33);
        let serial = ct.map(&xs);
        for threads in [1usize, 2, 5] {
            assert_eq!(
                bits(&ct.par_map(threads, &xs)),
                bits(&serial),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn compiled_map2_is_bit_identical_to_replay() {
        let t = Trace::record2(8, |c, pg, x, y| {
            let k = c.dup_f64(1.25);
            let s = c.fmul(pg, x, &k);
            let d = c.fadd(pg, &s, y);
            c.fmax(pg, &d, x)
        });
        let ct = t.compile();
        assert!(ct.is_native());
        let n = 2 * 512 + 19;
        let xs = sample(n);
        let ys: Vec<f64> = (0..n).map(|i| (i as f64).sin() * 40.0).collect();
        assert_eq!(bits(&ct.map2(&xs, &ys)), bits(&t.replay_map2(&xs, &ys)));
        assert_eq!(
            bits(&ct.par_map2(3, &xs, &ys)),
            bits(&t.replay_map2(&xs, &ys))
        );
    }

    #[test]
    fn trace_map_routes_through_compiled_engine() {
        // The public entry points must produce compiled-engine bits (which
        // the previous tests pin to replay bits) without any explicit
        // compile() call.
        let t = Trace::record1(8, exp_like);
        let xs = sample(2000);
        assert_eq!(bits(&t.map(&xs)), bits(&t.replay_map(&xs)));
        assert_eq!(bits(&t.par_map(4, &xs)), bits(&t.replay_map(&xs)));
    }

    #[test]
    fn const_folding_collapses_full_mask_constant_chains() {
        let t = Trace::record1(8, |c, pg, x| {
            let all = c.ptrue();
            let a = c.dup_f64(3.0);
            let b = c.dup_f64(4.0);
            // Constant under a full mask: folds to a setup constant.
            let ab = c.fmul(&all, &a, &b);
            // Unpredicated estimate of a constant: also folds.
            let e = c.frecpe(&ab);
            let s = c.fadd(pg, x, &ab);
            c.fmul(pg, &s, &e)
        });
        let (opt, rep) = optimize(&t);
        assert_eq!(rep.folded, 2, "{rep:?}");
        assert_eq!(rep.opt_ops, 2, "only the two x-dependent ops remain");
        // The optimized trace is still a plain replayable trace.
        let xs = sample(101);
        assert_eq!(bits(&opt.replay_map(&xs)), bits(&t.replay_map(&xs)));
    }

    #[test]
    fn predicate_simplification_drops_full_pand_and_sel() {
        let t = Trace::record1(8, |c, pg, x| {
            let all = c.ptrue();
            let zero = c.dup_f64(0.0);
            let q = c.fcmgt(pg, x, &zero);
            // AND with an all-true mask is the identity on q.
            let q2 = c.pand(&q, &all);
            let neg = c.fneg(pg, x);
            let picked = c.sel(&q2, x, &neg);
            // Select under a full mask always takes the first operand.
            c.sel(&all, &picked, &neg)
        });
        let (opt, rep) = optimize(&t);
        assert_eq!(rep.pred_simplified, 2, "{rep:?}");
        assert!(opt.body_len() < t.body_len());
        let xs = sample(77);
        assert_eq!(bits(&opt.replay_map(&xs)), bits(&t.replay_map(&xs)));
    }

    #[test]
    fn dead_defs_are_eliminated() {
        let t = Trace::record1(8, |c, pg, x| {
            let k = c.dup_f64(2.0);
            let _dead = c.fdiv(pg, x, &k); // never used
            c.fmul(pg, x, &k)
        });
        let (opt, rep) = optimize(&t);
        assert_eq!(rep.dead_removed, 1, "{rep:?}");
        assert_eq!(opt.body_len(), 1);
        let xs = sample(64);
        assert_eq!(bits(&opt.replay_map(&xs)), bits(&t.replay_map(&xs)));
    }

    #[test]
    fn gather_bodies_fall_back_to_replay() {
        const TAB: [f64; 8] = [0.5, -1.0, 2.0, 4.0, -8.0, 0.25, 9.0, -3.5];
        let t = Trace::record1(8, |c, pg, x| {
            let m = c.dup_i64(TAB.len() as i64 - 1);
            let i = c.and_u(pg, x, &m);
            c.ld1d_gather(pg, &TAB, &i, 4)
        });
        let ct = t.compile();
        assert!(!ct.is_native());
        assert!(!ct.report().native);
        let xs: Vec<f64> = (0..700).map(|i| f64::from_bits(i as u64 % 8)).collect();
        assert_eq!(bits(&ct.map(&xs)), bits(&t.replay_map(&xs)));
    }

    #[test]
    fn non_power_of_two_vl_falls_back() {
        let t = Trace::record1(5, |c, pg, x| {
            let k = c.dup_f64(1.5);
            c.fmul(pg, x, &k)
        });
        let ct = t.compile();
        assert!(!ct.is_native());
        let xs = sample(777);
        assert_eq!(bits(&ct.map(&xs)), bits(&t.replay_map(&xs)));
    }

    #[test]
    fn masked_ops_merge_bit_exactly() {
        // A body whose arithmetic runs under a compare-derived partial
        // mask: compiled kernels compute unmasked then Merge, which must
        // reproduce the replayer's merging predication bit for bit
        // (inactive lanes keep the first vector operand).
        let t = Trace::record1(8, |c, pg, x| {
            let zero = c.dup_f64(0.0);
            let p = c.fcmgt(pg, x, &zero);
            let sq = c.fsqrt(&p, x);
            let k = c.dup_f64(-2.0);
            let scaled = c.fmul(&p, &sq, &k);
            c.sel(&p, &scaled, x)
        });
        let ct = t.compile();
        assert!(ct.is_native());
        let xs: Vec<f64> = (0..1500).map(|i| (i as f64 - 750.0) * 0.31).collect();
        assert_eq!(bits(&ct.map(&xs)), bits(&t.replay_map(&xs)));
    }

    #[test]
    fn mutated_traces_stay_bit_identical_under_compilation() {
        // Pass-pipeline robustness over the mutation corpus: every
        // replayable mutant must compile (natively or via fallback) to the
        // same bits as its own replay.
        let t = Trace::record1(8, exp_like);
        let xs = sample(600);
        // Only semantic mutants (seed % 4 == 3) are guaranteed replayable;
        // structural ones may break the SSA wiring on purpose.
        for seed in (0..64u64).filter(|s| s % 4 == 3) {
            let m = t.mutated(seed);
            let ct = m.compile();
            assert_eq!(bits(&ct.map(&xs)), bits(&m.replay_map(&xs)), "seed={seed}");
        }
    }

    #[test]
    fn cvtns_rows_matches_lane_semantics() {
        let cases = [
            0.0,
            -0.0,
            0.5,
            -0.5,
            1.5,
            2.5,
            -2.5,
            1e15,
            -1e15,
            MAGIC_SAFE,
            MAGIC_SAFE - 1.0,
            -MAGIC_SAFE,
            1e300,
            -1e300,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::NAN,
        ];
        // One row mixing slow-path lanes in (forces the rewrite pass) and
        // one per-case all-fast/all-slow row (covers the branchless-only
        // path for in-range data).
        let mut d = [0u64; W];
        cvtns_rows(&mut d, |l| cases[l % cases.len()]);
        for (l, &got) in d.iter().enumerate() {
            let x = cases[l % cases.len()];
            assert_eq!(got, lanes::fcvtns_lane(x.to_bits()), "lane {l}: x={x:e}");
        }
        for x in cases {
            cvtns_rows(&mut d, |_| x);
            assert_eq!(d[0], lanes::fcvtns_lane(x.to_bits()), "x={x:e}");
            assert_eq!(d[W - 1], d[0]);
        }
    }
}
